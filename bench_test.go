package vsched_test

// One benchmark per table and figure of the paper's evaluation: each runs
// the corresponding experiment end to end (at a reduced measurement scale so
// the whole suite stays fast) and reports the experiment's headline number
// as a custom metric alongside the usual wall-time cost of regenerating it.
// Ablation benchmarks for the design decisions called out in DESIGN.md
// follow at the end.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Full-length reproductions: go run ./cmd/experiments -run all

import (
	"runtime"
	"strconv"
	"strings"
	"testing"

	"vsched"
)

// benchScale keeps each experiment affordable inside `go test -bench`.
const benchScale = 0.1

func runExperiment(b *testing.B, id string) *vsched.ExperimentReport {
	b.Helper()
	var rep *vsched.ExperimentReport
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = vsched.RunExperiment(id, vsched.ExperimentOptions{
			Seed:  42,
			Scale: benchScale,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
	return rep
}

// pctCell parses a "85%"-style cell into a float (85).
func pctCell(b *testing.B, cell string) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimPrefix(cell, "+"), "%"), 64)
	if err != nil {
		b.Fatalf("cell %q: %v", cell, err)
	}
	return v
}

func BenchmarkFig2ExtendedRunqueueLatency(b *testing.B) {
	rep := runExperiment(b, "fig2")
	// Headline: normalized p95 at 2ms vCPU latency for the first benchmark
	// (lower = stronger scaling with vCPU latency).
	b.ReportMetric(pctCell(b, rep.Cell(0, 4)), "norm-p95-at-2ms-%")
}

func BenchmarkFig3StalledRunningTask(b *testing.B) {
	rep := runExperiment(b, "fig3")
	def := pctCell(b, rep.Cell(0, 1))
	mig := pctCell(b, rep.Cell(1, 1))
	b.ReportMetric(mig/def, "migration/default-util")
}

func BenchmarkFig4WorkConservation(b *testing.B) {
	rep := runExperiment(b, "fig4")
	// Headline: the worst work-conserving cell (lowest % of NWC).
	worst := 100.0
	for _, row := range rep.Rows {
		if v := pctCell(b, row[2]); v < worst {
			worst = v
		}
	}
	b.ReportMetric(worst, "worst-WC-vs-NWC-%")
}

func BenchmarkFig10aEMACapacity(b *testing.B) {
	rep := runExperiment(b, "fig10a")
	b.ReportMetric(float64(len(rep.Rows)), "samples")
}

func BenchmarkFig10bLatencyMatrix(b *testing.B) {
	rep := runExperiment(b, "fig10b")
	b.ReportMetric(float64(len(rep.Rows)), "matrix-rows")
}

func BenchmarkTable2VtopProbeTime(b *testing.B) {
	rep := runExperiment(b, "table2")
	full, err := strconv.ParseFloat(rep.Cell(0, 1), 64)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(full, "rcvm-full-probe-ms")
}

func BenchmarkFig11VcapCapacity(b *testing.B) {
	rep := runExperiment(b, "fig11")
	b.ReportMetric(pctCell(b, rep.Cell(1, 2)), "vcap-fast-share-%")
}

func BenchmarkFig12SMTAware(b *testing.B) {
	rep := runExperiment(b, "fig12")
	cores, err := strconv.ParseFloat(rep.Cell(1, 3), 64)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(cores, "vtop-active-cores")
}

func BenchmarkFig13LLCAware(b *testing.B) {
	rep := runExperiment(b, "fig13")
	b.ReportMetric(float64(len(rep.Rows)), "rows")
}

func BenchmarkFig14BVS(b *testing.B) {
	rep := runExperiment(b, "fig14")
	var sum float64
	for _, row := range rep.Rows {
		sum += pctCell(b, row[4])
	}
	b.ReportMetric(sum/float64(len(rep.Rows)), "avg-norm-p95-%")
}

func BenchmarkTable3MasstreeBreakdown(b *testing.B) {
	rep := runExperiment(b, "table3")
	b.ReportMetric(float64(len(rep.Rows)), "rows")
}

func BenchmarkFig15IVH(b *testing.B) {
	rep := runExperiment(b, "fig15")
	// Headline: single-thread improvement of the first workload.
	b.ReportMetric(pctCell(b, rep.Cell(0, 1)), "1thr-improvement-%")
}

func BenchmarkTable4IVHActivityAware(b *testing.B) {
	rep := runExperiment(b, "table4")
	b.ReportMetric(float64(len(rep.Rows)), "rows")
}

func BenchmarkFig16Adaptability(b *testing.B) {
	rep := runExperiment(b, "fig16")
	ratio, err := strconv.ParseFloat(rep.Cell(1, 3), 64)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(ratio, "overcommitted-vsched/cfs")
}

func BenchmarkFig17MultiTenant(b *testing.B) {
	rep := runExperiment(b, "fig17")
	b.ReportMetric(float64(len(rep.Rows)), "phases")
}

func BenchmarkFig18RCVMOverall(b *testing.B) {
	rep := runExperiment(b, "fig18")
	b.ReportMetric(float64(len(rep.Rows)), "workloads")
}

func BenchmarkFig19HPVMOverall(b *testing.B) {
	rep := runExperiment(b, "fig19")
	b.ReportMetric(float64(len(rep.Rows)), "workloads")
}

func BenchmarkFig20Cost(b *testing.B) {
	rep := runExperiment(b, "fig20")
	b.ReportMetric(float64(len(rep.Rows)), "rows")
}

func BenchmarkFig21Overhead(b *testing.B) {
	rep := runExperiment(b, "fig21")
	b.ReportMetric(float64(len(rep.Rows)), "workloads")
}

// --- ablations (design decisions from DESIGN.md §4) ---

// contendedRig builds a 16-vCPU VM with 50% fair-share contention and
// asymmetric per-thread latency, the common substrate for the ablations.
func contendedRig(feats vsched.Features) (*vsched.Cluster, *vsched.VM, *vsched.VSched) {
	cl := vsched.NewCluster(vsched.ClusterConfig{Seed: 13, CoresPerSocket: 16})
	ids := make([]int, 16)
	for i := range ids {
		ids[i] = i
	}
	vm := cl.NewVM("vm", ids)
	for i := 0; i < 16; i++ {
		cl.AddStressor(i, vsched.DefaultWeight)
		lat := 6 * vsched.Millisecond
		if i >= 8 {
			lat = 3 * vsched.Millisecond
		}
		cl.SetVCPULatency(i, lat)
	}
	var sched *vsched.VSched
	if feats != (vsched.Features{}) {
		sched = cl.EnableVSched(vm, feats)
	}
	return cl, vm, sched
}

// BenchmarkAblationProbeCost measures what the probers themselves cost a
// dedicated VM (design decision 3: probers are real tasks, so overhead is
// emergent, not assumed).
func BenchmarkAblationProbeCost(b *testing.B) {
	run := func(enable bool) uint64 {
		cl := vsched.NewCluster(vsched.ClusterConfig{Seed: 9, CoresPerSocket: 8})
		vm := cl.NewVM("vm", []int{0, 1, 2, 3, 4, 5, 6, 7})
		var sched *vsched.VSched
		if enable {
			sched = cl.EnableVSched(vm, vsched.AllFeatures())
		}
		inst := cl.Workload(vm, sched, "sysbench", 8)
		inst.Start()
		cl.RunFor(2 * vsched.Second)
		before := inst.Ops()
		cl.RunFor(5 * vsched.Second)
		return inst.Ops() - before
	}
	var overhead float64
	for i := 0; i < b.N; i++ {
		off := run(false)
		on := run(true)
		overhead = 100 * (1 - float64(on)/float64(off))
	}
	b.ReportMetric(overhead, "probe-overhead-%")
}

// BenchmarkAblationEMAvsRaw compares the stability of the published
// capacity under the paper's EMA horizon against nearly-raw samples (design
// decision 4): the EMA is what keeps the scheduler from chasing every
// contention burst.
func BenchmarkAblationEMAvsRaw(b *testing.B) {
	run := func(halfPeriods float64) float64 {
		cl := vsched.NewCluster(vsched.ClusterConfig{Seed: 17, CoresPerSocket: 2})
		vm := cl.NewVM("vm", []int{0, 1})
		// Bursts long relative to the 100ms sampling window: individual
		// capacity samples swing between ~0 and full.
		cl.AddPatternContender(0, 170*vsched.Millisecond, 390*vsched.Millisecond, 0)
		p := vsched.DefaultParams()
		p.EMAHalfPeriods = halfPeriods
		cl.EnableVSchedWithParams(vm, vsched.Features{Vcap: true, Vact: true}, p)
		cl.RunFor(3 * vsched.Second)
		// Sample the published capacity each second and return its variance.
		var vals []float64
		for i := 0; i < 20; i++ {
			cl.RunFor(1 * vsched.Second)
			vals = append(vals, float64(vm.VCPU(0).Capacity()))
		}
		var mean float64
		for _, v := range vals {
			mean += v
		}
		mean /= float64(len(vals))
		var m2 float64
		for _, v := range vals {
			m2 += (v - mean) * (v - mean)
		}
		return m2 / float64(len(vals))
	}
	var smooth, raw float64
	for i := 0; i < b.N; i++ {
		smooth = run(2) // the paper's horizon: 50% decay per 2 periods
		raw = run(0.05) // nearly raw samples
	}
	b.ReportMetric(smooth, "cap-variance-ema")
	b.ReportMetric(raw, "cap-variance-raw")
}

// BenchmarkAblationBVSFirstFit compares the paper's first-fit bvs search
// against an exhaustive best-fit scan (design decision 5): best-fit buys
// little latency and costs more search.
func BenchmarkAblationBVSFirstFit(b *testing.B) {
	run := func(bestFit bool) float64 {
		feats := vsched.Features{Vcap: true, Vact: true, Vtop: true, BVS: true}
		cl, vm, sched := contendedRig(feats)
		sched.SetBVSBestFit(bestFit)
		srv := cl.Workload(vm, sched, "masstree", 0).(*vsched.Server)
		srv.Start()
		cl.RunFor(6 * vsched.Second)
		srv.ResetStats()
		cl.RunFor(6 * vsched.Second)
		return float64(srv.E2E().P95()) / 1e6
	}
	var first, best float64
	for i := 0; i < b.N; i++ {
		first = run(false)
		best = run(true)
	}
	b.ReportMetric(first, "p95ms-firstfit")
	b.ReportMetric(best, "p95ms-bestfit")
}

// BenchmarkAblationBVSLatencyGate compares bvs's min-anchored low-latency
// cutoff against the obvious median anchor (design decision 8): on a VM
// where only a minority of vCPUs is genuinely low-latency (hpvm's dedicated
// socket), the median blesses the middle category and bvs parks latency
// tasks behind multi-millisecond inactive bursts.
func BenchmarkAblationBVSLatencyGate(b *testing.B) {
	run := func(median bool) float64 {
		cl := vsched.NewCluster(vsched.ClusterConfig{Seed: 31, Sockets: 2, CoresPerSocket: 8})
		ids := make([]int, 16)
		for i := range ids {
			ids[i] = i
		}
		vm := cl.NewVM("vm", ids)
		// Only a minority is genuinely low-latency, like hpvm's dedicated
		// socket: vCPUs 0-3 dedicated; 4-9 contended with 3ms bursts;
		// 10-15 with 9ms. The median latency is the 3ms class.
		for i := 4; i < 16; i++ {
			lat := 3 * vsched.Millisecond
			if i >= 10 {
				lat = 9 * vsched.Millisecond
			}
			cl.SetVCPULatency(i, lat)
			cl.AddStressor(i, vsched.DefaultWeight)
		}
		feats := vsched.Features{Vcap: true, Vact: true, Vtop: true, BVS: true}
		sched := cl.EnableVSched(vm, feats)
		sched.SetBVSMedianGate(median)
		srv := cl.Workload(vm, sched, "masstree", 0).(*vsched.Server)
		srv.Start()
		cl.RunFor(6 * vsched.Second)
		srv.ResetStats()
		cl.RunFor(6 * vsched.Second)
		return float64(srv.E2E().P95()) / 1e6
	}
	var minAnchored, median float64
	for i := 0; i < b.N; i++ {
		minAnchored = run(false)
		median = run(true)
	}
	b.ReportMetric(minAnchored, "p95ms-minanchor")
	b.ReportMetric(median, "p95ms-median")
}

// BenchmarkAblationHeartbeatGranularity measures how vact's probed vCPU
// latency tracks ground truth as a function of the tick period that drives
// the heartbeat (design decision 2: probing accuracy is emergent from tick
// instrumentation).
func BenchmarkAblationHeartbeatGranularity(b *testing.B) {
	run := func() float64 {
		cl := vsched.NewCluster(vsched.ClusterConfig{Seed: 29, CoresPerSocket: 2})
		vm := cl.NewVM("vm", []int{0, 1})
		// Ground truth: 4ms inactive bursts on vCPU1.
		cl.AddPatternContender(1, 4*vsched.Millisecond, 6*vsched.Millisecond, 0)
		cl.EnableVSched(vm, vsched.Features{Vcap: true, Vact: true})
		cl.RunFor(10 * vsched.Second)
		return vm.VCPU(1).Latency().Milliseconds()
	}
	var measured float64
	for i := 0; i < b.N; i++ {
		measured = run()
	}
	b.ReportMetric(measured, "probed-latency-ms(truth=4)")
}

// benchRegistry runs the complete experiment registry through the harness
// at a reduced scale with the given worker-pool size.
func benchRegistry(b *testing.B, workers int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res := vsched.RunExperiments(vsched.HarnessConfig{
			BaseSeed: 42,
			Scale:    benchScale / 2,
			Workers:  workers,
		})
		if res.Failed() > 0 {
			b.Fatalf("%d trials failed", res.Failed())
		}
		b.ReportMetric(float64(res.EventsFired())/res.WallTime.Seconds(), "events/sec")
	}
}

// BenchmarkRegistrySerial is the reference path: the whole registry on one
// worker, exactly the trial order and seeds of the classic serial loop.
func BenchmarkRegistrySerial(b *testing.B) { benchRegistry(b, 1) }

// BenchmarkRegistryParallel fans the registry out over the worker pool. The
// output is byte-identical to the serial run (see internal/harness's
// determinism suite); the wall-clock ratio of these two benchmarks is the
// harness speedup, bounded by min(cores, total/longest-experiment).
func BenchmarkRegistryParallel(b *testing.B) {
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	benchRegistry(b, workers)
}

// BenchmarkEngineThroughput measures raw simulator speed: events per second
// on a busy 16-vCPU scenario — the cost floor under every experiment.
func BenchmarkEngineThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cl, vm, sched := contendedRig(vsched.AllFeatures())
		inst := cl.Workload(vm, sched, "nginx", 0)
		inst.Start()
		cl.RunFor(3 * vsched.Second)
		b.ReportMetric(float64(cl.Engine().Fired())/3, "events/simsec")
		_ = vm
	}
}
