package vsched_test

import (
	"strings"
	"testing"

	"vsched"
)

func TestClusterDefaults(t *testing.T) {
	cl := vsched.NewCluster(vsched.ClusterConfig{})
	if cl.Host().NumThreads() != 8 {
		t.Fatalf("default topology should be 8 threads, got %d", cl.Host().NumThreads())
	}
	if cl.Now() != 0 {
		t.Fatal("fresh cluster should start at t=0")
	}
	cl.RunFor(5 * vsched.Millisecond)
	if cl.Now() != vsched.Time(5*vsched.Millisecond) {
		t.Fatalf("RunFor landed at %v", cl.Now())
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	cl := vsched.NewCluster(vsched.ClusterConfig{Seed: 1, CoresPerSocket: 4})
	vm := cl.NewVM("vm", []int{0, 1, 2, 3})
	sched := cl.EnableVSched(vm, vsched.AllFeatures())
	for i := 0; i < 4; i++ {
		cl.AddStressor(i, vsched.DefaultWeight)
	}
	inst := cl.Workload(vm, sched, "sysbench", 4)
	inst.Start()
	cl.RunFor(5 * vsched.Second)
	if inst.Ops() == 0 {
		t.Fatal("workload made no progress")
	}
	// Probers must have learned a ~50% capacity.
	c := vm.VCPU(0).Capacity()
	if c < 380 || c > 650 {
		t.Fatalf("probed capacity %d, want ~512", c)
	}
}

func TestFacadeUnknownWorkloadPanics(t *testing.T) {
	cl := vsched.NewCluster(vsched.ClusterConfig{})
	vm := cl.NewVM("vm", []int{0})
	defer func() {
		if recover() == nil {
			t.Fatal("unknown workload must panic")
		}
	}()
	cl.Workload(vm, nil, "no-such-benchmark", 1)
}

func TestWorkloadNamesAndExperimentIDs(t *testing.T) {
	if len(vsched.WorkloadNames()) < 30 {
		t.Fatalf("catalogue too small: %d", len(vsched.WorkloadNames()))
	}
	ids := vsched.ExperimentIDs()
	if len(ids) != 26 {
		t.Fatalf("want 26 experiments (fig2..21 + tables + probeacc + fleet + attrib + fleetobs + fleetscale + faulttol + obsplane), got %d: %v", len(ids), ids)
	}
	for _, want := range []string{"fig2", "fig10b", "table2", "fig18", "fig21", "probeacc", "fleet", "attrib", "fleetscale", "faulttol", "obsplane"} {
		found := false
		for _, id := range ids {
			if id == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("experiment %s missing from registry", want)
		}
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	if _, err := vsched.RunExperiment("fig999", vsched.ExperimentOptions{}); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestRunExperimentSmoke(t *testing.T) {
	rep, err := vsched.RunExperiment("fig3", vsched.ExperimentOptions{Seed: 1, Scale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("fig3 should have 2 rows, got %d", len(rep.Rows))
	}
	if !strings.Contains(rep.String(), "fig3") {
		t.Fatal("report text should carry its id")
	}
}

func TestSetVCPULatencyAffectsTails(t *testing.T) {
	run := func(lat vsched.Duration) int64 {
		cl := vsched.NewCluster(vsched.ClusterConfig{Seed: 2, CoresPerSocket: 2})
		vm := cl.NewVM("vm", []int{0, 1})
		for i := 0; i < 2; i++ {
			cl.AddStressor(i, vsched.DefaultWeight)
			cl.SetVCPULatency(i, lat)
		}
		srv := cl.NewServer(vm, nil, vsched.ServerConfig{
			Name: "svc", Workers: 1, ServiceMean: 100 * vsched.Microsecond,
			Interarrival: 50 * vsched.Millisecond, LatencyMark: true,
		})
		srv.Start()
		cl.RunFor(20 * vsched.Second)
		return srv.E2E().P95()
	}
	lo, hi := run(2*vsched.Millisecond), run(12*vsched.Millisecond)
	if hi < 2*lo {
		t.Fatalf("tail latency should follow the latency knob: 2ms->%d 12ms->%d", lo, hi)
	}
}

func TestDeterminismAcrossFacade(t *testing.T) {
	run := func() uint64 {
		cl := vsched.NewCluster(vsched.ClusterConfig{Seed: 77, CoresPerSocket: 8})
		vm := cl.NewVM("vm", []int{0, 1, 2, 3, 4, 5, 6, 7})
		sched := cl.EnableVSched(vm, vsched.AllFeatures())
		for i := 0; i < 8; i++ {
			cl.AddStressor(i, vsched.DefaultWeight)
		}
		inst := cl.Workload(vm, sched, "nginx", 0)
		inst.Start()
		cl.RunFor(5 * vsched.Second)
		return inst.Ops()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed must reproduce exactly: %d vs %d", a, b)
	}
}

func TestEEVDFVMThroughFacade(t *testing.T) {
	cl := vsched.NewCluster(vsched.ClusterConfig{Seed: 3, CoresPerSocket: 4})
	p := vsched.DefaultGuestParams()
	p.Policy = vsched.PolicyEEVDF
	vm := cl.NewVMWithParams("vm", []int{0, 1, 2, 3}, p)
	sched := cl.EnableVSched(vm, vsched.AllFeatures())
	inst := cl.Workload(vm, sched, "sysbench", 4)
	inst.Start()
	cl.RunFor(3 * vsched.Second)
	if inst.Ops() == 0 {
		t.Fatal("EEVDF VM made no progress")
	}
}

func TestExtensionsThroughFacade(t *testing.T) {
	cl := vsched.NewCluster(vsched.ClusterConfig{Seed: 4, CoresPerSocket: 4})
	vm := cl.NewVM("vm", []int{0, 1, 2, 3})
	feats := vsched.AllFeatures()
	feats.Vllc = true
	sched := cl.EnableVSched(vm, feats)
	cl.AddStressor(0, vsched.DefaultWeight)
	cl.RunFor(8 * vsched.Second)
	// AutoTune returns sane, installed parameters.
	tuned := sched.AutoTune()
	if tuned.SamplePeriod < 100*vsched.Millisecond {
		t.Fatalf("tuned period %v below floor", tuned.SamplePeriod)
	}
	// CacheShare is measurable and bounded.
	if s := sched.CacheShare(0); s <= 0 || s > 1 {
		t.Fatalf("cache share out of range: %v", s)
	}
}
