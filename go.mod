module vsched

go 1.22
