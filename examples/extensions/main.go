// Extensions: the three features the paper's discussion sections sketch,
// working together — the EEVDF guest scheduler (§4), tunable
// auto-configuration (§6), and LLC-share probing (§8).
package main

import (
	"fmt"

	"vsched"
)

func main() {
	cl := vsched.NewCluster(vsched.ClusterConfig{
		Seed: 11, Sockets: 2, CoresPerSocket: 4,
	})

	// An EEVDF guest: same VM, different task-picking policy.
	gp := vsched.DefaultGuestParams()
	gp.Policy = vsched.PolicyEEVDF
	vm := cl.NewVMWithParams("eevdf-vm", []int{0, 1, 2, 3, 4, 5, 6, 7}, gp)

	// Long contention cycles on socket 1: 60ms bursts, so the default
	// 100ms sampling period aliases badly.
	for i := 4; i < 8; i++ {
		cl.AddPatternContender(i, 60*vsched.Millisecond, 60*vsched.Millisecond,
			vsched.Duration(i)*17*vsched.Millisecond)
	}

	// vSched with the cache prober enabled; its hooks attach to EEVDF
	// exactly as they do to CFS.
	feats := vsched.AllFeatures()
	feats.Vllc = true
	sched := cl.EnableVSched(vm, feats)

	// Cache-hungry residents pinned on socket 0: 24 MB of working set
	// against a 16 MB LLC.
	for i := 0; i < 3; i++ {
		vm.Spawn(fmt.Sprintf("cachehog%d", i),
			func(vsched.Time) vsched.Segment { return vsched.ComputeForever() },
			vsched.WithAffinity(i), vsched.WithFootprint(8))
	}

	cl.RunFor(12 * vsched.Second)

	fmt.Printf("guest policy: %v\n\n", gp.Policy)

	before := sched.Params()
	tuned := sched.AutoTune()
	fmt.Println("auto-tuning against 120ms host activity cycles:")
	fmt.Printf("  vcap sampling period: %v -> %v\n", before.SamplePeriod, tuned.SamplePeriod)
	fmt.Printf("  light sampling every: %v -> %v\n", before.LightEvery, tuned.LightEvery)
	fmt.Printf("  ivh migration threshold: %v -> %v\n", before.IVHMinRun, tuned.IVHMinRun)

	fmt.Println("\nprobed effective LLC share per socket:")
	fmt.Printf("  socket 0 (cache-hungry): %.2f\n", sched.CacheShare(0))
	fmt.Printf("  socket 1 (clean):        %.2f\n", sched.CacheShare(4))
}
