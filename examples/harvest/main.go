// Harvest: the stalled-running-task problem and ivh's fix. A single batch
// job on a 16-vCPU VM whose vCPUs each own a 50% share: without ivh the job
// stalls whenever its vCPU is preempted; with ivh it hops to unused vCPUs
// and harvests their idle shares.
package main

import (
	"fmt"

	"vsched"
)

func run(withIVH bool) float64 {
	cl := vsched.NewCluster(vsched.ClusterConfig{Seed: 3, CoresPerSocket: 16})
	ids := make([]int, 16)
	for i := range ids {
		ids[i] = i
	}
	vm := cl.NewVM("batch", ids)
	for i := 0; i < 16; i++ {
		cl.AddStressor(i, vsched.DefaultWeight)
	}

	feats := vsched.Features{Vcap: true, Vact: true, IVH: withIVH}
	sched := cl.EnableVSched(vm, feats)

	job := cl.Workload(vm, sched, "blackscholes", 1)
	job.Start()

	cl.RunFor(5 * vsched.Second)
	before := job.Ops()
	cl.RunFor(20 * vsched.Second)
	return float64(job.Ops()-before) / 20
}

func main() {
	fmt.Println("single-threaded batch job, every vCPU at a 50% share:")
	off := run(false)
	on := run(true)
	fmt.Printf("  without ivh: %6.1f ops/s (the job stalls with its vCPU)\n", off)
	fmt.Printf("  with ivh:    %6.1f ops/s (migrates to active unused vCPUs)\n", on)
	fmt.Printf("  -> +%.0f%% throughput harvested from idle vCPU shares\n", 100*(on/off-1))
}
