// Quickstart: an 8-vCPU VM on a half-contended host serving a web workload,
// first under stock CFS, then with vSched — the zero-to-result version of
// the paper's story.
package main

import (
	"fmt"

	"vsched"
)

func run(enable bool) (ops uint64, p95ms float64) {
	cl := vsched.NewCluster(vsched.ClusterConfig{Seed: 7, CoresPerSocket: 8})
	vm := cl.NewVM("web", []int{0, 1, 2, 3, 4, 5, 6, 7})

	// A co-tenant VM stresses every core: each of our vCPUs keeps only a
	// 50% share and suffers multi-millisecond inactive periods.
	for i := 0; i < 8; i++ {
		cl.AddStressor(i, vsched.DefaultWeight)
	}

	var sched *vsched.VSched
	if enable {
		sched = cl.EnableVSched(vm, vsched.AllFeatures())
	}

	// Nginx-like event loops: 4 workers each multiplexing 2 connections —
	// about half the vCPUs are busy at a time, so idle vCPUs (and their
	// unused shares) exist for vSched to exploit.
	srv := cl.NewServer(vm, sched, vsched.ServerConfig{
		Name: "web", Workers: 4, Connections: 8, Sticky: true,
		ServiceMean: 1500 * vsched.Microsecond, ServiceJit: 0.25,
	})
	srv.Start()

	cl.RunFor(6 * vsched.Second) // warmup: probers learn the vCPU dynamics
	srv.ResetStats()
	cl.RunFor(20 * vsched.Second)
	return srv.Ops(), float64(srv.E2E().P95()) / 1e6
}

func main() {
	fmt.Println("nginx on an 8-vCPU VM, every core 50% contended:")
	opsCFS, p95CFS := run(false)
	opsVS, p95VS := run(true)
	fmt.Printf("  stock CFS: %6d requests, p95 %6.2f ms\n", opsCFS, p95CFS)
	fmt.Printf("  vSched:    %6d requests, p95 %6.2f ms\n", opsVS, p95VS)
	fmt.Printf("  -> throughput %+.1f%%, p95 %+.1f%%\n",
		100*(float64(opsVS)/float64(opsCFS)-1), 100*(p95VS/p95CFS-1))
}
