// Tailserver: the extended-runqueue-latency problem and bvs's fix. A
// latency-sensitive service runs on a VM whose vCPUs have asymmetric
// latency (half wait 3ms to get on CPU, half 6ms, all at 50% capacity);
// biased vCPU selection steers small requests to the low-latency half.
package main

import (
	"fmt"

	"vsched"
)

func run(feats vsched.Features) (p95, queue95 float64) {
	cl := vsched.NewCluster(vsched.ClusterConfig{Seed: 21, CoresPerSocket: 16})
	ids := make([]int, 16)
	for i := range ids {
		ids[i] = i
	}
	vm := cl.NewVM("svc", ids)

	for i := 0; i < 16; i++ {
		cl.AddStressor(i, vsched.DefaultWeight) // 50% share everywhere
		lat := 6 * vsched.Millisecond
		if i >= 8 {
			lat = 3 * vsched.Millisecond
		}
		cl.SetVCPULatency(i, lat)
	}

	sched := cl.EnableVSched(vm, feats)
	srv := cl.Workload(vm, sched, "masstree", 0).(*vsched.Server)
	srv.Start()

	cl.RunFor(8 * vsched.Second)
	srv.ResetStats()
	cl.RunFor(20 * vsched.Second)
	return float64(srv.E2E().P95()) / 1e6, float64(srv.Queue().P95()) / 1e6
}

func main() {
	probers := vsched.Features{Vcap: true, Vact: true, Vtop: true}
	withBVS := probers
	withBVS.BVS = true

	fmt.Println("masstree-like service, asymmetric vCPU latency (3ms vs 6ms):")
	p95A, q95A := run(probers)
	p95B, q95B := run(withBVS)
	fmt.Printf("  probers only: p95 %6.2f ms (queue %5.2f ms)\n", p95A, q95A)
	fmt.Printf("  with bvs:     p95 %6.2f ms (queue %5.2f ms)\n", p95B, q95B)
	fmt.Printf("  -> bvs cuts p95 by %.0f%%\n", 100*(1-p95B/p95A))
}
