// Topology: vtop probing in action. An 8-vCPU VM spans two sockets with SMT
// pairs and one stacked pair; the hypervisor exposes none of that. vtop
// measures cache-line transfer latencies, classifies every pair, and
// publishes the real topology to the scheduler.
package main

import (
	"fmt"

	"vsched"
)

func main() {
	cl := vsched.NewCluster(vsched.ClusterConfig{
		Seed: 5, Sockets: 2, CoresPerSocket: 2, ThreadsPerCore: 2, SMT: true,
	})
	h := cl.Host()
	// vCPU -> hardware thread: two SMT pairs in socket 0, one SMT pair in
	// socket 1, and vCPUs 6,7 stacked on one thread.
	threads := []int{
		int(h.ThreadAt(0, 0, 0).ID()), int(h.ThreadAt(0, 0, 1).ID()),
		int(h.ThreadAt(0, 1, 0).ID()), int(h.ThreadAt(0, 1, 1).ID()),
		int(h.ThreadAt(1, 0, 0).ID()), int(h.ThreadAt(1, 0, 1).ID()),
		int(h.ThreadAt(1, 1, 0).ID()), int(h.ThreadAt(1, 1, 0).ID()),
	}
	vm := cl.NewVM("probe-me", threads)
	sched := cl.EnableVSched(vm, vsched.Features{Vtop: true})

	cl.RunFor(5 * vsched.Second) // bootstrap full probe + validations

	vt := sched.Vtop()
	fmt.Printf("full probe took %v, validation %v\n\n", vt.LastFullTime(), vt.LastValidateTime())

	fmt.Println("probed cache-line transfer latency matrix (ns, 'inf' = stacked):")
	m := vt.Matrix()
	fmt.Print("      ")
	for j := range m {
		fmt.Printf("v%-5d", j)
	}
	fmt.Println()
	for i := range m {
		fmt.Printf("v%-5d", i)
		for j := range m[i] {
			switch {
			case i == j:
				fmt.Printf("%-6s", "-")
			case m[i][j] > 1<<40:
				fmt.Printf("%-6s", "inf")
			default:
				fmt.Printf("%-6d", m[i][j])
			}
		}
		fmt.Println()
	}

	b := vt.Belief()
	fmt.Println("\ndiscovered topology:")
	for _, group := range b.Sockets() {
		fmt.Printf("  socket group %v\n", group)
	}
	for _, g := range b.StackGroups() {
		fmt.Printf("  stacked vCPUs: %v\n", g)
	}
	fmt.Println("\nthe scheduler now sees the real SMT/LLC/stacking structure;")
	fmt.Println("rwc would hide one vCPU of each stacked pair from task placement.")
}
