// Package vsched is a from-scratch reproduction of "Optimizing Task
// Scheduling in Cloud VMs with Accurate vCPU Abstraction" (EuroSys '25): a
// deterministic simulation of the whole virtualized stack — physical host,
// KVM-like hypervisor scheduler, Linux-CFS-like guest scheduler — with the
// paper's vSched system (the vProbers vcap/vact/vtop and the techniques
// bvs/ivh/rwc) implemented on top, plus the paper's workload suite and an
// experiment harness that regenerates every table and figure of its
// evaluation.
//
// The root package is a facade: it wires the internal packages together for
// the common cases. Typical use:
//
//	cl := vsched.NewCluster(vsched.ClusterConfig{Sockets: 1, CoresPerSocket: 8})
//	vm := cl.NewVM("guest", []int{0, 1, 2, 3})
//	sched := cl.EnableVSched(vm, vsched.AllFeatures())
//	cl.AddStressor(1, vsched.DefaultWeight) // a noisy co-tenant on core 1
//	srv := cl.Workload(vm, sched, "nginx", 4)
//	srv.Start()
//	cl.RunFor(10 * vsched.Second)
//	fmt.Println(srv.Ops())
//
// For the paper's experiments, use RunExperiment or the cmd/experiments
// binary; for custom scenarios, cmd/vschedsim.
package vsched

import (
	"fmt"

	"vsched/internal/cachemodel"
	"vsched/internal/core"
	"vsched/internal/experiments"
	"vsched/internal/guest"
	"vsched/internal/harness"
	"vsched/internal/host"
	"vsched/internal/sim"
	"vsched/internal/workload"
)

// Re-exported core types. The aliases give downstream users the full APIs of
// the underlying packages through the public module path.
type (
	// Engine is the discrete-event simulation engine.
	Engine = sim.Engine
	// Time is an absolute virtual timestamp (ns).
	Time = sim.Time
	// Duration is a span of virtual time (ns).
	Duration = sim.Duration
	// Host is the physical machine plus hypervisor scheduler.
	Host = host.Host
	// HostConfig describes the physical machine.
	HostConfig = host.Config
	// Thread is one hardware thread.
	Thread = host.Thread
	// Entity is anything the hypervisor schedules (vCPU or contender).
	Entity = host.Entity
	// VM is a guest virtual machine.
	VM = guest.VM
	// VCPU is a virtual CPU inside a VM.
	VCPU = guest.VCPU
	// Task is a guest thread.
	Task = guest.Task
	// TaskOpt configures a spawned task.
	TaskOpt = guest.TaskOpt
	// Behavior is a task program: it returns the next segment each time the
	// previous one completes.
	Behavior = guest.Behavior
	// Segment is one step of a task program.
	Segment = guest.Segment
	// GuestParams are the guest scheduler tunables.
	GuestParams = guest.Params
	// SchedPolicy selects the guest scheduling policy (CFS or EEVDF).
	SchedPolicy = guest.SchedPolicy
	// VSched is the paper's system bound to one VM.
	VSched = core.VSched
	// Features selects vSched components.
	Features = core.Features
	// Params are the vSched tunables (paper Table 1).
	Params = core.Params
	// WorkloadEnv parameterises workload instantiation.
	WorkloadEnv = workload.Env
	// WorkloadInstance is a running workload.
	WorkloadInstance = workload.Instance
	// Server is the request/response workload (Tailbench/Nginx style).
	Server = workload.Server
	// ServerConfig parameterises a custom Server.
	ServerConfig = workload.ServerConfig
)

// Re-exported constants and helpers.
const (
	// Nanosecond .. Second are virtual-time units.
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
	// DefaultWeight is the CFS weight of a nice-0 entity.
	DefaultWeight = host.DefaultWeight
)

// PolicyCFS and PolicyEEVDF are the guest scheduling policies.
const (
	PolicyCFS   = guest.PolicyCFS
	PolicyEEVDF = guest.PolicyEEVDF
)

// DefaultGuestParams returns Linux-like guest scheduler parameters.
func DefaultGuestParams() GuestParams { return guest.DefaultParams() }

// Task options, re-exported for spawning custom tasks via VM.Spawn.
var (
	WithAffinity         = guest.WithAffinity
	WithFootprint        = guest.WithFootprint
	WithIdlePolicy       = guest.WithIdlePolicy
	WithLatencySensitive = guest.WithLatencySensitive
	WithWeight           = guest.WithWeight
	StartOn              = guest.StartOn
)

// Task program segments, re-exported for writing custom behaviors.
var (
	ComputeSeg     = guest.Compute
	ComputeForever = guest.ComputeForever
	SleepSeg       = guest.Sleep
	ExitSeg        = guest.Exit
)

// AllFeatures returns full vSched (probers + bvs + ivh + rwc).
func AllFeatures() Features { return core.AllFeatures() }

// EnhancedCFS returns the paper's "enhanced CFS" feature set (probers + rwc).
func EnhancedCFS() Features { return core.EnhancedCFS() }

// DefaultParams returns the paper's Table 1 tunables.
func DefaultParams() Params { return core.DefaultParams() }

// ClusterConfig describes the simulated physical host.
type ClusterConfig struct {
	// Seed drives all randomness; equal seeds give identical runs.
	Seed int64
	// Sockets, CoresPerSocket, ThreadsPerCore define the topology.
	// Zero values default to 1 socket × 8 cores × 1 thread.
	Sockets        int
	CoresPerSocket int
	ThreadsPerCore int
	// SMT enables SMT contention and turbo effects (realistic speeds);
	// disabled they stay flat, which is easier to reason about.
	SMT bool
}

// Cluster is a simulated host plus its engine.
type Cluster struct {
	eng *sim.Engine
	h   *host.Host
}

// NewCluster builds a simulated host.
func NewCluster(cfg ClusterConfig) *Cluster {
	if cfg.Sockets <= 0 {
		cfg.Sockets = 1
	}
	if cfg.CoresPerSocket <= 0 {
		cfg.CoresPerSocket = 8
	}
	if cfg.ThreadsPerCore <= 0 {
		cfg.ThreadsPerCore = 1
	}
	eng := sim.NewEngine(cfg.Seed)
	hc := host.DefaultConfig()
	hc.Sockets = cfg.Sockets
	hc.CoresPerSocket = cfg.CoresPerSocket
	hc.ThreadsPerCore = cfg.ThreadsPerCore
	if !cfg.SMT {
		hc.SMTFactor = 1.0
		hc.TurboFactor = 1.0
	}
	return &Cluster{eng: eng, h: host.New(eng, hc)}
}

// Engine returns the simulation engine.
func (c *Cluster) Engine() *Engine { return c.eng }

// Host returns the physical host model.
func (c *Cluster) Host() *Host { return c.h }

// Now returns the current virtual time.
func (c *Cluster) Now() Time { return c.eng.Now() }

// RunFor advances virtual time by d.
func (c *Cluster) RunFor(d Duration) { c.eng.RunFor(d) }

// NewVM creates and starts a VM whose vCPU i is pinned on hardware thread
// threadIDs[i].
func (c *Cluster) NewVM(name string, threadIDs []int) *VM {
	return c.NewVMWithParams(name, threadIDs, guest.DefaultParams())
}

// NewVMWithParams creates and starts a VM with explicit guest scheduler
// parameters (e.g. Policy: PolicyEEVDF).
func (c *Cluster) NewVMWithParams(name string, threadIDs []int, p GuestParams) *VM {
	threads := make([]*host.Thread, len(threadIDs))
	for i, id := range threadIDs {
		threads[i] = c.h.Thread(id)
	}
	vm := guest.NewVM(c.h, name, threads, p)
	vm.Start()
	return vm
}

// EnableVSched attaches and starts vSched on a VM with default tunables.
func (c *Cluster) EnableVSched(vm *VM, feats Features) *VSched {
	p := core.DefaultParams()
	p.NominalSpeed = c.h.Config().BaseSpeed
	return c.EnableVSchedWithParams(vm, feats, p)
}

// EnableVSchedWithParams attaches and starts vSched with explicit tunables
// (paper Table 1 values are the defaults; see DefaultParams).
func (c *Cluster) EnableVSchedWithParams(vm *VM, feats Features, p Params) *VSched {
	s := core.New(vm, feats, p, cachemodel.Default())
	s.Start()
	return s
}

// AddStressor puts an always-runnable CFS co-tenant with the given weight on
// hardware thread threadID; the vCPU sharing it gets the complementary fair
// share.
func (c *Cluster) AddStressor(threadID int, weight int64) *Entity {
	return host.NewStressor(c.h, fmt.Sprintf("stressor-%d", threadID), c.h.Thread(threadID), weight)
}

// AddPatternContender puts a realtime square-wave co-tenant on a thread: the
// vCPU there is deterministically inactive for `on` every `on+off`.
func (c *Cluster) AddPatternContender(threadID int, on, off, phase Duration) *host.PatternContender {
	return host.NewPatternContender(c.h, fmt.Sprintf("pattern-%d", threadID), c.h.Thread(threadID), on, off, phase)
}

// SetVCPULatency tunes the host scheduler granularities of a thread so the
// vCPU there keeps its share but waits ~lat to get back on CPU (the paper's
// sched_min/wakeup_granularity knob).
func (c *Cluster) SetVCPULatency(threadID int, lat Duration) {
	c.h.Thread(threadID).SetGranularities(lat, 2*lat)
}

// Workload instantiates a catalogued benchmark (see WorkloadNames) on a VM.
// sched may be nil (stock CFS); threads 0 uses the benchmark default.
func (c *Cluster) Workload(vm *VM, sched *VSched, name string, threads int) WorkloadInstance {
	spec, ok := workload.ByName(name)
	if !ok {
		panic(fmt.Sprintf("vsched: unknown workload %q (see vsched.WorkloadNames)", name))
	}
	env := workload.Env{VM: vm, Threads: threads, Nominal: c.h.Config().BaseSpeed}
	if sched != nil {
		env.Group = sched.UserGroup()
		env.BEGroup = sched.BEGroup()
	}
	return spec.New(env)
}

// NewServer builds a custom request/response workload on a VM (for loads
// the catalogue doesn't cover: open vs closed loop, sticky connections,
// service-time distributions).
func (c *Cluster) NewServer(vm *VM, sched *VSched, cfg ServerConfig) *Server {
	env := workload.Env{VM: vm, Nominal: c.h.Config().BaseSpeed}
	if sched != nil {
		env.Group = sched.UserGroup()
		env.BEGroup = sched.BEGroup()
	}
	return workload.NewServer(env, cfg)
}

// WorkloadNames lists the catalogued benchmarks.
func WorkloadNames() []string { return workload.Names() }

// ExperimentIDs lists the paper experiments RunExperiment accepts.
func ExperimentIDs() []string {
	var ids []string
	for _, r := range experiments.Registry() {
		ids = append(ids, r.ID)
	}
	return ids
}

// ExperimentOptions configure a RunExperiment call.
type ExperimentOptions = experiments.Options

// ExperimentReport is the regenerated table/figure.
type ExperimentReport = experiments.Report

// RunExperiment regenerates one of the paper's tables or figures (fig2..21,
// table2..4) and returns its report. Scale < 1 shrinks measurement windows.
func RunExperiment(id string, opt ExperimentOptions) (*ExperimentReport, error) {
	r, ok := experiments.ByID(id)
	if !ok {
		return nil, fmt.Errorf("vsched: unknown experiment %q", id)
	}
	return r.Run(opt), nil
}

// HarnessConfig parameterises RunExperiments: worker pool size, replicate
// seeds per experiment, per-trial timeout, scale.
type HarnessConfig = harness.Config

// HarnessResult is a full harness run: per-trial reports and metadata plus
// per-experiment multi-seed aggregates.
type HarnessResult = harness.Result

// TrialResult is one (experiment, replicate) outcome inside a HarnessResult.
type TrialResult = harness.TrialResult

// RunExperiments fans the experiment registry (or cfg.Runners) out over a
// bounded worker pool, one private engine per (experiment, replicate) trial.
// Results are independent of scheduling: parallel output is byte-identical
// to serial output for the same seed set.
func RunExperiments(cfg HarnessConfig) *HarnessResult { return harness.Run(cfg) }

// DeriveSeed maps (baseSeed, experimentID, replicate) to the trial seed the
// harness uses; replicate 0 keeps the base seed.
func DeriveSeed(base int64, experimentID string, replicate int) int64 {
	return harness.DeriveSeed(base, experimentID, replicate)
}
