package vsched_test

import (
	"fmt"

	"vsched"
)

// Example builds the paper's core scenario end to end: a VM on a contended
// host, vSched attached, a workload measured. Deterministic by seed.
func Example() {
	cl := vsched.NewCluster(vsched.ClusterConfig{Seed: 42, CoresPerSocket: 4})
	vm := cl.NewVM("demo", []int{0, 1, 2, 3})

	// A co-tenant on every core: each vCPU keeps a 50% fair share.
	for i := 0; i < 4; i++ {
		cl.AddStressor(i, vsched.DefaultWeight)
	}

	sched := cl.EnableVSched(vm, vsched.AllFeatures())
	cl.RunFor(5 * vsched.Second) // let the probers learn

	fmt.Println("probed capacity of vCPU0 ~512:", vm.VCPU(0).Capacity() > 400 && vm.VCPU(0).Capacity() < 620)
	fmt.Println("probed vCPU latency nonzero:", vm.VCPU(0).Latency() > 0)
	_ = sched
	// Output:
	// probed capacity of vCPU0 ~512: true
	// probed vCPU latency nonzero: true
}

// ExampleRunExperiment regenerates one of the paper's figures
// programmatically.
func ExampleRunExperiment() {
	rep, err := vsched.RunExperiment("fig3", vsched.ExperimentOptions{Seed: 42, Scale: 0.2})
	if err != nil {
		panic(err)
	}
	fmt.Println(rep.ID, "rows:", len(rep.Rows))
	// Output:
	// fig3 rows: 2
}

// ExampleCluster_Workload runs a catalogued benchmark on a plain-CFS VM.
func ExampleCluster_Workload() {
	cl := vsched.NewCluster(vsched.ClusterConfig{Seed: 1, CoresPerSocket: 2})
	vm := cl.NewVM("vm", []int{0, 1})
	inst := cl.Workload(vm, nil, "fio", 2)
	inst.Start()
	cl.RunFor(1 * vsched.Second)
	fmt.Println("fio made progress:", inst.Ops() > 1000)
	// Output:
	// fio made progress: true
}
