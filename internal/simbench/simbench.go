// Package simbench defines the simulator-core benchmark: the headline
// throughput metrics for the discrete-event engine, the scenarios that
// measure them, and a schema-versioned JSON artifact (BENCH_core.json) so
// recorded baselines stay machine-readable across engine changes.
//
// Two headline metrics:
//
//   - events fired per wall-clock second, on a hold-model microbenchmark
//     that keeps a fixed backlog of pending events while firing and
//     rescheduling — the pure engine primitive mix;
//   - simulated vCPU-seconds per wall-clock second, on a synthetic macro
//     scenario approximating the real simulator load (per-vCPU periodic
//     ticks plus jittered slice events), which is the number that tells you
//     how much scenario time a second of CPU buys.
//
// Every scenario runs on both the production timing-wheel engine and the
// retained heap engine (internal/sim/heapengine), so speedups are recorded
// as measurements, not claims.
package simbench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"vsched/internal/harness"
	"vsched/internal/metrics"
	"vsched/internal/sim"
	"vsched/internal/sim/heapengine"
)

// Schema identifies the artifact format. Bump the version when the JSON
// shape changes; readers reject artifacts whose schema they don't know.
const Schema = "vsched.simbench/v1"

// EngineKind selects which event-queue implementation a scenario runs on.
type EngineKind string

const (
	// Wheel is the production hierarchical timing-wheel engine.
	Wheel EngineKind = "wheel"
	// Heap is the original container/heap engine kept as baseline.
	Heap EngineKind = "heap"
)

// engine is the least common denominator of the two engines that the
// scenarios need.
type engine interface {
	After(d sim.Duration, fn func())
	Step() bool
	Run(until sim.Time)
	Now() sim.Time
	Rand() interface{ Int63n(int64) int64 }
}

type wheelEng struct{ e *sim.Engine }

func (w wheelEng) After(d sim.Duration, fn func())        { w.e.After(d, fn) }
func (w wheelEng) Step() bool                             { return w.e.Step() }
func (w wheelEng) Run(until sim.Time)                     { w.e.Run(until) }
func (w wheelEng) Now() sim.Time                          { return w.e.Now() }
func (w wheelEng) Rand() interface{ Int63n(int64) int64 } { return w.e.Rand() }

type heapEng struct{ e *heapengine.Engine }

func (h heapEng) After(d sim.Duration, fn func())        { h.e.After(d, fn) }
func (h heapEng) Step() bool                             { return h.e.Step() }
func (h heapEng) Run(until sim.Time)                     { h.e.Run(until) }
func (h heapEng) Now() sim.Time                          { return h.e.Now() }
func (h heapEng) Rand() interface{ Int63n(int64) int64 } { return h.e.Rand() }

func newEngine(kind EngineKind, seed int64) (engine, error) {
	switch kind {
	case Wheel:
		return wheelEng{sim.NewEngine(seed)}, nil
	case Heap:
		return heapEng{heapengine.NewEngine(seed)}, nil
	}
	return nil, fmt.Errorf("simbench: unknown engine kind %q", kind)
}

// Stat is an aggregated sample: mean±stddev over replicate runs, with the
// range and count preserved.
type Stat struct {
	Mean   float64 `json:"mean"`
	Stddev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	N      uint64  `json:"n"`
}

func statOf(s metrics.Summary) Stat {
	return Stat{Mean: s.Mean(), Stddev: s.Stddev(), Min: s.Min(), Max: s.Max(), N: s.N()}
}

// ScenarioResult is one (scenario, engine) cell of the benchmark.
type ScenarioResult struct {
	// Name identifies the scenario, e.g. "hold/pending=100000" or
	// "vcpu_ticks/vcpus=64".
	Name   string     `json:"name"`
	Engine EngineKind `json:"engine"`
	// EventsPerSec is events fired per wall-clock second.
	EventsPerSec Stat `json:"events_per_sec"`
	// VCPUSecPerSec is simulated vCPU-seconds per wall-clock second; only
	// macro scenarios report it (zero N otherwise).
	VCPUSecPerSec Stat `json:"vcpu_sec_per_sec,omitempty"`
	// LifetimesPerSec is completed VM lifetimes simulated per wall-clock
	// second; only the fleet family's macro scenario reports it.
	LifetimesPerSec Stat `json:"lifetimes_per_sec,omitempty"`
}

// Result is the full benchmark artifact (BENCH_core.json).
type Result struct {
	Schema    string           `json:"schema"`
	Name      string           `json:"name"` // benchmark family, "core"
	BaseSeed  int64            `json:"base_seed"`
	Reps      int              `json:"reps"`
	Smoke     bool             `json:"smoke,omitempty"`
	GoVersion string           `json:"go_version"`
	Scenarios []ScenarioResult `json:"scenarios"`
}

// Write validates r, stamps the schema, and emits indented JSON.
func Write(w io.Writer, r Result) error {
	r.Schema = Schema
	if err := validate(r); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Read parses and validates a benchmark artifact.
func Read(rd io.Reader) (Result, error) {
	var r Result
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return Result{}, fmt.Errorf("simbench: parsing artifact: %w", err)
	}
	if err := validate(r); err != nil {
		return Result{}, err
	}
	return r, nil
}

func validate(r Result) error {
	if r.Schema != Schema {
		return fmt.Errorf("simbench: unknown schema %q (want %q)", r.Schema, Schema)
	}
	if r.Name == "" {
		return fmt.Errorf("simbench: artifact has no benchmark name")
	}
	if r.Reps < 1 {
		return fmt.Errorf("simbench: reps %d < 1", r.Reps)
	}
	if len(r.Scenarios) == 0 {
		return fmt.Errorf("simbench: artifact has no scenarios")
	}
	for _, s := range r.Scenarios {
		if s.Name == "" {
			return fmt.Errorf("simbench: scenario with empty name")
		}
		if s.Engine != Wheel && s.Engine != Heap {
			return fmt.Errorf("simbench: scenario %q has unknown engine %q", s.Name, s.Engine)
		}
		if s.EventsPerSec.N == 0 {
			return fmt.Errorf("simbench: scenario %q/%s has no events_per_sec samples", s.Name, s.Engine)
		}
	}
	return nil
}

// Speedup returns the wheel-over-heap events/sec ratio for the named
// scenario, or ok=false if either engine's cell is missing.
func (r Result) Speedup(scenario string) (float64, bool) {
	var wheel, heap float64
	for _, s := range r.Scenarios {
		if s.Name != scenario {
			continue
		}
		switch s.Engine {
		case Wheel:
			wheel = s.EventsPerSec.Mean
		case Heap:
			heap = s.EventsPerSec.Mean
		}
	}
	if wheel == 0 || heap == 0 {
		return 0, false
	}
	return wheel / heap, true
}

// runHold executes the hold-model microbenchmark: fill the queue to
// `pending` events with the production delay mix, then fire/reschedule
// `events` times. Returns events fired per wall second.
func runHold(kind EngineKind, seed int64, pending, events int) (float64, error) {
	e, err := newEngine(kind, seed)
	if err != nil {
		return 0, err
	}
	rng := e.Rand()
	delay := func() sim.Duration {
		// ~2% far-future timers, the rest near-future tick/slice territory —
		// the mix the real scenarios produce.
		if rng.Int63n(50) == 0 {
			return sim.Duration(rng.Int63n(int64(100 * sim.Second)))
		}
		return sim.Duration(rng.Int63n(int64(10 * sim.Millisecond)))
	}
	fn := func() {}
	for i := 0; i < pending; i++ {
		e.After(delay(), fn)
	}
	start := time.Now()
	for i := 0; i < events; i++ {
		e.Step()
		e.After(delay(), fn)
	}
	wall := time.Since(start).Seconds()
	if wall <= 0 {
		wall = 1e-9
	}
	return float64(events) / wall, nil
}

// runVCPUTicks executes the synthetic macro scenario: `vcpus` virtual CPUs,
// each carrying a periodic 1ms tick and a jittered slice timer that
// reschedules on fire (and is occasionally cancelled and re-armed, like real
// preemption). Returns (simulated vCPU-seconds per wall second, events per
// wall second).
func runVCPUTicks(kind EngineKind, seed int64, vcpus int, dur sim.Duration) (float64, float64, error) {
	e, err := newEngine(kind, seed)
	if err != nil {
		return 0, 0, err
	}
	rng := e.Rand()
	fired := 0
	for i := 0; i < vcpus; i++ {
		var tick func()
		tick = func() {
			fired++
			e.After(sim.Millisecond, tick)
		}
		e.After(sim.Duration(rng.Int63n(int64(sim.Millisecond))), tick)
		var slice func()
		slice = func() {
			fired++
			// 100µs..10ms, like granularity/quota boundaries.
			e.After(100*sim.Microsecond+sim.Duration(rng.Int63n(int64(10*sim.Millisecond))), slice)
		}
		e.After(sim.Duration(rng.Int63n(int64(5*sim.Millisecond))), slice)
	}
	start := time.Now()
	e.Run(sim.Time(dur))
	wall := time.Since(start).Seconds()
	if wall <= 0 {
		wall = 1e-9
	}
	simSec := dur.Seconds() * float64(vcpus)
	return simSec / wall, float64(fired) / wall, nil
}

// CoreConfig parameterizes RunCore.
type CoreConfig struct {
	BaseSeed int64
	Reps     int
	// Smoke shrinks every scenario to a fraction of a second of work; used
	// by CI to check the pipeline end to end without paying benchmark time.
	Smoke bool
}

// RunCore runs the full core benchmark matrix — hold-model at several
// backlog sizes plus the vCPU-tick macro scenario, on both engines — and
// aggregates replicate runs into the artifact. Progress lines go to log (may
// be nil).
func RunCore(cfg CoreConfig, log io.Writer) (Result, error) {
	if cfg.Reps < 1 {
		cfg.Reps = 1
	}
	holdSizes := []int{1_000, 10_000, 100_000}
	events := 2_000_000
	vcpus := 64
	macroDur := 20 * sim.Second
	if cfg.Smoke {
		holdSizes = []int{1_000}
		events = 20_000
		vcpus = 4
		macroDur = 200 * sim.Millisecond
	}
	res := Result{
		Schema:    Schema,
		Name:      "core",
		BaseSeed:  cfg.BaseSeed,
		Reps:      cfg.Reps,
		Smoke:     cfg.Smoke,
		GoVersion: runtime.Version(),
	}
	logf := func(format string, args ...any) {
		if log != nil {
			fmt.Fprintf(log, format, args...)
		}
	}
	for _, kind := range []EngineKind{Heap, Wheel} {
		for _, pending := range holdSizes {
			name := fmt.Sprintf("hold/pending=%d", pending)
			var eps metrics.Summary
			for rep := 0; rep < cfg.Reps; rep++ {
				seed := harness.DeriveSeed(cfg.BaseSeed, "simbench/"+name+"/"+string(kind), rep)
				v, err := runHold(kind, seed, pending, events)
				if err != nil {
					return Result{}, err
				}
				eps.Add(v)
			}
			logf("%-28s %-5s %.3g events/s (±%.2g)\n", name, kind, eps.Mean(), eps.Stddev())
			res.Scenarios = append(res.Scenarios, ScenarioResult{
				Name: name, Engine: kind, EventsPerSec: statOf(eps),
			})
		}
		name := fmt.Sprintf("vcpu_ticks/vcpus=%d", vcpus)
		var vps, eps metrics.Summary
		for rep := 0; rep < cfg.Reps; rep++ {
			seed := harness.DeriveSeed(cfg.BaseSeed, "simbench/"+name+"/"+string(kind), rep)
			v, ev, err := runVCPUTicks(kind, seed, vcpus, macroDur)
			if err != nil {
				return Result{}, err
			}
			vps.Add(v)
			eps.Add(ev)
		}
		logf("%-28s %-5s %.3g vCPU-s/s, %.3g events/s\n", name, kind, vps.Mean(), eps.Mean())
		res.Scenarios = append(res.Scenarios, ScenarioResult{
			Name: name, Engine: kind,
			EventsPerSec:  statOf(eps),
			VCPUSecPerSec: statOf(vps),
		})
	}
	return res, nil
}
