package simbench

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func sampleResult() Result {
	return Result{
		Schema:    Schema,
		Name:      "core",
		BaseSeed:  42,
		Reps:      3,
		GoVersion: "go1.0-test",
		Scenarios: []ScenarioResult{
			{
				Name: "hold/pending=1000", Engine: Heap,
				EventsPerSec: Stat{Mean: 1e6, Stddev: 1e4, Min: 9.9e5, Max: 1.1e6, N: 3},
			},
			{
				Name: "hold/pending=1000", Engine: Wheel,
				EventsPerSec: Stat{Mean: 3e6, Stddev: 2e4, Min: 2.9e6, Max: 3.1e6, N: 3},
			},
			{
				Name: "vcpu_ticks/vcpus=64", Engine: Wheel,
				EventsPerSec:  Stat{Mean: 2e6, Stddev: 0, Min: 2e6, Max: 2e6, N: 3},
				VCPUSecPerSec: Stat{Mean: 500, Stddev: 10, Min: 490, Max: 510, N: 3},
			},
		},
	}
}

func TestArtifactRoundTrip(t *testing.T) {
	want := sampleResult()
	var buf bytes.Buffer
	if err := Write(&buf, want); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestReadRejectsBadArtifacts(t *testing.T) {
	cases := map[string]func(*Result){
		"wrong schema":     func(r *Result) { r.Schema = "vsched.simbench/v999" },
		"no name":          func(r *Result) { r.Name = "" },
		"zero reps":        func(r *Result) { r.Reps = 0 },
		"no scenarios":     func(r *Result) { r.Scenarios = nil },
		"unnamed scenario": func(r *Result) { r.Scenarios[0].Name = "" },
		"unknown engine":   func(r *Result) { r.Scenarios[0].Engine = "abacus" },
		"empty stat":       func(r *Result) { r.Scenarios[0].EventsPerSec = Stat{} },
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			r := sampleResult()
			mutate(&r)
			// Serialize without Write's validation/stamping.
			var buf bytes.Buffer
			okR := sampleResult()
			if err := Write(&buf, okR); err != nil {
				t.Fatalf("Write of valid artifact: %v", err)
			}
			// Mutate the valid JSON through a re-encode of the broken struct.
			buf.Reset()
			enc := jsonEncode(&buf, r)
			if enc != nil {
				t.Fatalf("encode: %v", enc)
			}
			if _, err := Read(&buf); err == nil {
				t.Fatalf("Read accepted artifact with %s", name)
			}
		})
	}
}

func TestWriteStampsAndValidates(t *testing.T) {
	r := sampleResult()
	r.Schema = "" // Write must stamp it
	var buf bytes.Buffer
	if err := Write(&buf, r); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if !strings.Contains(buf.String(), Schema) {
		t.Fatal("Write did not stamp the schema")
	}
	bad := sampleResult()
	bad.Scenarios = nil
	if err := Write(&buf, bad); err == nil {
		t.Fatal("Write accepted an invalid artifact")
	}
}

func TestSpeedup(t *testing.T) {
	r := sampleResult()
	s, ok := r.Speedup("hold/pending=1000")
	if !ok || s != 3.0 {
		t.Fatalf("Speedup = %v, %v; want 3, true", s, ok)
	}
	if _, ok := r.Speedup("vcpu_ticks/vcpus=64"); ok {
		t.Fatal("Speedup with a missing heap cell must report !ok")
	}
}

// TestRunCoreSmoke runs the whole pipeline at smoke scale: both engines,
// every scenario, artifact written and read back, wheel at least as fast as
// measurement noise allows (no threshold: smoke runs are too short to gate
// on throughput; the real gate is the recorded BENCH_core.json).
func TestRunCoreSmoke(t *testing.T) {
	res, err := RunCore(CoreConfig{BaseSeed: 42, Reps: 2, Smoke: true}, nil)
	if err != nil {
		t.Fatalf("RunCore: %v", err)
	}
	// 2 engines × (1 hold size + 1 macro) = 4 scenarios.
	if len(res.Scenarios) != 4 {
		t.Fatalf("scenarios = %d, want 4", len(res.Scenarios))
	}
	var buf bytes.Buffer
	if err := Write(&buf, res); err != nil {
		t.Fatalf("Write: %v", err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !back.Smoke || back.Reps != 2 {
		t.Fatalf("artifact metadata lost: %+v", back)
	}
	if _, ok := back.Speedup("hold/pending=1000"); !ok {
		t.Fatal("speedup cell missing from smoke artifact")
	}
	// Determinism of the derived seeds: same config, same scenario set.
	res2, err := RunCore(CoreConfig{BaseSeed: 42, Reps: 2, Smoke: true}, nil)
	if err != nil {
		t.Fatalf("RunCore (2nd): %v", err)
	}
	for i := range res.Scenarios {
		if res.Scenarios[i].Name != res2.Scenarios[i].Name ||
			res.Scenarios[i].Engine != res2.Scenarios[i].Engine {
			t.Fatalf("scenario matrix not deterministic: %+v vs %+v",
				res.Scenarios[i], res2.Scenarios[i])
		}
	}
}

// jsonEncode mirrors Write's encoding without its validation, for building
// deliberately broken artifacts.
func jsonEncode(buf *bytes.Buffer, r Result) error {
	return json.NewEncoder(buf).Encode(r)
}

func TestDiff(t *testing.T) {
	old := sampleResult()
	cur := sampleResult()
	// Wheel hold cell slows by 20%, macro vCPU throughput improves.
	cur.Scenarios[1].EventsPerSec.Mean = 2.4e6
	cur.Scenarios[2].VCPUSecPerSec.Mean = 600
	// A scenario only the new artifact has.
	cur.Scenarios = append(cur.Scenarios, ScenarioResult{
		Name: "hold/pending=9", Engine: Wheel,
		EventsPerSec: Stat{Mean: 1, N: 1},
	})

	d, err := Diff(old, cur, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if d.Regressions() != 1 {
		t.Fatalf("want 1 regression, got %d: %+v", d.Regressions(), d.Deltas)
	}
	byKey := map[string]ScenarioDelta{}
	for _, s := range d.Deltas {
		byKey[s.Name+"/"+string(s.Engine)+"/"+s.Metric] = s
	}
	reg := byKey["hold/pending=1000/wheel/events_per_sec"]
	if !reg.Regressed || reg.DeltaPct > -19.9 || reg.DeltaPct < -20.1 {
		t.Fatalf("wheel hold cell: %+v", reg)
	}
	if faster := byKey["vcpu_ticks/vcpus=64/wheel/vcpu_sec_per_sec"]; faster.Regressed || faster.DeltaPct < 19 {
		t.Fatalf("improved cell misflagged: %+v", faster)
	}
	if len(d.Unmatched) != 1 || !strings.Contains(d.Unmatched[0], "new only") {
		t.Fatalf("unmatched: %v", d.Unmatched)
	}

	// Below threshold: the same drop with a looser gate passes.
	d, err = Diff(old, cur, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if d.Regressions() != 0 {
		t.Fatalf("25%% gate should pass a 20%% drop: %+v", d.Deltas)
	}

	// Self-diff is always clean.
	d, err = Diff(old, old, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Regressions() != 0 || len(d.Unmatched) != 0 {
		t.Fatalf("self-diff not clean: %+v", d)
	}

	var buf bytes.Buffer
	d.WriteText(&buf)
	if !strings.Contains(buf.String(), "no regression past 0%") {
		t.Fatalf("WriteText summary: %q", buf.String())
	}

	if _, err := Diff(old, Result{Name: "other", Reps: 1}, 0.1); err == nil {
		t.Fatal("family mismatch must error")
	}
	if _, err := Diff(old, cur, -1); err == nil {
		t.Fatal("negative threshold must error")
	}
}
