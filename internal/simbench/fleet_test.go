package simbench

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunFleetSmoke runs the fleet family at smoke size and checks the
// artifact shape: the macro scenario with both headline metrics, the two
// placement variants, and a round-trippable encoding.
func TestRunFleetSmoke(t *testing.T) {
	var log bytes.Buffer
	res, err := RunFleet(FleetConfig{BaseSeed: 42, Reps: 1, Smoke: true}, &log)
	if err != nil {
		t.Fatal(err)
	}
	if res.Name != "fleet" || !res.Smoke {
		t.Fatalf("bad artifact header: name=%q smoke=%v", res.Name, res.Smoke)
	}
	var macro, scan, index bool
	for _, s := range res.Scenarios {
		switch {
		case strings.HasPrefix(s.Name, "macro/"):
			macro = true
			if s.EventsPerSec.N == 0 || s.LifetimesPerSec.N == 0 {
				t.Fatalf("macro scenario missing metrics: %+v", s)
			}
			if s.LifetimesPerSec.Mean <= 0 {
				t.Fatalf("macro lifetimes/s %.3g, want > 0", s.LifetimesPerSec.Mean)
			}
		case strings.HasPrefix(s.Name, "placement_scan/"):
			scan = true
		case strings.HasPrefix(s.Name, "placement_index/"):
			index = true
		}
	}
	if !macro || !scan || !index {
		t.Fatalf("missing scenarios (macro=%v scan=%v index=%v): %+v", macro, scan, index, res.Scenarios)
	}
	if _, ok := res.IndexSpeedup(); !ok {
		t.Fatal("IndexSpeedup not computable")
	}
	var buf bytes.Buffer
	if err := Write(&buf, res); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Scenarios) != len(res.Scenarios) {
		t.Fatalf("round trip lost scenarios: %d vs %d", len(back.Scenarios), len(res.Scenarios))
	}
	if log.Len() == 0 {
		t.Fatal("no progress log")
	}
}

// TestDiffLifetimesMetric pins that the diff gate covers the fleet family's
// lifetimes_per_sec metric.
func TestDiffLifetimesMetric(t *testing.T) {
	mk := func(lps float64) Result {
		return Result{
			Schema: Schema, Name: "fleet", BaseSeed: 1, Reps: 1, GoVersion: "go",
			Scenarios: []ScenarioResult{{
				Name: "macro/hosts=64", Engine: Wheel,
				EventsPerSec:    Stat{Mean: 100, N: 1},
				LifetimesPerSec: Stat{Mean: lps, N: 1},
			}},
		}
	}
	d, err := Diff(mk(1000), mk(500), 0.10)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range d.Deltas {
		if s.Metric == "lifetimes_per_sec" {
			found = true
			if !s.Regressed {
				t.Fatal("50% lifetimes/s drop not flagged as regression")
			}
		}
	}
	if !found {
		t.Fatal("lifetimes_per_sec not diffed")
	}
}
