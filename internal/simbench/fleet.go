package simbench

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"vsched/internal/cloudgen"
	"vsched/internal/fleet"
	"vsched/internal/harness"
	"vsched/internal/metrics"
)

// The fleet benchmark family (BENCH_fleet.json): throughput of the macro
// fleet simulator on a generated cloud trace, plus a head-to-head of the
// placement hot path — tournament-tree HostIndex vs the linear snapshot
// scan it replaced. Two fleet-specific headline metrics:
//
//   - events per wall-clock second on the macro cell (placements,
//     departures and per-VM epoch integrations);
//   - completed VM lifetimes per wall-clock second, the figure that says
//     how much cloud churn a second of CPU simulates.
//
// The placement scenarios report pure placement decisions per second, so
// the recorded artifact documents the index's speedup as a measurement.

// FleetConfig parameterizes RunFleet.
type FleetConfig struct {
	BaseSeed int64
	Reps     int
	// Smoke shrinks the trace and the churn so CI can exercise the pipeline
	// in well under a second of benchmark time.
	Smoke bool
}

// runMacroCell generates a trace and runs one sharded macro cell, returning
// (events/s, lifetimes/s).
func runMacroCell(seed int64, gen cloudgen.Config) (float64, float64) {
	trace := cloudgen.Generate(seed, gen)
	start := time.Now()
	res := fleet.RunMacro(fleet.MacroConfig{Trace: trace, Policy: fleet.StealAware{}, Shards: 8})
	wall := time.Since(start).Seconds()
	if wall <= 0 {
		wall = 1e-9
	}
	return float64(res.Events) / wall, float64(res.Lifetimes) / wall
}

// runPlacementChurn measures the placement hot path in isolation: a churn
// of place/depart/telemetry operations over a heterogeneous fleet, decided
// either through the HostIndex or the linear snapshot scan. Both paths make
// identical decisions (pinned by the fleet package's differential test);
// only the cost differs. Returns placement decisions per wall second.
func runPlacementChurn(seed int64, hosts, ops int, indexed bool) float64 {
	rng := rand.New(rand.NewSource(seed))
	pol := fleet.StealAware{}
	caps := make([]int, hosts)
	for i := range caps {
		caps[i] = 16 + 16*rng.Intn(2) // 16 or 32, heterogeneous
	}
	snap := make([]fleet.HostInfo, hosts)
	committed := make([]int, hosts)
	steal := make([]float64, hosts)
	for i := range snap {
		snap[i] = fleet.HostInfo{Index: i, Capacity: caps[i]}
	}
	var ix *fleet.HostIndex
	if indexed {
		ix = fleet.NewHostIndex(caps)
	}
	refresh := func(i int) {
		snap[i].Committed = committed[i]
		snap[i].StealRate = steal[i]
		if indexed {
			ix.Update(i, committed[i], pol.Score(snap[i]))
		}
	}
	type placed struct{ host, vcpus int }
	var live []placed
	placements := 0
	start := time.Now()
	for op := 0; op < ops; op++ {
		switch r := rng.Intn(10); {
		case r < 6:
			v := 1 + rng.Intn(8)
			var hi int
			if indexed {
				hi = pol.PlaceIndexed(ix, v)
			} else {
				hi = pol.Place(snap, v)
			}
			placements++
			if hi >= 0 {
				committed[hi] += v
				live = append(live, placed{hi, v})
				refresh(hi)
			}
		case r < 9:
			if len(live) == 0 {
				continue
			}
			k := rng.Intn(len(live))
			p := live[k]
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
			committed[p.host] -= p.vcpus
			refresh(p.host)
		default:
			i := rng.Intn(hosts)
			steal[i] = rng.Float64() * 0.4
			refresh(i)
		}
	}
	wall := time.Since(start).Seconds()
	if wall <= 0 {
		wall = 1e-9
	}
	return float64(placements) / wall
}

// RunFleet runs the fleet benchmark matrix and aggregates replicate runs
// into the artifact. Progress lines go to log (may be nil).
func RunFleet(cfg FleetConfig, log io.Writer) (Result, error) {
	if cfg.Reps < 1 {
		cfg.Reps = 1
	}
	gen := cloudgen.DefaultConfig()
	churnHosts := 1024
	churnOps := 400_000
	if cfg.Smoke {
		gen.Horizon = 3 * cloudgen.Hour
		gen.BaseRate = 600
		for i := range gen.Hosts {
			gen.Hosts[i].Count /= 16 // 1024 -> 64 hosts
		}
		churnHosts = 64
		churnOps = 40_000
	}
	nHosts := 0
	for _, hc := range gen.Hosts {
		nHosts += hc.Count
	}
	res := Result{
		Schema:    Schema,
		Name:      "fleet",
		BaseSeed:  cfg.BaseSeed,
		Reps:      cfg.Reps,
		Smoke:     cfg.Smoke,
		GoVersion: runtime.Version(),
	}
	logf := func(format string, args ...any) {
		if log != nil {
			fmt.Fprintf(log, format, args...)
		}
	}

	name := fmt.Sprintf("macro/hosts=%d", nHosts)
	var eps, lps metrics.Summary
	for rep := 0; rep < cfg.Reps; rep++ {
		seed := harness.DeriveSeed(cfg.BaseSeed, "simbench/"+name, rep)
		e, l := runMacroCell(seed, gen)
		eps.Add(e)
		lps.Add(l)
	}
	logf("%-28s %-5s %.3g events/s, %.3g lifetimes/s\n", name, Wheel, eps.Mean(), lps.Mean())
	res.Scenarios = append(res.Scenarios, ScenarioResult{
		Name: name, Engine: Wheel,
		EventsPerSec:    statOf(eps),
		LifetimesPerSec: statOf(lps),
	})

	for _, indexed := range []bool{false, true} {
		variant := "placement_scan"
		if indexed {
			variant = "placement_index"
		}
		name := fmt.Sprintf("%s/hosts=%d", variant, churnHosts)
		var pps metrics.Summary
		for rep := 0; rep < cfg.Reps; rep++ {
			seed := harness.DeriveSeed(cfg.BaseSeed, "simbench/"+name, rep)
			pps.Add(runPlacementChurn(seed, churnHosts, churnOps, indexed))
		}
		logf("%-28s %-5s %.3g placements/s\n", name, Wheel, pps.Mean())
		res.Scenarios = append(res.Scenarios, ScenarioResult{
			Name: name, Engine: Wheel, EventsPerSec: statOf(pps),
		})
	}
	return res, nil
}

// IndexSpeedup returns the placement_index-over-placement_scan throughput
// ratio, or ok=false when either cell is missing.
func (r Result) IndexSpeedup() (float64, bool) {
	var scan, index float64
	for _, s := range r.Scenarios {
		switch {
		case strings.HasPrefix(s.Name, "placement_index"):
			index = s.EventsPerSec.Mean
		case strings.HasPrefix(s.Name, "placement_scan"):
			scan = s.EventsPerSec.Mean
		}
	}
	if scan == 0 || index == 0 {
		return 0, false
	}
	return index / scan, true
}
