package simbench

import (
	"fmt"
	"io"
	"sort"
)

// ScenarioDelta compares one (scenario, engine, metric) cell between two
// benchmark artifacts.
type ScenarioDelta struct {
	Name   string     `json:"name"`
	Engine EngineKind `json:"engine"`
	Metric string     `json:"metric"` // "events_per_sec", "vcpu_sec_per_sec" or "lifetimes_per_sec"
	Old    Stat       `json:"old"`
	New    Stat       `json:"new"`
	// DeltaPct is (new-old)/old in percent; positive is faster.
	DeltaPct float64 `json:"delta_pct"`
	// Regressed marks cells whose mean dropped by more than the threshold.
	Regressed bool `json:"regressed,omitempty"`
}

// DiffResult is the comparison of two benchmark artifacts.
type DiffResult struct {
	Threshold float64         `json:"threshold"`
	Deltas    []ScenarioDelta `json:"deltas"`
	// Unmatched lists "name/engine" cells present in only one artifact;
	// they are reported but never counted as regressions.
	Unmatched []string `json:"unmatched,omitempty"`
}

// Regressions counts cells that dropped past the threshold.
func (d DiffResult) Regressions() int {
	n := 0
	for _, s := range d.Deltas {
		if s.Regressed {
			n++
		}
	}
	return n
}

// Diff compares two benchmark artifacts cell by cell. A cell regresses when
// its new mean falls below old*(1-threshold); threshold 0.10 means "flag
// anything more than 10% slower". Both artifacts must be the same benchmark
// family.
func Diff(old, cur Result, threshold float64) (DiffResult, error) {
	if old.Name != cur.Name {
		return DiffResult{}, fmt.Errorf("simbench: diffing different benchmark families %q vs %q", old.Name, cur.Name)
	}
	if threshold < 0 {
		return DiffResult{}, fmt.Errorf("simbench: negative regression threshold %v", threshold)
	}
	key := func(s ScenarioResult) string { return s.Name + "/" + string(s.Engine) }
	oldBy := make(map[string]ScenarioResult, len(old.Scenarios))
	for _, s := range old.Scenarios {
		oldBy[key(s)] = s
	}
	d := DiffResult{Threshold: threshold}
	matched := make(map[string]bool)
	for _, ns := range cur.Scenarios {
		k := key(ns)
		os, ok := oldBy[k]
		if !ok {
			d.Unmatched = append(d.Unmatched, k+" (new only)")
			continue
		}
		matched[k] = true
		add := func(metric string, o, n Stat) {
			if o.N == 0 || n.N == 0 || o.Mean == 0 {
				return
			}
			delta := (n.Mean - o.Mean) / o.Mean * 100
			d.Deltas = append(d.Deltas, ScenarioDelta{
				Name: ns.Name, Engine: ns.Engine, Metric: metric,
				Old: o, New: n, DeltaPct: delta,
				Regressed: n.Mean < o.Mean*(1-threshold),
			})
		}
		add("events_per_sec", os.EventsPerSec, ns.EventsPerSec)
		add("vcpu_sec_per_sec", os.VCPUSecPerSec, ns.VCPUSecPerSec)
		add("lifetimes_per_sec", os.LifetimesPerSec, ns.LifetimesPerSec)
	}
	for k := range oldBy {
		if !matched[k] {
			d.Unmatched = append(d.Unmatched, k+" (old only)")
		}
	}
	sort.Strings(d.Unmatched)
	return d, nil
}

// WriteText renders the diff as an aligned table, one row per cell, with
// regressions marked. Output is deterministic: rows keep artifact order,
// unmatched cells are sorted.
func (d DiffResult) WriteText(w io.Writer) {
	fmt.Fprintf(w, "%-28s %-6s %-17s %12s %12s %8s\n",
		"scenario", "engine", "metric", "old mean", "new mean", "delta")
	for _, s := range d.Deltas {
		mark := ""
		if s.Regressed {
			mark = "  REGRESSED"
		}
		fmt.Fprintf(w, "%-28s %-6s %-17s %12.4g %12.4g %+7.1f%%  (±%.1f%% / ±%.1f%%)%s\n",
			s.Name, s.Engine, s.Metric, s.Old.Mean, s.New.Mean, s.DeltaPct,
			relStddev(s.Old), relStddev(s.New), mark)
	}
	for _, u := range d.Unmatched {
		fmt.Fprintf(w, "unmatched: %s\n", u)
	}
	if n := d.Regressions(); n > 0 {
		fmt.Fprintf(w, "%d cell(s) regressed past %.0f%%\n", n, d.Threshold*100)
	} else {
		fmt.Fprintf(w, "no regression past %.0f%%\n", d.Threshold*100)
	}
}

func relStddev(s Stat) float64 {
	if s.Mean == 0 {
		return 0
	}
	return s.Stddev / s.Mean * 100
}
