package harness

import (
	"bytes"
	"strings"
	"testing"

	"vsched/internal/experiments"
	"vsched/internal/sim"
	"vsched/internal/telemetry"
)

// attribRunner is a synthetic runner that tracks an attribution snapshot, so
// the artifact round-trip exercises the schema-3 trial field.
func attribRunner(id string) experiments.Runner {
	r := synthetic(id)
	inner := r.Run
	r.Run = func(o experiments.Options) *experiments.Report {
		o.Stats.TrackAttribution(id+"/vm", map[string]float64{
			"spans":            12,
			"steal_wait_share": 0.25,
		})
		return inner(o)
	}
	return r
}

// TestArtifactRoundTrip writes a schema-3 artifact and reads it back with
// ReadArtifact: header, per-trial attribution, aggregates and summary must
// all survive the trip.
func TestArtifactRoundTrip(t *testing.T) {
	res := Run(Config{
		Runners:  []experiments.Runner{attribRunner("synA"), synthetic("synB")},
		BaseSeed: 7, Reps: 2, Workers: 2,
	})
	var buf bytes.Buffer
	if err := res.WriteArtifact(&buf); err != nil {
		t.Fatal(err)
	}
	a, err := ReadArtifact(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if a.Run.SchemaVersion != ArtifactSchemaVersion {
		t.Fatalf("schema %d want %d", a.Run.SchemaVersion, ArtifactSchemaVersion)
	}
	if a.Run.BaseSeed != 7 || len(a.Run.Seeds) != 4 {
		t.Fatalf("run header %+v", a.Run)
	}
	if len(a.Trials) != 4 {
		t.Fatalf("want 4 trials, got %d", len(a.Trials))
	}
	for _, tr := range a.Trials {
		if tr.Report == nil {
			t.Fatalf("trial %s/%d lost its report", tr.Experiment, tr.Replicate)
		}
		switch tr.Experiment {
		case "synA":
			if got := tr.Attribution["synA/vm.steal_wait_share"]; got != 0.25 {
				t.Fatalf("attribution lost: %v", tr.Attribution)
			}
		case "synB":
			if tr.Attribution != nil {
				t.Fatalf("synB tracked no attribution, got %v", tr.Attribution)
			}
		}
	}
	if len(a.Aggregates) != 2 {
		t.Fatalf("want 2 aggregates, got %d", len(a.Aggregates))
	}
	if a.Summary == nil || a.Summary.Trials != 4 || a.Summary.Failed != 0 {
		t.Fatalf("summary %+v", a.Summary)
	}
}

// v2Artifact is a canned schema-2 artifact (pre-attribution), byte-for-byte
// in the shape WriteArtifact produced before the bump. The reader must stay
// able to decode it forever.
const v2Artifact = `{"type":"run","schema_version":2,"base_seed":42,"reps":1,"workers":4,"scale":1,"experiments":["fig3"],"seeds":[42]}
{"type":"trial","experiment":"fig3","replicate":0,"seed":42,"wall_ms":12.5,"events":1000,"engines":1,"metrics":{"vm.sched.steals":3},"report":{"ID":"fig3","Title":"t","Header":["a"],"Rows":[["1"]]}}
{"type":"summary","wall_ms":13.1,"events":1000,"trials":1,"failed":0}
`

// v3Artifact is a canned schema-3 artifact (attribution but no telemetry),
// byte-for-byte in the shape WriteArtifact produced before the v4 bump.
const v3Artifact = `{"type":"run","schema_version":3,"base_seed":42,"reps":1,"workers":4,"scale":1,"experiments":["attrib"],"seeds":[42]}
{"type":"trial","experiment":"attrib","replicate":0,"seed":42,"wall_ms":9.1,"events":500,"engines":1,"attribution":{"p.steal_wait_share":0.5},"report":{"ID":"attrib","Title":"t","Header":["a"],"Rows":[["1"]]}}
{"type":"summary","wall_ms":9.9,"events":500,"trials":1,"failed":0}
`

// v4Artifact is a canned schema-4 artifact (telemetry but no retries),
// byte-for-byte in the shape WriteArtifact produced before the v5 bump.
const v4Artifact = `{"type":"run","schema_version":4,"base_seed":42,"reps":1,"workers":4,"scale":1,"experiments":["fig3"],"seeds":[42]}
{"type":"trial","experiment":"fig3","replicate":0,"seed":42,"wall_ms":7.2,"events":700,"engines":1,"report":{"ID":"fig3","Title":"t","Header":["a"],"Rows":[["1"]]}}
{"type":"summary","wall_ms":7.7,"events":700,"trials":1,"failed":0}
`

// v1Artifact predates the schema_version field entirely.
const v1Artifact = `{"type":"run","base_seed":1,"reps":1,"workers":1,"scale":1,"experiments":["fig3"],"seeds":[1]}
{"type":"trial","experiment":"fig3","replicate":0,"seed":1,"wall_ms":1,"events":10,"engines":1}
{"type":"summary","wall_ms":1,"events":10,"trials":1,"failed":1}
`

func TestReadArtifactBackwardCompat(t *testing.T) {
	a, err := ReadArtifact(strings.NewReader(v2Artifact))
	if err != nil {
		t.Fatalf("v2 artifact must stay readable: %v", err)
	}
	if a.Run.SchemaVersion != 2 {
		t.Fatalf("v2 schema read as %d", a.Run.SchemaVersion)
	}
	if len(a.Trials) != 1 {
		t.Fatalf("v2 trials %d", len(a.Trials))
	}
	tr := a.Trials[0]
	if tr.Attribution != nil {
		t.Fatalf("v2 trial must decode with nil attribution, got %v", tr.Attribution)
	}
	if tr.Metrics["vm.sched.steals"] != 3 || tr.Report == nil || tr.Report.ID != "fig3" {
		t.Fatalf("v2 trial fields lost: %+v", tr)
	}
	if a.Summary == nil || a.Summary.Trials != 1 {
		t.Fatalf("v2 summary %+v", a.Summary)
	}

	a, err = ReadArtifact(strings.NewReader(v3Artifact))
	if err != nil {
		t.Fatalf("v3 artifact must stay readable: %v", err)
	}
	if a.Run.SchemaVersion != 3 {
		t.Fatalf("v3 schema read as %d", a.Run.SchemaVersion)
	}
	if tr := a.Trials[0]; tr.Telemetry != nil {
		t.Fatalf("v3 trial must decode with nil telemetry, got %v", tr.Telemetry)
	} else if tr.Attribution["p.steal_wait_share"] != 0.5 {
		t.Fatalf("v3 attribution lost: %+v", tr)
	}

	a, err = ReadArtifact(strings.NewReader(v4Artifact))
	if err != nil {
		t.Fatalf("v4 artifact must stay readable: %v", err)
	}
	if a.Run.SchemaVersion != 4 {
		t.Fatalf("v4 schema read as %d", a.Run.SchemaVersion)
	}
	if tr := a.Trials[0]; tr.Retries != 0 {
		t.Fatalf("v4 trial must decode with zero retries, got %d", tr.Retries)
	}

	a, err = ReadArtifact(strings.NewReader(v1Artifact))
	if err != nil {
		t.Fatalf("v1 artifact must stay readable: %v", err)
	}
	if a.Run.SchemaVersion != 1 {
		t.Fatalf("v1 must normalise to schema 1, got %d", a.Run.SchemaVersion)
	}
}

func TestReadArtifactRejectsGarbage(t *testing.T) {
	if _, err := ReadArtifact(strings.NewReader("not json\n")); err == nil {
		t.Fatal("malformed line must error")
	}
	if _, err := ReadArtifact(strings.NewReader(`{"type":"summary","trials":1}` + "\n")); err == nil {
		t.Fatal("artifact without a run header must error")
	}
	// Unknown record types from future schema versions are skipped, not fatal.
	future := v2Artifact + `{"type":"hologram","x":1}` + "\n"
	if _, err := ReadArtifact(strings.NewReader(future)); err != nil {
		t.Fatalf("unknown record type must be skipped: %v", err)
	}
}

// TestHarnessAttributionFlows runs the real attrib experiment once through
// the harness at a tiny scale and checks the flattened attribution reaches
// the trial result and the artifact.
func TestHarnessAttributionFlows(t *testing.T) {
	r, ok := experiments.ByID("attrib")
	if !ok {
		t.Fatal("attrib experiment missing from registry")
	}
	res := Run(Config{Runners: []experiments.Runner{r}, BaseSeed: 42, Scale: 0.05, Workers: 1})
	tr := &res.Experiments[0].Trials[0]
	if !tr.OK() {
		t.Fatalf("attrib trial failed: %s", tr.Err)
	}
	if len(tr.Attribution) == 0 {
		t.Fatal("attrib trial produced no attribution snapshot")
	}
	want := "attrib/balanced-5ms/baseline.steal_wait_share"
	if _, ok := tr.Attribution[want]; !ok {
		keys := make([]string, 0, len(tr.Attribution))
		for k := range tr.Attribution {
			keys = append(keys, k)
		}
		t.Fatalf("attribution missing %q (have e.g. %v)", want, keys[:min(4, len(keys))])
	}
	var buf bytes.Buffer
	if err := res.WriteArtifact(&buf); err != nil {
		t.Fatal(err)
	}
	a, err := ReadArtifact(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Trials[0].Attribution[want]; got != tr.Attribution[want] {
		t.Fatalf("artifact attribution %v != trial %v", got, tr.Attribution[want])
	}
}

// telemetryRunner is a synthetic runner that drives a small flight recorder,
// so the artifact round-trip exercises the schema-4 trial field.
func telemetryRunner(id string) experiments.Runner {
	r := synthetic(id)
	inner := r.Run
	r.Run = func(o experiments.Options) *experiments.Report {
		eng := sim.NewEngine(o.Seed)
		o.Stats.Track(eng)
		rec := telemetry.New(eng, telemetry.Config{Interval: 10 * sim.Millisecond})
		n := 0.0
		rec.AddSource(id+".", telemetry.SourceFunc(func(now sim.Time, emit func(string, float64)) {
			n++
			emit("ticks", n)
		}))
		rec.Start()
		eng.RunFor(sim.Second)
		o.Stats.TrackTelemetry(id+"/rec", rec)
		return inner(o)
	}
	return r
}

// TestArtifactTelemetryRoundTrip: the schema-4 telemetry map must survive a
// write/read cycle with raw points decodable from the embedded snapshot.
func TestArtifactTelemetryRoundTrip(t *testing.T) {
	res := Run(Config{
		Runners:  []experiments.Runner{telemetryRunner("synT"), synthetic("synB")},
		BaseSeed: 9, Workers: 2,
	})
	var buf bytes.Buffer
	if err := res.WriteArtifact(&buf); err != nil {
		t.Fatal(err)
	}
	a, err := ReadArtifact(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if a.Run.SchemaVersion != ArtifactSchemaVersion {
		t.Fatalf("schema %d want %d", a.Run.SchemaVersion, ArtifactSchemaVersion)
	}
	for _, tr := range a.Trials {
		switch tr.Experiment {
		case "synT":
			snap := tr.Telemetry["synT/rec"]
			if snap == nil {
				t.Fatalf("telemetry snapshot lost: %v", tr.Telemetry)
			}
			var ticks *telemetry.SeriesSnapshot
			for i := range snap.Series {
				if snap.Series[i].Name == "synT.ticks" {
					ticks = &snap.Series[i]
				}
			}
			if ticks == nil || ticks.Count == 0 {
				t.Fatalf("synT.ticks series missing from artifact snapshot")
			}
			pts, err := ticks.Points()
			if err != nil {
				t.Fatalf("embedded raw chunk undecodable: %v", err)
			}
			if len(pts) == 0 || pts[len(pts)-1].V != float64(ticks.Count) {
				t.Fatalf("decoded points inconsistent: %d pts, last %+v, count %d",
					len(pts), pts[len(pts)-1], ticks.Count)
			}
		case "synB":
			if tr.Telemetry != nil {
				t.Fatalf("synB tracked no telemetry, got %v", tr.Telemetry)
			}
		}
	}
}
