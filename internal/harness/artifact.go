package harness

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"vsched/internal/experiments"
	"vsched/internal/telemetry"
)

// Text renders the run deterministically: one report per experiment in
// registry order, aggregated across replicates, with failures summarised in
// place. The output is a pure function of (seed set, scale, experiment set)
// — wall times and worker counts never appear — so serial and parallel runs
// of the same configuration produce byte-identical text.
func (r *Result) Text() string {
	var b strings.Builder
	for i := range r.Experiments {
		ex := &r.Experiments[i]
		if ex.Aggregate != nil {
			b.WriteString(ex.Aggregate.String())
		} else {
			fmt.Fprintf(&b, "== %s: %s ==\n", ex.ID, ex.Title)
			for j := range ex.Trials {
				t := &ex.Trials[j]
				fmt.Fprintf(&b, "FAILED rep %d (seed %d): %s\n", t.Replicate, t.Seed, t.Err)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ArtifactSchemaVersion stamps the "run" header so consumers can tell
// artifact generations apart. History: 1 (implicit, PR 1) single-VM
// experiment reports; 2 adds the version field itself and covers
// fleet-shaped reports (the fleet experiment's per-cell rows and fleet.*
// metrics namespaces); 3 adds the per-trial "attribution" map (flattened
// latency-attribution profiles, keyed "<profile-label>.<metric>") and is
// otherwise a strict superset of 2; 4 adds the per-trial "telemetry" map
// (deterministic flight-recorder snapshots — Gorilla-compressed raw chunks
// plus rollup buckets — keyed by recorder label) and is otherwise a strict
// superset of 3; 5 adds the per-trial "retries" count (attempts consumed
// under harness.Config.Retries) and is otherwise a strict superset of 4.
const ArtifactSchemaVersion = 5

// Artifact line types. A run artifact is JSON lines: one "run" header with
// the full configuration and seed set, one "trial" line per trial (with its
// report, or the error that replaced it), and one "summary" trailer with the
// wall-clock totals that deliberately stay out of the deterministic header.
// The record types are exported so downstream analysis tooling can decode
// artifacts without re-declaring the schema; ReadArtifact does exactly that.
type RunRecord struct {
	Type          string   `json:"type"` // "run"
	SchemaVersion int      `json:"schema_version"`
	BaseSeed      int64    `json:"base_seed"`
	Reps          int      `json:"reps"`
	Workers       int      `json:"workers"`
	Scale         float64  `json:"scale"`
	TimeoutMS     int64    `json:"timeout_ms,omitempty"`
	Experiments   []string `json:"experiments"`
	Seeds         []int64  `json:"seeds"`
}

type TrialRecord struct {
	Type       string  `json:"type"` // "trial"
	Experiment string  `json:"experiment"`
	Replicate  int     `json:"replicate"`
	Seed       int64   `json:"seed"`
	WallMS     float64 `json:"wall_ms"`
	Events     uint64  `json:"events"`
	Engines    int     `json:"engines"`
	Err        string  `json:"err,omitempty"`
	TimedOut   bool    `json:"timed_out,omitempty"`
	// Retries is the extra attempts the trial consumed under the harness
	// retry budget (schema >= 5); absent (0) in older artifacts.
	Retries int                `json:"retries,omitempty"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Attribution is the flattened latency-attribution snapshot of every
	// profile the trial tracked (schema >= 3); absent in older artifacts.
	Attribution map[string]float64 `json:"attribution,omitempty"`
	// Telemetry maps recorder label to the trial's deterministic
	// flight-recorder snapshot (schema >= 4); absent in older artifacts.
	Telemetry map[string]*telemetry.Snapshot `json:"telemetry,omitempty"`
	Report    *experiments.Report            `json:"report,omitempty"`
}

type AggregateRecord struct {
	Type       string              `json:"type"` // "aggregate"
	Experiment string              `json:"experiment"`
	Reps       int                 `json:"reps"`
	Report     *experiments.Report `json:"report"`
}

type SummaryRecord struct {
	Type   string  `json:"type"` // "summary"
	WallMS float64 `json:"wall_ms"`
	Events uint64  `json:"events"`
	Trials int     `json:"trials"`
	Failed int     `json:"failed"`
}

// WriteArtifact streams the run as JSON lines to w.
func (r *Result) WriteArtifact(w io.Writer) error {
	enc := json.NewEncoder(w)
	ids := make([]string, len(r.Experiments))
	for i := range r.Experiments {
		ids[i] = r.Experiments[i].ID
	}
	if err := enc.Encode(RunRecord{
		Type:          "run",
		SchemaVersion: ArtifactSchemaVersion,
		BaseSeed:      r.BaseSeed,
		Reps:          r.Reps,
		Workers:       r.Workers,
		Scale:         r.Scale,
		TimeoutMS:     r.Timeout.Milliseconds(),
		Experiments:   ids,
		Seeds:         r.Seeds(),
	}); err != nil {
		return err
	}
	for i := range r.Experiments {
		ex := &r.Experiments[i]
		for j := range ex.Trials {
			t := &ex.Trials[j]
			if err := enc.Encode(TrialRecord{
				Type:        "trial",
				Experiment:  t.ExperimentID,
				Replicate:   t.Replicate,
				Seed:        t.Seed,
				WallMS:      float64(t.WallTime.Microseconds()) / 1000,
				Events:      t.Events,
				Engines:     t.Engines,
				Err:         t.Err,
				TimedOut:    t.TimedOut,
				Retries:     t.Retries,
				Metrics:     t.Metrics,
				Attribution: t.Attribution,
				Telemetry:   t.Telemetry,
				Report:      t.Report,
			}); err != nil {
				return err
			}
		}
		if r.Reps > 1 && ex.Aggregate != nil {
			if err := enc.Encode(AggregateRecord{
				Type:       "aggregate",
				Experiment: ex.ID,
				Reps:       len(ex.Trials),
				Report:     ex.Aggregate,
			}); err != nil {
				return err
			}
		}
	}
	return enc.Encode(SummaryRecord{
		Type:   "summary",
		WallMS: float64(r.WallTime.Microseconds()) / 1000,
		Events: r.EventsFired(),
		Trials: r.Trials(),
		Failed: r.Failed(),
	})
}

// Artifact is a decoded run artifact, in stream order.
type Artifact struct {
	Run        RunRecord
	Trials     []TrialRecord
	Aggregates []AggregateRecord
	Summary    *SummaryRecord
}

// ReadArtifact decodes a JSONL artifact produced by any schema version so
// far. Version 1 predates the schema_version field and decodes with
// SchemaVersion 1; version 2 lacks the attribution map (left nil); version 3
// lacks the telemetry map (left nil); version 4 lacks the retries count
// (left 0); unknown line types are skipped, so newer minor additions stay
// readable too.
func ReadArtifact(r io.Reader) (*Artifact, error) {
	a := &Artifact{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<26) // report rows can be wide
	sawRun := false
	for n := 1; sc.Scan(); n++ {
		line := sc.Bytes()
		if len(strings.TrimSpace(string(line))) == 0 {
			continue
		}
		var head struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &head); err != nil {
			return nil, fmt.Errorf("artifact line %d: %w", n, err)
		}
		var err error
		switch head.Type {
		case "run":
			err = json.Unmarshal(line, &a.Run)
			if a.Run.SchemaVersion == 0 {
				a.Run.SchemaVersion = 1 // v1 had no schema_version field
			}
			sawRun = true
		case "trial":
			var t TrialRecord
			if err = json.Unmarshal(line, &t); err == nil {
				a.Trials = append(a.Trials, t)
			}
		case "aggregate":
			var ag AggregateRecord
			if err = json.Unmarshal(line, &ag); err == nil {
				a.Aggregates = append(a.Aggregates, ag)
			}
		case "summary":
			var s SummaryRecord
			if err = json.Unmarshal(line, &s); err == nil {
				a.Summary = &s
			}
		default:
			// Forward compatibility: ignore record types this reader predates.
		}
		if err != nil {
			return nil, fmt.Errorf("artifact line %d (%s): %w", n, head.Type, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawRun {
		return nil, fmt.Errorf("artifact: no run header found")
	}
	return a, nil
}
