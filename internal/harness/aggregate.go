package harness

import (
	"fmt"
	"strings"

	"vsched/internal/experiments"
	"vsched/internal/metrics"
)

// aggregate merges the successful trials of one experiment into a single
// report. Cells that parse as numbers (optionally suffixed %, x, ms, ...)
// become mean±stddev [min,max] over the replicate seeds; cells that are
// identical across every replicate (labels, constant values) pass through
// verbatim; anything else is marked "varies". Trials whose report shape
// diverges from replicate 0's are dropped with a note — shape is part of an
// experiment's contract and a divergence is a bug worth surfacing, not
// averaging away.
//
// The output is a pure function of the trial reports (never of timing or
// completion order), which is what makes parallel and serial harness output
// byte-identical.
func aggregate(trials []TrialResult) *experiments.Report {
	var ok []*experiments.Report
	var okSeeds []int64
	var failed []string
	var dropped []string
	for i := range trials {
		t := &trials[i]
		if !t.OK() {
			failed = append(failed, fmt.Sprintf("rep %d (seed %d): %s", t.Replicate, t.Seed, t.Err))
			continue
		}
		if len(ok) > 0 && !sameShape(ok[0], t.Report) {
			dropped = append(dropped, fmt.Sprintf("rep %d (seed %d)", t.Replicate, t.Seed))
			continue
		}
		ok = append(ok, t.Report)
		okSeeds = append(okSeeds, t.Seed)
	}
	if len(ok) == 0 {
		return nil
	}
	if len(ok) == 1 && len(failed) == 0 && len(dropped) == 0 {
		return ok[0]
	}

	base := ok[0]
	out := &experiments.Report{
		ID:     base.ID,
		Title:  base.Title,
		Header: append([]string(nil), base.Header...),
	}
	for row := range base.Rows {
		cells := make([]string, len(base.Rows[row]))
		for col := range base.Rows[row] {
			cells[col] = mergeCell(ok, row, col)
		}
		out.Rows = append(out.Rows, cells)
	}
	// Notes identical across replicates survive; diverging ones are noise.
	for n, note := range base.Notes {
		keep := true
		for _, rep := range ok[1:] {
			if n >= len(rep.Notes) || rep.Notes[n] != note {
				keep = false
				break
			}
		}
		if keep {
			out.Notes = append(out.Notes, note)
		}
	}
	out.Notef("aggregate of %d seeds: %s", len(ok), seedList(okSeeds))
	for _, d := range dropped {
		out.Notef("dropped (report shape diverged from rep 0): %s", d)
	}
	for _, f := range failed {
		out.Notef("failed: %s", f)
	}
	return out
}

// mergeCell folds one (row, col) cell across replicate reports.
func mergeCell(reps []*experiments.Report, row, col int) string {
	first := reps[0].Rows[row][col]
	identical := true
	var sum metrics.Summary
	suffix := ""
	numeric := true
	for i, rep := range reps {
		cell := rep.Rows[row][col]
		if cell != first {
			identical = false
		}
		v, suf, ok := metrics.ParseCell(cell)
		if !ok || (i > 0 && suf != suffix) {
			numeric = false
			continue
		}
		suffix = suf
		sum.Add(v)
	}
	switch {
	case identical:
		return first
	case numeric:
		return metrics.FormatCell(sum, suffix)
	default:
		return "varies"
	}
}

func sameShape(a, b *experiments.Report) bool {
	if len(a.Header) != len(b.Header) || len(a.Rows) != len(b.Rows) {
		return false
	}
	for i := range a.Rows {
		if len(a.Rows[i]) != len(b.Rows[i]) {
			return false
		}
	}
	return true
}

func seedList(seeds []int64) string {
	parts := make([]string, len(seeds))
	for i, s := range seeds {
		parts[i] = fmt.Sprint(s)
	}
	return strings.Join(parts, ", ")
}
