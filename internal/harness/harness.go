// Package harness runs the experiment registry in parallel. Every trial —
// one (experiment, replicate) pair — builds its own private sim.Engine from
// a seed derived as DeriveSeed(baseSeed, experimentID, replicate), so
// results are a pure function of the seed set and independent of how trials
// are packed onto workers: parallel output is byte-identical to serial
// output for the same configuration.
//
// On top of the fan-out the harness adds robustness (per-trial panic
// recovery and a wall-clock timeout with cooperative cancellation through
// sim.Engine.Interrupt) and multi-seed aggregation (mean±stddev [min,max]
// cells merged into an experiments.Report per experiment).
package harness

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"vsched/internal/experiments"
	"vsched/internal/progress"
	"vsched/internal/telemetry"
)

// Config parameterises a harness run.
type Config struct {
	// Runners is the experiment set; nil means the full registry in paper
	// order.
	Runners []experiments.Runner
	// BaseSeed anchors the per-trial seed derivation. Replicate 0 of every
	// experiment runs with BaseSeed itself, so a -reps 1 harness run
	// reproduces the classic serial run bit for bit.
	BaseSeed int64
	// Reps is the number of replicate seeds per experiment (min 1).
	Reps int
	// Scale shrinks (<1) or stretches (>1) measurement windows.
	Scale float64
	// Verbose is forwarded to experiments.Options.
	Verbose bool
	// Workers bounds the worker pool; <1 means GOMAXPROCS.
	Workers int
	// Timeout is the per-trial wall-clock budget; 0 disables it. A trial
	// that overruns has its engines interrupted and is recorded as failed
	// instead of killing the run.
	Timeout time.Duration
	// Retries is the number of additional attempts a trial gets after a
	// panic or timeout (0 = fail fast). Every attempt reruns the identical
	// (seed, scale) trial, so a retried success is byte-identical to a
	// first-try success and determinism of the output is unaffected; only
	// wall-clock failures (a timeout on a loaded machine) gain anything
	// from a second try. The attempts consumed are recorded on the trial.
	Retries int
	// Obs, when non-nil, receives the trial lifecycle (run start/done,
	// trial start/done with retry counts and truncated errors) for live HTTP
	// observation. Publishing goes through the lock-free bounded bus and
	// reads nothing back, so attaching it cannot perturb results.
	Obs *progress.Publisher
	// Heartbeat, when non-nil, receives a plain-text progress line (trials
	// done/total, failures, mean trial wall time, ETA) every HeartbeatEvery.
	// Intended for stderr on long interactive runs; off by default so CI
	// logs stay clean.
	Heartbeat io.Writer
	// HeartbeatEvery rate-limits heartbeat lines (default 2s).
	HeartbeatEvery time.Duration
}

func (c Config) normalized() Config {
	if c.Runners == nil {
		c.Runners = experiments.Registry()
	}
	if c.Reps < 1 {
		c.Reps = 1
	}
	if c.Scale <= 0 {
		c.Scale = 1.0
	}
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// DeriveSeed maps (baseSeed, experimentID, replicate) to the trial's engine
// seed. Replicate 0 is the paper run and keeps the base seed untouched;
// higher replicates get an FNV-1a hash of the triple, so trial seeds are
// stable under any reordering, subsetting, or worker count.
func DeriveSeed(base int64, experimentID string, replicate int) int64 {
	if replicate == 0 {
		return base
	}
	h := fnv.New64a()
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], uint64(base))
	binary.LittleEndian.PutUint64(buf[8:], uint64(replicate))
	h.Write(buf[:])
	h.Write([]byte(experimentID))
	return int64(h.Sum64() >> 1) // keep seeds non-negative
}

// TrialResult is the outcome of one (experiment, replicate) run.
type TrialResult struct {
	ExperimentID string
	Replicate    int
	Seed         int64
	// Report is the regenerated table/figure; nil when the trial failed.
	Report *experiments.Report
	// Err describes a panic or timeout; empty on success.
	Err      string
	TimedOut bool
	// Retries is how many extra attempts the trial consumed under
	// Config.Retries; 0 means it settled on the first try.
	Retries int
	// WallTime is host time spent on the trial.
	WallTime time.Duration
	// Events is the number of simulation events the trial fired, summed
	// over every engine it built; Engines is how many it built.
	Events  uint64
	Engines int
	// Metrics is the flattened snapshot of every VM metrics registry the
	// trial built, keyed "<vm-label>.<instrument>"; nil when the trial
	// deployed no VMs or was abandoned.
	Metrics map[string]float64
	// Attribution is the flattened snapshot of every latency-attribution
	// profile the trial tracked (experiments that run latprof), keyed
	// "<profile-label>.<metric>"; nil when the trial tracked none.
	Attribution map[string]float64
	// Telemetry holds the deterministic flight-recorder snapshot of every
	// telemetry recorder the trial tracked, keyed by recorder label; nil when
	// the trial tracked none.
	Telemetry map[string]*telemetry.Snapshot
}

// OK reports whether the trial produced a report.
func (t *TrialResult) OK() bool { return t.Report != nil && t.Err == "" }

// ExperimentResult groups one experiment's trials in replicate order.
type ExperimentResult struct {
	ID     string
	Title  string
	Trials []TrialResult
	// Aggregate merges the successful trials' reports into multi-seed
	// mean±stddev [min,max] cells. With a single successful trial it is that
	// trial's report verbatim. Nil when every trial failed.
	Aggregate *experiments.Report
}

// Result is a full harness run.
type Result struct {
	BaseSeed    int64
	Reps        int
	Workers     int
	Scale       float64
	Timeout     time.Duration
	WallTime    time.Duration
	Experiments []ExperimentResult
}

// Failed counts trials that produced no report.
func (r *Result) Failed() int {
	n := 0
	for _, ex := range r.Experiments {
		for i := range ex.Trials {
			if !ex.Trials[i].OK() {
				n++
			}
		}
	}
	return n
}

// Trials counts all trials.
func (r *Result) Trials() int {
	n := 0
	for _, ex := range r.Experiments {
		n += len(ex.Trials)
	}
	return n
}

// EventsFired sums simulation events over all trials.
func (r *Result) EventsFired() uint64 {
	var n uint64
	for _, ex := range r.Experiments {
		for i := range ex.Trials {
			n += ex.Trials[i].Events
		}
	}
	return n
}

// Seeds returns every trial seed in (experiment, replicate) order.
func (r *Result) Seeds() []int64 {
	var seeds []int64
	for _, ex := range r.Experiments {
		for i := range ex.Trials {
			seeds = append(seeds, ex.Trials[i].Seed)
		}
	}
	return seeds
}

// Run executes the configured trials over a bounded worker pool and returns
// results in registry order regardless of completion order.
func Run(cfg Config) *Result {
	cfg = cfg.normalized()
	start := time.Now()

	type trialSpec struct {
		runner    experiments.Runner
		replicate int
		slot      *TrialResult
	}

	res := &Result{
		BaseSeed: cfg.BaseSeed,
		Reps:     cfg.Reps,
		Workers:  cfg.Workers,
		Scale:    cfg.Scale,
		Timeout:  cfg.Timeout,
	}
	res.Experiments = make([]ExperimentResult, len(cfg.Runners))
	var specs []trialSpec
	for i, r := range cfg.Runners {
		ex := &res.Experiments[i]
		ex.ID, ex.Title = r.ID, r.Title
		ex.Trials = make([]TrialResult, cfg.Reps)
		for rep := 0; rep < cfg.Reps; rep++ {
			ex.Trials[rep] = TrialResult{
				ExperimentID: r.ID,
				Replicate:    rep,
				Seed:         DeriveSeed(cfg.BaseSeed, r.ID, rep),
			}
			specs = append(specs, trialSpec{r, rep, &ex.Trials[rep]})
		}
	}

	track := newRunTracker(cfg, len(specs))
	track.start()

	// Each worker owns the result slots of the trials it draws, so no
	// locking is needed around them; the WaitGroup publishes the writes.
	jobs := make(chan trialSpec)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for spec := range jobs {
				track.trialStart(spec.slot)
				runTrial(spec.slot, spec.runner, cfg)
				track.trialDone(spec.slot)
			}
		}()
	}
	for _, s := range specs {
		jobs <- s
	}
	close(jobs)
	wg.Wait()

	for i := range res.Experiments {
		ex := &res.Experiments[i]
		ex.Aggregate = aggregate(ex.Trials)
	}
	res.WallTime = time.Since(start)
	track.finish(res)
	return res
}

// runTracker is the harness's progress side-channel: trial lifecycle events
// onto the bounded bus (multi-producer safe) plus the optional stderr
// heartbeat. Labels are interned before the workers start, so the per-trial
// publish path takes no locks beyond the bus's atomics; only rare failure
// details hit the label-table mutex.
type runTracker struct {
	obs    *progress.Publisher
	labels map[string]int32
	total  int64

	done    atomic.Int64
	failed  atomic.Int64
	wallNS  atomic.Int64
	started time.Time

	hb      io.Writer
	hbEvery time.Duration
	stop    chan struct{}
	stopped sync.WaitGroup
}

func newRunTracker(cfg Config, total int) *runTracker {
	t := &runTracker{
		obs:     cfg.Obs,
		total:   int64(total),
		hb:      cfg.Heartbeat,
		hbEvery: cfg.HeartbeatEvery,
		started: time.Now(),
	}
	if t.hbEvery <= 0 {
		t.hbEvery = 2 * time.Second
	}
	if t.obs != nil {
		t.labels = make(map[string]int32, len(cfg.Runners))
		for _, r := range cfg.Runners {
			t.labels[r.ID] = t.obs.Label(r.ID)
		}
	}
	return t
}

func (t *runTracker) start() {
	if t.obs != nil {
		t.obs.Publish(progress.Event{Kind: progress.KindRunStart, Total: t.total})
	}
	if t.hb == nil {
		return
	}
	t.stop = make(chan struct{})
	t.stopped.Add(1)
	go func() {
		defer t.stopped.Done()
		tick := time.NewTicker(t.hbEvery)
		defer tick.Stop()
		for {
			select {
			case <-t.stop:
				return
			case <-tick.C:
				t.beat()
			}
		}
	}()
}

// beat writes one plain-text progress line: done/total, failures, mean trial
// wall time, and a worker-corrected ETA for the remainder.
func (t *runTracker) beat() {
	done := t.done.Load()
	line := fmt.Sprintf("harness: %d/%d trials", done, t.total)
	if f := t.failed.Load(); f > 0 {
		line += fmt.Sprintf(" (%d failed)", f)
	}
	if done > 0 {
		mean := time.Duration(t.wallNS.Load() / done).Round(time.Millisecond)
		line += fmt.Sprintf(", mean %v/trial", mean)
		if left := t.total - done; left > 0 {
			elapsed := time.Since(t.started)
			eta := time.Duration(float64(elapsed) / float64(done) * float64(left)).Round(time.Second)
			line += fmt.Sprintf(", eta ~%v", eta)
		}
	}
	fmt.Fprintln(t.hb, line)
}

func (t *runTracker) trialStart(slot *TrialResult) {
	if t.obs == nil {
		return
	}
	t.obs.Publish(progress.Event{
		Kind:      progress.KindTrialStart,
		Label:     t.labels[slot.ExperimentID],
		Replicate: int32(slot.Replicate),
		Done:      t.done.Load(),
		Total:     t.total,
	})
}

func (t *runTracker) trialDone(slot *TrialResult) {
	done := t.done.Add(1)
	var failed int64
	if !slot.OK() {
		failed = t.failed.Add(1)
	} else {
		failed = t.failed.Load()
	}
	t.wallNS.Add(int64(slot.WallTime))
	if t.obs == nil {
		return
	}
	var detail int32
	if slot.Err != "" {
		msg := slot.Err
		if len(msg) > 80 {
			msg = msg[:80]
		}
		detail = t.obs.Label(msg)
	}
	t.obs.Publish(progress.Event{
		Kind:      progress.KindTrialDone,
		Label:     t.labels[slot.ExperimentID],
		Detail:    detail,
		Replicate: int32(slot.Replicate),
		Done:      done,
		Total:     t.total,
		Failed:    failed,
		Retries:   int64(slot.Retries),
	})
}

// finish emits the terminal event and the final heartbeat, then stops the
// heartbeat goroutine.
func (t *runTracker) finish(res *Result) {
	if t.stop != nil {
		close(t.stop)
		t.stopped.Wait()
		t.beat()
	}
	if t.obs != nil {
		t.obs.Publish(progress.Event{
			Kind:   progress.KindRunDone,
			Done:   t.done.Load(),
			Total:  t.total,
			Failed: int64(res.Failed()),
		})
	}
}

// abandonGrace is how long a timed-out trial gets to unwind after its
// engines are interrupted before the worker stops waiting for it. Interrupt
// freezes every engine, so experiments unwind in microseconds; the grace
// only matters if a trial is stuck outside the simulator.
const abandonGrace = 2 * time.Second

type trialOutcome struct {
	report   *experiments.Report
	panicMsg string
}

// runTrial executes one trial with panic recovery, the wall-clock timeout,
// and the bounded retry budget, filling the result slot. WallTime covers
// every attempt; the stats and report are the final attempt's.
func runTrial(slot *TrialResult, r experiments.Runner, cfg Config) {
	start := time.Now()
	for attempt := 0; ; attempt++ {
		attemptTrial(slot, r, cfg)
		slot.Retries = attempt
		if slot.OK() || attempt >= cfg.Retries {
			slot.WallTime = time.Since(start)
			return
		}
		// Clear the failure before the next attempt; a later success must
		// look exactly like a first-try success (bar the retry count).
		slot.Report, slot.Err, slot.TimedOut = nil, "", false
	}
}

// attemptTrial is a single attempt of one trial.
func attemptTrial(slot *TrialResult, r experiments.Runner, cfg Config) {
	stats := &experiments.Stats{}
	opt := experiments.Options{
		Seed:    slot.Seed,
		Scale:   cfg.Scale,
		Verbose: cfg.Verbose,
		Stats:   stats,
	}
	start := time.Now()
	done := make(chan trialOutcome, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				done <- trialOutcome{panicMsg: fmt.Sprintf("panic: %v", p)}
			}
		}()
		done <- trialOutcome{report: r.Run(opt)}
	}()

	finish := func(out trialOutcome, timedOut bool) {
		slot.WallTime = time.Since(start)
		slot.Events = stats.EventsFired()
		slot.Engines = stats.Engines()
		slot.Metrics = stats.MetricsSnapshot()
		slot.Attribution = stats.AttributionSnapshot()
		slot.Telemetry = stats.TelemetrySnapshot()
		slot.TimedOut = timedOut
		switch {
		case timedOut:
			slot.Err = fmt.Sprintf("timeout: exceeded %v wall clock", cfg.Timeout)
		case out.panicMsg != "":
			slot.Err = out.panicMsg
		default:
			slot.Report = out.report
		}
	}

	if cfg.Timeout <= 0 {
		finish(<-done, false)
		return
	}
	timer := time.NewTimer(cfg.Timeout)
	defer timer.Stop()
	select {
	case out := <-done:
		finish(out, false)
	case <-timer.C:
		// Freeze every engine the trial built (and any it builds from here
		// on), then give it a moment to unwind. A report produced after an
		// interrupt is truncated garbage, so it is discarded either way.
		stats.Interrupt()
		select {
		case <-done:
			finish(trialOutcome{}, true)
		case <-time.After(abandonGrace):
			// The trial is stuck outside the simulator; abandon it. Do not
			// touch stats again: the runaway goroutine may still be writing.
			slot.WallTime = time.Since(start)
			slot.TimedOut = true
			slot.Err = fmt.Sprintf("timeout: exceeded %v wall clock (trial abandoned)", cfg.Timeout)
		}
	}
}
