package harness

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"vsched/internal/experiments"
	"vsched/internal/sim"
)

// synthetic builds a runner whose report is a pure function of the seed, so
// order-independence is observable without the cost of a real experiment. It
// spins a real engine (registered with Options.Stats) to exercise the event
// accounting.
func synthetic(id string) experiments.Runner {
	return experiments.Runner{
		ID:    id,
		Title: "synthetic " + id,
		Run: func(o experiments.Options) *experiments.Report {
			eng := sim.NewEngine(o.Seed)
			o.Stats.Track(eng)
			ticks := 0
			var tick func()
			tick = func() {
				ticks++
				if ticks < 100 {
					eng.After(sim.Millisecond, tick)
				}
			}
			eng.After(0, tick)
			eng.RunFor(sim.Second)
			rep := &experiments.Report{ID: id, Title: "synthetic " + id,
				Header: []string{"metric", "value", "share"}}
			rep.Add("draw", fmt.Sprintf("%d", eng.Rand().Int63n(1000)), fmt.Sprintf("%d%%", 50+eng.Rand().Int63n(50)))
			rep.Add("ticks", fmt.Sprintf("%d", ticks), "100%")
			return rep
		},
	}
}

func syntheticSet(n int) []experiments.Runner {
	var rs []experiments.Runner
	for i := 0; i < n; i++ {
		rs = append(rs, synthetic(fmt.Sprintf("syn%d", i)))
	}
	return rs
}

func TestDeriveSeed(t *testing.T) {
	if DeriveSeed(42, "fig2", 0) != 42 {
		t.Fatal("replicate 0 must keep the base seed")
	}
	a := DeriveSeed(42, "fig2", 1)
	if a == 42 {
		t.Fatal("replicate 1 must differ from the base seed")
	}
	if a != DeriveSeed(42, "fig2", 1) {
		t.Fatal("derivation must be stable")
	}
	if a == DeriveSeed(42, "fig3", 1) {
		t.Fatal("seeds must differ across experiments")
	}
	if a == DeriveSeed(42, "fig2", 2) {
		t.Fatal("seeds must differ across replicates")
	}
	if a == DeriveSeed(43, "fig2", 1) {
		t.Fatal("seeds must differ across base seeds")
	}
	if a < 0 {
		t.Fatal("derived seeds must be non-negative")
	}
}

func TestParallelMatchesSerialSynthetic(t *testing.T) {
	runners := syntheticSet(12)
	run := func(workers int) *Result {
		return Run(Config{Runners: runners, BaseSeed: 7, Reps: 3, Workers: workers})
	}
	serial, parallel := run(1), run(8)
	if serial.Text() != parallel.Text() {
		t.Fatalf("parallel text differs from serial:\n%s\nvs\n%s", parallel.Text(), serial.Text())
	}
	if serial.Failed() != 0 || parallel.Failed() != 0 {
		t.Fatalf("unexpected failures: %d/%d", serial.Failed(), parallel.Failed())
	}
	if got, want := serial.Trials(), 36; got != want {
		t.Fatalf("trials=%d want %d", got, want)
	}
	if serial.EventsFired() == 0 || serial.EventsFired() != parallel.EventsFired() {
		t.Fatalf("event accounting differs: %d vs %d", serial.EventsFired(), parallel.EventsFired())
	}
	for i := range serial.Seeds() {
		if serial.Seeds()[i] != parallel.Seeds()[i] {
			t.Fatal("seed sets differ")
		}
	}
}

func TestPanicRecovery(t *testing.T) {
	bomb := experiments.Runner{ID: "bomb", Title: "panics", Run: func(o experiments.Options) *experiments.Report {
		panic("kaboom")
	}}
	res := Run(Config{Runners: []experiments.Runner{synthetic("a"), bomb, synthetic("b")}, BaseSeed: 1, Workers: 2})
	if res.Failed() != 1 {
		t.Fatalf("failed=%d want 1", res.Failed())
	}
	ex := res.Experiments[1]
	if ex.Trials[0].OK() || !strings.Contains(ex.Trials[0].Err, "kaboom") {
		t.Fatalf("panic not captured: %+v", ex.Trials[0])
	}
	if ex.Aggregate != nil {
		t.Fatal("all-failed experiment must have nil aggregate")
	}
	// The healthy neighbours must be unaffected.
	if !res.Experiments[0].Trials[0].OK() || !res.Experiments[2].Trials[0].OK() {
		t.Fatal("panic killed sibling trials")
	}
	if !strings.Contains(res.Text(), "FAILED rep 0") {
		t.Fatalf("text must surface the failure:\n%s", res.Text())
	}
}

func TestTimeoutInterruptsRunawayTrial(t *testing.T) {
	runaway := experiments.Runner{ID: "runaway", Title: "never finishes", Run: func(o experiments.Options) *experiments.Report {
		eng := sim.NewEngine(o.Seed)
		o.Stats.Track(eng)
		var spin func()
		spin = func() { eng.After(sim.Microsecond, spin) }
		eng.After(0, spin)
		eng.RunFor(sim.Duration(1 << 60)) // would run ~forever without Interrupt
		rep := &experiments.Report{ID: "runaway", Title: "x", Header: []string{"a"}}
		rep.Add("done")
		return rep
	}}
	start := time.Now()
	res := Run(Config{Runners: []experiments.Runner{runaway, synthetic("ok")}, BaseSeed: 1, Workers: 2, Timeout: 100 * time.Millisecond})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout did not bound the run: %v", elapsed)
	}
	tr := res.Experiments[0].Trials[0]
	if !tr.TimedOut || tr.OK() {
		t.Fatalf("trial must be recorded as timed out: %+v", tr)
	}
	if !strings.Contains(tr.Err, "timeout") {
		t.Fatalf("err=%q", tr.Err)
	}
	if strings.Contains(tr.Err, "abandoned") {
		t.Fatalf("interrupt should have unwound the trial gracefully, not abandoned it: %q", tr.Err)
	}
	if tr.Events == 0 {
		t.Fatal("interrupted trial should still report the events it fired")
	}
	if !res.Experiments[1].Trials[0].OK() {
		t.Fatal("timeout starved the healthy trial")
	}
}

func TestAggregateCells(t *testing.T) {
	mk := func(rep int, seed int64, draw string) TrialResult {
		r := &experiments.Report{ID: "x", Title: "t", Header: []string{"metric", "value", "share"}}
		r.Add("draw", draw, "80%")
		r.Notef("stable note")
		return TrialResult{ExperimentID: "x", Replicate: rep, Seed: seed, Report: r}
	}
	agg := aggregate([]TrialResult{mk(0, 1, "10"), mk(1, 2, "20"), mk(2, 3, "30")})
	if agg == nil {
		t.Fatal("nil aggregate")
	}
	if got := agg.Cell(0, 1); got != "20±10 [10,30]" {
		t.Fatalf("numeric cell %q", got)
	}
	if got := agg.Cell(0, 2); got != "80%" {
		t.Fatalf("identical cell must pass through verbatim: %q", got)
	}
	if got := agg.Cell(0, 0); got != "draw" {
		t.Fatalf("label cell %q", got)
	}
	found := false
	for _, n := range agg.Notes {
		if strings.Contains(n, "aggregate of 3 seeds: 1, 2, 3") {
			found = true
		}
	}
	if !found {
		t.Fatalf("seed note missing: %v", agg.Notes)
	}

	// Non-numeric diverging cells collapse to "varies".
	a, b := mk(0, 1, "alpha"), mk(1, 2, "beta")
	agg = aggregate([]TrialResult{a, b})
	if got := agg.Cell(0, 1); got != "varies" {
		t.Fatalf("diverging label cell %q", got)
	}

	// Shape divergence drops the trial with a note instead of mis-merging.
	odd := mk(2, 9, "5")
	odd.Report.Add("extra", "1", "2%")
	agg = aggregate([]TrialResult{mk(0, 1, "10"), odd})
	if len(agg.Rows) != 1 {
		t.Fatalf("shape-diverged trial must be dropped, rows=%d", len(agg.Rows))
	}
	found = false
	for _, n := range agg.Notes {
		if strings.Contains(n, "shape diverged") {
			found = true
		}
	}
	if !found {
		t.Fatalf("drop note missing: %v", agg.Notes)
	}

	// Single successful trial with no failures: the report passes through
	// untouched (no aggregate notes).
	solo := mk(0, 42, "7")
	agg = aggregate([]TrialResult{solo})
	if agg != solo.Report {
		t.Fatal("single-trial aggregate must be the report itself")
	}
}

func TestArtifactStream(t *testing.T) {
	res := Run(Config{Runners: syntheticSet(2), BaseSeed: 5, Reps: 2, Workers: 4})
	var buf bytes.Buffer
	if err := res.WriteArtifact(&buf); err != nil {
		t.Fatal(err)
	}
	var types []string
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("invalid JSONL: %v", err)
		}
		types = append(types, line["type"].(string))
		switch line["type"] {
		case "run":
			if v, ok := line["schema_version"].(float64); !ok || int(v) != ArtifactSchemaVersion {
				t.Fatalf("schema_version %v, want %d", line["schema_version"], ArtifactSchemaVersion)
			}
			if int64(line["base_seed"].(float64)) != 5 {
				t.Fatalf("base_seed %v", line["base_seed"])
			}
			if n := len(line["seeds"].([]any)); n != 4 {
				t.Fatalf("seed set size %d", n)
			}
		case "trial":
			if line["report"] == nil && line["err"] == nil {
				t.Fatal("trial line missing report and err")
			}
		case "summary":
			if line["trials"].(float64) != 4 || line["failed"].(float64) != 0 {
				t.Fatalf("summary %v", line)
			}
		}
	}
	want := []string{"run", "trial", "trial", "aggregate", "trial", "trial", "aggregate", "summary"}
	if strings.Join(types, ",") != strings.Join(want, ",") {
		t.Fatalf("line types %v want %v", types, want)
	}
}

// TestRetryRecoversFlakyTrial: with a retry budget, a trial that panics on
// its first attempts but then succeeds ends up OK, with the consumed
// attempts recorded; without the budget the first failure is final.
func TestRetryRecoversFlakyTrial(t *testing.T) {
	flaky := func(failures *int32) experiments.Runner {
		return experiments.Runner{ID: "flaky", Title: "fails then recovers",
			Run: func(o experiments.Options) *experiments.Report {
				if atomic.AddInt32(failures, -1) >= 0 {
					panic("transient")
				}
				rep := &experiments.Report{ID: "flaky", Title: "x", Header: []string{"a"}}
				rep.Add("done")
				return rep
			}}
	}

	n := int32(2)
	res := Run(Config{Runners: []experiments.Runner{flaky(&n)}, BaseSeed: 1, Workers: 1, Retries: 2})
	tr := res.Experiments[0].Trials[0]
	if !tr.OK() || tr.Retries != 2 {
		t.Fatalf("retry did not recover the trial: ok=%v retries=%d err=%q", tr.OK(), tr.Retries, tr.Err)
	}
	if res.Failed() != 0 {
		t.Fatalf("failed=%d want 0", res.Failed())
	}

	// Budget exhausted: still failed, with every attempt counted.
	n = 5
	res = Run(Config{Runners: []experiments.Runner{flaky(&n)}, BaseSeed: 1, Workers: 1, Retries: 2})
	tr = res.Experiments[0].Trials[0]
	if tr.OK() || tr.Retries != 2 || !strings.Contains(tr.Err, "transient") {
		t.Fatalf("exhausted budget mis-recorded: %+v", tr)
	}

	// No budget: fail fast, zero retries.
	n = 1
	res = Run(Config{Runners: []experiments.Runner{flaky(&n)}, BaseSeed: 1, Workers: 1})
	tr = res.Experiments[0].Trials[0]
	if tr.OK() || tr.Retries != 0 {
		t.Fatalf("fail-fast path mis-recorded: %+v", tr)
	}
}

// TestRetrySuccessMatchesFirstTry: a retried success must render exactly
// like a first-try success — the retry count lives in the artifact, not the
// deterministic text.
func TestRetrySuccessMatchesFirstTry(t *testing.T) {
	clean := Run(Config{Runners: []experiments.Runner{synthetic("syn0")}, BaseSeed: 7, Workers: 1})
	n := int32(1)
	flaky := experiments.Runner{ID: "syn0", Title: "synthetic syn0",
		Run: func(o experiments.Options) *experiments.Report {
			if atomic.AddInt32(&n, -1) >= 0 {
				panic("transient")
			}
			return synthetic("syn0").Run(o)
		}}
	retried := Run(Config{Runners: []experiments.Runner{flaky}, BaseSeed: 7, Workers: 1, Retries: 1})
	if clean.Text() != retried.Text() {
		t.Fatalf("retried text diverged:\n%s\nvs\n%s", retried.Text(), clean.Text())
	}
	if retried.Experiments[0].Trials[0].Retries != 1 {
		t.Fatalf("retries=%d want 1", retried.Experiments[0].Trials[0].Retries)
	}
}
