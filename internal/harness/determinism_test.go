package harness

import (
	"reflect"
	"testing"

	"vsched/internal/experiments"
)

func registrySubset(t *testing.T, ids ...string) []experiments.Runner {
	t.Helper()
	var rs []experiments.Runner
	for _, id := range ids {
		r, ok := experiments.ByID(id)
		if !ok {
			t.Fatalf("unknown experiment %s", id)
		}
		rs = append(rs, r)
	}
	return rs
}

// TestParallelMatchesSerialFastSubset drives real experiments with
// replication through serial and parallel harnesses and requires
// byte-identical text and artifacts-modulo-timing. Cheap enough for -short
// and the race pass.
func TestParallelMatchesSerialFastSubset(t *testing.T) {
	runners := registrySubset(t, "fig3", "fig10a", "table2", "fig11")
	run := func(workers int) *Result {
		return Run(Config{Runners: runners, BaseSeed: 42, Reps: 3, Scale: 0.05, Workers: workers})
	}
	serial, parallel := run(1), run(8)
	if serial.Failed()+parallel.Failed() != 0 {
		t.Fatalf("failures: serial=%d parallel=%d", serial.Failed(), parallel.Failed())
	}
	if serial.Text() != parallel.Text() {
		t.Fatalf("parallel harness output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial.Text(), parallel.Text())
	}
	if serial.EventsFired() != parallel.EventsFired() {
		t.Fatalf("event totals differ: %d vs %d", serial.EventsFired(), parallel.EventsFired())
	}
	// Per-trial metrics snapshots are part of the determinism contract too:
	// the parallel path must embed the exact counter values the serial path
	// saw, experiment by experiment, replicate by replicate.
	for i := range serial.Experiments {
		se, pe := serial.Experiments[i], parallel.Experiments[i]
		for j := range se.Trials {
			sm, pm := se.Trials[j].Metrics, pe.Trials[j].Metrics
			if len(sm) == 0 {
				t.Fatalf("%s trial %d captured no metrics", se.ID, j)
			}
			if !reflect.DeepEqual(sm, pm) {
				t.Fatalf("%s trial %d metrics differ between serial and parallel:\n%v\nvs\n%v",
					se.ID, j, sm, pm)
			}
		}
	}
}

// TestParallelMatchesSerialFullRegistry is the acceptance check for the
// harness: the complete registry (the cmd/experiments -run all path), run
// serially and with a worker pool, must produce byte-identical reports for
// the same seed set.
func TestParallelMatchesSerialFullRegistry(t *testing.T) {
	if testing.Short() {
		t.Skip("full-registry determinism suite")
	}
	run := func(workers int) *Result {
		return Run(Config{BaseSeed: 42, Scale: 0.05, Workers: workers})
	}
	serial, parallel := run(1), run(8)
	if serial.Failed()+parallel.Failed() != 0 {
		t.Fatalf("failures: serial=%d parallel=%d", serial.Failed(), parallel.Failed())
	}
	if serial.Text() != parallel.Text() {
		t.Fatal("parallel full-registry output differs from serial")
	}
	if got := len(serial.Experiments); got != len(experiments.Registry()) {
		t.Fatalf("experiments covered: %d", got)
	}
}

// TestRepsOneMatchesDirectRun pins the compatibility contract: a -reps 1
// harness trial is the classic serial run, bit for bit (replicate 0 keeps
// the base seed).
func TestRepsOneMatchesDirectRun(t *testing.T) {
	r, _ := experiments.ByID("fig3")
	direct := r.Run(experiments.Options{Seed: 42, Scale: 0.1}).String()
	res := Run(Config{Runners: []experiments.Runner{r}, BaseSeed: 42, Scale: 0.1, Workers: 4})
	harnessed := res.Experiments[0].Trials[0].Report.String()
	if direct != harnessed {
		t.Fatalf("harness trial diverged from direct run:\n%s\nvs\n%s", direct, harnessed)
	}
}
