package harness

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"vsched/internal/experiments"
	"vsched/internal/progress"
)

// fakeRunners returns cheap runners: "ok" always succeeds, "boom" panics on
// every attempt.
func fakeRunners() []experiments.Runner {
	return []experiments.Runner{
		{ID: "ok", Title: "always succeeds", Run: func(o experiments.Options) *experiments.Report {
			r := &experiments.Report{ID: "ok", Title: "ok", Header: []string{"seed"}}
			r.Add(string(rune('0' + o.Seed%10)))
			return r
		}},
		{ID: "boom", Title: "always panics", Run: func(o experiments.Options) *experiments.Report {
			panic(errors.New("kaboom"))
		}},
	}
}

// TestObsTrialLifecycle drains the bus after a run and checks the full
// lifecycle: run_start, per-trial start/done pairs with exact done/total
// accounting, failure details, and the terminal run_done.
func TestObsTrialLifecycle(t *testing.T) {
	pub := progress.NewPublisher(256)
	res := Run(Config{
		Runners:  fakeRunners(),
		BaseSeed: 42,
		Reps:     3,
		Workers:  2,
		Retries:  1,
		Obs:      pub,
	})
	if res.Trials() != 6 || res.Failed() != 3 {
		t.Fatalf("trials=%d failed=%d", res.Trials(), res.Failed())
	}

	reader := pub.Bus.NewReader(true)
	buf := make([]progress.Event, 64)
	var evs []progress.Event
	for {
		n := reader.Poll(buf)
		if n == 0 {
			break
		}
		evs = append(evs, buf[:n]...)
	}
	if reader.Dropped() != 0 {
		t.Fatalf("dropped %d events with a roomy ring", reader.Dropped())
	}

	counts := map[progress.Kind]int{}
	for _, ev := range evs {
		counts[ev.Kind]++
	}
	if counts[progress.KindRunStart] != 1 || counts[progress.KindRunDone] != 1 {
		t.Fatalf("run events: %v", counts)
	}
	if counts[progress.KindTrialStart] != 6 || counts[progress.KindTrialDone] != 6 {
		t.Fatalf("trial events: %v", counts)
	}
	if evs[0].Kind != progress.KindRunStart || evs[0].Total != 6 {
		t.Fatalf("first event: %+v", evs[0])
	}
	last := evs[len(evs)-1]
	if last.Kind != progress.KindRunDone || last.Done != 6 || last.Failed != 3 {
		t.Fatalf("last event: %+v", last)
	}

	// Done tallies on trial_done events are a permutation of 1..6, and the
	// failing experiment's trials carry the truncated panic text and the
	// consumed retry budget.
	seen := map[int64]bool{}
	for _, ev := range evs {
		if ev.Kind != progress.KindTrialDone {
			continue
		}
		if seen[ev.Done] {
			t.Fatalf("duplicate done tally %d", ev.Done)
		}
		seen[ev.Done] = true
		label := pub.Bus.LabelName(ev.Label)
		if label == "boom" {
			if detail := pub.Bus.LabelName(ev.Detail); !strings.Contains(detail, "kaboom") {
				t.Fatalf("boom trial detail = %q", detail)
			}
			if ev.Retries != 1 {
				t.Fatalf("boom trial retries = %d, want 1", ev.Retries)
			}
		} else if label != "ok" {
			t.Fatalf("unexpected trial label %q", label)
		}
	}
	for i := int64(1); i <= 6; i++ {
		if !seen[i] {
			t.Fatalf("missing done tally %d (saw %v)", i, seen)
		}
	}
}

// TestObsInert proves attaching the publisher changes nothing about the
// result: trial reports, metrics, and aggregates are deeply equal.
func TestObsInert(t *testing.T) {
	cfg := Config{Runners: fakeRunners()[:1], BaseSeed: 7, Reps: 2, Workers: 2}
	detached := Run(cfg)
	cfg.Obs = progress.NewPublisher(64)
	attached := Run(cfg)
	for i := range detached.Experiments {
		d, a := detached.Experiments[i], attached.Experiments[i]
		if !reflect.DeepEqual(d.Aggregate, a.Aggregate) {
			t.Fatalf("experiment %s aggregate diverged with obs attached", d.ID)
		}
		for j := range d.Trials {
			if !reflect.DeepEqual(d.Trials[j].Report, a.Trials[j].Report) ||
				!reflect.DeepEqual(d.Trials[j].Metrics, a.Trials[j].Metrics) {
				t.Fatalf("trial %s/%d diverged with obs attached", d.ID, j)
			}
		}
	}
}

// TestHeartbeat checks the stderr heartbeat ticks, mentions progress, and
// stays plain text.
func TestHeartbeat(t *testing.T) {
	var buf bytes.Buffer
	Run(Config{
		Runners:        fakeRunners()[:1],
		BaseSeed:       1,
		Reps:           2,
		Workers:        1,
		Heartbeat:      &buf,
		HeartbeatEvery: time.Millisecond,
	})
	out := buf.String()
	if !strings.Contains(out, "harness: 2/2 trials") {
		t.Fatalf("final heartbeat missing:\n%s", out)
	}
	if strings.ContainsAny(out, "{}") {
		t.Fatalf("heartbeat is not plain text:\n%s", out)
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if !strings.HasPrefix(line, "harness: ") {
			t.Fatalf("unexpected heartbeat line %q", line)
		}
	}
}

// TestHeartbeatOffByDefault: no writer, no output machinery — Run simply
// works and the tracker spawns nothing.
func TestHeartbeatOffByDefault(t *testing.T) {
	res := Run(Config{Runners: fakeRunners()[:1], BaseSeed: 1, Reps: 1, Workers: 1})
	if res.Failed() != 0 {
		t.Fatalf("failed = %d", res.Failed())
	}
}
