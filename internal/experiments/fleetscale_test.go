package experiments

import (
	"strconv"
	"testing"
)

// TestCloudScaleRuns exercises the fleetscale experiment at a reduced scale:
// the embedded serial-vs-sharded determinism gate panics on divergence, so a
// clean return is the real assertion. The shape checks keep the report
// honest.
func TestCloudScaleRuns(t *testing.T) {
	stats := &Stats{}
	rep := CloudScale(Options{Seed: 42, Scale: 0.05, Stats: stats})
	if len(rep.Rows) != 3 {
		t.Fatalf("got %d rows, want 3 policies", len(rep.Rows))
	}
	for i, row := range rep.Rows {
		placed, err := strconv.Atoi(row[1])
		if err != nil || placed <= 0 {
			t.Fatalf("row %d: bad placed cell %q", i, row[1])
		}
		lifetimes, err := strconv.Atoi(row[3])
		if err != nil || lifetimes <= 0 {
			t.Fatalf("row %d: bad lifetimes cell %q", i, row[3])
		}
	}
	if stats.Engines() == 0 {
		t.Fatal("no engines tracked")
	}
	if snaps := stats.TelemetrySnapshot(); len(snaps) != 3 {
		t.Fatalf("got %d telemetry snapshots, want 3", len(snaps))
	}
}

// TestCloudScaleDeterministic pins the whole report: same seed and scale,
// same bytes.
func TestCloudScaleDeterministic(t *testing.T) {
	a := CloudScale(Options{Seed: 7, Scale: 0.05}).String()
	b := CloudScale(Options{Seed: 7, Scale: 0.05}).String()
	if a != b {
		t.Fatalf("fleetscale report not deterministic:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
}
