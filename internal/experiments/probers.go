package experiments

import (
	"fmt"

	"vsched/internal/cachemodel"
	"vsched/internal/core"
	"vsched/internal/host"
	"vsched/internal/sim"
)

// Fig10a reproduces the EMA-capacity trace (§5.2): a vCPU's capacity is
// manually stepped and spiked while vcap probes it; the report compares the
// configured ("actual") capacity against the probed EMA over time.
func Fig10a(opt Options) *Report {
	rep := &Report{
		ID:     "fig10a",
		Title:  "Actual vs probed EMA capacity over time",
		Header: []string{"t(s)", "actual", "ema", "abs-err"},
	}
	c := newFlatCluster(opt, 1, 2, 1)
	d := deployFeatures(c, "vm", c.firstThreads(1), core.Features{Vcap: true, Vact: true})
	th := c.h.Thread(0)

	// Scripted capacity: 100% -> 50% (t=30s) -> brief spike down (t=60s,
	// 3s) -> 75% (t=90s) -> 100% (t=120s). Durations scale with opt.
	seg := opt.scaled(30 * sim.Second)
	spikeLen := opt.scaled(3 * sim.Second)
	var contender *host.PatternContender
	setShare := func(share float64) {
		if contender != nil {
			contender.Stop()
			contender = nil
		}
		if share < 0.999 {
			on := 5 * sim.Millisecond
			off := sim.Duration(float64(on) * share / (1 - share))
			contender = dutyContender(c, th, on, off, 0)
		}
	}
	actual := func(t sim.Time) float64 {
		switch {
		case t < sim.Time(seg):
			return 1024
		case t < sim.Time(2*seg):
			return 512
		case t >= sim.Time(2*seg) && t < sim.Time(2*seg)+sim.Time(spikeLen):
			return 100
		case t < sim.Time(3*seg):
			return 512
		case t < sim.Time(4*seg):
			return 768
		default:
			return 1024
		}
	}
	c.eng.After(seg, func() { setShare(0.5) })
	c.eng.After(2*seg, func() { setShare(0.1) })
	c.eng.After(2*seg+spikeLen, func() { setShare(0.5) })
	c.eng.After(3*seg, func() { setShare(0.75) })
	c.eng.After(4*seg, func() { setShare(1.0) })

	total := 5 * seg
	samples := 25
	var sumErr float64
	for i := 1; i <= samples; i++ {
		c.eng.RunFor(sim.Duration(int64(total) / int64(samples)))
		now := c.eng.Now()
		act := actual(now)
		ema := float64(d.vm.VCPU(0).Capacity())
		err := ema - act
		if err < 0 {
			err = -err
		}
		sumErr += err
		rep.Add(f1(now.Seconds()), f1(act), f1(ema), f1(err))
	}
	rep.Notef("mean abs error = %.0f capacity units (spikes are smoothed by design)", sumErr/float64(samples))
	return rep
}

// Fig10b reproduces the probed cache-line transfer latency matrix (§5.2)
// for an 8-vCPU VM with all topology levels: two SMT pairs in socket 0, one
// SMT pair and one stacked pair in socket 1.
func Fig10b(opt Options) *Report {
	rep := &Report{
		ID:    "fig10b",
		Title: "Probed cache line transfer latency matrix (ns; inf = stacked)",
	}
	c := newCluster(opt, 2, 2, 2)
	threads := []*host.Thread{
		c.h.ThreadAt(0, 0, 0), c.h.ThreadAt(0, 0, 1),
		c.h.ThreadAt(0, 1, 0), c.h.ThreadAt(0, 1, 1),
		c.h.ThreadAt(1, 0, 0), c.h.ThreadAt(1, 0, 1),
		c.h.ThreadAt(1, 1, 0), c.h.ThreadAt(1, 1, 0),
	}
	d := deployFeatures(c, "vm", threads, core.Features{Vtop: true})
	// Let vtop's bootstrap full probe finish before the exhaustive pass.
	c.eng.RunFor(5 * sim.Second)
	var matrix [][]int64
	done := false
	d.vs.Vtop().ProbeAllPairs(func(m [][]int64, took sim.Duration) {
		matrix = m
		done = true
		rep.Notef("exhaustive 8x8 probe took %v", took)
	})
	c.eng.RunFor(opt.scaled(60 * sim.Second))
	if !done || matrix == nil {
		rep.Notef("probe did not finish in budget")
		return rep
	}
	rep.Header = append([]string{"vCPU"}, nums(8)...)
	for i := 0; i < 8; i++ {
		row := []string{fmt.Sprintf("%d", i)}
		for j := 0; j < 8; j++ {
			switch {
			case i == j:
				row = append(row, "0")
			case matrix[i][j] == cachemodel.Infinite:
				row = append(row, "inf")
			default:
				row = append(row, fmt.Sprintf("%d", matrix[i][j]))
			}
		}
		rep.Add(row...)
	}
	return rep
}

func nums(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%d", i)
	}
	return out
}

// Table2 reproduces the vtop probing-time table (§5.2): full probe vs
// validation on rcvm and hpvm.
func Table2(opt Options) *Report {
	rep := &Report{
		ID:     "table2",
		Title:  "vtop probing time (ms)",
		Header: []string{"config", "full", "validate"},
	}
	measure := func(name string, mk func(Options) (*cluster, []*host.Thread)) {
		c, threads := mk(opt)
		d := deployFeatures(c, name, threads, core.Features{Vtop: true})
		vt := d.vs.Vtop()
		// Let the bootstrap full probe and at least one validation pass run.
		c.eng.RunFor(30 * sim.Second)
		rep.Add(name,
			fmt.Sprintf("%.0f", vt.LastFullTime().Milliseconds()),
			fmt.Sprintf("%.0f", vt.LastValidateTime().Milliseconds()))
	}
	measure("rcvm", rcvmCluster)
	measure("hpvm", hpvmCluster)
	rep.Notef("paper: rcvm 547/388, hpvm 665/160 — shapes to preserve: sub-second; validate < full; stacking confirmation dominates rcvm validation")
	return rep
}
