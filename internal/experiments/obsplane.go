package experiments

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"vsched/internal/cloudgen"
	"vsched/internal/faults"
	"vsched/internal/fleet"
	"vsched/internal/obshttp"
	"vsched/internal/sim"
	"vsched/internal/telemetry"
)

// ObsPlane is the live-observability determinism gate (no paper counterpart;
// it guards the ops plane this repo adds around the paper's experiments). The
// fleetscale workload — heterogeneous hosts, heavy-tailed arrivals, a
// deterministic fault schedule with recovery — runs twice:
//
//   - detached: no observer of any kind;
//   - observed: published into a real obshttp server bound to an ephemeral
//     TCP port, while an in-process client hammers /metrics and a second
//     client consumes the full NDJSON progress stream, both over real TCP,
//     concurrently with the simulation.
//
// Five gates panic on violation rather than merely reporting:
//
//  1. inertness — the final-state snapshot and the telemetry snapshot bytes
//     must be identical detached vs observed-under-scrape: observation is
//     inert by construction, not by best effort;
//  2. stream ledger — every epoch event and the terminal run_done must
//     conserve admitted == completed + lost + rejected + running + pending,
//     and run_done must equal the run's own result counters exactly;
//  3. stream reconciliation — events received by the consumer plus events
//     the bus dropped must equal events published: nothing is lost
//     unaccounted, nothing is duplicated;
//  4. event census — fault and recovery event counts on the stream must
//     match the result's crash/brownout/stall and restart counters;
//  5. exposition — the final /metrics scrape must carry the exact
//     vsched_metric line for fleet.macro.placed with the run's placed count.
//
// Reported: the usual throughput accounting plus the published-event census,
// all deterministic functions of (seed, scale) — wall-clock artifacts like
// the concurrent scrape count stay off stdout.
func ObsPlane(o Options) *Report {
	cfg := scaledCloudConfig(o.Scale)
	hosts := 0
	for _, hc := range cfg.Hosts {
		hosts += hc.Count
	}
	// Scale-aware MTBFs (as in faulttol) so the stream carries a meaningful
	// number of fault and recovery events at any -scale.
	mtbf := func(target float64) sim.Duration {
		return sim.Duration(float64(hosts) * float64(cfg.Horizon) / target)
	}
	cfg.Faults = &faults.Config{
		CrashMTBF:    mtbf(24),
		BrownoutMTBF: mtbf(48),
		StallMTBF:    mtbf(72),
	}
	trace := cloudgen.Generate(o.Seed, cfg)

	tcfg := telemetry.Config{Interval: 60 * sim.Second}
	mk := func() fleet.MacroConfig {
		return fleet.MacroConfig{
			Trace:     trace,
			Policy:    fleet.StealAware{},
			Epoch:     60 * sim.Second,
			Shards:    8,
			Faults:    trace.Faults,
			Recovery:  faults.RecoveryConfig{Enabled: true},
			Telemetry: &tcfg,
			Observe:   func(e *sim.Engine) { o.Stats.Track(e) },
		}
	}

	detached := fleet.RunMacro(mk())

	srv := obshttp.New(obshttp.Options{BusSize: 1 << 16, PollInterval: 2 * time.Millisecond})
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		panic(fmt.Sprintf("obsplane: bind: %v", err))
	}
	defer srv.Close()
	run := srv.Register("obsplane")

	stream := consumeEvents(addr, "obsplane")
	stopScrape := make(chan struct{})
	scrapeDone := make(chan int)
	go func() {
		n := 0
		for {
			select {
			case <-stopScrape:
				scrapeDone <- n
				return
			default:
			}
			if body, err := httpGet(addr, "/metrics"); err == nil && len(body) > 0 {
				n++
			}
		}
	}()

	ocfg := mk()
	ocfg.Obs = run.Publisher()
	ocfg.ObsLabel = "obsplane"
	observed := fleet.RunMacro(ocfg)
	run.Finish()

	sres := <-stream
	close(stopScrape)
	midScrapes := <-scrapeDone

	// Gate 1: inertness. The observed run, scraped throughout, must end in
	// the same final state and telemetry bytes as the detached one.
	if !bytes.Equal(detached.Snapshot, observed.Snapshot) {
		panic(fmt.Sprintf("obsplane: observation perturbed the simulation: %s vs %s",
			fleet.SnapshotDigest(detached.Snapshot), fleet.SnapshotDigest(observed.Snapshot)))
	}
	var dj, oj bytes.Buffer
	if err := detached.Telemetry.Snapshot(false).WriteJSON(&dj); err != nil {
		panic(fmt.Sprintf("obsplane: telemetry snapshot: %v", err))
	}
	if err := observed.Telemetry.Snapshot(false).WriteJSON(&oj); err != nil {
		panic(fmt.Sprintf("obsplane: telemetry snapshot: %v", err))
	}
	if !bytes.Equal(dj.Bytes(), oj.Bytes()) {
		panic("obsplane: observation perturbed the telemetry snapshot bytes")
	}

	// Gate 2: stream ledger. consumeEvents already checked per-epoch
	// conservation; here the terminal event must match the result exactly.
	if sres.err != "" {
		panic("obsplane: " + sres.err)
	}
	d := sres.runDone
	if d == nil {
		panic("obsplane: stream carried no run_done event")
	}
	if int(d.Completed) != observed.Lifetimes || int(d.Lost) != observed.Lost ||
		int(d.Rejected) != observed.Rejected || int(d.Running) != observed.RunningAtEnd ||
		int(d.Pending) != observed.PendingAtEnd {
		panic(fmt.Sprintf("obsplane: run_done %+v does not match result (lifetimes=%d lost=%d rejected=%d running=%d pending=%d)",
			*d, observed.Lifetimes, observed.Lost, observed.Rejected, observed.RunningAtEnd, observed.PendingAtEnd))
	}
	if d.Admitted != d.Completed+d.Lost+d.Rejected+d.Running+d.Pending {
		panic(fmt.Sprintf("obsplane: final stream ledger does not conserve: %+v", *d))
	}

	// Gate 3: stream reconciliation. received + dropped == published, and the
	// terminal record's own received count agrees with the consumer's tally.
	published := run.Publisher().Bus.Seq()
	if sres.end == nil {
		panic("obsplane: stream did not terminate with stream_end")
	}
	if sres.end.Received != sres.events || sres.end.Received+sres.end.Dropped != published {
		panic(fmt.Sprintf("obsplane: stream does not reconcile: received %d (consumer %d) + dropped %d != published %d",
			sres.end.Received, sres.events, sres.end.Dropped, published))
	}

	// Gate 4: event census vs result counters.
	wantFaults := observed.Crashes + observed.Brownouts + observed.Stalls
	if sres.end.Dropped == 0 {
		if sres.faults != wantFaults {
			panic(fmt.Sprintf("obsplane: %d fault events on stream, result applied %d", sres.faults, wantFaults))
		}
		if sres.recoveries != observed.Restarts {
			panic(fmt.Sprintf("obsplane: %d recovery events on stream, result restarted %d", sres.recoveries, observed.Restarts))
		}
	}

	// Gate 5: exposition. One more scrape after the run; it must carry the
	// exact sample line for the final placed counter.
	body, err := httpGet(addr, "/metrics")
	if err != nil {
		panic(fmt.Sprintf("obsplane: final scrape: %v", err))
	}
	wantLine := fmt.Sprintf("vsched_metric{run=\"obsplane\",name=\"fleet.macro.placed\"} %d\n", observed.Placed)
	if !strings.Contains(string(body), wantLine) {
		panic(fmt.Sprintf("obsplane: final /metrics scrape missing %q", strings.TrimSpace(wantLine)))
	}
	if srv.Scrapes() == 0 || midScrapes < 0 {
		panic("obsplane: scrape counter never moved")
	}

	o.Stats.TrackRegistry("obsplane", observed.Registry)
	o.Stats.TrackTelemetry("obsplane", observed.Telemetry)

	// Everything reported below is a deterministic function of (seed, scale):
	// epoch-event count derives from the published census, not wall clock.
	epochEvents := int(published) - 2 - wantFaults - observed.Restarts
	rep := &Report{
		ID:    "obsplane",
		Title: "Live ops plane: HTTP exposition and progress stream, inert by construction (macro)",
		Header: []string{"placed", "rejected", "lifetimes", "lost", "restarts",
			"epochs", "fault evs", "recov evs", "published"},
	}
	rep.Add(
		fmt.Sprintf("%d", observed.Placed),
		fmt.Sprintf("%d", observed.Rejected),
		fmt.Sprintf("%d", observed.Lifetimes),
		fmt.Sprintf("%d", observed.Lost),
		fmt.Sprintf("%d", observed.Restarts),
		fmt.Sprintf("%d", epochEvents),
		fmt.Sprintf("%d", wantFaults),
		fmt.Sprintf("%d", observed.Restarts),
		fmt.Sprintf("%d", published),
	)
	rep.Notef("trace: %d hosts, %d arrivals over %.0fh, %d fault events (seed %d)",
		len(trace.Hosts), len(trace.VMs), trace.Horizon.Seconds()/3600,
		len(trace.Faults.Events), o.Seed)
	rep.Notef("gates: detached == observed final-state and telemetry bytes under concurrent TCP scraping; " +
		"every streamed epoch conserves admitted == completed+lost+rejected+running+pending; " +
		"received+dropped == published; /metrics carries the exact final placed sample")
	if o.Verbose {
		rep.Notef("snapshot %s", fleet.SnapshotDigest(observed.Snapshot))
	}
	return rep
}

// streamResult is what the NDJSON consumer saw.
type streamResult struct {
	events     uint64 // wire events received (excludes drops/stream_end records)
	epochs     int
	faults     int
	recoveries int
	runDone    *wireRec
	end        *wireRec // the terminal stream_end record
	err        string
}

// wireRec decodes both progress.WireEvent lines and the stream's
// drops/stream_end envelopes — the field sets are disjoint except for kind.
type wireRec struct {
	Kind      string `json:"kind"`
	Label     string `json:"label"`
	Detail    string `json:"detail"`
	Epoch     int64  `json:"epoch"`
	Admitted  int64  `json:"admitted"`
	Completed int64  `json:"completed"`
	Lost      int64  `json:"lost"`
	Rejected  int64  `json:"rejected"`
	Running   int64  `json:"running"`
	Pending   int64  `json:"pending"`
	Dropped   uint64 `json:"dropped"`
	Received  uint64 `json:"received"`
}

// consumeEvents attaches an NDJSON client to /runs/{id}/events over real TCP
// and tallies the stream until it terminates. The per-epoch conservation
// check runs here, as each event arrives, so a violation is caught even if
// later events overwrite the evidence.
func consumeEvents(addr, id string) <-chan streamResult {
	ch := make(chan streamResult, 1)
	go func() {
		var res streamResult
		defer func() { ch <- res }()
		resp, err := http.Get("http://" + addr + "/runs/" + id + "/events")
		if err != nil {
			res.err = fmt.Sprintf("event stream: %v", err)
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			res.err = fmt.Sprintf("event stream: HTTP %d", resp.StatusCode)
			return
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			line := sc.Bytes()
			if len(bytes.TrimSpace(line)) == 0 {
				continue
			}
			var rec wireRec
			if err := json.Unmarshal(line, &rec); err != nil {
				res.err = fmt.Sprintf("event stream: bad line %q: %v", line, err)
				return
			}
			switch rec.Kind {
			case "stream_end":
				end := rec
				res.end = &end
				return
			case "drops":
				continue
			case "epoch":
				res.epochs++
				if rec.Admitted != rec.Completed+rec.Lost+rec.Rejected+rec.Running+rec.Pending {
					res.err = fmt.Sprintf("epoch %d on stream does not conserve: %+v", rec.Epoch, rec)
					return
				}
			case "fault":
				res.faults++
			case "recovery":
				res.recoveries++
			case "run_done":
				done := rec
				res.runDone = &done
			}
			res.events++
		}
		if res.err == "" {
			res.err = "event stream ended without stream_end"
		}
	}()
	return ch
}

// httpGet fetches one path from the in-process server and returns the body.
func httpGet(addr, path string) ([]byte, error) {
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: HTTP %d", path, resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}
