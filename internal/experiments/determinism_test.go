package experiments

import "testing"

// fastDeterminismIDs are the experiments cheap enough to double-run even
// with -short; the full suite covers the whole registry.
var fastDeterminismIDs = map[string]bool{
	"fig3": true, "fig10a": true, "fig10b": true, "table2": true,
	"fig11": true, "table4": true, "fig16": true, "fig20": true,
}

// TestRegistryDeterminismTwice is the determinism regression suite: every
// registry experiment, run twice with the same seed at -scale 0.1, must
// produce byte-identical report output. Any hidden global state, map
// iteration, or time.Now leak in an experiment or the substrate shows up
// here as a diff.
func TestRegistryDeterminismTwice(t *testing.T) {
	for _, r := range Registry() {
		r := r
		if testing.Short() && !fastDeterminismIDs[r.ID] {
			continue
		}
		t.Run(r.ID, func(t *testing.T) {
			t.Parallel()
			opt := Options{Seed: 42, Scale: 0.1}
			a := r.Run(opt).String()
			b := r.Run(opt).String()
			if a != b {
				t.Fatalf("rerun with the same seed diverged:\n--- first ---\n%s\n--- second ---\n%s", a, b)
			}
			if a == "" {
				t.Fatal("empty report")
			}
		})
	}
}

// TestStatsObservationIsInert checks the harness's Stats hook never changes
// results: a run with Stats attached must be byte-identical to one without,
// while still counting engines and events.
func TestStatsObservationIsInert(t *testing.T) {
	r, _ := ByID("fig3")
	plain := r.Run(Options{Seed: 42, Scale: 0.1}).String()
	stats := &Stats{}
	observed := r.Run(Options{Seed: 42, Scale: 0.1, Stats: stats}).String()
	if plain != observed {
		t.Fatalf("attaching Stats changed the report:\n%s\nvs\n%s", plain, observed)
	}
	if stats.Engines() == 0 || stats.EventsFired() == 0 {
		t.Fatalf("stats recorded nothing: engines=%d events=%d", stats.Engines(), stats.EventsFired())
	}
}
