package experiments

import (
	"bytes"
	"testing"

	"vsched/internal/guest"
	"vsched/internal/sim"
	"vsched/internal/vtrace"
)

// fastDeterminismIDs are the experiments cheap enough to double-run even
// with -short; the full suite covers the whole registry.
var fastDeterminismIDs = map[string]bool{
	"fig3": true, "fig10a": true, "fig10b": true, "table2": true,
	"fig11": true, "table4": true, "fig16": true, "fig20": true,
	"probeacc": true, "fleet": true, "attrib": true,
}

// TestRegistryDeterminismTwice is the determinism regression suite: every
// registry experiment, run twice with the same seed at -scale 0.1, must
// produce byte-identical report output. Any hidden global state, map
// iteration, or time.Now leak in an experiment or the substrate shows up
// here as a diff.
func TestRegistryDeterminismTwice(t *testing.T) {
	for _, r := range Registry() {
		r := r
		if testing.Short() && !fastDeterminismIDs[r.ID] {
			continue
		}
		t.Run(r.ID, func(t *testing.T) {
			t.Parallel()
			opt := Options{Seed: 42, Scale: 0.1}
			a := r.Run(opt).String()
			b := r.Run(opt).String()
			if a != b {
				t.Fatalf("rerun with the same seed diverged:\n--- first ---\n%s\n--- second ---\n%s", a, b)
			}
			if a == "" {
				t.Fatal("empty report")
			}
		})
	}
}

// TestStatsObservationIsInert checks the harness's Stats hook never changes
// results: a run with Stats attached must be byte-identical to one without,
// while still counting engines and events.
func TestStatsObservationIsInert(t *testing.T) {
	r, _ := ByID("fig3")
	plain := r.Run(Options{Seed: 42, Scale: 0.1}).String()
	stats := &Stats{}
	observed := r.Run(Options{Seed: 42, Scale: 0.1, Stats: stats}).String()
	if plain != observed {
		t.Fatalf("attaching Stats changed the report:\n%s\nvs\n%s", plain, observed)
	}
	if stats.Engines() == 0 || stats.EventsFired() == 0 {
		t.Fatalf("stats recorded nothing: engines=%d events=%d", stats.Engines(), stats.EventsFired())
	}
	if len(stats.MetricsSnapshot()) == 0 {
		t.Fatal("stats captured no VM metrics")
	}
}

// tracedScenarioJSON builds a small fully traced scenario — host tap, guest
// scheduler, full vSched — runs it for two virtual seconds and returns the
// exported Chrome trace.
func tracedScenarioJSON(t *testing.T) []byte {
	t.Helper()
	o := Options{Seed: 7, Scale: 0.1}
	c := newFlatCluster(o, 1, 2, 2)
	tr := vtrace.New(0)
	vtrace.AttachHost(tr, c.h)
	d := deploy(c, "vm", c.firstThreads(4), VSched)
	d.vm.SetTracer(tr)
	dutyContender(c, c.h.Thread(0), 5*sim.Millisecond, 5*sim.Millisecond, 0)
	for i := 0; i < 4; i++ {
		i := i
		d.vm.Spawn("w", func(sim.Time) guest.Segment {
			if i%2 == 0 {
				return guest.Compute(2e5)
			}
			return guest.Sleep(100 * sim.Microsecond)
		}, guest.StartOn(i))
	}
	c.eng.RunFor(2 * sim.Second)
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	return buf.Bytes()
}

// TestTracedRunExportIsDeterministic is the tracing determinism contract:
// a fully traced scenario (all three layers emitting) exports byte-identical
// Chrome JSON across repeated runs with the same seed.
func TestTracedRunExportIsDeterministic(t *testing.T) {
	a := tracedScenarioJSON(t)
	b := tracedScenarioJSON(t)
	if !bytes.Equal(a, b) {
		t.Fatal("traced scenario exported different bytes across identical runs")
	}
	for _, cat := range []string{`"cat":"host"`, `"cat":"guest"`, `"cat":"vsched"`} {
		if !bytes.Contains(a, []byte(cat)) {
			t.Fatalf("trace missing %s events", cat)
		}
	}
}

// TestTracingIsInert checks that attaching a tracer does not perturb the
// simulation: a traced fig3 run must produce the same report as an untraced
// one. (Emission happens strictly after state changes and reads only
// interned names and ids.)
func TestTracingIsInert(t *testing.T) {
	r, _ := ByID("fig3")
	plain := r.Run(Options{Seed: 42, Scale: 0.1}).String()
	// fig3 has no tracer hookup of its own; trace a scenario alongside to
	// show cross-VM isolation, then re-run fig3 and compare.
	_ = tracedScenarioJSON(t)
	again := r.Run(Options{Seed: 42, Scale: 0.1}).String()
	if plain != again {
		t.Fatalf("tracing another scenario perturbed fig3:\n%s\nvs\n%s", plain, again)
	}
}
