package experiments

import (
	"strings"
	"testing"

	"vsched/internal/host"
	"vsched/internal/sim"
)

func TestRegistryIntegrity(t *testing.T) {
	seen := map[string]bool{}
	for _, r := range Registry() {
		if r.ID == "" || r.Title == "" || r.Run == nil {
			t.Fatalf("incomplete runner %+v", r)
		}
		if seen[r.ID] {
			t.Fatalf("duplicate id %s", r.ID)
		}
		seen[r.ID] = true
		if _, ok := ByID(r.ID); !ok {
			t.Fatalf("ByID(%s) failed", r.ID)
		}
	}
	if len(seen) != 26 { // 19 paper figures/tables + probeacc + fleet + attrib + fleetobs + fleetscale + faulttol + obsplane
		t.Fatalf("want 26 experiments, got %d", len(seen))
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("ByID must reject unknown ids")
	}
}

func TestReportFormatting(t *testing.T) {
	r := &Report{ID: "x", Title: "t", Header: []string{"a", "bb"}}
	r.Add("1", "2")
	r.Notef("n=%d", 3)
	s := r.String()
	for _, want := range []string{"== x: t ==", "a", "bb", "note: n=3"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report text missing %q:\n%s", want, s)
		}
	}
	if r.Cell(0, 1) != "2" {
		t.Fatalf("cell access broken")
	}
}

func TestOptionsScaling(t *testing.T) {
	o := Options{Scale: 0.5}
	if got := o.scaled(10 * sim.Second); got != 5*sim.Second {
		t.Fatalf("scaled=%v", got)
	}
	if got := o.warm(1 * sim.Second); got != 4*sim.Second {
		t.Fatalf("warm floor not applied: %v", got)
	}
	o = Options{} // zero scale behaves like 1.0
	if got := o.scaled(3 * sim.Second); got != 3*sim.Second {
		t.Fatalf("zero-scale=%v", got)
	}
}

func TestVMTypeShapes(t *testing.T) {
	c, threads := rcvmCluster(Options{Seed: 1})
	if len(threads) != 12 {
		t.Fatalf("rcvm wants 12 vCPUs, got %d", len(threads))
	}
	if threads[10] != threads[11] {
		t.Fatal("rcvm vCPUs 10 and 11 must be stacked on one thread")
	}
	if threads[0].Core() == threads[2].Core() {
		t.Fatal("rcvm vCPU0/2 must sit on distinct cores")
	}
	_ = c

	c2, threads2 := hpvmCluster(Options{Seed: 1})
	if len(threads2) != 32 {
		t.Fatalf("hpvm wants 32 vCPUs, got %d", len(threads2))
	}
	sockets := map[int]int{}
	for _, th := range threads2 {
		sockets[th.Socket()]++
	}
	if len(sockets) != 4 {
		t.Fatalf("hpvm must span 4 sockets: %v", sockets)
	}
	// Socket 3 is dedicated: no contenders there.
	for _, e := range c2.h.Entities() {
		if e.Thread().Socket() == 3 && strings.HasPrefix(e.Name(), "tenant") {
			t.Fatal("hpvm socket 3 must be dedicated")
		}
	}
}

func TestCategoryApply(t *testing.T) {
	c := newFlatCluster(Options{Seed: 1}, 1, 2, 1)
	catHCLL.apply(c, c.h.Thread(0), 0)
	// A vCPU entity sharing thread 0 should now get ~70%.
	e := c.h.NewEntity("probe", c.h.Thread(0), host.DefaultWeight, host.NopClient{})
	e.Wake()
	c.eng.RunFor(2 * sim.Second)
	share := float64(e.RunTime()) / float64(2*sim.Second)
	if share < 0.6 || share > 0.8 {
		t.Fatalf("hcll share=%.2f want ~0.7", share)
	}
	// Dedicated category installs nothing.
	before := len(c.h.Entities())
	category{"dedicated", 1.0, 0}.apply(c, c.h.Thread(1), 0)
	if len(c.h.Entities()) != before {
		t.Fatal("dedicated category must not add contenders")
	}
}

// The cheap experiments run end to end at a tiny scale; the expensive ones
// are covered too unless -short.
func TestExperimentsProduceReports(t *testing.T) {
	fast := []string{"fig3", "fig10a", "fig10b", "table2", "fig11"}
	heavy := []string{"fig2", "fig4", "fig12", "fig13", "fig14", "table3",
		"fig15", "table4", "fig16", "fig17", "fig20", "fig21"}
	// fig18/fig19 are exercised by the bench suite; including them here too
	// would double test time for no extra coverage.
	ids := fast
	if !testing.Short() {
		ids = append(ids, heavy...)
	}
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			r, _ := ByID(id)
			rep := r.Run(Options{Seed: 42, Scale: 0.05})
			if rep.ID != id {
				t.Fatalf("report id %q", rep.ID)
			}
			if len(rep.Rows) == 0 {
				t.Fatal("no rows")
			}
			for _, row := range rep.Rows {
				if len(row) != len(rep.Header) {
					t.Fatalf("row width %d != header %d: %v", len(row), len(rep.Header), row)
				}
			}
		})
	}
}

func TestExperimentDeterminism(t *testing.T) {
	run := func() string {
		r, _ := ByID("fig3")
		return r.Run(Options{Seed: 9, Scale: 0.2}).String()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("experiments must be deterministic:\n%s\nvs\n%s", a, b)
	}
}
