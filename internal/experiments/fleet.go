package experiments

import (
	"fmt"
	"runtime"

	"vsched/internal/fleet"
	"vsched/internal/host"
	"vsched/internal/sim"
)

// FleetScale has no paper counterpart (like probeacc): it takes vSched to
// the scale the paper's claims are about. A 32-host cluster receives a
// trace of 128 VM arrivals — latency-sensitive service VMs mixed with
// CPU-hogging batch VMs, exponential lifetimes — under three placement
// policies crossed with {CFS, vSched} guests. Contention is organic:
// colocated VMs steal from each other, and the live-migration controller
// reshuffles hotspots from per-host steal telemetry. Reported per cell:
// fleet-wide p50/p95 request latency, throughput, cumulative steal, and
// migration counts. The cells are independent simulations sharing one
// arrival trace, so they shard across a worker pool with results identical
// to a serial run.
func FleetScale(o Options) *Report {
	return fleetReport(o, runtime.GOMAXPROCS(0))
}

// fleetReport is FleetScale with an explicit worker count so the
// determinism suite can pin sharded against serial execution.
func fleetReport(o Options, workers int) *Report {
	hostCfg := host.DefaultConfig()
	hostCfg.Sockets = 1
	hostCfg.CoresPerSocket = 4
	hostCfg.ThreadsPerCore = 2

	const hosts = 32
	arrivals := 128
	if o.Scale > 0 && o.Scale < 1 {
		if n := int(128*o.Scale + 0.5); n < arrivals {
			arrivals = n
		}
		if arrivals < 16 {
			arrivals = 16
		}
	}
	window := o.scaled(8 * sim.Second)
	horizon := o.scaled(12 * sim.Second)
	mix := []fleet.TypeMix{
		{Type: fleet.VMType{Name: "websvc", VCPUs: 2, Service: true, ServiceMean: 400 * sim.Microsecond},
			Weight: 4, MeanLifetime: o.scaled(4 * sim.Second)},
		{Type: fleet.VMType{Name: "apisvc", VCPUs: 4, Service: true, ServiceMean: sim.Millisecond},
			Weight: 2, MeanLifetime: o.scaled(5 * sim.Second)},
		{Type: fleet.VMType{Name: "batch2", VCPUs: 2, BatchWork: 1500 * sim.Microsecond},
			Weight: 3, MeanLifetime: o.scaled(3 * sim.Second)},
		{Type: fleet.VMType{Name: "batch8", VCPUs: 8, BatchWork: 2500 * sim.Microsecond},
			Weight: 1, MeanLifetime: o.scaled(4 * sim.Second)},
	}
	trace := fleet.GenerateArrivals(o.Seed, arrivals, window, mix)

	policies := []fleet.Policy{fleet.FirstFit{}, fleet.LeastLoaded{}, fleet.StealAware{}}
	var cfgs []fleet.Config
	var labels []string
	for _, pol := range policies {
		for _, vs := range []bool{false, true} {
			cfgs = append(cfgs, fleet.Config{
				Seed:           o.Seed,
				Hosts:          hosts,
				HostConfig:     hostCfg,
				Overcommit:     2.0,
				Policy:         pol,
				VSched:         vs,
				Arrivals:       trace,
				Horizon:        horizon,
				TelemetryEvery: o.scaled(50 * sim.Millisecond),
				Migration: fleet.MigrationConfig{
					Every:    o.scaled(500 * sim.Millisecond),
					MinSteal: 0.12,
					Margin:   0.04,
					Downtime: o.scaled(20 * sim.Millisecond),
				},
			})
			guest := "CFS"
			if vs {
				guest = "vSched"
			}
			labels = append(labels, fmt.Sprintf("fleet/%s/%s", pol.Name(), guest))
		}
	}

	// Cells shard over the harness-style worker pool; per-cell labels are
	// unique so concurrent registration cannot perturb snapshot naming.
	results := fleet.RunAll(cfgs, workers, func(i int, f *fleet.Fleet) {
		o.Stats.Track(f.Engine())
		o.Stats.TrackRegistry(labels[i], f.Registry())
	})

	rep := &Report{
		ID:     "fleet",
		Title:  "Fleet-scale placement: policy x guest on a 32-host cluster",
		Header: []string{"policy", "guest", "placed", "rejected", "p50 ms", "p95 ms", "kops", "steal s", "migrations"},
	}
	secs := float64(horizon) / 1e9
	p95 := map[string]float64{}
	for _, r := range results {
		rep.Add(r.Policy, r.Guest,
			fmt.Sprintf("%d", r.Placed), fmt.Sprintf("%d", r.Rejected),
			msStr(r.E2E.P50()), msStr(r.E2E.P95()),
			f1(float64(r.Ops)/secs/1e3),
			f1(float64(r.Steal)/1e9),
			fmt.Sprintf("%d", r.Migrations))
		p95[r.Policy+"/"+r.Guest] = float64(r.E2E.P95())
	}
	rep.Notef("%d hosts x %d threads, %d arrivals over %v, overcommit 2.0, horizon %v",
		hosts, hostCfg.Sockets*hostCfg.CoresPerSocket*hostCfg.ThreadsPerCore,
		arrivals, window, horizon)
	for _, guest := range []string{"CFS", "vSched"} {
		ff, sa := p95["first-fit/"+guest], p95["steal-aware/"+guest]
		if ff > 0 && sa > 0 {
			rep.Notef("%s guests: steal-aware p95 is %.1f%% of first-fit (%.2f vs %.2f ms)",
				guest, sa/ff*100, sa/1e6, ff/1e6)
		}
	}
	return rep
}
