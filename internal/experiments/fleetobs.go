package experiments

import (
	"bytes"
	"fmt"

	"vsched/internal/fleet"
	"vsched/internal/host"
	"vsched/internal/sim"
	"vsched/internal/telemetry"
)

// FleetObs validates the telemetry flight recorder at fleet scale (no paper
// counterpart; it guards the observability layer itself). Two cells replay
// one arrival trace — first-fit vs steal-aware placement, CFS guests — with
// a recorder sampling the fleet registry, per-host steal/utilization,
// per-class population and the simulator's own event-queue census. The run
// asserts three properties, panicking on violation:
//
//  1. Determinism: each cell's deterministic telemetry snapshot is
//     byte-identical between a serial and a worker-pool execution of the
//     same configs.
//  2. Bounded memory: recorded bytes stay under the recorder's provable
//     bound and under a fixed budget, while buffering the run's raw vtrace
//     event stream would blow well past it.
//  3. Signal: the worst per-host p95 steal series visibly drops under
//     steal-aware placement vs first-fit — the continuously-observable
//     version of the fleet experiment's headline.
func FleetObs(o Options) *Report {
	hostCfg := host.DefaultConfig()
	hostCfg.Sockets = 1
	hostCfg.CoresPerSocket = 4
	hostCfg.ThreadsPerCore = 2

	const hosts = 8
	arrivals := 48
	if o.Scale > 0 && o.Scale < 1 {
		if n := int(48*o.Scale + 0.5); n < arrivals {
			arrivals = n
		}
		if arrivals < 12 {
			arrivals = 12
		}
	}
	window := o.scaled(4 * sim.Second)
	horizon := o.scaled(8 * sim.Second)
	mix := []fleet.TypeMix{
		{Type: fleet.VMType{Name: "websvc", VCPUs: 2, Service: true, ServiceMean: 400 * sim.Microsecond},
			Weight: 3, MeanLifetime: o.scaled(4 * sim.Second)},
		{Type: fleet.VMType{Name: "batch4", VCPUs: 4, BatchWork: 2 * sim.Millisecond},
			Weight: 3, MeanLifetime: o.scaled(5 * sim.Second)},
	}
	trace := fleet.GenerateArrivals(o.Seed, arrivals, window, mix)

	// A deliberately small recorder config: the memory-bound assertion uses
	// the provable bound, so it should be tight enough to mean something.
	tcfg := telemetry.Config{
		Interval:       o.scaled(25 * sim.Millisecond),
		RawChunkPoints: 256,
		RawChunks:      2,
		Tier1Cap:       128,
		Tier2Cap:       256,
	}

	policies := []fleet.Policy{fleet.FirstFit{}, fleet.StealAware{}}
	var cfgs []fleet.Config
	for _, pol := range policies {
		cfgs = append(cfgs, fleet.Config{
			Seed:           o.Seed,
			Hosts:          hosts,
			HostConfig:     hostCfg,
			Overcommit:     2.0,
			Policy:         pol,
			VSched:         false,
			Arrivals:       trace,
			Horizon:        horizon,
			TelemetryEvery: o.scaled(50 * sim.Millisecond),
			Telemetry:      &tcfg,
		})
	}

	run := func(workers int) []*fleet.Result {
		return fleet.RunAll(cfgs, workers, func(i int, f *fleet.Fleet) {
			o.Stats.Track(f.Engine())
		})
	}
	serial := run(1)
	parallel := run(len(cfgs))

	snapJSON := func(r *fleet.Result) []byte {
		var b bytes.Buffer
		if err := r.Telemetry.Snapshot(false).WriteJSON(&b); err != nil {
			panic("fleetobs: snapshot encode: " + err.Error())
		}
		return b.Bytes()
	}

	rep := &Report{
		ID:     "fleetobs",
		Title:  "Telemetry flight recorder: determinism, memory bound, steal signal",
		Header: []string{"policy", "series", "samples", "telem KB", "bound KB", "events MB", "steal p95", "e2e p95 ms"},
	}

	// The budget the compressed recorder must stay under — and raw event
	// tracing must not. Sample count is scale-invariant (interval and horizon
	// scale together) so the telemetry footprint is too, while event volume
	// grows with work; 512 KiB separates the two at every scale down to the
	// determinism suite's 0.1. 48 bytes is sizeof(vtrace.Event).
	const budget = 512 << 10
	const eventBytes = 48

	stealP95 := make([]float64, len(serial))
	for i, r := range serial {
		// Assertion 1: serial vs parallel byte-identity of the deterministic
		// snapshot (sampled steal/util series included).
		a, b := snapJSON(r), snapJSON(parallel[i])
		if !bytes.Equal(a, b) {
			panic(fmt.Sprintf("fleetobs: %s telemetry snapshot differs serial vs parallel (%d vs %d bytes)",
				r.Policy, len(a), len(b)))
		}

		// Assertion 2: bounded memory. Deterministic series only, so the row
		// is reproducible; the volatile wall-clock series add ~3 more.
		detBytes, detMax := 0, 0
		series := r.Telemetry.Series(false)
		for _, s := range series {
			detBytes += s.Bytes()
			detMax += telemetry.MaxSeriesBytes(tcfg)
		}
		if detBytes > detMax {
			panic(fmt.Sprintf("fleetobs: %s telemetry %d B exceeds provable bound %d B", r.Policy, detBytes, detMax))
		}
		if detBytes > budget {
			panic(fmt.Sprintf("fleetobs: %s telemetry %d B exceeds budget %d B", r.Policy, detBytes, budget))
		}
		rawTrace := r.Events * eventBytes
		if rawTrace <= budget {
			panic(fmt.Sprintf("fleetobs: raw event tracing (%d B) fits the %d B budget — scenario too small to demonstrate the trade",
				rawTrace, budget))
		}

		// Worst per-host p95 of the sampled steal EMA series.
		worst := 0.0
		for _, s := range series {
			if len(s.Name) > 10 && s.Name[:10] == "fleet.host" && s.Name[len(s.Name)-9:] == "steal_ema" {
				if q := s.Quantile(0.95); q > worst {
					worst = q
				}
			}
		}
		stealP95[i] = worst

		rep.Add(r.Policy,
			fmt.Sprintf("%d", len(series)),
			fmt.Sprintf("%d", r.Telemetry.Samples()),
			fmt.Sprintf("%d", detBytes/1024),
			fmt.Sprintf("%d", detMax/1024),
			f1(float64(rawTrace)/(1<<20)),
			fmt.Sprintf("%.4f", worst),
			msStr(r.E2E.P95()))
	}

	// Assertion 3: steal-aware placement visibly lowers the worst sampled
	// steal series vs first-fit.
	ff, sa := stealP95[0], stealP95[1]
	if !(sa < ff) {
		panic(fmt.Sprintf("fleetobs: steal-aware worst p95 steal %.4f not below first-fit %.4f", sa, ff))
	}
	rep.Notef("steal-aware worst-host p95 steal is %.0f%% of first-fit (%.4f vs %.4f)",
		sa/ff*100, sa, ff)
	rep.Notef("%d hosts, %d arrivals over %v, horizon %v, sample interval %v",
		hosts, arrivals, window, horizon, tcfg.Interval)

	for _, r := range serial {
		o.Stats.TrackRegistry("fleetobs/"+r.Policy, r.Registry)
		o.Stats.TrackTelemetry("fleetobs/"+r.Policy, r.Telemetry)
	}
	return rep
}
