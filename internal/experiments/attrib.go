package experiments

import (
	"fmt"

	"vsched/internal/core"
	"vsched/internal/guest"
	"vsched/internal/host"
	"vsched/internal/latprof"
	"vsched/internal/sim"
	"vsched/internal/vtrace"
	"vsched/internal/workload"
)

// attribPattern is one of the three standard host contention patterns used
// throughout §5: the co-tenant is active `on` out of every `on+off`.
type attribPattern struct {
	name    string
	on, off sim.Duration
}

func attribPatterns() []attribPattern {
	return []attribPattern{
		{"balanced-5ms", 5 * sim.Millisecond, 5 * sim.Millisecond},
		{"bursty-40ms", 40 * sim.Millisecond, 40 * sim.Millisecond},
		{"heavy-30/10", 30 * sim.Millisecond, 10 * sim.Millisecond},
	}
}

// attribConfig is one scheduler configuration under comparison. The baseline
// runs the probers without bvs/ivh (like Fig. 14's "no-bvs" arm), so the
// deltas isolate the techniques, not the probing overhead.
type attribConfig struct {
	name  string
	feats core.Features
}

func attribConfigs() []attribConfig {
	bvs := probersOnly()
	bvs.BVS = true
	full := bvs
	full.IVH = true
	return []attribConfig{
		{"baseline", probersOnly()},
		{"+bvs", bvs},
		{"+bvs+ivh", full},
	}
}

// runAttrib builds the attribution rig, warms it up, then taps a live
// latency profiler into the trace stream for the measurement window.
//
// The rig: 4 cores x 2 SMT threads; the VM's 4 vCPUs take the first slot of
// each core. The pattern co-tenants steal threads 0 and 4 (vCPUs 0 and 2,
// phase-staggered) and a fixed 5ms/5ms sibling on thread 1 applies SMT
// pressure to vCPU 0's core, while vCPUs 1 and 3 sit on clean cores — so
// steal-wait, smt-slowdown and idle capacity all exist for the scheduler to
// trade between. The guest runs a latency-marked open-loop server (bvs's
// clientele) plus one CPU-bound "mill" batch task pinned by never blocking
// to a stolen vCPU: the server's requests queue behind it there, and only
// ivh's running-task pull can move it onto the idle capacity of the clean
// cores.
func runAttrib(o Options, pat attribPattern, feats core.Features) *latprof.Profile {
	c := newCluster(o, 1, 4, 2)
	d := deployFeatures(c, "vm", c.threads(0, 2, 4, 6), feats)
	host.NewPatternContender(c.h, "tenant0", c.h.Thread(0), pat.on, pat.off, 0)
	host.NewPatternContender(c.h, "tenant1", c.h.Thread(4), pat.on, pat.off, pat.on/2)
	host.NewPatternContender(c.h, "sibling", c.h.Thread(1), 3*sim.Millisecond, 3*sim.Millisecond, 0)
	// CPU bandwidth quota on vCPU 2 (35% of the period — tight enough to bind
	// under the lighter patterns): throttle-wait shows up in the breakdown as
	// its own cause, distinct from the steal on the same thread.
	d.vm.VCPU(2).Entity().SetBandwidth(35 * sim.Millisecond)

	d.vm.Spawn("mill", func(sim.Time) guest.Segment {
		return guest.Compute(8e6) // 4ms chunks: CPU-intensive for ivh
	}, guest.StartOn(0), guest.WithGroup(d.vs.UserGroup()))

	srv := workload.NewServer(d.env(0), workload.ServerConfig{
		Name:         "attrib-srv",
		Workers:      8,
		ServiceMean:  500 * sim.Microsecond,
		ServiceJit:   0.4,
		Interarrival: 500 * sim.Microsecond,
		LatencyMark:  true,
	})
	srv.Start()
	c.eng.RunFor(o.warm(4 * sim.Second))

	// Attach the profiler only for the measurement window: warmup (prober
	// learning) must not dilute the attribution. Attaching a tracer mid-run
	// is inert for the simulation, so all configurations see identical
	// workloads up to here.
	p := latprof.New(latprof.Config{VM: "vm", NominalSpeed: c.h.Config().BaseSpeed})
	tap := vtrace.NewObserver(p.Observe)
	vtrace.AttachHost(tap, c.h)
	d.vm.SetTracer(tap)
	c.eng.RunFor(o.scaled(10 * sim.Second))
	prof := p.Finish(c.eng.Now())
	// The acceptance invariant, enforced on every real run: per-span
	// components must sum to wall time exactly.
	if err := prof.CheckConservation(); err != nil {
		panic(err)
	}
	return prof
}

// Attrib runs the cross-layer latency attribution experiment: for each
// standard contention pattern, decompose task wall time by cause under
// baseline / +bvs / +bvs+ivh, showing *where* each technique removes
// latency — bvs moves steal-wait out of the tail, ivh drains guest
// runnable-wait — rather than only that p95 improved.
func Attrib(opt Options) *Report {
	rep := &Report{
		ID:    "attrib",
		Title: "Latency attribution: share of task wall time by cause",
		Header: []string{"pattern", "config", "spans", "run", "rnbl-wait", "steal-wait",
			"throttle", "migr", "smt", "steal@p95", "rnbl@p95", "top-blame"},
	}
	share := func(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
	// Per-config sums across patterns for the mechanism note.
	type agg struct {
		steal, rnbl, total, tailSteal float64
	}
	sums := map[string]*agg{}
	for _, cfg := range attribConfigs() {
		sums[cfg.name] = &agg{}
	}
	nPat := len(attribPatterns())
	for _, pat := range attribPatterns() {
		for _, cfg := range attribConfigs() {
			prof := runAttrib(opt, pat, cfg.feats)
			opt.Stats.TrackAttribution("attrib/"+pat.name+"/"+cfg.name, prof.Flatten())
			tot := prof.Totals()
			blame := "-"
			if tb := prof.TopBlame(1); len(tb) > 0 {
				blame = tb[0].Entity
			}
			tailSteal := prof.TailShare(latprof.StealWait, 0.95)
			rep.Add(pat.name, cfg.name, fmt.Sprintf("%d", len(prof.Spans)),
				share(tot.Share(latprof.Run)),
				share(tot.Share(latprof.RunnableWait)),
				share(tot.Share(latprof.StealWait)),
				share(tot.Share(latprof.ThrottleWait)),
				share(tot.Share(latprof.Migration)),
				share(tot.Share(latprof.SMTSlowdown)),
				share(tailSteal),
				share(prof.TailShare(latprof.RunnableWait, 0.95)),
				blame)
			s := sums[cfg.name]
			s.steal += float64(tot.NS[latprof.StealWait])
			s.rnbl += float64(tot.NS[latprof.RunnableWait])
			s.total += float64(tot.Total())
			s.tailSteal += tailSteal
		}
	}
	rep.Notef("conservation: every span's six components sum to its wall time exactly (checked each run)")
	rep.Notef("@p95 columns: the cause's share of wall time within the slowest 5%% of spans")
	base, bvs, full := sums["baseline"], sums["+bvs"], sums["+bvs+ivh"]
	rep.Notef("bvs steal-wait: share %.1f%% -> %.1f%%, p95-tail share %.1f%% -> %.1f%%; ivh runnable-wait share %.1f%% -> %.1f%% (over patterns; single-seed shares are noisy, the harness averages seeds)",
		100*base.steal/base.total, 100*bvs.steal/bvs.total,
		100*base.tailSteal/float64(nPat), 100*bvs.tailSteal/float64(nPat),
		100*bvs.rnbl/bvs.total, 100*full.rnbl/full.total)
	return rep
}
