package experiments

import (
	"strconv"
	"strings"
	"testing"

	"vsched/internal/sim"
	"vsched/internal/workload"
)

// The paper's conclusions must not hinge on one lucky seed. This suite runs
// the cheap experiments across several seeds at reduced scale and asserts
// the *direction* of each result (who wins), not the magnitudes.
func TestConclusionsHoldAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed robustness suite")
	}
	seeds := []int64{7, 42, 1234}

	pct := func(t *testing.T, cell string) float64 {
		t.Helper()
		v, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimPrefix(cell, "+"), "%"), 64)
		if err != nil {
			t.Fatalf("cell %q: %v", cell, err)
		}
		return v
	}

	for _, seed := range seeds {
		seed := seed
		opt := Options{Seed: seed, Scale: 0.1}

		t.Run("fig3", func(t *testing.T) {
			rep := Fig3(opt)
			def, mig := pct(t, rep.Cell(0, 1)), pct(t, rep.Cell(1, 1))
			if mig < def*1.5 {
				t.Fatalf("seed %d: proactive migration should roughly double utilization: %v vs %v",
					seed, def, mig)
			}
		})

		t.Run("fig11", func(t *testing.T) {
			rep := Fig11(opt)
			fracCFS := pct(t, rep.Cell(0, 2))
			fracVcap := pct(t, rep.Cell(1, 2))
			if fracVcap <= fracCFS {
				t.Fatalf("seed %d: vcap must increase fast-vCPU share: %v -> %v",
					seed, fracCFS, fracVcap)
			}
		})

		t.Run("fig14", func(t *testing.T) {
			// Heavy-tailed services need a longer window for stable p95s.
			rep := Fig14(Options{Seed: seed, Scale: 0.25})
			var sum float64
			for _, row := range rep.Rows {
				sum += pct(t, row[4])
			}
			avg := sum / float64(len(rep.Rows))
			if avg >= 95 {
				t.Fatalf("seed %d: bvs should cut p95 on average, normalized avg %v%%", seed, avg)
			}
		})

		t.Run("fig16", func(t *testing.T) {
			rep := Fig16(opt)
			over, err := strconv.ParseFloat(rep.Cell(1, 3), 64)
			if err != nil {
				t.Fatal(err)
			}
			if over < 1.05 {
				t.Fatalf("seed %d: vSched must win the overcommitted phase, ratio %v", seed, over)
			}
		})
	}
}

// TestHPVMLatencyOrdering pins the §5.6 ordering that a mis-anchored bvs
// latency gate once broke: on hpvm, enhanced CFS already cuts tail latency
// hugely via the dedicated socket, and full vSched must not give that back
// (bvs must place at least as well as capacity-aware CFS alone).
func TestHPVMLatencyOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed robustness suite")
	}
	run := func(seed int64, cfg Config) int64 {
		c, d := BuildHPVM(Options{Seed: seed}, cfg)
		spec, _ := workload.ByName("silo")
		srv := spec.New(d.env(d.vm.NumVCPUs())).(*workload.Server)
		srv.Start()
		c.eng.RunFor(6 * sim.Second)
		srv.ResetStats()
		c.eng.RunFor(8 * sim.Second)
		return srv.E2E().P95()
	}
	for _, seed := range []int64{7, 42} {
		cfs := run(seed, CFS)
		enh := run(seed, Enhanced)
		full := run(seed, VSched)
		if enh >= cfs/2 {
			t.Errorf("seed %d: enhanced CFS should cut hpvm p95 sharply: CFS %d vs enhanced %d", seed, cfs, enh)
		}
		// Allow a whisker of noise, but vSched must not regress vs enhanced.
		if float64(full) > float64(enh)*1.15 {
			t.Errorf("seed %d: vSched p95 %d regressed past enhanced CFS %d", seed, full, enh)
		}
	}
}
