package experiments

import (
	"fmt"

	"vsched/internal/sim"
	"vsched/internal/workload"
)

// runOverallOne measures one (workload, config) cell of the overall
// evaluation: throughput workloads report ops in the window, latency
// workloads p95 end-to-end latency.
func runOverallOne(opt Options, build func(Options, Config) (*cluster, *deployment),
	spec workload.Spec, cfg Config, warm, window sim.Duration) (ops uint64, p95 int64) {
	c, d := build(opt, cfg)
	inst := spec.New(d.env(d.vm.NumVCPUs()))
	inst.Start()
	c.eng.RunFor(warm)
	if srv, ok := inst.(*workload.Server); ok {
		srv.ResetStats()
		c.eng.RunFor(window)
		return srv.Ops(), srv.E2E().P95()
	}
	before := inst.Ops()
	c.eng.RunFor(window)
	return inst.Ops() - before, 0
}

// overall runs the full 31-workload × 3-configuration matrix of Figs. 18/19.
func overall(opt Options, id, title string, build func(Options, Config) (*cluster, *deployment)) *Report {
	rep := &Report{
		ID:     id,
		Title:  title,
		Header: []string{"workload", "kind", "CFS", "EnhancedCFS", "vSched"},
	}
	warm := opt.warm(6 * sim.Second)
	window := opt.scaled(15 * sim.Second)

	var tputE, tputV, latE, latV []float64
	for _, name := range workload.Fig18ThroughputNames() {
		spec, _ := workload.ByName(name)
		opsC, _ := runOverallOne(opt, build, spec, CFS, warm, window)
		opsE, _ := runOverallOne(opt, build, spec, Enhanced, warm, window)
		opsV, _ := runOverallOne(opt, build, spec, VSched, warm, window)
		nE := float64(opsE) / float64(opsC)
		nV := float64(opsV) / float64(opsC)
		tputE = append(tputE, nE)
		tputV = append(tputV, nV)
		rep.Add(name, "tput", "100%", pct(nE), pct(nV))
	}
	for _, name := range workload.Fig18LatencyNames() {
		spec, _ := workload.ByName(name)
		_, pC := runOverallOne(opt, build, spec, CFS, warm, window)
		_, pE := runOverallOne(opt, build, spec, Enhanced, warm, window)
		_, pV := runOverallOne(opt, build, spec, VSched, warm, window)
		nE := float64(pE) / float64(pC)
		nV := float64(pV) / float64(pC)
		latE = append(latE, nE)
		latV = append(latV, nV)
		rep.Add(name, "p95", "100%", pct(nE), pct(nV))
	}
	rep.Notef("throughput vs CFS: enhanced %+.0f%%, vSched %+.0f%% (geo-ish mean)",
		100*(mean(tputE)-1), 100*(mean(tputV)-1))
	rep.Notef("latency reduction vs CFS: enhanced %.2fx, vSched %.2fx",
		1/mean(latE), 1/mean(latV))
	return rep
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Fig18 reproduces the rcvm overall results (§5.6).
func Fig18(opt Options) *Report {
	return overall(opt, "fig18",
		"rcvm: normalized throughput / p95 latency vs CFS (tput higher better, p95 lower better)",
		BuildRCVM)
}

// Fig19 reproduces the hpvm overall results (§5.6).
func Fig19(opt Options) *Report {
	return overall(opt, "fig19",
		"hpvm: normalized throughput / p95 latency vs CFS (tput higher better, p95 lower better)",
		BuildHPVM)
}

// Fig20 reproduces the cost analysis (§5.9): for a fixed amount of work,
// the total cycles the VM consumed (cost) and the cycles per second it
// sustained (vCPU utilisation) under CFS vs vSched, on both VM types.
// Throughput workloads run a fixed iteration budget to completion; latency
// workloads serve a fixed stream of requests.
func Fig20(opt Options) *Report {
	rep := &Report{
		ID:     "fig20",
		Title:  "vSched cost for fixed work: total cycles and cycles/second (CPS)",
		Header: []string{"vm", "workload", "config", "Gcycles", "CPS(G/s)"},
	}
	warm := opt.warm(4 * sim.Second)
	sendWindow := opt.scaled(15 * sim.Second)
	benches := []string{"bodytrack", "swaptions", "lu_cb", "img-dnn", "specjbb", "sphinx"}
	tputIters := int(200 * opt.Scale * 16)
	if tputIters < 64 {
		tputIters = 64
	}

	type key struct{ vm, bench, cfg string }
	vals := map[key][2]float64{}
	for _, vmName := range []string{"hpvm", "rcvm"} {
		build := BuildHPVM
		if vmName == "rcvm" {
			build = BuildRCVM
		}
		for _, bench := range benches {
			for _, cfg := range []Config{CFS, VSched} {
				c, d := build(opt, cfg)
				c.eng.RunFor(warm)
				start := c.eng.Now()
				cy0 := d.vm.TotalCycles()
				var finished sim.Time
				if bench == "img-dnn" || bench == "specjbb" || bench == "sphinx" {
					// Fixed request stream, then drain.
					spec, _ := workload.ByName(bench)
					srv := spec.New(d.env(d.vm.NumVCPUs())).(*workload.Server)
					srv.Start()
					c.eng.RunFor(sendWindow)
					srv.Stop()
					c.eng.RunFor(opt.scaled(2 * sim.Second)) // drain in-flight
					finished = c.eng.Now()
				} else {
					// Fixed iteration budget per thread.
					threads := d.vm.NumVCPUs()
					var spec workload.ParallelSpec
					for _, ps := range parallelSpecFor(bench) {
						spec = ps
					}
					spec.Iterations = tputIters / 4
					p := workload.NewParallel(d.env(threads), spec)
					p.Start()
					for i := 0; i < 100000 && !p.Done(); i++ {
						c.eng.RunFor(50 * sim.Millisecond)
					}
					finished = p.FinishedAt
				}
				cycles := d.vm.TotalCycles() - cy0
				elapsed := finished.Sub(start).Seconds()
				if elapsed <= 0 {
					elapsed = 1e-9
				}
				cps := cycles / elapsed
				vals[key{vmName, bench, cfg.String()}] = [2]float64{cycles / 1e9, cps / 1e9}
				rep.Add(vmName, bench, cfg.String(),
					f2(cycles/1e9), f2(cps/1e9))
			}
		}
	}
	// Aggregate notes in the paper's terms.
	var tCyc, tCPS, lCyc, lCPS []float64
	for _, vmName := range []string{"hpvm", "rcvm"} {
		for _, bench := range benches {
			c := vals[key{vmName, bench, "CFS"}]
			v := vals[key{vmName, bench, "vSched"}]
			dc := v[0]/c[0] - 1
			dp := v[1]/c[1] - 1
			if bench == "img-dnn" || bench == "specjbb" || bench == "sphinx" {
				lCyc = append(lCyc, dc)
				lCPS = append(lCPS, dp)
			} else {
				tCyc = append(tCyc, dc)
				tCPS = append(tCPS, dp)
			}
		}
	}
	rep.Notef("throughput workloads: cycles %+.1f%%, CPS %+.1f%% (paper: +5.5%% cycles, +38%% CPS)",
		100*meanDelta(tCyc), 100*meanDelta(tCPS))
	rep.Notef("latency workloads: cycles %+.1f%%, CPS %+.1f%% (paper: +50.5%% cycles, +81.4%% CPS)",
		100*meanDelta(lCyc), 100*meanDelta(lCPS))
	return rep
}

func meanDelta(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Fig21 reproduces the overhead analysis (§5.9): a dedicated symmetric VM
// where the default abstraction is already accurate, so vSched can only add
// overhead. Positive degradation = vSched worse.
func Fig21(opt Options) *Report {
	rep := &Report{
		ID:     "fig21",
		Title:  "Overhead on a dedicated VM (degradation vs CFS; lower is better)",
		Header: []string{"workload", "kind", "CFS", "vSched", "degradation"},
	}
	warm := opt.warm(4 * sim.Second)
	window := opt.scaled(15 * sim.Second)
	tputBenches := []string{"blackscholes", "bodytrack", "canneal", "dedup", "facesim",
		"streamcluster", "fft", "ocean_cp", "radix"}
	latBenches := []string{"img-dnn", "moses", "masstree", "silo", "shore", "specjbb",
		"sphinx", "xapian"}

	build := func(o Options, cfg Config) (*cluster, *deployment) {
		c := newFlatCluster(o, 1, 16, 1)
		return c, deploy(c, "vm", c.firstThreads(16), cfg)
	}

	var degs []float64
	for _, bench := range tputBenches {
		spec, _ := workload.ByName(bench)
		opsC, _ := runOverallOne(opt, build, spec, CFS, warm, window)
		opsV, _ := runOverallOne(opt, build, spec, VSched, warm, window)
		deg := 1 - float64(opsV)/float64(opsC)
		degs = append(degs, deg)
		rep.Add(bench, "tput", fmt.Sprintf("%d", opsC), fmt.Sprintf("%d", opsV),
			fmt.Sprintf("%+.1f%%", 100*deg))
	}
	for _, bench := range latBenches {
		spec, _ := workload.ByName(bench)
		_, pC := runOverallOne(opt, build, spec, CFS, warm, window)
		_, pV := runOverallOne(opt, build, spec, VSched, warm, window)
		deg := float64(pV)/float64(pC) - 1
		degs = append(degs, deg)
		rep.Add(bench, "p95", msStr(pC), msStr(pV), fmt.Sprintf("%+.1f%%", 100*deg))
	}
	rep.Notef("average degradation %.1f%% (paper: 0.7%%)", 100*meanDelta(degs))
	return rep
}

// parallelSpecFor returns the catalogue spec of a parallel kernel as a
// one-element slice (empty if the name is not a Parallel workload).
func parallelSpecFor(name string) []workload.ParallelSpec {
	switch name {
	case "bodytrack":
		return []workload.ParallelSpec{{Name: name, IterWork: 2 * sim.Millisecond, Imbalance: 0.30, Sync: workload.SyncBarrier}}
	case "swaptions":
		return []workload.ParallelSpec{{Name: name, IterWork: 8 * sim.Millisecond, Imbalance: 0.05, Sync: workload.SyncNone}}
	case "lu_cb":
		return []workload.ParallelSpec{{Name: name, IterWork: 2 * sim.Millisecond, Imbalance: 0.20, Sync: workload.SyncBarrier}}
	}
	return nil
}
