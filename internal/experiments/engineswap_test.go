package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateEngineSwap = flag.Bool("update-engineswap", false, "re-record engine-swap golden reports (forbidden in an engine-swap PR)")

// engineSwapIDs are the experiments whose report text is pinned byte-for-byte
// across event-engine changes: probeacc exercises the prober accuracy path,
// fleet the multi-host clock, and attrib the vtrace->latprof fold. Together
// they touch every layer that consumes engine fire order.
var engineSwapIDs = []string{"probeacc", "fleet", "attrib"}

// TestEngineSwapByteIdentity pins the report output of the gate experiments
// at a fixed (seed, scale) to golden files recorded with the original
// container/heap event queue. Any event-engine change — the timing wheel
// swap, pooling, cascade rework — must reproduce the heap engine's fire
// order exactly, so these bytes must never change. Re-recording the goldens
// instead of fixing the engine defeats the gate; do that only for PRs that
// deliberately change simulation semantics.
func TestEngineSwapByteIdentity(t *testing.T) {
	for _, id := range engineSwapIDs {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			r, ok := ByID(id)
			if !ok {
				t.Fatalf("experiment %q not registered", id)
			}
			got := r.Run(Options{Seed: 42, Scale: 0.1}).String()
			if got == "" {
				t.Fatal("empty report")
			}
			golden := filepath.Join("testdata", "engineswap", id+".golden")
			if *updateEngineSwap {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("read golden (record with -update-engineswap BEFORE an engine change): %v", err)
			}
			if got != string(want) {
				t.Fatalf("%s report diverged from the heap-engine golden %s — the event engine is firing in a different order\n--- got ---\n%s\n--- want ---\n%s",
					id, golden, got, want)
			}
		})
	}
}
