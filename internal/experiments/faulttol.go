package experiments

import (
	"bytes"
	"fmt"

	"vsched/internal/cloudgen"
	"vsched/internal/faults"
	"vsched/internal/fleet"
	"vsched/internal/sim"
	"vsched/internal/telemetry"
)

// FaultTol is the fault-tolerance SLO experiment (no paper counterpart; the
// paper's testbed never loses a host). The fleetscale trace — 1024
// heterogeneous hosts, ~115k VM arrivals, 48 hours — runs under a
// deterministic crash+brownout+stall schedule three ways:
//
//   - clean: no faults, the reference throughput;
//   - faults: the schedule active but recovery disabled — crash victims are
//     terminally lost and admission rejections are final;
//   - recovery: the same schedule with the full reaction enabled — crash
//     victims and rejected arrivals retry through the bounded backoff queue,
//     and degraded hosts evacuate through the placement policy.
//
// The fault schedule is scale-aware: MTBFs are derived from the fleet size
// and horizon so the run sees the same expected event counts (~48 crashes,
// ~96 brownouts, ~144 stalls) at any -scale, keeping the gates meaningful in
// the shrunk test configurations.
//
// Three gates panic on violation rather than merely reporting:
//
//  1. determinism — both faulted modes run serially and sharded, and the
//     final-state snapshots must be byte-identical;
//  2. recovery value — the recovery run must complete strictly more VM
//     lifetimes than the no-recovery run under the identical schedule;
//  3. conservation — every arrival is accounted (arrived == lifetimes +
//     lost + rejected + running + pending, exactly); RunMacro itself
//     panics on any imbalance, so every row of the report implies it.
//
// Reported per mode: throughput accounting plus the SLO surface —
// availability, mean/max time-to-recover, restart and evacuation counts,
// and lost vCPU-hours.
func FaultTol(o Options) *Report {
	cfg := scaledCloudConfig(o.Scale)
	hosts := 0
	for _, hc := range cfg.Hosts {
		hosts += hc.Count
	}
	// Expected event count for kind k is hosts * horizon / MTBF_k; fixing
	// the targets makes the MTBFs absorb the scale.
	mtbf := func(target float64) sim.Duration {
		return sim.Duration(float64(hosts) * float64(cfg.Horizon) / target)
	}
	cfg.Faults = &faults.Config{
		CrashMTBF:    mtbf(48),
		BrownoutMTBF: mtbf(96),
		StallMTBF:    mtbf(144),
		MigFailProb:  0.1,
	}
	trace := cloudgen.Generate(o.Seed, cfg)

	tcfg := telemetry.Config{Interval: 60 * sim.Second}
	pol := fleet.StealAware{}

	rep := &Report{
		ID:    "faulttol",
		Title: "Fault tolerance: crash/brownout/stall schedule with recovery vs graceful loss (macro)",
		Header: []string{"mode", "placed", "rejected", "lifetimes", "lost", "restarts",
			"evac", "availability", "MTTR s", "lost vCPU-h"},
	}
	rep.Notef("trace: %d hosts, %d arrivals over %.0fh, %d fault events (seed %d)",
		len(trace.Hosts), len(trace.VMs), trace.Horizon.Seconds()/3600,
		len(trace.Faults.Events), o.Seed)

	run := func(sched *faults.Schedule, rcv faults.RecoveryConfig, shards int, tc *telemetry.Config) *fleet.MacroResult {
		return fleet.RunMacro(fleet.MacroConfig{
			Trace:     trace,
			Policy:    pol,
			Epoch:     60 * sim.Second,
			Shards:    shards,
			Faults:    sched,
			Recovery:  rcv,
			Telemetry: tc,
			Observe:   func(e *sim.Engine) { o.Stats.Track(e) },
		})
	}
	add := func(mode string, r *fleet.MacroResult) {
		rep.Add(mode,
			fmt.Sprintf("%d", r.Placed),
			fmt.Sprintf("%d", r.Rejected),
			fmt.Sprintf("%d", r.Lifetimes),
			fmt.Sprintf("%d", r.Lost),
			fmt.Sprintf("%d", r.Restarts),
			fmt.Sprintf("%d", r.Evacuations),
			fmt.Sprintf("%.5f", r.Availability),
			fmt.Sprintf("%.0f", r.MTTRMean),
			fmt.Sprintf("%.1f", r.LostVCPUHours),
		)
	}
	gate := func(mode string, serial, sharded *fleet.MacroResult) {
		if !bytes.Equal(serial.Snapshot, sharded.Snapshot) {
			panic(fmt.Sprintf("faulttol: %s serial/sharded snapshots diverge: %s vs %s",
				mode, fleet.SnapshotDigest(serial.Snapshot), fleet.SnapshotDigest(sharded.Snapshot)))
		}
	}

	clean := run(nil, faults.RecoveryConfig{}, 8, nil)
	add("clean", clean)

	noRec := run(trace.Faults, faults.RecoveryConfig{}, 8, nil)
	gate("no-recovery", run(trace.Faults, faults.RecoveryConfig{}, 1, nil), noRec)
	add("faults", noRec)

	rcv := faults.RecoveryConfig{Enabled: true}
	rec := run(trace.Faults, rcv, 8, &tcfg)
	gate("recovery", run(trace.Faults, rcv, 1, nil), rec)
	add("recovery", rec)
	o.Stats.TrackRegistry("faulttol.recovery", rec.Registry)
	o.Stats.TrackTelemetry("faulttol.recovery", rec.Telemetry)

	if rec.Lifetimes <= noRec.Lifetimes {
		panic(fmt.Sprintf("faulttol: recovery completed %d lifetimes, no-recovery %d — recovery must win strictly",
			rec.Lifetimes, noRec.Lifetimes))
	}
	if noRec.Crashes == 0 || noRec.Lost == 0 {
		panic(fmt.Sprintf("faulttol: schedule too quiet (crashes=%d lost=%d) — gates are vacuous",
			noRec.Crashes, noRec.Lost))
	}
	rep.Notef("gates: serial==sharded bytes with faults active; recovery lifetimes %d > %d; "+
		"conservation arrived == lifetimes+lost+rejected+running+pending (RunMacro panics otherwise)",
		rec.Lifetimes, noRec.Lifetimes)
	rep.Notef("recovery: %d crashes killed %d VMs, %d restarts, %d lost, %d evacuations (%d failed), MTTR max %.0fs",
		rec.Crashes, rec.Killed, rec.Restarts, rec.Lost, rec.Evacuations, rec.EvacFailures, rec.MTTRMax)
	if o.Verbose {
		rep.Notef("recovery snapshot %s", fleet.SnapshotDigest(rec.Snapshot))
	}
	return rep
}
