package experiments

import (
	"fmt"

	"vsched/internal/host"
	"vsched/internal/metrics"
	"vsched/internal/sim"
	"vsched/internal/workload"
)

// Fig16 reproduces the adaptability experiment (§5.7): a 16-vCPU VM serving
// nginx while the host moves through four phases — dedicated,
// overcommitted, asymmetric-capacity, and resource-constrained (stacking +
// near-dead vCPUs). vSched re-probes and adapts within seconds.
func Fig16(opt Options) *Report {
	rep := &Report{
		ID:     "fig16",
		Title:  "Nginx throughput through host phase changes (req/s, phase averages)",
		Header: []string{"phase", "CFS", "vSched", "vSched/CFS"},
	}
	phase := opt.scaled(25 * sim.Second)
	phaseNames := []string{"dedicated", "overcommitted", "asymmetric", "constrained"}

	run := func(cfg Config) *metrics.TimeSeries {
		c := newFlatCluster(opt, 1, 16, 1)
		d := deploy(c, "vm", c.firstThreads(16), cfg)
		// Moderate closed-loop concurrency: roughly half the vCPUs busy at
		// a time, so unused vCPU shares exist for ivh to harvest when the
		// host becomes contended.
		srv := workload.NewServer(d.env(0), workload.ServerConfig{
			Name: "nginx", Workers: 8,
			ServiceMean: 1500 * sim.Microsecond, ServiceJit: 0.25,
			Connections: 16, Sticky: true,
			FootprintMB: 1.5,
		})
		srv.Start()

		// Co-tenant VM modelled as per-core CFS stressors whose weights set
		// each vCPU's fair share; a phase change re-weights or removes them.
		var contenders []*host.Entity
		clear := func() {
			for _, e := range contenders {
				e.Block()
			}
			contenders = nil
		}
		stress := func(i int, weight int64) {
			contenders = append(contenders,
				host.NewStressor(c.h, "tenant", c.h.Thread(i), weight))
		}
		// Phase 2: overcommitted — every vCPU shares 50% of its core.
		c.eng.At(sim.Time(phase), func() {
			for i := 0; i < 16; i++ {
				stress(i, host.DefaultWeight)
			}
		})
		// Phase 3: asymmetric — half the vCPUs get a 2x share of the rest,
		// same total: weight 512 leaves the vCPU 2/3, weight 2048 leaves 1/3.
		c.eng.At(sim.Time(2*phase), func() {
			clear()
			for i := 0; i < 16; i++ {
				w := int64(512)
				if i >= 8 {
					w = 2048
				}
				stress(i, w)
			}
		})
		// Phase 4: constrained — stack vCPU1 onto vCPU0's core, starve vCPUs
		// 2 and 3 (weight 10240 leaves them ~9%), halve the rest.
		c.eng.At(sim.Time(3*phase), func() {
			clear()
			d.vm.VCPU(1).Entity().Migrate(c.h.Thread(0))
			for _, i := range []int{2, 3} {
				stress(i, 10*host.DefaultWeight)
			}
			for i := 4; i < 16; i++ {
				stress(i, host.DefaultWeight)
			}
		})

		ts := &metrics.TimeSeries{Name: cfg.String()}
		last := uint64(0)
		bucket := opt.scaled(1 * sim.Second)
		var sample func()
		sample = func() {
			ops := srv.Ops()
			ts.Append(c.eng.Now().Seconds(), float64(ops-last)/bucket.Seconds())
			last = ops
			c.eng.After(bucket, sample)
		}
		c.eng.After(bucket, sample)
		c.eng.RunFor(4 * phase)
		return ts
	}

	cfs := run(CFS)
	vs := run(VSched)
	for i, name := range phaseNames {
		t0 := float64(i) * phase.Seconds()
		t1 := t0 + phase.Seconds()
		// Skip the first fifth of each phase (transition).
		t0 += phase.Seconds() / 5
		a, b := cfs.MeanBetween(t0, t1), vs.MeanBetween(t0, t1)
		rep.Add(name, f1(a), f1(b), f2(b/a))
	}
	rep.Notef("paper: equal when dedicated; vSched holds throughput when overcommitted (ivh) and constrained (rwc)")
	return rep
}

// Fig17 reproduces the multi-tenant experiment (§5.8): an nginx VM shares
// 16 cores with co-located VMs generating intermittent (facesim+ferret),
// consistent (swaptions+raytrace) and transient (four latency apps)
// interference. vSched lifts nginx QoS at negligible cost to the neighbours.
func Fig17(opt Options) *Report {
	rep := &Report{
		ID:     "fig17",
		Title:  "Multi-tenant QoS: nginx throughput per interference phase",
		Header: []string{"phase", "nginx CFS", "nginx vSched", "gain", "neighbour degradation"},
	}
	phase := opt.scaled(40 * sim.Second)
	warmFrac := 0.25

	type neighbours struct {
		ops map[string]uint64
	}

	run := func(cfg Config) (*metrics.TimeSeries, neighbours) {
		c := newFlatCluster(opt, 1, 16, 1)
		// The nginx VM and every co-located VM pin vCPU i on core i: cores
		// are time-shared between tenants, the multi-tenant norm.
		nginxD := deploy(c, "nginx-vm", c.firstThreads(16), cfg)
		srv := workload.NewServer(nginxD.env(0), workload.ServerConfig{
			Name: "nginx", Workers: 8,
			ServiceMean: 1500 * sim.Microsecond, ServiceJit: 0.25,
			Connections: 16, Sticky: true,
			FootprintMB: 1.5,
		})
		srv.Start()

		nb := neighbours{ops: map[string]uint64{}}
		mkVM := func(name string) *deployment {
			return deploy(c, name, c.firstThreads(16), CFS)
		}
		countOps := func(name string, inst workload.Instance, until sim.Time) {
			c.eng.At(until, func() { nb.ops[name] += inst.Ops() })
		}

		// Phase 1: facesim + ferret (intermittent).
		vmA, vmB := mkVM("vmA"), mkVM("vmB")
		fsSpec, _ := workload.ByName("facesim")
		frSpec, _ := workload.ByName("ferret")
		fs := fsSpec.New(workload.Env{VM: vmA.vm, Threads: 16, Nominal: 2.0})
		fr := frSpec.New(workload.Env{VM: vmB.vm, Threads: 16, Nominal: 2.0})
		fs.Start()
		fr.Start()
		countOps("facesim", fs, sim.Time(phase))
		countOps("ferret", fr, sim.Time(phase))
		c.eng.At(sim.Time(phase), func() {
			fs.(*workload.Parallel).Stop()
			fr.(*workload.Pipeline).Stop()
		})

		// Phase 2: swaptions + raytrace (consistent).
		c.eng.At(sim.Time(phase), func() {
			vmC, vmD := mkVM("vmC"), mkVM("vmD")
			swSpec, _ := workload.ByName("swaptions")
			rtSpec, _ := workload.ByName("raytrace")
			sw := swSpec.New(workload.Env{VM: vmC.vm, Threads: 16, Nominal: 2.0})
			rt := rtSpec.New(workload.Env{VM: vmD.vm, Threads: 16, Nominal: 2.0})
			sw.Start()
			rt.Start()
			countOps("swaptions", sw, sim.Time(2*phase))
			countOps("raytrace", rt, sim.Time(2*phase))
			c.eng.At(sim.Time(2*phase), func() {
				sw.(*workload.Parallel).Stop()
				rt.(*workload.Parallel).Stop()
			})
		})

		// Phase 3: four latency-sensitive VMs (transient).
		c.eng.At(sim.Time(2*phase), func() {
			for i, name := range []string{"img-dnn", "silo", "masstree", "specjbb"} {
				vmX := mkVM(fmt.Sprintf("vmL%d", i))
				spec, _ := workload.ByName(name)
				inst := spec.New(workload.Env{VM: vmX.vm, Threads: 16, Nominal: 2.0})
				inst.Start()
				countOps(name, inst, sim.Time(3*phase))
			}
		})

		ts := &metrics.TimeSeries{Name: cfg.String()}
		last := uint64(0)
		bucket := opt.scaled(1 * sim.Second)
		var sample func()
		sample = func() {
			ops := srv.Ops()
			ts.Append(c.eng.Now().Seconds(), float64(ops-last)/bucket.Seconds())
			last = ops
			c.eng.After(bucket, sample)
		}
		c.eng.After(bucket, sample)
		c.eng.RunFor(3 * phase)
		return ts, nb
	}

	cfsTS, cfsNB := run(CFS)
	vsTS, vsNB := run(VSched)
	phaseNames := []string{"intermittent", "consistent", "transient"}
	for i, name := range phaseNames {
		t0 := float64(i)*phase.Seconds() + warmFrac*phase.Seconds()
		t1 := float64(i+1) * phase.Seconds()
		a, b := cfsTS.MeanBetween(t0, t1), vsTS.MeanBetween(t0, t1)
		// Neighbour degradation: how much less the co-located workloads got
		// done while nginx ran vSched instead of CFS.
		var deg float64
		var nn int
		for name2, opsCFS := range cfsNB.ops {
			if opsVS, ok := vsNB.ops[name2]; ok && opsCFS > 0 {
				if phaseOf(name2) == i {
					deg += 1 - float64(opsVS)/float64(opsCFS)
					nn++
				}
			}
		}
		degStr := "n/a"
		if nn > 0 {
			degStr = fmt.Sprintf("%+.1f%%", 100*deg/float64(nn))
		}
		rep.Add(name, f1(a), f1(b), fmt.Sprintf("%+.0f%%", 100*(b/a-1)), degStr)
	}
	rep.Notef("paper: +15%% (intermittent), +24%% (consistent), parity (transient); neighbour cost <=2.1%%")
	return rep
}

func phaseOf(bench string) int {
	switch bench {
	case "facesim", "ferret":
		return 0
	case "swaptions", "raytrace":
		return 1
	default:
		return 2
	}
}
