package experiments

import (
	"fmt"

	"vsched/internal/core"
	"vsched/internal/guest"
	"vsched/internal/host"
	"vsched/internal/metrics"
	"vsched/internal/sim"
)

// Prober-accuracy telemetry: run vcap/vact against contention patterns with
// known host-side ground truth and report how far the published estimates
// sit from reality. This is the calibration check behind every §5 result —
// the techniques are only as good as the abstraction they consume.
//
// Ground truth comes from host accounting the guest cannot see: the vCPU
// entity's run/steal clocks give the true capacity share, and the measured
// lengths of its steal intervals give the true inactive period ("vCPU
// latency"). Estimates are what the probers published to the vCPU. Errors
// are reported as MAE over the sampling series and also parked in the VM's
// metrics registry under probeacc.* so harness artifacts carry them.

// accSampler pairs prober estimates with host ground truth for one vCPU.
type accSampler struct {
	v   *guest.VCPU
	ent *host.Entity

	// Current sampling window: host run clock and steal-interval stats.
	run0       sim.Duration
	wall0      sim.Time
	inSteal    bool
	stealStart sim.Time
	intSum     sim.Duration
	intN       int

	capEst, capTrue, capErr metrics.Welford
	latEst, latTrue, latErr metrics.Welford
}

func newAccSampler(v *guest.VCPU) *accSampler {
	s := &accSampler{v: v, ent: v.Entity()}
	s.ent.AddObserver(func(now sim.Time, from, to host.EntityState) {
		fromSteal := from == host.Runnable || from == host.Throttled
		toSteal := to == host.Runnable || to == host.Throttled
		switch {
		case !fromSteal && toSteal:
			s.inSteal = true
			s.stealStart = now
		case fromSteal && !toSteal:
			if s.inSteal {
				s.intSum += now.Sub(s.stealStart)
				s.intN++
				s.inSteal = false
			}
		}
	})
	return s
}

// reset opens a fresh sampling window at the current time.
func (s *accSampler) reset(now sim.Time) {
	s.run0 = s.ent.RunTime()
	s.wall0 = now
	s.intSum, s.intN = 0, 0
	if s.inSteal {
		s.stealStart = now // count only the in-window part
	}
}

// sample closes the window: record estimate vs truth, reopen.
func (s *accSampler) sample(now sim.Time) {
	wall := now.Sub(s.wall0)
	if wall <= 0 {
		return
	}
	// Capacity (flat cluster: truth is exactly the run share of the thread).
	trueCap := 1024 * float64(s.ent.RunTime()-s.run0) / float64(wall)
	estCap := float64(s.v.Capacity())
	s.capTrue.Add(trueCap)
	s.capEst.Add(estCap)
	s.capErr.Add(abs(estCap - trueCap))

	// vCPU latency: truth is the mean steal-interval length in the window
	// (0 when the vCPU was effectively dedicated).
	var trueLat float64
	intSum, intN := s.intSum, s.intN
	if s.inSteal {
		intSum += now.Sub(s.stealStart)
		intN++
	}
	if intN > 0 {
		trueLat = float64(intSum) / float64(intN)
	}
	estLat := float64(s.v.Latency())
	s.latTrue.Add(trueLat)
	s.latEst.Add(estLat)
	s.latErr.Add(abs(estLat - trueLat))

	s.reset(now)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// ProbeAccuracy measures vcap/vact estimation error against host ground
// truth under three contention patterns with different inactive-period
// scales.
func ProbeAccuracy(o Options) *Report {
	rep := &Report{
		ID:    "probeacc",
		Title: "Prober accuracy: vcap/vact estimates vs host ground truth",
		Header: []string{"scenario", "samples",
			"cap est", "cap true", "cap MAE",
			"lat est(ms)", "lat true(ms)", "lat MAE(ms)"},
	}
	scenarios := []struct {
		name    string
		on, off sim.Duration
	}{
		// Fine-grained timeshare: short inactive periods, ~50% capacity.
		{"balanced-5ms", 5 * sim.Millisecond, 5 * sim.Millisecond},
		// Coarse bursts: same capacity, 8x longer inactive periods.
		{"bursty-40ms", 40 * sim.Millisecond, 40 * sim.Millisecond},
		// Heavy contention: ~25% capacity, long inactive periods.
		{"heavy-30/10", 30 * sim.Millisecond, 10 * sim.Millisecond},
	}
	for _, sc := range scenarios {
		c := newFlatCluster(o, 1, 2, 1)
		d := deployFeatures(c, "vm-"+sc.name, c.firstThreads(1),
			core.Features{Vcap: true, Vact: true})
		dutyContender(c, c.h.Thread(0), sc.on, sc.off, 0)
		// A best-effort hog keeps the vCPU busy, so the entity's run/steal
		// clocks cover the whole timeline (and vact's steal-jump counter has
		// a heartbeat to work with).
		d.vm.Spawn("hog", func(sim.Time) guest.Segment {
			return guest.Compute(2e6)
		}, guest.WithIdlePolicy(), guest.StartOn(0))

		s := newAccSampler(d.vm.VCPU(0))
		c.eng.RunFor(o.warm(6 * sim.Second))
		s.reset(c.eng.Now())
		every := o.scaled(2 * sim.Second)
		const samples = 10
		for i := 0; i < samples; i++ {
			c.eng.RunFor(every)
			s.sample(c.eng.Now())
		}

		rep.Add(sc.name, fmt.Sprintf("%d", int(s.capErr.N())),
			f1(s.capEst.Mean()), f1(s.capTrue.Mean()), f1(s.capErr.Mean()),
			f2(s.latEst.Mean()/1e6), f2(s.latTrue.Mean()/1e6), f2(s.latErr.Mean()/1e6))

		// Park the summary in the registry so -metrics and harness
		// artifacts carry prober accuracy without re-running the analysis.
		reg := d.vm.Metrics()
		reg.Gauge("probeacc.cap_mae").Set(s.capErr.Mean())
		reg.Gauge("probeacc.lat_mae_ms").Set(s.latErr.Mean() / 1e6)
	}
	rep.Notef("truth from host entity run/steal accounting on a flat host; MAE over %d samples/scenario", 10)
	return rep
}
