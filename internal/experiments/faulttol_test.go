package experiments

import (
	"strconv"
	"testing"
)

// TestFaultTolRuns exercises the faulttol experiment at a reduced scale. The
// hard assertions — serial==sharded byte-identity with faults active,
// recovery strictly beating no-recovery on completed lifetimes, and exact
// VM conservation — are panics inside the experiment and RunMacro, so a
// clean return carries most of the weight; the shape checks keep the SLO
// report honest.
func TestFaultTolRuns(t *testing.T) {
	stats := &Stats{}
	rep := FaultTol(Options{Seed: 42, Scale: 0.05, Stats: stats})
	if len(rep.Rows) != 3 {
		t.Fatalf("got %d rows, want clean/faults/recovery", len(rep.Rows))
	}
	lifetimes := func(row []string) int {
		n, err := strconv.Atoi(row[3])
		if err != nil {
			t.Fatalf("bad lifetimes cell %q", row[3])
		}
		return n
	}
	clean, noRec, rec := rep.Rows[0], rep.Rows[1], rep.Rows[2]
	if lifetimes(noRec) >= lifetimes(clean) {
		t.Fatalf("faults did not cost throughput: %s vs clean %s", noRec[3], clean[3])
	}
	if lifetimes(rec) <= lifetimes(noRec) {
		t.Fatalf("recovery row %s not above no-recovery %s", rec[3], noRec[3])
	}
	if avail, err := strconv.ParseFloat(rec[7], 64); err != nil || avail <= 0 || avail >= 1 {
		t.Fatalf("recovery availability %q, want in (0,1) under a crash schedule", rec[7])
	}
	if clean[7] != "1.00000" {
		t.Fatalf("clean availability %q, want exactly 1", clean[7])
	}
	if stats.Engines() == 0 {
		t.Fatal("no engines tracked")
	}
}

// TestFaultTolDeterministic pins the whole report: same seed and scale, same
// bytes (the CI smoke re-checks this through the CLI).
func TestFaultTolDeterministic(t *testing.T) {
	a := FaultTol(Options{Seed: 7, Scale: 0.05}).String()
	b := FaultTol(Options{Seed: 7, Scale: 0.05}).String()
	if a != b {
		t.Fatalf("faulttol report not deterministic:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
}
