package experiments

import (
	"fmt"
	"math"

	"vsched/internal/guest"
	"vsched/internal/host"
	"vsched/internal/sim"
	"vsched/internal/workload"
)

// Fig2 reproduces the extended-runqueue-latency experiment (§2.3): p95 tail
// latency of latency-sensitive services as the vCPU latency grows from 2 to
// 16 ms at constant 50% capacity, with and without best-effort tasks.
func Fig2(opt Options) *Report {
	rep := &Report{
		ID:     "fig2",
		Title:  "p95 latency vs vCPU latency (normalized to 16ms; lower is better)",
		Header: []string{"bench", "best-effort", "vCPU-lat", "p95(ms)", "normalized"},
	}
	benches := []string{"img-dnn", "silo", "specjbb"}
	lats := []sim.Duration{2 * sim.Millisecond, 4 * sim.Millisecond, 8 * sim.Millisecond, 16 * sim.Millisecond}
	warm := opt.scaled(2 * sim.Second)
	window := opt.scaled(10 * sim.Second)

	for _, withBE := range []bool{false, true} {
		for _, bench := range benches {
			p95 := map[sim.Duration]int64{}
			for _, L := range lats {
				c := newFlatCluster(opt, 2, 16, 1)
				d := deploy(c, "vm", c.firstThreads(32), CFS)
				// Per the paper's method: a CFS co-tenant stresses every
				// core while the host scheduling granularities are tuned to
				// L, so each vCPU keeps its 50% share but waits up to L to
				// get (back) on CPU.
				for i := 0; i < 32; i++ {
					th := c.h.Thread(i)
					th.SetGranularities(L, 2*L)
					host.NewStressor(c.h, "tenant", th, host.DefaultWeight)
				}
				if withBE {
					spawnBestEffort(d)
				}
				spec, _ := workload.ByName(bench)
				srv := spec.New(d.env(0)).(*workload.Server)
				srv.Start()
				c.eng.RunFor(warm)
				srv.ResetStats()
				c.eng.RunFor(window)
				p95[L] = srv.E2E().P95()
			}
			ref := p95[16*sim.Millisecond]
			for _, L := range lats {
				norm := float64(p95[L]) / float64(ref)
				beTag := "without"
				if withBE {
					beTag = "with"
				}
				rep.Add(bench, beTag, L.String(), msStr(p95[L]), pct(norm))
			}
		}
	}
	return rep
}

// Fig3 reproduces the stalled-running-task demonstration (§2.3): a single
// CPU-bound thread on a 4-vCPU VM whose vCPUs are inactive 5ms of every
// 10ms. Default CFS leaves it stalled half the time; proactive
// self-migration harvests the other vCPUs' active periods.
func Fig3(opt Options) *Report {
	rep := &Report{
		ID:     "fig3",
		Title:  "Proactive migration prevents the stalled running task",
		Header: []string{"mode", "progress", "vCPU-util", "timeline (60ms, # running . stalled)"},
	}
	window := opt.scaled(2 * sim.Second)

	run := func(migrate bool) (float64, string) {
		c := newFlatCluster(opt, 1, 4, 1)
		d := deploy(c, "vm", c.firstThreads(4), CFS)
		for i := 0; i < 4; i++ {
			halfDuty(c, c.h.Thread(i), 5*sim.Millisecond, i)
		}
		var tk *guest.Task
		if !migrate {
			tk = d.vm.Spawn("worker", func(sim.Time) guest.Segment {
				return guest.ComputeForever()
			}, guest.StartOn(0))
		} else {
			// Migration mode: hop to the vCPU with the longest remaining
			// active window every ~4ms of progress (the paper's
			// self-migrating thread knows the host pattern).
			best := func(now sim.Time) int {
				period := sim.Time(10 * sim.Millisecond)
				b, left := 0, sim.Time(-1)
				for i := 0; i < 4; i++ {
					phase := sim.Time(i) * sim.Time(2500*sim.Microsecond)
					pos := (now - phase) % period
					if pos < 0 {
						pos += period
					}
					if pos >= sim.Time(5*sim.Millisecond) {
						if l := period - pos; l > left {
							b, left = i, l
						}
					}
				}
				return b
			}
			step := 0
			tk = d.vm.Spawn("worker", func(now sim.Time) guest.Segment {
				step++
				if step%2 == 1 {
					return guest.Compute(4e6) // ~2ms at nominal 2c/ns
				}
				return guest.MigrateTo(best(now))
			}, guest.StartOn(0))
		}
		// Task-centric timeline: sample once per millisecond whether the
		// thread is really executing ('#'), stalled on an inactive vCPU
		// ('.'), or waiting on a runqueue (' ').
		var strip []byte
		stripFrom := sim.Time(window / 2)
		var sample func()
		sample = func() {
			if len(strip) < 60 {
				now := c.eng.Now()
				if now >= stripFrom {
					switch {
					case tk.State() == guest.TaskRunning && tk.CPU().Entity().State() == host.Running:
						strip = append(strip, '#')
					case tk.State() == guest.TaskRunning:
						strip = append(strip, '.')
					default:
						strip = append(strip, ' ')
					}
				}
				c.eng.After(sim.Millisecond, sample)
			}
		}
		c.eng.After(0, sample)
		c.eng.RunFor(window)
		frac := float64(tk.TotalRun()) / float64(window)
		return frac, string(strip)
	}

	fracDef, stripDef := run(false)
	fracMig, stripMig := run(true)
	rep.Add("default", pct(fracDef), pct(fracDef), stripDef)
	rep.Add("migration", pct(fracMig), pct(fracMig), stripMig)
	rep.Notef("utilization ratio migration/default = %.2fx (paper: ~2x)", fracMig/fracDef)
	return rep
}

// Fig4 reproduces the deficient-work-conservation experiments (§2.3):
// keeping problematic idle vCPUs (a straggler, stacked vCPUs, and vCPUs
// stacked against best-effort work) out of task placement beats strict work
// conservation.
func Fig4(opt Options) *Report {
	rep := &Report{
		ID:     "fig4",
		Title:  "Work-conserving vs non-work-conserving (NWC=100; higher is better)",
		Header: []string{"scenario", "bench", "WC", "NWC"},
	}
	benches := []string{"canneal", "dedup", "streamcluster"}
	warm := opt.scaled(1 * sim.Second)
	window := opt.scaled(8 * sim.Second)

	runStraggler := func(bench string, nwc bool) uint64 {
		c := newFlatCluster(opt, 1, 16, 1)
		d := deploy(c, "vm", c.firstThreads(16), CFS)
		// One vCPU with ~5% capacity: a high-priority host task hogs core 15.
		catStraggler.apply(c, c.h.Thread(15), 0)
		g := d.vm.NewGroup("bench")
		if nwc {
			mask := make([]bool, 16)
			for i := 0; i < 15; i++ {
				mask[i] = true
			}
			d.vm.SetGroupMask(g, mask)
		}
		env := d.env(16)
		env.Group = g
		spec, _ := workload.ByName(bench)
		return measureOps(c, spec.New(env), warm, window)
	}

	// 16 vCPUs stacked in pairs on 8 cores: vCPUs 2i and 2i+1 share core i.
	stackedDeploy := func(c *cluster) *deployment {
		var threads []*host.Thread
		for i := 0; i < 8; i++ {
			th := c.h.Thread(i)
			threads = append(threads, th, th)
		}
		return deploy(c, "vm", threads, CFS)
	}

	runStacked := func(bench string, nwc bool) uint64 {
		c := newFlatCluster(opt, 1, 8, 1)
		d := stackedDeploy(c)
		g := d.vm.NewGroup("bench")
		if nwc {
			// Hide one vCPU of each stacking pair.
			mask := make([]bool, 16)
			for i := 0; i < 16; i += 2 {
				mask[i] = true
			}
			d.vm.SetGroupMask(g, mask)
		}
		env := d.env(16)
		env.Group = g
		spec, _ := workload.ByName(bench)
		return measureOps(c, spec.New(env), warm, window)
	}

	runPrioInv := func(bench string, nwc bool) uint64 {
		c := newFlatCluster(opt, 1, 8, 1)
		d := stackedDeploy(c)
		// A best-effort workload occupies one vCPU of each stacking pair
		// (the odd ones).
		for i := 1; i < 16; i += 2 {
			d.vm.Spawn(fmt.Sprintf("be%d", i), func(sim.Time) guest.Segment {
				return guest.Compute(2e6)
			}, guest.WithIdlePolicy(), guest.WithAffinity(i))
		}
		g := d.vm.NewGroup("bench")
		if nwc {
			// Exclude the vCPUs NOT running the best-effort workload: the
			// benchmark shares vCPUs with sched_idle tasks (which yield
			// inside the guest) instead of stacking against them on the
			// host, where the hypervisor cannot see priorities.
			mask := make([]bool, 16)
			for i := 1; i < 16; i += 2 {
				mask[i] = true
			}
			d.vm.SetGroupMask(g, mask)
		}
		env := d.env(8)
		env.Group = g
		spec, _ := workload.ByName(bench)
		return measureOps(c, spec.New(env), warm, window)
	}

	for _, b := range benches {
		wc := runStraggler(b, false)
		nwcOps := runStraggler(b, true)
		rep.Add("straggler", b, pct(float64(wc)/float64(nwcOps)), "100%")
	}
	for _, b := range benches {
		wc := runStacked(b, false)
		nwcOps := runStacked(b, true)
		rep.Add("stacking", b, pct(float64(wc)/float64(nwcOps)), "100%")
	}
	for _, b := range benches {
		wc := runPrioInv(b, false)
		nwcOps := runPrioInv(b, true)
		rep.Add("stacking+prio-inv", b, pct(float64(wc)/float64(nwcOps)), "100%")
		if ratio := float64(nwcOps) / math.Max(1, float64(wc)); opt.Verbose {
			rep.Notef("%s priority-inversion NWC/WC = %.1fx", b, ratio)
		}
	}
	return rep
}
