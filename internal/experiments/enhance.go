package experiments

import (
	"fmt"

	"vsched/internal/core"
	"vsched/internal/guest"
	"vsched/internal/sim"
	"vsched/internal/workload"
)

// vcapOnly isolates the capacity prober (plus vact, which shares its
// sampling machinery) without any placement technique.
func vcapOnly() core.Features { return core.Features{Vcap: true, Vact: true} }

// vtopOnly isolates the topology prober.
func vtopOnly() core.Features { return core.Features{Vtop: true} }

// Fig11 reproduces the vcap experiments (§5.3): (a) with asymmetric
// capacity, accurate probing concentrates CPU-bound work on the fast vCPUs;
// (b) with symmetric capacity, it prevents the adverse migrations caused by
// idle vCPUs masquerading as full-capacity ones.
func Fig11(opt Options) *Report {
	rep := &Report{
		ID:     "fig11",
		Title:  "Capacity-aware scheduling with vcap",
		Header: []string{"scenario", "config", "fast-vCPU-time", "throughput", "migrations"},
	}
	warm := opt.warm(4 * sim.Second)
	window := opt.scaled(20 * sim.Second)

	run := func(asymmetric, withVcap bool) (fastFrac float64, ops uint64, migrations uint64) {
		c := newFlatCluster(opt, 1, 16, 1)
		feats := core.Features{}
		if withVcap {
			feats = vcapOnly()
		}
		d := deployFeatures(c, "vm", c.firstThreads(16), feats)
		// Asymmetric: vCPUs 0..11 get a 30% share, 12..15 get 60% (2x) —
		// every vCPU is contended, as under host bandwidth control.
		// Symmetric: all at 50%.
		for i := 0; i < 16; i++ {
			share := 0.5
			if asymmetric {
				share = 0.3
				if i >= 12 {
					share = 0.6
				}
			}
			on := 5 * sim.Millisecond
			off := sim.Duration(float64(on) * share / (1 - share))
			dutyContender(c, c.h.Thread(i), on, off, sim.Duration(i)*1100*sim.Microsecond)
		}
		sb := workload.NewSysbench(d.env(4), 4, 0)
		sb.Start()
		c.eng.RunFor(warm)
		opsBefore := sb.Ops()
		migBefore := d.vm.Stats().Migrations
		// Sample where the sysbench tasks execute.
		var fastSamples, totalSamples int
		sampler := func() {}
		sampler = func() {
			for _, tk := range sb.Tasks() {
				if tk.State() == guest.TaskRunning {
					totalSamples++
					if tk.CPU().ID() >= 12 {
						fastSamples++
					}
				}
			}
			c.eng.After(10*sim.Millisecond, sampler)
		}
		c.eng.After(0, sampler)
		c.eng.RunFor(window)
		frac := 0.0
		if totalSamples > 0 {
			frac = float64(fastSamples) / float64(totalSamples)
		}
		return frac, sb.Ops() - opsBefore, d.vm.Stats().Migrations - migBefore
	}

	for _, scen := range []struct {
		name string
		asym bool
	}{{"asymmetric", true}, {"symmetric", false}} {
		fracCFS, opsCFS, migCFS := run(scen.asym, false)
		fracV, opsV, migV := run(scen.asym, true)
		rep.Add(scen.name, "CFS", pct(fracCFS), fmt.Sprintf("%d", opsCFS), fmt.Sprintf("%d", migCFS))
		rep.Add(scen.name, "CFS+vcap", pct(fracV), fmt.Sprintf("%d", opsV), fmt.Sprintf("%d", migV))
		if scen.asym {
			rep.Notef("asymmetric: throughput +%.0f%% with vcap (paper: +32%%); fast-vCPU share %s -> %s (paper: 44%% -> 81%%)",
				100*(float64(opsV)/float64(opsCFS)-1), pct(fracCFS), pct(fracV))
		} else {
			rep.Notef("symmetric: migrations reduced %.0f%% with vcap (paper: 74%%); throughput +%.0f%% (paper: +4%%)",
				100*(1-float64(migV)/float64(migCFS)), 100*(float64(opsV)/float64(opsCFS)-1))
		}
	}
	return rep
}

// Fig12 reproduces the SMT-aware experiments (§5.3): with correct SMT
// topology, an underloaded system spreads hogs across idle cores instead of
// doubling up on siblings, and mixed workloads stop fighting for per-core
// resources.
func Fig12(opt Options) *Report {
	rep := &Report{
		ID:     "fig12",
		Title:  "SMT-aware scheduling with vtop",
		Header: []string{"scenario", "config", "metric", "value"},
	}
	warm := opt.warm(4 * sim.Second)
	window := opt.scaled(15 * sim.Second)

	// (a) Underloaded: 16 hogs on 32 vCPUs over 16 SMT pairs; count busy
	// cores.
	activeCores := func(withVtop bool) float64 {
		c := newCluster(opt, 1, 16, 2)
		feats := core.Features{}
		if withVtop {
			feats = vtopOnly()
		}
		d := deployFeatures(c, "vm", c.firstThreads(32), feats)
		// Let vtop publish the topology before placement decisions matter.
		c.eng.RunFor(warm)
		sb := workload.NewSysbench(d.env(16), 16, 0)
		sb.Start()
		c.eng.RunFor(warm / 2)
		var sum, n int
		sampler := func() {}
		sampler = func() {
			cores := map[int]bool{}
			for _, v := range d.vm.VCPUs() {
				if v.Curr() != nil && !v.GuestIdle() {
					th := v.Entity().Thread()
					cores[th.Socket()*100+th.Core()] = true
				}
			}
			sum += len(cores)
			n++
			c.eng.After(10*sim.Millisecond, sampler)
		}
		c.eng.After(0, sampler)
		c.eng.RunFor(window)
		return float64(sum) / float64(n)
	}
	coresCFS := activeCores(false)
	coresVtop := activeCores(true)
	rep.Add("underloaded", "CFS", "avg active cores", f1(coresCFS))
	rep.Add("underloaded", "CFS+vtop", "avg active cores", f1(coresVtop))
	rep.Notef("paper: 11-12 cores under CFS vs 15-16 with vtop")

	// (b) Mixed workloads: matmul + {nginx, fio}, 16 threads each.
	mixed := func(other string, withVtop bool) (uint64, uint64) {
		c := newCluster(opt, 1, 16, 2)
		feats := core.Features{}
		if withVtop {
			feats = vtopOnly()
		}
		d := deployFeatures(c, "vm", c.firstThreads(32), feats)
		c.eng.RunFor(warm)
		mm := workload.NewMatmul(d.env(16), 16, 0)
		spec, _ := workload.ByName(other)
		oth := spec.New(d.env(16))
		mm.Start()
		oth.Start()
		c.eng.RunFor(warm / 2)
		m0, o0 := mm.Ops(), oth.Ops()
		c.eng.RunFor(window)
		return mm.Ops() - m0, oth.Ops() - o0
	}
	for _, other := range []string{"nginx", "fio"} {
		mCFS, oCFS := mixed(other, false)
		mV, oV := mixed(other, true)
		rep.Add("mixed/"+other, "CFS", "matmul/other ops", fmt.Sprintf("%d / %d", mCFS, oCFS))
		rep.Add("mixed/"+other, "CFS+vtop", "matmul/other ops", fmt.Sprintf("%d / %d", mV, oV))
		rep.Notef("mixed %s: matmul %+.0f%%, %s %+.0f%% with vtop (paper: matmul +<=18%%, nginx +5%%, fio ~0%%)",
			other, 100*(float64(mV)/float64(mCFS)-1), other, 100*(float64(oV)/float64(oCFS)-1))
	}
	return rep
}

// Fig13 reproduces the LLC-aware experiment (§5.3): two instances of a
// communicating benchmark on a two-socket VM. Correct socket topology
// segregates each instance into one LLC domain: fewer IPIs, better
// cycles-per-op, higher throughput.
func Fig13(opt Options) *Report {
	rep := &Report{
		ID:     "fig13",
		Title:  "LLC-aware optimisation with vtop (per benchmark: tput, ops/Mcycle, IPIs)",
		Header: []string{"bench", "config", "throughput", "ops/Mcycle", "xsock-IPIs"},
	}
	warm := opt.warm(4 * sim.Second)
	window := opt.scaled(15 * sim.Second)

	run := func(bench string, withVtop bool) (ops uint64, opsPerMcycle float64, ipis uint64) {
		c := newCluster(opt, 2, 8, 2)
		feats := core.Features{}
		if withVtop {
			feats = vtopOnly()
		}
		d := deployFeatures(c, "vm", c.firstThreads(32), feats)
		c.eng.RunFor(warm) // topology published before instance placement
		mk := func(env workload.Env) workload.Instance {
			if bench == "hackbench" {
				// Endless variant so the measurement window stays full.
				return workload.NewHackbench(env, 2, 2, 1<<30)
			}
			spec, _ := workload.ByName(bench)
			return spec.New(env)
		}
		// Launch the instances a moment apart, as separate program starts:
		// fork placement then lands each in the idler domain.
		instA := mk(d.env(8))
		instB := mk(d.env(8))
		instA.Start()
		c.eng.RunFor(300 * sim.Millisecond)
		instB.Start()
		c.eng.RunFor(warm / 2)
		o0 := instA.Ops() + instB.Ops()
		cy0 := d.vm.TotalCycles()
		ipi0 := d.vm.Stats().CrossIPIs
		c.eng.RunFor(window)
		ops = instA.Ops() + instB.Ops() - o0
		cycles := d.vm.TotalCycles() - cy0
		if cycles > 0 {
			opsPerMcycle = float64(ops) / (cycles / 1e6)
		}
		return ops, opsPerMcycle, d.vm.Stats().CrossIPIs - ipi0
	}

	for _, bench := range []string{"dedup", "nginx", "hackbench"} {
		oC, ipcC, ipiC := run(bench, false)
		oV, ipcV, ipiV := run(bench, true)
		rep.Add(bench, "CFS", fmt.Sprintf("%d", oC), f2(ipcC), fmt.Sprintf("%d", ipiC))
		rep.Add(bench, "CFS+vtop", fmt.Sprintf("%d", oV), f2(ipcV), fmt.Sprintf("%d", ipiV))
		ipiNote := "n/a (none under CFS)"
		if ipiC > 0 {
			ipiNote = fmt.Sprintf("%+.0f%%", 100*(float64(ipiV)/float64(ipiC)-1))
		}
		rep.Notef("%s: tput %+.0f%%, ops/cycle %+.0f%%, IPIs %s with vtop (paper avg: +26%% tput, +14.5%% IPC, -99%% IPIs)",
			bench, 100*(float64(oV)/float64(oC)-1), 100*(ipcV/ipcC-1), ipiNote)
	}
	return rep
}
