package experiments

import (
	"strconv"
	"testing"
)

// TestFleetShardedMatchesSerial pins the fleet experiment's sharding
// contract: cells fanned over a worker pool must render the byte-identical
// report a serial pass produces.
func TestFleetShardedMatchesSerial(t *testing.T) {
	o := Options{Seed: 42, Scale: 0.1}
	serial := fleetReport(o, 1).String()
	sharded := fleetReport(o, 4).String()
	if serial != sharded {
		t.Fatalf("sharded fleet report differs from serial:\n--- serial ---\n%s\n--- sharded ---\n%s",
			serial, sharded)
	}
	if serial == "" {
		t.Fatal("empty report")
	}
}

// TestFleetStealAwareBeatsFirstFit pins the experiment's headline: telemetry-
// driven placement must deliver a lower fleet-wide p95 than packing, for
// both guest configurations.
func TestFleetStealAwareBeatsFirstFit(t *testing.T) {
	rep := FleetScale(Options{Seed: 42, Scale: 0.1})
	p95 := func(row int) float64 {
		v, err := strconv.ParseFloat(rep.Cell(row, 5), 64)
		if err != nil {
			t.Fatalf("row %d p95 cell %q: %v", row, rep.Cell(row, 5), err)
		}
		return v
	}
	// Row order: policies {first-fit, least-loaded, steal-aware} x guests
	// {CFS, vSched}.
	for guest, off := range map[string]int{"CFS": 0, "vSched": 1} {
		ff, sa := p95(0+off), p95(4+off)
		if sa >= ff {
			t.Errorf("%s guests: steal-aware p95 %.2fms does not beat first-fit %.2fms", guest, sa, ff)
		}
	}
}
