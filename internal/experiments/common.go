// Package experiments regenerates every table and figure of the paper's
// evaluation (§5). Each experiment builds its scenario from the substrate
// packages, runs it in virtual time, and reports the same rows or series the
// paper does. Absolute numbers differ from the paper's testbed; the shapes
// (who wins, by roughly what factor, where crossovers fall) are the
// reproduction target and are recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"strings"
	"sync"

	"vsched/internal/cachemodel"
	"vsched/internal/core"
	"vsched/internal/guest"
	"vsched/internal/host"
	"vsched/internal/metrics"
	"vsched/internal/sim"
	"vsched/internal/telemetry"
	"vsched/internal/workload"
)

// Options control an experiment run.
type Options struct {
	// Seed drives all randomness; a given (experiment, seed, scale) triple
	// is fully reproducible.
	Seed int64
	// Scale shrinks (<1) or stretches (>1) measurement windows. Benchmarks
	// use small scales; 1.0 reproduces the defaults.
	Scale float64
	// Verbose adds per-phase notes to reports.
	Verbose bool
	// Stats, when non-nil, observes every engine the run builds so callers
	// (the harness) can report simulation effort and interrupt a trial that
	// overran its wall-clock budget. Attaching it does not change results.
	Stats *Stats
}

// Stats collects the engines and metrics registries one experiment run
// builds. The run itself registers from its own goroutine; Interrupt and the
// read accessors may be called from another goroutine, hence the lock.
type Stats struct {
	mu          sync.Mutex
	engines     []*sim.Engine
	interrupted bool
	regs        []labeledRegistry
	regSeen     map[string]int
	attrib      []labeledAttribution
	attribSeen  map[string]int
	telem       []labeledTelemetry
	telemSeen   map[string]int
}

// labeledTelemetry is one flight recorder under a run-unique label.
type labeledTelemetry struct {
	label string
	rec   *telemetry.Recorder
}

// labeledAttribution is one flattened latency-attribution report under a
// run-unique label.
type labeledAttribution struct {
	label string
	flat  map[string]float64
}

// labeledRegistry is one VM's metrics registry under a run-unique label.
type labeledRegistry struct {
	label string
	reg   *metrics.Registry
}

// Track registers an engine. A nil receiver is a no-op, so call sites do not
// need to guard. If the run was already interrupted the engine is stopped
// immediately, so a trial cannot outlive its deadline by building fresh
// engines.
func (s *Stats) Track(e *sim.Engine) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.engines = append(s.engines, e)
	if s.interrupted {
		e.Interrupt()
	}
}

// Interrupt freezes every engine tracked so far and every engine tracked
// later. Safe to call from any goroutine.
func (s *Stats) Interrupt() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.interrupted = true
	for _, e := range s.engines {
		e.Interrupt()
	}
}

// TrackRegistry registers a VM's metrics registry under label. Labels repeat
// across the VMs an experiment deploys; repeats get a deterministic #n suffix
// (registration order is fixed because each trial runs one goroutine). A nil
// receiver is a no-op.
func (s *Stats) TrackRegistry(label string, reg *metrics.Registry) {
	if s == nil || reg == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.regSeen == nil {
		s.regSeen = make(map[string]int)
	}
	n := s.regSeen[label]
	s.regSeen[label] = n + 1
	if n > 0 {
		label = fmt.Sprintf("%s#%d", label, n+1)
	}
	s.regs = append(s.regs, labeledRegistry{label: label, reg: reg})
}

// TrackAttribution records one flattened latency-attribution profile (see
// latprof.Profile.Flatten) under label, for the harness to embed in the
// trial artifact. Repeated labels get a deterministic #n suffix, like
// TrackRegistry. A nil receiver is a no-op.
func (s *Stats) TrackAttribution(label string, flat map[string]float64) {
	if s == nil || len(flat) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.attribSeen == nil {
		s.attribSeen = make(map[string]int)
	}
	n := s.attribSeen[label]
	s.attribSeen[label] = n + 1
	if n > 0 {
		label = fmt.Sprintf("%s#%d", label, n+1)
	}
	s.attrib = append(s.attrib, labeledAttribution{label: label, flat: flat})
}

// TrackTelemetry records one flight recorder (see internal/telemetry) under
// label, for the harness to embed its deterministic snapshot in the trial
// artifact. Repeated labels get a deterministic #n suffix, like
// TrackRegistry. A nil receiver or nil recorder is a no-op.
func (s *Stats) TrackTelemetry(label string, rec *telemetry.Recorder) {
	if s == nil || rec == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.telemSeen == nil {
		s.telemSeen = make(map[string]int)
	}
	n := s.telemSeen[label]
	s.telemSeen[label] = n + 1
	if n > 0 {
		label = fmt.Sprintf("%s#%d", label, n+1)
	}
	s.telem = append(s.telem, labeledTelemetry{label: label, rec: rec})
}

// TelemetrySnapshot exports every tracked recorder's deterministic snapshot
// keyed by label (nil when nothing was tracked). Volatile series are
// excluded so the result embeds in determinism-checked artifacts. Only call
// after the run's goroutine has finished.
func (s *Stats) TelemetrySnapshot() map[string]*telemetry.Snapshot {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var out map[string]*telemetry.Snapshot
	for _, lt := range s.telem {
		if out == nil {
			out = make(map[string]*telemetry.Snapshot, len(s.telem))
		}
		out[lt.label] = lt.rec.Snapshot(false)
	}
	return out
}

// AttributionSnapshot merges every tracked attribution report into one
// label-prefixed map (nil when nothing was tracked). Only call after the
// run's goroutine has finished.
func (s *Stats) AttributionSnapshot() map[string]float64 {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var out map[string]float64
	for _, la := range s.attrib {
		if out == nil {
			out = make(map[string]float64, len(la.flat)*len(s.attrib))
		}
		for k, v := range la.flat {
			out[la.label+"."+k] = v
		}
	}
	return out
}

// MetricsSnapshot flattens every tracked registry into one label-prefixed
// map (nil when nothing was tracked). Only call after the run's goroutine
// has finished: the instruments themselves are not synchronised.
func (s *Stats) MetricsSnapshot() map[string]float64 {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var out map[string]float64
	for _, lr := range s.regs {
		flat := lr.reg.Snapshot().Flatten()
		if len(flat) > 0 && out == nil {
			out = make(map[string]float64, len(flat)*len(s.regs))
		}
		for k, v := range flat {
			out[lr.label+"."+k] = v
		}
	}
	return out
}

// Engines returns how many engines the run built.
func (s *Stats) Engines() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.engines)
}

// EventsFired sums events executed across all tracked engines. Only call
// after the run's goroutine has finished (or been interrupted and unwound):
// the per-engine counters themselves are not synchronised.
func (s *Stats) EventsFired() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var total uint64
	for _, e := range s.engines {
		total += e.Fired()
	}
	return total
}

// DefaultOptions returns full-length deterministic options.
func DefaultOptions() Options { return Options{Seed: 42, Scale: 1.0} }

func (o Options) scaled(d sim.Duration) sim.Duration {
	s := o.Scale
	if s <= 0 {
		s = 1
	}
	v := sim.Duration(float64(d) * s)
	if v < sim.Millisecond {
		v = sim.Millisecond
	}
	return v
}

// warm scales a warmup duration but never below the probers' learning time:
// vcap publishes its first sample after ~1.1s and EMA stabilises within a
// few periods, regardless of how short the measurement windows are scaled.
func (o Options) warm(d sim.Duration) sim.Duration {
	v := o.scaled(d)
	if floor := 4 * sim.Second; v < floor {
		v = floor
	}
	return v
}

// Report is one table/figure regenerated as rows.
type Report struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Add appends a row.
func (r *Report) Add(cells ...string) { r.Rows = append(r.Rows, cells) }

// Notef appends a formatted note.
func (r *Report) Notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Cell returns the cell at (row, col) — test helper.
func (r *Report) Cell(row, col int) string { return r.Rows[row][col] }

func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			w := 8
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(&b, "%-*s  ", w, c)
		}
		b.WriteByte('\n')
	}
	line(r.Header)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Runner regenerates one experiment.
type Runner struct {
	ID    string
	Title string
	Run   func(Options) *Report
}

// Registry lists all experiments in paper order.
func Registry() []Runner {
	return []Runner{
		{"fig2", "Extended runqueue latency vs vCPU latency", Fig2},
		{"fig3", "Stalled running task and proactive migration", Fig3},
		{"fig4", "Deficient work conservation (straggler / stacking)", Fig4},
		{"fig10a", "EMA capacity tracking", Fig10a},
		{"fig10b", "Probed cache-line transfer latency matrix", Fig10b},
		{"table2", "vtop probing time", Table2},
		{"fig11", "Capacity-aware scheduling with vcap", Fig11},
		{"fig12", "SMT-aware scheduling with vtop", Fig12},
		{"fig13", "LLC-aware optimisation with vtop", Fig13},
		{"fig14", "Latency reduction with bvs", Fig14},
		{"table3", "Masstree p95 latency breakdown", Table3},
		{"fig15", "Throughput improvement with ivh", Fig15},
		{"table4", "Canneal: activity-aware vs unaware ivh", Table4},
		{"fig16", "Adaptability to vCPU changes", Fig16},
		{"fig17", "Multi-tenant QoS", Fig17},
		{"fig18", "Overall improvement on rcvm", Fig18},
		{"fig19", "Overall improvement on hpvm", Fig19},
		{"fig20", "Cost of vSched", Fig20},
		{"fig21", "Overhead when abstraction is already accurate", Fig21},
		{"probeacc", "Prober accuracy vs host ground truth", ProbeAccuracy},
		{"fleet", "Fleet-scale placement: policy x guest on a 32-host cluster", FleetScale},
		{"attrib", "Latency attribution: per-cause wall-time breakdown by config", Attrib},
		{"fleetobs", "Telemetry flight recorder: determinism, memory bound, steal signal", FleetObs},
		{"fleetscale", "Cloud-scale placement: 1024-host heterogeneous fleet on a generated trace", CloudScale},
		{"faulttol", "Fault tolerance: deterministic crash/brownout schedule, recovery vs loss", FaultTol},
		{"obsplane", "Live ops plane: HTTP metrics + progress stream, inert by construction", ObsPlane},
	}
}

// ByID finds a runner.
func ByID(id string) (Runner, bool) {
	for _, r := range Registry() {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

// --- scenario plumbing ---

// Config names the three scheduler configurations compared throughout §5.
type Config int

const (
	// CFS is the stock guest scheduler with the default vCPU abstraction.
	CFS Config = iota
	// Enhanced is CFS with vProbers feeding it plus rwc ("enhanced CFS").
	Enhanced
	// VSched is the full system (enhanced + bvs + ivh).
	VSched
)

func (c Config) String() string {
	switch c {
	case CFS:
		return "CFS"
	case Enhanced:
		return "Enhanced CFS"
	case VSched:
		return "vSched"
	}
	return "?"
}

// cluster is a host under construction.
type cluster struct {
	eng   *sim.Engine
	h     *host.Host
	stats *Stats
}

// newCluster builds a host; nominal speed 2.0 cycles/ns, SMT and turbo on.
// The seed comes from o.Seed and the engine is registered with o.Stats.
func newCluster(o Options, sockets, cores, threadsPer int) *cluster {
	eng := sim.NewEngine(o.Seed)
	o.Stats.Track(eng)
	cfg := host.DefaultConfig()
	cfg.Sockets = sockets
	cfg.CoresPerSocket = cores
	cfg.ThreadsPerCore = threadsPer
	return &cluster{eng: eng, h: host.New(eng, cfg), stats: o.Stats}
}

// newFlatCluster builds a host without SMT/turbo speed effects — used by
// controlled experiments that need exact capacity arithmetic.
func newFlatCluster(o Options, sockets, cores, threadsPer int) *cluster {
	eng := sim.NewEngine(o.Seed)
	o.Stats.Track(eng)
	cfg := host.DefaultConfig()
	cfg.Sockets = sockets
	cfg.CoresPerSocket = cores
	cfg.ThreadsPerCore = threadsPer
	cfg.SMTFactor = 1.0
	cfg.TurboFactor = 1.0
	return &cluster{eng: eng, h: host.New(eng, cfg), stats: o.Stats}
}

func (c *cluster) threads(idx ...int) []*host.Thread {
	out := make([]*host.Thread, len(idx))
	for i, id := range idx {
		out[i] = c.h.Thread(id)
	}
	return out
}

func (c *cluster) firstThreads(n int) []*host.Thread {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return c.threads(idx...)
}

// deployment is a VM with an optional vSched instance.
type deployment struct {
	vm *guest.VM
	vs *core.VSched
}

// deploy builds and starts a VM on the given threads under a configuration.
func deploy(c *cluster, name string, threads []*host.Thread, cfg Config) *deployment {
	vm := guest.NewVM(c.h, name, threads, guest.DefaultParams())
	c.stats.TrackRegistry(name, vm.Metrics())
	vm.Start()
	d := &deployment{vm: vm}
	if cfg != CFS {
		feats := core.EnhancedCFS()
		if cfg == VSched {
			feats = core.AllFeatures()
		}
		p := core.DefaultParams()
		p.NominalSpeed = c.h.Config().BaseSpeed
		d.vs = core.New(vm, feats, p, cachemodel.Default())
		d.vs.Start()
	}
	return d
}

// deployFeatures builds a VM with an explicit feature set (for experiments
// isolating single probers/techniques).
func deployFeatures(c *cluster, name string, threads []*host.Thread, feats core.Features) *deployment {
	vm := guest.NewVM(c.h, name, threads, guest.DefaultParams())
	c.stats.TrackRegistry(name, vm.Metrics())
	vm.Start()
	p := core.DefaultParams()
	p.NominalSpeed = c.h.Config().BaseSpeed
	d := &deployment{vm: vm}
	if feats != (core.Features{}) {
		d.vs = core.New(vm, feats, p, cachemodel.Default())
		d.vs.Start()
	}
	return d
}

// env returns the workload environment for this deployment.
func (d *deployment) env(threadsOverride int) workload.Env {
	e := workload.Env{
		VM:      d.vm,
		Threads: threadsOverride,
		Nominal: d.vm.Host().Config().BaseSpeed,
	}
	if d.vs != nil {
		e.Group = d.vs.UserGroup()
		e.BEGroup = d.vs.BEGroup()
	}
	return e
}

// dutyContender puts a square-wave co-tenant on a thread: inactive `on`
// every `on+off` for the entity sharing it.
func dutyContender(c *cluster, t *host.Thread, on, off, phase sim.Duration) *host.PatternContender {
	return host.NewPatternContender(c.h, "tenant", t, on, off, phase)
}

// halfDuty configures a thread so a vCPU there gets ~50% in bursts of
// `burst`, with per-thread phase stagger.
func halfDuty(c *cluster, t *host.Thread, burst sim.Duration, i int) *host.PatternContender {
	phase := sim.Duration(i) * burst / 2
	return dutyContender(c, t, burst, burst, phase)
}

// spawnBestEffort puts a SCHED_IDLE CPU hog on every vCPU (the best-effort
// background harvesting load used by Figs. 2 and 14).
func spawnBestEffort(d *deployment) {
	for i := 0; i < d.vm.NumVCPUs(); i++ {
		opts := []guest.TaskOpt{guest.WithIdlePolicy(), guest.StartOn(i)}
		if d.vs != nil {
			opts = append(opts, guest.WithGroup(d.vs.BEGroup()))
		}
		d.vm.Spawn(fmt.Sprintf("be%d", i), func(sim.Time) guest.Segment {
			return guest.Compute(2e6) // 1ms chunks at nominal speed
		}, opts...)
	}
}

// measureOps runs inst for warmup+window and returns ops completed within
// the window.
func measureOps(c *cluster, inst workload.Instance, warmup, window sim.Duration) uint64 {
	inst.Start()
	c.eng.RunFor(warmup)
	before := inst.Ops()
	c.eng.RunFor(window)
	return inst.Ops() - before
}

// pct formats v as a percentage string.
func pct(v float64) string { return fmt.Sprintf("%.0f%%", v*100) }

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// msStr formats nanoseconds as milliseconds.
func msStr(ns int64) string { return fmt.Sprintf("%.2f", float64(ns)/1e6) }
