package experiments

import (
	"strings"
	"testing"

	"vsched/internal/core"
	"vsched/internal/latprof"
)

// attribAggregate runs one configuration across all three contention
// patterns and several seeds, and aggregates: summed breakdown plus the
// average p95-tail steal share. Aggregating damps per-run placement noise
// (the mill's harvest epochs are long) so the mechanism assertions test the
// techniques, not one seed's luck.
func attribAggregate(t *testing.T, seeds []int64, scale float64, feats core.Features) (tot latprof.Breakdown, tailSteal float64) {
	t.Helper()
	n := 0
	for _, seed := range seeds {
		o := Options{Seed: seed, Scale: scale}
		for _, pat := range attribPatterns() {
			prof := runAttrib(o, pat, feats)
			if err := prof.CheckConservation(); err != nil {
				t.Fatalf("seed %d %s: %v", seed, pat.name, err)
			}
			if len(prof.Spans) < 100 {
				t.Fatalf("seed %d %s: only %d spans", seed, pat.name, len(prof.Spans))
			}
			b := prof.Totals()
			tot.Add(&b)
			tailSteal += prof.TailShare(latprof.StealWait, 0.95)
			n++
		}
	}
	return tot, tailSteal / float64(n)
}

// TestAttribMechanisms is the mechanism-story assertion of the attrib
// experiment: bvs must reduce the steal-wait share — overall and within the
// p95 tail of span wall time — versus the prober-only baseline, and ivh on
// top of bvs must reduce the runnable-wait share. The attribution shows
// *where* each technique removes latency, not only that latency dropped.
func TestAttribMechanisms(t *testing.T) {
	seeds := []int64{1, 7, 42}
	scale := 1.0
	if testing.Short() {
		scale = 0.5
	}
	cfgs := attribConfigs()
	base, baseTail := attribAggregate(t, seeds, scale, cfgs[0].feats)
	bvs, bvsTail := attribAggregate(t, seeds, scale, cfgs[1].feats)
	full, _ := attribAggregate(t, seeds, scale, cfgs[2].feats)

	if got, want := bvs.Share(latprof.StealWait), base.Share(latprof.StealWait); got >= want {
		t.Errorf("bvs must reduce steal-wait share: baseline %.3f, bvs %.3f", want, got)
	}
	if bvsTail >= baseTail {
		t.Errorf("bvs must reduce the steal-wait share of the p95 tail: baseline %.3f, bvs %.3f", baseTail, bvsTail)
	}
	if got, want := full.Share(latprof.RunnableWait), bvs.Share(latprof.RunnableWait); got >= want {
		t.Errorf("ivh must reduce runnable-wait share: bvs %.3f, bvs+ivh %.3f", want, got)
	}
}

// TestAttribReportShape runs the full experiment end to end at a small scale
// and checks the report rows, the mechanism note, and that the attribution
// snapshot reaches Stats for the artifact pipeline.
func TestAttribReportShape(t *testing.T) {
	stats := &Stats{}
	rep := Attrib(Options{Seed: 42, Scale: 0.1, Stats: stats})
	if len(rep.Rows) != 9 { // 3 patterns x 3 configs
		t.Fatalf("want 9 rows, got %d", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if len(row) != len(rep.Header) {
			t.Fatalf("row width %d != header %d: %v", len(row), len(rep.Header), row)
		}
	}
	snap := stats.AttributionSnapshot()
	if len(snap) == 0 {
		t.Fatal("no attribution tracked")
	}
	for _, key := range []string{
		"attrib/balanced-5ms/baseline.steal_wait_share",
		"attrib/heavy-30/10/+bvs+ivh.runnable_wait_p95_ns",
		"attrib/bursty-40ms/+bvs.spans",
	} {
		if _, ok := snap[key]; !ok {
			t.Fatalf("snapshot missing %q (have %d keys)", key, len(snap))
		}
	}
	joined := strings.Join(rep.Notes, "\n")
	if !strings.Contains(joined, "conservation") || !strings.Contains(joined, "steal-wait") {
		t.Fatalf("notes missing mechanism summary:\n%s", joined)
	}
}
