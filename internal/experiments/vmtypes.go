package experiments

import (
	"vsched/internal/host"
	"vsched/internal/sim"
)

// VM types of §5.1. rcvm is the resource-constrained VM: 12 vCPUs — five
// SMT-sibling pairs plus one stacked pair — on a contended host, with two
// straggler vCPUs and two vCPUs in each of the four capacity/latency
// categories (hchl, hcll, lchl, lcll). hpvm is the high-performance VM: 32
// vCPUs over four sockets, three sockets mirroring rcvm's categories and one
// socket dedicated.

// Category duty parameters: capacity is the active share of the square
// wave, latency its inactive burst length.
type category struct {
	name  string
	share float64      // active fraction (capacity)
	burst sim.Duration // inactive burst (vCPU latency)
}

var (
	catHCHL      = category{"hchl", 0.70, 9 * sim.Millisecond}
	catHCLL      = category{"hcll", 0.70, 3 * sim.Millisecond}
	catLCHL      = category{"lchl", 0.35, 9 * sim.Millisecond}
	catLCLL      = category{"lcll", 0.35, 3 * sim.Millisecond}
	catStraggler = category{"straggler", 0.03, 15 * sim.Millisecond}
)

// apply installs the category's co-tenant on a thread: a CFS stressor whose
// weight sets the vCPU's fair share (capacity), with the host scheduling
// granularities tuned to the category's inactive-burst length (latency) —
// the same bandwidth-and-granularity control the paper uses.
func (cat category) apply(c *cluster, t *host.Thread, phase sim.Duration) {
	if cat.share >= 0.999 {
		return // dedicated
	}
	_ = phase
	weight := int64(float64(host.DefaultWeight) * (1 - cat.share) / cat.share)
	if weight < 1 {
		weight = 1
	}
	t.SetGranularities(cat.burst, 2*cat.burst)
	host.NewStressor(c.h, "tenant-"+cat.name, t, weight)
}

// rcvmCluster builds the rcvm host and VM threads: vCPU0..9 on five SMT
// pairs (cores 0-4), vCPU10,11 stacked on core 5 thread 0.
func rcvmCluster(o Options) (*cluster, []*host.Thread) {
	c := newCluster(o, 1, 6, 2)
	threads := make([]*host.Thread, 0, 12)
	for i := 0; i < 10; i++ {
		threads = append(threads, c.h.Thread(i))
	}
	stacked := c.h.ThreadAt(0, 5, 0)
	threads = append(threads, stacked, stacked)

	cats := []category{catHCHL, catHCHL, catHCLL, catHCLL, catLCHL, catLCHL, catLCLL, catLCLL, catStraggler, catStraggler}
	for i, cat := range cats {
		phase := sim.Duration(i*1700) * sim.Microsecond
		cat.apply(c, c.h.Thread(i), phase)
	}
	return c, threads
}

// hpvmCluster builds the hpvm host and VM threads: sockets 0-2 carry the
// four categories (one SMT pair each), socket 3 is dedicated.
func hpvmCluster(o Options) (*cluster, []*host.Thread) {
	c := newCluster(o, 4, 4, 2)
	var threads []*host.Thread
	cats := []category{catHCHL, catHCLL, catLCHL, catLCLL}
	for s := 0; s < 4; s++ {
		for core := 0; core < 4; core++ {
			for slot := 0; slot < 2; slot++ {
				th := c.h.ThreadAt(s, core, slot)
				threads = append(threads, th)
				if s < 3 {
					phase := sim.Duration((s*8+core*2+slot)*1300) * sim.Microsecond
					cats[core].apply(c, th, phase)
				}
			}
		}
	}
	return c, threads
}

// BuildRCVM deploys the resource-constrained VM under a configuration.
func BuildRCVM(o Options, cfg Config) (*cluster, *deployment) {
	c, threads := rcvmCluster(o)
	return c, deploy(c, "rcvm", threads, cfg)
}

// BuildHPVM deploys the high-performance VM under a configuration.
func BuildHPVM(o Options, cfg Config) (*cluster, *deployment) {
	c, threads := hpvmCluster(o)
	return c, deploy(c, "hpvm", threads, cfg)
}
