package experiments

import (
	"fmt"

	"vsched/internal/core"
	"vsched/internal/host"
	"vsched/internal/sim"
	"vsched/internal/workload"
)

// bvsRig builds the Fig. 14 / Table 3 VM: 16 vCPUs, symmetric 50% capacity,
// asymmetric latency — the host scheduling granularity on the threads of
// vCPUs 0..7 is 6ms, on vCPUs 8..15 3ms ("half of vCPUs have 2x lower
// latency"), with a CFS co-tenant stressing every core.
func bvsRig(o Options, feats core.Features) (*cluster, *deployment) {
	c := newFlatCluster(o, 1, 16, 1)
	for i := 0; i < 16; i++ {
		gran := 6 * sim.Millisecond
		if i >= 8 {
			gran = 3 * sim.Millisecond
		}
		th := c.h.Thread(i)
		th.SetGranularities(gran, 2*gran)
		host.NewStressor(c.h, "tenant", th, host.DefaultWeight)
	}
	return c, deployFeatures(c, "vm", c.firstThreads(16), feats)
}

func probersOnly() core.Features { return core.Features{Vcap: true, Vact: true, Vtop: true} }

// Fig14 reproduces the bvs latency experiment (§5.4): p95 tail latency of
// five Tailbench services with and without bvs, with and without best-effort
// background tasks. vProbers run in both configurations.
func Fig14(opt Options) *Report {
	rep := &Report{
		ID:     "fig14",
		Title:  "p95 latency with bvs, normalized to bvs disabled (lower is better)",
		Header: []string{"bench", "best-effort", "no-bvs p95(ms)", "bvs p95(ms)", "normalized"},
	}
	benches := []string{"img-dnn", "masstree", "silo", "specjbb", "xapian"}
	warm := opt.warm(6 * sim.Second) // probers must learn latencies
	window := opt.scaled(15 * sim.Second)

	run := func(bench string, withBVS, withBE bool) int64 {
		feats := probersOnly()
		if withBVS {
			feats.BVS = true
		}
		c, d := bvsRig(opt, feats)
		if withBE {
			spawnBestEffort(d)
		}
		spec, _ := workload.ByName(bench)
		srv := spec.New(d.env(0)).(*workload.Server)
		srv.Start()
		c.eng.RunFor(warm)
		srv.ResetStats()
		c.eng.RunFor(window)
		return srv.E2E().P95()
	}

	var sumNorm float64
	var n int
	for _, withBE := range []bool{false, true} {
		for _, bench := range benches {
			off := run(bench, false, withBE)
			on := run(bench, true, withBE)
			norm := float64(on) / float64(off)
			sumNorm += norm
			n++
			beTag := "without"
			if withBE {
				beTag = "with"
			}
			rep.Add(bench, beTag, msStr(off), msStr(on), pct(norm))
		}
	}
	rep.Notef("average p95 reduction with bvs: %.0f%% (paper: 42%%)", 100*(1-sumNorm/float64(n)))
	return rep
}

// Table3 reproduces the Masstree latency breakdown (§5.4): queue, service
// and end-to-end p95 under no bvs / bvs without the state check / full bvs.
func Table3(opt Options) *Report {
	rep := &Report{
		ID:     "table3",
		Title:  "Masstree p95 latency breakdown (ms)",
		Header: []string{"best-effort", "config", "queue", "service", "end-2-end"},
	}
	warm := opt.warm(6 * sim.Second)
	window := opt.scaled(15 * sim.Second)

	run := func(mode string, withBE bool) (q, s, e int64) {
		feats := probersOnly()
		if mode != "no-bvs" {
			feats.BVS = true
		}
		c, d := bvsRig(opt, feats)
		if mode == "bvs-no-state" {
			d.vs.SetBVSStateCheck(false)
		}
		if withBE {
			spawnBestEffort(d)
		}
		srv := workload.NewTailbench(d.env(0), "masstree", 350*sim.Microsecond)
		srv.Start()
		c.eng.RunFor(warm)
		srv.ResetStats()
		c.eng.RunFor(window)
		return srv.Queue().P95(), srv.Service().P95(), srv.E2E().P95()
	}

	for _, withBE := range []bool{false, true} {
		beTag := "without"
		modes := []string{"no-bvs", "bvs"}
		if withBE {
			beTag = "with"
			modes = []string{"no-bvs", "bvs-no-state", "bvs"}
		}
		for _, mode := range modes {
			q, s, e := run(mode, withBE)
			rep.Add(beTag, mode, msStr(q), msStr(s), msStr(e))
		}
	}
	rep.Notef("paper: bvs cuts queue time 70%%/44%% (without/with best-effort); state check matters on sched_idle vCPUs")
	return rep
}

// ivhRig builds the Fig. 15 / Table 4 VM: 16 vCPUs each sharing 50% of a
// core in 5ms bursts, phases staggered so there is usually an active unused
// vCPU to harvest.
func ivhRig(o Options, feats core.Features) (*cluster, *deployment) {
	c := newFlatCluster(o, 1, 16, 1)
	for i := 0; i < 16; i++ {
		// A CFS co-tenant on every core: each vCPU owns a fair 50% share. A
		// busy vCPU suffers ~3ms inactive periods (the host slice quantum);
		// an idle vCPU's share goes unused — until ivh harvests it, because
		// a kicked idle vCPU preempts the co-tenant almost immediately.
		host.NewStressor(c.h, "tenant", c.h.Thread(i), host.DefaultWeight)
	}
	return c, deployFeatures(c, "vm", c.firstThreads(16), feats)
}

// Fig15 reproduces the ivh throughput experiment (§5.5): throughput
// improvement from ivh for throughput-oriented workloads across thread
// counts, largest when many vCPUs are unused.
func Fig15(opt Options) *Report {
	rep := &Report{
		ID:     "fig15",
		Title:  "Throughput improvement with ivh vs ivh disabled (higher is better)",
		Header: []string{"bench", "1thr", "2thr", "4thr", "8thr", "16thr"},
	}
	benches := []string{
		"streamcluster", "canneal", "blackscholes", "bodytrack", "dedup",
		"ocean_cp", "ocean_ncp", "radiosity", "radix", "fft", "pbzip2",
	}
	threadCounts := []int{1, 2, 4, 8, 16}
	warm := opt.warm(4 * sim.Second)
	window := opt.scaled(12 * sim.Second)

	run := func(bench string, threads int, withIVH bool) uint64 {
		feats := core.Features{Vcap: true, Vact: true}
		if withIVH {
			feats.IVH = true
		}
		c, d := ivhRig(opt, feats)
		spec, _ := workload.ByName(bench)
		return measureOps(c, spec.New(d.env(threads)), warm, window)
	}

	for _, bench := range benches {
		row := []string{bench}
		for _, th := range threadCounts {
			off := run(bench, th, false)
			on := run(bench, th, true)
			imp := 100 * (float64(on)/float64(off) - 1)
			row = append(row, fmt.Sprintf("%+.0f%%", imp))
		}
		rep.Add(row...)
	}
	rep.Notef("paper: up to +82%% at low thread counts, +17%% average at 16 threads")
	return rep
}

// Table4 reproduces the canneal ablation (§5.5): execution time with
// activity-aware vs activity-unaware ivh.
func Table4(opt Options) *Report {
	rep := &Report{
		ID:     "table4",
		Title:  "Canneal execution time (s) and misplaced-stall time, ivh activity-aware vs unaware",
		Header: []string{"host/threads", "unaware", "aware", "speedup", "stall-unaware", "stall-aware"},
	}
	totalIters := 1600
	if opt.Scale < 1 {
		totalIters = int(float64(totalIters) * opt.Scale)
		if totalIters < 64 {
			totalIters = 64
		}
	}

	run := func(threads int, aware, slowWake bool) (float64, sim.Duration) {
		feats := core.Features{Vcap: true, Vact: true, IVH: true}
		c, d := ivhRig(opt, feats)
		if slowWake {
			// High-wake-latency host (granularities cranked like the
			// latency experiments): a mis-targeted migration parks the task
			// for several ms, which is where activity awareness pays.
			for i := 0; i < 16; i++ {
				c.h.Thread(i).SetGranularities(5*sim.Millisecond, 10*sim.Millisecond)
			}
		}
		d.vs.SetIVHActivityAware(aware)
		// Let the probers learn activity before launching (the paper's runs
		// are long enough that the learning phase is negligible; ours are
		// scaled down).
		c.eng.RunFor(4 * sim.Second)
		start := c.eng.Now()
		p := workload.NewParallel(d.env(threads), workload.ParallelSpec{
			Name: "canneal", IterWork: 1 * sim.Millisecond, Imbalance: 0.2,
			Sync: workload.SyncLock, CritFrac: 0.15,
			Iterations: totalIters / threads,
		})
		p.Start()
		for i := 0; i < 10000 && !p.Done(); i++ {
			c.eng.RunFor(100 * sim.Millisecond)
		}
		var stall sim.Duration
		for _, tk := range p.Tasks() {
			stall += tk.TotalQueueLatency()
		}
		return p.FinishedAt.Sub(start).Seconds(), stall
	}

	for _, slowWake := range []bool{false, true} {
		tag := "fast-wake host"
		if slowWake {
			tag = "slow-wake host"
		}
		for _, th := range []int{1, 2, 4, 8, 16} {
			un, stallUn := run(th, false, slowWake)
			aw, stallAw := run(th, true, slowWake)
			rep.Add(fmt.Sprintf("%s/%d", tag, th), f2(un), f2(aw), fmt.Sprintf("%.2fx", un/aw),
				stallUn.String(), stallAw.String())
		}
	}
	rep.Notef("paper: activity-aware ivh beats unaware at every thread count (408s vs 348s at 1 thread).")
	rep.Notef("activity awareness pays when host wake latency is high (slow-wake rows) — a mis-targeted migration parks the task for milliseconds; on a fast-wake host both variants converge (see EXPERIMENTS.md)")
	return rep
}
