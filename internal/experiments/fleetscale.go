package experiments

import (
	"bytes"
	"fmt"

	"vsched/internal/cloudgen"
	"vsched/internal/fleet"
	"vsched/internal/sim"
	"vsched/internal/telemetry"
)

// CloudScale pushes the fleet layer to cloud-provider dimensions (no paper
// counterpart; the paper's testbed stops at a handful of hosts). A cloudgen
// trace — heavy-tailed VM sizes, diurnal arrivals, bimodal lifetimes,
// heterogeneous host classes — drives the macro fleet simulator at full
// scale: 1024 hosts, ~115k VM arrivals, 48 hours of virtual time, per
// placement policy. Reported per policy:
//
//   - degree of imbalance (max-min)/avg of host utilization, mean and max
//     over epochs — the CloudSim load-balance metric;
//   - batch makespan (completion of the last batch VM);
//   - p95 per-VM steal fraction — the vSched-visible cost of bad placement;
//   - throughput accounting (placed / rejected / completed lifetimes).
//
// Every cell runs twice, serially and sharded across host-range goroutines,
// and panics unless the two final-state snapshots are byte-identical: the
// determinism gate that keeps the sharded fast path honest. The sharded run
// also carries a telemetry recorder, which must not perturb the bytes
// either.
// scaledCloudConfig shrinks the default cloudgen trace for -scale < 1 with
// floors that keep the scenario meaningful: heterogeneous hosts, thousands
// of lifetimes, several diurnal-scale hours. Shared by the fleetscale and
// faulttol experiments so both see the same fleet at a given scale.
func scaledCloudConfig(scale float64) cloudgen.Config {
	cfg := cloudgen.DefaultConfig()
	if scale <= 0 {
		scale = 1
	}
	if scale < 1 {
		if h := sim.Duration(float64(cfg.Horizon) * scale); h >= 3*cloudgen.Hour {
			cfg.Horizon = h
		} else {
			cfg.Horizon = 3 * cloudgen.Hour
		}
		if r := cfg.BaseRate * scale * 4; r < cfg.BaseRate {
			cfg.BaseRate = r
		}
		for i := range cfg.Hosts {
			if n := int(float64(cfg.Hosts[i].Count) * scale); n >= 2 {
				cfg.Hosts[i].Count = n
			} else {
				cfg.Hosts[i].Count = 2
			}
		}
	}
	return cfg
}

func CloudScale(o Options) *Report {
	trace := cloudgen.Generate(o.Seed, scaledCloudConfig(o.Scale))

	tcfg := telemetry.Config{Interval: 60 * sim.Second}

	rep := &Report{
		ID:    "fleetscale",
		Title: "Cloud-scale placement: heavy-tailed diurnal trace on a heterogeneous fleet (macro)",
		Header: []string{"policy", "placed", "rejected", "lifetimes", "DI mean", "DI max",
			"makespan h", "p95 steal", "steal vCPU-h", "Mevents"},
	}
	rep.Notef("trace: %d hosts (%d threads), %d arrivals over %.0fh, seed %d",
		len(trace.Hosts), trace.TotalThreads(), len(trace.VMs), trace.Horizon.Seconds()/3600, o.Seed)

	policies := []fleet.Policy{fleet.FirstFit{}, fleet.LeastLoaded{}, fleet.StealAware{}}
	for _, pol := range policies {
		run := func(shards int, tc *telemetry.Config) *fleet.MacroResult {
			return fleet.RunMacro(fleet.MacroConfig{
				Trace:     trace,
				Policy:    pol,
				Epoch:     60 * sim.Second,
				Shards:    shards,
				Telemetry: tc,
				Observe:   func(e *sim.Engine) { o.Stats.Track(e) },
			})
		}
		serial := run(1, nil)
		sharded := run(8, &tcfg)
		// The determinism gate: host-range sharding (and the attached
		// recorder) must not move a single bit of final state.
		if !bytes.Equal(serial.Snapshot, sharded.Snapshot) {
			panic(fmt.Sprintf("fleetscale: %s serial/sharded snapshots diverge: %s vs %s",
				pol.Name(), fleet.SnapshotDigest(serial.Snapshot), fleet.SnapshotDigest(sharded.Snapshot)))
		}
		r := sharded
		o.Stats.TrackRegistry("fleetscale."+r.Policy, r.Registry)
		o.Stats.TrackTelemetry("fleetscale."+r.Policy, r.Telemetry)
		rep.Add(r.Policy,
			fmt.Sprintf("%d", r.Placed),
			fmt.Sprintf("%d", r.Rejected),
			fmt.Sprintf("%d", r.Lifetimes),
			fmt.Sprintf("%.3f", r.DIMean),
			fmt.Sprintf("%.3f", r.DIMax),
			fmt.Sprintf("%.2f", r.Makespan.Sub(0).Seconds()/3600),
			fmt.Sprintf("%.4f", r.P95Steal),
			fmt.Sprintf("%.1f", r.TotalStealHours),
			fmt.Sprintf("%.1f", float64(r.Events)/1e6),
		)
		if o.Verbose {
			rep.Notef("%s: snapshot %s", r.Policy, fleet.SnapshotDigest(r.Snapshot))
		}
	}
	rep.Notef("determinism gate: serial == sharded final-state bytes for every policy")
	return rep
}
