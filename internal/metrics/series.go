package metrics

import (
	"fmt"
	"math"
	"strings"
)

// Counter is a monotonically increasing event count.
type Counter struct{ n uint64 }

// Inc adds one to the counter.
func (c *Counter) Inc() { c.n++ }

// Add adds k to the counter.
func (c *Counter) Add(k uint64) { c.n += k }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Reset sets the counter back to zero.
func (c *Counter) Reset() { c.n = 0 }

// Gauge is a point-in-time value that can move in either direction (queue
// depth, published capacity, current straggler count).
type Gauge struct{ v float64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.v = v }

// Add moves the gauge by d (negative to decrease).
func (g *Gauge) Add(d float64) { g.v += d }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// Welford accumulates mean and variance online (Welford's algorithm).
type Welford struct {
	n    uint64
	mean float64
	m2   float64
}

// Add records one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() uint64 { return w.n }

// Mean returns the running mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Stddev returns the sample standard deviation (0 for n < 2).
func (w *Welford) Stddev() float64 {
	if w.n < 2 {
		return 0
	}
	return math.Sqrt(w.m2 / float64(w.n-1))
}

// Point is one (time, value) sample of a time series. Time is in seconds of
// virtual time.
type Point struct {
	T float64
	V float64
}

// TimeSeries is an append-only sequence of timestamped values, used for the
// "live throughput" figures (16, 17) and capacity traces (10a).
type TimeSeries struct {
	Name   string
	Points []Point
}

// Append adds a point; timestamps are expected to be non-decreasing.
func (ts *TimeSeries) Append(t, v float64) {
	ts.Points = append(ts.Points, Point{T: t, V: v})
}

// Mean returns the mean of the series' values.
func (ts *TimeSeries) Mean() float64 {
	if len(ts.Points) == 0 {
		return 0
	}
	var s float64
	for _, p := range ts.Points {
		s += p.V
	}
	return s / float64(len(ts.Points))
}

// MeanBetween returns the mean value of points with t0 <= T < t1.
func (ts *TimeSeries) MeanBetween(t0, t1 float64) float64 {
	var s float64
	var n int
	for _, p := range ts.Points {
		if p.T >= t0 && p.T < t1 {
			s += p.V
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

func (ts *TimeSeries) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:", ts.Name)
	for _, p := range ts.Points {
		fmt.Fprintf(&b, " (%.1f,%.1f)", p.T, p.V)
	}
	return b.String()
}

// Distribution counts occurrences of small integer values (e.g. "number of
// active cores"), used for Fig. 12(a)-style probability plots.
type Distribution struct {
	counts map[int]uint64
	total  uint64
}

// NewDistribution returns an empty distribution.
func NewDistribution() *Distribution {
	return &Distribution{counts: make(map[int]uint64)}
}

// Observe records one occurrence of value v.
func (d *Distribution) Observe(v int) {
	d.counts[v]++
	d.total++
}

// Probability returns the fraction of observations equal to v.
func (d *Distribution) Probability(v int) float64 {
	if d.total == 0 {
		return 0
	}
	return float64(d.counts[v]) / float64(d.total)
}

// Mode returns the most frequent value (smallest wins ties) and its count.
func (d *Distribution) Mode() (int, uint64) {
	bestV, bestC := 0, uint64(0)
	first := true
	for v, c := range d.counts {
		if c > bestC || (c == bestC && (first || v < bestV)) {
			bestV, bestC = v, c
			first = false
		}
	}
	return bestV, bestC
}

// Total returns the number of observations.
func (d *Distribution) Total() uint64 { return d.total }
