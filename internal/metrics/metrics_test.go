package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Min() != 0 || h.P95() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	if h.Count() != 100 {
		t.Fatalf("count=%d", h.Count())
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("min=%d max=%d", h.Min(), h.Max())
	}
	if m := h.Mean(); math.Abs(m-50.5) > 1e-9 {
		t.Fatalf("mean=%v", m)
	}
	// p50 of 1..100 is 50; bucket error allowed is ~3.1%.
	if p := h.P50(); p < 47 || p > 50 {
		t.Fatalf("p50=%d", p)
	}
	if p := h.P95(); p < 91 || p > 95 {
		t.Fatalf("p95=%d", p)
	}
}

// TestHistogramQuantileEdgeCases pins the degenerate distributions the
// attribution pipeline feeds in routinely: empty profiles, single-span
// tasks, and all-equal components.
func TestHistogramQuantileEdgeCases(t *testing.T) {
	// Empty: every accessor must return 0, not panic or garbage.
	h := NewHistogram()
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v)=%d", q, got)
		}
	}
	if h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram must read as all zeros")
	}

	// Single sample below the linear-bucket limit: every quantile is exact.
	h = NewHistogram()
	h.Observe(17)
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if got := h.Quantile(q); got != 17 {
			t.Fatalf("single-sample Quantile(%v)=%d want 17", q, got)
		}
	}

	// Single large sample: quantiles agree with each other, stay within the
	// documented relative error, and q>=1 is exact.
	h = NewHistogram()
	h.Observe(1_000_003)
	if h.Quantile(1) != 1_000_003 {
		t.Fatalf("Quantile(1)=%d want exact max", h.Quantile(1))
	}
	p50, p99 := h.P50(), h.P99()
	if p50 != p99 {
		t.Fatalf("single sample: p50=%d p99=%d must match", p50, p99)
	}
	if p50 > 1_000_003 || float64(1_000_003-p50) > 0.032*1_000_003 {
		t.Fatalf("p50=%d outside the 3.2%% bucket error of 1000003", p50)
	}

	// All-equal samples: the distribution is a point mass, so every quantile
	// lands in the same bucket and min==max==mean.
	h = NewHistogram()
	for i := 0; i < 1000; i++ {
		h.Observe(5000)
	}
	if h.P50() != h.P95() || h.P95() != h.P99() {
		t.Fatalf("all-equal quantiles differ: p50=%d p95=%d p99=%d", h.P50(), h.P95(), h.P99())
	}
	if h.Min() != 5000 || h.Max() != 5000 || h.Mean() != 5000 {
		t.Fatalf("all-equal min/max/mean: %d/%d/%v", h.Min(), h.Max(), h.Mean())
	}
	if got := h.Quantile(1); got != 5000 {
		t.Fatalf("all-equal Quantile(1)=%d", got)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Observe(-5)
	if h.Min() != 0 || h.Max() != 0 || h.Count() != 1 {
		t.Fatal("negative samples must clamp to zero")
	}
}

func TestHistogramQuantileAgainstExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h := NewHistogram()
	var samples []int64
	for i := 0; i < 20000; i++ {
		v := int64(rng.ExpFloat64() * 1e6)
		h.Observe(v)
		samples = append(samples, v)
	}
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		exact := ExactQuantile(samples, q)
		est := h.Quantile(q)
		if exact == 0 {
			continue
		}
		rel := math.Abs(float64(est-exact)) / float64(exact)
		if rel > 0.05 {
			t.Fatalf("q=%v exact=%d est=%d rel=%v", q, exact, est, rel)
		}
	}
}

func TestHistogramMergeAndReset(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := int64(0); i < 100; i++ {
		a.Observe(i)
		b.Observe(i + 1000)
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Fatalf("merged count=%d", a.Count())
	}
	if a.Max() != 1099 || a.Min() != 0 {
		t.Fatalf("merged min/max wrong: %d %d", a.Min(), a.Max())
	}
	a.Reset()
	if a.Count() != 0 || a.Max() != 0 {
		t.Fatal("reset failed")
	}
}

// Property: bucketLow(bucketIndex(v)) <= v and the relative error of the
// bucket lower bound is within 1/subBuckets for large v.
func TestBucketProperty(t *testing.T) {
	prop := func(raw int64) bool {
		v := raw
		if v < 0 {
			v = -v
		}
		i := bucketIndex(v)
		lo := bucketLow(i)
		if lo > v {
			return false
		}
		if v >= subBuckets {
			rel := float64(v-lo) / float64(v)
			if rel > 2.0/subBuckets {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantiles are monotone in q.
func TestQuantileMonotoneProperty(t *testing.T) {
	prop := func(vals []uint32) bool {
		h := NewHistogram()
		for _, v := range vals {
			h.Observe(int64(v))
		}
		prev := int64(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			cur := h.Quantile(q)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter=%d", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("reset failed")
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Stddev() != 0 {
		t.Fatal("empty welford must be zero")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if math.Abs(w.Mean()-5) > 1e-9 {
		t.Fatalf("mean=%v", w.Mean())
	}
	// Sample stddev of this classic set is ~2.138.
	if math.Abs(w.Stddev()-2.13809) > 1e-3 {
		t.Fatalf("stddev=%v", w.Stddev())
	}
	if w.N() != 8 {
		t.Fatalf("n=%d", w.N())
	}
}

func TestTimeSeries(t *testing.T) {
	ts := &TimeSeries{Name: "tput"}
	for i := 0; i < 10; i++ {
		ts.Append(float64(i), float64(i*10))
	}
	if m := ts.Mean(); math.Abs(m-45) > 1e-9 {
		t.Fatalf("mean=%v", m)
	}
	if m := ts.MeanBetween(2, 4); math.Abs(m-25) > 1e-9 {
		t.Fatalf("meanBetween=%v", m)
	}
	if ts.MeanBetween(100, 200) != 0 {
		t.Fatal("empty window must be 0")
	}
	if ts.String() == "" {
		t.Fatal("String must render")
	}
}

func TestDistribution(t *testing.T) {
	d := NewDistribution()
	for i := 0; i < 6; i++ {
		d.Observe(12)
	}
	for i := 0; i < 4; i++ {
		d.Observe(15)
	}
	if p := d.Probability(12); math.Abs(p-0.6) > 1e-9 {
		t.Fatalf("p=%v", p)
	}
	if v, c := d.Mode(); v != 12 || c != 6 {
		t.Fatalf("mode=%d/%d", v, c)
	}
	if d.Total() != 10 {
		t.Fatalf("total=%d", d.Total())
	}
	if d.Probability(99) != 0 {
		t.Fatal("unseen value must have probability 0")
	}
}

func TestExactQuantile(t *testing.T) {
	if ExactQuantile(nil, 0.5) != 0 {
		t.Fatal("empty exact quantile must be 0")
	}
	s := []int64{5, 1, 9, 3, 7}
	if ExactQuantile(s, 0) != 1 || ExactQuantile(s, 1) != 9 {
		t.Fatal("extremes wrong")
	}
	if ExactQuantile(s, 0.5) != 5 {
		t.Fatalf("median=%d", ExactQuantile(s, 0.5))
	}
	// Input must not be mutated.
	if s[0] != 5 {
		t.Fatal("ExactQuantile mutated input")
	}
}
