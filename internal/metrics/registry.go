package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// Registry is a named collection of Counters, Gauges and Histograms. It
// replaces scattered ad-hoc counter fields with a uniform interface: callers
// get-or-create instruments by name, keep the returned pointer for the hot
// path, and consumers take a Snapshot with stable (sorted) ordering.
//
// A Registry is not goroutine-safe; like the simulator itself, each engine's
// components share one registry on one goroutine.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	// histKeys caches each histogram's flattened sub-key strings
	// (name.count, name.mean, ...) so VisitNumeric never concatenates on
	// the steady-state path.
	histKeys map[string]histKeySet
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on first
// use. Registering the same name as two different instrument kinds panics —
// that is a programming error, not a runtime condition.
func (r *Registry) Counter(name string) *Counter {
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.checkFresh(name, "counter")
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.checkFresh(name, "gauge")
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	if h, ok := r.hists[name]; ok {
		return h
	}
	r.checkFresh(name, "histogram")
	h := NewHistogram()
	r.hists[name] = h
	return h
}

// checkFresh panics if name is already registered as another instrument kind.
func (r *Registry) checkFresh(name, kind string) {
	if _, ok := r.counters[name]; ok && kind != "counter" {
		panic("metrics: " + name + " already registered as a counter")
	}
	if _, ok := r.gauges[name]; ok && kind != "gauge" {
		panic("metrics: " + name + " already registered as a gauge")
	}
	if _, ok := r.hists[name]; ok && kind != "histogram" {
		panic("metrics: " + name + " already registered as a histogram")
	}
}

// SnapshotEntry is one instrument's state at snapshot time. Kind is
// "counter", "gauge" or "histogram"; histogram entries carry the summary
// fields, scalar entries only Value.
type SnapshotEntry struct {
	Name  string
	Kind  string
	Value float64
	// Histogram summary (Kind == "histogram" only).
	Count              uint64
	Mean               float64
	P50, P95, P99, Max int64
}

// Snapshot is the registry's full state in sorted-name order. Equal
// registries always produce byte-identical snapshots, which is what lets
// snapshots appear in determinism-checked output.
type Snapshot []SnapshotEntry

// Snapshot captures every instrument, sorted by name.
func (r *Registry) Snapshot() Snapshot {
	out := make(Snapshot, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		out = append(out, SnapshotEntry{Name: name, Kind: "counter", Value: float64(c.Value())})
	}
	for name, g := range r.gauges {
		out = append(out, SnapshotEntry{Name: name, Kind: "gauge", Value: g.Value()})
	}
	for name, h := range r.hists {
		out = append(out, SnapshotEntry{
			Name: name, Kind: "histogram",
			Value: float64(h.Count()),
			Count: h.Count(), Mean: h.Mean(),
			P50: h.P50(), P95: h.P95(), P99: h.P99(), Max: h.Max(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// String renders the snapshot as aligned "name value" lines, histograms with
// their summary stats — the -metrics output of cmd/vschedsim.
func (s Snapshot) String() string {
	w := 0
	for _, e := range s {
		if len(e.Name) > w {
			w = len(e.Name)
		}
	}
	var b strings.Builder
	for _, e := range s {
		switch e.Kind {
		case "histogram":
			fmt.Fprintf(&b, "%-*s  n=%d mean=%.1f p50=%d p95=%d p99=%d max=%d\n",
				w, e.Name, e.Count, e.Mean, e.P50, e.P95, e.P99, e.Max)
		case "gauge":
			fmt.Fprintf(&b, "%-*s  %g\n", w, e.Name, e.Value)
		default:
			fmt.Fprintf(&b, "%-*s  %.0f\n", w, e.Name, e.Value)
		}
	}
	return b.String()
}

// histKeySet is the cached flattened sub-key strings for one histogram.
type histKeySet struct {
	count, mean, p50, p95, p99, max string
}

// VisitNumeric calls fn once per numeric reading of every instrument:
// counters and gauges under their own names, histograms expanded into the
// same name.count/mean/p50/p95/p99/max sub-keys as Flatten. Visit order is
// unspecified (map order); callers needing stable order should use Snapshot.
//
// This is the sampling fast path: unlike Snapshot/Flatten it builds no
// slices or maps, and the histogram sub-key strings are cached after the
// first visit, so a steady-state visit performs zero allocations — the
// property the telemetry recorder's per-sample cost rests on.
func (r *Registry) VisitNumeric(fn func(name string, v float64)) {
	for name, c := range r.counters {
		fn(name, float64(c.Value()))
	}
	for name, g := range r.gauges {
		fn(name, g.Value())
	}
	for name, h := range r.hists {
		k, ok := r.histKeys[name]
		if !ok {
			if r.histKeys == nil {
				r.histKeys = make(map[string]histKeySet)
			}
			k = histKeySet{
				count: name + ".count",
				mean:  name + ".mean",
				p50:   name + ".p50",
				p95:   name + ".p95",
				p99:   name + ".p99",
				max:   name + ".max",
			}
			r.histKeys[name] = k
		}
		fn(k.count, float64(h.Count()))
		fn(k.mean, h.Mean())
		fn(k.p50, float64(h.P50()))
		fn(k.p95, float64(h.P95()))
		fn(k.p99, float64(h.P99()))
		fn(k.max, float64(h.Max()))
	}
}

// Flatten converts the snapshot to a flat name->value map, expanding
// histograms into name.count/mean/p50/p95/p99/max keys. encoding/json sorts
// map keys, so the map embeds deterministically in JSON artifacts.
func (s Snapshot) Flatten() map[string]float64 {
	if len(s) == 0 {
		return nil
	}
	m := make(map[string]float64, len(s))
	for _, e := range s {
		if e.Kind != "histogram" {
			m[e.Name] = e.Value
			continue
		}
		m[e.Name+".count"] = float64(e.Count)
		m[e.Name+".mean"] = e.Mean
		m[e.Name+".p50"] = float64(e.P50)
		m[e.Name+".p95"] = float64(e.P95)
		m[e.Name+".p99"] = float64(e.P99)
		m[e.Name+".max"] = float64(e.Max)
	}
	return m
}
