package metrics

import (
	"math"
	"strconv"
	"strings"
)

// Summary accumulates mean, variance (Welford), min, and max of a sample
// stream, and supports exact merging of two summaries (Chan et al.'s
// parallel variance update). The experiment harness uses it to fold the same
// report cell across replicate seeds into mean±stddev [min,max] columns.
type Summary struct {
	n        uint64
	mean, m2 float64
	min, max float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// Merge folds another summary into s, as if every observation behind o had
// been Added to s directly.
func (s *Summary) Merge(o Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = o
		return
	}
	n := s.n + o.n
	d := o.mean - s.mean
	s.m2 += o.m2 + d*d*float64(s.n)*float64(o.n)/float64(n)
	s.mean += d * float64(o.n) / float64(n)
	s.n = n
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
}

// N returns the number of observations.
func (s Summary) N() uint64 { return s.n }

// Mean returns the mean (0 when empty).
func (s Summary) Mean() float64 { return s.mean }

// Stddev returns the sample standard deviation (0 for n < 2).
func (s Summary) Stddev() float64 {
	if s.n < 2 {
		return 0
	}
	v := s.m2 / float64(s.n-1)
	if v < 0 { // guard fp noise
		v = 0
	}
	return math.Sqrt(v)
}

// Min returns the smallest observation (0 when empty).
func (s Summary) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation (0 when empty).
func (s Summary) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// cellSuffixes are the unit suffixes report cells use; anything else makes a
// cell non-numeric for aggregation purposes.
var cellSuffixes = []string{"", "%", "x", "ms", "s", "ns"}

// ParseCell splits a report cell like "85%", "+1.4x", "-3", or "12.05" into
// its numeric value and unit suffix. It returns ok=false for cells that are
// not a single number with a known suffix (labels, timelines, "inf", ...).
func ParseCell(cell string) (v float64, suffix string, ok bool) {
	s := strings.TrimSpace(cell)
	s = strings.TrimPrefix(s, "+")
	// Longest prefix that parses as a float.
	end := 0
	for i := 1; i <= len(s); i++ {
		if _, err := strconv.ParseFloat(s[:i], 64); err == nil {
			end = i
		}
	}
	if end == 0 {
		return 0, "", false
	}
	v, err := strconv.ParseFloat(s[:end], 64)
	if err != nil || math.IsInf(v, 0) || math.IsNaN(v) {
		return 0, "", false
	}
	suffix = s[end:]
	for _, known := range cellSuffixes {
		if suffix == known {
			return v, suffix, true
		}
	}
	return 0, "", false
}

// FormatCell renders an aggregated cell as "mean±stddev{suffix} [min,max]".
// With a single observation it renders just the value, round-tripping what
// ParseCell read.
func FormatCell(s Summary, suffix string) string {
	if s.n <= 1 {
		return formatCellValue(s.Mean()) + suffix
	}
	return formatCellValue(s.Mean()) + "±" + formatCellValue(s.Stddev()) + suffix +
		" [" + formatCellValue(s.Min()) + "," + formatCellValue(s.Max()) + "]"
}

// formatCellValue formats with enough precision to distinguish seeds without
// drowning the table ("%.4g" keeps 85, 85.25, 0.0012 readable).
func formatCellValue(v float64) string {
	return strconv.FormatFloat(v, 'g', 4, 64)
}
