package metrics

import (
	"fmt"
	"sort"
	"strings"
	"testing"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.count")
	c.Inc()
	if r.Counter("a.count") != c {
		t.Fatal("second lookup returned a different counter")
	}
	if r.Counter("a.count").Value() != 1 {
		t.Fatal("counter state lost across lookups")
	}
	g := r.Gauge("a.level")
	g.Set(2.5)
	if r.Gauge("a.level").Value() != 2.5 {
		t.Fatal("gauge state lost across lookups")
	}
	h := r.Histogram("a.lat")
	h.Observe(10)
	if r.Histogram("a.lat").Count() != 1 {
		t.Fatal("histogram state lost across lookups")
	}
}

func TestRegistryKindCollisionPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a gauge under a counter name must panic")
		}
	}()
	r.Gauge("x")
}

func TestSnapshotSortedAndComplete(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.last").Add(3)
	r.Gauge("m.middle").Set(-1)
	h := r.Histogram("a.first")
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}

	s := r.Snapshot()
	if len(s) != 3 {
		t.Fatalf("snapshot has %d entries, want 3", len(s))
	}
	if !sort.SliceIsSorted(s, func(i, j int) bool { return s[i].Name < s[j].Name }) {
		t.Fatalf("snapshot not sorted: %v", s)
	}
	if s[0].Kind != "histogram" || s[0].Count != 100 || s[0].P50 < 47 || s[0].P50 > 53 {
		t.Fatalf("histogram entry wrong: %+v", s[0])
	}
	if s[1].Kind != "gauge" || s[1].Value != -1 {
		t.Fatalf("gauge entry wrong: %+v", s[1])
	}
	if s[2].Kind != "counter" || s[2].Value != 3 {
		t.Fatalf("counter entry wrong: %+v", s[2])
	}

	text := s.String()
	for _, want := range []string{"z.last", "m.middle", "a.first", "n=100", "p95="} {
		if !strings.Contains(text, want) {
			t.Fatalf("snapshot text missing %q:\n%s", want, text)
		}
	}
}

func TestSnapshotFlatten(t *testing.T) {
	r := NewRegistry()
	if r.Snapshot().Flatten() != nil {
		t.Fatal("empty snapshot must flatten to nil for omitempty JSON embedding")
	}
	r.Counter("c").Add(7)
	h := r.Histogram("lat")
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	m := r.Snapshot().Flatten()
	if m["c"] != 7 {
		t.Fatalf("c=%v", m["c"])
	}
	if m["lat.count"] != 1000 {
		t.Fatalf("lat.count=%v", m["lat.count"])
	}
	// Uniform 1..1000: bucketed quantiles within ~6% of exact.
	checks := map[string]float64{"lat.p50": 500, "lat.p95": 950, "lat.p99": 990}
	for k, want := range checks {
		if got := m[k]; got < want*0.94 || got > want*1.06 {
			t.Fatalf("%s=%v want ~%v", k, got, want)
		}
	}
	if m["lat.max"] != 1000 {
		t.Fatalf("lat.max=%v", m["lat.max"])
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	if g.Value() != 0 {
		t.Fatal("zero gauge must read 0")
	}
	g.Set(4)
	g.Add(-1.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge=%v want 2.5", g.Value())
	}
}

func TestVisitNumericMatchesFlatten(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(7)
	r.Gauge("g").Set(2.5)
	h := r.Histogram("lat")
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	want := r.Snapshot().Flatten()
	got := map[string]float64{}
	r.VisitNumeric(func(name string, v float64) { got[name] = v })
	if len(got) != len(want) {
		t.Fatalf("visit saw %d readings, flatten has %d", len(got), len(want))
	}
	for k, wv := range want {
		if got[k] != wv {
			t.Fatalf("%s: visit=%v flatten=%v", k, got[k], wv)
		}
	}
}

// visitSink keeps the closure from being optimized away in the alloc test.
var visitSink float64

// TestVisitNumericAllocBudget pins the sampling fast path at zero
// allocations per steady-state visit (mirroring the engine's
// TestScheduleFireAllocBudget): after the first visit caches the histogram
// sub-key strings, a full pass over the registry must not allocate at all.
func TestVisitNumericAllocBudget(t *testing.T) {
	r := NewRegistry()
	for _, n := range []string{"a", "b", "c"} {
		r.Counter("ctr." + n).Add(3)
		r.Gauge("g." + n).Set(1.5)
		r.Histogram("h." + n).Observe(100)
	}
	visit := func() {
		r.VisitNumeric(func(name string, v float64) { visitSink += v })
	}
	visit() // warm: builds the histogram sub-key cache
	if avg := testing.AllocsPerRun(1000, visit); avg != 0 {
		t.Fatalf("steady-state VisitNumeric: %v allocs/op, want 0", avg)
	}
}

func BenchmarkVisitNumeric(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 8; i++ {
		r.Counter(fmt.Sprintf("ctr.%d", i)).Add(uint64(i))
		r.Gauge(fmt.Sprintf("g.%d", i)).Set(float64(i))
		r.Histogram(fmt.Sprintf("h.%d", i)).Observe(int64(i * 1000))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.VisitNumeric(func(name string, v float64) { visitSink += v })
	}
}
