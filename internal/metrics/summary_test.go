package metrics

import (
	"math"
	"testing"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Stddev() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty summary must read zero")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 || s.Mean() != 5 {
		t.Fatalf("n=%d mean=%v", s.N(), s.Mean())
	}
	if got := s.Stddev(); math.Abs(got-2.138) > 0.001 {
		t.Fatalf("stddev=%v", got)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max=%v/%v", s.Min(), s.Max())
	}
}

func TestSummaryMergeEmptySides(t *testing.T) {
	var a, b Summary
	a.Add(3)
	a.Merge(b) // merging empty is a no-op
	if a.N() != 1 || a.Mean() != 3 {
		t.Fatalf("merge(empty) changed summary: %+v", a)
	}
	b.Merge(a) // merging into empty copies
	if b.N() != 1 || b.Mean() != 3 || b.Min() != 3 || b.Max() != 3 {
		t.Fatalf("empty.Merge broken: %+v", b)
	}
}

func TestParseCell(t *testing.T) {
	cases := []struct {
		in     string
		v      float64
		suffix string
		ok     bool
	}{
		{"85%", 85, "%", true},
		{"+5%", 5, "%", true},
		{"-3%", -3, "%", true},
		{"1.23", 1.23, "", true},
		{"12", 12, "", true},
		{"2.03x", 2.03, "x", true},
		{"548ms", 548, "ms", true},
		{"inf", 0, "", false},
		{"#####.....", 0, "", false},
		{"masstree", 0, "", false},
		{"", 0, "", false},
		{"1.5q", 0, "", false},
	}
	for _, c := range cases {
		v, suffix, ok := ParseCell(c.in)
		if ok != c.ok || v != c.v || suffix != c.suffix {
			t.Fatalf("ParseCell(%q) = %v %q %v, want %v %q %v", c.in, v, suffix, ok, c.v, c.suffix, c.ok)
		}
	}
}

func TestFormatCell(t *testing.T) {
	var s Summary
	s.Add(85)
	if got := FormatCell(s, "%"); got != "85%" {
		t.Fatalf("single-sample cell %q", got)
	}
	s.Add(87)
	s.Add(89)
	want := "87±2% [85,89]"
	if got := FormatCell(s, "%"); got != want {
		t.Fatalf("aggregated cell %q want %q", got, want)
	}
}
