// Package metrics provides the measurement toolkit used by experiments:
// latency histograms with percentile estimation, counters, mean/stddev
// accumulators and time series. It has no dependency on the simulator so it
// can be unit-tested in isolation and reused by the benchmark harness.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Histogram is a log-bucketed histogram of non-negative int64 samples
// (typically nanoseconds). Buckets are powers of two subdivided linearly,
// HDR-histogram style, giving a bounded relative error (~1/subBuckets) at
// every magnitude with O(1) insert.
type Histogram struct {
	counts []uint64
	total  uint64
	sum    float64
	max    int64
	min    int64
}

const (
	subBucketBits = 5 // 32 sub-buckets per power of two => <=3.1% rel. error
	subBuckets    = 1 << subBucketBits
	numBuckets    = (64 - subBucketBits) * subBuckets
)

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]uint64, numBuckets), min: math.MaxInt64}
}

func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < subBuckets {
		return int(v)
	}
	// Highest set bit beyond the sub-bucket range selects the major bucket;
	// the next subBucketBits bits select the minor bucket.
	msb := 63 - leadingZeros64(uint64(v))
	shift := msb - subBucketBits
	minor := int(v>>uint(shift)) & (subBuckets - 1)
	major := shift + 1
	return major*subBuckets + minor
}

func bucketLow(i int) int64 {
	major := i / subBuckets
	minor := i % subBuckets
	if major == 0 {
		return int64(minor)
	}
	shift := major - 1
	return (int64(subBuckets) + int64(minor)) << uint(shift)
}

func leadingZeros64(x uint64) int {
	n := 0
	if x == 0 {
		return 64
	}
	for x&(1<<63) == 0 {
		x <<= 1
		n++
	}
	return n
}

// Observe records one sample. Negative samples are clamped to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)]++
	h.total++
	h.sum += float64(v)
	if v > h.max {
		h.max = v
	}
	if v < h.min {
		h.min = v
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the mean of recorded samples, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Max returns the largest recorded sample, or 0 when empty.
func (h *Histogram) Max() int64 {
	if h.total == 0 {
		return 0
	}
	return h.max
}

// Min returns the smallest recorded sample, or 0 when empty.
func (h *Histogram) Min() int64 {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Quantile returns an estimate of the q-quantile (0 <= q <= 1) of the
// recorded samples, or 0 when empty. The estimate is the lower bound of the
// bucket containing the quantile, so error is bounded by the bucket width.
func (h *Histogram) Quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		// Return the floor of the bucket containing the minimum so that
		// Quantile is monotone in q (interior quantiles are bucket floors).
		return bucketLow(bucketIndex(h.min))
	}
	if q >= 1 {
		return h.max
	}
	rank := uint64(math.Ceil(q * float64(h.total)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			lo := bucketLow(i)
			if lo > h.max {
				lo = h.max
			}
			return lo
		}
	}
	return h.max
}

// P50, P95, P99 are common quantile shorthands.
func (h *Histogram) P50() int64 { return h.Quantile(0.50) }
func (h *Histogram) P95() int64 { return h.Quantile(0.95) }
func (h *Histogram) P99() int64 { return h.Quantile(0.99) }

// Reset clears all recorded samples.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total = 0
	h.sum = 0
	h.max = 0
	h.min = math.MaxInt64
}

// Merge adds all samples of o into h.
func (h *Histogram) Merge(o *Histogram) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
	h.sum += o.sum
	if o.total > 0 {
		if o.max > h.max {
			h.max = o.max
		}
		if o.min < h.min {
			h.min = o.min
		}
	}
}

func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.0f p50=%d p95=%d p99=%d max=%d",
		h.total, h.Mean(), h.P50(), h.P95(), h.P99(), h.Max())
}

// ExactQuantile computes the exact quantile of a small sample slice; used by
// tests to validate Histogram and by experiments with few samples.
func ExactQuantile(samples []int64, q float64) int64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]int64(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	rank := int(math.Ceil(q*float64(len(s)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(s) {
		rank = len(s) - 1
	}
	return s[rank]
}
