package metrics

import "testing"

// FuzzHistogramQuantile drives the bucketed histogram with arbitrary sample
// streams, checking structural invariants against the exact quantile.
func FuzzHistogramQuantile(f *testing.F) {
	f.Add([]byte{1, 2, 3, 200, 255})
	f.Add([]byte{0})
	f.Fuzz(func(t *testing.T, data []byte) {
		h := NewHistogram()
		var samples []int64
		for i := 0; i+1 < len(data); i += 2 {
			v := int64(data[i])<<8 | int64(data[i+1])
			v = v * v // spread across magnitudes
			h.Observe(v)
			samples = append(samples, v)
		}
		if h.Count() != uint64(len(samples)) {
			t.Fatalf("count %d != %d", h.Count(), len(samples))
		}
		if len(samples) == 0 {
			return
		}
		for _, q := range []float64{0, 0.5, 0.95, 1} {
			est := h.Quantile(q)
			exact := ExactQuantile(samples, q)
			if est > h.Max() || (q > 0 && est > exact) && float64(est-exact) > 0.04*float64(exact)+1 {
				t.Fatalf("q=%v est=%d exact=%d max=%d", q, est, exact, h.Max())
			}
		}
		if h.Min() > h.Max() {
			t.Fatal("min > max")
		}
	})
}
