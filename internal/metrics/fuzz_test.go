package metrics

import (
	"math"
	"testing"
)

// FuzzSummaryMerge checks that merging two summaries built from the halves
// of a sample stream is equivalent (up to fp noise) to a single-pass summary
// over the whole stream — the property the multi-seed aggregation relies on.
func FuzzSummaryMerge(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6}, 3)
	f.Add([]byte{255, 0, 128}, 1)
	f.Add([]byte{7}, 0)
	f.Add([]byte{}, 5)
	f.Fuzz(func(t *testing.T, data []byte, split int) {
		var samples []float64
		for i := 0; i+1 < len(data); i += 2 {
			v := float64(int64(data[i])<<8|int64(data[i+1])) - 32768
			samples = append(samples, v/16)
		}
		if split < 0 {
			split = -split
		}
		if len(samples) > 0 {
			split %= len(samples) + 1
		} else {
			split = 0
		}
		var a, b, whole Summary
		for i, v := range samples {
			if i < split {
				a.Add(v)
			} else {
				b.Add(v)
			}
			whole.Add(v)
		}
		a.Merge(b)
		if a.N() != whole.N() {
			t.Fatalf("merged n=%d want %d", a.N(), whole.N())
		}
		if a.Min() != whole.Min() || a.Max() != whole.Max() {
			t.Fatalf("merged min/max %v/%v want %v/%v", a.Min(), a.Max(), whole.Min(), whole.Max())
		}
		tol := 1e-9 * (1 + math.Abs(whole.Mean()))
		if math.Abs(a.Mean()-whole.Mean()) > tol {
			t.Fatalf("merged mean %v want %v", a.Mean(), whole.Mean())
		}
		tol = 1e-9 * (1 + whole.Stddev())
		if math.Abs(a.Stddev()-whole.Stddev()) > tol {
			t.Fatalf("merged stddev %v want %v", a.Stddev(), whole.Stddev())
		}
	})
}

// FuzzHistogramQuantile drives the bucketed histogram with arbitrary sample
// streams, checking structural invariants against the exact quantile.
func FuzzHistogramQuantile(f *testing.F) {
	f.Add([]byte{1, 2, 3, 200, 255})
	f.Add([]byte{0})
	f.Fuzz(func(t *testing.T, data []byte) {
		h := NewHistogram()
		var samples []int64
		for i := 0; i+1 < len(data); i += 2 {
			v := int64(data[i])<<8 | int64(data[i+1])
			v = v * v // spread across magnitudes
			h.Observe(v)
			samples = append(samples, v)
		}
		if h.Count() != uint64(len(samples)) {
			t.Fatalf("count %d != %d", h.Count(), len(samples))
		}
		if len(samples) == 0 {
			return
		}
		for _, q := range []float64{0, 0.5, 0.95, 1} {
			est := h.Quantile(q)
			exact := ExactQuantile(samples, q)
			if est > h.Max() || (q > 0 && est > exact) && float64(est-exact) > 0.04*float64(exact)+1 {
				t.Fatalf("q=%v est=%d exact=%d max=%d", q, est, exact, h.Max())
			}
		}
		if h.Min() > h.Max() {
			t.Fatal("min > max")
		}
	})
}
