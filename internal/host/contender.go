package host

import "vsched/internal/sim"

// Contenders are synthetic co-tenants: entities that occupy hardware threads
// to induce the vCPU dynamics the paper studies (capacity loss, inactive
// periods, stragglers). Experiments use them where the paper used competing
// VMs plus host scheduler tunables.

// NewStressor creates an always-runnable CFS entity with the given weight
// (a sysbench-style CPU hog in a co-located VM). It shares the thread fairly
// with other CFS entities according to weight.
func NewStressor(h *Host, name string, t *Thread, weight int64) *Entity {
	e := h.NewEntity(name, t, weight, NopClient{})
	e.Wake()
	return e
}

// PatternContender occupies its thread for `on` CPU time, sleeps for `off`,
// and repeats — a square-wave co-tenant. It runs in the host's realtime
// class, so while it is on, the vCPU sharing the thread is deterministically
// inactive. This is the controlled-experiment replacement for the paper's
// combination of CPU bandwidth control and granularity tunables: it pins a
// vCPU's inactive period to `on` and its active period to `off`.
type PatternContender struct {
	entity    *Entity
	eng       *sim.Engine
	on, off   sim.Duration
	remaining sim.Duration
	since     sim.Time
	sleeping  bool
	stopped   bool
	stopEv    sim.Event
}

// NewPatternContender creates and starts a pattern contender on thread t.
// The first burst begins at `phase` from now; bursts then repeat with period
// on+off. on and off must be positive.
func NewPatternContender(h *Host, name string, t *Thread, on, off, phase sim.Duration) *PatternContender {
	if on <= 0 || off < 0 {
		panic("host: pattern contender needs on > 0 and off >= 0")
	}
	p := &PatternContender{eng: h.Engine(), on: on, off: off}
	p.entity = h.NewEntity(name, t, DefaultWeight, p)
	p.entity.SetRT(true)
	h.Engine().After(phase, p.burst)
	return p
}

// Entity returns the underlying schedulable entity.
func (p *PatternContender) Entity() *Entity { return p.entity }

// Stop permanently halts the contender after the current burst.
func (p *PatternContender) Stop() { p.stopped = true }

// SetPattern changes the duty cycle; takes effect from the next burst.
func (p *PatternContender) SetPattern(on, off sim.Duration) {
	if on <= 0 || off < 0 {
		panic("host: pattern contender needs on > 0 and off >= 0")
	}
	p.on, p.off = on, off
}

func (p *PatternContender) burst() {
	if p.stopped {
		return
	}
	p.sleeping = false
	p.remaining = p.on
	p.entity.Wake()
}

// Resumed implements Client: start the self-block countdown for the rest of
// this burst's CPU budget.
func (p *PatternContender) Resumed(now sim.Time, _ float64) {
	p.since = now
	p.stopEv = p.eng.After(p.remaining, p.endBurst)
}

// Stopped implements Client.
func (p *PatternContender) Stopped(now sim.Time) {
	if p.sleeping {
		return // our own Block at burst end
	}
	// Preempted mid-burst (e.g. by another RT entity): remember how much
	// burst is left.
	p.remaining -= now.Sub(p.since)
	if p.remaining < 0 {
		p.remaining = 0
	}
	p.stopEv.Cancel()
	p.stopEv = sim.Event{}
}

// SpeedChanged implements Client. The contender consumes wall time, not
// cycles, so speed changes are irrelevant to it.
func (p *PatternContender) SpeedChanged(sim.Time, float64) {}

func (p *PatternContender) endBurst() {
	p.stopEv = sim.Event{}
	p.sleeping = true
	p.entity.Block()
	if p.stopped {
		return
	}
	if p.off == 0 {
		p.eng.After(0, p.burst)
		return
	}
	p.eng.After(p.off, p.burst)
}
