package host

import (
	"fmt"
	"math/rand"
	"testing"

	"vsched/internal/sim"
)

// checkHostInvariants asserts the structural properties of the host
// scheduler at quiescent points: every entity is in a legal state, a
// Running entity is the current of exactly its home thread, queues hold
// only Runnable entities without duplicates, and a thread with queued
// entities is never left idle.
func checkHostInvariants(t *testing.T, h *Host) {
	t.Helper()
	for i := 0; i < h.NumThreads(); i++ {
		th := h.Thread(i)
		seen := map[*Entity]bool{}
		if cur := th.Current(); cur != nil {
			if cur.State() != Running {
				t.Fatalf("thread %d current in state %v", i, cur.State())
			}
			if cur.Thread() != th {
				t.Fatalf("thread %d current homed on %d", i, cur.Thread().ID())
			}
			seen[cur] = true
		}
		for _, e := range th.queue {
			if seen[e] {
				t.Fatalf("entity %s appears twice on thread %d", e.Name(), i)
			}
			seen[e] = true
			if e.State() != Runnable {
				t.Fatalf("queued entity %s in state %v", e.Name(), e.State())
			}
			if e.Thread() != th {
				t.Fatalf("queued entity %s homed elsewhere", e.Name())
			}
		}
		if th.Current() == nil && len(th.queue) > 0 {
			t.Fatalf("thread %d idle with %d runnable entities", i, len(th.queue))
		}
	}
}

// TestHostSchedulerStateFuzz drives the host scheduler with random
// operation sequences (wake, block, migrate, reweight, bandwidth changes)
// and validates invariants continuously.
func TestHostSchedulerStateFuzz(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			eng := sim.NewEngine(seed)
			cfg := DefaultConfig()
			cfg.Sockets = 1 + rng.Intn(2)
			cfg.CoresPerSocket = 1 + rng.Intn(3)
			cfg.ThreadsPerCore = 1 + rng.Intn(2)
			h := New(eng, cfg)
			n := h.NumThreads()

			var ents []*Entity
			for i := 0; i < 2+rng.Intn(8); i++ {
				e := h.NewEntity(fmt.Sprintf("e%d", i), h.Thread(rng.Intn(n)),
					256+rng.Int63n(2048), NopClient{})
				if rng.Intn(4) == 0 {
					e.SetRT(true)
				}
				ents = append(ents, e)
			}

			for step := 0; step < 400; step++ {
				e := ents[rng.Intn(len(ents))]
				switch rng.Intn(6) {
				case 0:
					e.Wake()
				case 1:
					e.Block()
				case 2:
					e.Migrate(h.Thread(rng.Intn(n)))
				case 3:
					if !e.IsRT() {
						e.SetWeight(128 + rng.Int63n(4096))
					}
				case 4:
					e.SetBandwidth(sim.Duration(rng.Intn(80)) * sim.Millisecond)
				case 5:
					eng.RunFor(sim.Duration(rng.Intn(10)) * sim.Millisecond)
				}
				checkHostInvariants(t, h)
			}
			// Steady state: all woken entities still make progress.
			for _, e := range ents {
				e.SetBandwidth(0)
				e.Wake()
			}
			before := make([]sim.Duration, len(ents))
			for i, e := range ents {
				before[i] = e.RunTime()
			}
			eng.RunFor(2 * sim.Second)
			checkHostInvariants(t, h)
			progressed := 0
			for i, e := range ents {
				if e.RunTime() > before[i] {
					progressed++
				}
			}
			if progressed == 0 {
				t.Fatal("no entity progressed after the fuzz sequence")
			}
		})
	}
}
