package host

import (
	"fmt"

	"vsched/internal/sim"
)

// EntityState is the hypervisor-side scheduling state of an entity.
type EntityState int

const (
	// Blocked: the entity has no work (a halted vCPU, a sleeping contender).
	Blocked EntityState = iota
	// Runnable: the entity wants the CPU but another entity holds it. For a
	// vCPU this is the "inactive with pending work" state — steal time
	// accrues here.
	Runnable
	// Running: the entity currently executes on its hardware thread.
	Running
	// Throttled: CPU bandwidth control exhausted the entity's quota; it is
	// barred from running until the next refill. The guest perceives this
	// exactly like preemption, so steal time accrues here too.
	Throttled
)

func (s EntityState) String() string {
	switch s {
	case Blocked:
		return "blocked"
	case Runnable:
		return "runnable"
	case Running:
		return "running"
	case Throttled:
		return "throttled"
	}
	return "invalid"
}

// DefaultWeight is the CFS weight of a nice-0 entity.
const DefaultWeight = 1024

// Client receives notifications about an entity's execution. The guest
// layers a vCPU on top of an Entity through this interface.
//
// Contract: callbacks run inside the host scheduler's critical section and
// MUST NOT synchronously call Entity methods that change schedulability
// (Wake, Block, Migrate, SetBandwidth). Defer such work with a zero-delay
// engine event.
type Client interface {
	// Resumed fires when the entity transitions to Running, with its current
	// effective speed in cycles per nanosecond.
	Resumed(now sim.Time, speed float64)
	// Stopped fires when the entity stops Running for any reason
	// (preemption, throttling, or its own Block call).
	Stopped(now sim.Time)
	// SpeedChanged fires while Running when the effective speed changes
	// (SMT sibling activity, turbo, thread speed factor).
	SpeedChanged(now sim.Time, speed float64)
}

// NopClient is a Client that ignores all notifications; synthetic contenders
// that don't track progress embed it.
type NopClient struct{}

func (NopClient) Resumed(sim.Time, float64)      {}
func (NopClient) Stopped(sim.Time)               {}
func (NopClient) SpeedChanged(sim.Time, float64) {}

// Entity is anything the hypervisor schedules on a hardware thread: a guest
// vCPU or a synthetic co-tenant contender.
type Entity struct {
	name   string
	host   *Host
	seq    uint64
	client Client

	thread *Thread // home thread (runqueue it lives on)
	state  EntityState

	// CFS parameters. RT entities (rt=true) model SCHED_FIFO co-tenants:
	// they always beat CFS entities and are never preempted by them.
	weight   int64
	rt       bool
	vruntime int64 // weighted nanoseconds

	// CPU bandwidth control; quota==0 means unlimited.
	quota      sim.Duration
	periodUsed sim.Duration
	refill     sim.Event

	// Accounting.
	lastChange  sim.Time
	runNS       sim.Duration // total time spent Running
	stealNS     sim.Duration // total time Runnable or Throttled
	preemptions uint64       // involuntary Running -> Runnable/Throttled
	resumes     uint64       // transitions into Running

	// observers are called after every state transition, in attach order.
	// The vtrace package uses them to build timelines and event traces.
	observers []func(now sim.Time, from, to EntityState)
}

// AddObserver registers a state-transition callback. Multiple observers may
// attach to one entity; each sees every transition, in attach order.
// Observers must not synchronously change schedulability (same contract as
// Client callbacks).
func (e *Entity) AddObserver(fn func(now sim.Time, from, to EntityState)) {
	e.observers = append(e.observers, fn)
}

// NewEntity registers a new schedulable entity homed on thread t. It starts
// Blocked; call Wake to make it runnable. A nil client panics — use
// NopClient instead.
func (h *Host) NewEntity(name string, t *Thread, weight int64, client Client) *Entity {
	if client == nil {
		panic("host: nil Client for entity " + name)
	}
	if weight <= 0 {
		panic(fmt.Sprintf("host: non-positive weight %d for entity %s", weight, name))
	}
	h.seq++
	e := &Entity{
		name:       name,
		host:       h,
		seq:        h.seq,
		client:     client,
		thread:     t,
		state:      Blocked,
		weight:     weight,
		lastChange: h.eng.Now(),
	}
	e.vruntime = t.minVruntime
	h.entities = append(h.entities, e)
	return e
}

// Name returns the entity's name.
func (e *Entity) Name() string { return e.name }

// State returns the current scheduling state.
func (e *Entity) State() EntityState { return e.state }

// Thread returns the hardware thread whose runqueue the entity is homed on.
func (e *Entity) Thread() *Thread { return e.thread }

// IsRT reports whether the entity is in the (FIFO) realtime class.
func (e *Entity) IsRT() bool { return e.rt }

// SetRT moves the entity into or out of the realtime class. Only valid
// before the entity first wakes.
func (e *Entity) SetRT(rt bool) {
	if e.state != Blocked {
		panic("host: SetRT on a live entity")
	}
	e.rt = rt
}

// Steal returns the cumulative time the entity has spent wanting the CPU
// without running (Runnable + Throttled). This is the counter a paravirt
// guest reads as steal time; it is the only host-internal quantity vSched is
// allowed to consume.
func (e *Entity) Steal() sim.Duration {
	s := e.stealNS
	if e.state == Runnable || e.state == Throttled {
		s += e.host.eng.Now().Sub(e.lastChange)
	}
	return s
}

// RunTime returns the cumulative time spent Running.
func (e *Entity) RunTime() sim.Duration {
	r := e.runNS
	if e.state == Running {
		r += e.host.eng.Now().Sub(e.lastChange)
	}
	return r
}

// Preemptions returns how many times the entity was involuntarily
// descheduled. Ground truth for experiments; the guest-side vact must infer
// this from steal jumps instead.
func (e *Entity) Preemptions() uint64 { return e.preemptions }

// Resumes returns how many times the entity transitioned into Running.
func (e *Entity) Resumes() uint64 { return e.resumes }

// setState performs bookkeeping common to all transitions.
func (e *Entity) setState(to EntityState) {
	now := e.host.eng.Now()
	from := e.state
	if from == to {
		return
	}
	d := now.Sub(e.lastChange)
	switch from {
	case Running:
		e.runNS += d
	case Runnable, Throttled:
		e.stealNS += d
	}
	e.state = to
	e.lastChange = now
	if to == Running {
		e.resumes++
	}
	if from == Running && (to == Runnable || to == Throttled) {
		e.preemptions++
	}
	for _, fn := range e.observers {
		fn(now, from, to)
	}
	for _, fn := range e.host.observers {
		fn(e, now, from, to)
	}
}

// SetBandwidth caps the entity at quota per host bandwidth period. quota==0
// removes the cap. The cap takes effect from the current period.
func (e *Entity) SetBandwidth(quota sim.Duration) {
	if quota < 0 {
		panic("host: negative bandwidth quota")
	}
	e.quota = quota
	if quota == 0 {
		e.refill.Cancel()
		e.refill = sim.Event{}
		e.periodUsed = 0
		if e.state == Throttled {
			e.unthrottle()
		}
		return
	}
	if !e.refill.Active() {
		e.scheduleRefill()
	}
	// A running entity's slice must now also respect the quota boundary.
	if e.state == Running {
		e.thread.resliceCurrent()
	}
}

func (e *Entity) scheduleRefill() {
	period := e.host.cfg.BandwidthPeriod
	e.refill = e.host.eng.After(period, func() {
		e.periodUsed = 0
		if e.quota == 0 {
			e.refill = sim.Event{}
			return
		}
		e.scheduleRefill()
		if e.state == Throttled {
			e.unthrottle()
		} else if e.state == Running {
			e.thread.resliceCurrent()
		}
	})
}

func (e *Entity) unthrottle() {
	e.setState(Runnable)
	e.thread.enqueue(e, true)
}

// SetWeight changes the CFS weight (nice level). Takes effect immediately.
func (e *Entity) SetWeight(w int64) {
	if w <= 0 {
		panic("host: non-positive weight")
	}
	if e.state == Running {
		e.thread.syncCurrent()
	}
	e.weight = w
}

// Wake makes a Blocked entity runnable on its home thread. Waking an entity
// that is not Blocked is a harmless no-op (concurrent kicks are normal).
func (e *Entity) Wake() {
	if e.state != Blocked {
		return
	}
	if e.quota > 0 && e.periodUsed >= e.quota {
		e.setState(Throttled)
		return
	}
	// CFS wakeup placement: don't let long sleepers hoard vruntime credit;
	// cap the credit at one scheduling latency. The thread's accounting must
	// be current first, or min_vruntime lags behind the running entity and
	// the clamp hands out unbounded credit.
	e.thread.syncCurrent()
	if !e.rt {
		bonus := int64(e.thread.minGranularity())
		if v := e.thread.minVruntime - bonus; e.vruntime < v {
			e.vruntime = v
		}
	}
	e.setState(Runnable)
	e.thread.enqueue(e, true)
}

// Block removes the entity from scheduling (vCPU halt / contender sleep).
// Blocking an already-Blocked entity is a no-op.
func (e *Entity) Block() {
	switch e.state {
	case Blocked:
		return
	case Running:
		e.thread.stopCurrent(Blocked)
		e.thread.schedule()
	case Runnable:
		e.thread.dequeue(e)
		e.setState(Blocked)
	case Throttled:
		e.setState(Blocked)
	}
}

// Migrate moves the entity to another hardware thread's runqueue (vCPU
// repinning / VM migration). A Running entity is stopped first and resumes
// scheduling on the target according to its vruntime there.
func (e *Entity) Migrate(dst *Thread) {
	if dst == e.thread {
		return
	}
	src := e.thread
	switch e.state {
	case Running:
		src.stopCurrent(Runnable)
		src.dequeue(e)
		src.schedule()
	case Runnable:
		src.dequeue(e)
	}
	// Renormalize vruntime into the destination queue's frame.
	e.vruntime = e.vruntime - src.minVruntime + dst.minVruntime
	e.thread = dst
	if e.state == Runnable {
		dst.enqueue(e, true)
	}
}
