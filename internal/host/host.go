// Package host models the physical machine and the hypervisor's CPU
// scheduler — the layer below the guest that the paper's vSched runs inside
// of but cannot modify.
//
// The model is a KVM-like setup: a topology of sockets, cores and SMT
// hardware threads; a per-thread CFS-style scheduler with weights, wakeup
// preemption and minimum-granularity time slices; CPU bandwidth control
// (quota/period throttling); and an effective-speed model capturing SMT
// sibling contention and a simple turbo/DVFS boost. Everything a guest may
// legitimately observe in a real cloud VM — steal time, inactive periods,
// preemptions, capacity fluctuation — is an emergent artifact of this
// scheduler, not an oracle value.
//
// Entities scheduled on hardware threads are either guest vCPUs (driven by
// internal/guest via the Client interface) or synthetic contenders
// representing co-located tenants (see contender.go).
package host

import (
	"fmt"

	"vsched/internal/cachemodel"
	"vsched/internal/sim"
)

// Config describes the physical machine and host scheduler parameters.
type Config struct {
	Sockets        int
	CoresPerSocket int
	ThreadsPerCore int // 1 or 2

	// BaseSpeed is the work rate of a thread in cycles per nanosecond with
	// no SMT contention and no turbo (i.e. nominal frequency).
	BaseSpeed float64
	// SMTFactor is the per-thread speed multiplier when both siblings of a
	// core are busy (each runs slower than alone). 1.0 disables SMT
	// contention.
	SMTFactor float64
	// TurboFactor is the speed multiplier applied when a core is the only
	// busy core in its socket (opportunistic frequency boost). 1.0 disables.
	TurboFactor float64

	// MinGranularity is the host CFS time slice quantum: how long an entity
	// runs before the scheduler considers switching.
	MinGranularity sim.Duration
	// WakeupGranularity limits wakeup preemption: a waking entity preempts
	// the running one only if its vruntime lag exceeds this.
	WakeupGranularity sim.Duration
	// BandwidthPeriod is the CPU bandwidth control refill period.
	BandwidthPeriod sim.Duration
}

// DefaultConfig mirrors the paper's testbed at the fidelity the simulation
// needs: dual-thread cores, mild SMT contention, small turbo headroom, and
// Linux-like host scheduler granularities.
func DefaultConfig() Config {
	return Config{
		Sockets:           4,
		CoresPerSocket:    20,
		ThreadsPerCore:    2,
		BaseSpeed:         2.0,
		SMTFactor:         0.62,
		TurboFactor:       1.15,
		MinGranularity:    3 * sim.Millisecond,
		WakeupGranularity: 1 * sim.Millisecond,
		BandwidthPeriod:   100 * sim.Millisecond,
	}
}

// ThreadID identifies a hardware thread within a Host.
type ThreadID int

// Host is the physical machine plus hypervisor scheduler state.
type Host struct {
	eng      *sim.Engine
	cfg      Config
	threads  []*Thread
	entities []*Entity
	seq      uint64
	// busyCoreCount[s] is the number of cores in socket s with at least one
	// running entity; maintained incrementally for the turbo model.
	busyCoreCount []int
	// observers see every state transition of every entity — including
	// entities created after they were installed. The vtrace package taps
	// the whole host through this hook; several tracers (or a tracer plus a
	// latency-attribution profiler) may stack.
	observers []func(e *Entity, now sim.Time, from, to EntityState)
}

// New builds a host with the given configuration. It validates the topology
// and panics on nonsensical configurations (these are programming errors in
// experiment setup, not runtime conditions).
func New(eng *sim.Engine, cfg Config) *Host {
	if cfg.Sockets <= 0 || cfg.CoresPerSocket <= 0 || cfg.ThreadsPerCore <= 0 || cfg.ThreadsPerCore > 2 {
		panic(fmt.Sprintf("host: invalid topology %d/%d/%d", cfg.Sockets, cfg.CoresPerSocket, cfg.ThreadsPerCore))
	}
	if cfg.BaseSpeed <= 0 {
		panic("host: BaseSpeed must be positive")
	}
	if cfg.SMTFactor <= 0 || cfg.SMTFactor > 1 {
		panic("host: SMTFactor must be in (0,1]")
	}
	if cfg.TurboFactor < 1 {
		panic("host: TurboFactor must be >= 1")
	}
	if cfg.MinGranularity <= 0 {
		panic("host: MinGranularity must be positive")
	}
	if cfg.BandwidthPeriod <= 0 {
		panic("host: BandwidthPeriod must be positive")
	}
	h := &Host{eng: eng, cfg: cfg, busyCoreCount: make([]int, cfg.Sockets)}
	n := cfg.Sockets * cfg.CoresPerSocket * cfg.ThreadsPerCore
	h.threads = make([]*Thread, n)
	id := 0
	for s := 0; s < cfg.Sockets; s++ {
		for c := 0; c < cfg.CoresPerSocket; c++ {
			for t := 0; t < cfg.ThreadsPerCore; t++ {
				h.threads[id] = &Thread{
					host:        h,
					id:          ThreadID(id),
					socket:      s,
					core:        c,
					slot:        t,
					speedFactor: 1.0,
				}
				id++
			}
		}
	}
	return h
}

// Engine returns the simulation engine the host runs on.
func (h *Host) Engine() *sim.Engine { return h.eng }

// Config returns the host configuration.
func (h *Host) Config() Config { return h.cfg }

// NumThreads returns the number of hardware threads.
func (h *Host) NumThreads() int { return len(h.threads) }

// Thread returns the i-th hardware thread (panics when out of range).
func (h *Host) Thread(i int) *Thread { return h.threads[i] }

// ThreadAt returns the hardware thread at (socket, core, slot).
func (h *Host) ThreadAt(socket, core, slot int) *Thread {
	idx := (socket*h.cfg.CoresPerSocket+core)*h.cfg.ThreadsPerCore + slot
	return h.threads[idx]
}

// Relation returns the topological relation between two hardware threads:
// Self for the same thread (stacked entities), SMT for siblings of one core,
// Socket for distinct cores in one socket, and Cross otherwise.
func (h *Host) Relation(a, b ThreadID) cachemodel.Relation {
	ta, tb := h.threads[a], h.threads[b]
	switch {
	case ta == tb:
		return cachemodel.Self
	case ta.socket == tb.socket && ta.core == tb.core:
		return cachemodel.SMT
	case ta.socket == tb.socket:
		return cachemodel.Socket
	default:
		return cachemodel.Cross
	}
}

// Entities returns all entities ever registered (vCPUs and contenders).
func (h *Host) Entities() []*Entity { return h.entities }

// SetObserver replaces all host-wide state-transition observers with fn.
// Observers fire after any per-entity observers, for every entity —
// including ones created later — and must not synchronously change
// schedulability (same contract as Client callbacks). Pass nil to remove.
func (h *Host) SetObserver(fn func(e *Entity, now sim.Time, from, to EntityState)) {
	if fn == nil {
		h.observers = nil
		return
	}
	h.observers = []func(e *Entity, now sim.Time, from, to EntityState){fn}
}

// AddObserver appends a host-wide state-transition observer without
// disturbing observers already installed. Same contract as SetObserver.
func (h *Host) AddObserver(fn func(e *Entity, now sim.Time, from, to EntityState)) {
	h.observers = append(h.observers, fn)
}

// busyCores returns the number of busy cores in socket s (maintained
// incrementally by the threads).
func (h *Host) busyCores(s int) int { return h.busyCoreCount[s] }

// refreshSocketSpeeds recomputes the effective speed of every running entity
// in socket s and notifies clients whose speed changed. Called whenever any
// thread in the socket changes busy state.
func (h *Host) refreshSocketSpeeds(s int) {
	per := h.cfg.CoresPerSocket * h.cfg.ThreadsPerCore
	base := s * per
	for i := base; i < base+per; i++ {
		h.threads[i].refreshSpeed()
	}
}
