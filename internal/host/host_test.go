package host

import (
	"math"
	"testing"

	"vsched/internal/cachemodel"
	"vsched/internal/sim"
)

// recClient records activity callbacks and integrates executed cycles, the
// way the guest layer will.
type recClient struct {
	running bool
	speed   float64
	since   sim.Time
	cycles  float64
	resumes int
	stops   int
}

func (c *recClient) sync(now sim.Time) {
	if c.running {
		c.cycles += float64(now.Sub(c.since)) * c.speed
		c.since = now
	}
}
func (c *recClient) Resumed(now sim.Time, speed float64) {
	c.running = true
	c.speed = speed
	c.since = now
	c.resumes++
}
func (c *recClient) Stopped(now sim.Time) {
	c.sync(now)
	c.running = false
	c.stops++
}
func (c *recClient) SpeedChanged(now sim.Time, speed float64) {
	c.sync(now)
	c.speed = speed
}

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Sockets = 2
	cfg.CoresPerSocket = 4
	cfg.ThreadsPerCore = 2
	return cfg
}

func newTestHost(t *testing.T) (*sim.Engine, *Host) {
	t.Helper()
	eng := sim.NewEngine(1)
	return eng, New(eng, testConfig())
}

func TestTopologyAndRelations(t *testing.T) {
	_, h := newTestHost(t)
	if h.NumThreads() != 16 {
		t.Fatalf("threads=%d", h.NumThreads())
	}
	a := h.ThreadAt(0, 0, 0)
	if got := h.Relation(a.ID(), a.ID()); got != cachemodel.Self {
		t.Fatalf("self relation=%v", got)
	}
	if got := h.Relation(a.ID(), h.ThreadAt(0, 0, 1).ID()); got != cachemodel.SMT {
		t.Fatalf("smt relation=%v", got)
	}
	if got := h.Relation(a.ID(), h.ThreadAt(0, 3, 0).ID()); got != cachemodel.Socket {
		t.Fatalf("socket relation=%v", got)
	}
	if got := h.Relation(a.ID(), h.ThreadAt(1, 0, 0).ID()); got != cachemodel.Cross {
		t.Fatalf("cross relation=%v", got)
	}
	if a.Sibling() != h.ThreadAt(0, 0, 1) || h.ThreadAt(0, 0, 1).Sibling() != a {
		t.Fatal("sibling symmetry broken")
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Sockets = 0 },
		func(c *Config) { c.ThreadsPerCore = 3 },
		func(c *Config) { c.BaseSpeed = 0 },
		func(c *Config) { c.SMTFactor = 0 },
		func(c *Config) { c.TurboFactor = 0.5 },
		func(c *Config) { c.MinGranularity = 0 },
		func(c *Config) { c.BandwidthPeriod = 0 },
	}
	for i, mutate := range bad {
		cfg := testConfig()
		mutate(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("config %d should panic", i)
				}
			}()
			New(sim.NewEngine(1), cfg)
		}()
	}
}

func TestSoloEntityRunsAtTurboSpeed(t *testing.T) {
	eng, h := newTestHost(t)
	c := &recClient{}
	e := h.NewEntity("v0", h.Thread(0), DefaultWeight, c)
	e.Wake()
	eng.RunFor(100 * sim.Millisecond)
	c.sync(eng.Now())
	cfg := h.Config()
	wantSpeed := cfg.BaseSpeed * cfg.TurboFactor // alone in socket: turbo
	if math.Abs(c.speed-wantSpeed) > 1e-9 {
		t.Fatalf("speed=%v want %v", c.speed, wantSpeed)
	}
	wantCycles := wantSpeed * float64(100*sim.Millisecond)
	if math.Abs(c.cycles-wantCycles)/wantCycles > 1e-9 {
		t.Fatalf("cycles=%v want %v", c.cycles, wantCycles)
	}
	if e.Steal() != 0 {
		t.Fatalf("solo entity must have no steal, got %v", e.Steal())
	}
	if got := e.RunTime(); got != 100*sim.Millisecond {
		t.Fatalf("runtime=%v", got)
	}
}

func TestTwoEntitiesShareFairly(t *testing.T) {
	eng, h := newTestHost(t)
	th := h.Thread(0)
	a := h.NewEntity("a", th, DefaultWeight, &recClient{})
	b := h.NewEntity("b", th, DefaultWeight, &recClient{})
	a.Wake()
	b.Wake()
	eng.RunFor(1000 * sim.Millisecond)
	ra, rb := a.RunTime(), b.RunTime()
	if ra+rb < 999*sim.Millisecond {
		t.Fatalf("thread not fully used: %v + %v", ra, rb)
	}
	ratio := float64(ra) / float64(rb)
	if ratio < 0.95 || ratio > 1.05 {
		t.Fatalf("unfair split: %v vs %v", ra, rb)
	}
	// Each was runnable-not-running about half the time.
	if a.Steal() < 450*sim.Millisecond || a.Steal() > 550*sim.Millisecond {
		t.Fatalf("steal=%v", a.Steal())
	}
	if a.Preemptions() == 0 {
		t.Fatal("expected involuntary preemptions under contention")
	}
}

func TestWeightedSharing(t *testing.T) {
	eng, h := newTestHost(t)
	th := h.Thread(0)
	a := h.NewEntity("a", th, 2*DefaultWeight, &recClient{})
	b := h.NewEntity("b", th, DefaultWeight, &recClient{})
	a.Wake()
	b.Wake()
	eng.RunFor(3000 * sim.Millisecond)
	ratio := float64(a.RunTime()) / float64(b.RunTime())
	if ratio < 1.85 || ratio > 2.15 {
		t.Fatalf("weight-2 entity should get ~2x time, ratio=%v", ratio)
	}
}

func TestSMTContentionSlowsSibling(t *testing.T) {
	eng, h := newTestHost(t)
	ca, cb := &recClient{}, &recClient{}
	a := h.NewEntity("a", h.ThreadAt(0, 0, 0), DefaultWeight, ca)
	b := h.NewEntity("b", h.ThreadAt(0, 0, 1), DefaultWeight, cb)
	a.Wake()
	eng.RunFor(10 * sim.Millisecond)
	soloSpeed := ca.speed
	b.Wake()
	eng.RunFor(10 * sim.Millisecond)
	cfg := h.Config()
	// With the sibling busy both run at SMTFactor of base (no turbo change:
	// still one busy core).
	want := cfg.BaseSpeed * cfg.TurboFactor * cfg.SMTFactor
	if math.Abs(ca.speed-want) > 1e-9 || math.Abs(cb.speed-want) > 1e-9 {
		t.Fatalf("smt speeds=%v,%v want %v (solo was %v)", ca.speed, cb.speed, want, soloSpeed)
	}
	b.Block()
	eng.RunFor(1 * sim.Millisecond)
	if math.Abs(ca.speed-soloSpeed) > 1e-9 {
		t.Fatalf("speed must recover after sibling blocks: %v want %v", ca.speed, soloSpeed)
	}
}

func TestTurboDropsWhenSecondCoreBusy(t *testing.T) {
	eng, h := newTestHost(t)
	ca := &recClient{}
	a := h.NewEntity("a", h.ThreadAt(0, 0, 0), DefaultWeight, ca)
	a.Wake()
	eng.RunFor(10 * sim.Millisecond)
	cfg := h.Config()
	if math.Abs(ca.speed-cfg.BaseSpeed*cfg.TurboFactor) > 1e-9 {
		t.Fatalf("solo speed=%v", ca.speed)
	}
	b := h.NewEntity("b", h.ThreadAt(0, 1, 0), DefaultWeight, &recClient{})
	b.Wake()
	eng.RunFor(10 * sim.Millisecond)
	if math.Abs(ca.speed-cfg.BaseSpeed) > 1e-9 {
		t.Fatalf("two busy cores must disable turbo: speed=%v", ca.speed)
	}
	// Other socket is unaffected.
	cc := &recClient{}
	c := h.NewEntity("c", h.ThreadAt(1, 0, 0), DefaultWeight, cc)
	c.Wake()
	eng.RunFor(10 * sim.Millisecond)
	if math.Abs(cc.speed-cfg.BaseSpeed*cfg.TurboFactor) > 1e-9 {
		t.Fatalf("other socket should still turbo: %v", cc.speed)
	}
}

func TestBandwidthThrottling(t *testing.T) {
	eng, h := newTestHost(t)
	c := &recClient{}
	e := h.NewEntity("v0", h.Thread(0), DefaultWeight, c)
	e.SetBandwidth(50 * sim.Millisecond) // 50% of the 100ms period
	e.Wake()
	eng.RunFor(1000 * sim.Millisecond)
	run := e.RunTime()
	if run < 450*sim.Millisecond || run > 550*sim.Millisecond {
		t.Fatalf("throttled runtime=%v want ~500ms", run)
	}
	// Throttled time counts as steal (guest-visible inactivity with work).
	if e.Steal() < 400*sim.Millisecond {
		t.Fatalf("throttled steal=%v", e.Steal())
	}
	// Removing the cap restores full speed.
	e.SetBandwidth(0)
	before := e.RunTime()
	eng.RunFor(200 * sim.Millisecond)
	if got := e.RunTime() - before; got < 199*sim.Millisecond {
		t.Fatalf("uncapped runtime delta=%v", got)
	}
}

func TestPatternContenderForcesInactivity(t *testing.T) {
	eng, h := newTestHost(t)
	th := h.Thread(0)
	c := &recClient{}
	v := h.NewEntity("vcpu", th, DefaultWeight, c)
	v.Wake()
	// 5ms on / 5ms off: vCPU should be inactive half the time, in 5ms
	// chunks, starting at t=0.
	NewPatternContender(h, "noisy", th, 5*sim.Millisecond, 5*sim.Millisecond, 0)
	eng.RunFor(1000 * sim.Millisecond)
	run := v.RunTime()
	if run < 450*sim.Millisecond || run > 550*sim.Millisecond {
		t.Fatalf("vcpu runtime=%v want ~500ms", run)
	}
	steal := v.Steal()
	if steal < 450*sim.Millisecond || steal > 550*sim.Millisecond {
		t.Fatalf("vcpu steal=%v want ~500ms", steal)
	}
	// ~100 bursts in 1s -> ~100 preemptions.
	if p := v.Preemptions(); p < 90 || p > 110 {
		t.Fatalf("preemptions=%d want ~100", p)
	}
}

func TestRTPreemptsImmediatelyAndIsNotPreempted(t *testing.T) {
	eng, h := newTestHost(t)
	th := h.Thread(0)
	v := h.NewEntity("vcpu", th, DefaultWeight, &recClient{})
	v.Wake()
	eng.RunFor(10 * sim.Millisecond)
	p := NewPatternContender(h, "rt", th, 8*sim.Millisecond, 100*sim.Millisecond, 0)
	eng.RunFor(1 * sim.Millisecond)
	if p.Entity().State() != Running {
		t.Fatalf("rt contender must preempt instantly, state=%v", p.Entity().State())
	}
	if v.State() != Runnable {
		t.Fatalf("vcpu must be inactive, state=%v", v.State())
	}
	// A CFS wake must not preempt RT.
	w := h.NewEntity("w", th, DefaultWeight, &recClient{})
	w.Wake()
	eng.RunFor(1 * sim.Millisecond)
	if p.Entity().State() != Running {
		t.Fatal("CFS wakee preempted an RT entity")
	}
	eng.RunFor(20 * sim.Millisecond)
	if p.Entity().State() != Blocked {
		t.Fatalf("rt contender should sleep after burst, state=%v", p.Entity().State())
	}
}

func TestWakeupPreemptionOfHog(t *testing.T) {
	eng, h := newTestHost(t)
	th := h.Thread(0)
	NewStressor(h, "hog", th, DefaultWeight)
	eng.RunFor(500 * sim.Millisecond)
	c := &recClient{}
	v := h.NewEntity("vcpu", th, DefaultWeight, c)
	v.Wake()
	eng.RunFor(1 * sim.Microsecond)
	if v.State() != Running {
		t.Fatalf("fresh wakee should preempt a long-running hog, state=%v", v.State())
	}
}

func TestBlockWakeIdempotent(t *testing.T) {
	eng, h := newTestHost(t)
	e := h.NewEntity("e", h.Thread(0), DefaultWeight, &recClient{})
	e.Block() // blocked -> blocked
	e.Wake()
	e.Wake() // runnable/running -> no-op
	eng.RunFor(1 * sim.Millisecond)
	if e.State() != Running {
		t.Fatalf("state=%v", e.State())
	}
	e.Block()
	e.Block()
	if e.State() != Blocked {
		t.Fatalf("state=%v", e.State())
	}
	eng.RunFor(1 * sim.Millisecond)
	if e.RunTime() != 1*sim.Millisecond {
		t.Fatalf("runtime=%v", e.RunTime())
	}
}

func TestBlockWhileRunnable(t *testing.T) {
	eng, h := newTestHost(t)
	th := h.Thread(0)
	a := h.NewEntity("a", th, DefaultWeight, &recClient{})
	b := h.NewEntity("b", th, DefaultWeight, &recClient{})
	a.Wake()
	b.Wake()
	// One of them is queued; block it while queued.
	var queued *Entity
	if a.State() == Runnable {
		queued = a
	} else {
		queued = b
	}
	queued.Block()
	if queued.State() != Blocked {
		t.Fatalf("state=%v", queued.State())
	}
	eng.RunFor(10 * sim.Millisecond)
	if queued.RunTime() != 0 {
		t.Fatal("blocked-from-queue entity must not run")
	}
}

func TestMigrate(t *testing.T) {
	eng, h := newTestHost(t)
	src, dst := h.Thread(0), h.ThreadAt(1, 2, 0)
	c := &recClient{}
	e := h.NewEntity("e", src, DefaultWeight, c)
	e.Wake()
	eng.RunFor(10 * sim.Millisecond)
	e.Migrate(dst)
	eng.RunFor(10 * sim.Millisecond)
	if e.Thread() != dst {
		t.Fatal("entity not on destination thread")
	}
	if e.State() != Running {
		t.Fatalf("migrated entity should resume, state=%v", e.State())
	}
	if src.Current() != nil {
		t.Fatal("source thread should be idle")
	}
	// Migrating to the same thread is a no-op.
	e.Migrate(dst)
	if e.State() != Running {
		t.Fatal("self-migration broke state")
	}
	// Runtime keeps accumulating on the new thread.
	if e.RunTime() < 19*sim.Millisecond {
		t.Fatalf("runtime=%v", e.RunTime())
	}
}

func TestStackedEntitiesNeverRunSimultaneously(t *testing.T) {
	eng, h := newTestHost(t)
	th := h.Thread(0)
	a := h.NewEntity("a", th, DefaultWeight, &recClient{})
	b := h.NewEntity("b", th, DefaultWeight, &recClient{})
	a.Wake()
	b.Wake()
	bothRunning := false
	for i := 0; i < 1000; i++ {
		eng.RunFor(1 * sim.Millisecond)
		if a.State() == Running && b.State() == Running {
			bothRunning = true
		}
	}
	if bothRunning {
		t.Fatal("stacked entities ran at the same time")
	}
}

func TestDeterministicSchedule(t *testing.T) {
	run := func() sim.Duration {
		eng := sim.NewEngine(7)
		h := New(eng, testConfig())
		th := h.Thread(0)
		a := h.NewEntity("a", th, DefaultWeight, &recClient{})
		b := h.NewEntity("b", th, 512, &recClient{})
		NewPatternContender(h, "p", th, 3*sim.Millisecond, 7*sim.Millisecond, 500*sim.Microsecond)
		a.Wake()
		b.Wake()
		eng.RunFor(2 * sim.Second)
		return a.RunTime() - b.RunTime()
	}
	if run() != run() {
		t.Fatal("host scheduling is not deterministic")
	}
}

func TestSpeedFactorHeterogeneity(t *testing.T) {
	eng, h := newTestHost(t)
	th := h.Thread(0)
	th.SetSpeedFactor(0.5)
	c := &recClient{}
	e := h.NewEntity("e", th, DefaultWeight, c)
	e.Wake()
	eng.RunFor(10 * sim.Millisecond)
	cfg := h.Config()
	want := cfg.BaseSpeed * 0.5 * cfg.TurboFactor
	if math.Abs(c.speed-want) > 1e-9 {
		t.Fatalf("speed=%v want %v", c.speed, want)
	}
	th.SetSpeedFactor(1.0)
	eng.RunFor(1 * sim.Millisecond)
	if math.Abs(c.speed-cfg.BaseSpeed*cfg.TurboFactor) > 1e-9 {
		t.Fatalf("live factor change not applied: %v", c.speed)
	}
}

func TestRefillUnthrottles(t *testing.T) {
	eng, h := newTestHost(t)
	e := h.NewEntity("e", h.Thread(0), DefaultWeight, &recClient{})
	e.SetBandwidth(10 * sim.Millisecond)
	e.Wake()
	eng.RunFor(50 * sim.Millisecond)
	if e.State() != Throttled {
		t.Fatalf("state=%v want throttled", e.State())
	}
	eng.RunFor(55 * sim.Millisecond) // cross the 100ms period boundary
	if e.State() != Running {
		t.Fatalf("refill did not unthrottle: state=%v", e.State())
	}
	if rt := e.RunTime(); rt < 14*sim.Millisecond || rt > 16*sim.Millisecond {
		t.Fatalf("runtime=%v want ~15ms (10ms quota + 5ms of new period)", rt)
	}
}

func TestWakeWhenQuotaExhausted(t *testing.T) {
	eng, h := newTestHost(t)
	e := h.NewEntity("e", h.Thread(0), DefaultWeight, &recClient{})
	e.SetBandwidth(5 * sim.Millisecond)
	e.Wake()
	eng.RunFor(20 * sim.Millisecond)
	if e.State() != Throttled {
		t.Fatalf("state=%v", e.State())
	}
	e.Block()
	e.Wake() // waking with exhausted quota goes straight to Throttled
	if e.State() != Throttled {
		t.Fatalf("wake with exhausted quota: state=%v", e.State())
	}
}
