package host

import (
	"fmt"
	"math/rand"
	"testing"

	"vsched/internal/sim"
)

// Property: two always-runnable CFS entities on one thread split CPU time
// in proportion to their weights, for arbitrary weights.
func TestWeightProportionalSharingProperty(t *testing.T) {
	for trial := 0; trial < 12; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		w1 := int64(128 + rng.Intn(4096))
		w2 := int64(128 + rng.Intn(4096))
		eng := sim.NewEngine(int64(trial))
		cfg := DefaultConfig()
		cfg.Sockets, cfg.CoresPerSocket, cfg.ThreadsPerCore = 1, 1, 1
		h := New(eng, cfg)
		a := NewStressor(h, "a", h.Thread(0), w1)
		b := NewStressor(h, "b", h.Thread(0), w2)
		eng.RunFor(10 * sim.Second)
		want := float64(w1) / float64(w2)
		got := float64(a.RunTime()) / float64(b.RunTime())
		if got < want*0.93 || got > want*1.07 {
			t.Fatalf("trial %d: weights %d:%d want ratio %.3f got %.3f",
				trial, w1, w2, want, got)
		}
	}
}

// Property: for any contended always-runnable entity, run + steal accounts
// for the whole wall clock (no time leaks in the host scheduler).
func TestTimeConservationProperty(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		eng := sim.NewEngine(int64(trial))
		cfg := DefaultConfig()
		cfg.Sockets, cfg.CoresPerSocket, cfg.ThreadsPerCore = 1, 2, 1
		h := New(eng, cfg)
		n := 2 + rng.Intn(4)
		var ents []*Entity
		for i := 0; i < n; i++ {
			ents = append(ents, NewStressor(h, fmt.Sprintf("e%d", i), h.Thread(0), 256+rng.Int63n(2048)))
		}
		wall := sim.Duration(2+rng.Intn(6)) * sim.Second
		eng.RunFor(wall)
		for i, e := range ents {
			total := e.RunTime() + e.Steal()
			if total < wall-sim.Microsecond || total > wall+sim.Microsecond {
				t.Fatalf("trial %d entity %d: run %v + steal %v != wall %v",
					trial, i, e.RunTime(), e.Steal(), wall)
			}
		}
		// And the thread is never over-committed: total run time across
		// entities equals the wall clock.
		var sumRun sim.Duration
		for _, e := range ents {
			sumRun += e.RunTime()
		}
		if sumRun < wall-sim.Microsecond || sumRun > wall+sim.Microsecond {
			t.Fatalf("trial %d: thread time %v != wall %v", trial, sumRun, wall)
		}
	}
}

// Property: a pattern contender's long-run duty cycle matches its on/off
// configuration regardless of the competing load.
func TestPatternDutyProperty(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(200 + trial)))
		on := sim.Duration(1+rng.Intn(8)) * sim.Millisecond
		off := sim.Duration(1+rng.Intn(8)) * sim.Millisecond
		eng := sim.NewEngine(int64(trial))
		cfg := DefaultConfig()
		cfg.Sockets, cfg.CoresPerSocket, cfg.ThreadsPerCore = 1, 1, 1
		h := New(eng, cfg)
		p := NewPatternContender(h, "p", h.Thread(0), on, off, 0)
		NewStressor(h, "noise", h.Thread(0), 1024)
		wall := 10 * sim.Second
		eng.RunFor(wall)
		want := float64(on) / float64(on+off)
		got := float64(p.Entity().RunTime()) / float64(wall)
		if got < want*0.93 || got > want*1.07 {
			t.Fatalf("trial %d: duty on=%v off=%v want %.3f got %.3f", trial, on, off, want, got)
		}
	}
}

// Property: bandwidth-capped entities never exceed quota per period.
func TestBandwidthCapProperty(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewSource(int64(300 + trial)))
		eng := sim.NewEngine(int64(trial))
		cfg := DefaultConfig()
		cfg.Sockets, cfg.CoresPerSocket, cfg.ThreadsPerCore = 1, 1, 1
		h := New(eng, cfg)
		quota := sim.Duration(10+rng.Intn(60)) * sim.Millisecond
		e := NewStressor(h, "capped", h.Thread(0), DefaultWeight)
		e.SetBandwidth(quota)
		periods := 20
		eng.RunFor(sim.Duration(periods) * cfg.BandwidthPeriod)
		maxRun := sim.Duration(periods+1) * quota // +1 for the partial period
		if e.RunTime() > maxRun {
			t.Fatalf("trial %d: ran %v with quota %v over %d periods", trial, e.RunTime(), quota, periods)
		}
		minRun := sim.Duration(periods-1) * quota
		if e.RunTime() < minRun {
			t.Fatalf("trial %d: ran only %v, should reach quota %v each period", trial, e.RunTime(), quota)
		}
	}
}

// Property: per-thread granularities control how long a woken entity waits
// behind an equal-weight hog — monotonic in the granularity.
func TestGranularityControlsWakeWait(t *testing.T) {
	wait := func(gran sim.Duration) sim.Duration {
		eng := sim.NewEngine(1)
		cfg := DefaultConfig()
		cfg.Sockets, cfg.CoresPerSocket, cfg.ThreadsPerCore = 1, 1, 1
		h := New(eng, cfg)
		th := h.Thread(0)
		th.SetGranularities(gran, 2*gran)
		NewStressor(h, "hog", th, DefaultWeight)
		e := h.NewEntity("sleeper", th, DefaultWeight, NopClient{})
		// Let the hog build history, then measure wake->run delay.
		eng.RunFor(1 * sim.Second)
		var total sim.Duration
		for i := 0; i < 20; i++ {
			start := eng.Now()
			e.Wake()
			for e.State() != Running {
				eng.RunFor(100 * sim.Microsecond)
			}
			total += eng.Now().Sub(start)
			eng.RunFor(2 * sim.Millisecond) // run a little
			e.Block()
			eng.RunFor(20 * sim.Millisecond)
		}
		return total / 20
	}
	small, large := wait(2*sim.Millisecond), wait(12*sim.Millisecond)
	if large < 3*small {
		t.Fatalf("wake wait should scale with granularity: %v vs %v", small, large)
	}
}
