package host

import (
	"math"

	"vsched/internal/sim"
)

// Thread is one hardware thread (logical CPU) of the physical machine. Each
// thread owns a runqueue of entities; the hypervisor scheduler is fully
// distributed per thread (entities move between threads only by explicit
// Migrate, mirroring pinned-vCPU cloud deployments and keeping experiments
// controllable).
type Thread struct {
	host   *Host
	id     ThreadID
	socket int
	core   int
	slot   int

	// speedFactor models per-thread frequency heterogeneity (host-side
	// frequency caps); experiments use it for asymmetric-capacity setups.
	speedFactor float64

	// minGran/wakeGran override the host scheduler granularities for this
	// thread (0 = use the host defaults). The paper adjusts exactly these
	// tunables (sched_min_granularity_ns, sched_wakeup_granularity_ns) to
	// dial in per-vCPU latency without changing capacity.
	minGran  sim.Duration
	wakeGran sim.Duration

	queue   []*Entity // runnable entities, excluding current
	current *Entity

	minVruntime int64
	lastSync    sim.Time
	curSpeed    float64
	sliceEv     sim.Event
}

// ID returns the thread's host-wide identifier.
func (t *Thread) ID() ThreadID { return t.id }

// Socket returns the socket index.
func (t *Thread) Socket() int { return t.socket }

// Core returns the core index within the socket.
func (t *Thread) Core() int { return t.core }

// Slot returns the SMT slot index within the core.
func (t *Thread) Slot() int { return t.slot }

// Current returns the entity running on the thread, or nil.
func (t *Thread) Current() *Entity { return t.current }

// QueueLen returns the number of runnable (waiting) entities.
func (t *Thread) QueueLen() int { return len(t.queue) }

// Sibling returns the SMT sibling thread, or nil on single-thread cores.
func (t *Thread) Sibling() *Thread {
	if t.host.cfg.ThreadsPerCore < 2 {
		return nil
	}
	other := t.slot ^ 1
	return t.host.ThreadAt(t.socket, t.core, other)
}

// SetSpeedFactor changes the thread's frequency factor (1.0 = nominal).
// Running entities see the change immediately.
func (t *Thread) SetSpeedFactor(f float64) {
	if f <= 0 {
		panic("host: non-positive speed factor")
	}
	t.speedFactor = f
	t.refreshSpeed()
}

// SpeedFactor returns the thread's frequency factor.
func (t *Thread) SpeedFactor() float64 { return t.speedFactor }

// SetGranularities overrides the scheduling granularities for this thread:
// minGran is the slice quantum, wakeGran the wakeup-preemption bar. Larger
// values stretch a waiting entity's inactive periods (higher vCPU latency)
// without changing its fair share. Zero keeps the host default.
func (t *Thread) SetGranularities(minGran, wakeGran sim.Duration) {
	t.minGran = minGran
	t.wakeGran = wakeGran
}

func (t *Thread) minGranularity() sim.Duration {
	if t.minGran > 0 {
		return t.minGran
	}
	return t.host.cfg.MinGranularity
}

func (t *Thread) wakeupGranularity() sim.Duration {
	if t.wakeGran > 0 {
		return t.wakeGran
	}
	return t.host.cfg.WakeupGranularity
}

// CurrentSpeed returns the effective speed an entity would observe running
// on this thread right now, in cycles per nanosecond.
func (t *Thread) CurrentSpeed() float64 { return t.effectiveSpeed() }

func (t *Thread) effectiveSpeed() float64 {
	cfg := t.host.cfg
	s := cfg.BaseSpeed * t.speedFactor
	if sib := t.Sibling(); sib != nil && sib.current != nil {
		s *= cfg.SMTFactor
	}
	if cfg.TurboFactor > 1 && t.host.busyCores(t.socket) <= 1 {
		s *= cfg.TurboFactor
	}
	return s
}

func (t *Thread) refreshSpeed() {
	if t.current == nil {
		return
	}
	s := t.effectiveSpeed()
	if s == t.curSpeed {
		return
	}
	t.syncCurrent()
	t.curSpeed = s
	t.current.client.SpeedChanged(t.host.eng.Now(), s)
}

// syncCurrent charges the running entity's accounting up to now.
func (t *Thread) syncCurrent() {
	e := t.current
	if e == nil {
		return
	}
	now := t.host.eng.Now()
	delta := now.Sub(t.lastSync)
	t.lastSync = now
	if delta <= 0 {
		return
	}
	if !e.rt {
		e.vruntime += int64(delta) * DefaultWeight / e.weight
	}
	if e.quota > 0 {
		e.periodUsed += delta
	}
	t.updateMinVruntime()
}

func (t *Thread) updateMinVruntime() {
	min := int64(math.MaxInt64)
	if t.current != nil && !t.current.rt {
		min = t.current.vruntime
	}
	for _, e := range t.queue {
		if !e.rt && e.vruntime < min {
			min = e.vruntime
		}
	}
	if min != math.MaxInt64 && min > t.minVruntime {
		t.minVruntime = min
	}
}

// shouldPreempt reports whether a newly runnable wakee should immediately
// displace the running entity.
func (t *Thread) shouldPreempt(wakee, curr *Entity) bool {
	if wakee.rt && !curr.rt {
		return true
	}
	if !wakee.rt && curr.rt {
		return false
	}
	if wakee.rt && curr.rt {
		return false // FIFO among RT
	}
	// Linux's wakeup_gran scales the threshold by the wakee's weight
	// (calc_delta_fair on the waking entity).
	gran := int64(t.wakeupGranularity()) * DefaultWeight / wakee.weight
	return curr.vruntime-wakee.vruntime > gran
}

// enqueue adds a runnable entity to the queue and resolves preemption.
func (t *Thread) enqueue(e *Entity, allowPreempt bool) {
	t.queue = append(t.queue, e)
	t.updateMinVruntime()
	if t.current == nil {
		t.schedule()
		return
	}
	t.syncCurrent()
	if allowPreempt && t.shouldPreempt(e, t.current) {
		t.stopCurrent(Runnable)
		t.schedule()
		return
	}
	if !t.sliceEv.Active() {
		t.setSlice()
	}
}

// dequeue removes an entity from the runnable queue (it must not be
// current).
func (t *Thread) dequeue(e *Entity) {
	for i, q := range t.queue {
		if q == e {
			t.queue = append(t.queue[:i], t.queue[i+1:]...)
			return
		}
	}
}

// pick removes and returns the entity that should run next: FIFO among RT
// entities first, then minimum vruntime (ties broken by creation order for
// determinism). Returns nil when the queue is empty.
func (t *Thread) pick() *Entity {
	best := -1
	for i, e := range t.queue {
		if best == -1 {
			best = i
			continue
		}
		b := t.queue[best]
		if better(e, b) {
			best = i
		}
	}
	if best == -1 {
		return nil
	}
	e := t.queue[best]
	t.queue = append(t.queue[:best], t.queue[best+1:]...)
	return e
}

func better(a, b *Entity) bool {
	if a.rt != b.rt {
		return a.rt
	}
	if a.rt {
		return a.seq < b.seq // FIFO among RT
	}
	if a.vruntime != b.vruntime {
		return a.vruntime < b.vruntime
	}
	return a.seq < b.seq
}

// schedule dispatches the next entity if the thread is idle.
func (t *Thread) schedule() {
	if t.current != nil {
		return
	}
	e := t.pick()
	if e == nil {
		return
	}
	t.start(e)
}

func (t *Thread) start(e *Entity) {
	now := t.host.eng.Now()
	e.setState(Running)
	t.current = e
	t.lastSync = now
	coreLevel := t.busyTransition()
	t.curSpeed = t.effectiveSpeed()
	e.client.Resumed(now, t.curSpeed)
	t.setSlice()
	t.notifyBusy(coreLevel)
}

// stopCurrent halts the running entity, moving it to state `to`. If `to` is
// Runnable the entity is re-queued. The caller is responsible for invoking
// schedule() afterwards.
func (t *Thread) stopCurrent(to EntityState) {
	e := t.current
	if e == nil {
		return
	}
	t.syncCurrent()
	t.sliceEv.Cancel()
	t.sliceEv = sim.Event{}
	t.current = nil
	coreLevel := t.busyTransition()
	e.setState(to)
	if to == Runnable {
		t.queue = append(t.queue, e)
	}
	e.client.Stopped(t.host.eng.Now())
	t.notifyBusy(coreLevel)
}

// busyTransition updates the socket's busy-core counter after t.current
// changed and reports whether the change was core-level (i.e. the core as a
// whole flipped between idle and busy, which affects turbo for the socket).
func (t *Thread) busyTransition() (coreLevel bool) {
	sib := t.Sibling()
	if sib != nil && sib.current != nil {
		return false // core stays busy via the sibling; only SMT changes
	}
	if t.current != nil {
		t.host.busyCoreCount[t.socket]++
	} else {
		t.host.busyCoreCount[t.socket]--
	}
	return true
}

// notifyBusy pushes the speed consequences of a busy-state change: a
// core-level change retunes the whole socket (turbo), otherwise only the SMT
// sibling's contention factor changed.
func (t *Thread) notifyBusy(coreLevel bool) {
	if coreLevel {
		t.host.refreshSocketSpeeds(t.socket)
		return
	}
	if sib := t.Sibling(); sib != nil {
		sib.refreshSpeed()
	}
}

// resliceCurrent recomputes the running entity's slice boundary (used after
// bandwidth changes).
func (t *Thread) resliceCurrent() {
	if t.current == nil {
		return
	}
	t.syncCurrent()
	t.setSlice()
}

// setSlice schedules the next scheduling decision point for the running
// entity: a granularity boundary when others are waiting, or the bandwidth
// quota boundary. With an empty queue and no quota, no event is needed — the
// entity runs until something happens.
func (t *Thread) setSlice() {
	t.sliceEv.Cancel()
	t.sliceEv = sim.Event{}
	e := t.current
	if e == nil {
		return
	}
	var end sim.Duration = -1
	if len(t.queue) > 0 {
		end = t.minGranularity()
	}
	if e.quota > 0 {
		left := e.quota - e.periodUsed
		if left < 0 {
			left = 0
		}
		if end < 0 || left < end {
			end = left
		}
	}
	if end < 0 {
		return
	}
	t.sliceEv = t.host.eng.After(end, func() { t.onSlice() })
}

func (t *Thread) onSlice() {
	t.sliceEv = sim.Event{}
	e := t.current
	if e == nil {
		return
	}
	t.syncCurrent()
	if e.quota > 0 && e.periodUsed >= e.quota {
		t.stopCurrent(Throttled)
		t.schedule()
		return
	}
	if len(t.queue) == 0 {
		t.setSlice()
		return
	}
	// Peek at the best waiter; switch if it deserves the CPU.
	bestIdx := -1
	for i := range t.queue {
		if bestIdx == -1 || better(t.queue[i], t.queue[bestIdx]) {
			bestIdx = i
		}
	}
	best := t.queue[bestIdx]
	switchTo := false
	if best.rt && !e.rt {
		switchTo = true
	} else if !best.rt && e.rt {
		switchTo = false
	} else if best.rt && e.rt {
		switchTo = false // RT runs to completion (FIFO)
	} else {
		switchTo = best.vruntime < e.vruntime
	}
	if switchTo {
		t.stopCurrent(Runnable)
		t.schedule()
		return
	}
	t.setSlice()
}
