package latprof

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"vsched/internal/guest"
	"vsched/internal/host"
	"vsched/internal/sim"
	"vsched/internal/vtrace"
)

// contendedRig runs a small but physically rich scenario — SMT and turbo
// on, a duty-cycling co-tenant, CPU bandwidth quota, guest queueing and
// cross-vCPU migration — with a ring tracer AND a live profiler attached to
// the same stream. Returns the live profile and the tracer.
func contendedRig(seed int64) (*Profile, *vtrace.Tracer) {
	eng := sim.NewEngine(seed)
	cfg := host.DefaultConfig()
	cfg.Sockets, cfg.CoresPerSocket, cfg.ThreadsPerCore = 1, 2, 2
	h := host.New(eng, cfg)

	tr := vtrace.New(0)
	vtrace.AttachHost(tr, h)

	threads := []*host.Thread{h.Thread(0), h.Thread(1), h.Thread(2), h.Thread(3)}
	vm := guest.NewVM(h, "vm", threads, guest.DefaultParams())
	p := New(Config{VM: "vm", NominalSpeed: cfg.BaseSpeed})
	tr.SetObserver(p.Observe)
	vm.SetTracer(tr)
	vm.Start()

	// Steal on vCPU 0, SMT pressure on vCPU 1 (thread 1 is core 0's second
	// slot), throttling on vCPU 2.
	host.NewPatternContender(h, "tenant", h.Thread(0), 5*sim.Millisecond, 5*sim.Millisecond, 0)
	host.NewPatternContender(h, "sibling", h.Thread(1), 3*sim.Millisecond, 3*sim.Millisecond, 0)
	vm.VCPU(2).Entity().SetBandwidth(40 * sim.Millisecond)

	// Two competing compute/sleep tasks per vCPU (guest queueing), plus a
	// hopper that migrates between vCPUs 0 and 3 (migration cost).
	for i := 0; i < 4; i++ {
		for j := 0; j < 2; j++ {
			vm.Spawn("w", func(sim.Time) guest.Segment {
				if eng.Rand().Intn(4) == 0 {
					return guest.Sleep(sim.Duration(200+eng.Rand().Intn(300)) * sim.Microsecond)
				}
				return guest.Compute(4e5)
			}, guest.StartOn(i))
		}
	}
	hop := 0
	vm.Spawn("hopper", func(sim.Time) guest.Segment {
		hop++
		switch hop % 3 {
		case 0:
			return guest.MigrateTo((hop / 3 % 2) * 3)
		case 1:
			return guest.Compute(6e5)
		default:
			return guest.Sleep(300 * sim.Microsecond)
		}
	}, guest.StartOn(0))

	eng.RunFor(500 * sim.Millisecond)
	return p.Finish(eng.Now()), tr
}

// TestConservationPropertyAcrossSeeds is the acceptance-criteria property
// test: in a real simulation, every reconstructed span's components sum to
// its wall time exactly, across seeds, and every cause actually occurs.
func TestConservationPropertyAcrossSeeds(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1234, 99999} {
		prof, _ := contendedRig(seed)
		if err := prof.CheckConservation(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(prof.Spans) < 50 {
			t.Fatalf("seed %d: only %d spans reconstructed", seed, len(prof.Spans))
		}
		tot := prof.Totals()
		for _, c := range []Cause{Run, RunnableWait, StealWait, ThrottleWait, Migration, SMTSlowdown} {
			if tot.NS[c] <= 0 {
				t.Errorf("seed %d: cause %s never observed (rig should exercise it)", seed, c)
			}
		}
		if t.Failed() {
			t.FailNow()
		}
	}
}

// TestLivePostHocEquivalence: folding the ring post-hoc must reconstruct
// the same profile as the live observer when nothing was dropped.
func TestLivePostHocEquivalence(t *testing.T) {
	live, tr := contendedRig(42)
	if tr.Dropped() != 0 {
		t.Fatalf("ring dropped %d events; rig must fit the default ring", tr.Dropped())
	}
	post := FromTracer(tr, Config{VM: "vm", NominalSpeed: 2.0})
	if len(live.Spans) != len(post.Spans) {
		t.Fatalf("live %d spans vs post-hoc %d", len(live.Spans), len(post.Spans))
	}
	if !reflect.DeepEqual(live.Flatten(), post.Flatten()) {
		t.Fatalf("live vs post-hoc flatten mismatch:\n%v\n%v", live.Flatten(), post.Flatten())
	}
	if live.String() != post.String() {
		t.Fatalf("live vs post-hoc report mismatch:\n%s\n%s", live.String(), post.String())
	}
}

// TestProfileDeterminism: identical seeds produce byte-identical reports.
func TestProfileDeterminism(t *testing.T) {
	a, _ := contendedRig(7)
	b, _ := contendedRig(7)
	if a.String() != b.String() {
		t.Fatalf("reports differ across identical runs:\n%s\nvs\n%s", a.String(), b.String())
	}
	if !reflect.DeepEqual(a.Spans, b.Spans) {
		t.Fatal("span slices differ across identical runs")
	}
}

// TestStealBlameNamesContender: the co-tenant pinned on thread 0 must show
// up as a blamed entity for steal-wait.
func TestStealBlameNamesContender(t *testing.T) {
	prof, _ := contendedRig(42)
	blame := prof.TopBlame(0)
	var tenant sim.Duration
	for _, b := range blame {
		if b.Entity == "tenant" {
			tenant = b.Wait
		}
	}
	if tenant <= 0 {
		t.Fatalf("tenant not blamed for any steal-wait; blame = %+v", blame)
	}
}

// TestChromeTrackExport: the attribution track renders into a valid Chrome
// trace with per-cause args, byte-identically across exports.
func TestChromeTrackExport(t *testing.T) {
	prof, tr := contendedRig(42)
	var a, b bytes.Buffer
	if err := tr.WriteChrome(&a, prof.ChromeTrack()); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	if err := tr.WriteChrome(&b, prof.ChromeTrack()); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("attribution track export is not byte-deterministic")
	}
	if !json.Valid(a.Bytes()) {
		t.Fatal("export is not valid JSON")
	}
	for _, want := range []string{
		`"process_name","args":{"name":"attribution"}`,
		`"steal_wait_ns":`,
		`"wall_ns":`,
		`"cat":"attribution"`,
		`"droppedEvents":0`,
	} {
		if !bytes.Contains(a.Bytes(), []byte(want)) {
			t.Fatalf("export missing %s", want)
		}
	}
}

// TestCriticalPathOnRealRun: a producer/consumer semaphore chain in a real
// simulation yields a critical path that hops from the consumer back into
// the producer through the traced waker ids.
func TestCriticalPathOnRealRun(t *testing.T) {
	eng := sim.NewEngine(3)
	cfg := host.DefaultConfig()
	cfg.Sockets, cfg.CoresPerSocket, cfg.ThreadsPerCore = 1, 2, 1
	h := host.New(eng, cfg)
	tr := vtrace.New(0)
	vtrace.AttachHost(tr, h)
	vm := guest.NewVM(h, "vm", []*host.Thread{h.Thread(0), h.Thread(1)}, guest.DefaultParams())
	p := New(Config{VM: "vm", NominalSpeed: cfg.BaseSpeed})
	tr.SetObserver(p.Observe)
	vm.SetTracer(tr)
	vm.Start()
	host.NewPatternContender(h, "tenant", h.Thread(0), 2*sim.Millisecond, 2*sim.Millisecond, 0)

	sem := guest.NewSemaphore(0)
	pstep, cstep := 0, 0
	// The producer exits partway through, so the last-ending closed span is
	// a consumer span whose wakeup chains back into the producer.
	vm.Spawn("producer", func(sim.Time) guest.Segment {
		pstep++
		if pstep > 120 {
			return guest.Exit()
		}
		switch pstep % 3 {
		case 1:
			return guest.Compute(5e5)
		case 2:
			return guest.SemPost(sem)
		default:
			return guest.Sleep(200 * sim.Microsecond)
		}
	}, guest.StartOn(0))
	// The consumer's per-item work is heavy enough that it drains the
	// backlog long after the producer exits, so its producer-woken span is
	// the last to close.
	vm.Spawn("consumer", func(sim.Time) guest.Segment {
		cstep++
		if cstep%2 == 1 {
			return guest.SemWait(sem)
		}
		return guest.Compute(4e6)
	}, guest.StartOn(1))

	eng.RunFor(200 * sim.Millisecond)
	prof := p.Finish(eng.Now())
	if err := prof.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	chain, agg := prof.CriticalPath()
	if len(chain) < 2 {
		t.Fatalf("critical path has %d spans, want a producer->consumer chain", len(chain))
	}
	seen := map[string]bool{}
	for _, s := range chain {
		seen[s.Task] = true
	}
	if !seen["producer"] || !seen["consumer"] {
		t.Fatalf("critical path tasks = %v, want both producer and consumer", seen)
	}
	var wall sim.Duration
	for _, s := range chain {
		wall += s.Wall()
	}
	if agg.Total() != wall {
		t.Fatalf("critical-path aggregate %v != chain wall %v", agg.Total(), wall)
	}
}
