// Package latprof is the cross-layer latency attribution profiler: it
// consumes a vtrace event stream (live through a tracer observer, or
// post-hoc from the ring) and reconstructs, for every guest task, *why* its
// wall time went where. Each task span — wakeup to block/exit — is
// decomposed into a conserved breakdown:
//
//	run            the task really executed at full effective speed
//	runnable-wait  queued behind sibling tasks on a host-running vCPU
//	steal-wait     the task's vCPU was descheduled by the hypervisor,
//	               attributed to the specific contender entity holding the
//	               hardware thread at the time
//	throttle-wait  the vCPU was barred by CPU bandwidth quota
//	migration      working-set transfer cost charged by task migrations
//	smt-slowdown   run time lost because the effective speed was below
//	               nominal (SMT sibling activity, LLC pressure)
//
// The invariant is exact conservation in virtual nanoseconds: the six
// components of a span always sum to its wall time. Every interval between
// two consecutive events lands in exactly one component, and sub-interval
// splits (run vs smt-slowdown, run vs migration) derive one side by
// subtraction, so no rounding can leak a nanosecond.
//
// Approximations, documented rather than hidden: a Runnable entity
// repinned across hardware threads emits no state transition, so
// steal-blame can lag one event behind; migration cost is modelled as the
// working-set debt carved out of the task's subsequent run time, matching
// how the guest charges commDebt; wakeup communication cost (waker pulling
// the wakee's working set) is deliberately counted as run, not migration.
//
// Determinism: the profiler is a pure fold over the event stream. Feeding
// the same events yields byte-identical reports; all aggregation orders are
// explicit (task id, name, or span order), never map order.
package latprof

import (
	"sort"
	"strconv"
	"strings"

	"vsched/internal/host"
	"vsched/internal/sim"
	"vsched/internal/vtrace"
)

// Config selects which VM the profiler reconstructs and how to judge speed.
type Config struct {
	// VM is the VM name; entity events for "<VM>/vcpuN" and guest events
	// are attributed to it. The guest event stream fed to Observe must be
	// this VM's (host entity events may cover the whole host).
	VM string
	// NominalSpeed is the uncontended execution speed in cycles/ns (the
	// host's base speed). Run time at a lower effective speed splits into
	// run + smt-slowdown against this reference, and migration cycle costs
	// convert to nanoseconds through it. <= 0 disables both refinements:
	// all running time counts as run and migration cost stays zero.
	NominalSpeed float64
}

// Cause indexes the components of a Breakdown.
type Cause int

const (
	Run Cause = iota
	RunnableWait
	StealWait
	ThrottleWait
	Migration
	SMTSlowdown
	numCauses
)

func (c Cause) String() string {
	switch c {
	case Run:
		return "run"
	case RunnableWait:
		return "runnable-wait"
	case StealWait:
		return "steal-wait"
	case ThrottleWait:
		return "throttle-wait"
	case Migration:
		return "migration"
	case SMTSlowdown:
		return "smt-slowdown"
	}
	return "invalid"
}

// Key returns the snake_case metric key of the cause.
func (c Cause) Key() string { return strings.ReplaceAll(c.String(), "-", "_") }

// Causes returns all causes in canonical report order.
func Causes() []Cause {
	return []Cause{Run, RunnableWait, StealWait, ThrottleWait, Migration, SMTSlowdown}
}

// Breakdown is a conserved decomposition of wall time by cause.
type Breakdown struct {
	NS [numCauses]sim.Duration
}

// Get returns the component for a cause.
func (b *Breakdown) Get(c Cause) sim.Duration { return b.NS[c] }

// Total returns the sum of all components.
func (b *Breakdown) Total() sim.Duration {
	var t sim.Duration
	for _, d := range b.NS {
		t += d
	}
	return t
}

// Add accumulates o into b.
func (b *Breakdown) Add(o *Breakdown) {
	for i := range b.NS {
		b.NS[i] += o.NS[i]
	}
}

// Share returns the cause's fraction of the total (0 when empty).
func (b *Breakdown) Share(c Cause) float64 {
	t := b.Total()
	if t <= 0 {
		return 0
	}
	return float64(b.NS[c]) / float64(t)
}

// Blame names a host entity and how much steal-wait it inflicted.
type Blame struct {
	Entity string
	Wait   sim.Duration
}

// Span is one reconstructed task activation: wakeup to block/exit.
type Span struct {
	Task   string
	TaskID int64
	Start  sim.Time
	End    sim.Time
	Breakdown
	// StealBy attributes StealWait to the host entities that held the
	// hardware thread, largest first ("(unknown)" when the holder was not
	// visible in the stream).
	StealBy []Blame
	// WakerID is the task id whose wakeup opened this span, -1 when the
	// wakeup was external (spawn, timer, IRQ).
	WakerID int64
	// Migrations counts cross-vCPU moves during the span.
	Migrations int
}

// Wall returns the span's wall time.
func (s *Span) Wall() sim.Duration { return s.End.Sub(s.Start) }

// vcpuState caches the host-side view of one vCPU of the profiled VM.
type vcpuState struct {
	state      host.EntityState
	known      bool // saw at least one entity event
	thread     int64
	haveThread bool
	speedMicro int64 // last traced effective speed; 0 = assume nominal
}

// taskState is an open span under reconstruction.
type taskState struct {
	id      int64
	vcpu    int
	running bool
	since   sim.Time
	span    Span
	stealBy map[string]sim.Duration
	// migDebt is traced migration cost (ns at nominal speed) not yet
	// carved out of subsequent run time.
	migDebt sim.Duration
	// truncated marks a span first seen mid-stream (its wakeup predates
	// the tap or was dropped); it is reconstructed but excluded from
	// aggregates.
	truncated bool
}

// Profiler folds a vtrace event stream into attribution spans. Feed events
// with Observe (hook it to a tracer with vtrace.NewObserver or SetObserver),
// then call Finish. The zero Profiler is not usable; call New.
type Profiler struct {
	cfg      Config
	vmPrefix string

	tasks map[int64]*taskState
	vcpus map[int]*vcpuState
	// threadRunner names the entity currently Running on each hardware
	// thread — the steal-blame source.
	threadRunner map[int64]string
	// entThread is the last-seen home thread of every host entity.
	entThread map[string]int64

	spans     []Span
	truncated int
	lastAt    sim.Time
}

// New returns a profiler for one VM.
func New(cfg Config) *Profiler {
	return &Profiler{
		cfg:          cfg,
		vmPrefix:     cfg.VM + "/vcpu",
		tasks:        map[int64]*taskState{},
		vcpus:        map[int]*vcpuState{},
		threadRunner: map[int64]string{},
		entThread:    map[string]int64{},
	}
}

// Observe folds one event. Events must arrive in non-decreasing time order
// (the order every tracer emits them in).
func (p *Profiler) Observe(ev vtrace.Event) {
	if ev.At > p.lastAt {
		p.lastAt = ev.At
	}
	switch ev.Kind {
	case vtrace.KindEntityState:
		p.entityEvent(ev)
	case vtrace.KindVCPUSpeed:
		if ev.Subject == p.cfg.VM {
			p.speedEvent(ev)
		}
	case vtrace.KindTaskWakeup:
		p.wakeup(ev)
	case vtrace.KindTaskOn:
		p.taskOn(ev)
	case vtrace.KindTaskOff:
		p.taskOff(ev)
	case vtrace.KindTaskMigrate:
		p.migrate(ev)
	case vtrace.KindMigCost:
		p.migCost(ev)
	}
}

// vcpuIndex parses "<VM>/vcpuN" subjects; ok is false for entities of other
// VMs and synthetic contenders.
func (p *Profiler) vcpuIndex(subject string) (int, bool) {
	if !strings.HasPrefix(subject, p.vmPrefix) {
		return 0, false
	}
	n, err := strconv.Atoi(subject[len(p.vmPrefix):])
	if err != nil {
		return 0, false
	}
	return n, true
}

func (p *Profiler) vcpu(i int) *vcpuState {
	vs := p.vcpus[i]
	if vs == nil {
		vs = &vcpuState{}
		p.vcpus[i] = vs
	}
	return vs
}

// entityEvent tracks host entity transitions: vCPU states of the profiled
// VM, and the Running occupant of every hardware thread (blame source).
func (p *Profiler) entityEvent(ev vtrace.Event) {
	subj := ev.Subject
	to := host.EntityState(ev.A1)
	newT := ev.A2
	oldT, hadT := p.entThread[subj]

	// Any transition can change a thread's runner, which changes blame for
	// every task stalled behind that thread: settle their clocks first.
	p.flushThread(ev.At, newT)
	if hadT && oldT != newT {
		p.flushThread(ev.At, oldT)
	}

	if idx, ok := p.vcpuIndex(subj); ok {
		p.flushVCPU(ev.At, idx)
		vs := p.vcpu(idx)
		vs.state = to
		vs.known = true
		vs.thread = newT
		vs.haveThread = true
	}

	if hadT && p.threadRunner[oldT] == subj {
		delete(p.threadRunner, oldT)
	}
	if to == host.Running {
		p.threadRunner[newT] = subj
	} else if p.threadRunner[newT] == subj {
		delete(p.threadRunner, newT)
	}
	p.entThread[subj] = newT
}

func (p *Profiler) speedEvent(ev vtrace.Event) {
	idx := int(ev.A0)
	p.flushVCPU(ev.At, idx)
	p.vcpu(idx).speedMicro = ev.A1
}

func (p *Profiler) wakeup(ev vtrace.Event) {
	id := ev.A0
	if ts := p.tasks[id]; ts != nil {
		// A wakeup for a task we think is already awake means the stream
		// lost the close of the previous span (ring wrap). Discard it as
		// truncated and start clean.
		p.flushTask(ts, ev.At)
		p.truncated++
		delete(p.tasks, id)
	}
	p.tasks[id] = &taskState{
		id:    id,
		vcpu:  int(ev.A1),
		since: ev.At,
		span: Span{
			Task:    ev.Subject,
			TaskID:  id,
			Start:   ev.At,
			WakerID: ev.A2,
		},
	}
}

func (p *Profiler) taskOn(ev vtrace.Event) {
	id := ev.A1
	ts := p.tasks[id]
	if ts == nil {
		// First sight mid-run: reconstruct from here but mark truncated.
		ts = &taskState{
			id:        id,
			since:     ev.At,
			span:      Span{Task: ev.Subject, TaskID: id, Start: ev.At, WakerID: -1},
			truncated: true,
		}
		p.tasks[id] = ts
	}
	p.flushTask(ts, ev.At)
	ts.running = true
	ts.vcpu = int(ev.A0)
}

func (p *Profiler) taskOff(ev vtrace.Event) {
	id := ev.A1
	ts := p.tasks[id]
	if ts == nil {
		return // open predates the tap; nothing to close
	}
	p.flushTask(ts, ev.At)
	ts.running = false
	ts.vcpu = int(ev.A0)
	if ev.A2 == 1 {
		return // preempted or migrating: span continues queued
	}
	p.closeSpan(ts, ev.At)
}

func (p *Profiler) migrate(ev vtrace.Event) {
	ts := p.tasks[ev.A0]
	if ts == nil {
		return
	}
	p.flushTask(ts, ev.At)
	ts.vcpu = int(ev.A2)
	ts.span.Migrations++
}

func (p *Profiler) migCost(ev vtrace.Event) {
	ts := p.tasks[ev.A0]
	if ts == nil || p.cfg.NominalSpeed <= 0 {
		return
	}
	ts.migDebt += sim.Duration(float64(ev.A1) / p.cfg.NominalSpeed)
}

func (p *Profiler) closeSpan(ts *taskState, at sim.Time) {
	delete(p.tasks, ts.id)
	if ts.truncated {
		p.truncated++
		return
	}
	ts.span.End = at
	ts.span.StealBy = sortedBlame(ts.stealBy)
	p.spans = append(p.spans, ts.span)
}

func sortedBlame(m map[string]sim.Duration) []Blame {
	if len(m) == 0 {
		return nil
	}
	out := make([]Blame, 0, len(m))
	for e, d := range m {
		out = append(out, Blame{Entity: e, Wait: d})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Wait != out[j].Wait {
			return out[i].Wait > out[j].Wait
		}
		return out[i].Entity < out[j].Entity
	})
	return out
}

// flushThread settles every open span whose vCPU sits on hardware thread t.
func (p *Profiler) flushThread(at sim.Time, t int64) {
	for _, ts := range p.tasks {
		if vs := p.vcpus[ts.vcpu]; vs != nil && vs.haveThread && vs.thread == t {
			p.flushTask(ts, at)
		}
	}
}

// flushVCPU settles every open span currently homed on vCPU idx.
func (p *Profiler) flushVCPU(at sim.Time, idx int) {
	for _, ts := range p.tasks {
		if ts.vcpu == idx {
			p.flushTask(ts, at)
		}
	}
}

// flushTask charges the interval since the task's last settlement to exactly
// one cause (with exact-by-subtraction sub-splits) under the *current*
// cached vCPU state, then restarts its clock. flushTask is idempotent at a
// given timestamp: a second call charges zero.
func (p *Profiler) flushTask(ts *taskState, at sim.Time) {
	el := at.Sub(ts.since)
	ts.since = at
	if el <= 0 {
		return
	}
	vs := p.vcpus[ts.vcpu]
	state := host.Running // optimistic default before any entity event
	var speedMicro, thread int64
	haveThread := false
	if vs != nil {
		if vs.known {
			state = vs.state
		}
		speedMicro = vs.speedMicro
		thread = vs.thread
		haveThread = vs.haveThread
	}

	if ts.running {
		switch state {
		case host.Running:
			// Split run vs smt-slowdown against nominal speed; derive run
			// by subtraction so the pair sums to el exactly. Then carve
			// pending migration debt out of the run part.
			var slow sim.Duration
			if p.cfg.NominalSpeed > 0 && speedMicro > 0 {
				ratio := float64(speedMicro) / (p.cfg.NominalSpeed * 1e6)
				if ratio < 1 {
					slow = sim.Duration(float64(el) * (1 - ratio))
					if slow > el {
						slow = el
					}
				}
			}
			run := el - slow
			take := ts.migDebt
			if take > run {
				take = run
			}
			ts.migDebt -= take
			ts.span.NS[Migration] += take
			ts.span.NS[Run] += run - take
			ts.span.NS[SMTSlowdown] += slow
		case host.Runnable:
			ts.span.NS[StealWait] += el
			p.blame(ts, thread, haveThread, el)
		case host.Throttled:
			ts.span.NS[ThrottleWait] += el
		case host.Blocked:
			// Defensive: an installed task on a halted vCPU should not
			// happen; count it as steal against the host.
			ts.span.NS[StealWait] += el
			p.blameName(ts, "(host)", el)
		}
		return
	}
	switch state {
	case host.Runnable:
		// Queued behind a descheduled vCPU: the host, not the guest
		// scheduler, is withholding progress.
		ts.span.NS[StealWait] += el
		p.blame(ts, thread, haveThread, el)
	case host.Throttled:
		ts.span.NS[ThrottleWait] += el
	default:
		// Running (queued behind the current task) or Blocked (waiting
		// for the idle vCPU's wake-kick to land): guest-side queueing.
		ts.span.NS[RunnableWait] += el
	}
}

func (p *Profiler) blame(ts *taskState, thread int64, haveThread bool, el sim.Duration) {
	name := "(unknown)"
	if haveThread {
		if r, ok := p.threadRunner[thread]; ok {
			name = r
		}
	}
	p.blameName(ts, name, el)
}

func (p *Profiler) blameName(ts *taskState, name string, el sim.Duration) {
	if ts.stealBy == nil {
		ts.stealBy = map[string]sim.Duration{}
	}
	ts.stealBy[name] += el
}

// Finish settles every open span at time now and returns the profile.
// Spans still open stay open (counted, excluded from aggregates); the
// profiler remains usable and a later Finish extends the same spans.
func (p *Profiler) Finish(now sim.Time) *Profile {
	if now < p.lastAt {
		now = p.lastAt
	}
	ids := make([]int64, 0, len(p.tasks))
	for id := range p.tasks {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		p.flushTask(p.tasks[id], now)
	}
	spans := make([]Span, len(p.spans))
	copy(spans, p.spans)
	return &Profile{
		VM:        p.cfg.VM,
		Spans:     spans,
		Open:      len(p.tasks),
		Truncated: p.truncated,
	}
}

// Analyze reconstructs a profile post-hoc from a buffered event slice (e.g.
// tracer.Events()).
func Analyze(events []vtrace.Event, cfg Config) *Profile {
	p := New(cfg)
	for _, ev := range events {
		p.Observe(ev)
	}
	return p.Finish(p.lastAt)
}

// FromTracer analyzes a ring tracer's buffered events and records its drop
// counter, so a profile whose input lost events says so.
func FromTracer(tr *vtrace.Tracer, cfg Config) *Profile {
	prof := Analyze(tr.Events(), cfg)
	prof.DroppedEvents = tr.Dropped()
	return prof
}
