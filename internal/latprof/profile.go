package latprof

import (
	"fmt"
	"sort"
	"strings"

	"vsched/internal/metrics"
	"vsched/internal/sim"
	"vsched/internal/vtrace"
)

// Profile is the finished attribution report of one VM: every closed span,
// plus enough bookkeeping to judge the reconstruction's completeness.
type Profile struct {
	VM    string
	Spans []Span
	// Open counts spans still open at Finish time (settled but not closed;
	// excluded from Spans).
	Open int
	// Truncated counts spans discarded because their start or close was
	// not in the stream (tap attached late, or ring wrap).
	Truncated int
	// DroppedEvents is the source tracer's ring drop counter when the
	// profile was built post-hoc (FromTracer); 0 for live observers, which
	// never drop.
	DroppedEvents uint64
}

// Totals sums the breakdowns of all spans.
func (p *Profile) Totals() Breakdown {
	var b Breakdown
	for i := range p.Spans {
		b.Add(&p.Spans[i].Breakdown)
	}
	return b
}

// Wall sums the wall time of all spans.
func (p *Profile) Wall() sim.Duration {
	var w sim.Duration
	for i := range p.Spans {
		w += p.Spans[i].Wall()
	}
	return w
}

// Hist builds a histogram of one cause's per-span component (nanoseconds).
func (p *Profile) Hist(c Cause) *metrics.Histogram {
	h := metrics.NewHistogram()
	for i := range p.Spans {
		h.Observe(int64(p.Spans[i].NS[c]))
	}
	return h
}

// WallHist builds a histogram of per-span wall times.
func (p *Profile) WallHist() *metrics.Histogram {
	h := metrics.NewHistogram()
	for i := range p.Spans {
		h.Observe(int64(p.Spans[i].Wall()))
	}
	return h
}

// CheckConservation verifies the invariant on every span: the six
// components sum to the span's wall time exactly, in virtual nanoseconds.
func (p *Profile) CheckConservation() error {
	for i := range p.Spans {
		s := &p.Spans[i]
		if got, want := s.Breakdown.Total(), s.Wall(); got != want {
			return fmt.Errorf("latprof: span %d (task %s @%v) breakdown %v != wall %v",
				i, s.Task, s.Start, got, want)
		}
	}
	return nil
}

// TailShare returns cause c's share of wall time among the spans in the top
// (1-q) tail by wall time — "where does the p95 tail's time go" for
// q = 0.95. At least one span is always included; an empty profile returns
// 0. Ties in wall time break by span order, so the result is deterministic.
func (p *Profile) TailShare(c Cause, q float64) float64 {
	if len(p.Spans) == 0 {
		return 0
	}
	idx := make([]int, len(p.Spans))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		wa, wb := p.Spans[idx[a]].Wall(), p.Spans[idx[b]].Wall()
		if wa != wb {
			return wa > wb
		}
		return idx[a] < idx[b]
	})
	n := int(float64(len(idx)) * (1 - q))
	if n < 1 {
		n = 1
	}
	var part, tot sim.Duration
	for _, i := range idx[:n] {
		part += p.Spans[i].NS[c]
		tot += p.Spans[i].Wall()
	}
	if tot <= 0 {
		return 0
	}
	return float64(part) / float64(tot)
}

// TopBlame aggregates steal-wait blame across all spans and returns the n
// worst offenders (all of them when n <= 0).
func (p *Profile) TopBlame(n int) []Blame {
	agg := map[string]sim.Duration{}
	for i := range p.Spans {
		for _, b := range p.Spans[i].StealBy {
			agg[b.Entity] += b.Wait
		}
	}
	out := sortedBlame(agg)
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// TaskAgg is the per-task-name aggregate of a profile.
type TaskAgg struct {
	Task  string
	Spans int
	Breakdown
}

// PerTask aggregates spans by task name, sorted by name.
func (p *Profile) PerTask() []TaskAgg {
	idx := map[string]int{}
	var out []TaskAgg
	for i := range p.Spans {
		s := &p.Spans[i]
		j, ok := idx[s.Task]
		if !ok {
			j = len(out)
			idx[s.Task] = j
			out = append(out, TaskAgg{Task: s.Task})
		}
		out[j].Spans++
		out[j].Breakdown.Add(&s.Breakdown)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Task < out[j].Task })
	return out
}

// CriticalPath walks the waker chain backwards from the last-ending span:
// each hop moves to the waker's most recent span starting at or before the
// current one. It returns the chain in causal order with its summed
// breakdown — "why was the end of this workload late". Hops are capped so a
// cyclic producer/consumer pair terminates.
func (p *Profile) CriticalPath() ([]Span, Breakdown) {
	var agg Breakdown
	if len(p.Spans) == 0 {
		return nil, agg
	}
	// Index spans by task id, each list in start order.
	byTask := map[int64][]int{}
	for i := range p.Spans {
		byTask[p.Spans[i].TaskID] = append(byTask[p.Spans[i].TaskID], i)
	}
	for _, l := range byTask {
		sort.Slice(l, func(a, b int) bool { return p.Spans[l[a]].Start < p.Spans[l[b]].Start })
	}
	cur := 0
	for i := range p.Spans {
		if p.Spans[i].End > p.Spans[cur].End {
			cur = i
		}
	}
	seen := map[int]bool{cur: true}
	chain := []int{cur}
	for hops := 0; hops < 128; hops++ {
		waker := p.Spans[chain[len(chain)-1]].WakerID
		if waker < 0 {
			break
		}
		l := byTask[waker]
		// Last span of the waker starting at or before the current start.
		at := p.Spans[chain[len(chain)-1]].Start
		k := sort.Search(len(l), func(i int) bool { return p.Spans[l[i]].Start > at })
		if k == 0 {
			break
		}
		next := l[k-1]
		if seen[next] {
			break
		}
		seen[next] = true
		chain = append(chain, next)
	}
	out := make([]Span, len(chain))
	for i, idx := range chain {
		out[len(chain)-1-i] = p.Spans[idx]
		agg.Add(&p.Spans[idx].Breakdown)
	}
	return out, agg
}

// Flatten renders the profile as a flat metric map for artifacts: totals
// and shares per cause, p95 per-span component per cause, and the
// reconstruction counters.
func (p *Profile) Flatten() map[string]float64 {
	out := map[string]float64{
		"spans":     float64(len(p.Spans)),
		"open":      float64(p.Open),
		"truncated": float64(p.Truncated),
		"dropped":   float64(p.DroppedEvents),
	}
	tot := p.Totals()
	for _, c := range Causes() {
		out[c.Key()+"_ns"] = float64(tot.NS[c])
		out[c.Key()+"_share"] = tot.Share(c)
		out[c.Key()+"_p95_ns"] = float64(p.Hist(c).P95())
	}
	return out
}

// ChromeTrack renders the spans as a Perfetto-loadable attribution track:
// one thread per task name, one slice per span, per-cause nanoseconds (and
// steal blame count) as args.
func (p *Profile) ChromeTrack() vtrace.SpanTrack {
	perTask := map[string][]int{}
	var names []string
	for i := range p.Spans {
		n := p.Spans[i].Task
		if _, ok := perTask[n]; !ok {
			names = append(names, n)
		}
		perTask[n] = append(perTask[n], i)
	}
	sort.Strings(names)
	track := vtrace.SpanTrack{Process: "attribution"}
	for _, n := range names {
		th := vtrace.SpanThread{Name: n}
		for _, i := range perTask[n] {
			s := &p.Spans[i]
			args := make([]vtrace.SpanArg, 0, int(numCauses)+2)
			for _, c := range Causes() {
				args = append(args, vtrace.SpanArg{Key: c.Key() + "_ns", Value: int64(s.NS[c])})
			}
			args = append(args,
				vtrace.SpanArg{Key: "wall_ns", Value: int64(s.Wall())},
				vtrace.SpanArg{Key: "migrations", Value: int64(s.Migrations)},
			)
			name := s.Task
			if len(s.StealBy) > 0 {
				name = s.Task + " ← " + s.StealBy[0].Entity
			}
			th.Slices = append(th.Slices, vtrace.SpanSlice{
				Name: name,
				From: s.Start,
				To:   s.End,
				Args: args,
			})
		}
		track.Threads = append(track.Threads, th)
	}
	return track
}

// String renders a compact ASCII attribution report.
func (p *Profile) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "latprof %s: %d spans (%d open, %d truncated, %d events dropped)\n",
		p.VM, len(p.Spans), p.Open, p.Truncated, p.DroppedEvents)
	tot := p.Totals()
	fmt.Fprintf(&b, "  %-14s %10s %7s %10s %10s %10s\n", "cause", "total ms", "share", "p50 ms", "p95 ms", "p99 ms")
	for _, c := range Causes() {
		h := p.Hist(c)
		fmt.Fprintf(&b, "  %-14s %10.3f %6.1f%% %10.3f %10.3f %10.3f\n",
			c, tot.NS[c].Milliseconds(), 100*tot.Share(c),
			float64(h.P50())/1e6, float64(h.P95())/1e6, float64(h.P99())/1e6)
	}
	if blame := p.TopBlame(3); len(blame) > 0 {
		parts := make([]string, len(blame))
		for i, bl := range blame {
			parts[i] = fmt.Sprintf("%s %.3fms", bl.Entity, bl.Wait.Milliseconds())
		}
		fmt.Fprintf(&b, "  steal blame: %s\n", strings.Join(parts, ", "))
	}
	return b.String()
}
