package latprof

import (
	"reflect"
	"testing"

	"vsched/internal/host"
	"vsched/internal/sim"
	"vsched/internal/vtrace"
)

// feed is a synthetic event-stream builder for exact-value unit tests.
type feed struct {
	p *Profiler
}

func newFeed(nominal float64) *feed {
	return &feed{p: New(Config{VM: "vm", NominalSpeed: nominal})}
}

func (f *feed) ent(at sim.Time, name string, from, to host.EntityState, thread int64) {
	f.p.Observe(vtrace.Event{At: at, Kind: vtrace.KindEntityState, Subject: name,
		A0: int64(from), A1: int64(to), A2: thread})
}

func (f *feed) speed(at sim.Time, vcpu int, micro int64) {
	f.p.Observe(vtrace.Event{At: at, Kind: vtrace.KindVCPUSpeed, Subject: "vm",
		A0: int64(vcpu), A1: micro})
}

func (f *feed) wakeup(at sim.Time, task string, id, vcpu, waker int64) {
	f.p.Observe(vtrace.Event{At: at, Kind: vtrace.KindTaskWakeup, Subject: task,
		A0: id, A1: vcpu, A2: waker})
}

func (f *feed) on(at sim.Time, task string, id, vcpu int64) {
	f.p.Observe(vtrace.Event{At: at, Kind: vtrace.KindTaskOn, Subject: task,
		A0: vcpu, A1: id})
}

func (f *feed) off(at sim.Time, task string, id, vcpu, still int64) {
	f.p.Observe(vtrace.Event{At: at, Kind: vtrace.KindTaskOff, Subject: task,
		A0: vcpu, A1: id, A2: still})
}

func (f *feed) migrate(at sim.Time, task string, id, src, dst int64) {
	f.p.Observe(vtrace.Event{At: at, Kind: vtrace.KindTaskMigrate, Subject: task,
		A0: id, A1: src, A2: dst})
}

func (f *feed) migCost(at sim.Time, task string, id, cycles int64) {
	f.p.Observe(vtrace.Event{At: at, Kind: vtrace.KindMigCost, Subject: task,
		A0: id, A1: cycles})
}

const ms = sim.Millisecond

func at(n int) sim.Time { return sim.Time(n) * sim.Time(ms) }

func wantNS(t *testing.T, s *Span, c Cause, want sim.Duration) {
	t.Helper()
	if got := s.NS[c]; got != want {
		t.Errorf("%s = %v, want %v", c, got, want)
	}
}

// TestRunAndStealClassification: a task running while its vCPU is preempted
// accrues steal-wait blamed on the entity holding the thread.
func TestRunAndStealClassification(t *testing.T) {
	f := newFeed(2.0)
	f.ent(0, "vm/vcpu0", host.Blocked, host.Running, 0)
	f.speed(0, 0, 2e6)
	f.wakeup(0, "a", 1, 0, -1)
	f.on(0, "a", 1, 0)
	// Host preempts the vCPU for a co-tenant for 5ms.
	f.ent(at(10), "vm/vcpu0", host.Running, host.Runnable, 0)
	f.ent(at(10), "tenant", host.Runnable, host.Running, 0)
	f.ent(at(15), "tenant", host.Running, host.Blocked, 0)
	f.ent(at(15), "vm/vcpu0", host.Runnable, host.Running, 0)
	f.off(at(20), "a", 1, 0, 0)

	prof := f.p.Finish(at(20))
	if err := prof.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if len(prof.Spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(prof.Spans))
	}
	s := &prof.Spans[0]
	if s.Wall() != 20*ms {
		t.Fatalf("wall = %v, want 20ms", s.Wall())
	}
	wantNS(t, s, Run, 15*ms)
	wantNS(t, s, StealWait, 5*ms)
	if len(s.StealBy) != 1 || s.StealBy[0].Entity != "tenant" || s.StealBy[0].Wait != 5*ms {
		t.Fatalf("StealBy = %+v, want tenant 5ms", s.StealBy)
	}
}

// TestRunnableWaitVsStealWait: a queued task waits on the guest scheduler
// while its vCPU runs, and on the host while the vCPU is descheduled.
func TestRunnableWaitVsStealWait(t *testing.T) {
	f := newFeed(2.0)
	f.ent(0, "vm/vcpu0", host.Blocked, host.Running, 0)
	f.speed(0, 0, 2e6)
	f.wakeup(0, "a", 1, 0, -1)
	f.on(0, "a", 1, 0)
	f.wakeup(0, "b", 2, 0, -1) // queued behind a
	f.ent(at(10), "vm/vcpu0", host.Running, host.Runnable, 0)
	f.ent(at(10), "tenant", host.Runnable, host.Running, 0)
	f.ent(at(15), "tenant", host.Running, host.Blocked, 0)
	f.ent(at(15), "vm/vcpu0", host.Runnable, host.Running, 0)
	f.off(at(20), "a", 1, 0, 0)
	f.on(at(20), "b", 2, 0)
	f.off(at(25), "b", 2, 0, 0)

	prof := f.p.Finish(at(25))
	if err := prof.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if len(prof.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(prof.Spans))
	}
	b := &prof.Spans[1]
	if b.Task != "b" {
		t.Fatalf("second span = %s, want b", b.Task)
	}
	wantNS(t, b, RunnableWait, 15*ms) // 0-10 queued + 15-20 queued
	wantNS(t, b, StealWait, 5*ms)     // 10-15 vCPU descheduled
	wantNS(t, b, Run, 5*ms)           // 20-25
}

// TestSMTSlowdownSplit: run time at half the nominal speed splits evenly
// into run and smt-slowdown, summing exactly.
func TestSMTSlowdownSplit(t *testing.T) {
	f := newFeed(2.0)
	f.ent(0, "vm/vcpu0", host.Blocked, host.Running, 0)
	f.speed(0, 0, 2e6)
	f.wakeup(0, "a", 1, 0, -1)
	f.on(0, "a", 1, 0)
	f.speed(at(10), 0, 1e6) // sibling woke: half speed
	f.off(at(20), "a", 1, 0, 0)

	prof := f.p.Finish(at(20))
	if err := prof.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	s := &prof.Spans[0]
	wantNS(t, s, Run, 15*ms)
	wantNS(t, s, SMTSlowdown, 5*ms)
}

// TestTurboNeverNegative: speed above nominal must not produce a negative
// smt-slowdown component.
func TestTurboNeverNegative(t *testing.T) {
	f := newFeed(2.0)
	f.ent(0, "vm/vcpu0", host.Blocked, host.Running, 0)
	f.speed(0, 0, 23e5) // 1.15x turbo
	f.wakeup(0, "a", 1, 0, -1)
	f.on(0, "a", 1, 0)
	f.off(at(10), "a", 1, 0, 0)

	prof := f.p.Finish(at(10))
	s := &prof.Spans[0]
	wantNS(t, s, Run, 10*ms)
	wantNS(t, s, SMTSlowdown, 0)
}

// TestThrottleWait: a Throttled vCPU accrues throttle-wait whether the task
// is installed or queued.
func TestThrottleWait(t *testing.T) {
	f := newFeed(2.0)
	f.ent(0, "vm/vcpu0", host.Blocked, host.Running, 0)
	f.speed(0, 0, 2e6)
	f.wakeup(0, "a", 1, 0, -1)
	f.on(0, "a", 1, 0)
	f.ent(at(10), "vm/vcpu0", host.Running, host.Throttled, 0)
	f.ent(at(30), "vm/vcpu0", host.Throttled, host.Runnable, 0)
	f.ent(at(30), "vm/vcpu0", host.Runnable, host.Running, 0)
	f.off(at(35), "a", 1, 0, 0)

	prof := f.p.Finish(at(35))
	if err := prof.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	s := &prof.Spans[0]
	wantNS(t, s, Run, 15*ms)
	wantNS(t, s, ThrottleWait, 20*ms)
}

// TestMigrationCarve: traced migration cost converts to nanoseconds at
// nominal speed and is carved out of subsequent run time.
func TestMigrationCarve(t *testing.T) {
	f := newFeed(2.0)
	f.ent(0, "vm/vcpu0", host.Blocked, host.Running, 0)
	f.ent(0, "vm/vcpu1", host.Blocked, host.Running, 1)
	f.speed(0, 0, 2e6)
	f.speed(0, 1, 2e6)
	f.wakeup(0, "a", 1, 0, -1)
	f.on(0, "a", 1, 0)
	f.off(at(10), "a", 1, 0, 1)          // pulled while runnable
	f.migCost(at(10), "a", 1, 2_000_000) // 2e6 cycles @ 2.0 = 1ms
	f.migrate(at(10), "a", 1, 0, 1)
	f.on(at(10), "a", 1, 1)
	f.off(at(20), "a", 1, 1, 0)

	prof := f.p.Finish(at(20))
	if err := prof.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	s := &prof.Spans[0]
	wantNS(t, s, Migration, 1*ms)
	wantNS(t, s, Run, 19*ms)
	if s.Migrations != 1 {
		t.Fatalf("Migrations = %d, want 1", s.Migrations)
	}
}

// TestPreemptionKeepsSpanOpen: TaskOff with the still-runnable flag must not
// close the span; the final blocking TaskOff does.
func TestPreemptionKeepsSpanOpen(t *testing.T) {
	f := newFeed(2.0)
	f.ent(0, "vm/vcpu0", host.Blocked, host.Running, 0)
	f.speed(0, 0, 2e6)
	f.wakeup(0, "a", 1, 0, -1)
	f.on(0, "a", 1, 0)
	f.off(at(5), "a", 1, 0, 1) // guest preemption: still runnable
	f.on(at(8), "a", 1, 0)
	f.off(at(12), "a", 1, 0, 0)

	prof := f.p.Finish(at(12))
	if len(prof.Spans) != 1 {
		t.Fatalf("spans = %d, want 1 (preemption split the span)", len(prof.Spans))
	}
	s := &prof.Spans[0]
	if s.Wall() != 12*ms {
		t.Fatalf("wall = %v, want 12ms", s.Wall())
	}
	wantNS(t, s, Run, 9*ms)
	wantNS(t, s, RunnableWait, 3*ms)
}

// TestTruncatedSpansExcluded: a task first seen mid-run is reconstructed but
// not aggregated; a task never closed stays open.
func TestTruncatedSpansExcluded(t *testing.T) {
	f := newFeed(2.0)
	f.ent(0, "vm/vcpu0", host.Blocked, host.Running, 0)
	f.on(at(5), "mystery", 9, 0) // no wakeup seen
	f.off(at(10), "mystery", 9, 0, 0)
	f.wakeup(at(10), "open", 10, 0, -1)
	f.on(at(10), "open", 10, 0)

	prof := f.p.Finish(at(20))
	if len(prof.Spans) != 0 {
		t.Fatalf("spans = %d, want 0", len(prof.Spans))
	}
	if prof.Truncated != 1 {
		t.Fatalf("truncated = %d, want 1", prof.Truncated)
	}
	if prof.Open != 1 {
		t.Fatalf("open = %d, want 1", prof.Open)
	}
}

// TestCriticalPathChain: the critical path walks the waker chain backwards
// from the last-ending span.
func TestCriticalPathChain(t *testing.T) {
	f := newFeed(2.0)
	f.ent(0, "vm/vcpu0", host.Blocked, host.Running, 0)
	f.speed(0, 0, 2e6)
	// p runs, wakes c (waker id 1), c runs, wakes d (waker id 2).
	f.wakeup(0, "p", 1, 0, -1)
	f.on(0, "p", 1, 0)
	f.wakeup(at(5), "c", 2, 0, 1)
	f.off(at(5), "p", 1, 0, 0)
	f.on(at(5), "c", 2, 0)
	f.wakeup(at(9), "d", 3, 0, 2)
	f.off(at(9), "c", 2, 0, 0)
	f.on(at(9), "d", 3, 0)
	f.off(at(14), "d", 3, 0, 0)

	prof := f.p.Finish(at(14))
	chain, agg := prof.CriticalPath()
	if len(chain) != 3 {
		t.Fatalf("chain length = %d, want 3", len(chain))
	}
	order := []string{chain[0].Task, chain[1].Task, chain[2].Task}
	if !reflect.DeepEqual(order, []string{"p", "c", "d"}) {
		t.Fatalf("chain order = %v, want [p c d]", order)
	}
	if agg.Get(Run) != 14*ms {
		t.Fatalf("chain run = %v, want 14ms", agg.Get(Run))
	}
}

// TestPerTaskAndFlatten: aggregation orders are by name and the flat map
// carries every cause.
func TestPerTaskAndFlatten(t *testing.T) {
	f := newFeed(2.0)
	f.ent(0, "vm/vcpu0", host.Blocked, host.Running, 0)
	f.speed(0, 0, 2e6)
	f.wakeup(0, "z", 1, 0, -1)
	f.on(0, "z", 1, 0)
	f.off(at(3), "z", 1, 0, 0)
	f.wakeup(at(3), "a", 2, 0, -1)
	f.on(at(3), "a", 2, 0)
	f.off(at(7), "a", 2, 0, 0)

	prof := f.p.Finish(at(7))
	per := prof.PerTask()
	if len(per) != 2 || per[0].Task != "a" || per[1].Task != "z" {
		t.Fatalf("PerTask order wrong: %+v", per)
	}
	flat := prof.Flatten()
	for _, c := range Causes() {
		for _, suffix := range []string{"_ns", "_share", "_p95_ns"} {
			if _, ok := flat[c.Key()+suffix]; !ok {
				t.Fatalf("Flatten missing %s%s", c.Key(), suffix)
			}
		}
	}
	if flat["spans"] != 2 {
		t.Fatalf("spans = %v, want 2", flat["spans"])
	}
	if flat["run_ns"] != float64(7*ms) {
		t.Fatalf("run_ns = %v, want %v", flat["run_ns"], float64(7*ms))
	}
}
