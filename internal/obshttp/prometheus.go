package obshttp

import (
	"strconv"

	"vsched/internal/progress"
)

// Prometheus text-format exposition (version 0.0.4). Simulator metric names
// are dotted ("fleet.macro.placed"), which is not a legal Prometheus metric
// name, so each mirror family becomes one fixed, legal family and the
// simulator name travels as a label value — where arbitrary bytes are legal
// once \, ", and newline are escaped.
//
// The steady-state path is allocation-free beyond the response buffer:
// every writer below appends into a caller-owned []byte (strconv.Append*,
// no fmt, no intermediate strings).

const expoHeader = `# HELP vsched_up Whether the observability server is serving.
# TYPE vsched_up gauge
vsched_up 1
# HELP vsched_obs_scrapes_total Number of /metrics scrapes served.
# TYPE vsched_obs_scrapes_total counter
`

const expoFamilies = `# HELP vsched_obs_events_published_total Progress events published to the run's bus.
# TYPE vsched_obs_events_published_total counter
# HELP vsched_metric Live metrics.Registry value (counter, gauge, or histogram key), published at simulation safepoints.
# TYPE vsched_metric gauge
# HELP vsched_telemetry_last Last sample of a telemetry flight-recorder series.
# TYPE vsched_telemetry_last gauge
# HELP vsched_self Simulator self-census: timing-wheel stats, vtrace drop counts, recorder occupancy.
# TYPE vsched_self gauge
`

// runExpo is one run's scrape-time state: the immutable mirror snapshot
// plus bus counters.
type runExpo struct {
	id        string
	published uint64
	samples   []progress.Sample
}

var familyName = [...]string{
	progress.FamMetric:    "vsched_metric",
	progress.FamTelemetry: "vsched_telemetry_last",
	progress.FamSelf:      "vsched_self",
}

var familyLabel = [...]string{
	progress.FamMetric:    "name",
	progress.FamTelemetry: "series",
	progress.FamSelf:      "name",
}

// appendExposition renders the full /metrics payload into buf.
func appendExposition(buf []byte, scrapes uint64, runs []runExpo) []byte {
	buf = append(buf, expoHeader...)
	buf = append(buf, "vsched_obs_scrapes_total "...)
	buf = strconv.AppendUint(buf, scrapes, 10)
	buf = append(buf, '\n')
	buf = append(buf, expoFamilies...)
	for _, r := range runs {
		buf = append(buf, "vsched_obs_events_published_total{run=\""...)
		buf = appendEscaped(buf, r.id)
		buf = append(buf, "\"} "...)
		buf = strconv.AppendUint(buf, r.published, 10)
		buf = append(buf, '\n')
		for _, sm := range r.samples {
			buf = appendSample(buf, r.id, sm)
		}
	}
	return buf
}

// appendSample renders one `family{run="...",name="..."} value` line.
func appendSample(buf []byte, runID string, sm progress.Sample) []byte {
	if int(sm.Fam) >= len(familyName) {
		return buf
	}
	buf = append(buf, familyName[sm.Fam]...)
	buf = append(buf, "{run=\""...)
	buf = appendEscaped(buf, runID)
	buf = append(buf, "\","...)
	buf = append(buf, familyLabel[sm.Fam]...)
	buf = append(buf, "=\""...)
	buf = appendEscaped(buf, sm.Name)
	buf = append(buf, "\"} "...)
	buf = appendFloat(buf, sm.Value)
	buf = append(buf, '\n')
	return buf
}

// appendFloat renders v the way Prometheus expects: shortest 'g' form, with
// NaN/+Inf/-Inf spelled exactly so (strconv already emits those).
func appendFloat(buf []byte, v float64) []byte {
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}

// appendEscaped appends s as a Prometheus label value: backslash, double
// quote, and newline are escaped; all other bytes (including arbitrary
// UTF-8) pass through.
func appendEscaped(buf []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			buf = append(buf, '\\', '\\')
		case '"':
			buf = append(buf, '\\', '"')
		case '\n':
			buf = append(buf, '\\', 'n')
		default:
			buf = append(buf, c)
		}
	}
	return buf
}
