// Package obshttp is the embedded live observability server: any
// long-running simulation registers a run, publishes progress into its
// bounded bus and metric mirror (internal/progress), and obshttp serves
// that state over HTTP — Prometheus text exposition on /metrics, an
// NDJSON/SSE structured progress stream on /runs/{id}/events, a /runs
// listing, /healthz, and the standard pprof mux — without ever touching
// live simulation state. Everything the handlers read arrived through a
// lock-free handoff at a simulation safepoint, so attaching the server (and
// scraping it concurrently) cannot perturb a determinism-gated run.
package obshttp

import (
	"encoding/json"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vsched/internal/progress"
)

// Options configures a Server.
type Options struct {
	// Log receives structured server logs; nil discards them.
	Log *slog.Logger
	// BusSize is the per-run progress ring capacity (progress.DefaultBusSize
	// if <= 0).
	BusSize int
	// PollInterval is how often event-stream handlers poll the bus for new
	// events (25ms if <= 0). Tests lower it.
	PollInterval time.Duration
}

// Run is one registered simulation run: a stable ID, the publisher handles
// the simulation writes into, and a run-scoped logger.
type Run struct {
	ID  string
	pub *progress.Publisher
	log *slog.Logger
}

// Publisher returns the handles the simulation publishes through. Pass it
// to harness.Config.Obs / fleet.MacroConfig.Obs.
func (r *Run) Publisher() *progress.Publisher { return r.pub }

// Log returns the run-scoped structured logger.
func (r *Run) Log() *slog.Logger { return r.log }

// Finish marks the run's bus done so event streams drain and close. The run
// stays registered: its final mirror snapshot remains scrape-visible.
func (r *Run) Finish() {
	r.pub.MarkDone()
	r.log.Info("run finished", "events", r.pub.Bus.Seq())
}

// Server is the embeddable observability HTTP server.
type Server struct {
	log  *slog.Logger
	mux  *http.ServeMux
	poll time.Duration
	bus  int

	mu   sync.Mutex
	runs []*Run
	byID map[string]*Run

	scrapes atomic.Uint64

	srv *http.Server
	lis net.Listener

	expoPool sync.Pool
}

// New builds a server with no runs registered.
func New(opts Options) *Server {
	log := opts.Log
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := &Server{
		log:  log,
		mux:  http.NewServeMux(),
		poll: opts.PollInterval,
		bus:  opts.BusSize,
		byID: make(map[string]*Run),
	}
	if s.poll <= 0 {
		s.poll = 25 * time.Millisecond
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /runs", s.handleRuns)
	s.mux.HandleFunc("GET /runs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Register adds a run and returns its handle. IDs must be unique; a
// duplicate gets a deterministic "-2", "-3", ... suffix.
func (s *Server) Register(id string) *Run {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id == "" {
		id = "run"
	}
	base := id
	for n := 2; ; n++ {
		if _, taken := s.byID[id]; !taken {
			break
		}
		id = base + "-" + strconv.Itoa(n)
	}
	r := &Run{
		ID:  id,
		pub: progress.NewPublisher(s.bus),
		log: s.log.With("run", id),
	}
	s.runs = append(s.runs, r)
	s.byID[id] = r
	r.log.Info("run registered")
	return r
}

// Lookup returns the run with the given ID, or nil.
func (s *Server) Lookup(id string) *Run {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byID[id]
}

// snapshotRuns returns the registered runs in registration order.
func (s *Server) snapshotRuns() []*Run {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Run, len(s.runs))
	copy(out, s.runs)
	return out
}

// Handler returns the server's mux, for embedding or httptest.
func (s *Server) Handler() http.Handler { return s.mux }

// Scrapes returns how many /metrics scrapes have been served.
func (s *Server) Scrapes() uint64 { return s.scrapes.Load() }

// ListenAndServe binds addr (":0" and "host:0" pick an ephemeral port) and
// serves in a background goroutine. It returns the bound address.
func (s *Server) ListenAndServe(addr string) (string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.lis = lis
	s.srv = &http.Server{Handler: s.mux}
	go func() {
		if err := s.srv.Serve(lis); err != nil && err != http.ErrServerClosed {
			s.log.Error("obs server exited", "err", err)
		}
	}()
	bound := lis.Addr().String()
	s.log.Info("obs server listening", "addr", bound)
	return bound, nil
}

// Close stops the listener and all in-flight handlers.
func (s *Server) Close() error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

// runInfo is one /runs listing entry.
type runInfo struct {
	ID              string `json:"id"`
	EventsPublished uint64 `json:"events_published"`
	MirrorPublishes uint64 `json:"mirror_publishes"`
	Done            bool   `json:"done"`
}

func (s *Server) handleRuns(w http.ResponseWriter, _ *http.Request) {
	runs := s.snapshotRuns()
	infos := make([]runInfo, 0, len(runs))
	for _, r := range runs {
		infos = append(infos, runInfo{
			ID:              r.ID,
			EventsPublished: r.pub.Bus.Seq(),
			MirrorPublishes: r.pub.Mirror.Published(),
			Done:            r.pub.Bus.Done(),
		})
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(infos)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	scrape := s.scrapes.Add(1)
	runs := s.snapshotRuns()
	expos := make([]runExpo, 0, len(runs))
	for _, r := range runs {
		expos = append(expos, runExpo{
			id:        r.ID,
			published: r.pub.Bus.Seq(),
			samples:   r.pub.Mirror.Load(),
		})
	}
	buf, _ := s.expoPool.Get().([]byte)
	buf = appendExposition(buf[:0], scrape, expos)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(buf)
	s.expoPool.Put(buf) //nolint:staticcheck // slice reuse, pointer-shape loss is fine
}

// streamRecord is the envelope for non-event records on the progress
// stream: drop notices and the terminal summary.
type streamRecord struct {
	Kind     string `json:"kind"`
	Dropped  uint64 `json:"dropped"`
	Received uint64 `json:"received,omitempty"`
}

func (s *Server) handleEvents(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	run := s.Lookup(id)
	if run == nil {
		http.Error(w, "unknown run", http.StatusNotFound)
		return
	}
	sse := strings.Contains(req.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	flusher, _ := w.(http.Flusher)
	// Commit headers before the first event so clients unblock immediately
	// and can start consuming a stream that may stay quiet for a while.
	w.WriteHeader(http.StatusOK)
	if flusher != nil {
		flusher.Flush()
	}
	enc := json.NewEncoder(w)
	write := func(v any) bool {
		if sse {
			if _, err := io.WriteString(w, "data: "); err != nil {
				return false
			}
		}
		if err := enc.Encode(v); err != nil {
			return false
		}
		if sse {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return false
			}
		}
		return true
	}

	bus := run.pub.Bus
	reader := bus.NewReader(true)
	run.log.Info("event stream attached", "sse", sse)
	var (
		received     uint64
		reportedDrop uint64
		buf          [64]progress.Event
	)
	ticker := time.NewTicker(s.poll)
	defer ticker.Stop()
	for {
		wrote := false
		for {
			n := reader.Poll(buf[:])
			if n == 0 {
				break
			}
			if d := reader.Dropped(); d > reportedDrop {
				// The consumer fell a full ring behind; report exactly how
				// much history it lost instead of silently skipping.
				reportedDrop = d
				if !write(streamRecord{Kind: "drops", Dropped: d}) {
					return
				}
			}
			for _, ev := range buf[:n] {
				if !write(bus.Wire(ev)) {
					return
				}
				received++
			}
			wrote = true
		}
		if wrote && flusher != nil {
			flusher.Flush()
		}
		if bus.Done() && reader.Drained() {
			write(streamRecord{Kind: "stream_end", Dropped: reader.Dropped(), Received: received})
			if flusher != nil {
				flusher.Flush()
			}
			run.log.Info("event stream drained", "received", received, "dropped", reader.Dropped())
			return
		}
		select {
		case <-req.Context().Done():
			run.log.Info("event stream client gone", "received", received, "dropped", reader.Dropped())
			return
		case <-ticker.C:
		}
	}
}
