package obshttp

import (
	"math"
	"strings"
	"testing"

	"vsched/internal/progress"
)

// TestExpositionGolden pins the full exposition byte-for-byte, including
// hostile label values (quotes, backslashes, newlines, UTF-8) and the
// special float spellings.
func TestExpositionGolden(t *testing.T) {
	runs := []runExpo{
		{
			id:        "obsplane",
			published: 42,
			samples: []progress.Sample{
				{Fam: progress.FamMetric, Name: "fleet.macro.placed", Value: 115000},
				{Fam: progress.FamMetric, Name: `weird"name`, Value: 1.5},
				{Fam: progress.FamMetric, Name: "back\\slash", Value: -2},
				{Fam: progress.FamMetric, Name: "new\nline", Value: 0.1},
				{Fam: progress.FamMetric, Name: "unicode.héllo", Value: 3},
				{Fam: progress.FamTelemetry, Name: "fleet.macro.util_mean", Value: 0.625},
				{Fam: progress.FamTelemetry, Name: "nan.series", Value: math.NaN()},
				{Fam: progress.FamSelf, Name: "sim.wheel.resident", Value: 1024},
				{Fam: progress.FamSelf, Name: "inf.up", Value: math.Inf(1)},
				{Fam: progress.FamSelf, Name: "inf.down", Value: math.Inf(-1)},
			},
		},
		{id: `run"2`, published: 0, samples: nil},
	}
	got := string(appendExposition(nil, 7, runs))
	want := `# HELP vsched_up Whether the observability server is serving.
# TYPE vsched_up gauge
vsched_up 1
# HELP vsched_obs_scrapes_total Number of /metrics scrapes served.
# TYPE vsched_obs_scrapes_total counter
vsched_obs_scrapes_total 7
# HELP vsched_obs_events_published_total Progress events published to the run's bus.
# TYPE vsched_obs_events_published_total counter
# HELP vsched_metric Live metrics.Registry value (counter, gauge, or histogram key), published at simulation safepoints.
# TYPE vsched_metric gauge
# HELP vsched_telemetry_last Last sample of a telemetry flight-recorder series.
# TYPE vsched_telemetry_last gauge
# HELP vsched_self Simulator self-census: timing-wheel stats, vtrace drop counts, recorder occupancy.
# TYPE vsched_self gauge
vsched_obs_events_published_total{run="obsplane"} 42
vsched_metric{run="obsplane",name="fleet.macro.placed"} 115000
vsched_metric{run="obsplane",name="weird\"name"} 1.5
vsched_metric{run="obsplane",name="back\\slash"} -2
vsched_metric{run="obsplane",name="new\nline"} 0.1
vsched_metric{run="obsplane",name="unicode.héllo"} 3
vsched_telemetry_last{run="obsplane",series="fleet.macro.util_mean"} 0.625
vsched_telemetry_last{run="obsplane",series="nan.series"} NaN
vsched_self{run="obsplane",name="sim.wheel.resident"} 1024
vsched_self{run="obsplane",name="inf.up"} +Inf
vsched_self{run="obsplane",name="inf.down"} -Inf
vsched_obs_events_published_total{run="run\"2"} 0
`
	if got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestExpositionValidTextFormat checks structural validity of every
// non-comment line: name{labels} value, balanced quotes, no raw newlines
// inside label values.
func TestExpositionValidTextFormat(t *testing.T) {
	runs := []runExpo{{
		id:        "r\n1",
		published: 1,
		samples: []progress.Sample{
			{Fam: progress.FamMetric, Name: "a\nb\"c\\d", Value: math.NaN()},
		},
	}}
	out := string(appendExposition(nil, 1, runs))
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, rest, _ := strings.Cut(line, " ")
		if name == "" || rest == "" {
			t.Fatalf("malformed line %q", line)
		}
		base, _, hasLabels := strings.Cut(name, "{")
		for _, c := range base {
			if !(c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')) {
				t.Fatalf("illegal metric name char %q in line %q", c, line)
			}
		}
		if hasLabels && !strings.HasSuffix(name, "}") {
			t.Fatalf("unbalanced label braces in %q", line)
		}
	}
}

// TestAppendSampleAllocFree proves the per-value exposition path allocates
// nothing once the response buffer has capacity.
func TestAppendSampleAllocFree(t *testing.T) {
	buf := make([]byte, 0, 4096)
	sm := progress.Sample{Fam: progress.FamMetric, Name: "fleet.macro.placed", Value: 12345.678}
	allocs := testing.AllocsPerRun(1000, func() {
		buf = appendSample(buf[:0], "obsplane", sm)
	})
	if allocs != 0 {
		t.Fatalf("appendSample allocates %.1f per value, want 0", allocs)
	}
	runs := []runExpo{{id: "r", published: 9, samples: []progress.Sample{sm, sm, sm}}}
	big := make([]byte, 0, 1<<16)
	allocs = testing.AllocsPerRun(1000, func() {
		big = appendExposition(big[:0], 3, runs)
	})
	if allocs != 0 {
		t.Fatalf("appendExposition allocates %.1f per scrape, want 0", allocs)
	}
}

func TestAppendEscaped(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"plain", "plain"},
		{`a\b`, `a\\b`},
		{`a"b`, `a\"b`},
		{"a\nb", `a\nb`},
		{"héllo", "héllo"},
		{"", ""},
		{"\\\"\n", `\\\"\n`},
	} {
		if got := string(appendEscaped(nil, tc.in)); got != tc.want {
			t.Errorf("appendEscaped(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
