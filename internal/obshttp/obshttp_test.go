package obshttp

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vsched/internal/progress"
)

func testServer(t *testing.T) *Server {
	t.Helper()
	return New(Options{PollInterval: time.Millisecond})
}

func TestHealthz(t *testing.T) {
	s := testServer(t)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 || rec.Body.String() != "ok\n" {
		t.Fatalf("healthz: %d %q", rec.Code, rec.Body.String())
	}
}

func TestRegisterDuplicateIDs(t *testing.T) {
	s := testServer(t)
	a := s.Register("fleet")
	b := s.Register("fleet")
	c := s.Register("fleet")
	if a.ID != "fleet" || b.ID != "fleet-2" || c.ID != "fleet-3" {
		t.Fatalf("ids: %q %q %q", a.ID, b.ID, c.ID)
	}
	if s.Lookup("fleet-2") != b || s.Lookup("nope") != nil {
		t.Fatalf("lookup broken")
	}
}

func TestRunsListing(t *testing.T) {
	s := testServer(t)
	r1 := s.Register("alpha")
	s.Register("beta")
	r1.Publisher().Publish(progress.Event{Kind: progress.KindRunStart})
	r1.Publisher().PublishMirror(func(add func(progress.Family, string, float64)) {
		add(progress.FamMetric, "x", 1)
	})
	r1.Finish()

	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/runs", nil))
	var infos []runInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &infos); err != nil {
		t.Fatalf("bad /runs JSON: %v\n%s", err, rec.Body.String())
	}
	if len(infos) != 2 || infos[0].ID != "alpha" || infos[1].ID != "beta" {
		t.Fatalf("listing: %+v", infos)
	}
	if infos[0].EventsPublished != 1 || !infos[0].Done || infos[0].MirrorPublishes != 1 {
		t.Fatalf("alpha info: %+v", infos[0])
	}
	if infos[1].Done {
		t.Fatalf("beta should not be done")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s := testServer(t)
	r := s.Register("obsplane")
	r.Publisher().PublishMirror(func(add func(progress.Family, string, float64)) {
		add(progress.FamMetric, "fleet.macro.placed", 115000)
		add(progress.FamSelf, "sim.wheel.resident", 7)
	})
	r.Publisher().Publish(progress.Event{Kind: progress.KindEpoch})

	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	for _, want := range []string{
		"vsched_up 1\n",
		"vsched_obs_scrapes_total 1\n",
		`vsched_obs_events_published_total{run="obsplane"} 1` + "\n",
		`vsched_metric{run="obsplane",name="fleet.macro.placed"} 115000` + "\n",
		`vsched_self{run="obsplane",name="sim.wheel.resident"} 7` + "\n",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("missing %q in:\n%s", want, body)
		}
	}
	if s.Scrapes() != 1 {
		t.Fatalf("scrapes = %d", s.Scrapes())
	}
}

func TestPprofMounted(t *testing.T) {
	s := testServer(t)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "goroutine") {
		t.Fatalf("pprof index: %d", rec.Code)
	}
}

// TestEventStreamNDJSON runs a real server over TCP, publishes a run's
// worth of events, and checks the stream delivers them in order and closes
// with an exact stream_end summary.
func TestEventStreamNDJSON(t *testing.T) {
	s := testServer(t)
	addr, err := s.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	run := s.Register("demo")
	pub := run.Publisher()
	lbl := pub.Label("demo")
	pub.Publish(progress.Event{Kind: progress.KindRunStart, Label: lbl, Total: 3})
	for i := 1; i <= 3; i++ {
		pub.Publish(progress.Event{Kind: progress.KindEpoch, Epoch: int64(i), Admitted: int64(i), Running: int64(i)})
	}
	pub.Publish(progress.Event{Kind: progress.KindRunDone, Admitted: 3, Completed: 3})
	run.Finish()

	resp, err := http.Get("http://" + addr + "/runs/demo/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var kinds []string
	var end streamRecord
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		kind := m["kind"].(string)
		kinds = append(kinds, kind)
		if kind == "stream_end" {
			json.Unmarshal(sc.Bytes(), &end)
		}
	}
	want := []string{"run_start", "epoch", "epoch", "epoch", "run_done", "stream_end"}
	if strings.Join(kinds, ",") != strings.Join(want, ",") {
		t.Fatalf("kinds = %v, want %v", kinds, want)
	}
	if end.Received != 5 || end.Dropped != 0 {
		t.Fatalf("stream_end = %+v", end)
	}
}

func TestEventStreamSSE(t *testing.T) {
	s := testServer(t)
	run := s.Register("demo")
	run.Publisher().Publish(progress.Event{Kind: progress.KindRunDone})
	run.Finish()

	req := httptest.NewRequest("GET", "/runs/demo/events", nil)
	req.Header.Set("Accept", "text/event-stream")
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	body := rec.Body.String()
	if ct := rec.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(body, `data: {"seq":0,"kind":"run_done"`) {
		t.Fatalf("SSE body:\n%s", body)
	}
	if !strings.Contains(body, `"kind":"stream_end"`) {
		t.Fatalf("missing stream_end:\n%s", body)
	}
}

func TestEventStreamUnknownRun(t *testing.T) {
	s := testServer(t)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/runs/nope/events", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("code = %d", rec.Code)
	}
}

// TestEventStreamDropNotice overflows a tiny ring before the consumer
// attaches and checks the stream reports the exact drop count.
func TestEventStreamDropNotice(t *testing.T) {
	s := New(Options{PollInterval: time.Millisecond, BusSize: 8})
	run := s.Register("lossy")
	pub := run.Publisher()
	for i := 0; i < 20; i++ {
		pub.Publish(progress.Event{Kind: progress.KindEpoch, Epoch: int64(i)})
	}
	run.Finish()

	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/runs/lossy/events", nil))
	var dropNotice, end streamRecord
	var events int
	sc := bufio.NewScanner(strings.NewReader(rec.Body.String()))
	for sc.Scan() {
		var m map[string]any
		json.Unmarshal(sc.Bytes(), &m)
		switch m["kind"] {
		case "drops":
			json.Unmarshal(sc.Bytes(), &dropNotice)
		case "stream_end":
			json.Unmarshal(sc.Bytes(), &end)
		default:
			events++
		}
	}
	if dropNotice.Dropped != 12 {
		t.Fatalf("drop notice = %+v, want 12 dropped", dropNotice)
	}
	if events != 8 || end.Received != 8 || end.Dropped != 12 {
		t.Fatalf("events=%d end=%+v; want 8 received + 12 dropped = 20 published", events, end)
	}
}

// TestLiveStreamWhilePublishing attaches the consumer first, then
// publishes from another goroutine — the streaming path, not the drain-
// after-done path.
func TestLiveStreamWhilePublishing(t *testing.T) {
	s := testServer(t)
	addr, err := s.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	run := s.Register("live")
	pub := run.Publisher()

	resp, err := http.Get("http://" + addr + "/runs/live/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	go func() {
		for i := 0; i < 50; i++ {
			pub.Publish(progress.Event{Kind: progress.KindEpoch, Epoch: int64(i)})
			time.Sleep(100 * time.Microsecond)
		}
		pub.Publish(progress.Event{Kind: progress.KindRunDone, Admitted: 50})
		run.Finish()
	}()

	var got, dropped int
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatal(err)
		}
		switch m["kind"] {
		case "epoch", "run_done":
			got++
		case "drops":
			dropped = int(m["dropped"].(float64))
		case "stream_end":
			dropped = int(m["dropped"].(float64))
		}
	}
	if err := sc.Err(); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if got+dropped != 51 {
		t.Fatalf("received %d + dropped %d != 51 published", got, dropped)
	}
}
