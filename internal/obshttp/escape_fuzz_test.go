package obshttp

import (
	"bytes"
	"strings"
	"testing"

	"vsched/internal/progress"
)

// unescapeLabel inverts appendEscaped; only used to state the round-trip
// property in tests.
func unescapeLabel(s string) (string, bool) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '"' || c == '\n' {
			return "", false // raw specials must never survive escaping
		}
		if c != '\\' {
			b.WriteByte(c)
			continue
		}
		i++
		if i >= len(s) {
			return "", false
		}
		switch s[i] {
		case '\\':
			b.WriteByte('\\')
		case '"':
			b.WriteByte('"')
		case 'n':
			b.WriteByte('\n')
		default:
			return "", false
		}
	}
	return b.String(), true
}

// FuzzAppendEscaped checks the two properties the exposition format needs:
// the escaped form never contains a raw quote/newline or a dangling
// backslash (so the surrounding `name="..."` syntax can't be broken), and
// escaping is lossless.
func FuzzAppendEscaped(f *testing.F) {
	for _, seed := range []string{
		"", "plain", `back\slash`, `quo"te`, "new\nline", "héllo wörld",
		`\\`, `\"`, "\n\n\n", `trailing\`, "mixed\\\"\nstuff", string([]byte{0, 1, 255}),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		esc := appendEscaped(nil, s)
		if bytes.ContainsRune(esc, '\n') {
			t.Fatalf("escaped %q contains raw newline: %q", s, esc)
		}
		for i := 0; i < len(esc); i++ {
			if esc[i] == '"' && (i == 0 || esc[i-1] != '\\') {
				t.Fatalf("escaped %q contains unescaped quote: %q", s, esc)
			}
		}
		back, ok := unescapeLabel(string(esc))
		if !ok {
			t.Fatalf("escaped %q is not well-formed: %q", s, esc)
		}
		if back != s {
			t.Fatalf("round-trip lost data: %q -> %q -> %q", s, esc, back)
		}
		// A full sample line built from this name must stay one line.
		line := appendSample(nil, s, progress.Sample{Fam: progress.FamMetric, Name: s, Value: 1})
		if n := bytes.Count(line, []byte{'\n'}); n != 1 {
			t.Fatalf("sample line for %q has %d newlines: %q", s, n, line)
		}
	})
}
