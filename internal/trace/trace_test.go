package trace

import (
	"strings"
	"testing"

	"vsched/internal/host"
	"vsched/internal/sim"
)

func TestTimelineRecordsAndIntegrates(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := host.DefaultConfig()
	cfg.Sockets, cfg.CoresPerSocket, cfg.ThreadsPerCore = 1, 2, 1
	h := host.New(eng, cfg)
	e := h.NewEntity("v", h.Thread(0), host.DefaultWeight, host.NopClient{})
	tl := Attach(e)
	e.Wake()
	host.NewPatternContender(h, "p", h.Thread(0), 5*sim.Millisecond, 5*sim.Millisecond, 0)
	eng.RunFor(100 * sim.Millisecond)

	if len(tl.Events) == 0 {
		t.Fatal("no transitions recorded")
	}
	frac := tl.RunningFraction(0, sim.Time(100*sim.Millisecond))
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("running fraction=%v want ~0.5", frac)
	}
	run := tl.TimeIn(host.Running, 0, sim.Time(100*sim.Millisecond))
	wait := tl.TimeIn(host.Runnable, 0, sim.Time(100*sim.Millisecond))
	if run+wait < 99*sim.Millisecond {
		t.Fatalf("run+wait=%v want ~100ms", run+wait)
	}

	strip := tl.Render(50, 0, sim.Time(100*sim.Millisecond))
	if len(strip) != 50 {
		t.Fatalf("strip len=%d", len(strip))
	}
	if !strings.Contains(strip, "#") || !strings.Contains(strip, ".") {
		t.Fatalf("strip should show both running and waiting: %q", strip)
	}
}

func TestRenderEdgeCases(t *testing.T) {
	tl := &Timeline{Initial: host.Blocked}
	if tl.Render(0, 0, 10) != "" {
		t.Fatal("zero width must render empty")
	}
	if tl.Render(10, 10, 10) != "" {
		t.Fatal("empty interval must render empty")
	}
	if got := tl.Render(4, 0, 100); got != "    " {
		t.Fatalf("blocked strip wrong: %q", got)
	}
	if tl.RunningFraction(10, 10) != 0 {
		t.Fatal("degenerate fraction must be 0")
	}
}
