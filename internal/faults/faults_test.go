package faults

import (
	"reflect"
	"testing"

	"vsched/internal/sim"
)

func testConfig() Config {
	return Config{
		CrashMTBF:    40 * Hour,
		BrownoutMTBF: 20 * Hour,
		StallMTBF:    10 * Hour,
		MigFailProb:  0.1,
	}
}

const Hour = 3600 * sim.Second

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(7, 64, 48*Hour, testConfig())
	b := Generate(7, 64, 48*Hour, testConfig())
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (seed, config) produced different schedules")
	}
	c := Generate(8, 64, 48*Hour, testConfig())
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatal("different seeds produced identical schedules")
	}
}

// Adding hosts must not perturb the events of existing hosts: each host's
// process draws from its own sub-stream.
func TestGenerateHostStreamsIndependent(t *testing.T) {
	small := Generate(7, 8, 48*Hour, testConfig())
	big := Generate(7, 16, 48*Hour, testConfig())
	filter := func(s Schedule) []Event {
		var out []Event
		for _, e := range s.Events {
			if e.Host < 8 {
				out = append(out, e)
			}
		}
		return out
	}
	if !reflect.DeepEqual(filter(small), filter(big)) {
		t.Fatal("growing the fleet changed existing hosts' fault events")
	}
}

func TestGenerateShape(t *testing.T) {
	horizon := 48 * Hour
	s := Generate(42, 64, horizon, testConfig())
	if len(s.Events) == 0 {
		t.Fatal("expected events at these MTBFs")
	}
	counts := map[Kind]int{}
	for i, e := range s.Events {
		if i > 0 {
			prev := s.Events[i-1]
			if e.At < prev.At || (e.At == prev.At && e.Host < prev.Host) {
				t.Fatalf("events not sorted at %d: %+v after %+v", i, e, prev)
			}
		}
		if e.Host < 0 || e.Host >= 64 {
			t.Fatalf("event host %d out of range", e.Host)
		}
		if e.At < 0 || e.At >= sim.Time(horizon) {
			t.Fatalf("event at %v outside horizon", e.At)
		}
		if e.Duration <= 0 {
			t.Fatalf("non-positive duration %v", e.Duration)
		}
		if e.Kind == Brownout && (e.Factor <= 0 || e.Factor >= 1) {
			t.Fatalf("brownout factor %v outside (0,1)", e.Factor)
		}
		if e.Kind != Brownout && e.Factor != 0 {
			t.Fatalf("%v event carries a factor", e.Kind)
		}
		counts[e.Kind]++
	}
	// Expected counts: hosts * horizon / (MTBF + mean duration), roughly.
	for kind, want := range map[Kind]float64{Crash: 64 * 48 / 40, Brownout: 64 * 48 / 20, Stall: 64 * 48 / 10} {
		got := float64(counts[kind])
		if got < want/2 || got > want*2 {
			t.Errorf("%v count %v implausible for expectation %.0f", kind, got, want)
		}
	}
}

// Same-kind faults on one host must never overlap (renewal measured from the
// end of the previous fault).
func TestGenerateNoSameKindOverlap(t *testing.T) {
	s := Generate(3, 32, 48*Hour, testConfig())
	last := map[[2]int]sim.Time{}
	for _, e := range s.Events {
		key := [2]int{e.Host, int(e.Kind)}
		if until, ok := last[key]; ok && e.At < until {
			t.Fatalf("host %d %v fault at %v overlaps previous (until %v)", e.Host, e.Kind, e.At, until)
		}
		last[key] = e.Until()
	}
}

func TestGenerateDisabledKinds(t *testing.T) {
	cfg := testConfig()
	cfg.CrashMTBF, cfg.StallMTBF = 0, 0
	s := Generate(1, 16, 48*Hour, cfg)
	for _, e := range s.Events {
		if e.Kind != Brownout {
			t.Fatalf("disabled kind %v still generated", e.Kind)
		}
	}
}

func TestMigrationFails(t *testing.T) {
	s := Generate(9, 4, Hour, testConfig())
	fails := 0
	const n = 20000
	for i := uint64(0); i < n; i++ {
		if s.MigrationFails(i) != s.MigrationFails(i) {
			t.Fatal("MigrationFails not deterministic")
		}
		if s.MigrationFails(i) {
			fails++
		}
	}
	frac := float64(fails) / n
	if frac < 0.07 || frac > 0.13 {
		t.Fatalf("failure fraction %.3f far from configured 0.10", frac)
	}
	var zero *Schedule
	if zero.MigrationFails(1) {
		t.Fatal("nil schedule must never fail migrations")
	}
	none := Schedule{Seed: 9}
	if none.MigrationFails(1) {
		t.Fatal("zero probability must never fail migrations")
	}
}

func TestScheduleEmpty(t *testing.T) {
	var nilSched *Schedule
	if !nilSched.Empty() {
		t.Fatal("nil schedule should be empty")
	}
	s := Generate(9, 4, Hour, testConfig())
	if s.Empty() {
		t.Fatal("generated schedule with events reported empty")
	}
}

func TestBackoff(t *testing.T) {
	rc := RecoveryConfig{}.WithDefaults()
	if !rc.Enabled {
		// WithDefaults must not flip the enable bit.
		_ = rc
	}
	if got := rc.Backoff(1); got != 60*sim.Second {
		t.Fatalf("attempt 1 backoff %v, want 60s", got)
	}
	if got := rc.Backoff(2); got != 120*sim.Second {
		t.Fatalf("attempt 2 backoff %v, want 120s", got)
	}
	if got := rc.Backoff(20); got != 15*60*sim.Second {
		t.Fatalf("attempt 20 backoff %v, want the 15m cap", got)
	}
	if got := rc.Backoff(0); got != rc.Backoff(1) {
		t.Fatalf("attempt 0 should clamp to 1")
	}
	// Monotone non-decreasing.
	prev := sim.Duration(0)
	for i := 1; i < 24; i++ {
		d := rc.Backoff(i)
		if d < prev {
			t.Fatalf("backoff decreased at attempt %d: %v < %v", i, d, prev)
		}
		prev = d
	}
}

func TestValidatePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"bad factor range": func() {
			cfg := testConfig()
			cfg.FactorLo, cfg.FactorHi = 0.9, 0.2
			Generate(1, 4, Hour, cfg)
		},
		"factor above one": func() {
			cfg := testConfig()
			cfg.FactorLo, cfg.FactorHi = 0.5, 1.5
			Generate(1, 4, Hour, cfg)
		},
		"bad mig prob": func() {
			cfg := testConfig()
			cfg.MigFailProb = 1.0
			Generate(1, 4, Hour, cfg)
		},
		"no hosts": func() { Generate(1, 0, Hour, testConfig()) },
		"no horizon": func() {
			Generate(1, 4, 0, testConfig())
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
