// Package faults is the failure plane of the simulator: a deterministic,
// seed-derived schedule of host-level faults that both fleet tiers (the
// per-tick micro fleet and the epoch-quantized macro fleet) inject, plus the
// recovery policy knobs (retry budget, capped exponential backoff, bounded
// pending queue) the fleet layer applies on top.
//
// Production placement is dominated by what goes wrong — maintenance, host
// churn, capacity loss (see the SAP Cloud Infrastructure characterization,
// arXiv:2510.23911) — so a reproduction that never loses a host can't be
// trusted on policy questions. Three fault kinds cover the useful regimes:
//
//   - Crash: the host goes away entirely for Duration. Every resident VM is
//     killed; with recovery enabled the fleet re-places them elsewhere with
//     capped exponential backoff, otherwise their remaining work is lost.
//   - Brownout: the host keeps running but its effective capacity drops to
//     Factor * capacity for Duration (throttled clocks, failed DIMM bank,
//     noisy maintenance). Placement must steer around it; recovery may
//     evacuate VMs that no longer fit the degraded bound.
//   - Stall: the host freezes for Duration (long SMI, live-migration pause
//     of the *physical* host, network partition). Nothing is lost, nothing
//     progresses, and every resident vCPU sees pure steal — the
//     degraded-signal regime adaptive controllers must survive.
//
// On top of host faults, the schedule carries a migration-failure
// probability: each evacuation/migration attempt can deterministically fail
// (hash of the schedule seed and a per-tier attempt counter), modelling
// stop-and-copy aborts.
//
// Everything is a pure function of (seed, Config): Generate draws each
// host's fault process from its own FNV-derived sub-stream, so schedules are
// stable under fleet-size changes and identical across runs, tiers, and
// shard counts.
package faults

import (
	"fmt"
	"math/rand"
	"sort"

	"vsched/internal/sim"
)

// Kind is the fault type.
type Kind uint8

const (
	// Crash takes the host down entirely; resident VMs are killed.
	Crash Kind = iota
	// Brownout degrades effective capacity to Factor*capacity.
	Brownout
	// Stall freezes the host: no progress, all demand steals.
	Stall
)

func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Brownout:
		return "brownout"
	case Stall:
		return "stall"
	}
	return "?"
}

// Event is one scheduled host fault. The host is affected for
// [At, At+Duration); Factor is the degraded-capacity multiplier for
// Brownout events (0 for Crash — capacity is gone — and unused for Stall).
type Event struct {
	At       sim.Time
	Host     int
	Kind     Kind
	Duration sim.Duration
	Factor   float64
}

// Until is the instant the fault clears.
func (e Event) Until() sim.Time { return e.At.Add(e.Duration) }

// Config parameterises Generate. Each kind is an independent per-host
// renewal process: exponential gaps with the given MTBF (0 disables the
// kind), then a duration drawn uniformly in [0.5, 1.5) x the mean. Gaps are
// measured from the end of the previous same-kind fault, so same-kind events
// never overlap on one host (different kinds may).
type Config struct {
	// CrashMTBF is the per-host mean time between crashes; CrashDowntime the
	// mean outage length (default 10 min).
	CrashMTBF     sim.Duration
	CrashDowntime sim.Duration
	// BrownoutMTBF / BrownoutMean shape capacity-degradation windows
	// (default mean 30 min); the degraded-capacity factor is drawn uniformly
	// from [FactorLo, FactorHi) (default [0.3, 0.7)).
	BrownoutMTBF sim.Duration
	BrownoutMean sim.Duration
	FactorLo     float64
	FactorHi     float64
	// StallMTBF / StallMean shape freeze windows (default mean 2 min).
	StallMTBF sim.Duration
	StallMean sim.Duration
	// MigFailProb is the probability any single migration or evacuation
	// attempt fails (in [0, 1)).
	MigFailProb float64
}

func (c Config) withDefaults() Config {
	if c.CrashDowntime <= 0 {
		c.CrashDowntime = 10 * 60 * sim.Second
	}
	if c.BrownoutMean <= 0 {
		c.BrownoutMean = 30 * 60 * sim.Second
	}
	if c.FactorLo == 0 && c.FactorHi == 0 {
		c.FactorLo, c.FactorHi = 0.3, 0.7
	}
	if c.StallMean <= 0 {
		c.StallMean = 2 * 60 * sim.Second
	}
	return c
}

// validate panics on configurations that cannot be sampled meaningfully;
// these are programming errors, not data.
func (c Config) validate() {
	if c.FactorLo <= 0 || c.FactorHi > 1 || c.FactorHi < c.FactorLo {
		panic(fmt.Sprintf("faults: brownout factor range [%v,%v] outside (0,1]", c.FactorLo, c.FactorHi))
	}
	if c.MigFailProb < 0 || c.MigFailProb >= 1 {
		panic(fmt.Sprintf("faults: migration failure probability %v outside [0,1)", c.MigFailProb))
	}
}

// Schedule is the generated fault plan: events sorted by (At, Host, Kind),
// plus the migration-failure law. A zero Schedule (no events, zero
// probability) is a valid "no faults" plan.
type Schedule struct {
	Seed        int64
	MigFailProb float64
	Events      []Event
}

// Empty reports whether the schedule injects nothing.
func (s *Schedule) Empty() bool {
	return s == nil || (len(s.Events) == 0 && s.MigFailProb == 0)
}

// fnv1a folds a sequence of 64-bit words through FNV-1a.
func fnv1a(words ...uint64) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, w := range words {
		for i := 0; i < 8; i++ {
			h ^= (w >> (8 * i)) & 0xff
			h *= prime
		}
	}
	return h
}

// Generate produces the fault schedule for a fleet of hosts over horizon.
// Deterministic: host h's kind-k process draws from a private sub-stream
// seeded by FNV(seed, h, k), so adding hosts or kinds never perturbs the
// events of existing ones.
func Generate(seed int64, hosts int, horizon sim.Duration, cfg Config) Schedule {
	cfg = cfg.withDefaults()
	cfg.validate()
	if hosts <= 0 || horizon <= 0 {
		panic(fmt.Sprintf("faults: need positive hosts (%d) and horizon (%v)", hosts, horizon))
	}
	s := Schedule{Seed: seed, MigFailProb: cfg.MigFailProb}
	type proc struct {
		kind Kind
		mtbf sim.Duration
		mean sim.Duration
	}
	procs := []proc{
		{Crash, cfg.CrashMTBF, cfg.CrashDowntime},
		{Brownout, cfg.BrownoutMTBF, cfg.BrownoutMean},
		{Stall, cfg.StallMTBF, cfg.StallMean},
	}
	for h := 0; h < hosts; h++ {
		for _, p := range procs {
			if p.mtbf <= 0 {
				continue
			}
			rng := rand.New(rand.NewSource(int64(fnv1a(uint64(seed), uint64(h), uint64(p.kind)))))
			var t sim.Time
			for {
				t = t.Add(sim.Duration(rng.ExpFloat64() * float64(p.mtbf)))
				if t >= sim.Time(horizon) {
					break
				}
				dur := sim.Duration((0.5 + rng.Float64()) * float64(p.mean))
				if dur < sim.Second {
					dur = sim.Second
				}
				ev := Event{At: t, Host: h, Kind: p.kind, Duration: dur}
				if p.kind == Brownout {
					ev.Factor = cfg.FactorLo + rng.Float64()*(cfg.FactorHi-cfg.FactorLo)
				}
				s.Events = append(s.Events, ev)
				t = t.Add(dur) // renewal from the end: same-kind faults never overlap
			}
		}
	}
	sort.Slice(s.Events, func(a, b int) bool {
		ea, eb := s.Events[a], s.Events[b]
		if ea.At != eb.At {
			return ea.At < eb.At
		}
		if ea.Host != eb.Host {
			return ea.Host < eb.Host
		}
		return ea.Kind < eb.Kind
	})
	return s
}

// MigrationFails decides attempt number n (each tier keeps its own counter,
// incremented per attempt): a pure hash of (seed, n) against MigFailProb, so
// the verdict sequence is identical across serial/sharded runs and
// independent of wall time.
func (s *Schedule) MigrationFails(attempt uint64) bool {
	if s == nil || s.MigFailProb <= 0 {
		return false
	}
	h := fnv1a(uint64(s.Seed)^0x9e3779b97f4a7c15, attempt)
	return float64(h>>11)/(1<<53) < s.MigFailProb
}

// RecoveryConfig tunes the fleet's reaction to faults. Disabled means
// faults still fire but nothing is re-placed: crashed VMs are lost, rejected
// arrivals stay rejected — the graceful-degradation baseline.
type RecoveryConfig struct {
	Enabled bool
	// MaxRetries bounds re-placement attempts per VM (default 8); a VM whose
	// budget drains is terminally lost (crash victims) or terminally
	// rejected (admission victims).
	MaxRetries int
	// BaseBackoff/MaxBackoff shape the capped exponential backoff between
	// attempts: min(Base * 2^(attempt-1), Max). Defaults 60s / 15min.
	BaseBackoff sim.Duration
	MaxBackoff  sim.Duration
	// QueueCap bounds the pending-retry queue (default 4096); overflow is
	// immediately terminal. A bounded queue keeps degraded fleets degraded
	// instead of hoarding unbounded restart debt.
	QueueCap int
}

// WithDefaults fills zero fields.
func (rc RecoveryConfig) WithDefaults() RecoveryConfig {
	if rc.MaxRetries <= 0 {
		rc.MaxRetries = 8
	}
	if rc.BaseBackoff <= 0 {
		rc.BaseBackoff = 60 * sim.Second
	}
	if rc.MaxBackoff <= 0 {
		rc.MaxBackoff = 15 * 60 * sim.Second
	}
	if rc.QueueCap <= 0 {
		rc.QueueCap = 4096
	}
	return rc
}

// Backoff is the delay before 1-based attempt n: capped exponential.
func (rc RecoveryConfig) Backoff(attempt int) sim.Duration {
	if attempt < 1 {
		attempt = 1
	}
	d := rc.BaseBackoff
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= rc.MaxBackoff {
			return rc.MaxBackoff
		}
	}
	if d > rc.MaxBackoff {
		d = rc.MaxBackoff
	}
	return d
}
