package core

import (
	"fmt"

	"vsched/internal/guest"
	"vsched/internal/sim"
)

// Vllc is the cache prober the paper's conclusion calls for ("we plan to
// extend our probing efforts to other resources"): it estimates each
// believed LLC domain's effective cache share, CacheInspector-style, by
// running a reference working set in the domain and comparing the achieved
// work rate against the cache-cold nominal rate vcap calibrated. A share
// near 1.0 means the domain's LLC is uncontended; lower values mean
// co-resident working sets (from this VM or, on real hardware, from
// neighbours) are evicting the probe.
//
// The published shares are advisory: the scheduler does not consume them
// (the paper stops at the suggestion), but workload placement policies and
// operators can, via VSched.CacheShare.
type Vllc struct {
	s *VSched
	// one probe slot per believed socket representative
	shares  map[int]float64 // socket group id -> last measured share
	every   sim.Duration
	window  sim.Duration
	refMB   float64
	started bool
}

func newVllc(s *VSched) *Vllc {
	return &Vllc{
		s:      s,
		shares: map[int]float64{},
		every:  2 * sim.Second,
		window: 20 * sim.Millisecond,
		refMB:  4,
	}
}

// CacheShare returns the latest measured effective-cache share of the
// believed LLC domain containing vCPU id (1.0 until first measured).
func (s *VSched) CacheShare(vcpuID int) float64 {
	g := s.vm.Topology().SocketOf[vcpuID]
	if sh, ok := s.vllc.shares[g]; ok {
		return sh
	}
	return 1.0
}

func (l *Vllc) start() {
	if l.started {
		return
	}
	l.started = true
	l.s.eng.After(l.every, l.round)
}

// round probes every believed socket in turn (one prober at a time to keep
// the probe's own pressure out of other domains' measurements).
func (l *Vllc) round() {
	sockets := l.s.vm.Topology().Sockets()
	var next func(k int)
	next = func(k int) {
		if k >= len(sockets) {
			l.s.eng.After(l.every, l.round)
			return
		}
		l.probeSocket(sockets[k][0], func() { next(k + 1) })
	}
	next(0)
}

// probeSocket runs the reference working set on one vCPU of the domain for
// the probe window and derives the share from achieved speed.
func (l *Vllc) probeSocket(vcpuID int, done func()) {
	s := l.s
	v := s.vm.VCPU(vcpuID)
	var cycles float64
	chunk := s.params.NominalSpeed * float64(500*sim.Microsecond)
	finished := false
	counted := false
	tk := s.vm.Spawn(
		fmt.Sprintf("vllc/%d", vcpuID),
		func(sim.Time) guest.Segment {
			if counted {
				cycles += chunk
				counted = false
			}
			if finished {
				return guest.Exit()
			}
			counted = true
			return guest.Compute(chunk)
		},
		guest.WithAffinity(vcpuID),
		guest.WithFootprint(l.refMB),
	)
	run0 := tk.TotalRun()
	s.eng.After(l.window, func() {
		finished = true
		runD := tk.TotalRun() - run0
		if runD > sim.Duration(l.window/10) {
			achieved := cycles / float64(runD) // cycles per ns with footprint
			// Nominal cache-cold speed for this vCPU from vcap's heavy
			// calibration (1024 == NominalSpeed).
			nominal := s.params.NominalSpeed
			if s.features.Vcap {
				nominal = s.params.NominalSpeed * float64(s.vcap.per[vcpuID].coreSpeedScale) / 1024
			}
			if nominal > 0 {
				share := achieved / nominal
				if share > 1 {
					share = 1
				}
				g := s.vm.Topology().SocketOf[v.ID()]
				l.shares[g] = share
			}
		}
		done()
	})
}
