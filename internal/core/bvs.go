package core

import (
	"vsched/internal/guest"
	"vsched/internal/sim"
	"vsched/internal/vtrace"
)

// bvsSelect implements biased vCPU selection (§3.2, Fig. 8): small
// latency-sensitive tasks are placed where their extended runqueue latency
// is minimal. It is installed as the guest's SelectCPU hook; returning nil
// falls back to the stock CFS heuristic.
//
// The Fig. 8 decision path, per candidate vCPU (first fit wins):
//
//	capacity >= median (avoid runqueue saturation on weak vCPUs)
//	  runqueue empty (guest idle):
//	    low vCPU latency (within 2x of the best class, see
//	    lowLatencyThreshold) AND prolonged idleness -> pick (wakes quickly)
//	  runqueue holds only sched_idle tasks:
//	    state active AND recently became active  -> pick (runs immediately,
//	        fits within the remaining active period — the "blue path")
//	    state inactive AND inactive for long AND low latency -> pick
//	        (about to be rescheduled)
func (s *VSched) bvsSelect(t *guest.Task, prev *guest.VCPU) *guest.VCPU {
	if !t.LatencySensitive || t.Util() > s.params.SmallTaskUtil {
		return nil
	}
	s.bvsCalls.Inc()
	if bvsDebug != nil {
		defer func() { bvsDebug(s, t) }()
	}
	medCap := s.medianCapacity()
	lowLat := s.lowLatencyThreshold()
	n := s.vm.NumVCPUs()
	start := 0
	if prev != nil {
		start = prev.ID()
	}
	// First-fit scan beginning at the previous CPU (cache affinity), then
	// wrapping: aggressive and cheap, unconstrained by LLC domains. The
	// best-fit ablation instead scans everything and picks the acceptable
	// vCPU with the lowest probed latency.
	var best *guest.VCPU
	var scanned int64
	var candMask int64 // vCPUs (id < 64) passing the capacity filter
	for k := 0; k < n; k++ {
		v := s.vm.VCPU((start + k) % n)
		if !s.allowedForTask(t, v) {
			continue
		}
		scanned++
		// High-capacity filter with 10% tolerance: measurement noise must
		// not disqualify vCPUs effectively at the median.
		if v.Capacity()*10 < medCap*9 {
			continue
		}
		if v.ID() < 64 {
			candMask |= 1 << v.ID()
		}
		if s.bvsAcceptable(v, lowLat) {
			if !s.bvsBestFit {
				best = v
				break
			}
			if best == nil || v.Latency() < best.Latency() {
				best = v
			}
		}
	}
	chosen := int64(-1)
	if best != nil {
		s.bvsHits.Inc()
		chosen = int64(best.ID())
	}
	s.tracer().Emit(s.eng.Now(), vtrace.KindBVSPlace, t.Name(), chosen, scanned, candMask)
	return best
}

// allowedForTask respects the task's cgroup mask (rwc bans) from hook
// context.
func (s *VSched) allowedForTask(t *guest.Task, v *guest.VCPU) bool {
	return t.Group().Allowed(v.ID())
}

// bvsAcceptable evaluates the activity conditions of Fig. 8 for one vCPU.
func (s *VSched) bvsAcceptable(v *guest.VCPU, lowLat sim.Duration) bool {
	now := s.eng.Now()
	lowLatency := v.Latency() <= lowLat
	switch {
	case v.GuestIdle():
		// Long-idled vCPUs in overcommitted hosts have had their host slice
		// replenished / their contender is mid-burst elsewhere; paired with
		// low probed latency they respond fastest.
		longIdle := now.Sub(v.IdleSince()) >= s.vm.Params().TickPeriod
		return lowLatency && longIdle

	case v.OnlyIdlePolicy():
		if !s.bvsStateCheck {
			// Ablation: accept any low-latency vCPU serving only
			// best-effort work, blind to whether it is active right now.
			return lowLatency
		}
		st, since := s.QueryState(v)
		switch st {
		case StateActive:
			// Recently became active: the remaining active period likely
			// covers a small task (blue path).
			recent := now.Sub(since) <= maxDur(v.AvgActive()/2, s.vm.Params().TickPeriod)
			return recent
		case StateInactive:
			// Inactive for most of its typical inactive period: it should
			// be rescheduled soon.
			inactiveFor := now.Sub(since)
			return lowLatency && v.Latency() > 0 && inactiveFor >= sim.Duration(float64(v.Latency())*0.75)
		}
		return false

	default:
		return false
	}
}

// bvsDebug, when set by tests, observes each hook call.
var bvsDebug func(*VSched, *guest.Task)

func maxDur(a, b sim.Duration) sim.Duration {
	if a > b {
		return a
	}
	return b
}

// SetBVSDebug installs a debug observer (debug builds only).
func SetBVSDebug(fn func(*VSched, *guest.Task)) { bvsDebug = fn }
