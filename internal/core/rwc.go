package core

// rwc implements relaxed work conservation (§3.4): problematic idle vCPUs
// are deliberately hidden from task placement via cgroup masks, departing
// from the work-conservation invariant when honouring it would hurt.
//
// Straggler vCPUs (capacity far below average) are hidden from normal user
// tasks but stay open to best-effort work and to vcap's light sampling (so a
// capacity recovery is noticed). Of each stacking group only one vCPU stays
// visible; the rest are banned for everything, including vcap probing, which
// could itself cause priority inversion — only vtop may still touch them to
// detect stacking changes.
type rwc struct {
	s *VSched

	straggler   []bool
	stackBanned []bool
}

func newRWC(s *VSched) *rwc {
	n := s.vm.NumVCPUs()
	return &rwc{
		s:           s,
		straggler:   make([]bool, n),
		stackBanned: make([]bool, n),
	}
}

// onCapacityUpdate reclassifies stragglers after each vcap publication.
func (r *rwc) onCapacityUpdate() {
	if !r.s.features.RWC {
		return
	}
	vs := r.s.vm.VCPUs()
	var sum float64
	var n int
	for _, v := range vs {
		if r.stackBanned[v.ID()] {
			continue
		}
		sum += float64(v.Capacity())
		n++
	}
	if n == 0 {
		return
	}
	avg := sum / float64(n)
	changed := false
	for _, v := range vs {
		// Hysteresis: classify below avg/factor, declassify only above
		// avg/(0.8*factor) — a vCPU sitting at the boundary must not
		// flip-flop the cgroup masks every sampling period.
		enter := avg / r.s.params.StragglerFactor
		exit := enter * 1.25
		is := r.straggler[v.ID()]
		if r.stackBanned[v.ID()] {
			is = false
		} else if is {
			is = float64(v.Capacity()) < exit
		} else {
			is = float64(v.Capacity()) < enter
		}
		if is != r.straggler[v.ID()] {
			r.straggler[v.ID()] = is
			changed = true
		}
	}
	if changed {
		r.apply()
	}
}

// onTopologyUpdate re-derives stacking bans after vtop publishes a belief.
func (r *rwc) onTopologyUpdate() {
	if !r.s.features.RWC {
		return
	}
	n := r.s.vm.NumVCPUs()
	banned := make([]bool, n)
	for _, g := range r.s.vtop.Belief().StackGroups() {
		// Keep the first member of each stacking group; hide the rest.
		for _, m := range g[1:] {
			banned[m] = true
		}
	}
	changed := false
	for i := range banned {
		if banned[i] != r.stackBanned[i] {
			changed = true
		}
	}
	if changed {
		copy(r.stackBanned, banned)
		r.apply()
	}
}

// apply pushes the current bans into the cgroup masks: normal user tasks
// avoid stragglers and stacked duplicates; best-effort tasks and probers
// avoid only stacked duplicates; vcap halts sampling on stacked duplicates.
func (r *rwc) apply() {
	n := r.s.vm.NumVCPUs()
	normal := make([]bool, n)
	be := make([]bool, n)
	anyNormal := false
	for i := 0; i < n; i++ {
		normal[i] = !r.straggler[i] && !r.stackBanned[i]
		be[i] = !r.stackBanned[i]
		if normal[i] {
			anyNormal = true
		}
	}
	if !anyNormal {
		// Never hide everything: fall back to the best-effort mask.
		copy(normal, be)
	}
	r.s.vm.SetGroupMask(r.s.userGroup, normal)
	r.s.vm.SetGroupMask(r.s.beGroup, be)
	r.s.vm.SetGroupMask(r.s.proberGroup, be)
	r.s.vcap.setBanned(r.stackBanned)
}
