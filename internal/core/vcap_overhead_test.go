package core

import (
	"testing"

	"vsched/internal/guest"
	"vsched/internal/sim"
)

// TestHeavyProberDeElevates pins the fig21 overhead property at the
// mechanism level: during a heavy calibration window the prober is elevated
// to normal weight only until it banks enough runtime for the speed
// measurement (SamplePeriod/10), then drops back to SCHED_IDLE. A co-running
// normal-weight task on the same vCPU must therefore lose only ~10% of one
// window every heavy period, not half of it.
func TestHeavyProberDeElevates(t *testing.T) {
	r := newRig(t, 1, 2, 1, 2, Features{Vcap: true})

	// A CPU-bound normal task pinned on vCPU 0 competes with the prober.
	var ran sim.Duration
	var mark sim.Time
	task := r.vm.Spawn("hog", func(now sim.Time) guest.Segment {
		return guest.Compute(1e7) // ~10ms chunks at speed 1.0
	}, guest.WithAffinity(0))

	// Warm up past the first light window, then bracket exactly one heavy
	// window: heavy fires after HeavyEveryLights light windows, i.e. the
	// 5th sampling at t = 5*LightEvery.
	p := r.s.Params()
	heavyStart := sim.Time(0).Add(5 * p.LightEvery)
	r.eng.At(heavyStart, func() {
		mark = r.eng.Now()
		ran = task.TotalRun()
	})
	var lost sim.Duration
	r.eng.At(heavyStart.Add(p.SamplePeriod), func() {
		window := r.eng.Now().Sub(mark)
		got := task.TotalRun() - ran
		lost = window - got
	})
	r.eng.RunFor(6 * p.LightEvery)

	if lost <= 0 {
		t.Fatal("expected the heavy prober to take some runtime from the hog")
	}
	// Pre-fix behaviour: the prober held normal weight for the whole window
	// and took ~50% of it. With de-elevation it takes the calibration burst
	// (~SamplePeriod/10) plus scheduling slop.
	if lost > p.SamplePeriod/4 {
		t.Fatalf("heavy prober stole %v of a %v window; want <= %v",
			lost, p.SamplePeriod, p.SamplePeriod/4)
	}
	// And the calibration must still have produced an accurate capacity.
	r.eng.RunFor(2 * sim.Second)
	if c := r.vm.VCPU(0).Capacity(); c < 800 {
		t.Fatalf("calibrated capacity=%d want ~1024 despite de-elevation", c)
	}
}

// TestLowLatencyThresholdLadder pins the bvs low-latency gate against the
// paper's category ladders: the gate must admit only the best latency class,
// whatever the mix, while accepting a homogeneous class whole.
func TestLowLatencyThresholdLadder(t *testing.T) {
	cases := []struct {
		name   string
		lats   []sim.Duration // published per-vCPU latencies
		accept []bool         // whether each should pass the gate
	}{
		{"hpvm ladder (0/3/9ms): dedicated only",
			[]sim.Duration{0, 3 * sim.Millisecond, 9 * sim.Millisecond},
			[]bool{true, false, false}},
		{"fig14 ladder (3/6ms): low class only",
			[]sim.Duration{3 * sim.Millisecond, 6 * sim.Millisecond, 3 * sim.Millisecond},
			[]bool{true, false, true}},
		{"rcvm ladder (3/9/15ms): low class only",
			[]sim.Duration{3 * sim.Millisecond, 9 * sim.Millisecond, 15 * sim.Millisecond},
			[]bool{true, false, false}},
		{"homogeneous noisy class accepted whole",
			[]sim.Duration{2700 * sim.Microsecond, 3400 * sim.Microsecond, 3 * sim.Millisecond},
			[]bool{true, true, true}},
		{"near-zero homogeneous accepted whole",
			[]sim.Duration{0, 200 * sim.Microsecond, 900 * sim.Microsecond},
			[]bool{true, true, true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := newRig(t, 1, len(tc.lats), 1, len(tc.lats), Features{})
			for i, l := range tc.lats {
				r.vm.VCPU(i).PublishActivity(l, 10*sim.Millisecond, l)
			}
			thresh := r.s.lowLatencyThreshold()
			for i, l := range tc.lats {
				if got := l <= thresh; got != tc.accept[i] {
					t.Errorf("vCPU %d latency %v vs threshold %v: accepted=%v want %v",
						i, l, thresh, got, tc.accept[i])
				}
			}
		})
	}
}
