package core

import (
	"fmt"

	"vsched/internal/guest"
	"vsched/internal/sim"
	"vsched/internal/vtrace"
)

// vcap probes dynamic vCPU capacity with cooperative, multi-phase sampling
// (§3.1). One prober task per vCPU samples all vCPUs simultaneously during
// a 100ms window every second. In the regular light phase the probers run
// at SCHED_IDLE — they only consume otherwise-idle cycles, keeping the vCPU
// busy so steal time (and with it the vCPU's share of its core) becomes
// observable. Every fifth sampling is heavy: probers take elevated priority
// and measure achieved work rate, which calibrates the hosting core's speed;
// the light phases then convert share into capacity using that calibration.
type vcap struct {
	s     *VSched
	per   []*vcapVCPU
	light int // light samplings since the last heavy one
	// sampling state
	sampling bool
	heavy    bool
	banned   []bool // rwc-banned stacked vCPUs: no sampling there
}

type vcapVCPU struct {
	v      *guest.VCPU
	prober *guest.Task
	park   *guest.Cond
	chunk  float64 // cycles per prober compute chunk
	cycles float64 // work completed in the current window

	// window-start snapshots
	steal0     sim.Duration
	proberRun0 sim.Duration
	elevated   bool // heavy phase: prober currently at normal weight

	// calibration & output
	coreSpeedScale float64 // probed core capacity, 1024 = nominal
	ema            float64 // smoothed vCPU capacity
	haveEMA        bool
}

func newVcap(s *VSched) *vcap {
	return &vcap{s: s, banned: make([]bool, s.vm.NumVCPUs())}
}

// setBanned tells vcap which vCPUs rwc fully hid (stacked duplicates);
// sampling halts there so probers cannot cause priority inversion.
func (c *vcap) setBanned(mask []bool) {
	copy(c.banned, mask)
}

func (c *vcap) start() {
	for _, v := range c.s.vm.VCPUs() {
		pv := &vcapVCPU{
			v:              v,
			park:           &guest.Cond{},
			chunk:          c.s.params.NominalSpeed * float64(1*sim.Millisecond) / 4, // ~250us at nominal
			coreSpeedScale: 1024,
		}
		pv.prober = c.s.vm.Spawn(
			fmt.Sprintf("vcap/%d", v.ID()),
			c.proberBehavior(pv),
			guest.WithAffinity(v.ID()),
			guest.WithGroup(c.s.proberGroup),
			guest.WithIdlePolicy(),
		)
		c.per = append(c.per, pv)
	}
	c.s.eng.After(c.s.params.LightEvery, c.beginWindow)
}

// proberBehavior: park until a window opens, then compute in chunks,
// counting completed work.
func (c *vcap) proberBehavior(pv *vcapVCPU) guest.Behavior {
	counted := false
	return func(now sim.Time) guest.Segment {
		if counted {
			pv.cycles += pv.chunk
			counted = false
		}
		if !c.sampling || c.banned[pv.v.ID()] {
			return guest.Wait(pv.park)
		}
		// Heavy phase: elevated priority exists only to guarantee the speed
		// calibration a meaningful runtime sample. Once the prober has
		// banked enough CPU time, drop back to SCHED_IDLE so the rest of
		// the window costs the workload nothing — a request unlucky enough
		// to overlap the calibration burst shares its vCPU for ~10ms, not
		// the full window.
		if pv.elevated && pv.prober.TotalRun()-pv.proberRun0 >= c.s.params.SamplePeriod/10 {
			pv.prober.SetIdlePolicy(true, 0)
			pv.elevated = false
		}
		counted = true
		return guest.Compute(pv.chunk)
	}
}

func (c *vcap) beginWindow() {
	c.light++
	c.heavy = c.light >= c.s.params.HeavyEveryLights
	if c.heavy {
		c.light = 0
	}
	c.sampling = true
	for _, pv := range c.per {
		if c.banned[pv.v.ID()] {
			continue
		}
		pv.steal0 = pv.v.Steal()
		pv.proberRun0 = pv.prober.TotalRun()
		pv.cycles = 0
		pv.v.ResetPreemptCount()
		if c.heavy {
			// Normal priority: guaranteed execution without displacing the
			// workload — the speed measurement divides work done by the
			// prober's own CPU time, so it needs some runtime, not a
			// dominant share. The behavior loop de-elevates as soon as the
			// sample is banked.
			pv.prober.SetIdlePolicy(false, guest.WeightNormal)
			pv.elevated = true
		}
		c.s.vm.BroadcastCond(pv.park)
	}
	c.s.eng.After(c.s.params.SamplePeriod, c.endWindow)
}

func (c *vcap) endWindow() {
	c.sampling = false
	f := c.s.params.emaFactor()
	for _, pv := range c.per {
		if c.banned[pv.v.ID()] {
			continue
		}
		if c.heavy && pv.elevated {
			pv.prober.SetIdlePolicy(true, 0)
			pv.elevated = false
		}
		stealD := pv.v.Steal() - pv.steal0
		period := c.s.params.SamplePeriod
		share := 1 - float64(stealD)/float64(period)
		if share < 0 {
			share = 0
		}
		if c.heavy {
			// Core speed = work achieved per unit of prober CPU time,
			// normalised to the nominal frequency.
			runD := pv.prober.TotalRun() - pv.proberRun0
			if runD > sim.Duration(period/20) { // need a meaningful sample
				speed := pv.cycles / float64(runD)
				pv.coreSpeedScale = 1024 * speed / c.s.params.NominalSpeed
			}
		}
		sample := pv.coreSpeedScale * share
		if pv.haveEMA {
			pv.ema = pv.ema*f + sample*(1-f)
		} else {
			pv.ema = sample
			pv.haveEMA = true
		}
		if c.s.features.Vcap {
			capv := int64(pv.ema)
			if capv < 1 {
				capv = 1
			}
			pv.v.PublishCapacity(capv)
			c.s.tracer().Emit(c.s.eng.Now(), vtrace.KindCapSample, "vcap",
				int64(pv.v.ID()), capv, int64(share*1024))
		}

		// vact piggybacks on the sampling window (§3.1): the preemption
		// counter and steal delta yield the average inactive period.
		if c.s.features.Vact {
			c.s.vact.onSample(pv.v, stealD, period)
		}
	}
	if c.s.features.RWC {
		c.s.rwc.onCapacityUpdate()
	}
	c.s.eng.After(c.s.params.LightEvery-c.s.params.SamplePeriod, c.beginWindow)
}
