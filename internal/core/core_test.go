package core

import (
	"testing"

	"vsched/internal/cachemodel"
	"vsched/internal/guest"
	"vsched/internal/host"
	"vsched/internal/sim"
)

// rig is a reusable experiment skeleton: a flat host (no turbo, speed 1.0 so
// nominal = measured), a VM over the first nvcpu threads, and a vSched
// instance.
type rig struct {
	eng *sim.Engine
	h   *host.Host
	vm  *guest.VM
	s   *VSched
}

func newRig(t *testing.T, sockets, cores, threadsPer, nvcpu int, feats Features) *rig {
	t.Helper()
	eng := sim.NewEngine(11)
	cfg := host.DefaultConfig()
	cfg.Sockets = sockets
	cfg.CoresPerSocket = cores
	cfg.ThreadsPerCore = threadsPer
	cfg.TurboFactor = 1.0
	cfg.BaseSpeed = 1.0
	h := host.New(eng, cfg)
	var threads []*host.Thread
	for i := 0; i < nvcpu; i++ {
		threads = append(threads, h.Thread(i))
	}
	vm := guest.NewVM(h, "vm", threads, guest.DefaultParams())
	vm.Start()
	p := DefaultParams()
	p.NominalSpeed = 1.0
	s := New(vm, feats, p, cachemodel.Default())
	s.Start()
	return &rig{eng: eng, h: h, vm: vm, s: s}
}

func TestVcapMeasuresShareAndSpeed(t *testing.T) {
	r := newRig(t, 1, 4, 1, 4, Features{Vcap: true, Vact: true})
	// vCPU1: 50% duty; vCPU2: half-speed thread; vCPU3: both.
	host.NewPatternContender(r.h, "p1", r.h.Thread(1), 5*sim.Millisecond, 5*sim.Millisecond, 0)
	r.h.Thread(2).SetSpeedFactor(0.5)
	r.h.Thread(3).SetSpeedFactor(0.5)
	host.NewPatternContender(r.h, "p3", r.h.Thread(3), 5*sim.Millisecond, 5*sim.Millisecond, 0)
	r.eng.RunFor(12 * sim.Second)
	approx := func(got int64, want, tol float64) bool {
		return float64(got) > want-tol && float64(got) < want+tol
	}
	if c := r.vm.VCPU(0).Capacity(); !approx(c, 1024, 120) {
		t.Fatalf("dedicated capacity=%d want ~1024", c)
	}
	if c := r.vm.VCPU(1).Capacity(); !approx(c, 512, 120) {
		t.Fatalf("50%%-duty capacity=%d want ~512", c)
	}
	if c := r.vm.VCPU(2).Capacity(); !approx(c, 512, 120) {
		t.Fatalf("half-speed capacity=%d want ~512", c)
	}
	if c := r.vm.VCPU(3).Capacity(); !approx(c, 256, 100) {
		t.Fatalf("half-speed 50%%-duty capacity=%d want ~256", c)
	}
	if !r.vm.VCPU(0).HasAccurateCapacity() {
		t.Fatal("vcap should publish capacities")
	}
}

func TestVactMeasuresVCPULatency(t *testing.T) {
	r := newRig(t, 1, 4, 1, 2, Features{Vcap: true, Vact: true})
	// 4ms inactive / 6ms active on vCPU1.
	host.NewPatternContender(r.h, "p", r.h.Thread(1), 4*sim.Millisecond, 6*sim.Millisecond, 0)
	r.eng.RunFor(12 * sim.Second)
	lat := r.vm.VCPU(1).Latency()
	if lat < 3*sim.Millisecond || lat > 5*sim.Millisecond {
		t.Fatalf("vCPU latency=%v want ~4ms", lat)
	}
	if lat0 := r.vm.VCPU(0).Latency(); lat0 > sim.Millisecond {
		t.Fatalf("dedicated vCPU latency=%v want ~0", lat0)
	}
	if a := r.vm.VCPU(1).AvgActive(); a < 4*sim.Millisecond || a > 8*sim.Millisecond {
		t.Fatalf("avg active=%v want ~6ms", a)
	}
}

func TestQueryState(t *testing.T) {
	r := newRig(t, 1, 4, 1, 2, Features{Vact: true, Vcap: true})
	// vCPU0 busy; vCPU1 idle.
	r.vm.Spawn("hog", func(sim.Time) guest.Segment { return guest.ComputeForever() },
		guest.WithAffinity(0))
	r.eng.RunFor(100 * sim.Millisecond)
	if st, _ := r.s.QueryState(r.vm.VCPU(0)); st != StateActive {
		t.Fatalf("busy running vCPU state=%v", st)
	}
	// vCPU1 runs only parked probers between windows: mostly idle.
	if st, _ := r.s.QueryState(r.vm.VCPU(1)); st != StateIdle {
		t.Fatalf("idle vCPU state=%v", st)
	}
	// Long preemption on vCPU0 -> stale heartbeat -> inactive.
	host.NewPatternContender(r.h, "p", r.h.Thread(0), 20*sim.Millisecond, 100*sim.Millisecond, 0)
	r.eng.RunFor(10 * sim.Millisecond)
	if st, _ := r.s.QueryState(r.vm.VCPU(0)); st != StateInactive {
		t.Fatalf("preempted vCPU state=%v", st)
	}
}

// fig10b-style topology: 8 vCPUs. Socket A: threads(0,0,0),(0,0,1),(0,1,0),
// (0,1,1) = two SMT pairs. Socket B: (1,0,0),(1,0,1) SMT pair; vCPU6,7
// stacked on (1,1,0).
func buildMixedTopo(t *testing.T, feats Features) *rig {
	t.Helper()
	eng := sim.NewEngine(23)
	cfg := host.DefaultConfig()
	cfg.Sockets = 2
	cfg.CoresPerSocket = 2
	cfg.ThreadsPerCore = 2
	cfg.TurboFactor = 1.0
	cfg.BaseSpeed = 1.0
	h := host.New(eng, cfg)
	threads := []*host.Thread{
		h.ThreadAt(0, 0, 0), h.ThreadAt(0, 0, 1),
		h.ThreadAt(0, 1, 0), h.ThreadAt(0, 1, 1),
		h.ThreadAt(1, 0, 0), h.ThreadAt(1, 0, 1),
		h.ThreadAt(1, 1, 0), h.ThreadAt(1, 1, 0), // stacked pair
	}
	vm := guest.NewVM(h, "vm", threads, guest.DefaultParams())
	vm.Start()
	p := DefaultParams()
	p.NominalSpeed = 1.0
	s := New(vm, feats, p, cachemodel.Default())
	s.Start()
	return &rig{eng: eng, h: h, vm: vm, s: s}
}

func TestVtopDiscoversTopology(t *testing.T) {
	r := buildMixedTopo(t, Features{Vtop: true})
	r.eng.RunFor(3 * sim.Second)
	b := r.s.Vtop().Belief()
	if !b.SameCore(0, 1) || !b.SameCore(2, 3) || !b.SameCore(4, 5) {
		t.Fatalf("SMT pairs missed: %+v", b)
	}
	if b.SameCore(0, 2) {
		t.Fatal("cores 0/2 wrongly merged")
	}
	if !b.SameSocket(0, 3) || b.SameSocket(0, 4) {
		t.Fatalf("socket grouping wrong: %+v", b)
	}
	if !b.SameStack(6, 7) {
		t.Fatalf("stacking missed: %+v", b)
	}
	if b.SameStack(0, 1) {
		t.Fatal("SMT pair wrongly marked stacked")
	}
	if !b.SameSocket(4, 6) {
		t.Fatal("stacked pair's socket wrong")
	}
	if d := r.s.Vtop().LastFullTime(); d <= 0 || d > sim.Duration(1*sim.Second) {
		t.Fatalf("full probe time=%v want sub-second", d)
	}
	// The VM's scheduling domains were rebuilt.
	if !r.vm.Topology().SameCore(0, 1) {
		t.Fatal("belief not published to the VM")
	}
}

func TestVtopMatrixClasses(t *testing.T) {
	r := buildMixedTopo(t, Features{Vtop: true})
	r.eng.RunFor(3 * sim.Second)
	m := r.s.Vtop().Matrix()
	model := cachemodel.Default()
	if model.Classify(m[0][1]) != cachemodel.SMT {
		t.Fatalf("m[0][1]=%d not SMT-class", m[0][1])
	}
	if model.Classify(m[0][2]) != cachemodel.Socket {
		t.Fatalf("m[0][2]=%d not socket-class", m[0][2])
	}
	if model.Classify(m[0][4]) != cachemodel.Cross {
		t.Fatalf("m[0][4]=%d not cross-class", m[0][4])
	}
	if m[6][7] != cachemodel.Infinite {
		t.Fatalf("m[6][7]=%d want Infinite", m[6][7])
	}
}

func TestVtopValidationIsCheaperAndDetectsChange(t *testing.T) {
	r := buildMixedTopo(t, Features{Vtop: true})
	r.eng.RunFor(8 * sim.Second) // full probe + several validations
	vt := r.s.Vtop()
	if vt.validations == 0 {
		t.Fatal("no validations ran")
	}
	full, val := vt.LastFullTime(), vt.LastValidateTime()
	if val >= full {
		t.Fatalf("validation (%v) should be cheaper than full probe (%v)", val, full)
	}
	before := vt.FullProbes()
	// Migrate vCPU0's entity: un-pair it from vCPU1's core, cross socket.
	r.vm.VCPU(0).Entity().Migrate(r.h.ThreadAt(1, 1, 1))
	r.eng.RunFor(10 * sim.Second)
	if vt.FullProbes() <= before {
		t.Fatal("topology change not detected by validation")
	}
	if !r.s.Vtop().Belief().SameSocket(0, 4) {
		t.Fatalf("new socket of vCPU0 not discovered: %+v", r.s.Vtop().Belief())
	}
}

func TestRWCHidesStragglerAndStacked(t *testing.T) {
	r := buildMixedTopo(t, Features{Vcap: true, Vact: true, Vtop: true, RWC: true})
	// Make vCPU2 a straggler: RT contender with 95% duty.
	host.NewPatternContender(r.h, "hog", r.h.ThreadAt(0, 1, 0), 19*sim.Millisecond, 1*sim.Millisecond, 0)
	r.eng.RunFor(15 * sim.Second)
	user := r.s.UserGroup()
	if user.Allowed(2) {
		t.Fatalf("straggler vCPU2 should be hidden from user tasks (cap=%d)", r.vm.VCPU(2).Capacity())
	}
	// One of the stacked pair {6,7} must be banned even for best-effort.
	be := r.s.BEGroup()
	if be.Allowed(6) && be.Allowed(7) {
		t.Fatal("one stacked vCPU should be fully hidden")
	}
	if !be.Allowed(6) && !be.Allowed(7) {
		t.Fatal("rwc must keep one vCPU of the stack visible")
	}
	// Straggler stays open for best-effort work.
	if !be.Allowed(2) {
		t.Fatal("straggler should remain available to best-effort tasks")
	}
}

func TestBVSPicksLowLatencyVCPU(t *testing.T) {
	r := newRig(t, 1, 8, 1, 4, AllFeatures())
	// vCPU0,1: high latency (8ms); vCPU2,3: low latency (2ms). Same 50%
	// capacity everywhere.
	for i := 0; i < 2; i++ {
		host.NewPatternContender(r.h, "hi", r.h.Thread(i), 8*sim.Millisecond, 8*sim.Millisecond, 0)
	}
	for i := 2; i < 4; i++ {
		host.NewPatternContender(r.h, "lo", r.h.Thread(i), 2*sim.Millisecond, 2*sim.Millisecond, 0)
	}
	r.eng.RunFor(8 * sim.Second) // let probers learn
	placed := map[int]int{}
	step := 0
	var tk *guest.Task
	tk = r.vm.Spawn("ls", func(now sim.Time) guest.Segment {
		step++
		if step > 400 {
			return guest.Exit()
		}
		if step%2 == 1 {
			return guest.Sleep(3 * sim.Millisecond)
		}
		placed[tk.CPU().ID()]++
		return guest.Compute(5e4)
	}, guest.WithLatencySensitive(), guest.WithGroup(r.s.UserGroup()))
	r.eng.RunFor(5 * sim.Second)
	low := placed[2] + placed[3]
	high := placed[0] + placed[1]
	if low <= high*2 {
		t.Fatalf("bvs should prefer low-latency vCPUs: low=%d high=%d", low, high)
	}
}

func TestIVHHarvestsUnusedVCPUs(t *testing.T) {
	run := func(feats Features) float64 {
		eng := sim.NewEngine(31)
		cfg := host.DefaultConfig()
		cfg.Sockets, cfg.CoresPerSocket, cfg.ThreadsPerCore = 1, 4, 1
		cfg.TurboFactor, cfg.BaseSpeed = 1.0, 1.0
		h := host.New(eng, cfg)
		var threads []*host.Thread
		for i := 0; i < 4; i++ {
			threads = append(threads, h.Thread(i))
		}
		vm := guest.NewVM(h, "vm", threads, guest.DefaultParams())
		vm.Start()
		p := DefaultParams()
		p.NominalSpeed = 1.0
		s := New(vm, feats, p, cachemodel.Default())
		s.Start()
		for i := 0; i < 4; i++ {
			host.NewPatternContender(h, "p", h.Thread(i), 5*sim.Millisecond, 5*sim.Millisecond,
				sim.Duration(i)*2500*sim.Microsecond)
		}
		tk := vm.Spawn("worker", func(sim.Time) guest.Segment { return guest.ComputeForever() },
			guest.WithGroup(s.UserGroup()), guest.StartOn(0))
		eng.RunFor(20 * sim.Second)
		return float64(tk.TotalRun()) / float64(20*sim.Second)
	}
	baseline := run(Features{Vcap: true, Vact: true})
	with := run(Features{Vcap: true, Vact: true, IVH: true})
	if baseline > 0.62 {
		t.Fatalf("baseline should be ~0.5 (stalled half the time), got %.2f", baseline)
	}
	if with < baseline*1.25 {
		t.Fatalf("ivh should harvest idle vCPUs: baseline=%.2f with=%.2f", baseline, with)
	}
}

func TestIVHAbandonsWhenSourcePreempted(t *testing.T) {
	r := newRig(t, 1, 4, 1, 4, Features{Vcap: true, Vact: true, IVH: true})
	for i := 0; i < 4; i++ {
		host.NewPatternContender(r.h, "p", r.h.Thread(i), 5*sim.Millisecond, 5*sim.Millisecond,
			sim.Duration(i)*2500*sim.Microsecond)
	}
	r.vm.Spawn("worker", func(sim.Time) guest.Segment { return guest.ComputeForever() },
		guest.WithGroup(r.s.UserGroup()), guest.StartOn(0))
	r.eng.RunFor(20 * sim.Second)
	st := r.s.IVHStats()
	if st.Attempts == 0 || st.Migrated == 0 {
		t.Fatalf("ivh inert: %+v", st)
	}
	if st.Abandoned == 0 {
		t.Fatalf("expected some abandoned migrations under contention: %+v", st)
	}
	done := st.Migrated + st.Abandoned
	if done > st.Attempts || st.Attempts-done > 1 { // one may be in flight
		t.Fatalf("attempt accounting broken: %+v", st)
	}
}

func TestEMASmoothsCapacitySpikes(t *testing.T) {
	r := newRig(t, 1, 2, 1, 1, Features{Vcap: true, Vact: true})
	r.eng.RunFor(4 * sim.Second)
	before := r.vm.VCPU(0).Capacity()
	// One short spike of contention (300ms), then back to dedicated.
	host.NewPatternContender(r.h, "spike", r.h.Thread(0), 300*sim.Millisecond, 50*sim.Second, 100*sim.Millisecond)
	r.eng.RunFor(2 * sim.Second)
	after := r.vm.VCPU(0).Capacity()
	// EMA must not have collapsed to near zero from one spiky window.
	if after < before/3 {
		t.Fatalf("EMA overreacted to a spike: %d -> %d", before, after)
	}
	r.eng.RunFor(6 * sim.Second)
	if rec := r.vm.VCPU(0).Capacity(); rec < 900 {
		t.Fatalf("capacity did not recover: %d", rec)
	}
}

func TestFeatureSets(t *testing.T) {
	e := EnhancedCFS()
	if e.BVS || e.IVH || !e.Vcap || !e.Vtop || !e.Vact || !e.RWC {
		t.Fatalf("enhanced CFS features wrong: %+v", e)
	}
	a := AllFeatures()
	if !a.BVS || !a.IVH || !a.Vcap {
		t.Fatalf("all features wrong: %+v", a)
	}
}
