package core

import (
	"fmt"
	"math"

	"vsched/internal/cachemodel"
	"vsched/internal/guest"
	"vsched/internal/host"
	"vsched/internal/sim"
	"vsched/internal/vtrace"
)

// Vtop probes the vCPU topology (§3.1) by measuring cache line transfer
// latency between vCPU pairs: two prober threads ping-pong an atomic
// cache-line update; the minimum observed latency classifies the pair as SMT
// siblings, same-socket, cross-socket — or stacked, when transfers
// essentially never complete because the two vCPUs never run simultaneously.
//
// Cost is kept sub-second with the paper's three optimisations: distances
// inferable from previous results are skipped (group-representative
// probing), sockets are discovered before cores, and periodic cheap
// validation replaces full probing while the topology is stable (with
// parallel validation of disjoint pairs).
type Vtop struct {
	s       *VSched
	belief  guest.Belief
	matrix  [][]int64
	probing bool

	lastFull     sim.Duration
	lastValidate sim.Duration
	fullProbes   int
	validations  int
	failedChecks int

	// session pacing: creating prober threads, setting affinity and warming
	// them up is not free; the paper's sessions cost milliseconds each.
	setupDelay sim.Duration
	pollEvery  sim.Duration
}

func newVtop(s *VSched) *Vtop {
	n := s.vm.NumVCPUs()
	return &Vtop{
		s:          s,
		belief:     guest.DefaultBelief(n),
		matrix:     freshMatrix(n),
		setupDelay: 3 * sim.Millisecond,
		pollEvery:  20 * sim.Microsecond,
	}
}

func freshMatrix(n int) [][]int64 {
	m := make([][]int64, n)
	for i := range m {
		m[i] = make([]int64, n)
		for j := range m[i] {
			if i != j {
				m[i][j] = -1
			}
		}
	}
	return m
}

// Belief returns the latest probed topology.
func (t *Vtop) Belief() guest.Belief { return t.belief.Clone() }

// Matrix returns the latest probed/inferred latency matrix in nanoseconds
// (cachemodel.Infinite marks stacked pairs, -1 unknown).
func (t *Vtop) Matrix() [][]int64 {
	out := make([][]int64, len(t.matrix))
	for i := range t.matrix {
		out[i] = append([]int64(nil), t.matrix[i]...)
	}
	return out
}

// LastFullTime returns the duration of the most recent full probe.
func (t *Vtop) LastFullTime() sim.Duration { return t.lastFull }

// LastValidateTime returns the duration of the most recent validation pass.
func (t *Vtop) LastValidateTime() sim.Duration { return t.lastValidate }

// FullProbes returns how many full probes have run.
func (t *Vtop) FullProbes() int { return t.fullProbes }

func (t *Vtop) start() {
	// Bootstrap with a full probe, then validate periodically.
	t.FullProbe(func() { t.scheduleNext() })
}

func (t *Vtop) scheduleNext() {
	t.s.eng.After(t.s.params.VtopEvery, func() {
		if t.probing {
			t.scheduleNext()
			return
		}
		t.Validate(func(ok bool) {
			if ok {
				t.scheduleNext()
				return
			}
			t.failedChecks++
			t.FullProbe(func() { t.scheduleNext() })
		})
	})
}

// --- probing session ---

type sessionResult struct {
	lat int64
	ok  bool
}

type session struct {
	vt        *Vtop
	a, b      *guest.VCPU
	ta, tb    *guest.Task
	target    float64
	timeout   float64
	attempts  float64
	transfers float64
	minBase   int64
	lastPoll  sim.Time
	deadline  sim.Time
	finished  bool
	done      func(sessionResult)
}

// probePair measures the distance between vCPUs ai and bi. extended
// multiplies the attempt timeout (the paper's anti-misjudgment measure for
// suspected stacking).
func (t *Vtop) probePair(ai, bi int, extended bool, done func(sessionResult)) {
	s := t.s
	sess := &session{
		vt:      t,
		a:       s.vm.VCPU(ai),
		b:       s.vm.VCPU(bi),
		target:  float64(s.params.VtopTargetTransfers),
		timeout: float64(s.params.VtopTimeoutAttempts),
		minBase: cachemodel.Infinite,
		done:    done,
	}
	if extended {
		// The extended timeout must outlast plausible inactive periods
		// (tens of ms) so rarely-overlapping vCPUs are not misjudged as
		// stacked; this is what makes stacking confirmation the dominant
		// cost of probing (Table 2's rcvm-validate).
		sess.timeout *= 128
	}
	s.eng.After(t.setupDelay, func() {
		// Prober threads run at normal priority: high enough to make steady
		// progress against best-effort noise, without displacing
		// latency-critical work for the length of a session.
		mk := func(v *guest.VCPU, label string) *guest.Task {
			chunk := s.params.NominalSpeed * float64(20*sim.Microsecond)
			return s.vm.Spawn(
				fmt.Sprintf("vtop/%s%d-%d", label, ai, bi),
				func(sim.Time) guest.Segment {
					if sess.finished {
						return guest.Exit()
					}
					return guest.Compute(chunk)
				},
				guest.WithAffinity(v.ID()),
				guest.WithWeight(guest.WeightNormal),
			)
		}
		sess.ta = mk(sess.a, "a")
		sess.tb = mk(sess.b, "b")
		now := s.eng.Now()
		sess.lastPoll = now
		sess.deadline = now.Add(500 * sim.Millisecond)
		s.eng.After(t.pollEvery, sess.poll)
	})
}

// executing reports whether the prober task is genuinely running on silicon
// right now — the physical condition for its transfer attempts to progress.
func sessExecuting(v *guest.VCPU, tk *guest.Task) bool {
	return v.Curr() == tk && v.Entity().State() == host.Running
}

func (sess *session) poll() {
	if sess.finished {
		return
	}
	s := sess.vt.s
	now := s.eng.Now()
	dt := now.Sub(sess.lastPoll)
	sess.lastPoll = now

	aOn := sessExecuting(sess.a, sess.ta)
	bOn := sessExecuting(sess.b, sess.tb)
	model := s.model
	if aOn && bOn {
		rel := s.vm.Host().Relation(sess.a.Entity().Thread().ID(), sess.b.Entity().Thread().ID())
		cost := model.RoundTripCost(rel)
		if cost != cachemodel.Infinite {
			n := float64(dt) / float64(cost)
			sess.transfers += n
			sess.attempts += n
			if base := model.Base(rel); base < sess.minBase {
				sess.minBase = base
			}
		}
	} else if aOn || bOn {
		// One side spins alone: attempts burn without transfers.
		sess.attempts += float64(dt) / float64(model.AttemptCost)
	}

	switch {
	case sess.transfers >= sess.target:
		sess.finish(sessionResult{lat: sess.measuredLatency(), ok: true})
	case sess.attempts >= sess.timeout:
		if sess.transfers < sess.target/10 {
			// Too few transfers: the pair behaves stacked.
			sess.finish(sessionResult{lat: cachemodel.Infinite, ok: true})
		} else {
			sess.finish(sessionResult{lat: sess.measuredLatency(), ok: true})
		}
	case now >= sess.deadline:
		sess.finish(sessionResult{ok: false})
	default:
		s.eng.After(sess.vt.pollEvery, sess.poll)
	}
}

// measuredLatency converts the session's observations into the reported
// minimum transfer latency: with n samples of additive noise, the minimum
// approaches the base latency from above.
func (sess *session) measuredLatency() int64 {
	if sess.minBase == cachemodel.Infinite {
		return cachemodel.Infinite
	}
	model := sess.vt.s.model
	n := sess.transfers
	if n < 1 {
		n = 1
	}
	residual := model.JitterFrac * float64(sess.minBase) * 5 / math.Sqrt(n)
	noise := sess.vt.s.eng.Rand().ExpFloat64() * residual
	return sess.minBase + int64(noise)
}

func (sess *session) finish(res sessionResult) {
	sess.finished = true
	sess.done(res)
}

// probeClassify probes a pair and classifies it, re-probing with an
// extended timeout before accepting a "stacked" verdict (vCPUs that merely
// rarely overlap must not be misjudged as stacked).
func (t *Vtop) probeClassify(ai, bi int, done func(rel cachemodel.Relation, lat int64, ok bool)) {
	t.probePair(ai, bi, false, func(res sessionResult) {
		if !res.ok {
			done(cachemodel.Cross, -1, false)
			return
		}
		if t.s.model.Classify(res.lat) != cachemodel.Self {
			t.record(ai, bi, res.lat)
			done(t.s.model.Classify(res.lat), res.lat, true)
			return
		}
		// Suspected stacking: confirm with extended effort.
		t.probePair(ai, bi, true, func(res2 sessionResult) {
			if !res2.ok {
				done(cachemodel.Cross, -1, false)
				return
			}
			t.record(ai, bi, res2.lat)
			done(t.s.model.Classify(res2.lat), res2.lat, true)
		})
	})
}

func (t *Vtop) record(ai, bi int, lat int64) {
	t.matrix[ai][bi] = lat
	t.matrix[bi][ai] = lat
}

// --- full probe: socket-first discovery with inference ---

// FullProbe discovers the whole topology and publishes it. done fires when
// the new belief is live.
func (t *Vtop) FullProbe(done func()) {
	if t.probing {
		if done != nil {
			done()
		}
		return
	}
	t.probing = true
	t.fullProbes++
	start := t.s.eng.Now()
	n := t.s.vm.NumVCPUs()
	t.matrix = freshMatrix(n)

	stackOf := make([]int, n)
	coreOf := make([]int, n)
	socketOf := make([]int, n)
	for i := range stackOf {
		stackOf[i], coreOf[i], socketOf[i] = i, i, i
	}
	// socketGroups[g] lists members; the first member is the
	// representative.
	socketGroups := [][]int{{0}}
	socketOf[0] = 0

	finishAll := func() {
		t.inferMatrix(guest.Belief{CoreOf: coreOf, SocketOf: socketOf, StackOf: stackOf})
		t.belief = guest.Belief{CoreOf: coreOf, SocketOf: socketOf, StackOf: stackOf}
		t.s.vm.SetTopology(t.belief.Clone())
		if t.s.features.RWC {
			t.s.rwc.onTopologyUpdate()
		}
		t.lastFull = t.s.eng.Now().Sub(start)
		t.s.tracer().Emit(t.s.eng.Now(), vtrace.KindVtop, "vtop",
			0, int64(t.lastFull), 1)
		t.probing = false
		if done != nil {
			done()
		}
	}

	var nextJ func(j int)

	// stackDiscovery resolves which hardware thread of an already-matched
	// core group j sits on: an SMT result against the group's
	// representative proves j shares the core but NOT the thread, so j is
	// probed against one representative of each other stack group in the
	// core (a Self result means stacked). This is the one relation the
	// paper's inference cannot skip.
	stackDiscovery := func(j, matchedRep int, after func()) {
		var stackReps []int
		seen := map[int]bool{stackOf[matchedRep]: true, stackOf[j]: true}
		for m := 0; m < j; m++ {
			if coreOf[m] != coreOf[j] || m == j || seen[stackOf[m]] {
				continue
			}
			seen[stackOf[m]] = true
			stackReps = append(stackReps, m)
		}
		var try func(k int)
		try = func(k int) {
			if k >= len(stackReps) {
				after() // j keeps its own stack group
				return
			}
			t.probeClassify(j, stackReps[k], func(rel cachemodel.Relation, _ int64, ok bool) {
				if ok && rel == cachemodel.Self {
					stackOf[j] = stackOf[stackReps[k]]
					after()
					return
				}
				try(k + 1)
			})
		}
		try(0)
	}

	// coreDiscovery places j within socket group g by probing against one
	// representative of each distinct core group in g.
	coreDiscovery := func(j, g int, after func()) {
		// Distinct core representatives among current members (excluding
		// cores already ruled out — the socket rep's core is ruled out by
		// the Socket-classified probe that got us here).
		var coreReps []int
		seen := map[int]bool{}
		rep := socketGroups[g][0]
		seen[coreOf[rep]] = true // ruled out: j vs rep was Socket-distance
		for _, m := range socketGroups[g] {
			if m == j || seen[coreOf[m]] {
				continue
			}
			seen[coreOf[m]] = true
			coreReps = append(coreReps, m)
		}
		var try func(k int)
		try = func(k int) {
			if k >= len(coreReps) {
				after() // j keeps its own core group
				return
			}
			t.probeClassify(j, coreReps[k], func(rel cachemodel.Relation, _ int64, ok bool) {
				if !ok {
					try(k + 1)
					return
				}
				switch rel {
				case cachemodel.Self:
					stackOf[j] = stackOf[coreReps[k]]
					coreOf[j] = coreOf[coreReps[k]]
					after()
				case cachemodel.SMT:
					coreOf[j] = coreOf[coreReps[k]]
					stackDiscovery(j, coreReps[k], after)
				default:
					try(k + 1)
				}
			})
		}
		try(0)
	}

	nextJ = func(j int) {
		if j >= n {
			finishAll()
			return
		}
		var tryRep func(k int)
		tryRep = func(k int) {
			if k >= len(socketGroups) {
				// New socket.
				socketOf[j] = j
				socketGroups = append(socketGroups, []int{j})
				nextJ(j + 1)
				return
			}
			rep := socketGroups[k][0]
			t.probeClassify(j, rep, func(rel cachemodel.Relation, _ int64, ok bool) {
				if !ok {
					tryRep(k + 1)
					return
				}
				switch rel {
				case cachemodel.Self:
					stackOf[j] = stackOf[rep]
					coreOf[j] = coreOf[rep]
					socketOf[j] = socketOf[rep]
					socketGroups[k] = append(socketGroups[k], j)
					nextJ(j + 1)
				case cachemodel.SMT:
					coreOf[j] = coreOf[rep]
					socketOf[j] = socketOf[rep]
					socketGroups[k] = append(socketGroups[k], j)
					stackDiscovery(j, rep, func() { nextJ(j + 1) })
				case cachemodel.Socket:
					socketOf[j] = socketOf[rep]
					socketGroups[k] = append(socketGroups[k], j)
					coreDiscovery(j, k, func() { nextJ(j + 1) })
				default: // Cross
					tryRep(k + 1)
				}
			})
		}
		tryRep(0)
	}
	nextJ(1)
}

// inferMatrix fills unprobed pairs from the discovered belief (the paper's
// "skip pairs whose distances can be inferred").
func (t *Vtop) inferMatrix(b guest.Belief) {
	n := len(b.CoreOf)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j || t.matrix[i][j] != -1 {
				continue
			}
			var rel cachemodel.Relation
			switch {
			case b.SameStack(i, j):
				rel = cachemodel.Self
			case b.SameCore(i, j):
				rel = cachemodel.SMT
			case b.SameSocket(i, j):
				rel = cachemodel.Socket
			default:
				rel = cachemodel.Cross
			}
			base := t.s.model.Base(rel)
			t.matrix[i][j] = base
		}
	}
}

// --- validation ---

type check struct {
	a, b int
	want cachemodel.Relation
}

// Validate cheaply confirms the current belief: one pair per stack group,
// one SMT pair per multi-member core group, one inter-core pair and the
// socket-representative chain. Disjoint checks run in parallel. done(false)
// means a mismatch was found and a full probe is required.
func (t *Vtop) Validate(done func(ok bool)) {
	if t.probing {
		done(true)
		return
	}
	t.probing = true
	t.validations++
	start := t.s.eng.Now()
	checks := t.buildChecks()
	if len(checks) == 0 {
		t.lastValidate = t.s.eng.Now().Sub(start)
		t.s.tracer().Emit(t.s.eng.Now(), vtrace.KindVtop, "vtop",
			1, int64(t.lastValidate), 1)
		t.probing = false
		done(true)
		return
	}
	waves := planWaves(checks)
	allOK := true
	var runWave func(w int)
	runWave = func(w int) {
		if w >= len(waves) {
			t.lastValidate = t.s.eng.Now().Sub(start)
			confirmed := int64(0)
			if allOK {
				confirmed = 1
			}
			t.s.tracer().Emit(t.s.eng.Now(), vtrace.KindVtop, "vtop",
				1, int64(t.lastValidate), confirmed)
			t.probing = false
			done(allOK)
			return
		}
		pending := len(waves[w])
		for _, c := range waves[w] {
			c := c
			t.probeClassify(c.a, c.b, func(rel cachemodel.Relation, _ int64, ok bool) {
				if ok && rel != c.want {
					allOK = false
				}
				pending--
				if pending == 0 {
					runWave(w + 1)
				}
			})
		}
	}
	runWave(0)
}

// buildChecks derives the minimal pair set that confirms the belief.
func (t *Vtop) buildChecks() []check {
	b := t.belief
	var checks []check
	// Stacking groups: confirm one pair each.
	for _, g := range b.StackGroups() {
		checks = append(checks, check{g[0], g[1], cachemodel.Self})
	}
	// Core groups with two members on distinct stacks: confirm SMT.
	coreMembers := map[int][]int{}
	for i, c := range b.CoreOf {
		coreMembers[c] = append(coreMembers[c], i)
	}
	for i := range b.CoreOf {
		ms := coreMembers[b.CoreOf[i]]
		if len(ms) < 2 || ms[0] != i {
			continue
		}
		for _, m := range ms[1:] {
			if !b.SameStack(ms[0], m) {
				checks = append(checks, check{ms[0], m, cachemodel.SMT})
				break
			}
		}
	}
	// Within each socket: one pair across two core groups.
	for _, socket := range b.Sockets() {
		var first, second = -1, -1
		for _, m := range socket {
			if first == -1 {
				first = m
			} else if b.CoreOf[m] != b.CoreOf[first] {
				second = m
				break
			}
		}
		if second != -1 {
			checks = append(checks, check{first, second, cachemodel.Socket})
		}
	}
	// Socket representatives: chain of Cross checks.
	sockets := b.Sockets()
	for i := 1; i < len(sockets); i++ {
		checks = append(checks, check{sockets[i-1][0], sockets[i][0], cachemodel.Cross})
	}
	return checks
}

// planWaves groups checks into waves of vCPU-disjoint pairs so each wave's
// sessions can run in parallel without interfering.
func planWaves(checks []check) [][]check {
	var waves [][]check
	remaining := append([]check(nil), checks...)
	for len(remaining) > 0 {
		used := map[int]bool{}
		var wave, rest []check
		for _, c := range remaining {
			if used[c.a] || used[c.b] {
				rest = append(rest, c)
				continue
			}
			used[c.a], used[c.b] = true, true
			wave = append(wave, c)
		}
		waves = append(waves, wave)
		remaining = rest
	}
	return waves
}

// ProbeAllPairs measures every pair exhaustively (used by the Fig. 10b
// experiment to render the full matrix); it does not change the belief.
func (t *Vtop) ProbeAllPairs(done func(matrix [][]int64, took sim.Duration)) {
	if t.probing {
		// A periodic validation or full probe is in flight; retry shortly.
		t.s.eng.After(100*sim.Millisecond, func() { t.ProbeAllPairs(done) })
		return
	}
	t.probing = true
	start := t.s.eng.Now()
	n := t.s.vm.NumVCPUs()
	saved := t.matrix
	t.matrix = freshMatrix(n)
	type pair struct{ a, b int }
	var pairs []pair
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs = append(pairs, pair{i, j})
		}
	}
	var run func(k int)
	run = func(k int) {
		if k >= len(pairs) {
			m := t.matrix
			t.matrix = saved
			t.probing = false
			done(m, t.s.eng.Now().Sub(start))
			return
		}
		t.probeClassify(pairs[k].a, pairs[k].b, func(cachemodel.Relation, int64, bool) {
			run(k + 1)
		})
	}
	run(0)
}
