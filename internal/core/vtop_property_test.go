package core

import (
	"fmt"
	"math/rand"
	"testing"

	"vsched/internal/cachemodel"
	"vsched/internal/guest"
	"vsched/internal/host"
	"vsched/internal/sim"
)

// Property: vtop discovers arbitrary random topologies — any mapping of
// vCPUs onto sockets/cores/threads, including stacking — exactly.
func TestVtopDiscoversRandomTopologies(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(trial * 7)))
			eng := sim.NewEngine(int64(trial))
			cfg := host.DefaultConfig()
			cfg.Sockets = 1 + rng.Intn(3)
			cfg.CoresPerSocket = 1 + rng.Intn(3)
			cfg.ThreadsPerCore = 2
			cfg.TurboFactor = 1.0
			h := host.New(eng, cfg)

			// Random vCPU -> thread mapping with possible stacking.
			n := 4 + rng.Intn(5)
			threads := make([]*host.Thread, n)
			for i := range threads {
				threads[i] = h.Thread(rng.Intn(h.NumThreads()))
			}
			vm := guest.NewVM(h, "vm", threads, guest.DefaultParams())
			vm.Start()
			p := DefaultParams()
			p.NominalSpeed = cfg.BaseSpeed
			s := New(vm, Features{Vtop: true}, p, cachemodel.Default())
			s.Start()
			eng.RunFor(10 * sim.Second)

			b := s.Vtop().Belief()
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					truth := h.Relation(threads[i].ID(), threads[j].ID())
					var got cachemodel.Relation
					switch {
					case b.SameStack(i, j):
						got = cachemodel.Self
					case b.SameCore(i, j):
						got = cachemodel.SMT
					case b.SameSocket(i, j):
						got = cachemodel.Socket
					default:
						got = cachemodel.Cross
					}
					if got != truth {
						t.Fatalf("pair (%d,%d): probed %v, truth %v (threads %d,%d)",
							i, j, got, truth, threads[i].ID(), threads[j].ID())
					}
				}
			}
		})
	}
}

// Property: vcap's probed capacity tracks arbitrary fair shares within 15%.
func TestVcapTracksArbitraryShares(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		rng := rand.New(rand.NewSource(int64(50 + trial)))
		eng := sim.NewEngine(int64(trial))
		cfg := host.DefaultConfig()
		cfg.Sockets, cfg.CoresPerSocket, cfg.ThreadsPerCore = 1, 4, 1
		cfg.TurboFactor, cfg.SMTFactor = 1.0, 1.0
		cfg.BaseSpeed = 1.0
		h := host.New(eng, cfg)
		shares := make([]float64, 4)
		var threads []*host.Thread
		for i := 0; i < 4; i++ {
			threads = append(threads, h.Thread(i))
			shares[i] = 0.2 + 0.75*rng.Float64()
			if shares[i] < 0.98 {
				w := int64(float64(host.DefaultWeight) * (1 - shares[i]) / shares[i])
				if w < 1 {
					w = 1
				}
				host.NewStressor(h, "tenant", h.Thread(i), w)
			} else {
				shares[i] = 1.0
			}
		}
		vm := guest.NewVM(h, "vm", threads, guest.DefaultParams())
		vm.Start()
		p := DefaultParams()
		p.NominalSpeed = 1.0
		s := New(vm, Features{Vcap: true, Vact: true}, p, cachemodel.Default())
		s.Start()
		eng.RunFor(15 * sim.Second)
		for i := 0; i < 4; i++ {
			want := 1024 * shares[i]
			got := float64(vm.VCPU(i).Capacity())
			if got < want*0.85 || got > want*1.15 {
				t.Fatalf("trial %d vcpu %d: share %.2f want cap ~%.0f got %.0f",
					trial, i, shares[i], want, got)
			}
		}
	}
}

// Property: QueryState never reports Active for a vCPU whose heartbeat has
// been stale for many ticks, and never Inactive for a freshly ticking one.
func TestQueryStateConsistency(t *testing.T) {
	eng := sim.NewEngine(3)
	cfg := host.DefaultConfig()
	cfg.Sockets, cfg.CoresPerSocket, cfg.ThreadsPerCore = 1, 2, 1
	h := host.New(eng, cfg)
	vm := guest.NewVM(h, "vm", []*host.Thread{h.Thread(0), h.Thread(1)}, guest.DefaultParams())
	vm.Start()
	p := DefaultParams()
	s := New(vm, Features{Vcap: true, Vact: true}, p, cachemodel.Default())
	s.Start()
	vm.Spawn("hog", func(sim.Time) guest.Segment { return guest.ComputeForever() },
		guest.WithAffinity(0))
	host.NewPatternContender(h, "p", h.Thread(0), 7*sim.Millisecond, 7*sim.Millisecond, 0)
	eng.RunFor(2 * sim.Second)
	mismatches := 0
	checks := 0
	for i := 0; i < 2000; i++ {
		eng.RunFor(500 * sim.Microsecond)
		v := vm.VCPU(0)
		st, _ := s.QueryState(v)
		reallyRunning := v.Entity().State() == host.Running
		stale := eng.Now().Sub(v.Heartbeat())
		if st == StateActive && stale > 4*vm.Params().TickPeriod {
			t.Fatalf("reported Active with heartbeat stale %v", stale)
		}
		checks++
		// Tick-granularity disagreement with physics is expected briefly
		// around transitions, but must be rare.
		if (st == StateActive) != reallyRunning {
			mismatches++
		}
	}
	if frac := float64(mismatches) / float64(checks); frac > 0.35 {
		t.Fatalf("state query disagrees with physics %.0f%% of the time", 100*frac)
	}
}
