package core

import (
	"vsched/internal/guest"
	"vsched/internal/metrics"
	"vsched/internal/sim"
	"vsched/internal/vtrace"
)

// ivh implements intra-VM harvesting (§3.3): proactive migration of
// CPU-intensive running tasks off vCPUs that suffer inactive periods, onto
// unused vCPUs where they keep making progress — harvesting vCPU time that
// would otherwise be wasted while the task sits stalled.
//
// The activity-aware protocol (Fig. 9) bounds migration delay: the source
// pre-wakes the target with an interrupt; the target, once genuinely
// active, issues a pull request; the stopper on the source detaches the
// running task — possible only while the source itself is still active. A
// late pull (source already preempted, task already stalled) is abandoned.
type ivh struct {
	s             *VSched
	activityAware bool
	inflight      map[int]uint64 // source vCPU id -> live attempt id
	attemptSeq    uint64
	// Protocol outcome counters, registered in the VM's metrics registry.
	attempts, migrated, abandoned *metrics.Counter
}

// IVHStats counts protocol outcomes.
type IVHStats struct {
	Attempts  uint64
	Migrated  uint64
	Abandoned uint64
}

// Trace payload values for KindIVH's A0.
const (
	ivhOutcomeAttempt   = 0
	ivhOutcomeMigrated  = 1
	ivhOutcomeAbandoned = 2
)

const (
	stopperCost = 15 * sim.Microsecond // stopper thread round trip
	// pullTimeout bounds how long a pre-woken target gets to issue its pull
	// request; afterwards the attempt is abandoned and the next tick may
	// pick a better target.
	pullTimeout = 2 * sim.Millisecond
)

func newIVH(s *VSched) *ivh {
	reg := s.vm.Metrics()
	return &ivh{
		s:             s,
		activityAware: true,
		inflight:      make(map[int]uint64),
		attempts:      reg.Counter("vsched.ivh.attempts"),
		migrated:      reg.Counter("vsched.ivh.migrated"),
		abandoned:     reg.Counter("vsched.ivh.abandoned"),
	}
}

// emit records one protocol step in the trace (no-op when tracing is off).
func (h *ivh) emit(outcome int64, src, dst *guest.VCPU, t *guest.Task) {
	h.s.tracer().Emit(h.s.eng.Now(), vtrace.KindIVH, t.Name(),
		outcome, int64(src.ID()), int64(dst.ID()))
}

// onTick is installed as the guest tick hook; it runs on every tick of every
// vCPU while that vCPU is really active.
func (h *ivh) onTick(v *guest.VCPU) {
	if h.inflight[v.ID()] != 0 {
		return
	}
	t := v.Curr()
	now := h.s.eng.Now()
	if t == nil || t.IsIdlePolicy() || t.Group() == h.s.proberGroup {
		return
	}
	// CPU-intensive and has been running a minimum duration (PELT + the
	// 2ms threshold), on a vCPU with known inactive periods.
	if t.Util() < h.s.params.CPUIntensiveUtil {
		return
	}
	if now.Sub(t.RunStart()) < h.s.params.IVHMinRun {
		return
	}
	if v.Latency() == 0 {
		return // probed as dedicated: nothing to harvest
	}
	dst := h.findTarget(t, v)
	if dst == nil {
		return
	}
	h.attempts.Inc()
	h.emit(ivhOutcomeAttempt, v, dst, t)
	h.attemptSeq++
	id := h.attemptSeq
	h.inflight[v.ID()] = id
	if !h.activityAware {
		// Ablation (Table 4): migrate immediately regardless of target
		// activity; the task may land on an inactive vCPU and stall there.
		h.s.eng.After(stopperCost, func() {
			delete(h.inflight, v.ID())
			if h.s.vm.PullRunning(v, dst, t) {
				h.migrated.Inc()
				h.emit(ivhOutcomeMigrated, v, dst, t)
			} else {
				h.abandoned.Inc()
				h.emit(ivhOutcomeAbandoned, v, dst, t)
			}
		})
		return
	}
	// Step 1: interrupt the target (pre-wake if halted).
	h.s.vm.KickVCPU(dst)
	// Step 2: the target issues the pull request as soon as it really runs;
	// step 3: the stopper on the source detaches the task. PullRunning
	// fails — and we abandon — when the source has lost the CPU by then. A
	// target that does not come up within the timeout is abandoned too, so
	// the next tick can try a better one.
	h.s.vm.DeliverIRQ(dst, func() {
		if h.inflight[v.ID()] != id {
			return // attempt expired
		}
		h.s.eng.After(stopperCost, func() {
			if h.inflight[v.ID()] != id {
				return
			}
			delete(h.inflight, v.ID())
			if h.s.vm.PullRunning(v, dst, t) {
				h.migrated.Inc()
				h.emit(ivhOutcomeMigrated, v, dst, t)
			} else {
				h.abandoned.Inc()
				h.emit(ivhOutcomeAbandoned, v, dst, t)
			}
		})
	})
	h.s.eng.After(pullTimeout, func() {
		if h.inflight[v.ID()] == id {
			delete(h.inflight, v.ID())
			h.abandoned.Inc()
			h.emit(ivhOutcomeAbandoned, v, dst, t)
		}
	})
}

// findTarget searches for an unused vCPU able to engage quickly: guest-idle
// or running only best-effort work, allowed by the task's cgroup, with
// adequate capacity; activity-aware mode additionally requires it to be
// active now or idle (wakeable).
func (h *ivh) findTarget(t *guest.Task, src *guest.VCPU) *guest.VCPU {
	n := h.s.vm.NumVCPUs()
	medCap := h.s.medianCapacity()
	start := src.ID() + 1
	var fallback *guest.VCPU
	for k := 0; k < n; k++ {
		v := h.s.vm.VCPU((start + k) % n)
		if v == src || !h.s.allowedForTask(t, v) {
			continue
		}
		unused := v.GuestIdle() || v.OnlyIdlePolicy()
		if !unused {
			continue
		}
		if v.Capacity() < medCap/2 {
			continue // don't harvest onto stragglers
		}
		if !h.activityAware {
			return v
		}
		st, _ := h.s.QueryState(v)
		switch st {
		case StateActive:
			return v // immediate engagement (sched_idle target, Fig. 9 middle)
		case StateIdle:
			if fallback == nil {
				fallback = v // needs a pre-wake kick; acceptable
			}
		}
	}
	return fallback
}
