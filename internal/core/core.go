// Package core implements vSched, the paper's contribution: accurate vCPU
// abstraction probed from inside the VM (the vProbers vcap, vact and vtop)
// and three scheduling techniques built on it — biased vCPU selection (bvs),
// intra-VM harvesting (ivh) and relaxed work conservation (rwc).
//
// Everything here consumes only guest-legitimate information: steal-time
// counters, the guest's own tick timestamps (heartbeats), measured cache
// line transfer latencies, PELT, and runqueue state. Host ground truth is
// never read by policy code.
package core

import (
	"math"
	"sort"

	"vsched/internal/cachemodel"
	"vsched/internal/guest"
	"vsched/internal/metrics"
	"vsched/internal/sim"
	"vsched/internal/vtrace"
)

// Params are the vSched tunables (Table 1 of the paper) plus classification
// thresholds.
type Params struct {
	SamplePeriod     sim.Duration // vcap sampling period (100 ms)
	LightEvery       sim.Duration // light sampling frequency (1 s)
	HeavyEveryLights int          // heavy sampling every N light samplings (5)
	// EMAHalfPeriods is the smoothing horizon: capacity decays 50% per this
	// many sampling periods (2).
	EMAHalfPeriods float64

	VtopEvery           sim.Duration // topology validation frequency (2 s)
	VtopTargetTransfers int          // successful transfers per pair (500)
	VtopTimeoutAttempts int          // attempts before declaring stacked (15000)

	IVHMinRun sim.Duration // ivh migration threshold (2 ms)

	// SmallTaskUtil is the PELT ceiling under which a latency-sensitive task
	// is "small" for bvs.
	SmallTaskUtil float64
	// CPUIntensiveUtil is the PELT floor above which ivh treats a task as
	// CPU-intensive. It sits well below full utilisation because a
	// compute-bound task on a frequently-inactive vCPU accrues utilisation
	// only in proportion to the vCPU's share.
	CPUIntensiveUtil float64
	// StragglerFactor: a vCPU whose capacity is this many times below the
	// average is a straggler for rwc (10).
	StragglerFactor float64

	// NominalSpeed is the guest's calibration constant: cycles per
	// nanosecond at nominal frequency (what /proc/cpuinfo advertises).
	// Capacities are normalised against it.
	NominalSpeed float64
}

// DefaultParams mirrors Table 1.
func DefaultParams() Params {
	return Params{
		SamplePeriod:        100 * sim.Millisecond,
		LightEvery:          1 * sim.Second,
		HeavyEveryLights:    5,
		EMAHalfPeriods:      2,
		VtopEvery:           2 * sim.Second,
		VtopTargetTransfers: 500,
		VtopTimeoutAttempts: 15000,
		IVHMinRun:           2 * sim.Millisecond,
		SmallTaskUtil:       250,
		CPUIntensiveUtil:    350,
		StragglerFactor:     10,
		NominalSpeed:        2.0,
	}
}

// Features selects which vSched components run. The paper's "enhanced CFS"
// is {Vcap, Vact, Vtop, RWC}; full vSched adds BVS and IVH.
type Features struct {
	Vcap bool
	Vact bool
	Vtop bool
	BVS  bool
	IVH  bool
	RWC  bool
	// Vllc enables the extension cache prober (§8: probing "other
	// resources"); advisory only, never consumed by the scheduler.
	Vllc bool
}

// EnhancedCFS returns the feature set of the paper's "enhanced CFS"
// configuration: accurate abstraction plus rwc, without the new
// activity-aware techniques.
func EnhancedCFS() Features {
	return Features{Vcap: true, Vact: true, Vtop: true, RWC: true}
}

// AllFeatures returns full vSched.
func AllFeatures() Features {
	return Features{Vcap: true, Vact: true, Vtop: true, BVS: true, IVH: true, RWC: true}
}

// VSched binds the probers and techniques to one VM.
type VSched struct {
	vm       *guest.VM
	eng      *sim.Engine
	params   Params
	features Features
	model    cachemodel.Model

	vcap *vcap
	vact *vact
	vtop *Vtop
	vllc *Vllc
	rwc  *rwc
	ivh  *ivh

	// bvsStateCheck gates Fig. 8's vCPU-state conditions; disabling it gives
	// the "bvs (no state check)" ablation of Table 3.
	bvsStateCheck bool
	// bvsCalls/bvsHits count hook invocations and first-fit successes,
	// registered in the VM's metrics registry.
	bvsCalls, bvsHits *metrics.Counter
	// bvsBestFit switches the first-fit search to an exhaustive best-fit
	// scan (ablation).
	bvsBestFit bool
	// bvsMedianGate anchors the low-latency cutoff to the median instead of
	// the best class (ablation).
	bvsMedianGate bool

	userGroup   *guest.CGroup // normal-policy user workloads
	beGroup     *guest.CGroup // best-effort (SCHED_IDLE) user workloads
	proberGroup *guest.CGroup // vcap/vact probers

	started bool
}

// New creates a vSched instance for vm with the given features. The cache
// model supplies the physics of vtop's latency measurements.
func New(vm *guest.VM, features Features, params Params, model cachemodel.Model) *VSched {
	s := &VSched{
		vm:            vm,
		eng:           vm.Engine(),
		params:        params,
		features:      features,
		model:         model,
		bvsStateCheck: true,
	}
	s.bvsCalls = vm.Metrics().Counter("vsched.bvs.calls")
	s.bvsHits = vm.Metrics().Counter("vsched.bvs.hits")
	s.userGroup = vm.NewGroup("vsched-user")
	s.beGroup = vm.NewGroup("vsched-be")
	s.proberGroup = vm.NewGroup("vsched-probers")
	s.vcap = newVcap(s)
	s.vact = newVact(s)
	s.vtop = newVtop(s)
	s.vllc = newVllc(s)
	s.rwc = newRWC(s)
	s.ivh = newIVH(s)
	return s
}

// VM returns the managed VM.
func (s *VSched) VM() *guest.VM { return s.vm }

// Params returns the tunables.
func (s *VSched) Params() Params { return s.params }

// UserGroup is the cgroup user workloads with normal policy should join;
// rwc manages its allowed mask.
func (s *VSched) UserGroup() *guest.CGroup { return s.userGroup }

// BEGroup is the cgroup for best-effort (SCHED_IDLE) user workloads.
func (s *VSched) BEGroup() *guest.CGroup { return s.beGroup }

// Vtop exposes the topology prober (experiments read its matrix and probe
// times).
func (s *VSched) Vtop() *Vtop { return s.vtop }

// IVHStats returns counters of ivh's migration protocol.
func (s *VSched) IVHStats() IVHStats {
	return IVHStats{
		Attempts:  s.ivh.attempts.Value(),
		Migrated:  s.ivh.migrated.Value(),
		Abandoned: s.ivh.abandoned.Value(),
	}
}

// tracer returns the managed VM's event tracer (nil when tracing is off);
// every emit site goes through it so tracing can be flipped per VM.
func (s *VSched) tracer() *vtrace.Tracer { return s.vm.Tracer() }

// SetIVHActivityAware toggles the pre-wake protocol (Table 4's ablation);
// default true.
func (s *VSched) SetIVHActivityAware(aware bool) { s.ivh.activityAware = aware }

// SetBVSStateCheck toggles bvs's use of the probed vCPU state (Table 3's
// "bvs (no state check)" ablation); default true.
func (s *VSched) SetBVSStateCheck(check bool) { s.bvsStateCheck = check }

// BVSStats returns how often the bvs hook ran and how often its first-fit
// search produced a placement (vs falling back to CFS).
func (s *VSched) BVSStats() (calls, hits uint64) {
	return s.bvsCalls.Value(), s.bvsHits.Value()
}

// SetBVSBestFit switches bvs to an exhaustive best-fit scan instead of the
// paper's first-fit policy (ablation).
func (s *VSched) SetBVSBestFit(b bool) { s.bvsBestFit = b }

// SetBVSMedianGate switches bvs's low-latency cutoff back to the median
// published latency instead of the min-anchored class gate (ablation: on a
// VM where a minority of vCPUs is genuinely low-latency, the median blesses
// the middle class and bvs parks latency tasks behind inactive bursts).
func (s *VSched) SetBVSMedianGate(b bool) { s.bvsMedianGate = b }

// Start launches the enabled probers and installs hooks. Idempotent.
func (s *VSched) Start() {
	if s.started {
		return
	}
	s.started = true
	if s.features.Vcap || s.features.Vact {
		s.vcap.start()
	}
	if s.features.Vtop {
		s.vtop.start()
	}
	if s.features.Vllc {
		s.vllc.start()
	}
	hooks := guest.Hooks{}
	if s.features.BVS {
		hooks.SelectCPU = s.bvsSelect
	}
	if s.features.IVH {
		hooks.Tick = s.ivh.onTick
	}
	if s.features.BVS || s.features.IVH {
		s.vm.InstallHooks(hooks)
	}
}

// --- vact's state query (heartbeat examination) ---

// VCPUState is the probed activity state of a vCPU.
type VCPUState int

const (
	// StateIdle: the guest has nothing to run there (not a host condition).
	StateIdle VCPUState = iota
	// StateActive: heartbeats are fresh — the vCPU is really executing.
	StateActive
	// StateInactive: heartbeats are stale on a busy vCPU — it is preempted.
	StateInactive
)

func (st VCPUState) String() string {
	switch st {
	case StateIdle:
		return "idle"
	case StateActive:
		return "active"
	case StateInactive:
		return "inactive"
	}
	return "invalid"
}

// QueryState classifies a vCPU from guest-visible signals only: guest
// idleness, and the staleness of its tick heartbeat (stale for more than two
// ticks => preempted). The returned time is when the state was entered (tick
// granularity).
func (s *VSched) QueryState(v *guest.VCPU) (VCPUState, sim.Time) {
	if v.GuestIdle() {
		return StateIdle, v.IdleSince()
	}
	now := s.eng.Now()
	staleAfter := 2 * s.vm.Params().TickPeriod
	if now.Sub(v.Heartbeat()) > staleAfter {
		return StateInactive, v.Heartbeat()
	}
	return StateActive, v.BecameActiveAt()
}

// medianCapacity returns the median published capacity across vCPUs.
func (s *VSched) medianCapacity() int64 {
	caps := make([]int64, 0, s.vm.NumVCPUs())
	for _, v := range s.vm.VCPUs() {
		caps = append(caps, v.Capacity())
	}
	sort.Slice(caps, func(i, j int) bool { return caps[i] < caps[j] })
	return caps[(len(caps)-1)/2]
}

// lowLatencyThreshold returns the cutoff below which a vCPU counts as
// "low latency" for bvs. The bias must be relative — on a fully contended
// VM every latency is in the milliseconds and bvs should still prefer the
// 3 ms class over the 9 ms class — but anchored to the best class, not the
// median: when even one vCPU is genuinely low-latency (hpvm's dedicated
// socket), a median anchor would bless the middle class and bvs would place
// latency tasks behind multi-millisecond inactive bursts that stock
// capacity-aware CFS avoids. Cutoff: 1.5x the minimum published latency —
// tight enough to split the paper's 3/6/9 ms category ladder — with one
// tick of additive slack so a homogeneous class is accepted whole despite
// probe noise and near-zero minima.
func (s *VSched) lowLatencyThreshold() sim.Duration {
	if s.bvsMedianGate {
		// Ablation: the obvious-but-wrong anchor.
		ls := make([]sim.Duration, 0, s.vm.NumVCPUs())
		for _, v := range s.vm.VCPUs() {
			ls = append(ls, v.Latency())
		}
		sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
		return ls[(len(ls)-1)/2]
	}
	min := sim.Duration(-1)
	for _, v := range s.vm.VCPUs() {
		if l := v.Latency(); min < 0 || l < min {
			min = l
		}
	}
	thresh := min + min/2
	if slack := min + s.vm.Params().TickPeriod; thresh < slack {
		thresh = slack
	}
	return thresh
}

// emaFactor converts the half-period horizon into a per-period decay factor.
func (p Params) emaFactor() float64 {
	return math.Exp2(-1 / p.EMAHalfPeriods)
}
