package core

import (
	"testing"

	"vsched/internal/cachemodel"
	"vsched/internal/guest"
	"vsched/internal/host"
	"vsched/internal/sim"
)

func TestAutoTuneGrowsSamplingForLongCycles(t *testing.T) {
	// 120ms activity cycles (80ms inactive bursts): the default 100ms
	// sampling period aliases; AutoTune must stretch it.
	eng := sim.NewEngine(4)
	cfg := host.DefaultConfig()
	cfg.Sockets, cfg.CoresPerSocket, cfg.ThreadsPerCore = 1, 2, 1
	cfg.TurboFactor, cfg.SMTFactor, cfg.BaseSpeed = 1, 1, 1
	h := host.New(eng, cfg)
	host.NewPatternContender(h, "p", h.Thread(0), 80*sim.Millisecond, 40*sim.Millisecond, 0)
	vm := guest.NewVM(h, "vm", []*host.Thread{h.Thread(0), h.Thread(1)}, guest.DefaultParams())
	vm.Start()
	p := DefaultParams()
	p.NominalSpeed = 1
	s := New(vm, Features{Vcap: true, Vact: true}, p, cachemodel.Default())
	s.Start()
	eng.RunFor(10 * sim.Second)

	tuned := s.AutoTune()
	if tuned.SamplePeriod <= 100*sim.Millisecond {
		t.Fatalf("sampling period should stretch past the 120ms cycle, got %v", tuned.SamplePeriod)
	}
	if tuned.SamplePeriod > 500*sim.Millisecond {
		t.Fatalf("sampling period must stay bounded, got %v", tuned.SamplePeriod)
	}
	if tuned.LightEvery < 10*tuned.SamplePeriod {
		t.Fatalf("probing duty ratio must stay ~1:10: %v / %v", tuned.SamplePeriod, tuned.LightEvery)
	}
	if tuned.IVHMinRun != 2*vm.Params().TickPeriod {
		t.Fatalf("ivh threshold should track the tick: %v", tuned.IVHMinRun)
	}
	if s.Params().SamplePeriod != tuned.SamplePeriod {
		t.Fatal("AutoTune must install the new params")
	}
}

func TestAutoTuneKeepsDefaultsOnQuietHost(t *testing.T) {
	eng := sim.NewEngine(5)
	cfg := host.DefaultConfig()
	cfg.Sockets, cfg.CoresPerSocket, cfg.ThreadsPerCore = 1, 2, 1
	h := host.New(eng, cfg)
	vm := guest.NewVM(h, "vm", []*host.Thread{h.Thread(0), h.Thread(1)}, guest.DefaultParams())
	vm.Start()
	s := New(vm, Features{Vcap: true, Vact: true}, DefaultParams(), cachemodel.Default())
	s.Start()
	eng.RunFor(6 * sim.Second)
	tuned := s.AutoTune()
	if tuned.SamplePeriod != 100*sim.Millisecond {
		t.Fatalf("dedicated host should keep the default period, got %v", tuned.SamplePeriod)
	}
}

func TestVllcMeasuresCachePressure(t *testing.T) {
	// Two believed sockets; socket 0 is loaded with cache-heavy tasks whose
	// footprints overflow the LLC, socket 1 is clean. The prober must report
	// a lower share for socket 0.
	eng := sim.NewEngine(6)
	cfg := host.DefaultConfig()
	cfg.Sockets, cfg.CoresPerSocket, cfg.ThreadsPerCore = 2, 4, 1
	cfg.TurboFactor, cfg.SMTFactor, cfg.BaseSpeed = 1, 1, 1
	h := host.New(eng, cfg)
	var threads []*host.Thread
	for i := 0; i < 8; i++ {
		threads = append(threads, h.Thread(i))
	}
	vm := guest.NewVM(h, "vm", threads, guest.DefaultParams())
	vm.Start()
	p := DefaultParams()
	p.NominalSpeed = 1
	s := New(vm, Features{Vcap: true, Vact: true, Vtop: true, Vllc: true}, p, cachemodel.Default())
	s.Start()
	// Cache-heavy residents pinned on socket 0 (threads 0..3).
	for i := 0; i < 3; i++ {
		vm.Spawn("mem", func(sim.Time) guest.Segment { return guest.ComputeForever() },
			guest.WithAffinity(i), guest.WithFootprint(10))
	}
	eng.RunFor(12 * sim.Second)

	loaded := s.CacheShare(0)
	clean := s.CacheShare(7)
	if loaded >= 0.95 {
		t.Fatalf("loaded socket should show cache pressure, share=%.2f", loaded)
	}
	if clean < 0.9 {
		t.Fatalf("clean socket should be near 1.0, share=%.2f", clean)
	}
	if clean <= loaded {
		t.Fatalf("shares inverted: clean %.2f vs loaded %.2f", clean, loaded)
	}
}

func TestCacheShareDefaultsToOne(t *testing.T) {
	eng := sim.NewEngine(7)
	cfg := host.DefaultConfig()
	cfg.Sockets, cfg.CoresPerSocket, cfg.ThreadsPerCore = 1, 2, 1
	h := host.New(eng, cfg)
	vm := guest.NewVM(h, "vm", []*host.Thread{h.Thread(0), h.Thread(1)}, guest.DefaultParams())
	vm.Start()
	s := New(vm, Features{Vcap: true}, DefaultParams(), cachemodel.Default())
	s.Start()
	if s.CacheShare(0) != 1.0 {
		t.Fatal("unmeasured share must default to 1.0")
	}
	_ = eng
}
