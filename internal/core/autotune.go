package core

import (
	"vsched/internal/sim"
)

// AutoTune implements the paper's §6 claim that the Table 1 tunables "can be
// easily auto-configured across different platforms": after the probers have
// observed the host for a few seconds, the sampling geometry is re-derived
// from the measured vCPU dynamics instead of hand-set constants.
//
// Rules, following the paper's rationale:
//
//   - the vcap sampling period must span at least one full activity cycle of
//     every vCPU (otherwise share measurements alias), with head-room 2x;
//   - the light sampling interval keeps the duty ratio of probing constant
//     (period:interval = 1:10), bounding overhead while reacting within
//     seconds;
//   - ivh's migration threshold tracks the scheduler tick (trigger within
//     two ticks of a rescheduled vCPU, per §6).
//
// It returns the adjusted parameters, which take effect from the next
// sampling window.
func (s *VSched) AutoTune() Params {
	var maxCycle sim.Duration
	for _, v := range s.vm.VCPUs() {
		// Dedicated vCPUs have no activity cycle: their "active period" is
		// just the sampling window. Only contended vCPUs constrain the
		// sampling geometry.
		if v.Latency() < sim.Millisecond {
			continue
		}
		if c := v.AvgActive() + v.Latency(); c > maxCycle {
			maxCycle = c
		}
	}
	p := s.params

	period := 2 * maxCycle
	if period < 100*sim.Millisecond {
		period = 100 * sim.Millisecond
	}
	if period > 500*sim.Millisecond {
		period = 500 * sim.Millisecond
	}
	p.SamplePeriod = period

	interval := 10 * period
	if interval < sim.Second {
		interval = sim.Second
	}
	p.LightEvery = interval

	p.IVHMinRun = 2 * s.vm.Params().TickPeriod

	s.params = p
	return p
}
