package core

import (
	"vsched/internal/guest"
	"vsched/internal/sim"
	"vsched/internal/vtrace"
)

// vact probes vCPU activity (§3.1): the average inactive period ("vCPU
// latency", how quickly a vCPU can respond), the average active period, and
// a near-real-time state query built on tick heartbeats (implemented in
// VSched.QueryState). It owns no prober tasks — the kernel instrumentation
// (steal-jump counting in the guest tick handler) plus vcap's sampling
// windows give it everything it needs.
type vact struct {
	s   *VSched
	per []vactVCPU
}

type vactVCPU struct {
	latencyEMA  float64 // average inactive period, ns
	activeEMA   float64 // average active period, ns
	inactiveEMA float64
	have        bool
}

func newVact(s *VSched) *vact {
	return &vact{s: s, per: make([]vactVCPU, s.vm.NumVCPUs())}
}

// onSample consumes one vcap sampling window for v: stealD is the steal
// accumulated over the window. The kernel's preemption counter (reset at
// window start) says how many inactive periods the steal is spread over.
func (a *vact) onSample(v *guest.VCPU, stealD, period sim.Duration) {
	preempts := v.ResetPreemptCount()
	pv := &a.per[v.ID()]

	var inactive, active float64
	switch {
	case preempts == 0 && stealD < period/50:
		// Effectively dedicated: no measurable inactivity.
		inactive, active = 0, float64(period)
	case preempts == 0:
		// Stolen time but no detected jump (one long ongoing preemption):
		// treat the whole window's steal as one inactive period.
		inactive, active = float64(stealD), float64(period-stealD)
	default:
		inactive = float64(stealD) / float64(preempts)
		active = float64(period-stealD) / float64(preempts)
	}

	f := a.s.params.emaFactor()
	if pv.have {
		pv.latencyEMA = pv.latencyEMA*f + inactive*(1-f)
		pv.inactiveEMA = pv.inactiveEMA*f + inactive*(1-f)
		pv.activeEMA = pv.activeEMA*f + active*(1-f)
	} else {
		pv.latencyEMA, pv.inactiveEMA, pv.activeEMA = inactive, inactive, active
		pv.have = true
	}
	v.PublishActivity(
		sim.Duration(pv.latencyEMA),
		sim.Duration(pv.activeEMA),
		sim.Duration(pv.inactiveEMA),
	)
	a.s.tracer().Emit(a.s.eng.Now(), vtrace.KindActSample, "vact",
		int64(v.ID()), int64(pv.latencyEMA), int64(pv.activeEMA))
}
