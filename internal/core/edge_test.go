package core

import (
	"testing"

	"vsched/internal/cachemodel"
	"vsched/internal/guest"
	"vsched/internal/host"
	"vsched/internal/sim"
)

// TestVSchedOnSingleVCPU runs the full system on the degenerate one-vCPU VM:
// every median/min aggregate collapses to the single sample, vtop has no
// pairs to probe, bvs has one candidate, ivh has nowhere to migrate. Nothing
// may panic and the workload must still progress.
func TestVSchedOnSingleVCPU(t *testing.T) {
	r := newRig(t, 1, 1, 1, 1, AllFeatures())
	host.NewPatternContender(r.h, "p", r.h.Thread(0), 3*sim.Millisecond, 7*sim.Millisecond, 0)

	var done int
	r.vm.Spawn("w", func(now sim.Time) guest.Segment {
		done++
		return guest.Compute(5e5)
	})
	r.eng.RunFor(10 * sim.Second)

	if done == 0 {
		t.Fatal("workload made no progress on a 1-vCPU VM")
	}
	if c := r.vm.VCPU(0).Capacity(); c < 500 || c > 1100 {
		t.Fatalf("capacity=%d want ~70%% of 1024", c)
	}
	if lat := r.vm.VCPU(0).Latency(); lat < 2*sim.Millisecond || lat > 4*sim.Millisecond {
		t.Fatalf("latency=%v want ~3ms", lat)
	}
	// The gate must accept the only vCPU there is.
	if thresh := r.s.lowLatencyThreshold(); r.vm.VCPU(0).Latency() > thresh {
		t.Fatalf("single vCPU rejected by its own latency gate: %v > %v",
			r.vm.VCPU(0).Latency(), thresh)
	}
}

// TestVSchedFullyStackedVM pins two vCPUs to the same host thread: vtop must
// confirm the stacking, rwc must hide exactly one of the pair (hiding both
// would deadlock the VM), and work must keep flowing on the survivor.
func TestVSchedFullyStackedVM(t *testing.T) {
	eng := sim.NewEngine(23)
	cfg := host.DefaultConfig()
	cfg.Sockets, cfg.CoresPerSocket, cfg.ThreadsPerCore = 1, 2, 1
	cfg.TurboFactor, cfg.BaseSpeed = 1.0, 1.0
	h := host.New(eng, cfg)
	// Both vCPUs on thread 0; thread 1 stays empty.
	vm := guest.NewVM(h, "vm", []*host.Thread{h.Thread(0), h.Thread(0)}, guest.DefaultParams())
	vm.Start()
	p := DefaultParams()
	p.NominalSpeed = 1.0
	s := New(vm, AllFeatures(), p, cachemodel.Default())
	s.Start()

	var done int
	vm.Spawn("w", func(now sim.Time) guest.Segment {
		done++
		return guest.Compute(5e5)
	}, guest.WithGroup(s.UserGroup()))
	eng.RunFor(12 * sim.Second)

	if !s.Vtop().Belief().SameStack(0, 1) {
		t.Fatal("vtop failed to confirm the stacked pair")
	}
	allowed := 0
	for i := 0; i < 2; i++ {
		if s.UserGroup().Allowed(i) {
			allowed++
		}
	}
	if allowed != 1 {
		t.Fatalf("rwc must hide exactly one of a fully stacked pair, %d allowed", allowed)
	}
	if done == 0 {
		t.Fatal("workload made no progress on the surviving vCPU")
	}
}

// TestBVSRespectsCGroupMask drives the selection hook directly: a task whose
// cgroup bans the objectively best vCPU must never be placed there.
func TestBVSRespectsCGroupMask(t *testing.T) {
	r := newRig(t, 1, 4, 1, 4, Features{Vcap: true, Vact: true, BVS: true})
	// vCPU 0 is the best (dedicated); 1-3 carry contention.
	for i := 1; i < 4; i++ {
		host.NewPatternContender(r.h, "p", r.h.Thread(i),
			3*sim.Millisecond, 3*sim.Millisecond, sim.Duration(i)*sim.Millisecond)
	}
	r.eng.RunFor(6 * sim.Second) // let probers learn

	g := r.vm.NewGroup("restricted")
	r.vm.SetGroupMask(g, []bool{false, true, true, true}) // ban the best vCPU
	task := r.vm.Spawn("lat", func(now sim.Time) guest.Segment {
		return guest.Sleep(10 * sim.Millisecond)
	}, guest.WithLatencySensitive(), guest.WithGroup(g))
	r.eng.RunFor(100 * sim.Millisecond)

	for i := 0; i < 50; i++ {
		if v := r.s.bvsSelect(task, r.vm.VCPU(0)); v != nil && v.ID() == 0 {
			t.Fatal("bvs placed a task on a cgroup-banned vCPU")
		}
		r.eng.RunFor(20 * sim.Millisecond)
	}
}
