package progress

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestBusPublishPollOrder(t *testing.T) {
	b := NewBus(16)
	for i := 0; i < 10; i++ {
		b.Publish(Event{Kind: KindEpoch, Epoch: int64(i)})
	}
	r := b.NewReader(true)
	buf := make([]Event, 16)
	n := r.Poll(buf)
	if n != 10 {
		t.Fatalf("Poll = %d, want 10", n)
	}
	for i := 0; i < n; i++ {
		if buf[i].Seq != uint64(i) || buf[i].Epoch != int64(i) {
			t.Fatalf("event %d: seq=%d epoch=%d", i, buf[i].Seq, buf[i].Epoch)
		}
	}
	if r.Dropped() != 0 {
		t.Fatalf("dropped = %d, want 0", r.Dropped())
	}
	if !r.Drained() {
		t.Fatalf("reader should be drained")
	}
}

func TestBusCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, DefaultBusSize}, {-1, DefaultBusSize}, {1, 8}, {8, 8}, {9, 16}, {100, 128},
	} {
		if got := NewBus(tc.in).Cap(); got != tc.want {
			t.Errorf("NewBus(%d).Cap() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestReaderDropAccounting(t *testing.T) {
	b := NewBus(8)
	r := b.NewReader(true)
	// Publish 3 laps of the ring: 24 events into 8 slots. The lagging
	// reader must see exactly the last 8 and count exactly 16 dropped.
	for i := 0; i < 24; i++ {
		b.Publish(Event{Epoch: int64(i)})
	}
	var got []Event
	buf := make([]Event, 4)
	for {
		n := r.Poll(buf)
		if n == 0 {
			break
		}
		got = append(got, buf[:n]...)
	}
	if len(got) != 8 {
		t.Fatalf("received %d events, want 8", len(got))
	}
	for i, ev := range got {
		if want := int64(16 + i); ev.Epoch != want {
			t.Fatalf("event %d: epoch=%d, want %d", i, ev.Epoch, want)
		}
	}
	if r.Dropped() != 16 {
		t.Fatalf("dropped = %d, want 16", r.Dropped())
	}
	if rec, drop := uint64(len(got)), r.Dropped(); rec+drop != b.Seq() {
		t.Fatalf("received(%d) + dropped(%d) != published(%d)", rec, drop, b.Seq())
	}
}

func TestReaderFromHeadSeesOnlyFuture(t *testing.T) {
	b := NewBus(8)
	b.Publish(Event{Epoch: 1})
	r := b.NewReader(false)
	b.Publish(Event{Epoch: 2})
	buf := make([]Event, 8)
	n := r.Poll(buf)
	if n != 1 || buf[0].Epoch != 2 {
		t.Fatalf("Poll = %d events (first epoch %d), want exactly the post-subscribe event", n, buf[0].Epoch)
	}
}

// TestConcurrentPublishers hammers the bus from several goroutines while a
// reader drains, then checks exact accounting: every published event is
// either received intact or counted as dropped, with no duplicates and no
// torn payloads. Run under -race in CI.
func TestConcurrentPublishers(t *testing.T) {
	const (
		producers = 4
		perProd   = 5000
	)
	b := NewBus(64)
	r := b.NewReader(true)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				// Payload fields all derived from one value so a torn
				// read is detectable.
				v := int64(p*perProd + i)
				b.Publish(Event{Kind: KindEpoch, Epoch: v, Admitted: v, Completed: -v})
			}
		}(p)
	}
	donePub := make(chan struct{})
	go func() { wg.Wait(); close(donePub) }()

	var received uint64
	seen := make(map[uint64]bool)
	buf := make([]Event, 32)
	finished := false
	for !finished {
		select {
		case <-donePub:
			finished = true
		default:
		}
		for {
			n := r.Poll(buf)
			if n == 0 {
				break
			}
			for _, ev := range buf[:n] {
				if ev.Admitted != ev.Epoch || ev.Completed != -ev.Epoch {
					t.Fatalf("torn event: seq=%d epoch=%d admitted=%d completed=%d",
						ev.Seq, ev.Epoch, ev.Admitted, ev.Completed)
				}
				if seen[ev.Seq] {
					t.Fatalf("duplicate seq %d", ev.Seq)
				}
				seen[ev.Seq] = true
				received++
			}
		}
	}
	total := uint64(producers * perProd)
	if b.Seq() != total {
		t.Fatalf("published %d, want %d", b.Seq(), total)
	}
	if received+r.Dropped() != total {
		t.Fatalf("received(%d) + dropped(%d) != published(%d)", received, r.Dropped(), total)
	}
	if received == 0 {
		t.Fatalf("reader received nothing")
	}
}

func TestLabelTable(t *testing.T) {
	b := NewBus(8)
	i1 := b.Label("fleetscale")
	i2 := b.Label("obsplane")
	if i1 == 0 || i2 == 0 || i1 == i2 {
		t.Fatalf("label indices: %d, %d", i1, i2)
	}
	if b.Label("fleetscale") != i1 {
		t.Fatalf("re-interning changed the index")
	}
	if got := b.LabelName(i2); got != "obsplane" {
		t.Fatalf("LabelName(%d) = %q", i2, got)
	}
	if b.LabelName(0) != "" || b.LabelName(999) != "" || b.LabelName(-3) != "" {
		t.Fatalf("out-of-range labels must resolve to empty")
	}
}

func TestLabelTableConcurrent(t *testing.T) {
	b := NewBus(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			names := []string{"a", "b", "c", "d"}
			for i := 0; i < 500; i++ {
				n := names[i%len(names)]
				idx := b.Label(n)
				if got := b.LabelName(idx); got != n {
					t.Errorf("LabelName(Label(%q)) = %q", n, got)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestWireEventJSON(t *testing.T) {
	b := NewBus(8)
	lbl := b.Label("fleetscale")
	ev := Event{Kind: KindEpoch, Label: lbl, At: 60e9, Epoch: 1, Admitted: 10, Completed: 4, Running: 6}
	b.Publish(ev)
	r := b.NewReader(true)
	buf := make([]Event, 1)
	if r.Poll(buf) != 1 {
		t.Fatalf("no event")
	}
	raw, err := json.Marshal(b.Wire(buf[0]))
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if m["kind"] != "epoch" || m["label"] != "fleetscale" || m["admitted"] != float64(10) {
		t.Fatalf("wire JSON = %s", raw)
	}
	if _, ok := m["lost"]; ok {
		t.Fatalf("zero-valued field not elided: %s", raw)
	}
}

func TestMirrorLastWins(t *testing.T) {
	m := &Mirror{}
	if m.Load() != nil || m.Published() != 0 {
		t.Fatalf("empty mirror must load nil")
	}
	m.Publish(func(add func(Family, string, float64)) {
		add(FamTelemetry, "z.series", 1)
		add(FamMetric, "b.metric", 2)
		add(FamMetric, "a.metric", 3)
	})
	first := m.Load()
	if len(first) != 3 {
		t.Fatalf("len = %d", len(first))
	}
	// Sorted by (family, name).
	if first[0].Name != "a.metric" || first[1].Name != "b.metric" || first[2].Name != "z.series" {
		t.Fatalf("order: %+v", first)
	}
	if first[2].Fam != FamTelemetry {
		t.Fatalf("family order: %+v", first)
	}
	m.Publish(func(add func(Family, string, float64)) {
		add(FamMetric, "a.metric", 99)
	})
	if got := m.Load(); len(got) != 1 || got[0].Value != 99 {
		t.Fatalf("second publish not visible: %+v", got)
	}
	// The first snapshot handed out must be immutable.
	if first[0].Value != 3 {
		t.Fatalf("earlier snapshot mutated: %+v", first)
	}
	if m.Published() != 2 {
		t.Fatalf("published = %d", m.Published())
	}
}

// TestMirrorConcurrentScrape publishes snapshots while readers load them;
// under -race this proves the handoff is clean, and each loaded snapshot
// must be internally consistent (all values from the same publish).
func TestMirrorConcurrentScrape(t *testing.T) {
	m := &Mirror{}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := m.Load()
				if len(s) == 0 {
					continue
				}
				want := s[0].Value
				for _, sm := range s {
					if sm.Value != want {
						t.Errorf("mixed snapshot: %+v", s)
						return
					}
				}
			}
		}()
	}
	for i := 0; i < 2000; i++ {
		v := float64(i)
		m.Publish(func(add func(Family, string, float64)) {
			add(FamMetric, "a", v)
			add(FamMetric, "b", v)
			add(FamSelf, "c", v)
		})
	}
	close(stop)
	wg.Wait()
}

func TestNilPublisherSafe(t *testing.T) {
	var p *Publisher
	p.Publish(Event{Kind: KindEpoch})
	p.PublishMirror(func(add func(Family, string, float64)) { add(FamMetric, "x", 1) })
	p.MarkDone()
	if p.Label("x") != 0 {
		t.Fatalf("nil publisher Label != 0")
	}
	var b *Bus
	if b.Seq() != 0 || b.Done() || b.Label("x") != 0 || b.LabelName(1) != "" {
		t.Fatalf("nil bus accessors not safe")
	}
	b.MarkDone()
	var m *Mirror
	if m.Load() != nil || m.Published() != 0 {
		t.Fatalf("nil mirror accessors not safe")
	}
	m.Publish(func(add func(Family, string, float64)) {})
}

func TestMarkDone(t *testing.T) {
	p := NewPublisher(8)
	if p.Bus.Done() {
		t.Fatalf("fresh bus marked done")
	}
	p.MarkDone()
	if !p.Bus.Done() {
		t.Fatalf("MarkDone did not stick")
	}
}

func TestPublishAllocFree(t *testing.T) {
	b := NewBus(64)
	ev := Event{Kind: KindEpoch, Epoch: 1}
	allocs := testing.AllocsPerRun(1000, func() {
		b.Publish(ev)
	})
	if allocs != 0 {
		t.Fatalf("Publish allocates %.1f per call, want 0", allocs)
	}
}
