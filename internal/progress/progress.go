// Package progress is the wire between a running simulation and the live
// observability plane (internal/obshttp): a bounded, drop-counting progress
// bus plus an atomically-published metrics mirror.
//
// The design constraint is that observation must be inert by construction.
// Simulation results are determinism-gated byte for byte, so a publisher may
// never block on a consumer, never take a lock a consumer holds, and never
// read anything back from the observation side. Publishers therefore write
// fixed-size snapshots at their existing safepoints (epoch boundaries, trial
// completion) through lock-free/atomic handoffs:
//
//   - Bus is a power-of-two ring of plain-old-data Event slots guarded by
//     per-slot seqlock versions. Publish claims a sequence number with one
//     atomic add, writes the slot, and flips the version — it never blocks
//     and never allocates. Readers chase the ring with a private cursor; a
//     reader that falls a full ring behind skips forward and counts exactly
//     how many events it lost. Slow consumers lose history, never slow the
//     simulation.
//   - Mirror hands whole metric snapshots to scrapers through one atomic
//     pointer swap. Scrapers always see a complete, internally-consistent
//     snapshot; publishers never wait for them.
//
// Event is strictly POD — no pointers, no strings — so a torn seqlock read
// is harmless garbage that validation discards, rather than a corrupt
// pointer the garbage collector could trip over. Run/experiment names travel
// as indices into the bus's append-only label table.
package progress

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Kind classifies a progress event.
type Kind uint8

const (
	// KindRunStart opens a run: Total carries the planned unit count
	// (harness trials, macro arrivals).
	KindRunStart Kind = iota
	// KindTrialStart marks one harness (experiment, replicate) trial
	// starting; Label is the experiment ID.
	KindTrialStart
	// KindTrialDone marks a trial settling; Retries carries the attempts
	// consumed, Detail a truncated error for failures, and Done/Failed the
	// run-level tallies after this trial.
	KindTrialDone
	// KindEpoch is one macro-fleet integration step: the cumulative
	// conservation ledger (Admitted..Pending), utilization and imbalance.
	KindEpoch
	// KindFault is one applied host fault event; Host is the victim and
	// Detail names the fault kind.
	KindFault
	// KindRecovery is one successful crash-victim restart; Host is the new
	// placement.
	KindRecovery
	// KindRunDone closes a run with the final ledger.
	KindRunDone
)

var kindNames = [...]string{
	KindRunStart:   "run_start",
	KindTrialStart: "trial_start",
	KindTrialDone:  "trial_done",
	KindEpoch:      "epoch",
	KindFault:      "fault",
	KindRecovery:   "recovery",
	KindRunDone:    "run_done",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one fixed-size progress record. It is deliberately plain old
// data: the bus hands slots between goroutines under a seqlock, where a torn
// read of a pointer would be unsafe but a torn read of numbers is merely
// discarded. Label and Detail index the bus label table (0 = empty).
type Event struct {
	Seq       uint64
	Kind      Kind
	Label     int32
	Detail    int32
	Replicate int32
	// At is virtual time in nanoseconds.
	At    int64
	Epoch int64
	// Conservation ledger (cumulative): Admitted == Completed + Lost +
	// Rejected + Running + Pending at every safepoint.
	Admitted  int64
	Completed int64
	Lost      int64
	Rejected  int64
	Running   int64
	Pending   int64
	// Harness trial accounting.
	Done    int64
	Total   int64
	Failed  int64
	Retries int64
	// Fault plane.
	Host int64
	// Fleet gauges.
	UtilMean float64
	DI       float64
}

// WireEvent is the JSON form streamed over /runs/{id}/events: Label/Detail
// resolved through the label table, zero-valued fields elided.
type WireEvent struct {
	Seq       uint64  `json:"seq"`
	Kind      string  `json:"kind"`
	Label     string  `json:"label,omitempty"`
	Detail    string  `json:"detail,omitempty"`
	Replicate int32   `json:"replicate,omitempty"`
	AtNS      int64   `json:"at_ns"`
	Epoch     int64   `json:"epoch,omitempty"`
	Admitted  int64   `json:"admitted,omitempty"`
	Completed int64   `json:"completed,omitempty"`
	Lost      int64   `json:"lost,omitempty"`
	Rejected  int64   `json:"rejected,omitempty"`
	Running   int64   `json:"running,omitempty"`
	Pending   int64   `json:"pending,omitempty"`
	Done      int64   `json:"done,omitempty"`
	Total     int64   `json:"total,omitempty"`
	Failed    int64   `json:"failed,omitempty"`
	Retries   int64   `json:"retries,omitempty"`
	Host      int64   `json:"host,omitempty"`
	UtilMean  float64 `json:"util_mean,omitempty"`
	DI        float64 `json:"di,omitempty"`
}

// slot is one ring cell. ver is the seqlock: 0 empty, 2s+1 while the writer
// of sequence s is copying, 2s+2 once sequence s is published.
type slot struct {
	ver atomic.Uint64
	ev  Event
}

// Bus is the bounded multi-producer broadcast ring. Publishing is lock-free
// (one atomic add to claim a sequence, one store to publish) and readers are
// pull-only, so nothing a consumer does can ever delay a publisher.
type Bus struct {
	slots []slot
	mask  uint64
	next  atomic.Uint64
	done  atomic.Bool

	labelMu  sync.Mutex
	labelIdx map[string]int32
	labels   atomic.Pointer[[]string]
}

// DefaultBusSize is the ring capacity when NewBus is given <= 0.
const DefaultBusSize = 4096

// NewBus returns a bus with capacity rounded up to a power of two (minimum
// 8).
func NewBus(size int) *Bus {
	if size <= 0 {
		size = DefaultBusSize
	}
	n := 8
	for n < size {
		n <<= 1
	}
	b := &Bus{slots: make([]slot, n), mask: uint64(n - 1), labelIdx: make(map[string]int32)}
	empty := []string{""}
	b.labels.Store(&empty)
	return b
}

// Cap returns the ring capacity.
func (b *Bus) Cap() int { return len(b.slots) }

// Seq returns how many events have been published (claimed) so far.
func (b *Bus) Seq() uint64 {
	if b == nil {
		return 0
	}
	return b.next.Load()
}

// MarkDone flags the run as finished so streaming consumers can drain and
// stop. Publishing after MarkDone is allowed but pointless.
func (b *Bus) MarkDone() {
	if b != nil {
		b.done.Store(true)
	}
}

// Done reports whether the run has been marked finished.
func (b *Bus) Done() bool { return b != nil && b.done.Load() }

// Label interns name in the append-only label table and returns its index.
// Index 0 is always the empty string. Safe for concurrent use; intended for
// setup paths and rare events (trial errors), not per-event hot paths —
// publishers should keep the returned index.
func (b *Bus) Label(name string) int32 {
	if b == nil || name == "" {
		return 0
	}
	b.labelMu.Lock()
	defer b.labelMu.Unlock()
	if i, ok := b.labelIdx[name]; ok {
		return i
	}
	old := *b.labels.Load()
	next := make([]string, len(old)+1)
	copy(next, old)
	next[len(old)] = name
	i := int32(len(old))
	b.labelIdx[name] = i
	b.labels.Store(&next)
	return i
}

// LabelName resolves a label index; out-of-range indices resolve to "".
// Lock-free: reads an immutable snapshot of the table.
func (b *Bus) LabelName(i int32) string {
	if b == nil || i <= 0 {
		return ""
	}
	tbl := *b.labels.Load()
	if int(i) >= len(tbl) {
		return ""
	}
	return tbl[i]
}

// Publish writes one event to the ring. It assigns ev.Seq, never blocks on
// consumers, and performs no allocation. Multiple publishers may call it
// concurrently; the only wait is a Gosched spin in the pathological case of
// a publisher lapping another publisher by a full ring, which bounded
// publish rates never reach.
func (b *Bus) Publish(ev Event) uint64 {
	seq := b.next.Add(1) - 1
	s := &b.slots[seq&b.mask]
	prev := uint64(0)
	if seq >= uint64(len(b.slots)) {
		prev = 2*(seq-uint64(len(b.slots))) + 2
	}
	for !s.ver.CompareAndSwap(prev, 2*seq+1) {
		runtime.Gosched()
	}
	ev.Seq = seq
	s.ev = ev
	s.ver.Store(2*seq + 2)
	return seq
}

// Wire resolves ev's label indices into the streamed JSON form.
func (b *Bus) Wire(ev Event) WireEvent {
	return WireEvent{
		Seq:       ev.Seq,
		Kind:      ev.Kind.String(),
		Label:     b.LabelName(ev.Label),
		Detail:    b.LabelName(ev.Detail),
		Replicate: ev.Replicate,
		AtNS:      ev.At,
		Epoch:     ev.Epoch,
		Admitted:  ev.Admitted,
		Completed: ev.Completed,
		Lost:      ev.Lost,
		Rejected:  ev.Rejected,
		Running:   ev.Running,
		Pending:   ev.Pending,
		Done:      ev.Done,
		Total:     ev.Total,
		Failed:    ev.Failed,
		Retries:   ev.Retries,
		Host:      ev.Host,
		UtilMean:  ev.UtilMean,
		DI:        ev.DI,
	}
}

// Reader is one consumer's private cursor into the bus. Not safe for
// concurrent use by multiple goroutines; create one Reader per consumer.
type Reader struct {
	b       *Bus
	cursor  uint64
	dropped uint64
}

// NewReader returns a reader positioned at sequence 0 (fromStart) or at the
// current head, seeing only future events. A fromStart reader attaching
// after the ring has already lapped starts at the oldest retained event
// with the unretrievable prefix counted in Dropped(), so received + dropped
// always equals the number published.
func (b *Bus) NewReader(fromStart bool) *Reader {
	r := &Reader{b: b}
	head := b.next.Load()
	if fromStart {
		if head > uint64(len(b.slots)) {
			r.cursor = head - uint64(len(b.slots))
			r.dropped = r.cursor
		}
	} else {
		r.cursor = head
	}
	return r
}

// Dropped returns how many events this reader has lost to ring overwrite.
func (r *Reader) Dropped() uint64 { return r.dropped }

// Drained reports whether the reader has consumed everything published so
// far.
func (r *Reader) Drained() bool { return r.cursor >= r.b.next.Load() }

// Poll copies available events into buf and returns how many were written.
// Never blocks: it returns 0 when the bus is empty or the next slot is still
// being written. Events lost to overwrite are skipped and added to
// Dropped().
func (r *Reader) Poll(buf []Event) int {
	n := 0
	for n < len(buf) {
		head := r.b.next.Load()
		if r.cursor >= head {
			break
		}
		if size := uint64(len(r.b.slots)); head > size {
			if oldest := head - size; r.cursor < oldest {
				r.dropped += oldest - r.cursor
				r.cursor = oldest
			}
		}
		s := &r.b.slots[r.cursor&r.b.mask]
		want := 2*r.cursor + 2
		v1 := s.ver.Load()
		if v1 < want {
			// Claimed but not yet published: come back later.
			break
		}
		if v1 > want {
			// Overwritten between the head check and here.
			r.dropped++
			r.cursor++
			continue
		}
		ev := s.ev
		if s.ver.Load() != v1 {
			// Torn read: the slot was reclaimed mid-copy. Re-examine it.
			continue
		}
		buf[n] = ev
		n++
		r.cursor++
	}
	return n
}
