package progress

import (
	"sort"
	"sync/atomic"
)

// Family buckets mirrored samples into exposition families. The HTTP layer
// maps each family to one Prometheus metric family with the simulator's
// dotted name carried as a label value.
type Family uint8

const (
	// FamMetric is a metrics.Registry counter/gauge/histogram key.
	FamMetric Family = iota
	// FamTelemetry is the last sample of a telemetry flight-recorder
	// series.
	FamTelemetry
	// FamSelf is simulator self-census: wheel stats, vtrace drop counts,
	// recorder occupancy.
	FamSelf
	numFamilies
)

// Sample is one mirrored (family, name, value) triple.
type Sample struct {
	Fam   Family
	Name  string
	Value float64
}

// Mirror hands complete metric snapshots from the simulation goroutine to
// HTTP scrapers through a single atomic pointer swap. The publisher builds a
// fresh sorted slice at each safepoint and stores it; scrapers only ever
// Load, so a scrape can never observe a half-written snapshot and can never
// slow the publisher down.
type Mirror struct {
	cur       atomic.Pointer[[]Sample]
	published atomic.Uint64
	// scratch is reused across Publish calls by the single publisher; it is
	// never the slice scrapers see.
	scratch []Sample
}

// Publish rebuilds the mirrored snapshot. fill is called with an add
// function; every add(fam, name, value) contributes one sample. The
// finished set is sorted by (family, name) for stable exposition order and
// swapped in atomically. Publish must be called from one goroutine at a
// time (the simulation safepoint), which every caller in this repo
// satisfies.
func (m *Mirror) Publish(fill func(add func(fam Family, name string, v float64))) {
	if m == nil {
		return
	}
	buf := m.scratch[:0]
	fill(func(fam Family, name string, v float64) {
		buf = append(buf, Sample{Fam: fam, Name: name, Value: v})
	})
	sort.Slice(buf, func(i, j int) bool {
		if buf[i].Fam != buf[j].Fam {
			return buf[i].Fam < buf[j].Fam
		}
		return buf[i].Name < buf[j].Name
	})
	out := make([]Sample, len(buf))
	copy(out, buf)
	m.scratch = buf
	m.cur.Store(&out)
	m.published.Add(1)
}

// Load returns the current snapshot, or nil if nothing has been published.
// The returned slice is immutable; callers must not modify it.
func (m *Mirror) Load() []Sample {
	if m == nil {
		return nil
	}
	p := m.cur.Load()
	if p == nil {
		return nil
	}
	return *p
}

// Published returns how many snapshots have been swapped in.
func (m *Mirror) Published() uint64 {
	if m == nil {
		return 0
	}
	return m.published.Load()
}

// Publisher bundles the two handoff surfaces a simulation publishes into.
// All methods are nil-safe so call sites stay unconditional: a detached run
// simply passes a nil Publisher and every publish is a no-op.
type Publisher struct {
	Bus    *Bus
	Mirror *Mirror
}

// NewPublisher returns a publisher with a fresh bus (capacity busSize,
// DefaultBusSize if <= 0) and mirror.
func NewPublisher(busSize int) *Publisher {
	return &Publisher{Bus: NewBus(busSize), Mirror: &Mirror{}}
}

// Publish forwards to the bus; no-op on a nil publisher or nil bus.
func (p *Publisher) Publish(ev Event) {
	if p != nil && p.Bus != nil {
		p.Bus.Publish(ev)
	}
}

// Label forwards to the bus label table; 0 on a nil publisher.
func (p *Publisher) Label(name string) int32 {
	if p == nil || p.Bus == nil {
		return 0
	}
	return p.Bus.Label(name)
}

// PublishMirror forwards to the mirror; no-op on a nil publisher.
func (p *Publisher) PublishMirror(fill func(add func(fam Family, name string, v float64))) {
	if p != nil {
		p.Mirror.Publish(fill)
	}
}

// MarkDone flags the bus as finished; no-op on a nil publisher.
func (p *Publisher) MarkDone() {
	if p != nil && p.Bus != nil {
		p.Bus.MarkDone()
	}
}
