package guest

import (
	"testing"

	"vsched/internal/host"
	"vsched/internal/sim"
)

func TestAccessorsAndStates(t *testing.T) {
	eng, h, vm := testSetup(t, 2, 2, 2, 8)
	if vm.Name() != "vm" || vm.NumVCPUs() != 8 || vm.Engine() != eng || vm.Host() != h {
		t.Fatal("basic accessors broken")
	}
	if vm.Params().TickPeriod != sim.Millisecond {
		t.Fatal("params accessor")
	}
	if vm.RootGroup().Name() != "root" {
		t.Fatal("root group name")
	}
	if !vm.RootGroup().Allowed(3) {
		t.Fatal("root group must allow all")
	}
	m := vm.RootGroup().AllowedMask()
	m[0] = false
	if !vm.RootGroup().Allowed(0) {
		t.Fatal("AllowedMask must be a copy")
	}
	if vm.Topology().SameSocket(0, 7) != true {
		t.Fatal("default belief is one socket")
	}
	for s, want := range map[TaskState]string{
		TaskSleeping: "sleeping", TaskRunnable: "runnable",
		TaskRunning: "running", TaskExited: "exited", TaskState(9): "invalid",
	} {
		if s.String() != want {
			t.Fatalf("state string %v", s)
		}
	}
	tk := vm.Spawn("w", func(sim.Time) Segment { return ComputeForever() },
		WithWeight(2048), WithLatencySensitive())
	eng.RunFor(5 * sim.Millisecond)
	if !tk.LatencySensitive || tk.ID() == 0 || tk.Name() != "w" {
		t.Fatal("task options lost")
	}
	if vm.TotalCycles() <= 0 {
		t.Fatal("cycles should accumulate")
	}
	if tk.Wakeups() == 0 || tk.TotalRun() == 0 {
		t.Fatal("task accounting missing")
	}
}

func TestSyncAccessors(t *testing.T) {
	eng, _, vm := testSetup(t, 1, 2, 1, 2)
	c := &Cond{}
	sem := NewSemaphore(2)
	b := NewBarrier(2)
	if b.Parties() != 2 {
		t.Fatal("barrier parties")
	}
	step := 0
	vm.Spawn("waiter", func(sim.Time) Segment {
		step++
		if step == 1 {
			return Wait(c)
		}
		return Exit()
	})
	eng.RunFor(2 * sim.Millisecond)
	if c.Waiters() != 1 {
		t.Fatalf("cond waiters=%d", c.Waiters())
	}
	vm.BroadcastCond(c)
	eng.RunFor(2 * sim.Millisecond)
	if c.Waiters() != 0 {
		t.Fatal("broadcast did not drain waiters")
	}
	if sem.Waiters() != 0 || sem.Count() != 2 {
		t.Fatal("sem accessors")
	}
	vm.Post(sem)
	if sem.Count() != 3 {
		t.Fatal("Post should increment with no waiters")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewBarrier(0) must panic")
		}
	}()
	NewBarrier(0)
}

func TestBalanceAcrossSockets(t *testing.T) {
	// Two believed sockets; pile tasks on socket 0 and verify cross-domain
	// balancing pushes some to socket 1.
	eng, _, vm := testSetup(t, 2, 2, 1, 4)
	b := DefaultBelief(4)
	b.SocketOf = []int{0, 0, 1, 1}
	vm.SetTopology(b)
	var tasks []*Task
	for i := 0; i < 6; i++ {
		tasks = append(tasks, vm.Spawn("hog",
			func(sim.Time) Segment { return ComputeForever() }, StartOn(i%2)))
	}
	eng.RunFor(300 * sim.Millisecond)
	other := 0
	for _, tk := range tasks {
		if tk.CPU().ID() >= 2 {
			other++
		}
	}
	if other == 0 {
		t.Fatal("cross-socket balancing never moved anything")
	}
	if vm.socketLoad(0) < vm.socketLoad(2) {
		t.Log("socket loads inverted (acceptable transient)")
	}
}

func TestSMTBalanceUnstacksHeavyPairs(t *testing.T) {
	eng, _, vm := testSetup(t, 1, 2, 2, 4)
	belief := DefaultBelief(4)
	belief.CoreOf = []int{0, 0, 1, 1} // matches the physical SMT pairs
	vm.SetTopology(belief)
	// Two hogs forced onto one core's two threads.
	a := vm.Spawn("a", func(sim.Time) Segment { return ComputeForever() }, StartOn(0))
	bb := vm.Spawn("b", func(sim.Time) Segment { return ComputeForever() }, StartOn(1))
	eng.RunFor(500 * sim.Millisecond)
	coreA := vm.topo.CoreOf[a.CPU().ID()]
	coreB := vm.topo.CoreOf[bb.CPU().ID()]
	if coreA == coreB {
		t.Fatalf("SMT balance should separate two hogs, both on core %d", coreA)
	}
}

func TestKickVCPUWakesHalted(t *testing.T) {
	eng, _, vm := testSetup(t, 1, 2, 1, 2)
	v1 := vm.VCPU(1)
	eng.RunFor(5 * sim.Millisecond)
	if v1.Entity().State() != host.Blocked {
		t.Fatalf("idle vCPU should be halted, state=%v", v1.Entity().State())
	}
	ipis := vm.Stats().IPIs
	vm.KickVCPU(v1)
	if vm.Stats().IPIs != ipis+1 {
		t.Fatal("kick must count an IPI")
	}
	eng.RunFor(1 * sim.Millisecond)
	// With nothing to run it halts again.
	if v1.Entity().State() != host.Blocked {
		t.Fatalf("kicked idle vCPU should halt again, state=%v", v1.Entity().State())
	}
}

func TestYieldRotatesEqualTasks(t *testing.T) {
	eng, _, vm := testSetup(t, 1, 1, 1, 1)
	ranB := false
	stepA := 0
	vm.Spawn("a", func(sim.Time) Segment {
		stepA++
		if stepA%2 == 1 {
			return Compute(1e5)
		}
		return Yield()
	})
	vm.Spawn("b", func(sim.Time) Segment {
		ranB = true
		return Compute(1e5)
	})
	eng.RunFor(5 * sim.Millisecond)
	if !ranB {
		t.Fatal("yield never let the second task run")
	}
}

func TestDeliverIRQImmediateWhenActive(t *testing.T) {
	eng, _, vm := testSetup(t, 1, 1, 1, 1)
	vm.Spawn("busy", func(sim.Time) Segment { return ComputeForever() })
	eng.RunFor(2 * sim.Millisecond)
	fired := false
	vm.DeliverIRQ(vm.VCPU(0), func() { fired = true })
	if !fired {
		t.Fatal("IRQ to an active vCPU must run synchronously")
	}
}

func TestCommDebtChargedOnCrossSocketWake(t *testing.T) {
	eng, _, vm := testSetup(t, 2, 2, 1, 4)
	b := DefaultBelief(4)
	b.SocketOf = []int{0, 0, 1, 1}
	vm.SetTopology(b)
	// Waker pinned on socket 0, wakee pinned on socket 1: every wake pays
	// the cross-socket penalty, slowing the wakee's compute.
	cv := &Cond{}
	step := 0
	vm.Spawn("waker", func(sim.Time) Segment {
		step++
		if step%2 == 1 {
			return Compute(2e5)
		}
		return Signal(cv)
	}, WithAffinity(0))
	wstep := 0
	wakee := vm.Spawn("wakee", func(sim.Time) Segment {
		wstep++
		if wstep%2 == 1 {
			return Wait(cv)
		}
		return Compute(1e5)
	}, WithAffinity(3))
	eng.RunFor(200 * sim.Millisecond)
	// Each wake adds CommPenaltyCross cycles: the wakee's measured on-CPU
	// time per iteration must exceed the nominal compute alone.
	perIter := float64(wakee.TotalRun()) / float64(wstep/2)
	nominal := 1e5 / 1.0 // cycles at speed 1
	if perIter < nominal*1.1 {
		t.Fatalf("cross-socket wake should add transfer cost: %.0f ns/iter vs %.0f nominal", perIter, nominal)
	}
}

func TestSpawnPanicsOnNilBehavior(t *testing.T) {
	_, _, vm := testSetup(t, 1, 1, 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("nil behavior must panic")
		}
	}()
	vm.Spawn("bad", nil)
}

func TestSetTopologyValidation(t *testing.T) {
	_, _, vm := testSetup(t, 1, 2, 1, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched belief must panic")
		}
	}()
	vm.SetTopology(DefaultBelief(5))
}

func TestSetGroupMaskValidation(t *testing.T) {
	_, _, vm := testSetup(t, 1, 2, 1, 2)
	g := vm.NewGroup("g")
	defer func() {
		if recover() == nil {
			t.Fatal("empty mask must panic")
		}
	}()
	vm.SetGroupMask(g, []bool{false, false})
}

func TestLLCPressureSlowsColocatedHeavyTasks(t *testing.T) {
	run := func(footprint float64) sim.Duration {
		eng, _, vm := testSetup(t, 1, 4, 1, 4)
		done := 0
		var finish sim.Time
		for i := 0; i < 4; i++ {
			step := 0
			tk := vm.Spawn("mem", func(sim.Time) Segment {
				step++
				if step > 50 {
					return Exit()
				}
				return Compute(1e6)
			}, WithFootprint(footprint), StartOn(i))
			tk.OnExit = func(now sim.Time) {
				done++
				if done == 4 {
					finish = now
				}
			}
		}
		eng.RunFor(5 * sim.Second)
		if done != 4 {
			t.Fatal("workload did not finish")
		}
		return sim.Duration(finish)
	}
	small := run(1)  // 4 MB total: fits the 16 MB LLC
	large := run(12) // 48 MB total: 3x over -> sqrt(1/3) speed
	if float64(large) < float64(small)*1.4 {
		t.Fatalf("LLC pressure should slow the run: %v vs %v", small, large)
	}
}
