package guest

import (
	"fmt"
	"math"

	"vsched/internal/cachemodel"
	"vsched/internal/host"
	"vsched/internal/metrics"
	"vsched/internal/sim"
	"vsched/internal/vtrace"
)

// Params are the guest scheduler tunables (Linux-like defaults).
type Params struct {
	// Policy selects CFS (default) or EEVDF task picking.
	Policy            SchedPolicy
	TickPeriod        sim.Duration // scheduler tick (CONFIG_HZ=1000)
	MinGranularity    sim.Duration // minimum slice before tick preemption
	WakeupGranularity sim.Duration // wakeup preemption threshold
	BalancePeriod     sim.Duration // periodic load-balance interval
	CacheHot          sim.Duration // don't migrate tasks that ran this recently
	// StealJumpThreshold filters noise when vact's tick instrumentation
	// detects preemptions from steal-time increases.
	StealJumpThreshold sim.Duration
	// Communication cost (cycles) charged to a wakee whose waker sits on a
	// core in the same socket / a different socket. Models cache-line and
	// working-set transfer; zero within a core.
	CommPenaltySocket float64
	CommPenaltyCross  float64
	// LLCSizeMB is the per-socket last-level cache size; when the summed
	// footprints of tasks installed in a socket exceed it, everyone there
	// runs slower (capacity contention).
	LLCSizeMB float64
}

// DefaultParams returns Linux-like guest scheduler parameters.
func DefaultParams() Params {
	return Params{
		TickPeriod:         1 * sim.Millisecond,
		MinGranularity:     750 * sim.Microsecond,
		WakeupGranularity:  1 * sim.Millisecond,
		BalancePeriod:      8 * sim.Millisecond,
		CacheHot:           500 * sim.Microsecond,
		StealJumpThreshold: 200 * sim.Microsecond,
		CommPenaltySocket:  3000,
		CommPenaltyCross:   24000,
		LLCSizeMB:          16,
	}
}

// Hooks are the vSched attachment points — the simulation analogue of the
// paper's BPF hooks on CFS's CPU-selection path and tick handler.
type Hooks struct {
	// SelectCPU, if set, is consulted first on task wakeup. Returning nil
	// falls back to the stock CFS heuristic.
	SelectCPU func(t *Task, prev *VCPU) *VCPU
	// Tick, if set, runs at the end of every scheduler tick on the ticking
	// vCPU (ivh's trigger point).
	Tick func(v *VCPU)
}

// Stats aggregates guest scheduler event counters.
type Stats struct {
	Wakeups          uint64
	IPIs             uint64 // kicks/resched interrupts to other vCPUs
	CrossIPIs        uint64 // IPIs whose sender and target sit on different sockets
	Migrations       uint64 // task migrations of any kind
	ActiveMigrations uint64
	ContextSwitches  uint64
	Ticks            uint64
}

// guestCounters caches the registry instruments backing Stats, so the hot
// path is a pointer increment with no map lookups.
type guestCounters struct {
	wakeups, ipis, crossIPIs     *metrics.Counter
	migrations, activeMigrations *metrics.Counter
	contextSwitches, ticks       *metrics.Counter
}

// VM is a guest virtual machine: vCPUs pinned on host threads plus the guest
// scheduler.
type VM struct {
	eng    *sim.Engine
	h      *host.Host
	name   string
	vcpus  []*VCPU
	params Params
	topo   Belief
	hooks  Hooks
	root   *CGroup
	reg    *metrics.Registry
	ctr    guestCounters
	tr     *vtrace.Tracer

	taskSeq      int
	lastBalance  sim.Time
	balanceSlack sim.Duration
	started      bool

	// llcLoad[s] is the summed footprint (MB) of tasks installed on vCPUs
	// hosted in physical socket s.
	llcLoad []float64
}

// NewVM creates a VM with one vCPU per given host thread (vCPU i pinned on
// threads[i], the virsh-pin deployment model the paper's experiments use).
func NewVM(h *host.Host, name string, threads []*host.Thread, params Params) *VM {
	if len(threads) == 0 {
		panic("guest: VM needs at least one vCPU")
	}
	vm := &VM{
		eng:     h.Engine(),
		h:       h,
		name:    name,
		params:  params,
		topo:    DefaultBelief(len(threads)),
		llcLoad: make([]float64, h.Config().Sockets),
	}
	vm.reg = metrics.NewRegistry()
	vm.ctr = guestCounters{
		wakeups:          vm.reg.Counter("guest.wakeups"),
		ipis:             vm.reg.Counter("guest.ipis"),
		crossIPIs:        vm.reg.Counter("guest.ipis_cross"),
		migrations:       vm.reg.Counter("guest.migrations"),
		activeMigrations: vm.reg.Counter("guest.migrations_active"),
		contextSwitches:  vm.reg.Counter("guest.context_switches"),
		ticks:            vm.reg.Counter("guest.ticks"),
	}
	vm.root = &CGroup{name: "root", allowed: fullMask(len(threads))}
	for i, th := range threads {
		v := &VCPU{vm: vm, id: i, cfsCapacity: 1024}
		v.ent = h.NewEntity(fmt.Sprintf("%s/vcpu%d", name, i), th, host.DefaultWeight, v)
		vm.vcpus = append(vm.vcpus, v)
	}
	return vm
}

// Name returns the VM name.
func (vm *VM) Name() string { return vm.name }

// Engine returns the simulation engine.
func (vm *VM) Engine() *sim.Engine { return vm.eng }

// Host returns the physical host.
func (vm *VM) Host() *host.Host { return vm.h }

// Params returns the guest scheduler parameters.
func (vm *VM) Params() Params { return vm.params }

// NumVCPUs returns the vCPU count.
func (vm *VM) NumVCPUs() int { return len(vm.vcpus) }

// VCPU returns vCPU i.
func (vm *VM) VCPU(i int) *VCPU { return vm.vcpus[i] }

// VCPUs returns all vCPUs.
func (vm *VM) VCPUs() []*VCPU { return vm.vcpus }

// Stats returns a snapshot of scheduler counters.
func (vm *VM) Stats() Stats {
	return Stats{
		Wakeups:          vm.ctr.wakeups.Value(),
		IPIs:             vm.ctr.ipis.Value(),
		CrossIPIs:        vm.ctr.crossIPIs.Value(),
		Migrations:       vm.ctr.migrations.Value(),
		ActiveMigrations: vm.ctr.activeMigrations.Value(),
		ContextSwitches:  vm.ctr.contextSwitches.Value(),
		Ticks:            vm.ctr.ticks.Value(),
	}
}

// Metrics returns the VM's metrics registry. The guest scheduler registers
// its counters under "guest."; vSched adds its own under "vsched." when
// attached to this VM.
func (vm *VM) Metrics() *metrics.Registry { return vm.reg }

// SetTracer attaches a structured event tracer (nil to disable, the
// default). Call before Start.
func (vm *VM) SetTracer(tr *vtrace.Tracer) { vm.tr = tr }

// Tracer returns the attached tracer (nil when tracing is off).
func (vm *VM) Tracer() *vtrace.Tracer { return vm.tr }

// TotalCycles returns the cycles executed by the whole VM (all vCPUs, all
// tasks including probers) — the Fig. 20 cost metric.
func (vm *VM) TotalCycles() float64 {
	var c float64
	for _, v := range vm.vcpus {
		c += v.cyclesExec
	}
	return c
}

// RootGroup returns the default cgroup all tasks start in.
func (vm *VM) RootGroup() *CGroup { return vm.root }

// InstallHooks attaches vSched's scheduling hooks.
func (vm *VM) InstallHooks(h Hooks) { vm.hooks = h }

// SetTopology publishes a new believed topology and rebuilds scheduling
// domains (the paper's rebuild_sched_domains path).
func (vm *VM) SetTopology(b Belief) {
	if len(b.CoreOf) != len(vm.vcpus) || len(b.SocketOf) != len(vm.vcpus) {
		panic("guest: belief size mismatch")
	}
	vm.topo = b
}

// Topology returns the currently believed topology.
func (vm *VM) Topology() Belief { return vm.topo }

// Start launches ticks and periodic load balancing. Idempotent.
func (vm *VM) Start() {
	if vm.started {
		return
	}
	vm.started = true
	for i, v := range vm.vcpus {
		// Stagger ticks slightly so the whole VM doesn't tick in lockstep.
		off := vm.params.TickPeriod + sim.Duration(i)*vm.params.TickPeriod/sim.Duration(len(vm.vcpus)+1)
		v.startTicking(off)
	}
}

// TaskOpt configures a spawned task.
type TaskOpt func(*Task)

// WithWeight sets the task's CFS weight (nice level).
func WithWeight(w int64) TaskOpt {
	return func(t *Task) { t.weight = w }
}

// WithIdlePolicy marks the task SCHED_IDLE (best-effort).
func WithIdlePolicy() TaskOpt {
	return func(t *Task) { t.idlePolicy = true; t.weight = WeightIdle }
}

// WithLatencySensitive marks the task latency-critical (user-space hint).
func WithLatencySensitive() TaskOpt {
	return func(t *Task) { t.LatencySensitive = true }
}

// WithGroup places the task in a cgroup.
func WithGroup(g *CGroup) TaskOpt {
	return func(t *Task) { t.group = g }
}

// WithAffinity pins the task to a single vCPU (per-task cpuset).
func WithAffinity(cpu int) TaskOpt {
	return func(t *Task) { t.affinity = cpu }
}

// StartOn places the task's first wakeup on a specific vCPU instead of
// running CPU selection.
func StartOn(cpu int) TaskOpt {
	return func(t *Task) { t.startOn = cpu }
}

// WithFootprint declares the task's cache working set in MB (drives LLC
// capacity contention).
func WithFootprint(mb float64) TaskOpt {
	return func(t *Task) { t.footprint = mb }
}

// Spawn creates a task and makes it runnable.
func (vm *VM) Spawn(name string, b Behavior, opts ...TaskOpt) *Task {
	if b == nil {
		panic("guest: nil behavior")
	}
	vm.taskSeq++
	t := &Task{
		vm:       vm,
		id:       vm.taskSeq,
		seq:      vm.taskSeq,
		name:     name,
		weight:   WeightNormal,
		behavior: b,
		state:    TaskSleeping,
		group:    vm.root,
		affinity: -1,
		startOn:  -1,
		lastPELT: vm.eng.Now(),
	}
	for _, o := range opts {
		o(t)
	}
	if t.group == nil {
		t.group = vm.root
	}
	// Fork placement: an explicit StartOn/affinity wins; otherwise behave
	// like find_idlest_cpu — spread new tasks over the least loaded believed
	// domain. This is what lets separately launched programs settle into
	// separate LLC domains when the topology is known.
	var first *VCPU
	switch {
	case t.startOn >= 0:
		first = vm.vcpus[t.startOn]
	case t.affinity >= 0:
		first = vm.vcpus[t.affinity]
	default:
		first = vm.selectCPUFork(t)
	}
	t.cpu = first
	vm.ctr.wakeups.Inc()
	t.wakeups++
	vm.tr.Emit(vm.eng.Now(), vtrace.KindTaskWakeup, t.name, int64(t.id), int64(first.id), -1)
	vm.enqueue(first, t, nil)
	return t
}

// --- wakeups and interrupt delivery ---

// wakeTask makes a sleeping task runnable: select a vCPU, enqueue, resolve
// preemption and kicks. waker is the vCPU on which the waking code runs
// (nil for external/timer wakeups delivered by the IRQ path).
func (vm *VM) wakeTask(t *Task, waker *VCPU) {
	vm.wakeTaskWide(t, waker, false)
}

// wakeTaskWide is wakeTask with Linux's wake_wide distinction: fan-out
// wakeups (barrier releases, broadcasts) must not pull every wakee into the
// waker's domain.
func (vm *VM) wakeTaskWide(t *Task, waker *VCPU, wide bool) {
	if t.state != TaskSleeping || t.exited {
		return
	}
	vm.ctr.wakeups.Inc()
	t.wakeups++
	affineWaker := waker
	if wide {
		affineWaker = nil
	}
	target := vm.selectCPU(t, t.cpu, affineWaker)
	// Communication cost: pulling the working set to the chosen CPU.
	if waker != nil && vm.params.CommPenaltyCross > 0 {
		rel := vm.h.Relation(waker.ent.Thread().ID(), target.ent.Thread().ID())
		switch rel {
		case cachemodel.Socket:
			t.commDebt += vm.params.CommPenaltySocket
		case cachemodel.Cross:
			t.commDebt += vm.params.CommPenaltyCross
		}
	}
	// The waker's current task, when there is one, is what the attribution
	// profiler's critical-path view chains through.
	wakerID := int64(-1)
	if waker != nil && waker.curr != nil {
		wakerID = int64(waker.curr.id)
	}
	vm.tr.Emit(vm.eng.Now(), vtrace.KindTaskWakeup, t.name, int64(t.id), int64(target.id), wakerID)
	vm.enqueue(target, t, waker)
}

// enqueue puts a runnable task on v's queue and handles kick/preempt.
func (vm *VM) enqueue(v *VCPU, t *Task, waker *VCPU) {
	now := vm.eng.Now()
	t.state = TaskRunnable
	t.cpu = v
	t.enqueuedAt = now
	// Wakeup vruntime placement relative to the target queue.
	bonus := int64(vm.params.WakeupGranularity)
	if !t.idlePolicy {
		if floor := v.minVruntime - bonus; t.vruntime < floor {
			t.vruntime = floor
		}
	} else if t.vruntime < v.minVruntime {
		t.vruntime = v.minVruntime
	}
	v.rq = append(v.rq, t)

	if v.curr == nil {
		if v.ent.State() == host.Blocked {
			// Halted vCPU: kick it awake (resched IPI from waker or timer).
			if waker != v {
				vm.countIPI(waker, v)
			}
			v.ent.Wake()
			return
		}
		if v.hostActive {
			v.dispatch()
		}
		// Inactive but runnable: the task waits for the vCPU — extended
		// runqueue latency.
		return
	}
	if guestWakeupPreempt(t, v.curr, vm.params) {
		if v.hostActive {
			if waker != v {
				vm.countIPI(waker, v)
			}
			v.needResched = true
			vm.eng.After(0, func() {
				if v.needResched {
					v.needResched = false
					if v.hostActive {
						v.reschedule()
					}
				}
			})
		} else {
			v.needResched = true
		}
	}
}

// DeliverIRQ runs fn in interrupt context on vCPU v: immediately when the
// vCPU is really running, otherwise as soon as it next runs (kicking it
// awake if halted). Timer expiries and external arrivals use this — their
// delivery latency includes the vCPU's inactivity, which is exactly the
// extended-latency effect of Fig. 2.
func (vm *VM) DeliverIRQ(v *VCPU, fn func()) {
	if v.hostActive {
		fn()
		return
	}
	v.pendingIRQ = append(v.pendingIRQ, fn)
	if v.ent.State() == host.Blocked {
		v.ent.Wake()
	}
}

// countIPI records an inter-processor interrupt from waker (nil = external
// interrupt context) to target, tracking cross-socket IPIs separately —
// those are the expensive ones Fig. 13 counts.
func (vm *VM) countIPI(waker, target *VCPU) {
	vm.ctr.ipis.Inc()
	if waker != nil &&
		waker.ent.Thread().Socket() != target.ent.Thread().Socket() {
		vm.ctr.crossIPIs.Inc()
	}
}

// KickVCPU sends a wakeup IPI to a halted vCPU (a legitimate guest
// operation; ivh uses it to pre-wake migration targets).
func (vm *VM) KickVCPU(v *VCPU) {
	vm.ctr.ipis.Inc()
	if v.ent.State() == host.Blocked {
		v.ent.Wake()
	}
}

// chargeMigrationCost adds the working-set transfer cost of moving task t
// between two hardware threads (cache refill on the destination).
func (vm *VM) chargeMigrationCost(t *Task, src, dst *VCPU) {
	rel := vm.h.Relation(src.ent.Thread().ID(), dst.ent.Thread().ID())
	var cost float64
	switch rel {
	case cachemodel.Socket:
		cost = vm.params.CommPenaltySocket
	case cachemodel.Cross:
		cost = vm.params.CommPenaltyCross
	}
	if cost > 0 {
		t.commDebt += cost
		vm.tr.Emit(vm.eng.Now(), vtrace.KindMigCost, t.name, int64(t.id), int64(cost), 0)
	}
}

// Post increments sem from daemon/interrupt context, waking one waiter.
// Equivalent to a task running SemPost, but callable from timers.
func (vm *VM) Post(s *Semaphore) {
	if len(s.waiters) > 0 {
		w := s.waiters[0]
		s.waiters = s.waiters[1:]
		vm.wakeTask(w, nil)
		return
	}
	s.count++
}

// BroadcastCond wakes all waiters of c from daemon/interrupt context.
func (vm *VM) BroadcastCond(c *Cond) {
	ws := c.waiters
	c.waiters = nil
	for _, w := range ws {
		vm.wakeTaskWide(w, nil, true)
	}
}

// --- task program execution ---

// advance runs t's behavior until it blocks, computes, or exits. t must be
// the current task of its vCPU.
func (vm *VM) advance(t *Task) {
	v := t.cpu
	now := vm.eng.Now()
	for iter := 0; ; iter++ {
		if iter > 100000 {
			panic("guest: runaway task program (no blocking or compute segment): " + t.name)
		}
		seg := t.behavior(now)
		switch seg.Kind {
		case SegCompute:
			if seg.Cycles < 0 {
				panic("guest: negative compute cycles")
			}
			t.remaining = seg.Cycles
			t.consumeCommDebt()
			v.scheduleCompletion()
			return

		case SegSleep:
			vm.blockCurr(t)
			d := seg.Dur
			vm.eng.After(d, func() {
				// Timer fires on the task's last vCPU; delivery waits for
				// that vCPU to really run.
				vm.DeliverIRQ(t.cpu, func() { vm.wakeTask(t, nil) })
			})
			return

		case SegAcquire:
			m := seg.Mutex
			if m.owner == nil {
				m.owner = t
				continue
			}
			m.waiters = append(m.waiters, t)
			vm.blockCurr(t)
			return

		case SegAcquireSpin:
			m := seg.Mutex
			if m.owner == nil {
				m.owner = t
				continue
			}
			// Busy-wait: burn CPU until granted. The grant aborts the spin.
			t.spinMutex = m
			m.spinners = append(m.spinners, t)
			t.remaining = math.Inf(1)
			v.scheduleCompletion()
			return

		case SegRelease:
			vm.releaseMutex(seg.Mutex, v)
			continue

		case SegCondWait:
			seg.Cond.waiters = append(seg.Cond.waiters, t)
			vm.blockCurr(t)
			return

		case SegCondSignal:
			c := seg.Cond
			if len(c.waiters) > 0 {
				w := c.waiters[0]
				c.waiters = c.waiters[1:]
				vm.wakeTask(w, v)
			}
			continue

		case SegCondBroadcast:
			c := seg.Cond
			ws := c.waiters
			c.waiters = nil
			for _, w := range ws {
				vm.wakeTaskWide(w, v, true)
			}
			continue

		case SegSemWait:
			s := seg.Sem
			if s.count > 0 {
				s.count--
				continue
			}
			s.waiters = append(s.waiters, t)
			vm.blockCurr(t)
			return

		case SegSemPost:
			s := seg.Sem
			if len(s.waiters) > 0 {
				w := s.waiters[0]
				s.waiters = s.waiters[1:]
				vm.wakeTask(w, v)
			} else {
				s.count++
			}
			continue

		case SegBarrier:
			b := seg.Barrier
			b.arrived = append(b.arrived, t)
			if len(b.arrived) == b.parties {
				others := b.arrived[:len(b.arrived)-1]
				b.arrived = nil
				for _, o := range others {
					if o.spinBarrier == b {
						vm.abortSpin(o)
					} else {
						vm.wakeTaskWide(o, v, true)
					}
				}
				continue // last arriver proceeds
			}
			if b.Spin {
				t.spinBarrier = b
				t.remaining = math.Inf(1)
				v.scheduleCompletion()
				return
			}
			vm.blockCurr(t)
			return

		case SegMigrate:
			dst := vm.vcpus[seg.CPU]
			if dst == v {
				continue
			}
			// sched_setaffinity-style self migration: requeue on dst.
			v.syncExec()
			v.uninstallCurr()
			v.compEv.Cancel()
			v.compEv = sim.Event{}
			t.remaining = 0
			t.vruntime = t.vruntime - v.minVruntime + dst.minVruntime
			vm.ctr.migrations.Inc()
			vm.tr.Emit(now, vtrace.KindTaskMigrate, t.name, int64(t.id), int64(v.id), int64(dst.id))
			vm.enqueue(dst, t, v)
			v.dispatch()
			return

		case SegYield:
			v.syncExec()
			v.uninstallCurr()
			v.compEv.Cancel()
			v.compEv = sim.Event{}
			t.remaining = 0
			t.state = TaskRunnable
			t.enqueuedAt = now
			v.rq = append(v.rq, t)
			v.dispatch()
			return

		case SegExit:
			t.state = TaskExited
			t.exited = true
			v.syncExec()
			v.uninstallCurr()
			v.compEv.Cancel()
			v.compEv = sim.Event{}
			if t.OnExit != nil {
				t.OnExit(now)
			}
			v.dispatch()
			return

		default:
			panic(fmt.Sprintf("guest: unknown segment kind %d", seg.Kind))
		}
	}
}

// releaseMutex hands the lock to the next contender: active spinners first
// (they grab it the instant it frees), then blocked waiters FIFO.
func (vm *VM) releaseMutex(m *Mutex, waker *VCPU) {
	if len(m.spinners) > 0 {
		next := m.spinners[0]
		m.spinners = m.spinners[1:]
		m.owner = next
		vm.abortSpin(next)
		return
	}
	if len(m.waiters) > 0 {
		next := m.waiters[0]
		m.waiters = m.waiters[1:]
		m.owner = next
		vm.wakeTask(next, waker)
		return
	}
	m.owner = nil
}

// abortSpin ends a task's busy-wait: its infinite compute collapses so its
// program advances as soon as the task next executes (which, for a spinner
// on a preempted vCPU, is only when that vCPU becomes active again —
// lock-holder/waiter preemption physics come out of this for free).
func (vm *VM) abortSpin(t *Task) {
	t.spinMutex = nil
	t.spinBarrier = nil
	t.remaining = 0
	if t.state == TaskRunning {
		t.cpu.scheduleCompletion()
	}
}

// blockCurr removes the running task from its vCPU (sleep/lock wait).
func (vm *VM) blockCurr(t *Task) {
	v := t.cpu
	if v.curr != t {
		panic("guest: blockCurr on non-current task " + t.name)
	}
	v.syncExec()
	t.state = TaskSleeping
	v.uninstallCurr()
	v.compEv.Cancel()
	v.compEv = sim.Event{}
	v.dispatch()
}

// MigrateQueued moves a runnable (queued) task to another vCPU's queue.
func (vm *VM) MigrateQueued(t *Task, dst *VCPU) {
	if t.state != TaskRunnable {
		panic("guest: MigrateQueued on non-runnable task")
	}
	src := t.cpu
	if src == dst {
		return
	}
	src.removeFromRQ(t)
	t.vruntime = t.vruntime - src.minVruntime + dst.minVruntime
	t.lastMigrate = vm.eng.Now()
	vm.chargeMigrationCost(t, src, dst)
	vm.ctr.migrations.Inc()
	vm.tr.Emit(vm.eng.Now(), vtrace.KindTaskMigrate, t.name, int64(t.id), int64(src.id), int64(dst.id))
	vm.enqueue(dst, t, nil)
}

// PullRunning implements the stopper-thread protocol for migrating a
// *running* task: the stopper can only execute on the source vCPU while it
// is really active. It returns false — and migrates nothing — when the
// source is inactive or the task is no longer current there (the paper's
// "failed migration" case). On success the task is detached and enqueued on
// dst.
func (vm *VM) PullRunning(src, dst *VCPU, t *Task) bool {
	if !src.hostActive || src.curr != t {
		return false
	}
	src.syncExec()
	src.uninstallCurr()
	src.compEv.Cancel()
	src.compEv = sim.Event{}
	t.state = TaskRunnable
	t.enqueuedAt = vm.eng.Now()
	t.vruntime = t.vruntime - src.minVruntime + dst.minVruntime
	t.lastMigrate = vm.eng.Now()
	vm.chargeMigrationCost(t, src, dst)
	vm.ctr.migrations.Inc()
	vm.ctr.activeMigrations.Inc()
	vm.tr.Emit(vm.eng.Now(), vtrace.KindTaskMigrate, t.name, int64(t.id), int64(src.id), int64(dst.id))
	vm.enqueue(dst, t, src)
	src.dispatch()
	return true
}
