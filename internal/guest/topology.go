package guest

// Belief is the topology the guest scheduler believes, expressed as group
// ids per vCPU. vtop rebuilds it from probed distances; the default is what
// an unmodified hypervisor exposes: symmetric CPUs, one flat LLC domain, no
// SMT siblings, no stacking (UMA illusion).
type Belief struct {
	// CoreOf[i] identifies the physical core group of vCPU i (SMT siblings
	// share a value).
	CoreOf []int
	// SocketOf[i] identifies the LLC/socket group of vCPU i.
	SocketOf []int
	// StackOf[i] identifies the stacking group of vCPU i: vCPUs time-sharing
	// one hardware thread share a value.
	StackOf []int
}

// DefaultBelief returns the inaccurate default abstraction for n vCPUs:
// every vCPU its own core and stack group, all in one socket.
func DefaultBelief(n int) Belief {
	b := Belief{CoreOf: make([]int, n), SocketOf: make([]int, n), StackOf: make([]int, n)}
	for i := 0; i < n; i++ {
		b.CoreOf[i] = i
		b.StackOf[i] = i
	}
	return b
}

// Clone deep-copies the belief.
func (b Belief) Clone() Belief {
	return Belief{
		CoreOf:   append([]int(nil), b.CoreOf...),
		SocketOf: append([]int(nil), b.SocketOf...),
		StackOf:  append([]int(nil), b.StackOf...),
	}
}

// SameCore reports whether the belief places i and j on one core (SMT).
func (b Belief) SameCore(i, j int) bool { return b.CoreOf[i] == b.CoreOf[j] }

// SameSocket reports whether the belief places i and j in one LLC domain.
func (b Belief) SameSocket(i, j int) bool { return b.SocketOf[i] == b.SocketOf[j] }

// SameStack reports whether the belief stacks i and j on one hardware
// thread.
func (b Belief) SameStack(i, j int) bool { return b.StackOf[i] == b.StackOf[j] }

// SMTSiblings returns the vCPUs sharing i's core group, excluding i.
func (b Belief) SMTSiblings(i int) []int {
	var out []int
	for j := range b.CoreOf {
		if j != i && b.CoreOf[j] == b.CoreOf[i] {
			out = append(out, j)
		}
	}
	return out
}

// StackGroups returns the stacking groups with more than one member.
func (b Belief) StackGroups() [][]int {
	byID := map[int][]int{}
	for i, g := range b.StackOf {
		byID[g] = append(byID[g], i)
	}
	var out [][]int
	for i := range b.StackOf {
		g := b.StackOf[i]
		members := byID[g]
		if len(members) > 1 && members[0] == i {
			out = append(out, members)
		}
	}
	return out
}

// Sockets returns the vCPU ids grouped by socket, ordered by first member.
func (b Belief) Sockets() [][]int {
	byID := map[int][]int{}
	for i, g := range b.SocketOf {
		byID[g] = append(byID[g], i)
	}
	var out [][]int
	seen := map[int]bool{}
	for i := range b.SocketOf {
		g := b.SocketOf[i]
		if !seen[g] {
			seen[g] = true
			out = append(out, byID[g])
		}
	}
	return out
}
