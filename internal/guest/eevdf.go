package guest

// EEVDF support: the kernel the paper targets moved from CFS to the
// Earliest Eligible Virtual Deadline First scheduler shortly after the
// paper's implementation (§4 discusses porting vSched to it). The guest can
// run either policy; vSched's hooks attach to the same points, which is the
// paper's portability claim made concrete — and testable.
//
// The model follows the EEVDF papers/kernel at the level relevant here:
// each task carries a virtual deadline `vd = vruntime + slice/weight`; a
// task is *eligible* when its vruntime is no later than the queue's
// weighted average; the scheduler picks the eligible task with the earliest
// virtual deadline. Short-slice (latency-nice) tasks therefore win the next
// dispatch without getting more total CPU.

// SchedPolicy selects the guest scheduling policy.
type SchedPolicy int

const (
	// PolicyCFS is the Completely Fair Scheduler model (paper's target).
	PolicyCFS SchedPolicy = iota
	// PolicyEEVDF is the Earliest Eligible Virtual Deadline First model.
	PolicyEEVDF
)

func (p SchedPolicy) String() string {
	if p == PolicyEEVDF {
		return "eevdf"
	}
	return "cfs"
}

// RequestSlice sets the task's EEVDF request size (its latency preference):
// shorter slices mean earlier virtual deadlines and snappier dispatch.
// Ignored under CFS. Zero restores the default (the scheduler's
// MinGranularity).
func (t *Task) RequestSlice(d int64) {
	if d < 0 {
		panic("guest: negative slice request")
	}
	t.sliceReq = d
}

// vdeadline computes the task's current virtual deadline.
func (t *Task) vdeadline(defaultSlice int64) int64 {
	slice := t.sliceReq
	if slice <= 0 {
		slice = defaultSlice
	}
	return t.vruntime + slice*WeightNormal/t.weight
}

// avgVruntime returns the load-weighted average vruntime over the queue and
// the current task — EEVDF's eligibility reference.
func (v *VCPU) avgVruntime() int64 {
	var sumWV, sumW int64
	add := func(t *Task) {
		sumWV += t.vruntime / 1024 * t.weight // scaled to avoid overflow
		sumW += t.weight
	}
	if v.curr != nil {
		add(v.curr)
	}
	for _, t := range v.rq {
		add(t)
	}
	if sumW == 0 {
		return 0
	}
	return sumWV / sumW * 1024
}

// peekBestEEVDF returns the eligible queued task with the earliest virtual
// deadline (falling back to the globally earliest deadline when nothing is
// eligible, as the kernel does after reweighting).
func (v *VCPU) peekBestEEVDF() *Task {
	avg := v.avgVruntime()
	slice := int64(v.vm.params.MinGranularity)
	var bestElig, bestAny *Task
	better := func(a, b *Task) bool {
		if a.idlePolicy != b.idlePolicy {
			return !a.idlePolicy
		}
		da, db := a.vdeadline(slice), b.vdeadline(slice)
		if da != db {
			return da < db
		}
		return a.seq < b.seq
	}
	for _, t := range v.rq {
		if bestAny == nil || better(t, bestAny) {
			bestAny = t
		}
		if t.vruntime <= avg && (bestElig == nil || better(t, bestElig)) {
			bestElig = t
		}
	}
	if bestElig != nil {
		return bestElig
	}
	return bestAny
}

// eevdfTickPreempt decides at tick time whether best should replace curr
// under EEVDF: the running task is preempted once it has consumed its
// request and an eligible task has an earlier deadline.
func (v *VCPU) eevdfTickPreempt(best, curr *Task, slice int64) bool {
	if curr.idlePolicy && !best.idlePolicy {
		return true
	}
	if !curr.idlePolicy && best.idlePolicy {
		return false
	}
	return best.vdeadline(slice) < curr.vdeadline(slice)
}
