package guest

// CGroup is a cpuset-style task group: a named allowed-vCPU mask. vSched's
// rwc hides problematic vCPUs by shrinking the masks of user-facing groups
// while leaving prober groups untouched, exactly as the paper does with
// cgroup cpusets.
type CGroup struct {
	name    string
	allowed []bool
}

func fullMask(n int) []bool {
	m := make([]bool, n)
	for i := range m {
		m[i] = true
	}
	return m
}

// NewGroup creates a cgroup allowing all vCPUs.
func (vm *VM) NewGroup(name string) *CGroup {
	return &CGroup{name: name, allowed: fullMask(len(vm.vcpus))}
}

// Name returns the group name.
func (g *CGroup) Name() string { return g.name }

// Allowed reports whether the group may use vCPU i.
func (g *CGroup) Allowed(i int) bool { return g.allowed[i] }

// AllowedMask returns a copy of the mask.
func (g *CGroup) AllowedMask() []bool {
	return append([]bool(nil), g.allowed...)
}

// allowedFor reports whether task t may run on vCPU v, combining its cgroup
// mask and per-task pinning.
func (vm *VM) allowedFor(t *Task, v *VCPU) bool {
	if t.affinity >= 0 {
		return t.affinity == v.id
	}
	return t.group.allowed[v.id]
}

// firstAllowed returns some vCPU task t may use (its pin, or the first set
// bit of its group mask); falls back to vCPU 0 on an empty mask.
func (vm *VM) firstAllowed(t *Task) *VCPU {
	if t.affinity >= 0 {
		return vm.vcpus[t.affinity]
	}
	for i, ok := range t.group.allowed {
		if ok {
			return vm.vcpus[i]
		}
	}
	return vm.vcpus[0]
}

// SetGroupMask atomically replaces a group's allowed mask and evicts the
// group's tasks from newly banned vCPUs (queued tasks are re-placed at once;
// running tasks are detached via the stopper path when their vCPU is active,
// otherwise marked for eviction at the next opportunity by the balancer).
func (vm *VM) SetGroupMask(g *CGroup, mask []bool) {
	if len(mask) != len(vm.vcpus) {
		panic("guest: mask size mismatch")
	}
	any := false
	for _, ok := range mask {
		if ok {
			any = true
			break
		}
	}
	if !any {
		panic("guest: cgroup mask cannot be empty")
	}
	copy(g.allowed, mask)
	vm.evictBanned(g)
}

// evictBanned pushes a group's tasks off vCPUs the mask no longer allows.
func (vm *VM) evictBanned(g *CGroup) {
	for _, v := range vm.vcpus {
		if g.allowed[v.id] {
			continue
		}
		// Queued tasks: re-place immediately.
		var move []*Task
		for _, t := range v.rq {
			if t.group == g && t.affinity < 0 {
				move = append(move, t)
			}
		}
		for _, t := range move {
			dst := vm.selectCPU(t, vm.firstAllowed(t), nil)
			if dst != v {
				vm.MigrateQueued(t, dst)
			}
		}
		// Running task: detach if the vCPU is active; otherwise the
		// periodic balancer will retry.
		if t := v.curr; t != nil && t.group == g && t.affinity < 0 {
			dst := vm.selectCPU(t, vm.firstAllowed(t), nil)
			if dst != v {
				vm.PullRunning(v, dst, t)
			}
		}
	}
}
