package guest

import (
	"vsched/internal/sim"
	"vsched/internal/vtrace"
)

// Load balancing: new-idle pulls, periodic in-domain and cross-domain
// balancing, misfit (active) migration, and cgroup-mask enforcement. Like
// CPU selection, all decisions run on believed topology and capacity.

// newIdleBalance runs when a vCPU finds its runqueue empty: pull one queued
// task, preferring the believed LLC domain. This is what makes stock CFS
// work-conserving — and what drags tasks onto straggler or stacked vCPUs
// when the abstraction lies (Fig. 4); rwc counters it with cgroup masks.
func (vm *VM) newIdleBalance(v *VCPU) {
	if t := vm.findPullable(v, true); t != nil {
		vm.MigrateQueued(t, v)
		return
	}
	if t := vm.findPullable(v, false); t != nil {
		vm.MigrateQueued(t, v)
	}
}

// findPullable locates a queued task another vCPU can spare for v.
func (vm *VM) findPullable(v *VCPU, sameDomain bool) *Task {
	now := vm.eng.Now()
	var busiest *VCPU
	for _, s := range vm.vcpus {
		// Only queues with real contention are donors: pulling the sole
		// runnable task of another CPU gains nothing (and a lone task
		// queued on an inactive vCPU looks exactly like a running one from
		// here).
		if s == v || len(s.rq) == 0 || s.nrRunning() < 2 {
			continue
		}
		same := vm.topo.SocketOf[s.id] == vm.topo.SocketOf[v.id]
		if same != sameDomain {
			continue
		}
		// Cross-domain pulls are conservative: only from queues of 2+.
		if !sameDomain && len(s.rq) < 2 {
			continue
		}
		if busiest == nil || s.load() > busiest.load() {
			busiest = s
		}
	}
	if busiest == nil {
		return nil
	}
	// Prefer tasks that aren't cache-hot; take a hot one only from a long
	// queue.
	var hot *Task
	for _, t := range busiest.rq {
		if !vm.allowedFor(t, v) {
			continue
		}
		if now.Sub(t.lastRan) >= vm.params.CacheHot {
			return t
		}
		hot = t
	}
	if hot != nil && len(busiest.rq) > 1 {
		return hot
	}
	return nil
}

// periodicBalance is the CFS rebalance pass: equalise load-to-capacity
// within each believed LLC domain, then across domains with a higher bar,
// then handle misfit tasks and cgroup evictions.
func (vm *VM) periodicBalance() {
	for _, socket := range vm.topo.Sockets() {
		vm.balanceWithin(socket)
	}
	vm.balanceAcross()
	if vm.asymCapacityEnabled() {
		vm.misfitPass()
	}
	vm.capacityPressurePass()
	vm.smtBalancePass()
	vm.maskEnforcePass()
	vm.tr.Emit(vm.eng.Now(), vtrace.KindBalance, vm.name, int64(vm.ctr.migrations.Value()), 0, 0)
}

// smtBalancePass un-stacks heavy tasks from fully busy believed cores onto
// cores that are idle or host only light/sleeping work — the SMT-domain
// balancing that needs accurate core topology. With the default belief
// every vCPU is its own core, so this never fires under stock abstraction.
func (vm *VM) smtBalancePass() {
	now := vm.eng.Now()
	// Collect believed core groups with more than one member. coreOrder
	// remembers first-appearance order: iterating the map directly would
	// randomise which overloaded core unstacks first and which idle core
	// receives, breaking run-to-run determinism.
	byCore := map[int][]*VCPU{}
	var coreOrder []int
	multi := false
	for i, v := range vm.vcpus {
		g := vm.topo.CoreOf[i]
		if len(byCore[g]) == 0 {
			coreOrder = append(coreOrder, g)
		}
		byCore[g] = append(byCore[g], v)
		if len(byCore[g]) > 1 {
			multi = true
		}
	}
	if !multi {
		return
	}
	heavy := func(v *VCPU) bool {
		t := v.curr
		return t != nil && !t.idlePolicy && t.affinity < 0 && t.Util() >= 350
	}
	groupHeavy := func(members []*VCPU) int {
		n := 0
		for _, v := range members {
			if heavy(v) {
				n++
			}
		}
		return n
	}
	for _, g := range coreOrder {
		members := byCore[g]
		if len(members) < 2 || groupHeavy(members) < 2 {
			continue
		}
		// Overloaded core: find a fully idle core group to take one runner.
		// Requiring every member idle keeps this from thrashing on the
		// transient idleness at the tail of barrier phases.
		var dst *VCPU
		for _, cg := range coreOrder {
			cand := byCore[cg]
			allIdle := true
			for _, u := range cand {
				if !u.GuestIdle() {
					allIdle = false
					break
				}
			}
			if allIdle && len(cand) > 0 {
				dst = cand[0]
				break
			}
		}
		if dst == nil {
			return
		}
		for _, v := range members {
			if !heavy(v) {
				continue
			}
			t := v.curr
			if now.Sub(t.lastMigrate) < misfitMigrateCooldown || !vm.allowedFor(t, dst) {
				continue
			}
			vm.PullRunning(v, dst, t)
			break
		}
	}
}

// asymCapacityEnabled is the SD_ASYM_CPUCAPACITY analogue: misfit balancing
// only runs when the capacity abstraction itself is asymmetric. The default
// abstraction presents every vCPU as an identical full-capacity CPU, so
// stock CFS never engages its asymmetric-capacity machinery — publishing
// accurate, differing capacities (vcap) is what switches it on.
func (vm *VM) asymCapacityEnabled() bool {
	var min, max int64
	any := false
	for _, v := range vm.vcpus {
		if !v.HasAccurateCapacity() {
			return false
		}
		c := v.Capacity()
		if !any || c < min {
			min = c
		}
		if !any || c > max {
			max = c
		}
		any = true
	}
	return any && max*4 > min*5 // >25% spread
}

const imbalancePct = 1.25 // Linux's default 125%

// balanceWithin moves queued tasks from the most to the least loaded vCPU
// of one domain until roughly balanced (bounded moves per round).
func (vm *VM) balanceWithin(ids []int) {
	for moves := 0; moves < 2; moves++ {
		var busiest, idlest *VCPU
		for _, id := range ids {
			v := vm.vcpus[id]
			if v.nrRunning() >= 2 && (busiest == nil || v.loadPerCapacity() > busiest.loadPerCapacity()) {
				busiest = v
			}
			if idlest == nil || v.loadPerCapacity() < idlest.loadPerCapacity() {
				idlest = v
			}
		}
		if busiest == nil || idlest == nil || busiest == idlest {
			return
		}
		if len(busiest.rq) == 0 {
			return
		}
		if busiest.loadPerCapacity() <= idlest.loadPerCapacity()*imbalancePct {
			return
		}
		t := vm.pickMigratable(busiest, idlest)
		if t == nil {
			return
		}
		vm.MigrateQueued(t, idlest)
	}
}

// balanceAcross moves one queued task between believed sockets when the
// inter-domain imbalance is large.
func (vm *VM) balanceAcross() {
	sockets := vm.topo.Sockets()
	if len(sockets) < 2 {
		return
	}
	loadOf := func(ids []int) float64 {
		var l float64
		for _, id := range ids {
			l += vm.vcpus[id].loadPerCapacity()
		}
		return l / float64(len(ids))
	}
	hi, lo := -1, -1
	for i := range sockets {
		if hi == -1 || loadOf(sockets[i]) > loadOf(sockets[hi]) {
			hi = i
		}
		if lo == -1 || loadOf(sockets[i]) < loadOf(sockets[lo]) {
			lo = i
		}
	}
	if hi == lo || loadOf(sockets[hi]) <= loadOf(sockets[lo])*imbalancePct+0.5 {
		return
	}
	var busiest *VCPU
	for _, id := range sockets[hi] {
		v := vm.vcpus[id]
		if len(v.rq) > 0 && v.nrRunning() >= 2 && (busiest == nil || v.loadPerCapacity() > busiest.loadPerCapacity()) {
			busiest = v
		}
	}
	if busiest == nil {
		return
	}
	var idlest *VCPU
	for _, id := range sockets[lo] {
		v := vm.vcpus[id]
		if idlest == nil || v.loadPerCapacity() < idlest.loadPerCapacity() {
			idlest = v
		}
	}
	if t := vm.pickMigratable(busiest, idlest); t != nil {
		vm.MigrateQueued(t, idlest)
	}
}

// pickMigratable chooses a queued task of src that dst may take, avoiding
// cache-hot tasks when possible.
func (vm *VM) pickMigratable(src, dst *VCPU) *Task {
	now := vm.eng.Now()
	var hot *Task
	for _, t := range src.rq {
		if !vm.allowedFor(t, dst) {
			continue
		}
		if now.Sub(t.lastRan) >= vm.params.CacheHot {
			return t
		}
		hot = t
	}
	return hot
}

// misfitMigrateCooldown rate-limits active migrations per task, like the
// balance-interval backoff in CFS.
const misfitMigrateCooldown = 200 * sim.Millisecond

// misfitPass performs CFS's misfit/active migration: a running task whose
// utilisation exceeds its vCPU's believed capacity moves to an idle vCPU
// with more. The move uses the stopper protocol, so it silently fails when
// the source vCPU is inactive — stock CFS cannot rescue stalled tasks. The
// scan starts at a rotating offset: which "bigger-looking" idle vCPU wins is
// arbitrary in real CFS too.
func (vm *VM) misfitPass() {
	now := vm.eng.Now()
	n := len(vm.vcpus)
	for _, v := range vm.vcpus {
		t := v.curr
		if t == nil || t.idlePolicy || t.affinity >= 0 {
			continue
		}
		if now.Sub(t.lastMigrate) < misfitMigrateCooldown {
			continue
		}
		util := t.Util()
		if fitsCapacity(util, v.Capacity()) {
			continue
		}
		var best *VCPU
		start := vm.eng.Rand().Intn(n)
		for k := 0; k < n; k++ {
			u := vm.vcpus[(start+k)%n]
			if u == v || !vm.allowedFor(t, u) || !u.GuestIdle() {
				continue
			}
			if u.Capacity() <= v.Capacity()*11/10 {
				continue
			}
			if best == nil || u.Capacity() > best.Capacity() {
				best = u
			}
		}
		if best != nil {
			vm.PullRunning(v, best, t)
		}
	}
}

// capacityPressurePass models CFS's active balancing away from
// capacity-reduced CPUs (need_active_balance's rt/steal-pressure case): a
// lone running task on a vCPU whose believed capacity has dropped well below
// nominal is pushed to an idle vCPU that *appears* to have more capacity.
// With the stock abstraction, idle vCPUs always appear stronger (no steal is
// observed while idle), so this keeps firing and produces the adverse
// migration churn of Fig. 11(b); honest vcap capacities make source and
// destination look equal and the churn stops.
func (vm *VM) capacityPressurePass() {
	now := vm.eng.Now()
	n := len(vm.vcpus)
	for _, v := range vm.vcpus {
		t := v.curr
		if t == nil || t.idlePolicy || t.affinity >= 0 || len(v.rq) > 0 {
			continue
		}
		if now.Sub(t.lastMigrate) < misfitMigrateCooldown {
			continue
		}
		srcCap := v.Capacity()
		if srcCap*5 >= 1024*4 { // not capacity-reduced (>= 80% of nominal)
			continue
		}
		var best *VCPU
		start := vm.eng.Rand().Intn(n)
		for k := 0; k < n; k++ {
			u := vm.vcpus[(start+k)%n]
			if u == v || !vm.allowedFor(t, u) || !u.GuestIdle() {
				continue
			}
			if u.Capacity()*10 <= srcCap*11 {
				continue // destination must look meaningfully stronger
			}
			if best == nil || u.Capacity() > best.Capacity() {
				best = u
			}
		}
		if best != nil {
			vm.PullRunning(v, best, t)
		}
	}
}

// maskEnforcePass retries evicting running tasks from vCPUs their cgroup no
// longer allows (the eviction at mask-change time fails when the vCPU was
// inactive).
func (vm *VM) maskEnforcePass() {
	for _, v := range vm.vcpus {
		t := v.curr
		if t == nil || vm.allowedFor(t, v) {
			continue
		}
		dst := vm.selectCPU(t, vm.firstAllowed(t), nil)
		if dst != v {
			vm.PullRunning(v, dst, t)
		}
	}
}
