package guest

import (
	"fmt"
	"testing"

	"vsched/internal/host"
	"vsched/internal/sim"
)

func eevdfSetup(t *testing.T, nvcpu int) (*sim.Engine, *VM) {
	t.Helper()
	eng := sim.NewEngine(1)
	cfg := host.DefaultConfig()
	cfg.Sockets, cfg.CoresPerSocket, cfg.ThreadsPerCore = 1, nvcpu, 1
	cfg.TurboFactor, cfg.BaseSpeed = 1.0, 1.0
	h := host.New(eng, cfg)
	var threads []*host.Thread
	for i := 0; i < nvcpu; i++ {
		threads = append(threads, h.Thread(i))
	}
	p := DefaultParams()
	p.Policy = PolicyEEVDF
	vm := NewVM(h, "vm", threads, p)
	vm.Start()
	return eng, vm
}

func TestEEVDFFairSharing(t *testing.T) {
	eng, vm := eevdfSetup(t, 1)
	a := vm.Spawn("a", func(sim.Time) Segment { return ComputeForever() })
	b := vm.Spawn("b", func(sim.Time) Segment { return ComputeForever() })
	eng.RunFor(500 * sim.Millisecond)
	ra, rb := float64(a.TotalRun()), float64(b.TotalRun())
	if ra+rb < float64(490*sim.Millisecond) {
		t.Fatalf("vCPU underused: %v", ra+rb)
	}
	if r := ra / rb; r < 0.9 || r > 1.1 {
		t.Fatalf("EEVDF must stay fair: %v vs %v", ra, rb)
	}
}

func TestEEVDFWeightedSharing(t *testing.T) {
	eng, vm := eevdfSetup(t, 1)
	a := vm.Spawn("a", func(sim.Time) Segment { return ComputeForever() }, WithWeight(2048))
	b := vm.Spawn("b", func(sim.Time) Segment { return ComputeForever() })
	eng.RunFor(2 * sim.Second)
	r := float64(a.TotalRun()) / float64(b.TotalRun())
	if r < 1.8 || r > 2.2 {
		t.Fatalf("weighted EEVDF ratio=%v want ~2", r)
	}
}

func TestEEVDFShortSliceWinsDispatchNotBandwidth(t *testing.T) {
	// A latency-nice task (short request) competing with two hogs on one
	// vCPU: its wakeups dispatch quickly, yet its long-run share stays fair.
	run := func(slice int64) (p95 sim.Duration, share float64) {
		eng, vm := eevdfSetup(t, 1)
		for i := 0; i < 2; i++ {
			vm.Spawn(fmt.Sprintf("hog%d", i), func(sim.Time) Segment { return ComputeForever() })
		}
		var waits []sim.Duration
		step := 0
		lat := vm.Spawn("lat", func(now sim.Time) Segment {
			step++
			if step%2 == 1 {
				return Sleep(5 * sim.Millisecond)
			}
			return Compute(2e5) // 200us bursts
		})
		if slice > 0 {
			lat.RequestSlice(slice)
		}
		lat.OnScheduled = func(now sim.Time, queued sim.Duration) {
			waits = append(waits, queued)
		}
		eng.RunFor(2 * sim.Second)
		var max sim.Duration
		for _, w := range waits {
			if w > max {
				max = w
			}
		}
		// p95-ish: sort-free approximation via max of lower 95%... keep max.
		return max, float64(lat.TotalRun()) / float64(2*sim.Second)
	}
	slowMax, _ := run(0)
	fastMax, share := run(int64(200 * sim.Microsecond))
	if fastMax > slowMax {
		t.Fatalf("short request should not worsen dispatch: %v vs %v", fastMax, slowMax)
	}
	if fastMax > 2*sim.Millisecond {
		t.Fatalf("short-slice task should dispatch quickly, worst wait %v", fastMax)
	}
	// It must not have gained extra bandwidth: it is mostly sleeping anyway,
	// but cap its share well below a fair third.
	if share > 0.2 {
		t.Fatalf("latency preference must not buy bandwidth: share=%.2f", share)
	}
}

func TestEEVDFSchedIdleStillYields(t *testing.T) {
	eng, vm := eevdfSetup(t, 1)
	be := vm.Spawn("be", func(sim.Time) Segment { return ComputeForever() }, WithIdlePolicy())
	n := vm.Spawn("n", func(sim.Time) Segment { return ComputeForever() })
	eng.RunFor(200 * sim.Millisecond)
	if float64(be.TotalRun()) > 0.05*float64(200*sim.Millisecond) {
		t.Fatalf("sched_idle got %v under EEVDF", be.TotalRun())
	}
	if n.State() != TaskRunning {
		t.Fatal("normal task should dominate")
	}
}

func TestEEVDFPolicyString(t *testing.T) {
	if PolicyCFS.String() != "cfs" || PolicyEEVDF.String() != "eevdf" {
		t.Fatal("policy strings")
	}
}

func TestEEVDFWithVSchedHooksCompatible(t *testing.T) {
	// The paper's §4 portability claim: the hook points are policy-agnostic.
	// Install a SelectCPU hook under EEVDF and verify it steers placement.
	eng, vm := eevdfSetup(t, 4)
	picked := 0
	vm.InstallHooks(Hooks{
		SelectCPU: func(t *Task, prev *VCPU) *VCPU {
			if t.LatencySensitive {
				picked++
				return vm.VCPU(3)
			}
			return nil
		},
	})
	step := 0
	tk := vm.Spawn("lat", func(sim.Time) Segment {
		step++
		if step%2 == 1 {
			return Sleep(2 * sim.Millisecond)
		}
		return Compute(1e5)
	}, WithLatencySensitive())
	eng.RunFor(100 * sim.Millisecond)
	if picked == 0 {
		t.Fatal("hook never consulted under EEVDF")
	}
	if tk.CPU().ID() != 3 {
		t.Fatalf("hook placement ignored, task on %d", tk.CPU().ID())
	}
	if tk.TotalRun() == 0 {
		t.Fatal("task made no progress")
	}
}

func TestRequestSliceValidation(t *testing.T) {
	_, vm := eevdfSetup(t, 1)
	tk := vm.Spawn("x", func(sim.Time) Segment { return ComputeForever() })
	defer func() {
		if recover() == nil {
			t.Fatal("negative slice must panic")
		}
	}()
	tk.RequestSlice(-1)
}
