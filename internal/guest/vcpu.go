package guest

import (
	"math"

	"vsched/internal/host"
	"vsched/internal/sim"
	"vsched/internal/vtrace"
)

// VCPU is a virtual CPU: a guest runqueue layered on a host entity.
//
// Fields fall into two classes. Physics fields (hostActive, speed, execMark)
// mirror what the hardware is really doing and drive task progress; guest
// scheduling policy never reads them. Guest-visible fields (steal counter,
// heartbeat stamp, runqueue contents, published capacity/latency) are what a
// real guest kernel could observe, and are the only inputs to policy.
type VCPU struct {
	vm  *VM
	id  int
	ent *host.Entity

	// --- physics (not visible to scheduling policy) ---
	hostActive bool
	speed      float64  // cycles per ns while active
	execMark   sim.Time // last integration point for curr's progress
	compEv     sim.Event
	// lastSpeedMicro is the last KindVCPUSpeed value emitted, so redundant
	// resumes at an unchanged speed don't flood the trace ring.
	lastSpeedMicro int64

	// --- guest scheduler state ---
	curr        *Task
	rq          []*Task
	minVruntime int64
	needResched bool

	// --- tick machinery ---
	tickEv      sim.Event
	pendingTick bool

	// --- guest-visible kernel counters (vact's kernel instrumentation) ---
	lastTickStamp  sim.Time
	stealAtTick    sim.Duration
	preemptCount   uint64
	becameActiveAt sim.Time
	// cfsCapacity is the vanilla kernel's flawed capacity estimate: steal
	// fraction observed at ticks while busy, with no information while idle.
	cfsCapacity float64

	// --- values published by vSched's kernel module (0 = unset) ---
	pubCapacity    int64
	pubLatency     sim.Duration
	pubAvgActive   sim.Duration
	pubAvgInactive sim.Duration

	// pendingIRQ holds interrupt work (timer expiries, external arrivals)
	// that must wait until the vCPU is next really running.
	pendingIRQ []func()

	// idleSince records when the vCPU last entered the guest idle loop;
	// valid only while GuestIdle() holds.
	idleSince sim.Time

	// cyclesExec counts cycles actually executed on this vCPU (all tasks,
	// including probers) — the "total cycles" cost metric of Fig. 20.
	cyclesExec float64

	// llcF is the cached LLC-contention speed factor (1.0 = no pressure);
	// llcSocket remembers which socket's footprint the current task was
	// charged to (the vCPU may be repinned while a task is installed).
	llcF      float64
	llcSocket int
}

// llcFactor returns the vCPU's current LLC-contention speed factor.
func (v *VCPU) llcFactor() float64 {
	if v.llcF == 0 {
		return 1
	}
	return v.llcF
}

// refreshLLC recomputes the cached LLC factor from the socket's installed
// footprint. Called at install time and each tick: millisecond-scale
// staleness is acceptable for a cache-capacity effect.
func (v *VCPU) refreshLLC() {
	p := v.vm.params
	if p.LLCSizeMB <= 0 {
		v.llcF = 1
		return
	}
	load := v.vm.llcLoad[v.ent.Thread().Socket()]
	if load <= p.LLCSizeMB {
		v.llcF = 1
		return
	}
	v.llcF = math.Sqrt(p.LLCSizeMB / load)
}

// uninstallCurr detaches the current task, keeping the socket footprint
// accounting straight. It does not change the task's state.
func (v *VCPU) uninstallCurr() {
	t := v.curr
	if t == nil {
		return
	}
	if t.footprint > 0 {
		v.vm.llcLoad[v.llcSocket] -= t.footprint
	}
	// A2 tells attribution consumers whether the task left the CPU still
	// wanting it (preemption, yield, migration pull) or stopped needing it
	// (block, exit). Every caller that blocks/exits sets the task state
	// before uninstalling; the still-runnable paths leave it Running or set
	// Runnable first.
	still := int64(0)
	if t.state == TaskRunning || t.state == TaskRunnable {
		still = 1
	}
	v.vm.tr.Emit(v.vm.eng.Now(), vtrace.KindTaskOff, t.name, int64(v.id), int64(t.id), still)
	v.curr = nil
}

// CyclesExecuted returns total cycles executed on this vCPU.
func (v *VCPU) CyclesExecuted() float64 { return v.cyclesExec }

// IdleSince returns when the vCPU entered the guest idle loop. Only
// meaningful while GuestIdle() is true.
func (v *VCPU) IdleSince() sim.Time { return v.idleSince }

// ID returns the vCPU index within its VM.
func (v *VCPU) ID() int { return v.id }

// VM returns the owning VM.
func (v *VCPU) VM() *VM { return v.vm }

// Entity exposes the underlying host entity. Experiments use it for ground
// truth and host-side manipulation; guest policy code must restrict itself
// to the guest-visible accessors below.
func (v *VCPU) Entity() *host.Entity { return v.ent }

// --- guest-visible accessors (legitimate reads for vSched) ---

// Steal returns the paravirtual steal-time counter.
func (v *VCPU) Steal() sim.Duration { return v.ent.Steal() }

// Heartbeat returns the timestamp the vCPU recorded at its most recent
// scheduler tick. A stale heartbeat on a busy vCPU means it is preempted.
func (v *VCPU) Heartbeat() sim.Time { return v.lastTickStamp }

// PreemptCount returns vact's kernel counter of detected steal-time jumps.
func (v *VCPU) PreemptCount() uint64 { return v.preemptCount }

// ResetPreemptCount zeroes the steal-jump counter (done by vact's user-space
// part at the end of each sampling period) and returns the prior value.
func (v *VCPU) ResetPreemptCount() uint64 {
	c := v.preemptCount
	v.preemptCount = 0
	return c
}

// BecameActiveAt returns the kernel's tick-granularity estimate of when the
// vCPU last transitioned inactive->active (the tick that observed a steal
// jump).
func (v *VCPU) BecameActiveAt() sim.Time { return v.becameActiveAt }

// GuestIdle reports whether the vCPU has no current task and an empty
// runqueue (the guest idle loop).
func (v *VCPU) GuestIdle() bool { return v.curr == nil && len(v.rq) == 0 }

// RunqueueLen returns the number of runnable tasks waiting (excluding curr).
func (v *VCPU) RunqueueLen() int { return len(v.rq) }

// Curr returns the task currently installed on the vCPU, or nil.
func (v *VCPU) Curr() *Task { return v.curr }

// OnlyIdlePolicy reports whether every installed task (curr and queue) is
// SCHED_IDLE — i.e. the vCPU serves only best-effort work right now.
func (v *VCPU) OnlyIdlePolicy() bool {
	if v.curr == nil && len(v.rq) == 0 {
		return false
	}
	if v.curr != nil && !v.curr.idlePolicy {
		return false
	}
	for _, t := range v.rq {
		if !t.idlePolicy {
			return false
		}
	}
	return true
}

// PublishCapacity installs a probed capacity value (vcap -> kernel module).
// Pass 0 to revert to the vanilla estimate.
func (v *VCPU) PublishCapacity(c int64) { v.pubCapacity = c }

// PublishActivity installs probed activity metrics (vact -> kernel module):
// the average inactive period (vCPU latency) and average active period.
func (v *VCPU) PublishActivity(latency, avgActive, avgInactive sim.Duration) {
	v.pubLatency = latency
	v.pubAvgActive = avgActive
	v.pubAvgInactive = avgInactive
}

// Latency returns the published vCPU latency (average inactive period);
// zero if never published.
func (v *VCPU) Latency() sim.Duration { return v.pubLatency }

// AvgActive returns the published average active period.
func (v *VCPU) AvgActive() sim.Duration { return v.pubAvgActive }

// Capacity returns the capacity estimate the scheduler believes: the value
// published by vcap when available, otherwise the vanilla CFS estimate —
// which reports full capacity for idle vCPUs because steal is only observed
// while busy (the exact flaw Fig. 11 demonstrates).
func (v *VCPU) Capacity() int64 {
	if v.pubCapacity > 0 {
		return v.pubCapacity
	}
	if v.GuestIdle() {
		return 1024
	}
	return int64(v.cfsCapacity)
}

// HasAccurateCapacity reports whether a probed capacity has been published.
func (v *VCPU) HasAccurateCapacity() bool { return v.pubCapacity > 0 }

// --- host.Client implementation (physics) ---

// Resumed implements host.Client.
func (v *VCPU) Resumed(now sim.Time, speed float64) {
	v.hostActive = true
	v.speed = speed
	v.execMark = now
	v.emitSpeed(now, speed)
	v.scheduleCompletion()
	// Interrupt delivery, deferred ticks and rescheduling happen "on the
	// vCPU" as soon as it runs again; the zero-delay event keeps us out of
	// the host scheduler's critical section.
	v.vm.eng.After(0, v.onResumeWork)
}

// Stopped implements host.Client.
func (v *VCPU) Stopped(now sim.Time) {
	v.syncExec()
	v.hostActive = false
	v.compEv.Cancel()
	v.compEv = sim.Event{}
}

// SpeedChanged implements host.Client.
func (v *VCPU) SpeedChanged(now sim.Time, speed float64) {
	v.syncExec()
	v.speed = speed
	v.emitSpeed(now, speed)
	v.scheduleCompletion()
}

// emitSpeed traces the vCPU's effective speed in integer millionths of a
// cycle/ns, deduplicated: a resume at an unchanged speed emits nothing, so
// halting workloads don't flood the ring. Attribution consumers cache the
// last value per vCPU, which deduplication keeps exact.
func (v *VCPU) emitSpeed(now sim.Time, speed float64) {
	if v.vm.tr == nil {
		return
	}
	micro := int64(speed*1e6 + 0.5)
	if micro == v.lastSpeedMicro {
		return
	}
	v.lastSpeedMicro = micro
	v.vm.tr.Emit(now, vtrace.KindVCPUSpeed, v.vm.name, int64(v.id), micro, 0)
}

// onResumeWork drains everything that was waiting for the vCPU to really
// run: pending interrupts, a deferred tick, rescheduling, and dispatch.
func (v *VCPU) onResumeWork() {
	if !v.hostActive {
		return // lost the CPU again before the event fired
	}
	if len(v.pendingIRQ) > 0 {
		irqs := v.pendingIRQ
		v.pendingIRQ = nil
		for _, fn := range irqs {
			fn()
		}
	}
	if v.pendingTick {
		v.pendingTick = false
		v.tick()
	}
	if v.needResched {
		v.needResched = false
		v.reschedule()
	}
	v.dispatch()
}

// syncExec integrates the running task's progress up to now.
func (v *VCPU) syncExec() {
	now := v.vm.eng.Now()
	if v.curr != nil && v.hostActive {
		elapsed := now.Sub(v.execMark)
		if elapsed > 0 {
			t := v.curr
			rate := v.speed * v.llcFactor()
			v.cyclesExec += float64(elapsed) * rate
			t.remaining -= float64(elapsed) * rate
			t.totalRun += elapsed
			t.vruntime += int64(elapsed) * WeightNormal / t.weight
			t.updatePELT(now, elapsed)
			t.lastRan = now
			if t.vruntime > v.minVruntime {
				v.minVruntime = t.vruntime
			}
		}
	}
	v.execMark = now
}

// scheduleCompletion (re)arms the event that fires when the running task's
// current compute segment finishes.
func (v *VCPU) scheduleCompletion() {
	v.compEv.Cancel()
	v.compEv = sim.Event{}
	t := v.curr
	if t == nil || !v.hostActive || math.IsInf(t.remaining, 1) {
		return
	}
	var d sim.Duration
	if t.remaining > 0 {
		d = sim.Duration(math.Ceil(t.remaining / (v.speed * v.llcFactor())))
	}
	v.compEv = v.vm.eng.After(d, v.onComplete)
}

func (v *VCPU) onComplete() {
	v.compEv = sim.Event{}
	v.syncExec()
	t := v.curr
	if t == nil {
		return
	}
	if t.remaining > 0.5 {
		// Speed dropped between scheduling and firing; rearm.
		v.scheduleCompletion()
		return
	}
	t.remaining = 0
	v.vm.advance(t)
}

// --- ticks ---

func (v *VCPU) startTicking(offset sim.Duration) {
	v.tickEv = v.vm.eng.After(offset, v.tickFire)
}

func (v *VCPU) tickFire() {
	v.tickEv = sim.Event{}
	if !v.hostActive {
		// The timer interrupt pends; it is delivered the moment the vCPU
		// next runs (onResumeWork), exactly like a hardware timer raised
		// while the vCPU is preempted or halted.
		v.pendingTick = true
		return
	}
	v.tick()
}

// tick performs the guest scheduler tick and rearms the timer.
func (v *VCPU) tick() {
	now := v.vm.eng.Now()
	v.syncExec()
	prevStamp := v.lastTickStamp
	v.lastTickStamp = now

	// vact kernel instrumentation: detect steal jumps since the last tick.
	steal := v.ent.Steal()
	jump := steal - v.stealAtTick
	v.stealAtTick = steal
	if jump > v.vm.params.StealJumpThreshold {
		v.preemptCount++
		v.becameActiveAt = now
	}

	// Vanilla CFS capacity estimate: fraction of recent wall time not
	// stolen, EMA-smoothed with time-based decay so long inactive windows
	// (which arrive as one late tick) carry their full weight. Only
	// computable while busy.
	if v.curr != nil {
		window := now.Sub(prevStamp)
		if window > 0 {
			frac := 1 - float64(jump)/float64(window)
			if frac < 0 {
				frac = 0
			}
			const tau = float64(32 * sim.Millisecond)
			d := math.Exp2(-float64(window) / tau)
			v.cfsCapacity = v.cfsCapacity*d + 1024*frac*(1-d)
		}
	}

	v.vm.ctr.ticks.Inc()

	// Refresh the LLC-contention factor and re-aim the completion event if
	// the socket's cache pressure changed.
	oldF := v.llcFactor()
	v.refreshLLC()
	if v.llcFactor() != oldF {
		v.scheduleCompletion()
	}

	// Preemption check for the running task.
	if v.curr != nil {
		if best := v.peekBest(); best != nil && v.tickShouldPreempt(best, v.curr, now) {
			v.contextSwitchTo(best)
		}
	}

	if v.vm.hooks.Tick != nil {
		v.vm.hooks.Tick(v)
	}

	// Periodic load balancing runs from whichever vCPU's tick comes due
	// first — balancing needs a really-running CPU to execute on, so a
	// fully inactive or idle VM performs none (unlike a global timer, which
	// would let the guest act while no vCPU runs). The interval carries a
	// little jitter (like Linux's per-domain interval backoff) so it cannot
	// phase-lock against periodic host contention.
	if now.Sub(v.vm.lastBalance) >= v.vm.params.BalancePeriod+v.vm.balanceSlack {
		v.vm.lastBalance = now
		v.vm.balanceSlack = sim.Duration(v.vm.eng.Rand().Int63n(int64(2 * sim.Millisecond)))
		v.vm.periodicBalance()
	}

	v.tickEv = v.vm.eng.After(v.vm.params.TickPeriod, v.tickFire)
}

// tickShouldPreempt decides at tick time whether best should replace curr.
func (v *VCPU) tickShouldPreempt(best, curr *Task, now sim.Time) bool {
	if curr.idlePolicy && !best.idlePolicy {
		return true
	}
	if !curr.idlePolicy && best.idlePolicy {
		return false
	}
	if now.Sub(curr.sliceStart) < v.vm.params.MinGranularity {
		return false
	}
	if v.vm.params.Policy == PolicyEEVDF {
		return v.eevdfTickPreempt(best, curr, int64(v.vm.params.MinGranularity))
	}
	return best.vruntime < curr.vruntime
}

// peekBest returns the most deserving queued task without removing it,
// according to the active scheduling policy.
func (v *VCPU) peekBest() *Task {
	if v.vm.params.Policy == PolicyEEVDF {
		return v.peekBestEEVDF()
	}
	var best *Task
	for _, t := range v.rq {
		if best == nil || taskBefore(t, best) {
			best = t
		}
	}
	return best
}

// taskBefore orders runnable tasks: normal policy before SCHED_IDLE, then
// lower vruntime, then creation order for determinism.
func taskBefore(a, b *Task) bool {
	if a.idlePolicy != b.idlePolicy {
		return !a.idlePolicy
	}
	if a.vruntime != b.vruntime {
		return a.vruntime < b.vruntime
	}
	return a.seq < b.seq
}

// removeFromRQ deletes t from the runqueue slice.
func (v *VCPU) removeFromRQ(t *Task) {
	for i, q := range v.rq {
		if q == t {
			v.rq = append(v.rq[:i], v.rq[i+1:]...)
			return
		}
	}
}

// contextSwitchTo moves curr back to the queue and installs next.
func (v *VCPU) contextSwitchTo(next *Task) {
	v.syncExec()
	prev := v.curr
	if prev != nil {
		prev.state = TaskRunnable
		prev.enqueuedAt = v.vm.eng.Now()
		v.rq = append(v.rq, prev)
	}
	v.compEv.Cancel()
	v.compEv = sim.Event{}
	v.uninstallCurr()
	v.removeFromRQ(next)
	v.install(next)
}

// install makes t the running task of the vCPU.
func (v *VCPU) install(t *Task) {
	now := v.vm.eng.Now()
	queued := now.Sub(t.enqueuedAt)
	t.totalQueueLat += queued
	if t.OnScheduled != nil {
		t.OnScheduled(now, queued)
	}
	t.state = TaskRunning
	t.cpu = v
	t.runStart = now
	t.sliceStart = now
	t.consumeCommDebt()
	v.curr = t
	if t.footprint > 0 {
		v.llcSocket = v.ent.Thread().Socket()
		v.vm.llcLoad[v.llcSocket] += t.footprint
	}
	v.refreshLLC()
	v.execMark = now
	v.vm.ctr.contextSwitches.Inc()
	v.vm.tr.Emit(now, vtrace.KindTaskOn, t.name, int64(v.id), int64(t.id), 0)
	v.scheduleCompletion()
}

// dispatch installs the next task if the vCPU is really running and idle;
// with nothing to do it performs new-idle balancing and then halts.
func (v *VCPU) dispatch() {
	if !v.hostActive || v.curr != nil {
		return
	}
	if len(v.rq) == 0 {
		v.vm.newIdleBalance(v)
		if v.curr != nil {
			// The pull path re-entered dispatch and already installed the
			// migrated task.
			return
		}
	}
	best := v.peekBest()
	if best == nil {
		// Guest idle loop: halt the vCPU. Probers and best-effort tasks
		// keep vCPUs busy instead when present.
		v.idleSince = v.vm.eng.Now()
		v.ent.Block()
		return
	}
	v.removeFromRQ(best)
	v.install(best)
}

// reschedule re-evaluates preemption after a remote wakeup set needResched.
func (v *VCPU) reschedule() {
	if v.curr == nil {
		v.dispatch()
		return
	}
	best := v.peekBest()
	if best == nil {
		return
	}
	if guestWakeupPreempt(best, v.curr, v.vm.params) {
		v.contextSwitchTo(best)
	}
}

// guestWakeupPreempt is the wakeup-preemption rule: normal tasks always
// preempt SCHED_IDLE; under CFS the wakee must lead by the wakeup
// granularity, under EEVDF it must hold an earlier virtual deadline.
func guestWakeupPreempt(wakee, curr *Task, p Params) bool {
	if curr.idlePolicy && !wakee.idlePolicy {
		return true
	}
	if wakee.idlePolicy && !curr.idlePolicy {
		return false
	}
	if p.Policy == PolicyEEVDF {
		slice := int64(p.MinGranularity)
		return wakee.vdeadline(slice) < curr.vdeadline(slice)
	}
	gran := int64(p.WakeupGranularity) * WeightNormal / curr.weight
	return curr.vruntime-wakee.vruntime > gran
}
