// Package guest models the inside of a cloud VM: vCPUs layered on host
// entities, tasks with realistic synchronisation behaviour, and a CFS-like
// kernel scheduler (runqueues ordered by virtual runtime, nice weights, the
// SCHED_IDLE class, per-entity load tracking, scheduler ticks with heartbeat
// semantics, CPU selection, idle and periodic load balancing over
// hierarchical scheduling domains, and cpuset-style allowed masks).
//
// The package deliberately separates two kinds of state:
//
//   - physics: whether a vCPU is really running on its core and how fast.
//     This drives task progress but is NOT readable by scheduling policy —
//     a real guest kernel has no such oracle.
//   - guest-visible state: steal-time counters, per-tick heartbeat stamps,
//     runqueue contents, PELT. vSched (internal/core) consumes only these.
package guest

import (
	"math"

	"vsched/internal/sim"
	"vsched/internal/vtrace"
)

// TaskState is the guest-scheduler state of a task.
type TaskState int

const (
	// TaskSleeping: blocked (timer, lock, condition, barrier).
	TaskSleeping TaskState = iota
	// TaskRunnable: on a runqueue, waiting to run.
	TaskRunnable
	// TaskRunning: the current task of some vCPU.
	TaskRunning
	// TaskExited: finished; never scheduled again.
	TaskExited
)

func (s TaskState) String() string {
	switch s {
	case TaskSleeping:
		return "sleeping"
	case TaskRunnable:
		return "runnable"
	case TaskRunning:
		return "running"
	case TaskExited:
		return "exited"
	}
	return "invalid"
}

// Weights of the scheduling policies, mirroring Linux: nice-0 tasks weigh
// 1024, SCHED_IDLE tasks weigh 3 (they only consume otherwise-idle cycles).
const (
	WeightNormal = 1024
	WeightIdle   = 3
)

// SegmentKind enumerates what a task does next.
type SegmentKind int

const (
	// SegCompute burns Cycles of CPU work.
	SegCompute SegmentKind = iota
	// SegSleep blocks for Dur of virtual time (timer wakeup).
	SegSleep
	// SegAcquire takes Mutex, blocking if held.
	SegAcquire
	// SegAcquireSpin takes Mutex, busy-spinning (consuming CPU) while held —
	// user-level spinlock behaviour, the LHP-prone pattern.
	SegAcquireSpin
	// SegRelease releases Mutex and continues.
	SegRelease
	// SegCondWait blocks on Cond until signalled.
	SegCondWait
	// SegCondSignal wakes one waiter of Cond and continues.
	SegCondSignal
	// SegCondBroadcast wakes all waiters of Cond and continues.
	SegCondBroadcast
	// SegSemWait decrements Sem, blocking at zero.
	SegSemWait
	// SegSemPost increments Sem, waking one waiter, and continues.
	SegSemPost
	// SegBarrier blocks until all parties of Barrier arrive.
	SegBarrier
	// SegMigrate moves the task itself to vCPU CPU and continues (the
	// sched_setaffinity self-migration used by Fig. 3's migration mode).
	SegMigrate
	// SegYield requeues the task, letting equal-vruntime tasks run.
	SegYield
	// SegExit terminates the task.
	SegExit
)

// Segment is one step of a task's program.
type Segment struct {
	Kind    SegmentKind
	Cycles  float64 // SegCompute; math.Inf(1) for run-forever tasks
	Dur     sim.Duration
	Mutex   *Mutex
	Cond    *Cond
	Sem     *Semaphore
	Barrier *Barrier
	CPU     int // SegMigrate target vCPU index
}

// Convenience segment constructors keep workload code terse.
func Compute(cycles float64) Segment { return Segment{Kind: SegCompute, Cycles: cycles} }
func ComputeForever() Segment        { return Segment{Kind: SegCompute, Cycles: math.Inf(1)} }
func Sleep(d sim.Duration) Segment   { return Segment{Kind: SegSleep, Dur: d} }
func Acquire(m *Mutex) Segment       { return Segment{Kind: SegAcquire, Mutex: m} }
func AcquireSpin(m *Mutex) Segment   { return Segment{Kind: SegAcquireSpin, Mutex: m} }
func Release(m *Mutex) Segment       { return Segment{Kind: SegRelease, Mutex: m} }
func Wait(c *Cond) Segment           { return Segment{Kind: SegCondWait, Cond: c} }
func Signal(c *Cond) Segment         { return Segment{Kind: SegCondSignal, Cond: c} }
func Broadcast(c *Cond) Segment      { return Segment{Kind: SegCondBroadcast, Cond: c} }
func SemWait(s *Semaphore) Segment   { return Segment{Kind: SegSemWait, Sem: s} }
func SemPost(s *Semaphore) Segment   { return Segment{Kind: SegSemPost, Sem: s} }
func BarrierWait(b *Barrier) Segment { return Segment{Kind: SegBarrier, Barrier: b} }
func MigrateTo(cpu int) Segment      { return Segment{Kind: SegMigrate, CPU: cpu} }
func Yield() Segment                 { return Segment{Kind: SegYield} }
func Exit() Segment                  { return Segment{Kind: SegExit} }

// Behavior produces a task's next program segment. Implementations are
// closures holding workload state; they are invoked each time the previous
// segment completes.
type Behavior func(now sim.Time) Segment

// Task is a schedulable guest thread.
type Task struct {
	vm   *VM
	id   int
	name string

	weight     int64
	idlePolicy bool // SCHED_IDLE
	// LatencySensitive marks tasks the operator declared latency-critical
	// (the paper's user-space hints via util-clamp / latency-nice). bvs
	// combines this with PELT smallness.
	LatencySensitive bool
	// footprint is the task's cache working set in MB; tasks sharing a
	// socket whose footprints exceed the LLC slow each other down.
	footprint float64

	state    TaskState
	cpu      *VCPU // runqueue the task is (or was last) on
	vruntime int64
	seq      int

	group    *CGroup
	affinity int // pinned vCPU index, or -1
	startOn  int // first-wakeup vCPU index, or -1
	// sliceReq is the EEVDF request size (latency preference); 0 = default.
	sliceReq int64

	behavior Behavior
	// remaining cycles in the in-progress compute segment
	remaining float64
	// spinning marks a task burning CPU while logically waiting (spinlock or
	// spin-barrier); its compute is aborted when the resource is granted.
	spinMutex   *Mutex
	spinBarrier *Barrier

	// Execution accounting (guest-visible; a kernel tracks all of these).
	enqueuedAt    sim.Time     // when it last became runnable
	lastMigrate   sim.Time     // when the balancer last moved it (rate limit)
	runStart      sim.Time     // when it last became current
	sliceStart    sim.Time     // when it last got on CPU (for preemption)
	lastRan       sim.Time     // cache-hot reference for load balancing
	totalRun      sim.Duration // cumulative on-CPU-and-active time
	totalQueueLat sim.Duration // cumulative runnable->running latency
	wakeups       uint64

	// PELT utilisation tracking, 0..1024 scale.
	util     float64
	lastPELT sim.Time

	// commDebt is extra work (cycles) charged by cross-socket communication:
	// cache lines the task must pull before making progress. It is paid the
	// next time the task gets on CPU.
	commDebt float64

	exited bool
	OnExit func(now sim.Time)
	// OnScheduled, if set, observes every runnable->running transition with
	// the queue latency the task just experienced (Tailbench-style queue
	// time measurement).
	OnScheduled func(now sim.Time, queued sim.Duration)
}

// Name returns the task name.
func (t *Task) Name() string { return t.name }

// SetWeight changes the task's CFS weight at runtime (renice).
func (t *Task) SetWeight(w int64) {
	if w <= 0 {
		panic("guest: non-positive task weight")
	}
	t.weight = w
}

// SetIdlePolicy moves the task into or out of SCHED_IDLE at runtime
// (sched_setscheduler). vcap's probers switch between best-effort (light
// sampling) and elevated priority (heavy sampling) this way.
func (t *Task) SetIdlePolicy(idle bool, weight int64) {
	if t.idlePolicy != idle {
		into := int64(0)
		if idle {
			into = 1
		}
		t.vm.tr.Emit(t.vm.eng.Now(), vtrace.KindIdlePolicy, t.name, int64(t.id), into, 0)
	}
	t.idlePolicy = idle
	if weight > 0 {
		t.weight = weight
	} else if idle {
		t.weight = WeightIdle
	} else {
		t.weight = WeightNormal
	}
}

// Group returns the task's cgroup.
func (t *Task) Group() *CGroup { return t.group }

// ID returns the VM-unique task id.
func (t *Task) ID() int { return t.id }

// State returns the scheduler state.
func (t *Task) State() TaskState { return t.state }

// CPU returns the vCPU whose runqueue the task is (or was last) on.
func (t *Task) CPU() *VCPU { return t.cpu }

// IsIdlePolicy reports whether the task is SCHED_IDLE.
func (t *Task) IsIdlePolicy() bool { return t.idlePolicy }

// Util returns the task's PELT utilisation estimate (0..1024), decayed to
// the current instant.
func (t *Task) Util() float64 {
	return decayedUtil(t.util, t.vm.eng.Now().Sub(t.lastPELT))
}

// TotalRun returns cumulative time the task spent executing while its vCPU
// was really active.
func (t *Task) TotalRun() sim.Duration { return t.totalRun }

// RunStart returns when the task last became the current task of a vCPU.
func (t *Task) RunStart() sim.Time { return t.runStart }

// TotalQueueLatency returns the cumulative time the task spent waiting on
// runqueues before being scheduled.
func (t *Task) TotalQueueLatency() sim.Duration { return t.totalQueueLat }

// Wakeups returns how many times the task became runnable.
func (t *Task) Wakeups() uint64 { return t.wakeups }

// Exited reports whether the task has terminated.
func (t *Task) Exited() bool { return t.exited }

// pelt constants: Linux's util halves every 32ms of decay.
const peltTau = 32 * sim.Millisecond

func decayedUtil(u float64, elapsed sim.Duration) float64 {
	if elapsed <= 0 {
		return u
	}
	return u * math.Exp2(-float64(elapsed)/float64(peltTau))
}

// consumeCommDebt folds accumulated communication cost into the task's
// in-progress compute segment.
func (t *Task) consumeCommDebt() {
	if t.commDebt > 0 && !math.IsInf(t.remaining, 1) {
		t.remaining += t.commDebt
		t.commDebt = 0
	}
}

// updatePELT folds an interval ending now into the utilisation average.
// ranDelta is how much of the interval the task actually executed.
func (t *Task) updatePELT(now sim.Time, ranDelta sim.Duration) {
	elapsed := now.Sub(t.lastPELT)
	if elapsed <= 0 {
		return
	}
	d := math.Exp2(-float64(elapsed) / float64(peltTau))
	frac := float64(ranDelta) / float64(elapsed)
	if frac > 1 {
		frac = 1
	}
	t.util = t.util*d + 1024*(1-d)*frac
	t.lastPELT = now
}
