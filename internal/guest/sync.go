package guest

// Synchronisation primitives for guest tasks. These manipulate task states
// directly through the VM — they are the simulation equivalents of futexes
// (Mutex/Cond/Semaphore), pthread barriers, and user-level spinlocks.

// Mutex is a blocking lock with FIFO waiters. Tasks acquire it with
// Acquire/AcquireSpin segments.
type Mutex struct {
	owner    *Task
	waiters  []*Task // blocking waiters, FIFO
	spinners []*Task // busy-waiting contenders (AcquireSpin), FIFO
}

// Locked reports whether the mutex is held.
func (m *Mutex) Locked() bool { return m.owner != nil }

// Owner returns the holding task, or nil.
func (m *Mutex) Owner() *Task { return m.owner }

// Cond is a condition/event channel: tasks wait, others signal or broadcast.
type Cond struct {
	waiters []*Task
}

// Waiters returns the number of blocked waiters.
func (c *Cond) Waiters() int { return len(c.waiters) }

// Semaphore is a counting semaphore; used as the ready-queue primitive for
// request-processing workloads.
type Semaphore struct {
	count   int
	waiters []*Task
}

// NewSemaphore returns a semaphore with an initial count.
func NewSemaphore(n int) *Semaphore { return &Semaphore{count: n} }

// Count returns the current counter value (not counting waiters).
func (s *Semaphore) Count() int { return s.count }

// Waiters returns the number of blocked waiters.
func (s *Semaphore) Waiters() int { return len(s.waiters) }

// Barrier blocks parties until all have arrived, then releases the
// generation together. Spin controls whether waiting tasks burn CPU
// (user-level spin barrier — the pattern behind the paper's streamcluster
// and volrend anomalies) or block.
type Barrier struct {
	parties int
	arrived []*Task
	Spin    bool
}

// NewBarrier returns a barrier for n parties.
func NewBarrier(n int) *Barrier {
	if n <= 0 {
		panic("guest: barrier needs at least one party")
	}
	return &Barrier{parties: n}
}

// Arrived returns how many tasks are currently waiting at the barrier.
func (b *Barrier) Arrived() int { return len(b.arrived) }

// Parties returns the barrier size.
func (b *Barrier) Parties() int { return b.parties }
