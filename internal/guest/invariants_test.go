package guest

import (
	"fmt"
	"math/rand"
	"testing"

	"vsched/internal/host"
	"vsched/internal/sim"
)

// checkInvariants asserts structural properties that must hold at any
// quiescent point of the simulation:
//
//  1. task conservation: every live task is in exactly one place — the curr
//     of one vCPU, on exactly one runqueue, or blocked;
//  2. the curr of a vCPU is never simultaneously queued;
//  3. runqueues contain only TaskRunnable tasks, curr is TaskRunning;
//  4. affinity-pinned tasks sit on their pinned vCPU;
//  5. socket footprint accounting matches the installed tasks.
func checkInvariants(t *testing.T, vm *VM, tasks []*Task) {
	t.Helper()
	where := map[*Task]string{}
	note := func(tk *Task, place string) {
		if prev, dup := where[tk]; dup {
			t.Fatalf("task %s in two places: %s and %s", tk.Name(), prev, place)
		}
		where[tk] = place
	}
	llc := make([]float64, len(vm.llcLoad))
	for _, v := range vm.vcpus {
		if v.curr != nil {
			note(v.curr, fmt.Sprintf("curr of v%d", v.id))
			if v.curr.state != TaskRunning {
				t.Fatalf("curr of v%d has state %v", v.id, v.curr.state)
			}
			if v.curr.cpu != v {
				t.Fatalf("curr of v%d thinks it is on v%d", v.id, v.curr.cpu.id)
			}
			if v.curr.footprint > 0 {
				llc[v.llcSocket] += v.curr.footprint
			}
		}
		for _, tk := range v.rq {
			note(tk, fmt.Sprintf("rq of v%d", v.id))
			if tk.state != TaskRunnable {
				t.Fatalf("queued task %s has state %v", tk.Name(), tk.state)
			}
			if tk.cpu != v {
				t.Fatalf("queued task %s on v%d thinks it is on v%d", tk.Name(), v.id, tk.cpu.id)
			}
		}
	}
	for _, tk := range tasks {
		place, placed := where[tk]
		switch tk.state {
		case TaskRunning, TaskRunnable:
			if !placed {
				t.Fatalf("task %s is %v but not installed anywhere", tk.Name(), tk.state)
			}
		case TaskSleeping, TaskExited:
			if placed {
				t.Fatalf("task %s is %v but present at %s", tk.Name(), tk.state, place)
			}
		}
		if tk.affinity >= 0 && (tk.state == TaskRunning || tk.state == TaskRunnable) {
			if tk.cpu.id != tk.affinity {
				t.Fatalf("pinned task %s on v%d, pinned to %d", tk.Name(), tk.cpu.id, tk.affinity)
			}
		}
	}
	for s := range llc {
		diff := llc[s] - vm.llcLoad[s]
		if diff < -1e-9 || diff > 1e-9 {
			t.Fatalf("socket %d footprint drift: tracked %.3f actual %.3f", s, vm.llcLoad[s], llc[s])
		}
	}
}

// TestSchedulerInvariantsUnderStress runs a randomized scenario — random
// topology, contenders, task mixes, migrations and cgroup churn — and
// verifies the invariants at many quiescent points.
func TestSchedulerInvariantsUnderStress(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			eng := sim.NewEngine(seed)
			cfg := host.DefaultConfig()
			cfg.Sockets = 1 + rng.Intn(2)
			cfg.CoresPerSocket = 2 + rng.Intn(4)
			cfg.ThreadsPerCore = 1 + rng.Intn(2)
			h := host.New(eng, cfg)
			n := h.NumThreads()
			var threads []*host.Thread
			for i := 0; i < n; i++ {
				threads = append(threads, h.Thread(i))
			}
			vm := NewVM(h, "vm", threads, DefaultParams())
			vm.Start()

			// Random co-tenants.
			for i := 0; i < n; i++ {
				switch rng.Intn(3) {
				case 0:
					host.NewStressor(h, "s", h.Thread(i), 512+rng.Int63n(2048))
				case 1:
					host.NewPatternContender(h, "p", h.Thread(i),
						sim.Duration(1+rng.Intn(8))*sim.Millisecond,
						sim.Duration(1+rng.Intn(8))*sim.Millisecond,
						sim.Duration(rng.Intn(5))*sim.Millisecond)
				}
			}

			g := vm.NewGroup("stress")
			var tasks []*Task
			mkBehavior := func(kind int) Behavior {
				m := &Mutex{}
				sem := NewSemaphore(1)
				step := 0
				return func(now sim.Time) Segment {
					step++
					switch kind {
					case 0:
						return Compute(float64(1+rng.Intn(3)) * 5e5)
					case 1:
						if step%2 == 0 {
							return Sleep(sim.Duration(1+rng.Intn(4)) * sim.Millisecond)
						}
						return Compute(2e5)
					case 2:
						switch step % 3 {
						case 0:
							return Acquire(m)
						case 1:
							return Compute(1e5)
						default:
							return Release(m)
						}
					default:
						switch step % 3 {
						case 0:
							return SemWait(sem)
						case 1:
							return Compute(1e5)
						default:
							return SemPost(sem)
						}
					}
				}
			}
			for i := 0; i < 3*n; i++ {
				opts := []TaskOpt{WithGroup(g)}
				if rng.Intn(4) == 0 {
					opts = append(opts, WithIdlePolicy())
				}
				if rng.Intn(5) == 0 {
					opts = append(opts, WithFootprint(1+rng.Float64()*3))
				}
				if rng.Intn(6) == 0 {
					opts = append(opts, WithAffinity(rng.Intn(n)))
				}
				tasks = append(tasks, vm.Spawn(fmt.Sprintf("t%d", i), mkBehavior(rng.Intn(4)), opts...))
			}

			for round := 0; round < 40; round++ {
				eng.RunFor(25 * sim.Millisecond)
				checkInvariants(t, vm, tasks)
				// Cgroup churn: randomly shrink/restore the group's mask.
				if round%7 == 3 {
					mask := make([]bool, n)
					any := false
					for i := range mask {
						mask[i] = rng.Intn(3) > 0
						any = any || mask[i]
					}
					if !any {
						mask[0] = true
					}
					vm.SetGroupMask(g, mask)
				}
				if round%7 == 6 {
					vm.SetGroupMask(g, fullMask(n))
				}
				// Occasional host-side vCPU repinning (topology change).
				if round%11 == 5 {
					vm.VCPU(rng.Intn(len(vm.vcpus))).Entity().Migrate(h.Thread(rng.Intn(n)))
				}
			}
			// Mask respected at the end for unpinned tasks after full
			// enforcement rounds.
			eng.RunFor(200 * sim.Millisecond)
			checkInvariants(t, vm, tasks)
		})
	}
}

// TestMinVruntimeMonotone asserts the runqueue clock never goes backwards.
func TestMinVruntimeMonotone(t *testing.T) {
	eng, _, vm := testSetup(t, 1, 2, 1, 2)
	for i := 0; i < 4; i++ {
		i := i
		step := 0
		vm.Spawn(fmt.Sprintf("w%d", i), func(now sim.Time) Segment {
			step++
			if step%2 == 0 {
				return Sleep(sim.Duration(1+i) * sim.Millisecond)
			}
			return Compute(5e5)
		})
	}
	prev := make([]int64, 2)
	for round := 0; round < 200; round++ {
		eng.RunFor(1 * sim.Millisecond)
		for _, v := range vm.VCPUs() {
			if v.minVruntime < prev[v.ID()] {
				t.Fatalf("minVruntime of v%d went backwards: %d -> %d",
					v.ID(), prev[v.ID()], v.minVruntime)
			}
			prev[v.ID()] = v.minVruntime
		}
	}
}

// TestGroupMaskEventuallyEnforced verifies that after a mask change every
// unpinned group task ends up on an allowed vCPU, even when some vCPUs were
// inactive at change time (the stopper retries via the balancer).
func TestGroupMaskEventuallyEnforced(t *testing.T) {
	eng, h, vm := testSetup(t, 1, 8, 1, 8)
	for i := 0; i < 8; i++ {
		host.NewPatternContender(h, "p", h.Thread(i), 4*sim.Millisecond, 4*sim.Millisecond,
			sim.Duration(i)*sim.Millisecond)
	}
	g := vm.NewGroup("g")
	var tasks []*Task
	for i := 0; i < 8; i++ {
		tasks = append(tasks, vm.Spawn(fmt.Sprintf("w%d", i),
			func(sim.Time) Segment { return ComputeForever() }, WithGroup(g)))
	}
	eng.RunFor(50 * sim.Millisecond)
	mask := []bool{true, true, true, false, false, false, false, false}
	vm.SetGroupMask(g, mask)
	eng.RunFor(500 * sim.Millisecond)
	for _, tk := range tasks {
		if tk.CPU().ID() >= 3 {
			t.Fatalf("task %s still on banned vCPU %d", tk.Name(), tk.CPU().ID())
		}
	}
}

// TestTaskStatesAreTerminalOnExit ensures exited tasks never reappear.
func TestTaskStatesAreTerminalOnExit(t *testing.T) {
	eng, _, vm := testSetup(t, 1, 2, 1, 2)
	done := 0
	var tasks []*Task
	for i := 0; i < 4; i++ {
		tk := vm.Spawn("t", loopCompute(1e5, 3, nil))
		tk.OnExit = func(sim.Time) { done++ }
		tasks = append(tasks, tk)
	}
	eng.RunFor(100 * sim.Millisecond)
	if done != 4 {
		t.Fatalf("done=%d", done)
	}
	for _, tk := range tasks {
		if tk.State() != TaskExited {
			t.Fatalf("task %s state %v after exit", tk.Name(), tk.State())
		}
	}
	// Waking an exited task must be a no-op.
	vm.wakeTask(tasks[0], nil)
	eng.RunFor(10 * sim.Millisecond)
	if tasks[0].State() != TaskExited {
		t.Fatal("exited task resurrected")
	}
}

// TestPELTUtilProperty: for arbitrary duty cycles on an uncontended vCPU,
// the PELT estimate must stay within [0, 1024] at every sample and its
// steady-state value must track the true duty ratio within PELT's
// half-life-bounded error.
func TestPELTUtilProperty(t *testing.T) {
	check := func(seed int64) {
		rng := rand.New(rand.NewSource(seed))
		// Duty between 10% and 90%, period between 2ms and 40ms.
		period := sim.Duration(2+rng.Intn(38)) * sim.Millisecond
		duty := 0.1 + 0.8*rng.Float64()
		work := sim.Duration(float64(period) * duty)
		slp := period - work

		eng, _, vm := testSetup(t, 1, 1, 1, 1)
		_ = eng
		state := 0
		task := vm.Spawn("d", func(now sim.Time) Segment {
			state = 1 - state
			if state == 1 {
				return Compute(float64(work)) // speed 1.0: cycles == ns
			}
			return Sleep(slp)
		})
		want := 1024 * duty
		for i := 0; i < 200; i++ {
			vm.Host().Engine().RunFor(period / 4)
			u := task.Util()
			if u < 0 || u > 1024 {
				t.Fatalf("seed %d: PELT out of range: %v", seed, u)
			}
		}
		// Steady state: average a few samples against the duty ratio. PELT's
		// 32ms half-life ripples within a period, so tolerate a wide band.
		var sum float64
		const samples = 32
		for i := 0; i < samples; i++ {
			vm.Host().Engine().RunFor(period / 3)
			sum += task.Util()
		}
		got := sum / samples
		if got < want*0.55 || got > want*1.45+64 {
			t.Fatalf("seed %d: duty %.2f period %v: PELT avg %.0f want ~%.0f",
				seed, duty, period, got, want)
		}
	}
	for seed := int64(0); seed < 12; seed++ {
		check(seed)
	}
}
