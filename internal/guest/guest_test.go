package guest

import (
	"math"
	"testing"

	"vsched/internal/host"
	"vsched/internal/sim"
)

// testSetup builds a host with the given core layout (single-thread cores by
// default) and a VM with one vCPU per thread.
func testSetup(t *testing.T, sockets, cores, threadsPer int, nvcpu int) (*sim.Engine, *host.Host, *VM) {
	t.Helper()
	eng := sim.NewEngine(1)
	cfg := host.DefaultConfig()
	cfg.Sockets = sockets
	cfg.CoresPerSocket = cores
	cfg.ThreadsPerCore = threadsPer
	cfg.TurboFactor = 1.0 // keep speeds flat unless a test wants DVFS
	cfg.BaseSpeed = 1.0   // 1 cycle per ns simplifies arithmetic
	h := host.New(eng, cfg)
	var threads []*host.Thread
	for i := 0; i < nvcpu; i++ {
		threads = append(threads, h.Thread(i))
	}
	vm := NewVM(h, "vm", threads, DefaultParams())
	vm.Start()
	return eng, h, vm
}

// loopCompute returns a behavior that computes `work` cycles `iters` times,
// then exits; done is set on exit.
func loopCompute(work float64, iters int, done *bool) Behavior {
	i := 0
	return func(now sim.Time) Segment {
		if i >= iters {
			if done != nil {
				*done = true
			}
			return Exit()
		}
		i++
		return Compute(work)
	}
}

func TestSingleTaskComputesAndExits(t *testing.T) {
	eng, _, vm := testSetup(t, 1, 4, 1, 4)
	done := false
	var exitAt sim.Time
	tk := vm.Spawn("worker", loopCompute(1e6, 10, &done)) // 10ms of work at 1c/ns
	tk.OnExit = func(now sim.Time) { exitAt = now }
	eng.RunFor(50 * sim.Millisecond)
	if !done {
		t.Fatal("task did not finish")
	}
	if exitAt < sim.Time(10*sim.Millisecond) || exitAt > sim.Time(11*sim.Millisecond) {
		t.Fatalf("exit at %v, want ~10ms", exitAt)
	}
	if tk.TotalRun() < 10*sim.Millisecond-sim.Microsecond {
		t.Fatalf("totalRun=%v", tk.TotalRun())
	}
	if tk.State() != TaskExited || !tk.Exited() {
		t.Fatal("task state wrong after exit")
	}
}

func TestSleepTiming(t *testing.T) {
	eng, _, vm := testSetup(t, 1, 2, 1, 2)
	var wakeRuns []sim.Time
	step := 0
	vm.Spawn("sleeper", func(now sim.Time) Segment {
		step++
		switch step {
		case 1:
			return Sleep(5 * sim.Millisecond)
		case 2:
			wakeRuns = append(wakeRuns, now)
			return Sleep(7 * sim.Millisecond)
		case 3:
			wakeRuns = append(wakeRuns, now)
			return Exit()
		}
		return Exit()
	})
	eng.RunFor(30 * sim.Millisecond)
	if len(wakeRuns) != 2 {
		t.Fatalf("wakeups=%d", len(wakeRuns))
	}
	if wakeRuns[0] < sim.Time(5*sim.Millisecond) || wakeRuns[0] > sim.Time(6*sim.Millisecond) {
		t.Fatalf("first wake at %v", wakeRuns[0])
	}
	if d := wakeRuns[1] - wakeRuns[0]; d < sim.Time(7*sim.Millisecond) || d > sim.Time(8*sim.Millisecond) {
		t.Fatalf("second sleep lasted %v", d)
	}
}

func TestFairSharingOnOneVCPU(t *testing.T) {
	eng, _, vm := testSetup(t, 1, 1, 1, 1)
	a := vm.Spawn("a", func(sim.Time) Segment { return ComputeForever() })
	b := vm.Spawn("b", func(sim.Time) Segment { return ComputeForever() })
	eng.RunFor(500 * sim.Millisecond)
	ra, rb := float64(a.TotalRun()), float64(b.TotalRun())
	if ra+rb < float64(490*sim.Millisecond) {
		t.Fatalf("vCPU underused: %v", ra+rb)
	}
	if r := ra / rb; r < 0.9 || r > 1.1 {
		t.Fatalf("unfair: %v vs %v", ra, rb)
	}
}

func TestSchedIdleYieldsToNormal(t *testing.T) {
	eng, _, vm := testSetup(t, 1, 1, 1, 1)
	be := vm.Spawn("best-effort", func(sim.Time) Segment { return ComputeForever() }, WithIdlePolicy())
	eng.RunFor(10 * sim.Millisecond)
	if be.State() != TaskRunning {
		t.Fatal("idle task should run on an otherwise idle vCPU")
	}
	n := vm.Spawn("normal", func(sim.Time) Segment { return ComputeForever() })
	eng.RunFor(100 * sim.Millisecond)
	if n.State() != TaskRunning {
		t.Fatalf("normal task must dominate, state=%v", n.State())
	}
	// The idle-policy task should have received almost nothing since.
	if be.TotalRun() > 15*sim.Millisecond {
		t.Fatalf("sched_idle got too much: %v", be.TotalRun())
	}
	if u := n.Util(); u < 900 {
		t.Fatalf("cpu-bound util=%v want near 1024", u)
	}
}

func TestMutexBlockingAndFIFO(t *testing.T) {
	eng, _, vm := testSetup(t, 1, 4, 1, 4)
	m := &Mutex{}
	order := []string{}
	mk := func(name string) Behavior {
		step := 0
		return func(now sim.Time) Segment {
			step++
			switch step {
			case 1:
				return Acquire(m)
			case 2:
				order = append(order, name)
				return Compute(2e6) // 2ms critical section
			case 3:
				return Release(m)
			default:
				return Exit()
			}
		}
	}
	vm.Spawn("t1", mk("t1"), StartOn(0))
	vm.Spawn("t2", mk("t2"), StartOn(1))
	vm.Spawn("t3", mk("t3"), StartOn(2))
	eng.RunFor(20 * sim.Millisecond)
	if len(order) != 3 {
		t.Fatalf("critical sections run: %v", order)
	}
	if m.Locked() {
		t.Fatal("mutex should end free")
	}
}

func TestSemaphoreProducerConsumer(t *testing.T) {
	eng, _, vm := testSetup(t, 1, 2, 1, 2)
	sem := NewSemaphore(0)
	consumed := 0
	vm.Spawn("consumer", func(now sim.Time) Segment {
		if consumed >= 5 {
			return Exit()
		}
		if consumed > 0 || sem.Count() >= 0 { // consume one per wait
		}
		consumed++
		return SemWait(sem)
	}, StartOn(0))
	prodStep := 0
	vm.Spawn("producer", func(now sim.Time) Segment {
		prodStep++
		if prodStep > 10 {
			return Exit()
		}
		if prodStep%2 == 1 {
			return Compute(1e5)
		}
		return SemPost(sem)
	}, StartOn(1))
	eng.RunFor(50 * sim.Millisecond)
	if consumed < 5 {
		t.Fatalf("consumed=%d", consumed)
	}
}

func TestBarrierReleasesAllParties(t *testing.T) {
	eng, _, vm := testSetup(t, 1, 4, 1, 4)
	b := NewBarrier(3)
	passed := 0
	mk := func(work float64) Behavior {
		step := 0
		return func(now sim.Time) Segment {
			step++
			switch step {
			case 1:
				return Compute(work)
			case 2:
				return BarrierWait(b)
			case 3:
				passed++
				return Exit()
			}
			return Exit()
		}
	}
	vm.Spawn("fast", mk(1e5), StartOn(0))
	vm.Spawn("mid", mk(1e6), StartOn(1))
	vm.Spawn("slow", mk(5e6), StartOn(2))
	eng.RunFor(3 * sim.Millisecond)
	if passed != 0 {
		t.Fatal("barrier released early")
	}
	eng.RunFor(10 * sim.Millisecond)
	if passed != 3 {
		t.Fatalf("passed=%d", passed)
	}
	if b.Arrived() != 0 {
		t.Fatal("barrier not reset")
	}
}

func TestSpinLockBurnsCPUAndLHPEmerges(t *testing.T) {
	eng, h, vm := testSetup(t, 1, 2, 1, 2)
	m := &Mutex{}
	holderSteps, spinnerGot := 0, false
	holder := func(now sim.Time) Segment {
		holderSteps++
		switch holderSteps {
		case 1:
			return AcquireSpin(m)
		case 2:
			return Compute(20e6) // long critical section: 20ms
		case 3:
			return Release(m)
		}
		return Exit()
	}
	spinner := func(now sim.Time) Segment {
		if m.Owner() != nil || spinnerGot {
			if spinnerGot {
				return Exit()
			}
		}
		switch {
		case !spinnerGot:
			spinnerGot = true
			return AcquireSpin(m)
		}
		return Exit()
	}
	vm.Spawn("holder", holder, StartOn(0))
	eng.RunFor(1 * sim.Millisecond)
	sp := vm.Spawn("spinner", spinner, StartOn(1))
	// Preempt the holder's vCPU with an RT contender: the spinner now burns
	// CPU while the lock holder is stalled — lock-holder preemption.
	host.NewPatternContender(h, "noisy", h.Thread(0), 10*sim.Millisecond, 100*sim.Millisecond, 2*sim.Millisecond)
	eng.RunFor(5 * sim.Millisecond)
	if sp.State() != TaskRunning {
		t.Fatalf("spinner should be burning CPU, state=%v", sp.State())
	}
	if m.Owner() == nil || m.Owner().Name() != "holder" {
		t.Fatal("holder should still own the lock while stalled")
	}
	eng.RunFor(60 * sim.Millisecond)
	if m.Owner() != nil && m.Owner().Name() == "holder" {
		t.Fatal("lock never handed over")
	}
}

func TestExtendedRunqueueLatency(t *testing.T) {
	// A task woken while its vCPU is preempted waits out the inactive
	// period: queue latency ~ vCPU latency.
	eng, h, vm := testSetup(t, 1, 1, 1, 1)
	// 8ms bursts every 16ms.
	host.NewPatternContender(h, "noisy", h.Thread(0), 8*sim.Millisecond, 8*sim.Millisecond, 0)
	var lat []sim.Duration
	step := 0
	tk := vm.Spawn("ls", func(now sim.Time) Segment {
		step++
		if step > 40 {
			return Exit()
		}
		if step%2 == 1 {
			// Sleep so the next wake lands mid-burst: sleeps of 16ms keep
			// phase; use 11ms to drift across the pattern.
			return Sleep(11 * sim.Millisecond)
		}
		return Compute(1e5) // 100us of work
	})
	tk.OnScheduled = func(now sim.Time, queued sim.Duration) { lat = append(lat, queued) }
	eng.RunFor(600 * sim.Millisecond)
	var max sim.Duration
	for _, l := range lat {
		if l > max {
			max = l
		}
	}
	if max < 4*sim.Millisecond {
		t.Fatalf("expected some wakeups to wait out the inactive period, max queue latency=%v", max)
	}
}

func TestStalledRunningTask(t *testing.T) {
	// Fig. 3 physics: a CPU-bound thread on a 50%-duty vCPU progresses at
	// half speed, though the VM has idle vCPUs.
	eng, h, vm := testSetup(t, 1, 4, 1, 4)
	for i := 0; i < 4; i++ {
		host.NewPatternContender(h, "noisy", h.Thread(i), 5*sim.Millisecond, 5*sim.Millisecond,
			sim.Duration(i)*2500*sim.Microsecond)
	}
	tk := vm.Spawn("worker", func(sim.Time) Segment { return ComputeForever() }, StartOn(0))
	eng.RunFor(500 * sim.Millisecond)
	run := float64(tk.TotalRun())
	frac := run / float64(500*sim.Millisecond)
	if frac < 0.40 || frac > 0.60 {
		t.Fatalf("stalled task should progress ~50%%, got %.2f", frac)
	}
}

func TestSelfMigrationHarvestsIdleVCPUs(t *testing.T) {
	// Fig. 3 migration mode: hopping to the next vCPU every 4ms harvests
	// active periods; progress should be much better than 50%.
	eng, h, vm := testSetup(t, 1, 4, 1, 4)
	for i := 0; i < 4; i++ {
		host.NewPatternContender(h, "noisy", h.Thread(i), 5*sim.Millisecond, 5*sim.Millisecond,
			sim.Duration(i)*2500*sim.Microsecond)
	}
	// The hopper emulates Fig. 3's migration mode: it knows the contender
	// pattern (5ms on / 5ms off, phase i*2.5ms) and hops to the vCPU with
	// the longest remaining active window.
	bestActive := func(now sim.Time) int {
		period := sim.Time(10 * sim.Millisecond)
		best, bestLeft := 0, sim.Time(-1)
		for i := 0; i < 4; i++ {
			phase := sim.Time(i) * sim.Time(2500*sim.Microsecond)
			pos := (now - phase) % period
			if pos < 0 {
				pos += period
			}
			if pos >= sim.Time(5*sim.Millisecond) { // active window [5,10)
				if left := period - pos; left > bestLeft {
					best, bestLeft = i, left
				}
			}
		}
		return best
	}
	step := 0
	tk := vm.Spawn("hopper", func(now sim.Time) Segment {
		step++
		if step%2 == 1 {
			return Compute(2e6) // ~2ms at full speed
		}
		return MigrateTo(bestActive(now))
	}, StartOn(0))
	eng.RunFor(500 * sim.Millisecond)
	frac := float64(tk.TotalRun()) / float64(500*sim.Millisecond)
	if frac < 0.75 {
		t.Fatalf("self-migrating task should harvest idle vCPUs, progress frac=%.2f", frac)
	}
}

func TestNewIdleBalancePullsWork(t *testing.T) {
	eng, _, vm := testSetup(t, 1, 4, 1, 4)
	// Two CPU hogs dropped on vCPU0; idle vCPUs should pull one over.
	a := vm.Spawn("a", func(sim.Time) Segment { return ComputeForever() }, StartOn(0))
	b := vm.Spawn("b", func(sim.Time) Segment { return ComputeForever() }, StartOn(0))
	eng.RunFor(100 * sim.Millisecond)
	if a.CPU() == b.CPU() {
		t.Fatal("load balancing should spread CPU hogs to idle vCPUs")
	}
	total := a.TotalRun() + b.TotalRun()
	if total < 180*sim.Millisecond {
		t.Fatalf("after spreading, both should run ~full: %v", total)
	}
}

func TestSelectCPUSpreadsWakeups(t *testing.T) {
	eng, _, vm := testSetup(t, 1, 4, 1, 4)
	seen := map[int]bool{}
	for i := 0; i < 4; i++ {
		tk := vm.Spawn("w", func(sim.Time) Segment { return ComputeForever() })
		_ = tk
	}
	eng.RunFor(50 * sim.Millisecond)
	for _, v := range vm.VCPUs() {
		if v.Curr() != nil {
			seen[v.ID()] = true
		}
	}
	if len(seen) != 4 {
		t.Fatalf("4 hogs should occupy 4 vCPUs, got %d", len(seen))
	}
}

func TestSMTAwareSelectionWithBelief(t *testing.T) {
	// 4 cores x 2 threads, 8 vCPUs pinned 1:1. With correct SMT belief,
	// 4 CPU hogs should land on 4 distinct cores.
	eng, h, vm := testSetup(t, 1, 4, 2, 8)
	belief := DefaultBelief(8)
	for i := 0; i < 8; i++ {
		belief.CoreOf[i] = i / 2
	}
	vm.SetTopology(belief)
	for i := 0; i < 4; i++ {
		vm.Spawn("hog", func(sim.Time) Segment { return ComputeForever() })
	}
	eng.RunFor(200 * sim.Millisecond)
	cores := map[int]int{}
	for _, v := range vm.VCPUs() {
		if v.Curr() != nil {
			th := v.Entity().Thread()
			cores[th.Core()]++
		}
	}
	if len(cores) != 4 {
		t.Fatalf("SMT-aware placement should use 4 distinct cores, got %v", cores)
	}
	_ = h
}

func TestCgroupMaskEvicts(t *testing.T) {
	eng, _, vm := testSetup(t, 1, 4, 1, 4)
	g := vm.NewGroup("workload")
	var tasks []*Task
	for i := 0; i < 4; i++ {
		tasks = append(tasks, vm.Spawn("w", func(sim.Time) Segment { return ComputeForever() }, WithGroup(g)))
	}
	eng.RunFor(20 * sim.Millisecond)
	mask := []bool{true, true, false, false}
	vm.SetGroupMask(g, mask)
	eng.RunFor(50 * sim.Millisecond)
	for _, tk := range tasks {
		if tk.CPU().ID() >= 2 {
			t.Fatalf("task %s still on banned vCPU %d", tk.Name(), tk.CPU().ID())
		}
	}
	// Banned vCPUs stay empty afterwards.
	if vm.VCPU(2).nrRunning() != 0 || vm.VCPU(3).nrRunning() != 0 {
		t.Fatal("banned vCPUs still have group tasks")
	}
}

func TestMisfitMigrationWithPublishedCapacity(t *testing.T) {
	eng, h, vm := testSetup(t, 1, 4, 1, 4)
	// vCPU3's thread is twice as fast; publish honest capacities.
	h.Thread(3).SetSpeedFactor(2.0)
	for i := 0; i < 3; i++ {
		vm.VCPU(i).PublishCapacity(1024)
	}
	vm.VCPU(3).PublishCapacity(2048)
	tk := vm.Spawn("hog", func(sim.Time) Segment { return ComputeForever() }, StartOn(0))
	eng.RunFor(300 * sim.Millisecond)
	if tk.CPU().ID() != 3 {
		t.Fatalf("misfit hog should migrate to the fast vCPU, on %d", tk.CPU().ID())
	}
}

func TestHeartbeatGoesStaleWhenInactive(t *testing.T) {
	eng, h, vm := testSetup(t, 1, 2, 1, 2)
	vm.Spawn("busy", func(sim.Time) Segment { return ComputeForever() }, StartOn(0))
	eng.RunFor(20 * sim.Millisecond)
	// Long RT burst: vCPU0 inactive for 30ms.
	host.NewPatternContender(h, "noisy", h.Thread(0), 30*sim.Millisecond, 200*sim.Millisecond, 0)
	eng.RunFor(10 * sim.Millisecond)
	v0 := vm.VCPU(0)
	stale := eng.Now().Sub(v0.Heartbeat())
	if stale < 5*sim.Millisecond {
		t.Fatalf("heartbeat should be stale during inactivity, age=%v", stale)
	}
	eng.RunFor(25 * sim.Millisecond) // burst over; ticks resume
	stale = eng.Now().Sub(v0.Heartbeat())
	if stale > 2*sim.Millisecond {
		t.Fatalf("heartbeat should be fresh again, age=%v", stale)
	}
}

func TestStealJumpPreemptionCounting(t *testing.T) {
	eng, h, vm := testSetup(t, 1, 1, 1, 1)
	vm.Spawn("busy", func(sim.Time) Segment { return ComputeForever() })
	// 2ms bursts every 10ms: ~50 preemptions in 500ms.
	host.NewPatternContender(h, "noisy", h.Thread(0), 2*sim.Millisecond, 8*sim.Millisecond, 0)
	eng.RunFor(500 * sim.Millisecond)
	got := vm.VCPU(0).PreemptCount()
	if got < 35 || got > 60 {
		t.Fatalf("steal-jump count=%d want ~50", got)
	}
	if vm.VCPU(0).ResetPreemptCount() != got {
		t.Fatal("reset should return prior count")
	}
	if vm.VCPU(0).PreemptCount() != 0 {
		t.Fatal("reset failed")
	}
}

func TestPullRunningFailsOnInactiveSource(t *testing.T) {
	eng, h, vm := testSetup(t, 1, 2, 1, 2)
	tk := vm.Spawn("hog", func(sim.Time) Segment { return ComputeForever() }, StartOn(0))
	eng.RunFor(10 * sim.Millisecond)
	// Make vCPU0 inactive.
	host.NewPatternContender(h, "noisy", h.Thread(0), 50*sim.Millisecond, 50*sim.Millisecond, 0)
	eng.RunFor(5 * sim.Millisecond)
	if ok := vm.PullRunning(vm.VCPU(0), vm.VCPU(1), tk); ok {
		t.Fatal("stopper must not run on an inactive vCPU")
	}
	if tk.CPU().ID() != 0 {
		t.Fatal("task must not have moved")
	}
}

func TestVanillaCapacityEstimateFlaw(t *testing.T) {
	// The stock estimate reports ~512 for a busy 50%-duty vCPU but 1024 for
	// an idle one — the Fig. 11 flaw.
	eng, h, vm := testSetup(t, 1, 2, 1, 2)
	host.NewPatternContender(h, "noisy0", h.Thread(0), 5*sim.Millisecond, 5*sim.Millisecond, 0)
	host.NewPatternContender(h, "noisy1", h.Thread(1), 5*sim.Millisecond, 5*sim.Millisecond, 0)
	vm.Spawn("busy", func(sim.Time) Segment { return ComputeForever() }, WithAffinity(0))
	eng.RunFor(500 * sim.Millisecond)
	busyCap := vm.VCPU(0).Capacity()
	idleCap := vm.VCPU(1).Capacity()
	if busyCap > 700 {
		t.Fatalf("busy 50%%-duty vCPU should report reduced capacity, got %d", busyCap)
	}
	if idleCap != 1024 {
		t.Fatalf("idle vCPU reports %d, the flaw requires 1024", idleCap)
	}
	// Published capacities override both.
	vm.VCPU(1).PublishCapacity(512)
	if vm.VCPU(1).Capacity() != 512 {
		t.Fatal("published capacity not honoured")
	}
}

func TestDeterministicGuest(t *testing.T) {
	run := func() (sim.Duration, uint64) {
		eng := sim.NewEngine(99)
		cfg := host.DefaultConfig()
		cfg.Sockets, cfg.CoresPerSocket, cfg.ThreadsPerCore = 1, 4, 1
		h := host.New(eng, cfg)
		var threads []*host.Thread
		for i := 0; i < 4; i++ {
			threads = append(threads, h.Thread(i))
		}
		vm := NewVM(h, "vm", threads, DefaultParams())
		vm.Start()
		host.NewPatternContender(h, "noisy", h.Thread(1), 3*sim.Millisecond, 4*sim.Millisecond, 0)
		var total sim.Duration
		for i := 0; i < 6; i++ {
			tk := vm.Spawn("w", loopCompute(5e5, 50, nil))
			defer func() { total += tk.TotalRun() }()
		}
		eng.RunFor(300 * sim.Millisecond)
		return total, vm.Stats().ContextSwitches
	}
	r1, c1 := run()
	r2, c2 := run()
	if r1 != r2 || c1 != c2 {
		t.Fatalf("guest nondeterministic: %v/%d vs %v/%d", r1, c1, r2, c2)
	}
}

func TestUtilTracksCPUIntensity(t *testing.T) {
	eng, _, vm := testSetup(t, 1, 2, 1, 2)
	hog := vm.Spawn("hog", func(sim.Time) Segment { return ComputeForever() }, StartOn(0))
	step := 0
	light := vm.Spawn("light", func(now sim.Time) Segment {
		step++
		if step%2 == 1 {
			return Compute(5e4) // 50us
		}
		return Sleep(10 * sim.Millisecond)
	}, StartOn(1))
	eng.RunFor(300 * sim.Millisecond)
	if u := hog.Util(); u < 900 {
		t.Fatalf("hog util=%v", u)
	}
	if u := light.Util(); u > 200 {
		t.Fatalf("light util=%v", u)
	}
	_ = math.Pi
}

// TestPinnedTaskOverridesGroupBan mirrors Linux semantics: a task pinned to
// one vCPU keeps running there even when its cgroup's mask bans that vCPU —
// pinning is the effective cpumask. vcap's per-vCPU probers rely on this
// (rwc bans stacked vCPUs for the prober group; the probers must not be
// stranded, vcap just halts their sampling).
func TestPinnedTaskOverridesGroupBan(t *testing.T) {
	eng, _, vm := testSetup(t, 1, 4, 1, 4)
	g := vm.NewGroup("g")
	var runs int
	vm.Spawn("pinned", func(now sim.Time) Segment {
		runs++
		return Compute(1e5)
	}, WithAffinity(2), WithGroup(g))
	vm.SetGroupMask(g, []bool{true, true, false, true}) // ban vCPU 2
	eng.RunFor(100 * sim.Millisecond)
	if runs == 0 {
		t.Fatal("pinned task starved after its vCPU was group-banned")
	}
}
