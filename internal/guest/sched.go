package guest

// CPU selection — the stock CFS wakeup path, operating on *believed*
// topology and capacity. Its quality therefore depends entirely on how
// accurate the vCPU abstraction is, which is the paper's point: with the
// default belief (symmetric, flat, always-active vCPUs) these heuristics
// misfire; with vProbers feeding them they work as designed.

// fitsCapacity is CFS's capacity_fits test: the believed capacity must
// exceed the task's utilisation with 20% headroom.
func fitsCapacity(util float64, cap int64) bool {
	return float64(cap) >= util*1.2
}

// load returns the runqueue load of v: the weight sum of the running and
// queued tasks.
func (v *VCPU) load() int64 {
	var l int64
	if v.curr != nil {
		l += v.curr.weight
	}
	for _, t := range v.rq {
		l += t.weight
	}
	return l
}

// loadPerCapacity is the balancing metric: load scaled by believed capacity.
func (v *VCPU) loadPerCapacity() float64 {
	c := v.Capacity()
	if c <= 0 {
		c = 1
	}
	return float64(v.load()) * 1024 / float64(c)
}

// nrRunning counts installed plus queued tasks.
func (v *VCPU) nrRunning() int {
	n := len(v.rq)
	if v.curr != nil {
		n++
	}
	return n
}

// coreGroupIdle reports whether every vCPU sharing i's believed core group
// is guest-idle (an "idle core" in SMT-aware selection).
func (vm *VM) coreGroupIdle(i int) bool {
	g := vm.topo.CoreOf[i]
	for j, v := range vm.vcpus {
		if vm.topo.CoreOf[j] == g && !v.GuestIdle() {
			return false
		}
	}
	return true
}

// selectCPU picks the vCPU for a waking task. The vSched hook (bvs) runs
// first; the stock heuristic is the fallback.
func (vm *VM) selectCPU(t *Task, prev *VCPU, waker *VCPU) *VCPU {
	if t.affinity >= 0 {
		return vm.vcpus[t.affinity]
	}
	if vm.hooks.SelectCPU != nil {
		if r := vm.hooks.SelectCPU(t, prev); r != nil && vm.allowedFor(t, r) {
			return r
		}
	}
	return vm.selectCPUDefault(t, prev, waker)
}

func (vm *VM) selectCPUDefault(t *Task, prev *VCPU, waker *VCPU) *VCPU {
	util := t.Util()
	target := prev
	if target == nil || !vm.allowedFor(t, target) {
		target = vm.firstAllowed(t)
	}
	// Wake affinity: a light wakee whose previous CPU sits in a different
	// believed LLC domain than its waker follows the waker (the waker
	// produced the data it will consume) — but, like wake_affine, only when
	// the waker's domain isn't clearly busier; otherwise affinity would
	// drag whole workloads into one overloaded socket and trap them there.
	if waker != nil && vm.allowedFor(t, waker) && util <= 800 &&
		!vm.topo.SameSocket(target.id, waker.id) &&
		vm.socketLoad(waker.id) <= vm.socketLoad(target.id)*5/4+256 {
		target = waker
	}
	// Fast path: target CPU, if idle with an idle believed core.
	if vm.allowedFor(t, target) && target.GuestIdle() &&
		vm.coreGroupIdle(target.id) && fitsCapacity(util, target.Capacity()) {
		return target
	}
	domain := vm.topo.SocketOf[target.id]
	inDomain := func(v *VCPU) bool { return vm.topo.SocketOf[v.id] == domain }

	// SMT-aware scan: a fully idle core beats a thread whose sibling is
	// busy. Without SMT belief every vCPU is its own core and this pass is
	// just an idle-vCPU scan with capacity fit.
	if pick := vm.scanIdle(t, util, target.id, inDomain, true); pick != nil {
		return pick
	}
	// Any idle vCPU in the domain with capacity fit.
	if pick := vm.scanIdle(t, util, target.id, inDomain, false); pick != nil {
		return pick
	}
	// Any idle vCPU in the domain, ignoring fit.
	for _, v := range vm.vcpus {
		if inDomain(v) && vm.allowedFor(t, v) && v.GuestIdle() {
			return v
		}
	}
	// Overloaded domain: least loaded allowed vCPU, domain first then VM.
	if pick := vm.leastLoaded(t, inDomain); pick != nil {
		return pick
	}
	if pick := vm.leastLoaded(t, func(*VCPU) bool { return true }); pick != nil {
		return pick
	}
	return vm.firstAllowed(t)
}

// scanIdle looks for an allowed guest-idle vCPU with capacity fit, scanning
// from `start` and wrapping (like select_idle_sibling's target-relative
// scan); wantIdleCore additionally requires its whole believed core to be
// idle.
func (vm *VM) scanIdle(t *Task, util float64, start int, in func(*VCPU) bool, wantIdleCore bool) *VCPU {
	n := len(vm.vcpus)
	for k := 0; k < n; k++ {
		v := vm.vcpus[(start+k)%n]
		if !in(v) || !vm.allowedFor(t, v) || !v.GuestIdle() {
			continue
		}
		if !fitsCapacity(util, v.Capacity()) {
			continue
		}
		if wantIdleCore && !vm.coreGroupIdle(v.id) {
			continue
		}
		return v
	}
	return nil
}

// socketLoad returns the average load-to-capacity (scaled by 1024) of the
// believed socket containing vCPU id.
func (vm *VM) socketLoad(id int) int64 {
	g := vm.topo.SocketOf[id]
	var sum float64
	var n int64
	for j, v := range vm.vcpus {
		if vm.topo.SocketOf[j] == g {
			sum += v.loadPerCapacity()
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return int64(sum) / n
}

// selectCPUFork is the fork/exec placement path (find_idlest_cpu): choose
// the least loaded believed socket, then an idle vCPU inside it.
func (vm *VM) selectCPUFork(t *Task) *VCPU {
	var bestIDs []int
	bestLoad := 0.0
	bestCap := int64(0)
	for _, ids := range vm.topo.Sockets() {
		var load float64
		var cap int64
		allowed := false
		for _, id := range ids {
			load += vm.vcpus[id].loadPerCapacity()
			cap += vm.vcpus[id].Capacity()
			if vm.allowedFor(t, vm.vcpus[id]) {
				allowed = true
			}
		}
		load /= float64(len(ids))
		if !allowed {
			continue
		}
		// Lower load wins; near-ties go to the socket with the larger
		// believed capacity (find_idlest_group considers both).
		better := bestIDs == nil || load < bestLoad-64 ||
			(load < bestLoad+64 && cap > bestCap)
		if better {
			bestIDs, bestLoad, bestCap = ids, load, cap
		}
	}
	if bestIDs == nil {
		return vm.firstAllowed(t)
	}
	inSock := func(v *VCPU) bool { return vm.topo.SocketOf[v.id] == vm.topo.SocketOf[bestIDs[0]] }
	if pick := vm.scanIdle(t, t.Util(), bestIDs[0], inSock, true); pick != nil {
		return pick
	}
	if pick := vm.scanIdle(t, t.Util(), bestIDs[0], inSock, false); pick != nil {
		return pick
	}
	if pick := vm.leastLoaded(t, inSock); pick != nil {
		return pick
	}
	return vm.firstAllowed(t)
}

// leastLoaded returns the allowed vCPU with the lowest load-to-capacity
// ratio among those selected by in, or nil if none allowed.
func (vm *VM) leastLoaded(t *Task, in func(*VCPU) bool) *VCPU {
	var best *VCPU
	var bestLoad float64
	for _, v := range vm.vcpus {
		if !in(v) || !vm.allowedFor(t, v) {
			continue
		}
		l := v.loadPerCapacity()
		if best == nil || l < bestLoad {
			best, bestLoad = v, l
		}
	}
	return best
}
