package telemetry

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// Bucket is one rollup aggregate: min/max/sum/count over a contiguous run of
// raw samples spanning [T0, T1] virtual nanoseconds.
type Bucket struct {
	T0    int64   `json:"t0"`
	T1    int64   `json:"t1"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Sum   float64 `json:"sum"`
	Count uint32  `json:"count"`
}

// Mean returns the bucket's mean value (0 when empty).
func (b Bucket) Mean() float64 {
	if b.Count == 0 {
		return 0
	}
	return b.Sum / float64(b.Count)
}

func (b *Bucket) add(t int64, v float64) {
	if b.Count == 0 {
		b.T0, b.Min, b.Max = t, v, v
	} else {
		if v < b.Min {
			b.Min = v
		}
		if v > b.Max {
			b.Max = v
		}
	}
	b.T1 = t
	b.Sum += v
	b.Count++
}

func mergeBuckets(bs []Bucket) Bucket {
	out := bs[0]
	for _, b := range bs[1:] {
		if b.Count == 0 {
			continue
		}
		if out.Count == 0 {
			out = b
			continue
		}
		if b.Min < out.Min {
			out.Min = b.Min
		}
		if b.Max > out.Max {
			out.Max = b.Max
		}
		out.Sum += b.Sum
		out.Count += b.Count
		out.T1 = b.T1
	}
	return out
}

// chunk is one closed, immutable compressed block of raw points.
type chunk struct {
	data []byte
	n    int
}

// Series is one named time series under a Recorder: a short Gorilla-
// compressed raw window for recent detail, plus two rollup tiers that keep
// the whole history at 10x and 100x downsampling. Memory is bounded for any
// run length (see MaxSeriesBytes); once every tier is full, appending a
// sample can only recycle space, never grow it.
//
// Coverage: tier 2 holds the oldest history, tier 1 the mid history, and the
// open tier-1 bucket the newest ≤ rollupFactor samples — together they cover
// every sample exactly once (Merged). The raw window overlaps the newest
// samples with full per-point detail.
type Series struct {
	Name string
	// Volatile marks a series whose values depend on wall-clock or allocator
	// state (the self-observability throughput series). Volatile series are
	// excluded from deterministic snapshots and byte-identity checks.
	Volatile bool

	cfg *Config

	enc    gorillaEnc
	chunks []chunk
	// folded counts raw points that have aged out of the raw window; they
	// remain represented in the rollup tiers.
	folded uint64

	cur      Bucket // open tier-1 bucket accumulating the newest samples
	t1       []Bucket
	t2       []Bucket
	t2Stride int // raw samples per tier-2 bucket; doubles when tier 2 is full

	count    uint64
	lastT    int64
	lastV    float64
	min, max float64
	sum      float64
}

// rollupFactor is the downsampling step between tiers: rollupFactor raw
// samples per tier-1 bucket, rollupFactor tier-1 buckets per tier-2 bucket.
const rollupFactor = 10

func newSeries(name string, volatile bool, cfg *Config) *Series {
	return &Series{
		Name:     name,
		Volatile: volatile,
		cfg:      cfg,
		t2Stride: rollupFactor * rollupFactor,
		min:      math.Inf(1),
		max:      math.Inf(-1),
	}
}

// Append records one sample. Timestamps must be non-decreasing (the sampler
// walks the sim clock forward); a regressing timestamp panics, because it
// would silently corrupt the compressed stream.
func (s *Series) Append(t int64, v float64) {
	if s.count > 0 && t < s.lastT {
		panic(fmt.Sprintf("telemetry: series %s: timestamp %d before %d", s.Name, t, s.lastT))
	}
	s.count++
	s.lastT, s.lastV = t, v
	s.sum += v
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}

	// Raw tier: append to the open chunk; close it at the chunk size and
	// recycle the oldest closed chunk past the window cap. The dropped
	// points are already represented in the rollup tiers.
	s.enc.append(t, v)
	if s.enc.n >= s.cfg.RawChunkPoints {
		s.chunks = append(s.chunks, chunk{data: s.enc.bytes(), n: s.enc.n})
		s.enc.reset()
		if len(s.chunks) > s.cfg.RawChunks {
			s.folded += uint64(s.chunks[0].n)
			copy(s.chunks, s.chunks[1:])
			s.chunks = s.chunks[:len(s.chunks)-1]
		}
	}

	// Rollup tiers: every sample streams into the open tier-1 bucket.
	s.cur.add(t, v)
	if int(s.cur.Count) >= rollupFactor {
		s.t1 = append(s.t1, s.cur)
		s.cur = Bucket{}
		if len(s.t1) >= s.cfg.Tier1Cap {
			// Fold the oldest rollupFactor tier-1 buckets toward tier 2,
			// shifting t1 in place so the backing array is reused. The fold
			// lands in the last tier-2 bucket until that bucket holds
			// t2Stride samples, so after a pair-merge doubles the stride,
			// tier-2 capacity (in samples) has genuinely doubled too.
			in := mergeBuckets(s.t1[:rollupFactor])
			if n := len(s.t2); n > 0 && int(s.t2[n-1].Count) < s.t2Stride {
				s.t2[n-1] = mergeBuckets([]Bucket{s.t2[n-1], in})
			} else {
				s.t2 = append(s.t2, in)
			}
			copy(s.t1, s.t1[rollupFactor:])
			s.t1 = s.t1[:len(s.t1)-rollupFactor]
			if len(s.t2) >= s.cfg.Tier2Cap {
				// Tier 2 full: merge adjacent pairs, doubling the stride.
				// This is what makes memory bounded for ANY horizon — the
				// whole history always fits Tier2Cap buckets, at whatever
				// resolution that requires.
				half := s.t2[:0]
				for i := 0; i+1 < len(s.t2); i += 2 {
					half = append(half, mergeBuckets(s.t2[i:i+2]))
				}
				if len(s.t2)%2 == 1 {
					half = append(half, s.t2[len(s.t2)-1])
				}
				for i := len(half); i < len(s.t2); i++ {
					s.t2[i] = Bucket{}
				}
				s.t2 = half
				s.t2Stride *= 2
			}
		}
	}
}

// Count returns the number of samples ever appended.
func (s *Series) Count() uint64 { return s.count }

// Last returns the most recent sample.
func (s *Series) Last() Point { return Point{T: s.lastT, V: s.lastV} }

// Min, Max and Mean summarize every sample ever appended (not just the
// surviving raw window).
func (s *Series) Min() float64 {
	if s.count == 0 {
		return 0
	}
	return s.min
}

func (s *Series) Max() float64 {
	if s.count == 0 {
		return 0
	}
	return s.max
}

func (s *Series) Mean() float64 {
	if s.count == 0 {
		return 0
	}
	return s.sum / float64(s.count)
}

// RawPoints decodes the surviving raw window in chronological order. The
// window covers the newest samples; older ones live only in the rollups.
func (s *Series) RawPoints() []Point {
	var out []Point
	var err error
	for _, c := range s.chunks {
		out, err = decodeGorilla(out, c.data, c.n)
		if err != nil {
			panic("telemetry: corrupt raw chunk: " + err.Error())
		}
	}
	out, err = decodeGorilla(out, s.enc.bytes(), s.enc.n)
	if err != nil {
		panic("telemetry: corrupt open chunk: " + err.Error())
	}
	return out
}

// Merged returns the full history as buckets without double counting: the
// tier-2 prefix, then tier 1, then the open tier-1 bucket. Bucket counts sum
// to Count exactly.
func (s *Series) Merged() []Bucket {
	out := make([]Bucket, 0, len(s.t2)+len(s.t1)+1)
	out = append(out, s.t2...)
	out = append(out, s.t1...)
	if s.cur.Count > 0 {
		out = append(out, s.cur)
	}
	return out
}

// Bytes returns the series' current memory footprint: compressed chunks, the
// open encoder buffer, and the rollup arrays (by capacity, since that is
// what the process actually holds).
func (s *Series) Bytes() int {
	n := len(s.Name) + seriesFixedBytes
	for _, c := range s.chunks {
		n += cap(c.data)
	}
	n += cap(s.enc.w.buf)
	n += (cap(s.t1) + cap(s.t2)) * bucketBytes
	return n
}

const (
	// bucketBytes is sizeof(Bucket): 2 int64 + 3 float64 + uint32, padded.
	bucketBytes = 48
	// seriesFixedBytes approximates the struct header and slice headers.
	seriesFixedBytes = 256
)

// quantileOf returns the q-quantile of bucket means, weighted by bucket
// count — the bounded-memory estimate of the q-quantile of the underlying
// samples. Deterministic: ties sort by value.
func quantileOf(bs []Bucket, q float64) float64 {
	type wv struct {
		v float64
		n uint64
	}
	var items []wv
	var total uint64
	for _, b := range bs {
		if b.Count == 0 {
			continue
		}
		items = append(items, wv{b.Mean(), uint64(b.Count)})
		total += uint64(b.Count)
	}
	if total == 0 {
		return 0
	}
	sort.Slice(items, func(i, j int) bool { return items[i].v < items[j].v })
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for _, it := range items {
		seen += it.n
		if seen >= rank {
			return it.v
		}
	}
	return items[len(items)-1].v
}

// Quantile estimates the q-quantile of every sample ever appended, from the
// rollup buckets (each bucket contributes its mean, weighted by its count).
func (s *Series) Quantile(q float64) float64 { return quantileOf(s.Merged(), q) }

// encodeChunks serializes the raw window as a self-delimiting stream:
// uvarint point count, uvarint byte length, then the chunk bytes, for each
// chunk oldest first (the open chunk last).
func (s *Series) encodeChunks() []byte {
	var out []byte
	var tmp [binary.MaxVarintLen64]byte
	put := func(data []byte, n int) {
		out = append(out, tmp[:binary.PutUvarint(tmp[:], uint64(n))]...)
		out = append(out, tmp[:binary.PutUvarint(tmp[:], uint64(len(data)))]...)
		out = append(out, data...)
	}
	for _, c := range s.chunks {
		put(c.data, c.n)
	}
	if s.enc.n > 0 {
		put(s.enc.bytes(), s.enc.n)
	}
	return out
}

// DecodeRaw decodes a chunk stream produced by encodeChunks (the Raw field
// of a SeriesSnapshot) back into points.
func DecodeRaw(raw []byte) ([]Point, error) {
	var out []Point
	for len(raw) > 0 {
		n, w := binary.Uvarint(raw)
		if w <= 0 {
			return nil, fmt.Errorf("telemetry: bad chunk header")
		}
		raw = raw[w:]
		bl, w := binary.Uvarint(raw)
		if w <= 0 {
			return nil, fmt.Errorf("telemetry: bad chunk length")
		}
		raw = raw[w:]
		if uint64(len(raw)) < bl {
			return nil, fmt.Errorf("telemetry: chunk stream truncated")
		}
		var err error
		out, err = decodeGorilla(out, raw[:bl], int(n))
		if err != nil {
			return nil, err
		}
		raw = raw[bl:]
	}
	return out, nil
}
