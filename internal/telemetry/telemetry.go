// Package telemetry is the simulator's flight recorder: a deterministic
// sampling scheduler driven by the sim clock that periodically snapshots
// metric sources into compressed, bounded-memory time series.
//
// The vtrace layer records *events* — every state transition, at full
// fidelity, into a ring whose window shrinks as event rate grows. That is
// the right tool for close inspection of a few seconds of simulation, but a
// long-horizon fleet run (thousands of hosts, days of virtual time) fires
// billions of events; no ring survives that. Telemetry takes the other
// trade: fixed-period samples of aggregate signals (steal rates, queue
// depths, utilization, the simulator's own throughput), Gorilla-compressed
// with tiered downsampling so memory stays provably bounded no matter how
// long the run is, while the paper's continuously-observable signals stay
// continuously observable.
//
// Determinism: sampling is scheduled on the sim clock, sources read only
// simulation state, and the compressed encoding is a pure function of the
// samples — so a recorder's snapshot is byte-identical between serial and
// parallel runs of the same scenario. The one exception is explicitly
// volatile sources (wall-clock throughput, allocator counters), whose series
// are flagged and excluded from deterministic snapshots.
package telemetry

import (
	"sort"

	"vsched/internal/metrics"
	"vsched/internal/sim"
)

// Config bounds a Recorder. The defaults keep a series' worst-case footprint
// around 60 KB while covering any horizon (see MaxSeriesBytes).
type Config struct {
	// Interval is the sampling period in virtual time (default 100ms).
	Interval sim.Duration
	// RawChunkPoints is the number of points per compressed raw chunk
	// (default 512).
	RawChunkPoints int
	// RawChunks is how many closed chunks the raw window keeps before the
	// oldest is recycled (default 4). The open chunk is extra.
	RawChunks int
	// Tier1Cap bounds the 10x rollup tier (default 512 buckets); overflow
	// folds into tier 2.
	Tier1Cap int
	// Tier2Cap bounds the 100x rollup tier (default 1024 buckets); overflow
	// merges adjacent buckets, doubling the tier-2 stride.
	Tier2Cap int
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 100 * sim.Millisecond
	}
	if c.RawChunkPoints <= 0 {
		c.RawChunkPoints = 512
	}
	if c.RawChunks <= 0 {
		c.RawChunks = 4
	}
	if c.Tier1Cap < 2*rollupFactor {
		c.Tier1Cap = 512
	}
	if c.Tier2Cap < 2 {
		c.Tier2Cap = 1024
	}
	return c
}

// MaxSeriesBytes is the provable per-series memory bound for a config: no
// matter how many samples are appended, Series.Bytes() stays under it.
//
// Raw: RawChunks closed chunks plus the open one, each at most
// RawChunkPoints * 19 bytes (worst case ~146 bits/point: 4+64 timestamp bits
// and 2+5+6+64 value bits, rounded up). Rollups: append can at most double a
// slice's capacity beyond its cap before the fold trims it, hence the factor
// 2. Everything else is fixed overhead.
func MaxSeriesBytes(c Config) int {
	c = c.withDefaults()
	const worstPointBytes = 19
	raw := (c.RawChunks + 1) * (c.RawChunkPoints*worstPointBytes + 16)
	rollups := 2 * (c.Tier1Cap + c.Tier2Cap) * bucketBytes
	return raw + rollups + seriesFixedBytes + 64
}

// Source produces named samples when collected. Implementations must read
// only simulation state (unless registered volatile) and must not mutate it:
// attaching telemetry may never change a result.
type Source interface {
	Collect(now sim.Time, emit func(name string, v float64))
}

// SourceFunc adapts a function to the Source interface.
type SourceFunc func(now sim.Time, emit func(name string, v float64))

// Collect implements Source.
func (f SourceFunc) Collect(now sim.Time, emit func(name string, v float64)) { f(now, emit) }

// registrySource samples every numeric instrument of a metrics.Registry via
// its zero-alloc VisitNumeric fast path.
type registrySource struct{ reg *metrics.Registry }

// Collect implements Source.
func (s registrySource) Collect(now sim.Time, emit func(string, float64)) {
	s.reg.VisitNumeric(emit)
}

// RegistrySource returns a Source sampling every counter, gauge and
// histogram summary of reg.
func RegistrySource(reg *metrics.Registry) Source { return registrySource{reg} }

// boundSource is a source plus its recorder-side state. The emit closure and
// the per-source series cache are built once, so the steady-state sampling
// path performs no allocation beyond what the series themselves amortize.
type boundSource struct {
	src      Source
	prefix   string
	volatile bool
	cache    map[string]*Series
	emit     func(name string, v float64)
	now      int64 // virtual ns of the in-flight sample pass
}

// Recorder owns the series and the sampling schedule. Like the rest of the
// simulator it is single-goroutine: all methods must be called from the
// engine's goroutine (or before/after the run).
type Recorder struct {
	eng     *sim.Engine
	cfg     Config
	sources []*boundSource
	series  map[string]*Series
	samples uint64
	stopped bool
	started bool
}

// New builds a recorder on eng. Call AddSource, then Start.
func New(eng *sim.Engine, cfg Config) *Recorder {
	return &Recorder{eng: eng, cfg: cfg.withDefaults(), series: make(map[string]*Series)}
}

// Interval returns the sampling period.
func (r *Recorder) Interval() sim.Duration { return r.cfg.Interval }

// AddSource registers a deterministic source; its series names are
// prefix+name. Register every source before Start.
func (r *Recorder) AddSource(prefix string, s Source) { r.addSource(prefix, s, false) }

// AddVolatileSource registers a source whose values depend on wall-clock or
// process state. Its series are flagged Volatile and excluded from
// deterministic snapshots.
func (r *Recorder) AddVolatileSource(prefix string, s Source) { r.addSource(prefix, s, true) }

func (r *Recorder) addSource(prefix string, s Source, volatile bool) {
	b := &boundSource{src: s, prefix: prefix, volatile: volatile, cache: make(map[string]*Series)}
	b.emit = func(name string, v float64) {
		sr, ok := b.cache[name]
		if !ok {
			full := b.prefix + name
			sr, ok = r.series[full]
			if !ok {
				sr = newSeries(full, b.volatile, &r.cfg)
				r.series[full] = sr
			}
			b.cache[name] = sr
		}
		sr.Append(b.now, v)
	}
	r.sources = append(r.sources, b)
}

// Record appends one sample directly, outside any source (ad-hoc series).
func (r *Recorder) Record(name string, v float64) {
	sr, ok := r.series[name]
	if !ok {
		sr = newSeries(name, false, &r.cfg)
		r.series[name] = sr
	}
	sr.Append(int64(r.eng.Now()), v)
}

// SampleNow runs one collection pass over every source at the current
// virtual time.
func (r *Recorder) SampleNow() {
	now := r.eng.Now()
	for _, b := range r.sources {
		b.now = int64(now)
		b.src.Collect(now, b.emit)
	}
	r.samples++
}

// Start schedules the periodic sampling loop on the engine, first sample one
// interval from now. Idempotent.
func (r *Recorder) Start() {
	if r.started {
		return
	}
	r.started = true
	r.eng.After(r.cfg.Interval, r.tick)
}

func (r *Recorder) tick() {
	if r.stopped {
		return
	}
	r.SampleNow()
	r.eng.After(r.cfg.Interval, r.tick)
}

// Stop halts the sampling loop at the next tick.
func (r *Recorder) Stop() { r.stopped = true }

// Samples returns how many collection passes have run.
func (r *Recorder) Samples() uint64 { return r.samples }

// Len returns the number of series.
func (r *Recorder) Len() int { return len(r.series) }

// Get returns the named series, or nil.
func (r *Recorder) Get(name string) *Series { return r.series[name] }

// Series returns every series sorted by name. includeVolatile controls
// whether wall-clock-dependent series appear.
func (r *Recorder) Series(includeVolatile bool) []*Series {
	out := make([]*Series, 0, len(r.series))
	for _, s := range r.series {
		if s.Volatile && !includeVolatile {
			continue
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Bytes returns the recorder's total series footprint.
func (r *Recorder) Bytes() int {
	n := 0
	for _, s := range r.series {
		n += s.Bytes()
	}
	return n
}

// MaxBytes returns the provable footprint bound for the recorder's current
// series set: Len() * MaxSeriesBytes(cfg).
func (r *Recorder) MaxBytes() int { return len(r.series) * MaxSeriesBytes(r.cfg) }
