package telemetry

import (
	"bytes"
	"encoding/csv"
	"math"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

// fleetFaultSeries are the eight fleet.macro.* series the macro fault plane
// aggregates each epoch (see fleet.macroAgg.emit). The exports below are what
// harness artifacts embed and the obsplane mirror tails, so their round-trip
// behaviour is pinned here against realistic shapes: step counters, spiky
// gauges, an all-zero quiet run, and histories long enough to cross both
// rollup-tier boundaries.
var fleetFaultSeries = []string{
	"fleet.macro.hosts_down",
	"fleet.macro.hosts_degraded",
	"fleet.macro.hosts_stalled",
	"fleet.macro.pending_retry",
	"fleet.macro.restarts_total",
	"fleet.macro.lost_total",
	"fleet.macro.evacuations_total",
	"fleet.macro.killed_total",
}

// tinyTierConfig shrinks the rollup tiers to their minimum legal sizes so a
// few thousand samples exercise every boundary: raw chunk close and recycle,
// tier-1 overflow folding into tier 2, and tier-2 overflow doubling its
// stride.
func tinyTierConfig() Config {
	return Config{
		Interval:       50 * 1e6, // 50ms in ns; only recorded, not exercised here
		RawChunkPoints: 32,
		RawChunks:      2,
		Tier1Cap:       2 * rollupFactor,
		Tier2Cap:       2,
	}
}

// buildFleetSnapshot synthesises the eight fault series with n samples each
// (except killed_total, left deliberately empty) and assembles the Snapshot
// the way Recorder.Snapshot does.
func buildFleetSnapshot(n int) (*Snapshot, []*Series) {
	cfg := tinyTierConfig().withDefaults()
	snap := &Snapshot{IntervalNS: int64(cfg.Interval), Samples: uint64(n)}
	var series []*Series
	for si, name := range fleetFaultSeries {
		s := newSeries(name, false, &cfg)
		if name != "fleet.macro.killed_total" {
			for i := 0; i < n; i++ {
				t := int64(i) * int64(cfg.Interval)
				// Monotone step counters for *_total, sawtooth gauges for the
				// host-census series — the shapes the fault plane produces.
				var v float64
				if strings.HasSuffix(name, "_total") {
					v = float64(i / (3 + si))
				} else {
					v = float64((i + si) % 7)
				}
				s.Append(t, v)
			}
		}
		series = append(series, s)
		snap.Series = append(snap.Series, s.Snapshot())
	}
	return snap, series
}

// TestFleetFaultSeriesJSONRoundTrip: WriteJSON → ReadSnapshot → WriteJSON
// must be a fixed point, the decoded structure must match exactly, and the
// raw windows must decode to the same points.
func TestFleetFaultSeriesJSONRoundTrip(t *testing.T) {
	// 700 samples with Tier1Cap=20, Tier2Cap=2: tier 1 folds 68 times, tier 2
	// overflows and doubles its stride repeatedly.
	snap, series := buildFleetSnapshot(700)
	var first bytes.Buffer
	if err := snap.WriteJSON(&first); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := ReadSnapshot(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if got.IntervalNS != snap.IntervalNS || got.Samples != snap.Samples ||
		len(got.Series) != len(snap.Series) {
		t.Fatalf("decoded snapshot header differs: %+v vs %+v", got, snap)
	}
	var second bytes.Buffer
	if err := got.WriteJSON(&second); err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("JSON round trip is not a fixed point")
	}

	for i, sr := range got.Series {
		if sr.Name != fleetFaultSeries[i] {
			t.Fatalf("series %d = %q, want %q (name-sorted contract)", i, sr.Name, fleetFaultSeries[i])
		}
		wantPts := series[i].RawPoints()
		gotPts, err := sr.Points()
		if err != nil {
			t.Fatalf("%s: decode raw window: %v", sr.Name, err)
		}
		if len(gotPts) != len(wantPts) || sr.RawN != len(wantPts) {
			t.Fatalf("%s: raw window %d points (RawN %d), want %d", sr.Name, len(gotPts), sr.RawN, len(wantPts))
		}
		for j := range gotPts {
			if gotPts[j] != wantPts[j] {
				t.Fatalf("%s: raw point %d = %+v, want %+v", sr.Name, j, gotPts[j], wantPts[j])
			}
		}
	}
}

// TestFleetFaultSeriesRollupConservation: after tier folding and stride
// doubling, the exported buckets of every series still cover each sample
// exactly once, in time order, with non-overlapping [T0, T1] spans — the
// invariant that makes WriteCSV a faithful full-history dump.
func TestFleetFaultSeriesRollupConservation(t *testing.T) {
	snap, _ := buildFleetSnapshot(2400)
	for _, sr := range snap.Series {
		var total uint64
		for i, b := range sr.Buckets {
			if b.Count == 0 {
				t.Fatalf("%s: bucket %d is empty", sr.Name, i)
			}
			if b.T1 < b.T0 {
				t.Fatalf("%s: bucket %d spans [%d, %d]", sr.Name, i, b.T0, b.T1)
			}
			if i > 0 && b.T0 <= sr.Buckets[i-1].T1 {
				t.Fatalf("%s: bucket %d overlaps its predecessor (%d <= %d)",
					sr.Name, i, b.T0, sr.Buckets[i-1].T1)
			}
			total += uint64(b.Count)
		}
		if total != sr.Count {
			t.Fatalf("%s: buckets hold %d samples, series recorded %d", sr.Name, total, sr.Count)
		}
	}
}

// TestFleetFaultSeriesCSV parses the WriteCSV output and reconciles it
// against the snapshot: one row per bucket, grouped in series order, values
// matching the JSON form bit for bit.
func TestFleetFaultSeriesCSV(t *testing.T) {
	snap, _ := buildFleetSnapshot(900)
	var buf bytes.Buffer
	if err := snap.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("parse CSV back: %v", err)
	}
	want := []string{"series", "t0_ns", "t1_ns", "min", "max", "mean", "count"}
	if !reflect.DeepEqual(rows[0], want) {
		t.Fatalf("header %v, want %v", rows[0], want)
	}
	rows = rows[1:]
	i := 0
	for _, sr := range snap.Series {
		for bi, b := range sr.Buckets {
			if i >= len(rows) {
				t.Fatalf("CSV ended at row %d, %s bucket %d missing", i, sr.Name, bi)
			}
			row := rows[i]
			i++
			if row[0] != sr.Name {
				t.Fatalf("row %d series %q, want %q", i, row[0], sr.Name)
			}
			t0, _ := strconv.ParseInt(row[1], 10, 64)
			t1, _ := strconv.ParseInt(row[2], 10, 64)
			mn, _ := strconv.ParseFloat(row[3], 64)
			mx, _ := strconv.ParseFloat(row[4], 64)
			mean, _ := strconv.ParseFloat(row[5], 64)
			cnt, _ := strconv.ParseUint(row[6], 10, 32)
			if t0 != b.T0 || t1 != b.T1 || mn != b.Min || mx != b.Max ||
				mean != b.Mean() || uint32(cnt) != b.Count {
				t.Fatalf("%s bucket %d: CSV row %v != bucket %+v", sr.Name, bi, row, b)
			}
		}
	}
	if i != len(rows) {
		t.Fatalf("CSV has %d extra rows", len(rows)-i)
	}
}

// TestEmptyFleetSeriesExports: a quiet run (killed_total above, or a whole
// recorder before its first sample) must still export cleanly — zero counts,
// no buckets, no raw bytes, no CSV rows — and survive the JSON round trip.
func TestEmptyFleetSeriesExports(t *testing.T) {
	snap, _ := buildFleetSnapshot(0)
	for _, sr := range snap.Series {
		if sr.Count != 0 || sr.RawN != 0 || len(sr.Buckets) != 0 || len(sr.Raw) != 0 {
			t.Fatalf("%s: empty series exported non-empty: %+v", sr.Name, sr)
		}
		// The zero-sample summary stats must be JSON-encodable (no Inf from
		// the ±Inf min/max seeds leaking out).
		if math.IsInf(sr.Min, 0) || math.IsInf(sr.Max, 0) {
			t.Fatalf("%s: empty series leaks seed min/max: %+v", sr.Name, sr)
		}
	}
	var js bytes.Buffer
	if err := snap.WriteJSON(&js); err != nil {
		t.Fatalf("WriteJSON of empty series: %v", err)
	}
	got, err := ReadSnapshot(bytes.NewReader(js.Bytes()))
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	var again bytes.Buffer
	if err := got.WriteJSON(&again); err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(js.Bytes(), again.Bytes()) {
		t.Fatal("empty snapshot did not round-trip")
	}
	var cs bytes.Buffer
	if err := snap.WriteCSV(&cs); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	if lines := strings.Count(cs.String(), "\n"); lines != 1 {
		t.Fatalf("empty snapshot CSV has %d lines, want header only:\n%s", lines, cs.String())
	}
}

// TestNaNPayloadExports pins the contract for NaN samples in a fault series:
// the Gorilla raw window preserves the exact NaN bit pattern, WriteCSV
// renders the poisoned cells as literal NaN without erroring, and WriteJSON —
// which cannot represent NaN in its summary fields — fails loudly rather
// than writing a corrupt document.
func TestNaNPayloadExports(t *testing.T) {
	cfg := tinyTierConfig().withDefaults()
	payloadNaN := math.Float64frombits(0x7ff8000000001234)
	s := newSeries("fleet.macro.pending_retry", false, &cfg)
	s.Append(0, 3)
	s.Append(100, payloadNaN)
	s.Append(200, 5)
	sr := s.Snapshot()

	pts, err := sr.Points()
	if err != nil {
		t.Fatalf("decode raw window: %v", err)
	}
	if len(pts) != 3 || math.Float64bits(pts[1].V) != math.Float64bits(payloadNaN) {
		t.Fatalf("NaN payload not preserved bit-exactly: %+v", pts)
	}

	snap := &Snapshot{IntervalNS: int64(cfg.Interval), Samples: 3, Series: []SeriesSnapshot{sr}}
	var cs bytes.Buffer
	if err := snap.WriteCSV(&cs); err != nil {
		t.Fatalf("WriteCSV with NaN: %v", err)
	}
	if !strings.Contains(cs.String(), "NaN") {
		t.Fatalf("CSV does not render the NaN cells:\n%s", cs.String())
	}
	if err := snap.WriteJSON(&bytes.Buffer{}); err == nil {
		t.Fatal("WriteJSON silently accepted NaN summary fields; artifacts embedding this would be corrupt")
	}
}
