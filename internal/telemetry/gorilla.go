// Gorilla-style time-series compression: delta-of-delta timestamps plus
// XOR-encoded float64 values, after Pelkonen et al., "Gorilla: A Fast,
// Scalable, In-Memory Time Series Database" (VLDB 2015).
//
// The sampler produces points at a (mostly) fixed period of virtual
// nanoseconds, so the second-order timestamp delta is almost always zero and
// costs one bit; values are probe readings and counters that move slowly, so
// successive float64 bit patterns share long runs of leading/trailing bits
// and the XOR residue is short. A steady counter series compresses to well
// under two bytes per point against 16 raw.
//
// The encoding is bit-exact: every float64 round-trips with its full bit
// pattern, including NaN payloads, infinities and signed zero (the fuzzer
// checks this), and encoding is a pure function of the input points — the
// property the serial-vs-parallel byte-identity gates rely on.
package telemetry

import (
	"fmt"
	"math"
	"math/bits"
)

// Point is one decoded sample: virtual-time nanoseconds and a value.
type Point struct {
	T int64
	V float64
}

// bitWriter appends bit strings to a byte buffer, MSB first.
type bitWriter struct {
	buf   []byte
	cur   byte  // partial byte under construction
	nbits uint8 // bits filled in cur (0..7)
}

// writeBits appends the low n bits of v, MSB first. n may be 0..64.
func (w *bitWriter) writeBits(v uint64, n uint) {
	for n > 0 {
		free := uint(8 - w.nbits)
		take := n
		if take > free {
			take = free
		}
		// Bits [n-1 .. n-take] of v land in the next free slots of cur.
		chunk := byte(v>>(n-take)) & (1<<take - 1)
		w.cur |= chunk << (free - take)
		w.nbits += uint8(take)
		n -= take
		if w.nbits == 8 {
			w.buf = append(w.buf, w.cur)
			w.cur, w.nbits = 0, 0
		}
	}
}

// writeBit appends a single bit.
func (w *bitWriter) writeBit(b uint64) { w.writeBits(b, 1) }

// bytes returns the encoded stream including the partial trailing byte,
// without disturbing the writer — the open chunk can keep appending after a
// snapshot.
func (w *bitWriter) bytes() []byte {
	out := make([]byte, len(w.buf), len(w.buf)+1)
	copy(out, w.buf)
	if w.nbits > 0 {
		out = append(out, w.cur)
	}
	return out
}

// size returns the current encoded size in bytes (partial byte included).
func (w *bitWriter) size() int {
	n := len(w.buf)
	if w.nbits > 0 {
		n++
	}
	return n
}

// bitReader consumes bit strings written by bitWriter.
type bitReader struct {
	buf []byte
	pos int   // next byte
	cur byte  // current byte being consumed
	rem uint8 // bits remaining in cur
}

func newBitReader(buf []byte) *bitReader { return &bitReader{buf: buf} }

func (r *bitReader) readBits(n uint) (uint64, error) {
	var v uint64
	for n > 0 {
		if r.rem == 0 {
			if r.pos >= len(r.buf) {
				return 0, fmt.Errorf("telemetry: bit stream truncated")
			}
			r.cur = r.buf[r.pos]
			r.pos++
			r.rem = 8
		}
		take := n
		if take > uint(r.rem) {
			take = uint(r.rem)
		}
		chunk := (r.cur >> (uint(r.rem) - take)) & (1<<take - 1)
		v = v<<take | uint64(chunk)
		r.rem -= uint8(take)
		n -= take
	}
	return v, nil
}

func (r *bitReader) readBit() (uint64, error) { return r.readBits(1) }

// Timestamp delta-of-delta buckets: a control prefix selects the width, the
// payload stores dod-lo as an unsigned offset. Virtual-time deltas are
// nanoseconds, so the buckets are wider than Gorilla's wall-second ones.
var dodBuckets = []struct {
	prefix     uint64 // control bits, e.g. 0b10
	prefixBits uint
	valueBits  uint
	lo, hi     int64
}{
	{0b10, 2, 7, -63, 64},
	{0b110, 3, 14, -8191, 8192},
	{0b1110, 4, 24, -(1 << 23) + 1, 1 << 23},
}

// gorillaEnc is the streaming encoder for one chunk. The zero value is an
// empty chunk ready for its first append.
type gorillaEnc struct {
	w      bitWriter
	n      int    // points encoded
	t      int64  // last timestamp
	tDelta int64  // last timestamp delta
	v      uint64 // last value bits
	lead   uint8  // leading zeros of the last XOR window
	sig    uint8  // significant bits of the last XOR window
}

// append encodes one (t, v) point. Timestamps must be non-decreasing; the
// Series layer enforces that before calling.
func (e *gorillaEnc) append(t int64, v float64) {
	vb := math.Float64bits(v)
	if e.n == 0 {
		e.w.writeBits(uint64(t), 64)
		e.w.writeBits(vb, 64)
		e.t, e.v = t, vb
		e.n = 1
		// lead=255 marks "no previous XOR window" for the value stream.
		e.lead = 255
		return
	}
	// Timestamp: delta-of-delta against the previous delta.
	delta := t - e.t
	dod := delta - e.tDelta
	e.t, e.tDelta = t, delta
	switch {
	case dod == 0:
		e.w.writeBit(0)
	default:
		encoded := false
		for _, b := range dodBuckets {
			if dod >= b.lo && dod <= b.hi {
				e.w.writeBits(b.prefix, b.prefixBits)
				e.w.writeBits(uint64(dod-b.lo), b.valueBits)
				encoded = true
				break
			}
		}
		if !encoded {
			e.w.writeBits(0b1111, 4)
			e.w.writeBits(uint64(dod), 64)
		}
	}
	// Value: XOR against the previous value.
	xor := vb ^ e.v
	e.v = vb
	if xor == 0 {
		e.w.writeBit(0)
		e.n++
		return
	}
	e.w.writeBit(1)
	lead := uint8(bits.LeadingZeros64(xor))
	if lead > 31 {
		lead = 31 // cap so it fits the 5-bit field; only pads the window
	}
	trail := uint8(bits.TrailingZeros64(xor))
	sig := 64 - lead - trail
	if e.lead != 255 && lead >= e.lead && 64-uint8(e.lead)-uint8(e.sig) <= trail {
		// The new residue fits the previous window: reuse it, pay no header.
		e.w.writeBit(0)
		prevTrail := 64 - e.lead - e.sig
		e.w.writeBits(xor>>prevTrail, uint(e.sig))
	} else {
		e.w.writeBit(1)
		e.w.writeBits(uint64(lead), 5)
		// sig is 1..64; store sig-1 in 6 bits.
		e.w.writeBits(uint64(sig-1), 6)
		e.w.writeBits(xor>>trail, uint(sig))
		e.lead, e.sig = lead, sig
	}
	e.n++
}

// bytes returns the chunk's encoded form so far (snapshot-safe).
func (e *gorillaEnc) bytes() []byte { return e.w.bytes() }

// size returns the chunk's current encoded size in bytes.
func (e *gorillaEnc) size() int { return e.w.size() }

// reset returns the encoder to the empty state, keeping the buffer's backing
// array so a recycled chunk does not reallocate.
func (e *gorillaEnc) reset() {
	e.w.buf = e.w.buf[:0]
	e.w.cur, e.w.nbits = 0, 0
	*e = gorillaEnc{w: e.w}
}

// decodeGorilla decodes n points from a chunk produced by gorillaEnc,
// appending them to dst (which may be nil).
func decodeGorilla(dst []Point, data []byte, n int) ([]Point, error) {
	if n == 0 {
		return dst, nil
	}
	r := newBitReader(data)
	tb, err := r.readBits(64)
	if err != nil {
		return dst, err
	}
	vb, err := r.readBits(64)
	if err != nil {
		return dst, err
	}
	t, v := int64(tb), vb
	dst = append(dst, Point{T: t, V: math.Float64frombits(v)})
	var tDelta int64
	var lead, sig uint8
	lead = 255
	for i := 1; i < n; i++ {
		// Timestamp control prefix: count leading 1s (max 4).
		ones := 0
		for ones < 4 {
			b, err := r.readBit()
			if err != nil {
				return dst, err
			}
			if b == 0 {
				break
			}
			ones++
		}
		var dod int64
		switch ones {
		case 0:
			dod = 0
		case 4:
			raw, err := r.readBits(64)
			if err != nil {
				return dst, err
			}
			dod = int64(raw)
		default:
			b := dodBuckets[ones-1]
			raw, err := r.readBits(b.valueBits)
			if err != nil {
				return dst, err
			}
			dod = int64(raw) + b.lo
		}
		tDelta += dod
		t += tDelta
		// Value.
		bit, err := r.readBit()
		if err != nil {
			return dst, err
		}
		if bit == 1 {
			ctl, err := r.readBit()
			if err != nil {
				return dst, err
			}
			if ctl == 1 {
				l, err := r.readBits(5)
				if err != nil {
					return dst, err
				}
				s, err := r.readBits(6)
				if err != nil {
					return dst, err
				}
				lead, sig = uint8(l), uint8(s)+1
			} else if lead == 255 {
				return dst, fmt.Errorf("telemetry: XOR window reuse before any window was set")
			}
			mid, err := r.readBits(uint(sig))
			if err != nil {
				return dst, err
			}
			v ^= mid << (64 - lead - sig)
		}
		dst = append(dst, Point{T: t, V: math.Float64frombits(v)})
	}
	return dst, nil
}
