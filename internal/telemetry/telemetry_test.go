package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"

	"vsched/internal/metrics"
	"vsched/internal/sim"
)

// roundTrip encodes points through one gorillaEnc and decodes them back.
func roundTrip(t *testing.T, pts []Point) {
	t.Helper()
	var e gorillaEnc
	for _, p := range pts {
		e.append(p.T, p.V)
	}
	got, err := decodeGorilla(nil, e.bytes(), e.n)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(pts) {
		t.Fatalf("decoded %d points, want %d", len(got), len(pts))
	}
	for i := range pts {
		if got[i].T != pts[i].T {
			t.Fatalf("point %d: t=%d want %d", i, got[i].T, pts[i].T)
		}
		if math.Float64bits(got[i].V) != math.Float64bits(pts[i].V) {
			t.Fatalf("point %d: v=%x want %x (%v vs %v)",
				i, math.Float64bits(got[i].V), math.Float64bits(pts[i].V), got[i].V, pts[i].V)
		}
	}
}

func TestGorillaRoundTrip(t *testing.T) {
	nan := math.NaN()
	payloadNaN := math.Float64frombits(0x7ff8000000001234) // NaN with payload
	cases := map[string][]Point{
		"single":    {{T: 0, V: 1}},
		"constant":  {{0, 5}, {100, 5}, {200, 5}, {300, 5}, {400, 5}},
		"monotonic": {{0, 0}, {100, 1}, {200, 2}, {300, 3}, {400, 4}},
		"jitter":    {{0, 1}, {103, 2}, {197, 1.5}, {305, 2.5}, {401, 1.25}},
		"specials": {
			{0, nan}, {1, math.Inf(1)}, {2, math.Inf(-1)}, {3, 0.0},
			{4, math.Copysign(0, -1)}, {5, payloadNaN}, {6, math.MaxFloat64},
			{7, math.SmallestNonzeroFloat64}, {8, -math.MaxFloat64},
		},
		"same-timestamp": {{50, 1}, {50, 2}, {50, 3}},
		"big-dod": {
			{0, 1}, {1, 2}, {1 << 40, 3}, {1<<40 + 5, 4}, {1 << 50, 5},
		},
	}
	for name, pts := range cases {
		t.Run(name, func(t *testing.T) { roundTrip(t, pts) })
	}
}

func TestGorillaRoundTripRandomWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var pts []Point
	tm, v := int64(0), 100.0
	for i := 0; i < 5000; i++ {
		tm += 100_000_000 + rng.Int63n(2001) - 1000
		v += rng.NormFloat64()
		pts = append(pts, Point{tm, v})
	}
	roundTrip(t, pts)
}

func TestGorillaCompression(t *testing.T) {
	// A fixed-period constant series must compress to well under 2 bytes per
	// point (the package's headline claim).
	var e gorillaEnc
	const n = 4096
	for i := 0; i < n; i++ {
		e.append(int64(i)*100_000_000, 42)
	}
	if bpp := float64(e.size()) / n; bpp > 2 {
		t.Fatalf("constant series: %.2f bytes/point, want <= 2", bpp)
	}
}

func TestGorillaTruncated(t *testing.T) {
	var e gorillaEnc
	for i := 0; i < 100; i++ {
		e.append(int64(i)*100, float64(i)*1.5)
	}
	data := e.bytes()
	if _, err := decodeGorilla(nil, data[:len(data)/2], e.n); err == nil {
		t.Fatal("decoding a truncated stream should error, got nil")
	}
	// Claiming more points than encoded must error, not fabricate data.
	if _, err := decodeGorilla(nil, data, e.n+50); err == nil {
		t.Fatal("decoding with inflated count should error, got nil")
	}
}

func TestSeriesRollupInvariants(t *testing.T) {
	cfg := Config{RawChunkPoints: 64, RawChunks: 2, Tier1Cap: 40, Tier2Cap: 16}
	cfg = cfg.withDefaults()
	s := newSeries("x", false, &cfg)
	rng := rand.New(rand.NewSource(1))
	const n = 200_000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := rng.Float64() * 100
		sum += v
		s.Append(int64(i)*100_000_000, v)
		if s.Bytes() > MaxSeriesBytes(cfg) {
			t.Fatalf("after %d samples: Bytes=%d exceeds MaxSeriesBytes=%d",
				i+1, s.Bytes(), MaxSeriesBytes(cfg))
		}
	}
	if s.Count() != n {
		t.Fatalf("Count=%d want %d", s.Count(), n)
	}
	// Every sample is in exactly one merged bucket.
	var bucketN uint64
	var bucketSum float64
	prevT1 := int64(-1)
	for _, b := range s.Merged() {
		bucketN += uint64(b.Count)
		bucketSum += b.Sum
		if b.T0 <= prevT1 {
			t.Fatalf("bucket [%d,%d] overlaps previous end %d", b.T0, b.T1, prevT1)
		}
		prevT1 = b.T1
	}
	if bucketN != n {
		t.Fatalf("bucket counts sum to %d, want %d", bucketN, n)
	}
	if math.Abs(bucketSum-sum) > 1e-6*sum {
		t.Fatalf("bucket sums %v, want %v", bucketSum, sum)
	}
	// The raw window is bounded and holds the newest points.
	raw := s.RawPoints()
	maxRaw := (cfg.RawChunks + 1) * cfg.RawChunkPoints
	if len(raw) > maxRaw {
		t.Fatalf("raw window %d points, cap %d", len(raw), maxRaw)
	}
	if last := raw[len(raw)-1]; last.T != s.Last().T || last.V != s.Last().V {
		t.Fatalf("raw window tail %+v, want %+v", last, s.Last())
	}
	// Lifetime stats survive the rollups.
	if s.Min() < 0 || s.Max() > 100 || math.Abs(s.Mean()-50) > 1 {
		t.Fatalf("stats min=%v max=%v mean=%v", s.Min(), s.Max(), s.Mean())
	}
	if q := s.Quantile(0.5); math.Abs(q-50) > 15 {
		t.Fatalf("median estimate %v too far from 50", q)
	}
}

func TestSeriesMemoryBoundedForever(t *testing.T) {
	// The tier-2 pair-merge must bound memory for ANY horizon: push enough
	// samples through a tiny config to force several stride doublings.
	cfg := Config{RawChunkPoints: 32, RawChunks: 1, Tier1Cap: 20, Tier2Cap: 8}
	cfg = cfg.withDefaults()
	s := newSeries("x", false, &cfg)
	for i := 0; i < 1_000_000; i++ {
		s.Append(int64(i), float64(i%7))
	}
	if s.t2Stride <= rollupFactor*rollupFactor {
		t.Fatalf("expected stride doubling, still %d", s.t2Stride)
	}
	if got, max := s.Bytes(), MaxSeriesBytes(cfg); got > max {
		t.Fatalf("Bytes=%d exceeds bound %d", got, max)
	}
	var n uint64
	for _, b := range s.Merged() {
		n += uint64(b.Count)
	}
	if n != 1_000_000 {
		t.Fatalf("bucket counts sum to %d after stride doubling, want 1000000", n)
	}
}

func TestSeriesRegressingTimestampPanics(t *testing.T) {
	cfg := Config{}.withDefaults()
	s := newSeries("x", false, &cfg)
	s.Append(100, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("regressing timestamp should panic")
		}
	}()
	s.Append(99, 2)
}

func TestEncodeChunksDecodeRaw(t *testing.T) {
	cfg := Config{RawChunkPoints: 16, RawChunks: 100, Tier1Cap: 512, Tier2Cap: 512}
	cfg = cfg.withDefaults()
	s := newSeries("x", false, &cfg)
	var want []Point
	for i := 0; i < 100; i++ { // 6 full chunks + open remainder
		p := Point{int64(i) * 1000, float64(i) * 0.5}
		want = append(want, p)
		s.Append(p.T, p.V)
	}
	got, err := DecodeRaw(s.encodeChunks())
	if err != nil {
		t.Fatalf("DecodeRaw: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d points, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("point %d: %+v want %+v", i, got[i], want[i])
		}
	}
	if _, err := DecodeRaw([]byte{0xff}); err == nil {
		t.Fatal("corrupt chunk stream should error")
	}
}

// buildRecorder runs a small simulation with a registry source and returns
// the recorder after the run.
func buildRecorder(seed int64) *Recorder {
	eng := sim.NewEngine(seed)
	reg := metrics.NewRegistry()
	work := reg.Counter("work.done")
	depth := reg.Gauge("queue.depth")
	lat := reg.Histogram("op.latency")
	rec := New(eng, Config{Interval: 10 * sim.Millisecond})
	rec.AddSource("app.", RegistrySource(reg))
	rec.AddSource("self.", &SelfSource{Eng: eng})
	rec.Start()
	var step func()
	step = func() {
		work.Inc()
		depth.Set(float64(eng.Fired() % 17))
		lat.Observe(int64(eng.Fired()*1000) % 1_000_000)
		if eng.Now() < sim.Time(2*sim.Second) {
			eng.After(sim.Millisecond, step)
		}
	}
	eng.After(sim.Millisecond, step)
	eng.Run(sim.Time(2 * sim.Second))
	return rec
}

func TestRecorderSampling(t *testing.T) {
	rec := buildRecorder(42)
	if rec.Samples() == 0 {
		t.Fatal("no samples collected")
	}
	s := rec.Get("app.work.done")
	if s == nil {
		t.Fatal("registry counter series missing")
	}
	if s.Count() != rec.Samples() {
		t.Fatalf("series has %d samples, recorder ran %d passes", s.Count(), rec.Samples())
	}
	// Counter is monotone: last sample must be the max.
	if s.Last().V != s.Max() {
		t.Fatalf("monotone counter: last=%v max=%v", s.Last().V, s.Max())
	}
	for _, name := range []string{"app.op.latency.p95", "app.op.latency.count", "self.sim.pending", "self.sim.fired"} {
		if rec.Get(name) == nil {
			t.Fatalf("series %s missing", name)
		}
	}
	if rec.Bytes() > rec.MaxBytes() {
		t.Fatalf("Bytes=%d exceeds MaxBytes=%d", rec.Bytes(), rec.MaxBytes())
	}
}

func TestRecorderDeterminism(t *testing.T) {
	snap := func() []byte {
		var b bytes.Buffer
		if err := buildRecorder(42).Snapshot(false).WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	a, b := snap(), snap()
	if !bytes.Equal(a, b) {
		t.Fatal("identical runs produced different snapshots")
	}
}

func TestVolatileExcluded(t *testing.T) {
	eng := sim.NewEngine(1)
	rec := New(eng, Config{})
	rec.AddVolatileSource("w.", SourceFunc(func(now sim.Time, emit func(string, float64)) {
		emit("wall", 123)
	}))
	rec.AddSource("d.", SourceFunc(func(now sim.Time, emit func(string, float64)) {
		emit("det", 1)
	}))
	rec.SampleNow()
	if got := len(rec.Series(false)); got != 1 {
		t.Fatalf("deterministic view has %d series, want 1", got)
	}
	if got := len(rec.Series(true)); got != 2 {
		t.Fatalf("full view has %d series, want 2", got)
	}
	snap := rec.Snapshot(false)
	for _, s := range snap.Series {
		if s.Volatile {
			t.Fatalf("volatile series %s in deterministic snapshot", s.Name)
		}
	}
}

func TestSnapshotRoundTripAndCSV(t *testing.T) {
	rec := buildRecorder(7)
	snap := rec.Snapshot(true)
	var b bytes.Buffer
	if err := snap.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshot(&b)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Series) != len(snap.Series) {
		t.Fatalf("round trip lost series: %d vs %d", len(back.Series), len(snap.Series))
	}
	pts, err := back.Series[0].Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != back.Series[0].RawN {
		t.Fatalf("decoded %d raw points, header says %d", len(pts), back.Series[0].RawN)
	}
	var csvBuf bytes.Buffer
	if err := snap.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if lines[0] != "series,t0_ns,t1_ns,min,max,mean,count" {
		t.Fatalf("csv header %q", lines[0])
	}
	if len(lines) < 2 {
		t.Fatal("csv has no data rows")
	}
	sum := snap.Summary()
	if !strings.Contains(sum, "app.work.done") {
		t.Fatalf("summary missing series name:\n%s", sum)
	}
}

func TestCounterTracks(t *testing.T) {
	rec := buildRecorder(3)
	tracks := rec.CounterTracks(false)
	if len(tracks) != 1 || tracks[0].Process != "telemetry" {
		t.Fatalf("tracks = %+v", tracks)
	}
	if len(tracks[0].Series) == 0 {
		t.Fatal("no counter series")
	}
	prev := ""
	for _, cs := range tracks[0].Series {
		if cs.Name <= prev {
			t.Fatalf("series out of order: %q after %q", cs.Name, prev)
		}
		prev = cs.Name
		for i := 1; i < len(cs.Points); i++ {
			if cs.Points[i].At < cs.Points[i-1].At {
				t.Fatalf("series %s: points out of order", cs.Name)
			}
		}
	}
}

func TestMaxSeriesBytesIsJSONStable(t *testing.T) {
	// Snapshot must marshal cleanly (no NaN/Inf in summary fields for finite
	// inputs) — guard the harness embedding path.
	rec := buildRecorder(5)
	if _, err := json.Marshal(rec.Snapshot(true)); err != nil {
		t.Fatalf("snapshot not marshalable: %v", err)
	}
}

func TestRecorderStop(t *testing.T) {
	eng := sim.NewEngine(1)
	rec := New(eng, Config{Interval: sim.Millisecond})
	rec.AddSource("", SourceFunc(func(now sim.Time, emit func(string, float64)) { emit("x", 1) }))
	rec.Start()
	eng.Run(sim.Time(10 * sim.Millisecond))
	got := rec.Samples()
	rec.Stop()
	eng.Run(sim.Time(20 * sim.Millisecond))
	if rec.Samples() > got+1 {
		t.Fatalf("recorder kept sampling after Stop: %d then %d", got, rec.Samples())
	}
}

func TestSparkline(t *testing.T) {
	bs := []Bucket{}
	for i := 0; i < 64; i++ {
		b := Bucket{}
		b.add(int64(i), float64(i))
		bs = append(bs, b)
	}
	sl := sparkline(bs, 16)
	if n := len([]rune(sl)); n != 16 {
		t.Fatalf("sparkline width %d, want 16", n)
	}
	runes := []rune(sl)
	if runes[0] != sparkRunes[0] || runes[15] != sparkRunes[len(sparkRunes)-1] {
		t.Fatalf("ramp should span min..max glyphs: %q", sl)
	}
	if got := sparkline(nil, 8); got != strings.Repeat(" ", 8) {
		t.Fatalf("empty sparkline = %q", got)
	}
}

// Steady-state sampling cost: one full pass over a warm recorder must stay
// within an amortized allocation budget (chunk closes and slice growth are
// amortized; everything per-sample is allocation-free).
func TestRecorderAllocBudget(t *testing.T) {
	eng := sim.NewEngine(1)
	reg := metrics.NewRegistry()
	reg.Counter("c").Add(10)
	reg.Gauge("g").Set(1)
	reg.Histogram("h").Observe(100)
	rec := New(eng, Config{})
	rec.AddSource("app.", RegistrySource(reg))
	for i := 0; i < 3000; i++ { // warm: caches built, buffers grown
		rec.SampleNow()
	}
	avg := testing.AllocsPerRun(2000, func() { rec.SampleNow() })
	// 8 series × ~19 bytes/point worst case, amortized over chunk lifetime:
	// the average must be well under one allocation per pass.
	if avg > 0.5 {
		t.Fatalf("steady-state sample pass: %.3f allocs/op, want < 0.5", avg)
	}
}

func BenchmarkRecorderSampleNow(b *testing.B) {
	eng := sim.NewEngine(1)
	reg := metrics.NewRegistry()
	reg.Counter("c").Add(10)
	reg.Gauge("g").Set(1)
	reg.Histogram("h").Observe(100)
	rec := New(eng, Config{})
	rec.AddSource("app.", RegistrySource(reg))
	rec.SampleNow()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.SampleNow()
	}
}
