package telemetry

import (
	"runtime"
	"time"

	"vsched/internal/sim"
	"vsched/internal/vtrace"
)

// SelfSource samples the simulator itself — the deterministic part: event
// queue census (timing-wheel residency per level, occupied slots, overflow
// and ready heap depths, node pool size), cumulative events fired, and the
// tracer's emitted/dropped totals. Everything it reads is a pure function of
// simulation state, so its series participate in byte-identity checks.
//
// Series (under the registration prefix):
//
//	sim.fired            events executed so far
//	sim.pending          active scheduled events
//	sim.wheel.resident   nodes in wheel slots (incl. lazily cancelled)
//	sim.wheel.level0..2  ditto, per level
//	sim.wheel.slots      occupied wheel slots
//	sim.wheel.overflow   beyond-horizon heap depth
//	sim.wheel.ready      due-now heap depth
//	sim.wheel.free       node pool size
//	vtrace.emitted       tracer lifetime event count   (when a tracer is set)
//	vtrace.dropped       events lost to ring wrap      (when a tracer is set)
type SelfSource struct {
	Eng *sim.Engine
	// Tracer, when non-nil, adds the vtrace emitted/dropped series.
	Tracer *vtrace.Tracer
}

// Collect implements Source.
func (s *SelfSource) Collect(now sim.Time, emit func(string, float64)) {
	ws := s.Eng.WheelStats()
	emit("sim.fired", float64(s.Eng.Fired()))
	emit("sim.pending", float64(ws.Pending))
	emit("sim.wheel.resident", float64(ws.WheelResident))
	emit("sim.wheel.level0", float64(ws.Levels[0]))
	emit("sim.wheel.level1", float64(ws.Levels[1]))
	emit("sim.wheel.level2", float64(ws.Levels[2]))
	emit("sim.wheel.slots", float64(ws.OccupiedSlots))
	emit("sim.wheel.overflow", float64(ws.Overflow))
	emit("sim.wheel.ready", float64(ws.Ready))
	emit("sim.wheel.free", float64(ws.FreeNodes))
	if s.Tracer.Enabled() {
		emit("vtrace.emitted", float64(s.Tracer.Total()))
		emit("vtrace.dropped", float64(s.Tracer.Dropped()))
	}
}

// WallSource samples the simulator's wall-clock throughput — the volatile
// part of self-observability, registered via AddVolatileSource because its
// values depend on the machine, not the scenario. It closes the loop with
// internal/simbench: the same headline metrics simbench measures offline
// (events fired per wall second, simulated seconds per wall second) become
// live series on any long run, plus the Go allocator's pace.
//
// Series (under the registration prefix):
//
//	self.events_per_sec  events fired per wall-clock second since last sample
//	self.sim_wall_ratio  virtual seconds advanced per wall second
//	self.allocs_per_sec  heap objects allocated per wall second
//
// Samples are paced by virtual time but measured in wall time; collection
// passes arriving faster than minWallDelta apart are skipped so a fast
// simulation does not drown in ReadMemStats calls.
type WallSource struct {
	Eng *sim.Engine
	// MinWallDelta is the minimum wall time between emitted samples
	// (default 5ms).
	MinWallDelta time.Duration

	lastWall    time.Time
	lastFired   uint64
	lastSim     sim.Time
	lastMallocs uint64
}

// Collect implements Source.
func (s *WallSource) Collect(now sim.Time, emit func(string, float64)) {
	minDelta := s.MinWallDelta
	if minDelta <= 0 {
		minDelta = 5 * time.Millisecond
	}
	wall := time.Now()
	if s.lastWall.IsZero() {
		// Arm the baselines on the first pass; emit from the second on.
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		s.lastWall, s.lastFired, s.lastSim, s.lastMallocs = wall, s.Eng.Fired(), now, ms.Mallocs
		return
	}
	dt := wall.Sub(s.lastWall)
	if dt < minDelta {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	secs := dt.Seconds()
	emit("self.events_per_sec", float64(s.Eng.Fired()-s.lastFired)/secs)
	emit("self.sim_wall_ratio", float64(now.Sub(s.lastSim))/1e9/secs)
	emit("self.allocs_per_sec", float64(ms.Mallocs-s.lastMallocs)/secs)
	s.lastWall, s.lastFired, s.lastSim, s.lastMallocs = wall, s.Eng.Fired(), now, ms.Mallocs
}
