package telemetry

import "vsched/internal/metrics"

// UpdateCensus publishes the recorder's own occupancy into reg as
// first-class gauges, making the flight recorder's memory story
// scrape-visible next to the metrics it records: how many series exist, how
// many sample passes ran, the compressed footprint, and where that sits
// against the provable MaxSeriesBytes bound. Call it from a simulation
// safepoint (epoch boundary, per-second hook); the values are pure
// functions of simulation state, so sampling them is deterministic.
func (r *Recorder) UpdateCensus(reg *metrics.Registry) {
	if r == nil || reg == nil {
		return
	}
	bytes := float64(r.Bytes())
	maxBytes := float64(r.MaxBytes())
	reg.Gauge("telemetry.series").Set(float64(r.Len()))
	reg.Gauge("telemetry.samples").Set(float64(r.Samples()))
	reg.Gauge("telemetry.bytes").Set(bytes)
	reg.Gauge("telemetry.max_bytes").Set(maxBytes)
	occ := 0.0
	if maxBytes > 0 {
		occ = bytes / maxBytes
	}
	reg.Gauge("telemetry.occupancy").Set(occ)
}
