package telemetry

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"vsched/internal/sim"
	"vsched/internal/vtrace"
)

// SeriesSnapshot is one series' portable form: lifetime summary stats, the
// Gorilla-compressed raw window (a chunk stream decodable with DecodeRaw),
// and the rollup buckets covering the whole history. It is what gets
// embedded in harness artifacts and dumped by the CLIs.
type SeriesSnapshot struct {
	Name     string  `json:"name"`
	Volatile bool    `json:"volatile,omitempty"`
	Count    uint64  `json:"count"`
	Min      float64 `json:"min"`
	Max      float64 `json:"max"`
	Mean     float64 `json:"mean"`
	Last     float64 `json:"last"`
	// RawN is the number of points in Raw (the newest samples; older ones
	// survive only as Buckets).
	RawN int `json:"raw_n"`
	// Raw is the compressed raw window; encoding/json base64s it.
	Raw []byte `json:"raw,omitempty"`
	// Buckets is the rollup history (Merged): every sample ever appended is
	// in exactly one bucket.
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Quantile estimates the q-quantile of the series' full history from its
// rollup buckets (bucket means weighted by count).
func (s *SeriesSnapshot) Quantile(q float64) float64 { return quantileOf(s.Buckets, q) }

// Points decodes the snapshot's raw window.
func (s *SeriesSnapshot) Points() ([]Point, error) { return DecodeRaw(s.Raw) }

// Snapshot is a whole recorder's exported state, series sorted by name.
type Snapshot struct {
	IntervalNS int64            `json:"interval_ns"`
	Samples    uint64           `json:"samples"`
	Series     []SeriesSnapshot `json:"series"`
}

// Snapshot exports one series.
func (s *Series) Snapshot() SeriesSnapshot {
	rawN := s.enc.n
	for _, c := range s.chunks {
		rawN += c.n
	}
	return SeriesSnapshot{
		Name:     s.Name,
		Volatile: s.Volatile,
		Count:    s.count,
		Min:      s.Min(),
		Max:      s.Max(),
		Mean:     s.Mean(),
		Last:     s.lastV,
		RawN:     rawN,
		Raw:      s.encodeChunks(),
		Buckets:  s.Merged(),
	}
}

// Snapshot exports the recorder's series, sorted by name. With
// includeVolatile false — the deterministic snapshot — wall-clock-dependent
// series are left out, and the result is byte-identical across serial and
// parallel runs of the same scenario.
func (r *Recorder) Snapshot(includeVolatile bool) *Snapshot {
	out := &Snapshot{IntervalNS: int64(r.cfg.Interval), Samples: r.samples}
	for _, s := range r.Series(includeVolatile) {
		out.Series = append(out.Series, s.Snapshot())
	}
	return out
}

// WriteJSON writes the snapshot as one deterministic JSON document.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(s)
}

// ReadSnapshot decodes a snapshot written by WriteJSON.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, err
	}
	return &s, nil
}

// WriteCSV dumps the rollup buckets of every series as CSV rows
// (series,t0_ns,t1_ns,min,max,mean,count) — the whole history at rollup
// resolution, ready for a spreadsheet or pandas.
func (s *Snapshot) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"series", "t0_ns", "t1_ns", "min", "max", "mean", "count"}); err != nil {
		return err
	}
	for _, sr := range s.Series {
		for _, b := range sr.Buckets {
			rec := []string{
				sr.Name,
				strconv.FormatInt(b.T0, 10),
				strconv.FormatInt(b.T1, 10),
				strconv.FormatFloat(b.Min, 'g', -1, 64),
				strconv.FormatFloat(b.Max, 'g', -1, 64),
				strconv.FormatFloat(b.Mean(), 'g', -1, 64),
				strconv.FormatUint(uint64(b.Count), 10),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// CounterTracks converts the recorder's raw windows into vtrace counter
// tracks, so a Perfetto export shows the sampled series as counter lanes
// alongside the event-derived tracks. Series are in name order and points in
// time order, so the export stays byte-deterministic.
func (r *Recorder) CounterTracks(includeVolatile bool) []vtrace.CounterTrack {
	series := r.Series(includeVolatile)
	if len(series) == 0 {
		return nil
	}
	t := vtrace.CounterTrack{Process: "telemetry"}
	for _, s := range series {
		pts := s.RawPoints()
		if len(pts) == 0 {
			continue
		}
		cs := vtrace.CounterSeries{Name: s.Name, Points: make([]vtrace.CounterPoint, len(pts))}
		for i, p := range pts {
			cs.Points[i] = vtrace.CounterPoint{At: sim.Time(p.T), Value: p.V}
		}
		t.Series = append(t.Series, cs)
	}
	if len(t.Series) == 0 {
		return nil
	}
	return []vtrace.CounterTrack{t}
}

var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// sparkline renders bucket means as width cells of block glyphs, scaled to
// the series' own min..max. Buckets map to cells proportionally by index.
func sparkline(bs []Bucket, width int) string {
	cells := make([]float64, width)
	counts := make([]int, width)
	n := 0
	for _, b := range bs {
		if b.Count > 0 {
			n++
		}
	}
	if n == 0 {
		return strings.Repeat(" ", width)
	}
	i := 0
	for _, b := range bs {
		if b.Count == 0 {
			continue
		}
		cell := i * width / n
		cells[cell] += b.Mean()
		counts[cell]++
		i++
	}
	lo, hi := 0.0, 0.0
	first := true
	for c, k := range counts {
		if k == 0 {
			continue
		}
		v := cells[c] / float64(k)
		cells[c] = v
		if first || v < lo {
			lo = v
		}
		if first || v > hi {
			hi = v
		}
		first = false
	}
	var b strings.Builder
	for c, k := range counts {
		if k == 0 {
			b.WriteByte(' ')
			continue
		}
		level := 0
		if hi > lo {
			level = int((cells[c] - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		b.WriteRune(sparkRunes[level])
	}
	return b.String()
}

// Summary renders one sparkline line per series — the -telemetry output of
// the CLIs. Deterministic for a deterministic snapshot.
func (s *Snapshot) Summary() string {
	if len(s.Series) == 0 {
		return "telemetry: no series\n"
	}
	w := 0
	for _, sr := range s.Series {
		if len(sr.Name) > w {
			w = len(sr.Name)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "telemetry: %d series, %d samples, interval %v\n",
		len(s.Series), s.Samples, sim.Duration(s.IntervalNS))
	for _, sr := range s.Series {
		fmt.Fprintf(&b, "  %-*s %s min=%.4g mean=%.4g p95=%.4g max=%.4g last=%.4g\n",
			w, sr.Name, sparkline(sr.Buckets, 32),
			sr.Min, sr.Mean, sr.Quantile(0.95), sr.Max, sr.Last)
	}
	return b.String()
}
