package telemetry

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzGorillaRoundTrip feeds arbitrary point streams through the encoder and
// decoder and demands a bit-exact round trip. The corpus seeds cover the
// encoder's special paths: constant values (XOR == 0), monotonic ramps
// (window reuse), NaN payloads and infinities (full 64-bit residues), and
// dod values pushed out of every bucket (raw 64-bit fallback).
func FuzzGorillaRoundTrip(f *testing.F) {
	seed := func(pts ...Point) []byte {
		var out []byte
		var tmp [8]byte
		for _, p := range pts {
			binary.LittleEndian.PutUint64(tmp[:], uint64(p.T))
			out = append(out, tmp[:]...)
			binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(p.V))
			out = append(out, tmp[:]...)
		}
		return out
	}
	f.Add(seed(Point{0, 1}, Point{100, 1}, Point{200, 1}))          // constant
	f.Add(seed(Point{0, 0}, Point{1, 1}, Point{2, 2}, Point{3, 3})) // monotonic
	f.Add(seed(Point{0, math.NaN()}, Point{1, math.Inf(1)}, Point{2, math.Inf(-1)}))
	f.Add(seed(Point{0, 1}, Point{1 << 40, 2}, Point{1<<40 + 1, 3})) // dod fallback
	f.Add(seed(Point{0, math.Float64frombits(0x7ff8000000001234)}))  // NaN payload
	f.Add([]byte{1, 2, 3})                                           // ragged tail

	f.Fuzz(func(t *testing.T, data []byte) {
		// Each 16-byte window is one point; timestamp deltas are made
		// non-negative so the stream is valid by construction.
		var pts []Point
		last := int64(0)
		for len(data) >= 16 {
			d := int64(binary.LittleEndian.Uint64(data[:8]))
			if d < 0 {
				d = -d
			}
			if d < 0 { // math.MinInt64
				d = 0
			}
			// Keep timestamps from overflowing int64 over many points.
			last += d % (1 << 48)
			v := math.Float64frombits(binary.LittleEndian.Uint64(data[8:16]))
			pts = append(pts, Point{T: last, V: v})
			data = data[16:]
		}
		var e gorillaEnc
		for _, p := range pts {
			e.append(p.T, p.V)
		}
		got, err := decodeGorilla(nil, e.bytes(), e.n)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(got) != len(pts) {
			t.Fatalf("decoded %d points, want %d", len(got), len(pts))
		}
		for i := range pts {
			if got[i].T != pts[i].T {
				t.Fatalf("point %d: t=%d want %d", i, got[i].T, pts[i].T)
			}
			if math.Float64bits(got[i].V) != math.Float64bits(pts[i].V) {
				t.Fatalf("point %d: v bits %x want %x", i,
					math.Float64bits(got[i].V), math.Float64bits(pts[i].V))
			}
		}
	})
}
