package telemetry

import (
	"testing"

	"vsched/internal/metrics"
	"vsched/internal/sim"
)

func TestRecorderCensusAppearsInFlatten(t *testing.T) {
	eng := sim.NewEngine(1)
	rec := New(eng, Config{Interval: 10 * sim.Millisecond})
	rec.Record("demo.x", 1)
	rec.Record("demo.y", 2)
	rec.SampleNow()

	reg := metrics.NewRegistry()
	rec.UpdateCensus(reg)
	flat := reg.Snapshot().Flatten()
	if got := flat["telemetry.series"]; got != 2 {
		t.Fatalf("telemetry.series = %v, want 2", got)
	}
	if got := flat["telemetry.bytes"]; got <= 0 {
		t.Fatalf("telemetry.bytes = %v, want > 0", got)
	}
	if got := flat["telemetry.max_bytes"]; got != float64(2*MaxSeriesBytes(rec.cfg)) {
		t.Fatalf("telemetry.max_bytes = %v, want %d", got, 2*MaxSeriesBytes(rec.cfg))
	}
	occ := flat["telemetry.occupancy"]
	if occ <= 0 || occ > 1 {
		t.Fatalf("telemetry.occupancy = %v, want in (0, 1]", occ)
	}
	if occ != flat["telemetry.bytes"]/flat["telemetry.max_bytes"] {
		t.Fatalf("occupancy %v != bytes/max_bytes %v", occ, flat["telemetry.bytes"]/flat["telemetry.max_bytes"])
	}
	if _, ok := flat["telemetry.samples"]; !ok {
		t.Fatalf("telemetry.samples missing from Flatten: %v", flat)
	}
}

func TestRecorderCensusNilSafe(t *testing.T) {
	var rec *Recorder
	reg := metrics.NewRegistry()
	rec.UpdateCensus(reg) // must not panic
	if len(reg.Snapshot().Flatten()) != 0 {
		t.Fatalf("nil recorder wrote gauges")
	}
	eng := sim.NewEngine(1)
	New(eng, Config{}).UpdateCensus(nil) // must not panic
}
