// Package cachemodel models the latency of transferring a cache line
// between two hardware threads, as a function of their topological relation.
// vtop (internal/core) uses these latencies the same way the paper's prober
// uses real atomic read-modify-write ping-pong: the observed minimum latency
// classifies the relation between two vCPUs.
//
// Default values follow Fig. 10(b) of the paper: ~6-7 ns between SMT
// siblings (line stays in the shared private cache), ~45-50 ns between cores
// of one socket (L2->L2 or LLC transfer), ~95-116 ns across sockets
// (inter-socket bus). Stacked vCPUs never run simultaneously, so transfers
// essentially never complete; the prober reports an infinite distance.
package cachemodel

import (
	"math"
	"math/rand"
)

// Relation is the topological relation between the hardware threads hosting
// two vCPUs at a given moment.
type Relation int

const (
	// Self means the two entities share one hardware thread (stacked vCPUs).
	Self Relation = iota
	// SMT means sibling hardware threads of one core (shared L1/L2).
	SMT
	// Socket means different cores within one socket (shared LLC).
	Socket
	// Cross means different sockets (inter-socket interconnect).
	Cross
)

func (r Relation) String() string {
	switch r {
	case Self:
		return "stacked"
	case SMT:
		return "smt-sibling"
	case Socket:
		return "inter-core"
	case Cross:
		return "cross-socket"
	}
	return "unknown"
}

// Infinite is the latency reported for pairs whose transfers never complete
// (stacked vCPUs). Matches the ∞ entries of Fig. 10(b).
const Infinite = math.MaxInt64

// Model holds the base one-way transfer latencies in nanoseconds and a
// relative jitter applied per measurement.
type Model struct {
	SMTBase    int64   // same core, sibling threads
	SocketBase int64   // same socket, different core
	CrossBase  int64   // different sockets
	JitterFrac float64 // relative measurement noise, e.g. 0.15
	// AttemptCost is the CPU cost of one probe attempt (atomic RMW plus spin
	// check); it bounds how fast the prober can cycle even when the partner
	// is inactive.
	AttemptCost int64
}

// Default returns a model calibrated to the paper's measured matrix.
func Default() Model {
	return Model{
		SMTBase:     6,
		SocketBase:  46,
		CrossBase:   100,
		JitterFrac:  0.18,
		AttemptCost: 30,
	}
}

// Base returns the noise-free one-way transfer latency for a relation.
// Self returns Infinite.
func (m Model) Base(r Relation) int64 {
	switch r {
	case SMT:
		return m.SMTBase
	case Socket:
		return m.SocketBase
	case Cross:
		return m.CrossBase
	default:
		return Infinite
	}
}

// Sample returns one measured transfer latency for a relation, with
// measurement noise. Noise is strictly additive (contention, queuing), so
// the minimum over many samples converges to Base — exactly why the paper's
// prober records the lowest latency.
func (m Model) Sample(r Relation, rng *rand.Rand) int64 {
	b := m.Base(r)
	if b == Infinite {
		return Infinite
	}
	noise := rng.ExpFloat64() * m.JitterFrac * float64(b)
	return b + int64(noise)
}

// RoundTripCost returns the CPU time one successful probe transfer consumes
// on each participating vCPU: the line bounces both ways plus per-attempt
// overhead.
func (m Model) RoundTripCost(r Relation) int64 {
	b := m.Base(r)
	if b == Infinite {
		return Infinite
	}
	return 2*b + m.AttemptCost
}

// Classify maps a measured minimum latency back to the relation it most
// likely came from, using midpoints between the base latencies as decision
// boundaries. This is the inverse operation vtop applies to its matrix.
func (m Model) Classify(minLatency int64) Relation {
	if minLatency == Infinite {
		return Self
	}
	smtSocket := (m.SMTBase + m.SocketBase) / 2
	socketCross := (m.SocketBase + m.CrossBase) / 2
	switch {
	case minLatency <= smtSocket:
		return SMT
	case minLatency <= socketCross:
		return Socket
	default:
		return Cross
	}
}
