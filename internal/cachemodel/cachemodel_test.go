package cachemodel

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRelationString(t *testing.T) {
	for r, want := range map[Relation]string{
		Self: "stacked", SMT: "smt-sibling", Socket: "inter-core", Cross: "cross-socket",
		Relation(99): "unknown",
	} {
		if got := r.String(); got != want {
			t.Fatalf("%d: got %q want %q", r, got, want)
		}
	}
}

func TestBaseOrdering(t *testing.T) {
	m := Default()
	if !(m.Base(SMT) < m.Base(Socket) && m.Base(Socket) < m.Base(Cross)) {
		t.Fatal("base latencies must be strictly ordered SMT < Socket < Cross")
	}
	if m.Base(Self) != Infinite {
		t.Fatal("stacked pairs must be infinitely distant")
	}
}

func TestSampleNoiseIsAdditive(t *testing.T) {
	m := Default()
	rng := rand.New(rand.NewSource(1))
	for _, r := range []Relation{SMT, Socket, Cross} {
		min := int64(1 << 62)
		for i := 0; i < 500; i++ {
			s := m.Sample(r, rng)
			if s < m.Base(r) {
				t.Fatalf("sample %d below base %d for %v", s, m.Base(r), r)
			}
			if s < min {
				min = s
			}
		}
		// The minimum of many samples converges near the base latency.
		if min > m.Base(r)+m.Base(r)/4+2 {
			t.Fatalf("min sample %d too far above base %d for %v", min, m.Base(r), r)
		}
	}
	if m.Sample(Self, rng) != Infinite {
		t.Fatal("stacked sample must be Infinite")
	}
}

func TestClassifyRoundTrip(t *testing.T) {
	m := Default()
	rng := rand.New(rand.NewSource(2))
	for _, r := range []Relation{Self, SMT, Socket, Cross} {
		// Even a single noisy sample should classify correctly with default
		// jitter; vtop uses the min of hundreds.
		minLat := int64(1 << 62)
		if r == Self {
			minLat = Infinite
		} else {
			for i := 0; i < 100; i++ {
				if s := m.Sample(r, rng); s < minLat {
					minLat = s
				}
			}
		}
		if got := m.Classify(minLat); got != r {
			t.Fatalf("classify(min of %v samples)=%v", r, got)
		}
	}
}

// Property: classification of the noise-free base latency is always the
// original relation, for any sane model geometry.
func TestClassifyProperty(t *testing.T) {
	prop := func(smt, gapSocket, gapCross uint8) bool {
		m := Model{
			SMTBase:    int64(smt%40) + 1,
			JitterFrac: 0.1,
		}
		m.SocketBase = m.SMTBase + int64(gapSocket%100) + 2
		m.CrossBase = m.SocketBase + int64(gapCross%100) + 2
		for _, r := range []Relation{SMT, Socket, Cross} {
			if m.Classify(m.Base(r)) != r {
				return false
			}
		}
		return m.Classify(Infinite) == Self
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripCost(t *testing.T) {
	m := Default()
	if m.RoundTripCost(Self) != Infinite {
		t.Fatal("stacked round trip must be Infinite")
	}
	if c := m.RoundTripCost(SMT); c != 2*m.SMTBase+m.AttemptCost {
		t.Fatalf("smt cost=%d", c)
	}
	if m.RoundTripCost(Cross) <= m.RoundTripCost(SMT) {
		t.Fatal("cross-socket transfers must cost more than SMT")
	}
}
