package cloudgen

import (
	"fmt"
	"hash/fnv"
	"math"
	"reflect"
	"sort"
	"testing"

	"vsched/internal/faults"
	"vsched/internal/sim"
)

// smallConfig keeps unit-test traces cheap: ~2.5k VMs over 12h on 24 hosts.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Horizon = 12 * Hour
	cfg.BaseRate = 200
	cfg.Hosts = []HostClass{
		{Name: "std16", Count: 16, Cores: 8, SMT: 2, SpeedFactor: 1.0},
		{Name: "small8", Count: 8, Cores: 8, SMT: 1, SpeedFactor: 0.9},
	}
	return cfg
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(7, smallConfig())
	b := Generate(7, smallConfig())
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different traces")
	}
	c := Generate(8, smallConfig())
	if reflect.DeepEqual(a.VMs, c.VMs) {
		t.Fatal("different seeds produced identical arrival sequences")
	}
}

// encode renders a trace into a canonical byte form: every field of every
// arrival and host, so any drift anywhere shows up in the digest.
func encode(tr Trace) []byte {
	h := fnv.New64a()
	fmt.Fprintf(h, "seed=%d horizon=%d\n", tr.Seed, tr.Horizon)
	out := []byte{}
	for _, hs := range tr.Hosts {
		fmt.Fprintf(h, "host %s %d %x\n", hs.Class, hs.Threads, math.Float64bits(hs.SpeedFactor))
	}
	for _, vm := range tr.VMs {
		fmt.Fprintf(h, "vm %d %d %d %d %x %d %d\n",
			vm.ID, vm.At, vm.VCPUs, vm.Class, math.Float64bits(vm.Demand), vm.Lifetime, vm.Work)
	}
	return h.Sum(out)
}

// TestGoldenTrace pins the generator's exact output for a fixed seed: any
// change to the sampling order, distribution code or defaults shows up as a
// digest mismatch and must be a deliberate, documented break.
func TestGoldenTrace(t *testing.T) {
	tr := Generate(42, smallConfig())
	got := fmt.Sprintf("%x", encode(tr))
	const want = goldenTraceDigest
	if got != want {
		t.Fatalf("golden trace digest changed: got %s want %s (VMs=%d)", got, want, len(tr.VMs))
	}
}

func TestTraceShape(t *testing.T) {
	cfg := smallConfig()
	tr := Generate(3, cfg)
	if len(tr.VMs) == 0 {
		t.Fatal("empty trace")
	}
	if len(tr.Hosts) != 24 {
		t.Fatalf("host expansion: got %d hosts, want 24", len(tr.Hosts))
	}
	// Stable fleet order: class declaration order, then instance index.
	if tr.Hosts[0].Class != "std16" || tr.Hosts[16].Class != "small8" {
		t.Fatalf("host order not stable: %s / %s", tr.Hosts[0].Class, tr.Hosts[16].Class)
	}
	if tr.TotalThreads() != 16*16+8*8 {
		t.Fatalf("total threads %d", tr.TotalThreads())
	}
	var last sim.Time
	for i, vm := range tr.VMs {
		if vm.ID != i {
			t.Fatalf("IDs not sequential: VMs[%d].ID=%d", i, vm.ID)
		}
		if vm.At < last {
			t.Fatalf("arrivals not time-sorted at %d", i)
		}
		last = vm.At
		if vm.At < 0 || vm.At >= sim.Time(cfg.Horizon) {
			t.Fatalf("arrival %d outside horizon: %v", i, vm.At)
		}
		if vm.VCPUs < cfg.Size.MinVCPUs || vm.VCPUs > cfg.Size.MaxVCPUs {
			t.Fatalf("size %d outside [%d,%d]", vm.VCPUs, cfg.Size.MinVCPUs, cfg.Size.MaxVCPUs)
		}
		switch vm.Class {
		case Batch:
			if vm.Work <= 0 || vm.Lifetime != 0 || vm.Demand != 1.0 {
				t.Fatalf("batch VM %d malformed: %+v", i, vm)
			}
		case Service:
			if vm.Lifetime <= 0 || vm.Work != 0 || vm.Demand != cfg.ServiceDemand {
				t.Fatalf("service VM %d malformed: %+v", i, vm)
			}
		}
	}
}

func TestMaxVMsCap(t *testing.T) {
	cfg := smallConfig()
	cfg.MaxVMs = 100
	tr := Generate(5, cfg)
	if len(tr.VMs) != 100 {
		t.Fatalf("cap ignored: %d VMs", len(tr.VMs))
	}
}

// paretoCDF is the bounded-Pareto CDF on [lo,hi].
func paretoCDF(x, alpha, lo, hi float64) float64 {
	if x <= lo {
		return 0
	}
	if x >= hi {
		return 1
	}
	la := math.Pow(lo, alpha)
	return (1 - la*math.Pow(x, -alpha)) / (1 - la/math.Pow(hi, alpha))
}

// TestSizeTailMatchesPareto compares the empirical size CDF against the
// configured bounded Pareto at every power-of-two threshold, across seeds.
// Sizes are floor-discretized, so P(size <= n) = F(n+1).
func TestSizeTailMatchesPareto(t *testing.T) {
	cfg := smallConfig()
	cfg.BaseRate = 800 // ~10k samples
	for _, seed := range []int64{1, 2, 3} {
		tr := Generate(seed, cfg)
		n := float64(len(tr.VMs))
		if n < 5000 {
			t.Fatalf("seed %d: too few samples (%v) for a tail check", seed, n)
		}
		for _, thr := range []int{1, 2, 4, 8, 16} {
			count := 0
			for _, vm := range tr.VMs {
				if vm.VCPUs <= thr {
					count++
				}
			}
			got := float64(count) / n
			want := paretoCDF(float64(thr+1), cfg.Size.Alpha,
				float64(cfg.Size.MinVCPUs), float64(cfg.Size.MaxVCPUs))
			if math.Abs(got-want) > 0.025 {
				t.Fatalf("seed %d: P(vcpus<=%d)=%.4f, bounded Pareto wants %.4f", seed, thr, got, want)
			}
		}
	}
}

// ksStat computes the two-sided Kolmogorov-Smirnov statistic of samples
// against an analytic CDF.
func ksStat(samples []float64, cdf func(float64) float64) float64 {
	sort.Float64s(samples)
	n := float64(len(samples))
	d := 0.0
	for i, x := range samples {
		f := cdf(x)
		if hi := float64(i+1)/n - f; hi > d {
			d = hi
		}
		if lo := f - float64(i)/n; lo > d {
			d = lo
		}
	}
	return d
}

// lognormalCDF with the package's (median, log-sigma) parameterisation.
func lognormalCDF(x, median, sigma float64) float64 {
	if x <= 0 {
		return 0
	}
	return 0.5 * math.Erfc(-(math.Log(x)-math.Log(median))/(sigma*math.Sqrt2))
}

// TestLifetimesMatchConfiguredDistributions KS-tests both lifetime modes
// against their configured lognormals, across seeds. The 1ms floor trims a
// vanishing amount of mass, so the KS distance stays near sampling noise.
func TestLifetimesMatchConfiguredDistributions(t *testing.T) {
	cfg := smallConfig()
	cfg.BaseRate = 800
	for _, seed := range []int64{11, 12, 13} {
		tr := Generate(seed, cfg)
		var work, life []float64
		for _, vm := range tr.VMs {
			if vm.Class == Batch {
				work = append(work, float64(vm.Work))
			} else {
				life = append(life, float64(vm.Lifetime))
			}
		}
		if len(work) < 1000 || len(life) < 500 {
			t.Fatalf("seed %d: too few samples (batch %d, service %d)", seed, len(work), len(life))
		}
		lf := cfg.Lifetime
		if d := ksStat(work, func(x float64) float64 {
			return lognormalCDF(x, float64(lf.EphemeralMean), lf.EphemeralSigma)
		}); d > 0.05 {
			t.Fatalf("seed %d: batch work KS distance %.4f vs configured lognormal", seed, d)
		}
		if d := ksStat(life, func(x float64) float64 {
			return lognormalCDF(x, float64(lf.LongMean), lf.LongSigma)
		}); d > 0.05 {
			t.Fatalf("seed %d: service lifetime KS distance %.4f vs configured lognormal", seed, d)
		}
		// Bimodal mix: empirical ephemeral fraction tracks the configured one.
		frac := float64(len(work)) / float64(len(work)+len(life))
		if math.Abs(frac-lf.EphemeralFrac) > 0.03 {
			t.Fatalf("seed %d: ephemeral fraction %.3f, configured %.3f", seed, frac, lf.EphemeralFrac)
		}
	}
}

// TestDiurnalModulation bins arrivals by hour-of-day across the horizon and
// checks the peak-to-trough ratio approaches (1+A)/(1-A).
func TestDiurnalModulation(t *testing.T) {
	cfg := smallConfig()
	cfg.Horizon = 48 * Hour
	cfg.BaseRate = 400
	bins := make([]int, 24)
	for _, seed := range []int64{21, 22} {
		tr := Generate(seed, cfg)
		for _, vm := range tr.VMs {
			hr := int(vm.At/sim.Time(Hour)) % 24
			bins[hr]++
		}
	}
	peak, trough := 0, math.MaxInt
	for _, b := range bins {
		if b > peak {
			peak = b
		}
		if b < trough {
			trough = b
		}
	}
	want := (1 + cfg.DiurnalAmplitude) / (1 - cfg.DiurnalAmplitude) // 4.0 at A=0.6
	ratio := float64(peak) / float64(trough)
	if ratio < want*0.6 || ratio > want*1.6 {
		t.Fatalf("peak/trough hourly arrivals %.2f, diurnal modulation wants ~%.1f", ratio, want)
	}
	// An unmodulated process must look flat through the same binning.
	flat := cfg
	flat.DiurnalAmplitude = 0
	fb := make([]int, 24)
	tr := Generate(23, flat)
	for _, vm := range tr.VMs {
		fb[int(vm.At/sim.Time(Hour))%24]++
	}
	fp, ft := 0, math.MaxInt
	for _, b := range fb {
		if b > fp {
			fp = b
		}
		if b < ft {
			ft = b
		}
	}
	if r := float64(fp) / float64(ft); r > 2.0 {
		t.Fatalf("unmodulated trace shows %.2fx hourly swing", r)
	}
}

// TestLognormalSizes covers the alternative size family end to end.
func TestLognormalSizes(t *testing.T) {
	cfg := smallConfig()
	cfg.Size = SizeDist{Kind: SizeLognormal, MinVCPUs: 1, MaxVCPUs: 16, Mu: 1.0, Sigma: 0.8}
	tr := Generate(9, cfg)
	seen := map[int]int{}
	for _, vm := range tr.VMs {
		if vm.VCPUs < 1 || vm.VCPUs > 16 {
			t.Fatalf("lognormal size %d out of bounds", vm.VCPUs)
		}
		seen[vm.VCPUs]++
	}
	// exp(mu)=e~2.7: mass must straddle the median, not pile on a clamp.
	if seen[1] == 0 || seen[2] == 0 || seen[4] == 0 {
		t.Fatalf("lognormal sizes degenerate: %v", seen)
	}
	if seen[16] > len(tr.VMs)/4 {
		t.Fatalf("lognormal sizes piled on the upper clamp: %v", seen)
	}
}

func TestSizeClampToLargestHost(t *testing.T) {
	cfg := smallConfig()
	cfg.Hosts = []HostClass{{Name: "tiny", Count: 4, Cores: 2, SMT: 2, SpeedFactor: 1.0}}
	tr := Generate(13, cfg)
	for _, vm := range tr.VMs {
		if vm.VCPUs > 4 {
			t.Fatalf("VM of %d vCPUs cannot be placed on 4-thread hosts", vm.VCPUs)
		}
	}
}

func TestValidatePanics(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.DiurnalAmplitude = 1.0 },
		func(c *Config) { c.Size.MinVCPUs = 0 },
		func(c *Config) { c.Size.MaxVCPUs = 0 },
		func(c *Config) { c.Size.Alpha = -1 },
		func(c *Config) { c.Lifetime.EphemeralFrac = 1.5 },
		func(c *Config) { c.Lifetime.EphemeralMean = -Hour },
		func(c *Config) { c.Hosts = []HostClass{{Name: "bad", Count: 0, Cores: 1, SMT: 1, SpeedFactor: 1}} },
		func(c *Config) { c.Hosts = []HostClass{{Name: "bad", Count: 1, Cores: 1, SMT: 1, SpeedFactor: -1}} },
	}
	for i, mut := range cases {
		cfg := smallConfig()
		mut(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: invalid config did not panic", i)
				}
			}()
			Generate(1, cfg)
		}()
	}
}

// TestFaultScheduleIndependent: turning faults on must not perturb the VM or
// host sequences (the fault generator draws from its own sub-streams), and
// the schedule itself must be deterministic and non-empty at these MTBFs.
func TestFaultScheduleIndependent(t *testing.T) {
	plain := smallConfig()
	faulty := smallConfig()
	faulty.Faults = &faults.Config{
		CrashMTBF:    6 * Hour,
		BrownoutMTBF: 4 * Hour,
		StallMTBF:    2 * Hour,
		MigFailProb:  0.1,
	}
	a := Generate(7, plain)
	b := Generate(7, faulty)
	if !reflect.DeepEqual(a.VMs, b.VMs) || !reflect.DeepEqual(a.Hosts, b.Hosts) {
		t.Fatal("enabling faults changed the VM/host trace")
	}
	if a.Faults != nil {
		t.Fatal("fault schedule present without Config.Faults")
	}
	if b.Faults == nil || len(b.Faults.Events) == 0 {
		t.Fatal("Config.Faults set but no schedule generated")
	}
	c := Generate(7, faulty)
	if !reflect.DeepEqual(b.Faults, c.Faults) {
		t.Fatal("same seed produced different fault schedules")
	}
}
