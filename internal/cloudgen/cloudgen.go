// Package cloudgen generates realistic cloud-fleet workload traces: the
// arrival process, sizing, lifetime mix and host population a production
// region sees, rather than the small hand-rolled mixes the early fleet
// experiments used. The shapes follow the SAP Cloud Infrastructure Dataset
// characterization (arXiv:2510.23911):
//
//   - VM sizes are heavy-tailed — most VMs are small, a fat tail of large
//     ones carries much of the capacity. Sampled from a bounded Pareto or a
//     lognormal, rounded to whole vCPUs.
//   - Arrival rates are diurnal — a sinusoidally modulated Poisson process
//     over a multi-day horizon (non-homogeneous Poisson via thinning).
//   - Lifetimes are bimodal — a large population of ephemeral batch VMs
//     (minutes) under a smaller population of long-lived services (hours to
//     days). Batch VMs carry a work budget whose completion stretches under
//     contention; service VMs live for a fixed wall-clock lifetime.
//   - Hosts are heterogeneous — several host classes (core count, SMT,
//     per-thread speed) expanded into a flat fleet spec.
//
// Everything is a pure function of (seed, Config): Generate draws from one
// private rand stream, so the same inputs always produce the byte-identical
// trace, and traces can be replayed across policy comparisons. The package
// deliberately knows nothing about the fleet simulator; internal/fleet
// consumes Trace.
package cloudgen

import (
	"fmt"
	"math"
	"math/rand"

	"vsched/internal/faults"
	"vsched/internal/sim"
)

// SizeKind selects the VM vCPU-count distribution family.
type SizeKind int

const (
	// SizePareto draws sizes from a bounded Pareto: P(X > x) ~ x^-Alpha on
	// [MinVCPUs, MaxVCPUs]. Alpha in 1..2 gives the production-like shape
	// where the mean is dominated by the tail.
	SizePareto SizeKind = iota
	// SizeLognormal draws exp(N(Mu, Sigma)) clamped to [MinVCPUs, MaxVCPUs].
	SizeLognormal
)

func (k SizeKind) String() string {
	switch k {
	case SizePareto:
		return "pareto"
	case SizeLognormal:
		return "lognormal"
	}
	return "?"
}

// SizeDist parameterises the VM size (vCPU count) distribution.
type SizeDist struct {
	Kind     SizeKind
	MinVCPUs int
	MaxVCPUs int
	// Alpha is the Pareto tail exponent (SizePareto).
	Alpha float64
	// Mu, Sigma are the log-space parameters (SizeLognormal).
	Mu, Sigma float64
}

// LifetimeDist parameterises the bimodal lifetime mix.
type LifetimeDist struct {
	// EphemeralFrac is the probability an arrival is an ephemeral batch VM;
	// the rest are long-lived services.
	EphemeralFrac float64
	// EphemeralMean/EphemeralSigma shape the lognormal work budget of batch
	// VMs: median EphemeralMean, log-space sigma EphemeralSigma.
	EphemeralMean  sim.Duration
	EphemeralSigma float64
	// LongMean/LongSigma shape the lognormal wall-clock lifetime of service
	// VMs the same way.
	LongMean  sim.Duration
	LongSigma float64
}

// HostClass describes one homogeneous slice of a heterogeneous fleet.
type HostClass struct {
	Name  string
	Count int
	// Cores and SMT give Threads = Cores*SMT schedulable entities per host.
	Cores int
	SMT   int
	// SpeedFactor scales per-thread capacity relative to the reference
	// thread (1.0); big instances run newer, faster parts.
	SpeedFactor float64
}

// Threads is the number of schedulable hardware threads per host.
func (c HostClass) Threads() int { return c.Cores * c.SMT }

// Config parameterises Generate. Zero fields take DefaultConfig values.
type Config struct {
	// Horizon is the arrival window; VMs arrive in [0, Horizon).
	Horizon sim.Duration
	// BaseRate is the mean arrival rate in VMs per simulated hour.
	BaseRate float64
	// DiurnalAmplitude in [0,1) modulates the rate sinusoidally:
	// rate(t) = BaseRate * (1 + A*sin(2*pi*t/Period + Phase)).
	DiurnalAmplitude float64
	// DiurnalPeriod defaults to 24 simulated hours.
	DiurnalPeriod sim.Duration
	// DiurnalPhase shifts the peak (radians).
	DiurnalPhase float64
	// ServiceDemand is the per-vCPU CPU demand fraction of service VMs
	// (mostly idle between requests); batch VMs always demand 1.0.
	ServiceDemand float64
	Size          SizeDist
	Lifetime      LifetimeDist
	Hosts         []HostClass
	// MaxVMs caps the trace length (0 = uncapped).
	MaxVMs int
	// Faults, when non-nil, also generates a host fault schedule for the
	// expanded fleet (see internal/faults). faults.Generate draws from its
	// own per-(host, kind) sub-streams keyed off the trace seed — nothing is
	// consumed from the arrival stream, so the VM trace is byte-identical
	// with faults on or off (the golden digest test pins this).
	Faults *faults.Config
}

// Hour is one simulated hour.
const Hour = 3600 * sim.Second

// DefaultConfig is a production-shaped region scaled to fit a CI budget:
// 1024 heterogeneous hosts under a diurnal arrival process that yields
// ~100k VM lifetimes over a 48h horizon.
func DefaultConfig() Config {
	return Config{
		Horizon:          48 * Hour,
		BaseRate:         2400, // VMs/hour -> ~115k over 48h
		DiurnalAmplitude: 0.6,
		DiurnalPeriod:    24 * Hour,
		DiurnalPhase:     0,
		ServiceDemand:    0.5,
		Size: SizeDist{
			Kind:     SizePareto,
			MinVCPUs: 1,
			MaxVCPUs: 32,
			Alpha:    1.4,
		},
		Lifetime: LifetimeDist{
			EphemeralFrac:  0.72,
			EphemeralMean:  18 * 60 * sim.Second, // median 18 min of work
			EphemeralSigma: 1.0,
			LongMean:       8 * Hour, // median 8 h lifetime
			LongSigma:      1.2,
		},
		Hosts: []HostClass{
			{Name: "std16", Count: 512, Cores: 8, SMT: 2, SpeedFactor: 1.0},
			{Name: "big32", Count: 384, Cores: 16, SMT: 2, SpeedFactor: 1.15},
			{Name: "small8", Count: 128, Cores: 8, SMT: 1, SpeedFactor: 0.9},
		},
	}
}

// Class tags a VM's tenant behaviour.
type Class uint8

const (
	// Service VMs are latency-sensitive, partially idle, and live for a
	// fixed wall-clock lifetime.
	Service Class = iota
	// Batch VMs are CPU-bound and depart when their work budget completes —
	// later if contention starves them.
	Batch
)

func (c Class) String() string {
	if c == Batch {
		return "batch"
	}
	return "service"
}

// VM is one arrival of the generated trace.
type VM struct {
	ID    int
	At    sim.Time
	VCPUs int
	Class Class
	// Demand is the CPU fraction each vCPU wants while the VM is alive.
	Demand float64
	// Lifetime is the wall-clock residency of a Service VM (0 for Batch).
	Lifetime sim.Duration
	// Work is the per-vCPU compute budget of a Batch VM at full allocation
	// (0 for Service); its completion stretches under contention.
	Work sim.Duration
}

// HostSpec is one host of the expanded fleet, in stable fleet order: class
// declaration order, then instance index within the class. Placement
// policies key on this order for deterministic tie-breaking.
type HostSpec struct {
	Class       string
	Threads     int
	SpeedFactor float64
}

// Trace is the full generated workload: the host population and the arrival
// sequence, sorted by (At, ID).
type Trace struct {
	Seed    int64
	Horizon sim.Duration
	Hosts   []HostSpec
	VMs     []VM
	// Faults is the host fault schedule when Config.Faults was set; nil
	// otherwise. Generated from an independent stream: the VM sequence above
	// is identical either way.
	Faults *faults.Schedule
}

// TotalThreads sums hardware threads across the fleet.
func (t Trace) TotalThreads() int {
	n := 0
	for _, h := range t.Hosts {
		n += h.Threads
	}
	return n
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Horizon <= 0 {
		c.Horizon = d.Horizon
	}
	if c.BaseRate <= 0 {
		c.BaseRate = d.BaseRate
	}
	if c.DiurnalPeriod <= 0 {
		c.DiurnalPeriod = d.DiurnalPeriod
	}
	if c.ServiceDemand <= 0 || c.ServiceDemand > 1 {
		c.ServiceDemand = d.ServiceDemand
	}
	if c.Size == (SizeDist{}) {
		c.Size = d.Size
	}
	if c.Lifetime == (LifetimeDist{}) {
		c.Lifetime = d.Lifetime
	}
	if len(c.Hosts) == 0 {
		c.Hosts = d.Hosts
	}
	return c
}

// validate panics on configurations that cannot be sampled deterministically
// and meaningfully; these are programming errors, not data.
func (c Config) validate() {
	if c.DiurnalAmplitude < 0 || c.DiurnalAmplitude >= 1 {
		panic(fmt.Sprintf("cloudgen: diurnal amplitude %v outside [0,1)", c.DiurnalAmplitude))
	}
	if c.Size.MinVCPUs < 1 || c.Size.MaxVCPUs < c.Size.MinVCPUs {
		panic(fmt.Sprintf("cloudgen: size bounds [%d,%d] invalid", c.Size.MinVCPUs, c.Size.MaxVCPUs))
	}
	if c.Size.Kind == SizePareto && c.Size.Alpha <= 0 {
		panic(fmt.Sprintf("cloudgen: pareto alpha %v must be positive", c.Size.Alpha))
	}
	if c.Size.Kind == SizeLognormal && c.Size.Sigma <= 0 {
		panic(fmt.Sprintf("cloudgen: lognormal sigma %v must be positive", c.Size.Sigma))
	}
	lf := c.Lifetime
	if lf.EphemeralFrac < 0 || lf.EphemeralFrac > 1 {
		panic(fmt.Sprintf("cloudgen: ephemeral fraction %v outside [0,1]", lf.EphemeralFrac))
	}
	if lf.EphemeralFrac > 0 && lf.EphemeralMean <= 0 {
		panic("cloudgen: ephemeral mean work must be positive")
	}
	if lf.EphemeralFrac < 1 && lf.LongMean <= 0 {
		panic("cloudgen: long-lived mean lifetime must be positive")
	}
	for _, h := range c.Hosts {
		if h.Count <= 0 || h.Cores <= 0 || h.SMT <= 0 {
			panic(fmt.Sprintf("cloudgen: host class %q needs positive count/cores/smt", h.Name))
		}
		if h.SpeedFactor <= 0 {
			panic(fmt.Sprintf("cloudgen: host class %q needs positive speed factor", h.Name))
		}
	}
}

// Generate produces the trace for (seed, cfg). Deterministic: one private
// rand stream, consumed in a fixed order per arrival.
func Generate(seed int64, cfg Config) Trace {
	cfg = cfg.withDefaults()
	cfg.validate()
	rng := rand.New(rand.NewSource(seed))

	tr := Trace{Seed: seed, Horizon: cfg.Horizon}
	for _, hc := range cfg.Hosts {
		for i := 0; i < hc.Count; i++ {
			tr.Hosts = append(tr.Hosts, HostSpec{
				Class:       hc.Name,
				Threads:     hc.Threads(),
				SpeedFactor: hc.SpeedFactor,
			})
		}
	}

	// Non-homogeneous Poisson arrivals by thinning: propose at the peak rate
	// rateMax, accept each proposal with probability rate(t)/rateMax. The
	// largest vCPU size is clamped to the largest host, so every generated
	// VM is placeable somewhere in this fleet.
	maxThreads := 0
	for _, h := range tr.Hosts {
		if h.Threads > maxThreads {
			maxThreads = h.Threads
		}
	}
	size := cfg.Size
	if size.MaxVCPUs > maxThreads {
		size.MaxVCPUs = maxThreads
	}
	rateMax := cfg.BaseRate * (1 + cfg.DiurnalAmplitude) / float64(Hour) // per ns
	var at sim.Time
	id := 0
	for {
		at = at.Add(sim.Duration(rng.ExpFloat64() / rateMax))
		if at >= sim.Time(cfg.Horizon) {
			break
		}
		if cfg.MaxVMs > 0 && id >= cfg.MaxVMs {
			break
		}
		// Thinning draw happens for every proposal, accepted or not, so the
		// stream stays aligned whatever the modulation does.
		u := rng.Float64()
		rate := cfg.BaseRate * (1 + cfg.DiurnalAmplitude*
			math.Sin(2*math.Pi*float64(at)/float64(cfg.DiurnalPeriod)+cfg.DiurnalPhase)) / float64(Hour)
		if u*rateMax > rate {
			continue
		}
		vm := VM{ID: id, At: at, VCPUs: sampleSize(rng, size)}
		if rng.Float64() < cfg.Lifetime.EphemeralFrac {
			vm.Class = Batch
			vm.Demand = 1.0
			vm.Work = lognormalDur(rng, cfg.Lifetime.EphemeralMean, cfg.Lifetime.EphemeralSigma)
		} else {
			vm.Class = Service
			vm.Demand = cfg.ServiceDemand
			vm.Lifetime = lognormalDur(rng, cfg.Lifetime.LongMean, cfg.Lifetime.LongSigma)
		}
		tr.VMs = append(tr.VMs, vm)
		id++
	}
	if cfg.Faults != nil {
		s := faults.Generate(seed, len(tr.Hosts), cfg.Horizon, *cfg.Faults)
		tr.Faults = &s
	}
	return tr
}

// sampleSize draws one vCPU count.
func sampleSize(rng *rand.Rand, d SizeDist) int {
	var v float64
	switch d.Kind {
	case SizePareto:
		v = paretoBounded(rng, d.Alpha, float64(d.MinVCPUs), float64(d.MaxVCPUs))
	case SizeLognormal:
		v = math.Exp(d.Mu + d.Sigma*rng.NormFloat64())
	default:
		panic(fmt.Sprintf("cloudgen: unknown size kind %d", d.Kind))
	}
	n := int(math.Floor(v))
	if n < d.MinVCPUs {
		n = d.MinVCPUs
	}
	if n > d.MaxVCPUs {
		n = d.MaxVCPUs
	}
	return n
}

// paretoBounded inverts the bounded-Pareto CDF on [lo, hi] with tail
// exponent alpha: both truncation points are respected exactly, unlike
// capping an unbounded draw, so the sampled mass integrates to one.
func paretoBounded(rng *rand.Rand, alpha, lo, hi float64) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	la, ha := math.Pow(lo, alpha), math.Pow(hi, alpha)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
}

// lognormalDur draws a lognormal duration with the given median and
// log-space sigma, floored at one millisecond so a lifetime is never zero
// or negative however extreme the draw.
func lognormalDur(rng *rand.Rand, median sim.Duration, sigma float64) sim.Duration {
	v := float64(median) * math.Exp(sigma*rng.NormFloat64())
	if v < float64(sim.Millisecond) {
		v = float64(sim.Millisecond)
	}
	if v > math.MaxInt64/2 {
		v = math.MaxInt64 / 2
	}
	return sim.Duration(v)
}
