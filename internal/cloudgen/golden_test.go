package cloudgen

// goldenTraceDigest is the FNV-64a digest of the canonical encoding of
// Generate(42, smallConfig()) — see TestGoldenTrace. Re-record only on a
// deliberate generator change, and say so in the commit message.
const goldenTraceDigest = "c86af1f82645d364"
