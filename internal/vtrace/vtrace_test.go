package vtrace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"vsched/internal/host"
	"vsched/internal/sim"
)

// contendedEntity builds a 1-thread host with one observed entity sharing the
// thread with a 5ms/5ms pattern contender, and runs it for 100ms.
func contendedEntity(t *testing.T, attach func(h *host.Host, e *host.Entity)) {
	t.Helper()
	eng := sim.NewEngine(1)
	cfg := host.DefaultConfig()
	cfg.Sockets, cfg.CoresPerSocket, cfg.ThreadsPerCore = 1, 2, 1
	h := host.New(eng, cfg)
	e := h.NewEntity("v", h.Thread(0), host.DefaultWeight, host.NopClient{})
	attach(h, e)
	e.Wake()
	host.NewPatternContender(h, "p", h.Thread(0), 5*sim.Millisecond, 5*sim.Millisecond, 0)
	eng.RunFor(100 * sim.Millisecond)
}

func TestTimelineRecordsAndIntegrates(t *testing.T) {
	var tl *Timeline
	contendedEntity(t, func(h *host.Host, e *host.Entity) { tl = Attach(e) })

	if len(tl.Events) == 0 {
		t.Fatal("no transitions recorded")
	}
	frac := tl.RunningFraction(0, sim.Time(100*sim.Millisecond))
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("running fraction=%v want ~0.5", frac)
	}
	run := tl.TimeIn(host.Running, 0, sim.Time(100*sim.Millisecond))
	wait := tl.TimeIn(host.Runnable, 0, sim.Time(100*sim.Millisecond))
	if run+wait < 99*sim.Millisecond {
		t.Fatalf("run+wait=%v want ~100ms", run+wait)
	}

	strip := tl.Render(50, 0, sim.Time(100*sim.Millisecond))
	if len(strip) != 50 {
		t.Fatalf("strip len=%d", len(strip))
	}
	if !strings.Contains(strip, "#") || !strings.Contains(strip, ".") {
		t.Fatalf("strip should show both running and waiting: %q", strip)
	}
}

func TestRenderEdgeCases(t *testing.T) {
	tl := &Timeline{Initial: host.Blocked}
	if tl.Render(0, 0, 10) != "" {
		t.Fatal("zero width must render empty")
	}
	if tl.Render(10, 10, 10) != "" {
		t.Fatal("empty interval must render empty")
	}
	if got := tl.Render(4, 0, 100); got != "    " {
		t.Fatalf("blocked strip wrong: %q", got)
	}
	if tl.RunningFraction(10, 10) != 0 {
		t.Fatal("degenerate fraction must be 0")
	}
}

// Satellite regression: before observers became a list, attaching a second
// consumer silently replaced the first. Both must now see every transition.
func TestObserversStack(t *testing.T) {
	var tl1, tl2 *Timeline
	traced := 0
	contendedEntity(t, func(h *host.Host, e *host.Entity) {
		tl1 = Attach(e)
		tl2 = Attach(e)
		e.AddObserver(func(now sim.Time, from, to host.EntityState) { traced++ })
	})
	if len(tl1.Events) == 0 {
		t.Fatal("first observer recorded nothing")
	}
	if len(tl2.Events) != len(tl1.Events) {
		t.Fatalf("second observer saw %d events, first saw %d — observers clobbered",
			len(tl2.Events), len(tl1.Events))
	}
	if traced != len(tl1.Events) {
		t.Fatalf("raw observer saw %d events, timeline saw %d", traced, len(tl1.Events))
	}
}

// The per-entity observers and the host-wide observer are independent taps.
func TestHostObserverAndEntityObserversCoexist(t *testing.T) {
	var tl *Timeline
	tr := New(0)
	contendedEntity(t, func(h *host.Host, e *host.Entity) {
		tl = Attach(e)
		AttachHost(tr, h)
	})
	if len(tl.Events) == 0 {
		t.Fatal("entity observer recorded nothing")
	}
	var stateEvents int
	for _, ev := range tr.Events() {
		if ev.Kind == KindEntityState && ev.Subject == "v" {
			stateEvents++
		}
	}
	if stateEvents != len(tl.Events) {
		t.Fatalf("host tap saw %d transitions of v, timeline saw %d", stateEvents, len(tl.Events))
	}
}

func TestAttachHostEventKinds(t *testing.T) {
	tr := New(0)
	contendedEntity(t, func(h *host.Host, e *host.Entity) { AttachHost(tr, h) })

	counts := map[Kind]int{}
	var stealTotal int64
	for _, ev := range tr.Events() {
		counts[ev.Kind]++
		if ev.Kind == KindSteal && ev.Subject == "v" {
			stealTotal += ev.A0
		}
	}
	if counts[KindEntityState] == 0 {
		t.Fatal("no entity-state events")
	}
	if counts[KindPreempt] == 0 {
		t.Fatal("no preemptions traced despite a contender on the same thread")
	}
	// Time-shared 50/50 for 100ms: the entity stole ~50ms waiting.
	if stealTotal < int64(30*sim.Millisecond) || stealTotal > int64(70*sim.Millisecond) {
		t.Fatalf("steal intervals sum to %d ns, want ~50ms", stealTotal)
	}
}

func TestThrottleEventsTraced(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := host.DefaultConfig()
	cfg.Sockets, cfg.CoresPerSocket, cfg.ThreadsPerCore = 1, 1, 1
	h := host.New(eng, cfg)
	tr := New(0)
	AttachHost(tr, h)
	e := h.NewEntity("q", h.Thread(0), host.DefaultWeight, host.NopClient{})
	// Small quota per host bandwidth period => repeated throttling.
	e.SetBandwidth(20 * sim.Millisecond)
	e.Wake()
	eng.RunFor(500 * sim.Millisecond)

	counts := map[Kind]int{}
	for _, ev := range tr.Events() {
		counts[ev.Kind]++
	}
	if counts[KindThrottle] == 0 || counts[KindUnthrottle] == 0 {
		t.Fatalf("throttle=%d unthrottle=%d, want both > 0",
			counts[KindThrottle], counts[KindUnthrottle])
	}
	if counts[KindUnthrottle] > counts[KindThrottle] {
		t.Fatalf("more unthrottles (%d) than throttles (%d)",
			counts[KindUnthrottle], counts[KindThrottle])
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	tr := New(4)
	for i := 0; i < 10; i++ {
		tr.Emit(sim.Time(i), KindBalance, "vm", int64(i), 0, 0)
	}
	if tr.Total() != 10 {
		t.Fatalf("total=%d want 10", tr.Total())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped=%d want 6", tr.Dropped())
	}
	events := tr.Events()
	if len(events) != 4 {
		t.Fatalf("len=%d want 4", len(events))
	}
	for i, ev := range events {
		if ev.A0 != int64(6+i) {
			t.Fatalf("event %d has A0=%d, want %d (chronological, oldest survivor first)", i, ev.A0, 6+i)
		}
	}
}

// TestWrapAroundExportMetadata is the drop-accounting regression test: after
// ring wrap-around, the summary and the Chrome trailer must both report how
// many events were emitted versus lost, so a consumer can tell a complete
// trace from a truncated one.
func TestWrapAroundExportMetadata(t *testing.T) {
	tr := New(8)
	for i := 0; i < 100; i++ {
		tr.Emit(sim.Time(i*1000), KindBalance, "vm", int64(i), 0, 0)
	}
	if tr.Total() != 100 || tr.Dropped() != 92 {
		t.Fatalf("total=%d dropped=%d want 100/92", tr.Total(), tr.Dropped())
	}
	s := tr.Summary()
	if !strings.Contains(s, "100 emitted") || !strings.Contains(s, "92 dropped") {
		t.Fatalf("summary missing drop accounting:\n%s", s)
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		OtherData struct {
			Emitted int `json:"emittedEvents"`
			Dropped int `json:"droppedEvents"`
		} `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.OtherData.Emitted != 100 || doc.OtherData.Dropped != 92 {
		t.Fatalf("otherData emitted=%d dropped=%d want 100/92",
			doc.OtherData.Emitted, doc.OtherData.Dropped)
	}
	// An unbounded ring drops nothing and says so.
	tr2 := New(0)
	tr2.Emit(0, KindBalance, "vm", 0, 0, 0)
	buf.Reset()
	if err := tr2.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"droppedEvents":0`)) {
		t.Fatal("unbounded ring must export droppedEvents:0")
	}
}

// TestFaultStormDropAccounting floods a small ring with a burst of fault and
// evacuation events — the pattern a host crash under recovery produces: one
// KindHostFault followed by a KindVMCrash/KindVMRestart/KindVMLost volley —
// and checks the drop accounting stays exact: Total counts every emit,
// Dropped is exactly total minus capacity, the survivors are the
// chronological tail, and Summary/Chrome export still balance.
func TestFaultStormDropAccounting(t *testing.T) {
	const cap = 64
	tr := New(cap)
	total := uint64(0)
	var all []Event
	emit := func(at sim.Time, k Kind, subj string, a0, a1, a2 int64) {
		tr.Emit(at, k, subj, a0, a1, a2)
		all = append(all, Event{At: at, Kind: k, Subject: subj, A0: a0, A1: a1, A2: a2})
		total++
	}
	// 16 crashing hosts, 20 resident VMs each: far beyond the ring.
	for h := 0; h < 16; h++ {
		at := sim.Time(h * 1000)
		emit(at, KindHostFault, "host", int64(h), 600_000_000_000, 0)
		for v := 0; v < 20; v++ {
			emit(at, KindVMCrash, "vm", int64(h), 2, 0)
			switch v % 3 {
			case 0:
				emit(at+1, KindVMRestart, "vm", int64((h+1)%16), 1, 60_000_000_000)
			case 1:
				emit(at+1, KindVMLost, "vm", 0, 2, 0)
			}
		}
		emit(at+2, KindHostRecover, "host", int64(h), 0, 0)
	}
	if tr.Total() != total {
		t.Fatalf("total=%d want %d", tr.Total(), total)
	}
	if want := total - cap; tr.Dropped() != want {
		t.Fatalf("dropped=%d want %d", tr.Dropped(), want)
	}
	events := tr.Events()
	if len(events) != cap {
		t.Fatalf("len(events)=%d want %d", len(events), cap)
	}
	// Survivors must be exactly the emission-order tail — no event corrupted
	// or reordered by the wrap.
	tail := all[len(all)-cap:]
	for i := range events {
		if events[i] != tail[i] {
			t.Fatalf("survivor %d = %+v, want emitted tail %+v", i, events[i], tail[i])
		}
	}
	// Summary must report exactly the surviving per-kind counts plus the
	// emitted/dropped trailer.
	kindCount := map[Kind]int{}
	for _, ev := range events {
		kindCount[ev.Kind]++
	}
	s := tr.Summary()
	for k, n := range kindCount {
		want := fmt.Sprintf("%s %d", k, n)
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
	if !strings.Contains(s, fmt.Sprintf("%d emitted", total)) ||
		!strings.Contains(s, fmt.Sprintf("%d dropped", total-cap)) {
		t.Fatalf("summary missing drop trailer:\n%s", s)
	}
	// The Chrome export of a fault storm must stay valid JSON and carry the
	// same accounting.
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		OtherData struct {
			Emitted uint64 `json:"emittedEvents"`
			Dropped uint64 `json:"droppedEvents"`
		} `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("fault-storm export is not valid JSON: %v", err)
	}
	if doc.OtherData.Emitted != total || doc.OtherData.Dropped != total-cap {
		t.Fatalf("otherData emitted=%d dropped=%d want %d/%d",
			doc.OtherData.Emitted, doc.OtherData.Dropped, total, total-cap)
	}
}

// TestFaultKindMetadata pins the new fault-plane kinds: printable names,
// fleet category, and numbering appended after the pre-existing kinds so
// recorded traces keep decoding.
func TestFaultKindMetadata(t *testing.T) {
	for k, name := range map[Kind]string{
		KindHostFault:   "host-fault",
		KindHostRecover: "host-recover",
		KindVMCrash:     "vm-crash",
		KindVMRestart:   "vm-restart",
		KindVMLost:      "vm-lost",
	} {
		if k.String() != name {
			t.Errorf("kind %d String()=%q want %q", k, k.String(), name)
		}
		if k.Category() != "fleet" {
			t.Errorf("kind %v category %q, want fleet", k, k.Category())
		}
		if k <= KindMigCost || k >= numKinds {
			t.Errorf("kind %v numbered %d, must sit after KindMigCost and before numKinds", k, k)
		}
	}
}

// TestExportFormatting pins the low-level renderers: the ts microsecond
// format, counter events, and JSON escaping of hostile subject names.
func TestExportFormatting(t *testing.T) {
	for _, tc := range []struct {
		at   sim.Time
		want string
	}{
		{0, "0.000"},
		{999, "0.999"},
		{1000, "1.000"},
		{1_234_567, "1234.567"},
		{sim.Time(3 * sim.Second), "3000000.000"},
	} {
		if got := ts(tc.at); got != tc.want {
			t.Fatalf("ts(%d)=%q want %q", tc.at, got, tc.want)
		}
	}

	// Counter formatting: vCPU speed exports as a milli-scaled C event.
	tr := New(0)
	tr.Emit(1500, KindVCPUSpeed, "vm", 2, 1_234_567, 0)
	tr.Emit(2500, KindCapSample, "vm", 1, 900, 0)
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`"ph":"C"`,
		`"name":"speed_milli/v2","args":{"value":1234}`,
		`"ts":1.500`,
		`"name":"capacity/v1","args":{"value":900}`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("counter export missing %s:\n%s", want, out)
		}
	}

	// Escaping: subjects with quotes, backslashes and control bytes must
	// export as valid JSON with the name preserved.
	hostile := "task\"q\\b\nnl\tt"
	tr = New(0)
	tr.Emit(10, KindTaskWakeup, hostile, 0, 0, -1)
	buf.Reset()
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("hostile subject broke the JSON: %v", err)
	}
	found := false
	for _, ev := range doc.TraceEvents {
		if name, _ := ev["name"].(string); name == "wakeup:"+hostile {
			found = true
		}
	}
	if !found {
		t.Fatalf("escaped wakeup event lost its name:\n%s", buf.String())
	}

	// SpanTrack args render in caller order with escaped keys.
	track := SpanTrack{Process: "attribution", Threads: []SpanThread{{
		Name: "t\"x",
		Slices: []SpanSlice{{
			Name: "s", From: 100, To: 1100,
			Args: []SpanArg{{Key: "run_ns", Value: 7}, {Key: "wall_ns", Value: 1000}},
		}},
	}}}
	tr = New(0)
	buf.Reset()
	if err := tr.WriteChrome(&buf, track); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), &struct{}{}); err != nil {
		t.Fatalf("span track broke the JSON: %v", err)
	}
	for _, want := range []string{
		`"args":{"run_ns":7,"wall_ns":1000}`,
		`"ts":0.100,"dur":1.000`,
		`"name":"attribution"`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("span track export missing %s:\n%s", want, buf.String())
		}
	}
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	tr.Emit(0, KindBalance, "x", 0, 0, 0) // must not panic
	if tr.Enabled() || tr.Total() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer must look empty")
	}
	if got := tr.Summary(); !strings.Contains(got, "disabled") {
		t.Fatalf("nil summary: %q", got)
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("nil WriteChrome: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil trace is not valid JSON: %v", err)
	}
}

func TestEmitAllocatesNothing(t *testing.T) {
	var nilTr *Tracer
	if n := testing.AllocsPerRun(1000, func() {
		nilTr.Emit(0, KindBalance, "vm", 1, 2, 3)
	}); n != 0 {
		t.Fatalf("disabled emit allocates %v per event", n)
	}
	tr := New(64) // small ring: exercises the overwrite path too
	var at sim.Time
	if n := testing.AllocsPerRun(1000, func() {
		at++
		tr.Emit(at, KindTaskWakeup, "vm", 1, 2, 3)
	}); n != 0 {
		t.Fatalf("enabled emit allocates %v per event", n)
	}
}

func TestKindStringsAndCategoriesTotal(t *testing.T) {
	for k := Kind(0); k <= KindVtop; k++ {
		if k.String() == "invalid" {
			t.Fatalf("kind %d has no name", k)
		}
		switch k.Category() {
		case "host", "guest", "vsched":
		default:
			t.Fatalf("kind %v has category %q", k, k.Category())
		}
	}
	if Kind(200).String() != "invalid" {
		t.Fatal("out-of-range kind must stringify as invalid")
	}
}

// traceScenario runs a deterministic contended scenario with the tracer
// attached and returns the exported Chrome JSON.
func traceScenario(t *testing.T) []byte {
	t.Helper()
	tr := New(0)
	contendedEntity(t, func(h *host.Host, e *host.Entity) { AttachHost(tr, h) })
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	return buf.Bytes()
}

func TestChromeExportWellFormed(t *testing.T) {
	raw := traceScenario(t)
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.Unit != "ms" {
		t.Fatalf("displayTimeUnit=%q", doc.Unit)
	}
	phases := map[string]int{}
	pids := map[float64]int{}
	sliceNames := map[string]int{}
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		phases[ph]++
		if pid, ok := ev["pid"].(float64); ok {
			pids[pid]++
		}
		if ph == "X" {
			name, _ := ev["name"].(string)
			sliceNames[name]++
			if _, ok := ev["dur"]; !ok {
				t.Fatalf("X event without dur: %v", ev)
			}
		}
	}
	if phases["M"] < 4 {
		t.Fatalf("want process/thread metadata, got %d M events", phases["M"])
	}
	if phases["X"] == 0 {
		t.Fatal("no interval slices exported")
	}
	if phases["i"] == 0 {
		t.Fatal("no instant events exported")
	}
	if pids[pidHost] == 0 {
		t.Fatal("no host-process events")
	}
	if sliceNames["running"] == 0 || sliceNames["runnable"] == 0 {
		t.Fatalf("want running+runnable slices, got %v", sliceNames)
	}
}

func TestChromeExportDeterministic(t *testing.T) {
	a := traceScenario(t)
	b := traceScenario(t)
	if !bytes.Equal(a, b) {
		t.Fatal("identical runs exported different trace bytes")
	}
}

func TestSummaryCountsByCategory(t *testing.T) {
	tr := New(0)
	contendedEntity(t, func(h *host.Host, e *host.Entity) { AttachHost(tr, h) })
	s := tr.Summary()
	if !strings.Contains(s, "host") || !strings.Contains(s, "entity-state") {
		t.Fatalf("summary missing host counts:\n%s", s)
	}
	if !strings.Contains(s, "0 dropped") {
		t.Fatalf("summary should report drops:\n%s", s)
	}
}

func BenchmarkEmitDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(sim.Time(i), KindTaskWakeup, "vm", 1, 2, 3)
	}
}

func BenchmarkEmitEnabled(b *testing.B) {
	tr := New(1 << 12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(sim.Time(i), KindTaskWakeup, "vm", 1, 2, 3)
	}
}
