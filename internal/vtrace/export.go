package vtrace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"vsched/internal/host"
	"vsched/internal/sim"
)

// Chrome Trace Event Format export (the JSON object format with a
// traceEvents array), loadable in Perfetto and chrome://tracing.
//
// Layout: three trace processes, one per simulation layer.
//
//	pid 1 "host"   — one track per entity; complete ("X") slices for
//	                 running/runnable/throttled intervals, instants for
//	                 preemptions and throttle edges.
//	pid 2 "guest"  — one track per vCPU index; "X" slices span task
//	                 install->uninstall (slice name = task name), instants
//	                 for wakeups, migrations, balance passes, policy moves.
//	pid 3 "vsched" — counter ("C") tracks for probed capacity and latency
//	                 per vCPU, instants for bvs/ivh/vtop decisions.
//
// The writer emits events in deterministic order (buffer order, with
// interval slices at their close edge), so the same run produces
// byte-identical files. Timestamps are virtual nanoseconds rendered as
// microseconds with three decimals.
//
// Track keying note: guest tracks are keyed by vCPU index, so a trace of
// several VMs overlays their guest activity; host tracks are keyed by
// entity name and never collide.

const (
	pidHost   = 1
	pidGuest  = 2
	pidVSched = 3
	pidFleet  = 4
	// pidExtra is the first pid handed to caller-supplied SpanTracks.
	pidExtra = 5
	// Synthetic guest tids for VM-wide instants.
	tidBalance = 1000
)

// SpanTrack is a caller-supplied trace process appended to a Chrome export:
// a dedicated set of tracks whose slices were derived from the event stream
// rather than recorded in it (e.g. latency-attribution spans). Args are an
// ordered slice, not a map, so exports stay byte-deterministic.
type SpanTrack struct {
	Process string
	Threads []SpanThread
}

// SpanThread is one named track inside a SpanTrack.
type SpanThread struct {
	Name   string
	Slices []SpanSlice
}

// SpanSlice is one complete ("X") slice on a SpanThread.
type SpanSlice struct {
	Name     string
	From, To sim.Time
	Args     []SpanArg
}

// SpanArg is one key/value argument attached to a SpanSlice.
type SpanArg struct {
	Key   string
	Value int64
}

// CounterTrack is a caller-supplied counter process appended to a Chrome
// export: Perfetto "C" (counter) events derived from data outside the event
// ring — telemetry series samples, profiler aggregates — sharing the exact
// formatting the event-derived counter tracks use. Points are emitted in
// caller order, so exports stay byte-deterministic.
type CounterTrack struct {
	Process string
	Series  []CounterSeries
}

// CounterSeries is one named counter inside a CounterTrack.
type CounterSeries struct {
	Name   string
	Points []CounterPoint
}

// CounterPoint is one sample on a CounterSeries.
type CounterPoint struct {
	At    sim.Time
	Value float64
}

// exporter accumulates interval state while streaming JSON lines.
type exporter struct {
	w    *bufio.Writer
	tr   *Tracer
	err  error
	n    int // events written, for comma placement
	last sim.Time

	// host entity tracks: name -> tid, plus open state interval.
	entTID   map[string]int
	entOrder []string
	entState map[string]host.EntityState
	entSince map[string]sim.Time

	// guest vCPU tracks: open task slice per vCPU index.
	guestTIDs map[int]bool
	openTask  map[int]openSlice
	vcpuOrder []int
}

type openSlice struct {
	name  string
	since sim.Time
}

// WriteChrome exports the buffered events as Chrome Trace Event Format
// JSON. Safe on a nil tracer (writes an empty trace). Extra SpanTracks —
// derived data such as attribution spans — are appended as additional trace
// processes after the event-derived ones, and the trailer records the
// tracer's emitted/dropped totals so a consumer can tell whether ring
// wrap-around lost events.
func (tr *Tracer) WriteChrome(w io.Writer, extra ...SpanTrack) error {
	return tr.WriteChromeTracks(w, extra, nil)
}

// WriteChromeTracks is WriteChrome with counter tracks too: spans become
// slice processes, counters become Perfetto counter processes after them.
// With no counters it produces byte-identical output to WriteChrome.
func (tr *Tracer) WriteChromeTracks(w io.Writer, spans []SpanTrack, counters []CounterTrack) error {
	e := &exporter{
		w:         bufio.NewWriter(w),
		tr:        tr,
		entTID:    map[string]int{},
		entState:  map[string]host.EntityState{},
		entSince:  map[string]sim.Time{},
		guestTIDs: map[int]bool{},
		openTask:  map[int]openSlice{},
	}
	return e.run(spans, counters)
}

func (e *exporter) run(extra []SpanTrack, counters []CounterTrack) error {
	io.WriteString(e.w, "{\"traceEvents\":[\n")
	e.meta(pidHost, -1, "process_name", "host")
	e.meta(pidGuest, -1, "process_name", "guest")
	e.meta(pidVSched, -1, "process_name", "vsched")
	e.meta(pidFleet, -1, "process_name", "fleet")
	e.meta(pidGuest, tidBalance, "thread_name", "balancer")

	events := e.tr.Events()
	for i := range events {
		e.event(&events[i])
		if e.err != nil {
			return e.err
		}
	}
	e.flushOpen()
	for i := range extra {
		e.spanTrack(pidExtra+i, &extra[i])
		if e.err != nil {
			return e.err
		}
	}
	for i := range counters {
		e.counterTrack(pidExtra+len(extra)+i, &counters[i])
		if e.err != nil {
			return e.err
		}
	}
	fmt.Fprintf(e.w, "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"emittedEvents\":%d,\"droppedEvents\":%d}}\n",
		e.tr.Total(), e.tr.Dropped())
	if e.err != nil {
		return e.err
	}
	return e.w.Flush()
}

// spanTrack emits one caller-supplied process: its metadata, then every
// slice in caller order (deterministic by construction).
func (e *exporter) spanTrack(pid int, t *SpanTrack) {
	e.meta(pid, -1, "process_name", t.Process)
	for tid := range t.Threads {
		th := &t.Threads[tid]
		e.meta(pid, tid, "thread_name", th.Name)
		for i := range th.Slices {
			s := &th.Slices[i]
			var args strings.Builder
			for j, a := range s.Args {
				if j > 0 {
					args.WriteByte(',')
				}
				fmt.Fprintf(&args, "%q:%d", a.Key, a.Value)
			}
			e.sliceArgs(pid, tid, s.From, s.To, s.Name, t.Process, args.String())
		}
	}
}

// ts renders virtual nanoseconds as trace microseconds.
func ts(t sim.Time) string { return fmt.Sprintf("%d.%03d", int64(t)/1000, int64(t)%1000) }

func (e *exporter) raw(line string) {
	if e.err != nil {
		return
	}
	if e.n > 0 {
		io.WriteString(e.w, ",\n")
	}
	if _, err := io.WriteString(e.w, line); err != nil {
		e.err = err
	}
	e.n++
}

func (e *exporter) meta(pid, tid int, key, name string) {
	t := ""
	if tid >= 0 {
		t = fmt.Sprintf(",\"tid\":%d", tid)
	}
	e.raw(fmt.Sprintf("{\"ph\":\"M\",\"pid\":%d%s,\"name\":%q,\"args\":{\"name\":%q}}", pid, t, key, name))
}

func (e *exporter) instant(pid, tid int, at sim.Time, name, cat, args string) {
	a := ""
	if args != "" {
		a = ",\"args\":{" + args + "}"
	}
	e.raw(fmt.Sprintf("{\"ph\":\"i\",\"pid\":%d,\"tid\":%d,\"ts\":%s,\"name\":%q,\"cat\":%q,\"s\":\"t\"%s}",
		pid, tid, ts(at), name, cat, a))
}

func (e *exporter) slice(pid, tid int, from, to sim.Time, name, cat string) {
	if to < from {
		to = from
	}
	e.raw(fmt.Sprintf("{\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%s,\"dur\":%s,\"name\":%q,\"cat\":%q}",
		pid, tid, ts(from), ts(sim.Time(to.Sub(from))), name, cat))
}

func (e *exporter) sliceArgs(pid, tid int, from, to sim.Time, name, cat, args string) {
	if args == "" {
		e.slice(pid, tid, from, to, name, cat)
		return
	}
	if to < from {
		to = from
	}
	e.raw(fmt.Sprintf("{\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%s,\"dur\":%s,\"name\":%q,\"cat\":%q,\"args\":{%s}}",
		pid, tid, ts(from), ts(sim.Time(to.Sub(from))), name, cat, args))
}

// counterRaw is the one place a "C" event is formatted; name and value must
// be pre-rendered JSON (a string literal and a number). Event-derived and
// caller-supplied counter tracks both funnel through it.
func (e *exporter) counterRaw(pid int, at sim.Time, name, value string) {
	e.raw(fmt.Sprintf("{\"ph\":\"C\",\"pid\":%d,\"ts\":%s,\"name\":%s,\"args\":{\"value\":%s}}",
		pid, ts(at), name, value))
}

func (e *exporter) counter(at sim.Time, name string, value int64) {
	e.counterRaw(pidVSched, at, strconv.Quote(name), strconv.FormatInt(value, 10))
}

// counterTrack emits one caller-supplied counter process: its metadata, then
// every series' points in caller order. Caller-supplied names are untrusted,
// so they go through the real JSON encoder (fmt's %q is Go syntax, which
// escapes control bytes as \x00 — invalid JSON).
func (e *exporter) counterTrack(pid int, t *CounterTrack) {
	e.raw(fmt.Sprintf("{\"ph\":\"M\",\"pid\":%d,\"name\":\"process_name\",\"args\":{\"name\":%s}}",
		pid, jsonString(t.Process)))
	for i := range t.Series {
		s := &t.Series[i]
		name := jsonString(s.Name)
		for _, p := range s.Points {
			e.counterRaw(pid, p.At, name, jsonFloat(p.Value))
		}
	}
}

// jsonString renders s as a JSON string literal, escaping anything hostile.
func jsonString(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

// jsonFloat renders v as a JSON number. The trace format has no NaN/Inf
// literals, so non-finite values degrade to 0.
func jsonFloat(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "0"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// hostTID returns (allocating on first sight) the track id for an entity.
func (e *exporter) hostTID(name string, at sim.Time) int {
	if tid, ok := e.entTID[name]; ok {
		return tid
	}
	tid := len(e.entTID)
	e.entTID[name] = tid
	e.entOrder = append(e.entOrder, name)
	e.entSince[name] = at
	e.meta(pidHost, tid, "thread_name", name)
	return tid
}

// guestTID returns the track id for a vCPU index, emitting its metadata on
// first sight.
func (e *exporter) guestTID(vcpu int) int {
	if !e.guestTIDs[vcpu] {
		e.guestTIDs[vcpu] = true
		e.vcpuOrder = append(e.vcpuOrder, vcpu)
		e.meta(pidGuest, vcpu, "thread_name", fmt.Sprintf("vcpu%d", vcpu))
	}
	return vcpu
}

func stateSliceName(s host.EntityState) string {
	switch s {
	case host.Running:
		return "running"
	case host.Runnable:
		return "runnable"
	case host.Throttled:
		return "throttled"
	}
	return ""
}

func (e *exporter) event(ev *Event) {
	if ev.At > e.last {
		e.last = ev.At
	}
	switch ev.Kind {
	case KindEntityState:
		tid := e.hostTID(ev.Subject, ev.At)
		from, to := host.EntityState(ev.A0), host.EntityState(ev.A1)
		// Close the open interval. An entity first seen mid-trace gets its
		// in-progress interval opened at its first appearance.
		if prev, ok := e.entState[ev.Subject]; !ok || prev == from {
			if name := stateSliceName(from); name != "" {
				e.slice(pidHost, tid, e.entSince[ev.Subject], ev.At, name, "host")
			}
		}
		e.entState[ev.Subject] = to
		e.entSince[ev.Subject] = ev.At
	case KindPreempt:
		e.instant(pidHost, e.hostTID(ev.Subject, ev.At), ev.At, "preempt", "host", "")
	case KindThrottle:
		e.instant(pidHost, e.hostTID(ev.Subject, ev.At), ev.At, "throttle", "host", "")
	case KindUnthrottle:
		e.instant(pidHost, e.hostTID(ev.Subject, ev.At), ev.At, "unthrottle", "host", "")
	case KindSteal:
		e.instant(pidHost, e.hostTID(ev.Subject, ev.At), ev.At, "steal-end", "host",
			fmt.Sprintf("\"steal_ns\":%d", ev.A0))

	case KindTaskOn:
		tid := e.guestTID(int(ev.A0))
		if open, ok := e.openTask[tid]; ok {
			// Ring wrap lost the matching TaskOff; close at the new edge.
			e.slice(pidGuest, tid, open.since, ev.At, open.name, "guest")
		}
		e.openTask[tid] = openSlice{name: ev.Subject, since: ev.At}
	case KindTaskOff:
		tid := e.guestTID(int(ev.A0))
		if open, ok := e.openTask[tid]; ok {
			e.slice(pidGuest, tid, open.since, ev.At, open.name, "guest")
			delete(e.openTask, tid)
		}
		// A TaskOff whose TaskOn was overwritten by the ring is dropped.
	case KindTaskWakeup:
		e.instant(pidGuest, e.guestTID(int(ev.A1)), ev.At, "wakeup:"+ev.Subject, "guest", "")
	case KindTaskMigrate:
		e.instant(pidGuest, e.guestTID(int(ev.A1)), ev.At, "migrate:"+ev.Subject, "guest",
			fmt.Sprintf("\"src\":%d,\"dst\":%d", ev.A1, ev.A2))
	case KindBalance:
		e.instant(pidGuest, tidBalance, ev.At, "balance", "guest",
			fmt.Sprintf("\"migrations\":%d", ev.A0))
	case KindIdlePolicy:
		name := "sched-idle:" + ev.Subject
		if ev.A1 == 0 {
			name = "sched-normal:" + ev.Subject
		}
		e.instant(pidGuest, tidBalance, ev.At, name, "guest", "")
	case KindVCPUSpeed:
		e.counter(ev.At, fmt.Sprintf("speed_milli/v%d", ev.A0), ev.A1/1000)
	case KindMigCost:
		e.instant(pidGuest, tidBalance, ev.At, "mig-cost:"+ev.Subject, "guest",
			fmt.Sprintf("\"cycles\":%d", ev.A1))

	case KindCapSample:
		e.counter(ev.At, fmt.Sprintf("capacity/v%d", ev.A0), ev.A1)
	case KindActSample:
		e.counter(ev.At, fmt.Sprintf("latency_us/v%d", ev.A0), ev.A1/1000)
	case KindBVSPlace:
		e.instant(pidVSched, 0, ev.At, "bvs:"+ev.Subject, "vsched",
			fmt.Sprintf("\"chosen\":%d,\"scanned\":%d,\"candidates\":%d", ev.A0, ev.A1, ev.A2))
	case KindIVH:
		name := "ivh-attempt"
		switch ev.A0 {
		case 1:
			name = "ivh-migrated"
		case 2:
			name = "ivh-abandoned"
		}
		e.instant(pidVSched, 1, ev.At, name, "vsched",
			fmt.Sprintf("\"src\":%d,\"dst\":%d", ev.A1, ev.A2))
	case KindVtop:
		name := "vtop-full-probe"
		if ev.A0 == 1 {
			name = "vtop-validate"
		}
		e.instant(pidVSched, 2, ev.At, name, "vsched",
			fmt.Sprintf("\"dur_ns\":%d,\"ok\":%d", ev.A1, ev.A2))

	case KindVMArrive:
		e.instant(pidFleet, 0, ev.At, "arrive:"+ev.Subject, "fleet",
			fmt.Sprintf("\"vcpus\":%d", ev.A0))
	case KindVMPlace:
		name := "place:" + ev.Subject
		if ev.A0 < 0 {
			name = "reject:" + ev.Subject
		}
		e.instant(pidFleet, 0, ev.At, name, "fleet",
			fmt.Sprintf("\"host\":%d,\"vcpus\":%d,\"committed\":%d", ev.A0, ev.A1, ev.A2))
	case KindVMMigrate:
		e.instant(pidFleet, 1, ev.At, "migrate:"+ev.Subject, "fleet",
			fmt.Sprintf("\"src\":%d,\"dst\":%d,\"vcpus\":%d", ev.A0, ev.A1, ev.A2))
	case KindVMExit:
		e.instant(pidFleet, 0, ev.At, "exit:"+ev.Subject, "fleet",
			fmt.Sprintf("\"host\":%d,\"vcpus\":%d", ev.A0, ev.A1))
	case KindHostFault:
		e.instant(pidFleet, 2, ev.At, "fault:"+ev.Subject, "fleet",
			fmt.Sprintf("\"kind\":%d,\"dur_ns\":%d,\"factor_ppm\":%d", ev.A0, ev.A1, ev.A2))
	case KindHostRecover:
		e.instant(pidFleet, 2, ev.At, "recover:"+ev.Subject, "fleet",
			fmt.Sprintf("\"kind\":%d", ev.A0))
	case KindVMCrash:
		e.instant(pidFleet, 2, ev.At, "crash:"+ev.Subject, "fleet",
			fmt.Sprintf("\"host\":%d,\"vcpus\":%d", ev.A0, ev.A1))
	case KindVMRestart:
		e.instant(pidFleet, 2, ev.At, "restart:"+ev.Subject, "fleet",
			fmt.Sprintf("\"host\":%d,\"attempt\":%d,\"down_ns\":%d", ev.A0, ev.A1, ev.A2))
	case KindVMLost:
		e.instant(pidFleet, 2, ev.At, "lost:"+ev.Subject, "fleet",
			fmt.Sprintf("\"reason\":%d,\"vcpus\":%d", ev.A0, ev.A1))
	}
}

// flushOpen closes intervals still open at the end of the trace, in
// first-appearance order for determinism.
func (e *exporter) flushOpen() {
	for _, name := range e.entOrder {
		if s := stateSliceName(e.entState[name]); s != "" {
			e.slice(pidHost, e.entTID[name], e.entSince[name], e.last, s, "host")
		}
	}
	for _, vcpu := range e.vcpuOrder {
		if open, ok := e.openTask[vcpu]; ok {
			e.slice(pidGuest, vcpu, open.since, e.last, open.name, "guest")
		}
	}
}

// Summary renders per-category event counts as a compact ASCII block.
func (tr *Tracer) Summary() string {
	if tr == nil {
		return "vtrace: disabled\n"
	}
	events := tr.Events()
	var counts [numKinds]uint64
	var first, last sim.Time
	for i, ev := range events {
		counts[ev.Kind]++
		if i == 0 {
			first = ev.At
		}
		if ev.At > last {
			last = ev.At
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "vtrace: %d events buffered (%d emitted, %d dropped), %v..%v\n",
		len(events), tr.Total(), tr.Dropped(), first, last)
	for _, cat := range []string{"host", "guest", "vsched", "fleet"} {
		var parts []string
		for k := Kind(0); k < numKinds; k++ {
			if k.Category() == cat && counts[k] > 0 {
				parts = append(parts, fmt.Sprintf("%s %d", k, counts[k]))
			}
		}
		if len(parts) == 0 {
			parts = append(parts, "-")
		}
		fmt.Fprintf(&b, "  %-6s  %s\n", cat, strings.Join(parts, ", "))
	}
	return b.String()
}
