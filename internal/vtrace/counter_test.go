package vtrace

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"vsched/internal/sim"
)

// tracedRun builds a tracer with a few buffered events so exports have
// event-derived content alongside the extra tracks.
func tracedRun() *Tracer {
	tr := New(64)
	tr.Emit(1000, KindCapSample, "vm0", 0, 900, 512)
	tr.Emit(2000, KindVMArrive, "vm1", 4, 0, 0)
	tr.Emit(3000, KindCapSample, "vm0", 1, 950, 600)
	return tr
}

// TestWriteChromeTracksByteIdentity pins the refactor: with no counter
// tracks, WriteChromeTracks must produce byte-identical output to the
// original WriteChrome path, spans included.
func TestWriteChromeTracksByteIdentity(t *testing.T) {
	tr := tracedRun()
	spans := []SpanTrack{{
		Process: "attrib",
		Threads: []SpanThread{{
			Name:   "t0",
			Slices: []SpanSlice{{Name: "wait", From: 100, To: 200, Args: []SpanArg{{Key: "ns", Value: 100}}}},
		}},
	}}
	var a, b bytes.Buffer
	if err := tr.WriteChrome(&a, spans...); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteChromeTracks(&b, spans, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("WriteChromeTracks(spans, nil) differs from WriteChrome(spans...)")
	}
}

func TestCounterTrackExport(t *testing.T) {
	tr := tracedRun()
	counters := []CounterTrack{{
		Process: "telemetry",
		Series: []CounterSeries{
			{Name: "fleet.steal", Points: []CounterPoint{{At: 1000, Value: 0.25}, {At: 2000, Value: 0.5}}},
			{Name: "fleet.util", Points: []CounterPoint{{At: 1500, Value: 12}}},
		},
	}}
	var b bytes.Buffer
	if err := tr.WriteChromeTracks(&b, nil, counters); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if !strings.Contains(out, `"name":"fleet.steal"`) || !strings.Contains(out, `"value":0.25`) {
		t.Fatalf("counter points missing from export:\n%s", out)
	}
	// The counter process takes the first pid after the built-in four.
	if !strings.Contains(out, `{"ph":"M","pid":5,"name":"process_name","args":{"name":"telemetry"}}`) {
		t.Fatalf("counter process metadata missing:\n%s", out)
	}
	// Counter events share the exact "C" formatting the event path uses.
	if !strings.Contains(out, `{"ph":"C","pid":5,"ts":1.000,"name":"fleet.steal","args":{"value":0.25}}`) {
		t.Fatalf("counter event formatting off:\n%s", out)
	}
}

// TestCounterTrackHostileNames feeds adversarial series and process names —
// quotes, backslashes, control bytes, invalid UTF-8, HTML — and requires the
// export to stay parseable JSON with the names intact (modulo the UTF-8
// replacement the JSON encoder performs).
func TestCounterTrackHostileNames(t *testing.T) {
	hostile := []string{
		`quote"inside`,
		`back\slash`,
		"tab\tand\nnewline",
		"ctrl\x00\x01\x1f",
		"<script>&amp;</script>",
		"invalid\xffutf8",
		"uni sep ",
	}
	counters := []CounterTrack{{Process: hostile[0]}}
	for i, name := range hostile {
		counters[0].Series = append(counters[0].Series, CounterSeries{
			Name:   name,
			Points: []CounterPoint{{At: sim.Time(i * 1000), Value: float64(i)}},
		})
	}
	var b bytes.Buffer
	if err := New(4).WriteChromeTracks(&b, nil, counters); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("hostile names broke the JSON: %v\n%s", err, b.String())
	}
	found := 0
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "C" {
			found++
			name, _ := ev["name"].(string)
			if name == "" {
				t.Fatalf("counter event lost its name: %v", ev)
			}
		}
	}
	if found != len(hostile) {
		t.Fatalf("%d counter events survived, want %d", found, len(hostile))
	}
}

// TestCounterTrackNonFiniteValues: NaN/Inf have no JSON literal, so they
// must degrade to 0 rather than corrupt the document.
func TestCounterTrackNonFiniteValues(t *testing.T) {
	counters := []CounterTrack{{
		Process: "t",
		Series: []CounterSeries{{Name: "s", Points: []CounterPoint{
			{At: 0, Value: math.NaN()},
			{At: 1, Value: math.Inf(1)},
			{At: 2, Value: math.Inf(-1)},
			{At: 3, Value: 1.5},
		}}},
	}}
	var b bytes.Buffer
	if err := New(4).WriteChromeTracks(&b, nil, counters); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("non-finite values broke the JSON: %v\n%s", err, b.String())
	}
}
