package vtrace

import (
	"testing"

	"vsched/internal/metrics"
	"vsched/internal/sim"
)

func TestUpdateCensusAppearsInFlatten(t *testing.T) {
	tr := New(4)
	for i := 0; i < 10; i++ {
		tr.Emit(sim.Time(i), KindEntityState, "vm0", 0, 1, 0)
	}
	reg := metrics.NewRegistry()
	tr.UpdateCensus(reg)
	flat := reg.Snapshot().Flatten()
	if got := flat["vtrace.emitted"]; got != 10 {
		t.Fatalf("vtrace.emitted = %v, want 10", got)
	}
	// Ring capacity 4, 10 emits: 6 overwritten.
	if got := flat["vtrace.dropped"]; got != 6 {
		t.Fatalf("vtrace.dropped = %v, want 6", got)
	}
}

func TestUpdateCensusNilTracer(t *testing.T) {
	var tr *Tracer
	reg := metrics.NewRegistry()
	tr.UpdateCensus(reg)
	flat := reg.Snapshot().Flatten()
	if flat["vtrace.emitted"] != 0 || flat["vtrace.dropped"] != 0 {
		t.Fatalf("nil tracer census: %v", flat)
	}
	tr.UpdateCensus(nil) // must not panic
}
