// Package vtrace is the structured, deterministic event-tracing layer of the
// simulator. A ring-buffered Tracer records typed events from all four
// layers — host scheduler (entity state transitions, preemptions,
// throttling, steal intervals), guest scheduler (wakeups, context switches,
// migrations, balance passes, SCHED_IDLE policy moves), vSched
// (vCap/vAct probe samples, bvs placements, ivh interventions, vtop
// updates), and the fleet layer (VM arrivals, placement decisions, live
// migrations, departures) — each stamped with virtual time.
//
// Everything is built for two properties:
//
//   - Zero cost when off. Every emit method is safe on a nil *Tracer and
//     returns immediately; events are fixed-size values in a preallocated
//     ring, so even an enabled tracer allocates nothing per event. Subjects
//     are interned strings the emitting layer already holds (entity and task
//     names), never formatted on the hot path.
//   - Determinism. Events carry only virtual time and deterministic
//     payloads, so a traced run exports byte-identical output across
//     repeated runs with the same seed.
//
// Exports: Chrome Trace Event Format JSON (load in Perfetto or
// chrome://tracing, see export.go) and an ASCII summary.
package vtrace

import (
	"vsched/internal/host"
	"vsched/internal/metrics"
	"vsched/internal/sim"
)

// Kind is the type tag of an event.
type Kind uint8

const (
	// KindEntityState: host entity changed scheduling state.
	// A0=from, A1=to (host.EntityState), A2=hardware thread id the entity is
	// homed on at the transition.
	KindEntityState Kind = iota
	// KindPreempt: involuntary Running->Runnable/Throttled descheduling.
	// A0=to state.
	KindPreempt
	// KindThrottle / KindUnthrottle: CPU bandwidth quota exhausted/refilled.
	KindThrottle
	KindUnthrottle
	// KindSteal: an entity left a steal state (Runnable/Throttled) after A0
	// nanoseconds wanting the CPU without running.
	KindSteal
	// KindTaskWakeup: guest task became runnable. A0=task id, A1=target
	// vCPU, A2=id of the task that issued the wakeup (-1 when external:
	// spawn, timer, remote completion).
	KindTaskWakeup
	// KindTaskOn / KindTaskOff: task installed on / removed from vCPU A0
	// (guest context switch halves). A1=task id. For TaskOff, A2=1 when the
	// task is still runnable (preempted/yield/migrating), 0 when it left the
	// CPU because it blocked or exited.
	KindTaskOn
	KindTaskOff
	// KindTaskMigrate: task moved between vCPUs. A0=task id, A1=src, A2=dst.
	KindTaskMigrate
	// KindBalance: periodic load-balance pass ran. A0=migrations so far.
	KindBalance
	// KindIdlePolicy: task moved into (A1=1) or out of (A1=0) SCHED_IDLE.
	// A0=task id.
	KindIdlePolicy
	// KindCapSample: vcap published a capacity sample for vCPU A0.
	// A1=published capacity (1024=nominal), A2=window share in 1/1024 units.
	KindCapSample
	// KindActSample: vact published activity for vCPU A0. A1=latency ns
	// (average inactive period), A2=average active period ns.
	KindActSample
	// KindBVSPlace: bvs hook decision for a task. A0=chosen vCPU (-1 = CFS
	// fallback), A1=candidates scanned, A2=bitmask of vCPUs (id<64) that
	// passed the capacity filter.
	KindBVSPlace
	// KindIVH: harvesting protocol step. A0=outcome (0=attempt, 1=migrated,
	// 2=abandoned), A1=src vCPU, A2=dst vCPU.
	KindIVH
	// KindVtop: topology prober finished a pass. A0=0 full probe / 1
	// validation, A1=duration ns, A2=1 when the belief was confirmed (full
	// probes always publish).
	KindVtop
	// KindVMArrive: a fleet VM arrival entered the placement pipeline.
	// A0=vCPUs requested.
	KindVMArrive
	// KindVMPlace: fleet placement decision. A0=chosen host (-1 = rejected),
	// A1=vCPUs, A2=committed vCPUs on the host after placement.
	KindVMPlace
	// KindVMMigrate: live migration between hosts. A0=src host, A1=dst host,
	// A2=vCPUs moved.
	KindVMMigrate
	// KindVMExit: fleet VM departed. A0=host, A1=vCPUs released.
	KindVMExit
	// KindVCPUSpeed: a vCPU's effective execution speed changed while
	// running (resume, SMT sibling activity, turbo). Subject=VM name,
	// A0=vCPU id, A1=speed in millionths of a cycle per nanosecond.
	KindVCPUSpeed
	// KindMigCost: a cross-vCPU task migration was charged a working-set
	// transfer cost, paid the next time the task runs. A0=task id,
	// A1=cost in cycles.
	KindMigCost
	// KindHostFault: a host fault began. Subject=host name, A0=fault kind
	// (faults.Kind), A1=duration ns, A2=brownout capacity factor in
	// millionths (0 for crash/stall).
	KindHostFault
	// KindHostRecover: a host fault cleared. Subject=host name, A0=fault
	// kind.
	KindHostRecover
	// KindVMCrash: a fleet VM was killed by a host crash. A0=host,
	// A1=vCPUs.
	KindVMCrash
	// KindVMRestart: a crashed VM was re-placed. A0=new host, A1=attempt
	// number, A2=downtime ns (time-to-recover).
	KindVMRestart
	// KindVMLost: a VM was terminally lost. A0=reason (0=retry budget
	// exhausted, 1=pending queue overflow, 2=recovery disabled), A1=vCPUs.
	KindVMLost

	// numKinds bounds per-kind arrays (Summary); keep it one past the last.
	numKinds
)

func (k Kind) String() string {
	switch k {
	case KindEntityState:
		return "entity-state"
	case KindPreempt:
		return "preempt"
	case KindThrottle:
		return "throttle"
	case KindUnthrottle:
		return "unthrottle"
	case KindSteal:
		return "steal"
	case KindTaskWakeup:
		return "task-wakeup"
	case KindTaskOn:
		return "task-on"
	case KindTaskOff:
		return "task-off"
	case KindTaskMigrate:
		return "task-migrate"
	case KindBalance:
		return "balance"
	case KindIdlePolicy:
		return "idle-policy"
	case KindCapSample:
		return "vcap-sample"
	case KindActSample:
		return "vact-sample"
	case KindBVSPlace:
		return "bvs-place"
	case KindIVH:
		return "ivh"
	case KindVtop:
		return "vtop"
	case KindVMArrive:
		return "vm-arrive"
	case KindVMPlace:
		return "vm-place"
	case KindVMMigrate:
		return "vm-migrate"
	case KindVMExit:
		return "vm-exit"
	case KindVCPUSpeed:
		return "vcpu-speed"
	case KindMigCost:
		return "mig-cost"
	case KindHostFault:
		return "host-fault"
	case KindHostRecover:
		return "host-recover"
	case KindVMCrash:
		return "vm-crash"
	case KindVMRestart:
		return "vm-restart"
	case KindVMLost:
		return "vm-lost"
	}
	return "invalid"
}

// Category returns the simulation layer the kind belongs to: "host",
// "guest", "vsched" or "fleet".
func (k Kind) Category() string {
	switch k {
	case KindEntityState, KindPreempt, KindThrottle, KindUnthrottle, KindSteal:
		return "host"
	case KindTaskWakeup, KindTaskOn, KindTaskOff, KindTaskMigrate, KindBalance, KindIdlePolicy,
		KindVCPUSpeed, KindMigCost:
		return "guest"
	case KindVMArrive, KindVMPlace, KindVMMigrate, KindVMExit,
		KindHostFault, KindHostRecover, KindVMCrash, KindVMRestart, KindVMLost:
		return "fleet"
	default:
		return "vsched"
	}
}

// Event is one trace record. Fixed size: the subject is an interned string
// the emitting layer already owns (entity/task name), and the payload is
// three int64 arguments whose meaning depends on Kind.
type Event struct {
	At         sim.Time
	Kind       Kind
	Subject    string
	A0, A1, A2 int64
}

// Tracer records events into a fixed-capacity ring buffer and/or streams
// them to an observer. The zero of everything is useful: a nil *Tracer is a
// disabled tracer whose emit methods are no-ops.
type Tracer struct {
	buf   []Event
	next  int    // ring write index
	total uint64 // events emitted over the tracer's lifetime
	obs   func(Event)
}

// DefaultCapacity is a buffer big enough for several virtual seconds of a
// mid-sized VM (~48 bytes/event => ~12 MB).
const DefaultCapacity = 1 << 18

// New returns a tracer with a preallocated ring of the given capacity
// (DefaultCapacity when <= 0).
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{buf: make([]Event, 0, capacity)}
}

// NewObserver returns a ring-less tracer that streams every emitted event to
// fn instead of buffering it. This is the live event-access path: a
// latency-attribution profiler (or any other consumer) sees each event the
// moment it is emitted, with no capacity limit and nothing ever dropped.
// Events() returns nil and Dropped() returns 0 for such a tracer.
func NewObserver(fn func(Event)) *Tracer {
	return &Tracer{obs: fn}
}

// SetObserver attaches fn as a streaming tap: every subsequent Emit calls fn
// with the event after (possibly) recording it in the ring. Pass nil to
// detach. The callback runs synchronously on the emit path, so it must be
// cheap and must not re-enter the emitting layer.
func (tr *Tracer) SetObserver(fn func(Event)) {
	if tr == nil {
		return
	}
	tr.obs = fn
}

// Emit records one event. Safe (and free) on a nil tracer: the nil check is
// the entire disabled fast path, and an enabled emit writes one fixed-size
// slot with no allocation.
func (tr *Tracer) Emit(at sim.Time, k Kind, subject string, a0, a1, a2 int64) {
	if tr == nil {
		return
	}
	ev := Event{At: at, Kind: k, Subject: subject, A0: a0, A1: a1, A2: a2}
	if cap(tr.buf) > 0 {
		if len(tr.buf) < cap(tr.buf) {
			tr.buf = append(tr.buf, ev)
		} else {
			tr.buf[tr.next] = ev
			tr.next++
			if tr.next == len(tr.buf) {
				tr.next = 0
			}
		}
	}
	tr.total++
	if tr.obs != nil {
		tr.obs(ev)
	}
}

// Enabled reports whether the tracer records events.
func (tr *Tracer) Enabled() bool { return tr != nil }

// Total returns how many events were emitted over the tracer's lifetime,
// including ones the ring has since overwritten.
func (tr *Tracer) Total() uint64 {
	if tr == nil {
		return 0
	}
	return tr.total
}

// Dropped returns how many events the ring overwrote. An observer-only
// tracer (NewObserver) streams every event and never drops any.
func (tr *Tracer) Dropped() uint64 {
	if tr == nil || cap(tr.buf) == 0 {
		return 0
	}
	return tr.total - uint64(len(tr.buf))
}

// UpdateCensus publishes the tracer's lifetime emit and ring-drop counts
// into reg as first-class gauges, so trace-loss is visible on any metrics
// surface (snapshots, telemetry sampling, /metrics scrapes) without holding
// the tracer itself. Nil-safe: a disabled tracer reports zeros.
func (tr *Tracer) UpdateCensus(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	reg.Gauge("vtrace.emitted").Set(float64(tr.Total()))
	reg.Gauge("vtrace.dropped").Set(float64(tr.Dropped()))
}

// Events returns the buffered events in chronological order. The returned
// slice is freshly allocated; the tracer may keep recording.
func (tr *Tracer) Events() []Event {
	if tr == nil || len(tr.buf) == 0 {
		return nil
	}
	out := make([]Event, 0, len(tr.buf))
	out = append(out, tr.buf[tr.next:]...)
	out = append(out, tr.buf[:tr.next]...)
	return out
}

// AttachHost taps every entity of h — including entities created after the
// call — emitting state-transition, preemption, throttle and steal-interval
// events. It appends to the host-wide observer hook, so several tracers may
// tap one host.
func AttachHost(tr *Tracer, h *host.Host) {
	if tr == nil {
		return
	}
	// stealSince tracks when each entity last entered a steal state
	// (Runnable/Throttled), to size the KindSteal interval on exit. Map
	// reads/writes of existing keys do not allocate, so the steady-state
	// observer path stays allocation-free.
	stealSince := make(map[*host.Entity]sim.Time)
	h.AddObserver(func(e *host.Entity, now sim.Time, from, to host.EntityState) {
		name := e.Name()
		tr.Emit(now, KindEntityState, name, int64(from), int64(to), int64(e.Thread().ID()))
		if from == host.Running && (to == host.Runnable || to == host.Throttled) {
			tr.Emit(now, KindPreempt, name, int64(to), 0, 0)
		}
		if to == host.Throttled {
			tr.Emit(now, KindThrottle, name, 0, 0, 0)
		}
		if from == host.Throttled && to == host.Runnable {
			// The quota-refill path re-admits the entity to its runqueue.
			tr.Emit(now, KindUnthrottle, name, 0, 0, 0)
		}
		fromSteal := from == host.Runnable || from == host.Throttled
		toSteal := to == host.Runnable || to == host.Throttled
		switch {
		case !fromSteal && toSteal:
			stealSince[e] = now
		case fromSteal && !toSteal:
			if since, ok := stealSince[e]; ok {
				tr.Emit(now, KindSteal, name, int64(now.Sub(since)), 0, 0)
				delete(stealSince, e)
			}
		}
	})
}
