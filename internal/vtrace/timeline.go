package vtrace

import (
	"strings"

	"vsched/internal/host"
	"vsched/internal/sim"
)

// Transition is one scheduling state change of an entity.
type Transition struct {
	At       sim.Time
	From, To host.EntityState
}

// Timeline is the recorded state history of one entity — the
// KernelShark-style view used by Fig. 3, rendered as ASCII strips.
type Timeline struct {
	Name    string
	Initial host.EntityState
	Events  []Transition
}

// Attach starts recording an entity's transitions. It must be called before
// the entity's first transition of interest; recording lasts for the
// entity's lifetime. Attaching multiple timelines (or a timeline next to an
// event tracer) is fine: observers stack.
func Attach(e *host.Entity) *Timeline {
	tl := &Timeline{Name: e.Name(), Initial: e.State()}
	e.AddObserver(func(now sim.Time, from, to host.EntityState) {
		tl.Events = append(tl.Events, Transition{At: now, From: from, To: to})
	})
	return tl
}

// stateAt returns the entity state at time t.
func (tl *Timeline) stateAt(t sim.Time) host.EntityState {
	st := tl.Initial
	for _, ev := range tl.Events {
		if ev.At > t {
			break
		}
		st = ev.To
	}
	return st
}

// TimeIn integrates how long the entity spent in state s within [from, to).
func (tl *Timeline) TimeIn(s host.EntityState, from, to sim.Time) sim.Duration {
	var total sim.Duration
	cur := tl.Initial
	mark := from
	for _, ev := range tl.Events {
		if ev.At <= from {
			cur = ev.To
			continue
		}
		if ev.At >= to {
			break
		}
		if cur == s {
			total += ev.At.Sub(mark)
		}
		mark = ev.At
		cur = ev.To
	}
	if cur == s && to > mark {
		total += to.Sub(mark)
	}
	return total
}

// RunningFraction returns the share of [from,to) the entity spent Running.
func (tl *Timeline) RunningFraction(from, to sim.Time) float64 {
	if to <= from {
		return 0
	}
	return float64(tl.TimeIn(host.Running, from, to)) / float64(to.Sub(from))
}

// Render draws the timeline as a width-character strip over [from, to):
// '#' Running, '.' Runnable (preempted), 't' Throttled, ' ' Blocked.
func (tl *Timeline) Render(width int, from, to sim.Time) string {
	if width <= 0 || to <= from {
		return ""
	}
	var b strings.Builder
	span := to.Sub(from)
	for i := 0; i < width; i++ {
		t := from.Add(sim.Duration(int64(span) * int64(i) / int64(width)))
		switch tl.stateAt(t) {
		case host.Running:
			b.WriteByte('#')
		case host.Runnable:
			b.WriteByte('.')
		case host.Throttled:
			b.WriteByte('t')
		default:
			b.WriteByte(' ')
		}
	}
	return b.String()
}
