package fleet

import (
	"fmt"
	"math/rand"

	"vsched/internal/sim"
	"vsched/internal/workload"
)

// VMType sizes a VM and names its tenant behaviour. Service VMs run an
// open-loop request server (latency-sensitive, mostly idle between
// requests); batch VMs run a CPU-bound parallel kernel flat out until they
// depart — the organic noisy neighbour.
type VMType struct {
	Name  string
	VCPUs int
	// Service selects the request-server tenant; ServiceMean is its mean
	// per-request CPU demand. The offered load is fixed at ~50% of the VM's
	// nominal capacity so measured latency reflects interference, not
	// saturation.
	Service     bool
	ServiceMean sim.Duration
	// BatchWork is the per-thread iteration length of the batch kernel.
	BatchWork sim.Duration
}

// instantiate builds the tenant workload inside a placed VM.
func (t VMType) instantiate(vm *fleetVM) workload.Instance {
	env := workload.Env{
		VM:      vm.gvm,
		Nominal: vm.gvm.Host().Config().BaseSpeed,
	}
	if vm.vs != nil {
		env.Group = vm.vs.UserGroup()
		env.BEGroup = vm.vs.BEGroup()
	}
	if t.Service {
		return workload.NewServer(env, workload.ServerConfig{
			Name:         vm.name,
			Workers:      t.VCPUs,
			ServiceMean:  t.ServiceMean,
			ServiceJit:   0.3,
			Interarrival: t.ServiceMean / sim.Duration(t.VCPUs) * 2,
			LatencyMark:  true,
		})
	}
	env.Threads = t.VCPUs
	return workload.NewParallel(env, workload.ParallelSpec{
		Name:      vm.name,
		IterWork:  t.BatchWork,
		Imbalance: 0.15,
		Sync:      workload.SyncNone,
	})
}

// Arrival is one entry of a VM arrival trace.
type Arrival struct {
	ID   int
	Type VMType
	At   sim.Time
	// Lifetime <= 0 means the VM stays to the horizon (negative values are
	// normalised to 0 by Run). Simultaneous arrivals (equal At) are
	// processed in ascending ID order regardless of slice order.
	Lifetime sim.Duration
}

// TypeMix weights a VMType in a generated trace.
type TypeMix struct {
	Type   VMType
	Weight int
	// MeanLifetime draws exponential lifetimes; 0 pins VMs to the horizon.
	MeanLifetime sim.Duration
}

// GenerateArrivals synthesises a Poisson arrival trace over window: n VMs,
// types drawn by weight, exponential lifetimes. It is a pure function of
// its arguments — cells that must replay the identical trace (policy and
// guest comparisons) pass the same seed, and the private rand keeps the
// trace independent of anything else the engine draws.
//
// Edge cases are pinned deterministically (see the regression tests): a
// negative window or MeanLifetime panics (a sign error upstream, not a
// degenerate trace), a zero-duration lifetime draw is floored to 50ms so no
// generated VM ever departs in the instant it arrives, and arrivals that
// collapse onto the same timestamp (window 0, or exponential gaps rounding
// to zero) keep strictly increasing IDs, which Run uses as the tie-break.
func GenerateArrivals(seed int64, n int, window sim.Duration, mix []TypeMix) []Arrival {
	if n <= 0 || len(mix) == 0 {
		return nil
	}
	if window < 0 {
		panic(fmt.Sprintf("fleet: negative arrival window %v", window))
	}
	rng := rand.New(rand.NewSource(seed))
	total := 0
	for _, m := range mix {
		if m.Weight <= 0 {
			panic(fmt.Sprintf("fleet: non-positive weight for type %s", m.Type.Name))
		}
		if m.MeanLifetime < 0 {
			panic(fmt.Sprintf("fleet: negative mean lifetime for type %s", m.Type.Name))
		}
		total += m.Weight
	}
	mean := window / sim.Duration(n)
	out := make([]Arrival, 0, n)
	var at sim.Time
	for i := 0; i < n; i++ {
		at = at.Add(sim.Exp(rng, mean))
		pick := rng.Intn(total)
		var m TypeMix
		for _, cand := range mix {
			if pick < cand.Weight {
				m = cand
				break
			}
			pick -= cand.Weight
		}
		a := Arrival{ID: i, Type: m.Type, At: at}
		if m.MeanLifetime > 0 {
			a.Lifetime = sim.Exp(rng, m.MeanLifetime)
			if a.Lifetime < 50*sim.Millisecond {
				a.Lifetime = 50 * sim.Millisecond
			}
		}
		out = append(out, a)
	}
	return out
}
