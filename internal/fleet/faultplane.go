package fleet

import (
	"fmt"

	"vsched/internal/faults"
	"vsched/internal/sim"
	"vsched/internal/vtrace"
)

// The micro fleet's fault plane. The macro tier quantizes fault windows to
// the epoch grid (macro.go); here every fault fires as an engine event at its
// exact scheduled instant and acts on real entities:
//
//   - Crash: every resident VM is killed on the spot — workload stopped,
//     vCPU entities blocked, threads released. The host admits nothing until
//     the outage expires. With recovery, victims queue for restart with
//     capped exponential backoff; without, they are terminally lost.
//   - Brownout: the host's admission bound shrinks to factor x capacity for
//     the duration. With recovery, resident VMs evacuate through live
//     migration (stop-and-copy, the same moveVM the controller uses) until
//     the host fits again; a VM with nowhere to go stays put — graceful
//     degradation, visible as steal.
//   - Stall: every resident vCPU entity blocks for the duration and wakes
//     after — a transient freeze, pure steal from the guest's viewpoint.
//
// Everything runs inside the cell's single engine, so fault handling is
// deterministic by construction; the fleetscale/faulttol experiments pin it.

// microRetry is one crash victim waiting for restart.
type microRetry struct {
	id        int
	typ       VMType
	deadline  sim.Time // original departure deadline; zero = pinned to horizon
	downSince sim.Time
	vcpus     int
	attempt   int
}

// scheduleFaults validates the schedule against the cluster and arms one
// engine event per fault (plus one per recovery edge, for rescoring).
func (f *Fleet) scheduleFaults() {
	sched := f.cfg.Faults
	if sched == nil {
		return
	}
	for i := range sched.Events {
		ev := sched.Events[i]
		if ev.Host < 0 || ev.Host >= len(f.hosts) {
			panic(fmt.Sprintf("fleet: fault event host %d outside fleet of %d", ev.Host, len(f.hosts)))
		}
		f.eng.At(ev.At, func() { f.applyFault(ev) })
		f.eng.At(ev.Until(), func() { f.recoverFault(ev) })
	}
}

// hostName renders the stable per-host subject used by fault trace events.
func hostName(i int) string { return fmt.Sprintf("host%02d", i) }

// effCap is hs's effective admission capacity right now: zero while crashed,
// degradeFactor x capacity while browned out. With no fault schedule the
// windows are never set and this is exactly capacity().
func (f *Fleet) effCap(hs *hostState) int {
	now := f.eng.Now()
	if hs.downUntil > now {
		return 0
	}
	if hs.degradedUntil > now {
		return int(hs.degradeFactor * float64(f.capacity()))
	}
	return f.capacity()
}

// applyFault executes one fault event at its scheduled instant.
func (f *Fleet) applyFault(ev faults.Event) {
	hs := f.hosts[ev.Host]
	now := f.eng.Now()
	until := ev.Until()
	f.cfg.Tracer.Emit(now, vtrace.KindHostFault, hostName(ev.Host),
		int64(ev.Kind), int64(ev.Duration), int64(ev.Factor*1e6))
	switch ev.Kind {
	case faults.Crash:
		f.crashes++
		f.reg.Counter("fleet.crashes").Inc()
		if until > hs.downUntil {
			hs.downUntil = until
		}
		victims := append([]*fleetVM(nil), hs.vms...)
		for _, vm := range victims {
			f.kill(vm, now)
		}
	case faults.Brownout:
		f.brownouts++
		f.reg.Counter("fleet.brownouts").Inc()
		hs.degradedUntil = until
		hs.degradeFactor = ev.Factor
		f.reindex(hs)
		f.evacuate(hs)
	case faults.Stall:
		f.stalls++
		f.reg.Counter("fleet.stalls").Inc()
		var blocked []*fleetVM
		for _, vm := range hs.vms {
			if vm.migrating {
				continue // its own wake is already scheduled
			}
			for _, v := range vm.gvm.VCPUs() {
				v.Entity().Block()
			}
			blocked = append(blocked, vm)
		}
		f.eng.At(until, func() {
			for _, vm := range blocked {
				// Killed since (kill blocks entities for good) or mid-
				// migration (its own wake pending): leave it alone. Wake is
				// a no-op on entities something else already resumed.
				if !vm.alive || vm.migrating {
					continue
				}
				for _, v := range vm.gvm.VCPUs() {
					v.Entity().Wake()
				}
			}
		})
	}
	f.reindex(hs)
}

// recoverFault marks the end of a fault window: capacity is back (the strict
// > in effCap already excludes now), so rescore the host for placement.
func (f *Fleet) recoverFault(ev faults.Event) {
	hs := f.hosts[ev.Host]
	f.cfg.Tracer.Emit(f.eng.Now(), vtrace.KindHostRecover, hostName(ev.Host),
		int64(ev.Kind), 0, 0)
	f.reindex(hs)
}

// kill destroys vm where it stands after its host crashed: the workload
// stops, the entities freeze, the slots free. With recovery the VM joins the
// bounded retry queue; without, it is terminally lost.
func (f *Fleet) kill(vm *fleetVM, now sim.Time) {
	if !vm.alive {
		return
	}
	vm.alive = false
	vm.inst.(stopper).Stop()
	for _, v := range vm.gvm.VCPUs() {
		v.Entity().Block()
	}
	hs := f.hosts[vm.hostIdx]
	f.accrueUp(now)
	f.totCommitted -= vm.typ.VCPUs
	hs.release(vm.threads)
	hs.removeVM(vm)
	f.reindex(hs)
	f.killed++
	f.reg.Counter("fleet.killed").Inc()
	f.cfg.Tracer.Emit(now, vtrace.KindVMCrash, vm.name,
		int64(vm.hostIdx), int64(vm.typ.VCPUs), 0)
	if !f.rcv.Enabled {
		f.lose(vm.name, 2, vm.typ.VCPUs)
		return
	}
	if len(f.pending) >= f.rcv.QueueCap {
		f.lose(vm.name, 1, vm.typ.VCPUs)
		return
	}
	e := &microRetry{
		id:        vm.id,
		typ:       vm.typ,
		deadline:  vm.deadline,
		downSince: now,
		vcpus:     vm.typ.VCPUs,
		attempt:   1,
	}
	f.pending = append(f.pending, e)
	f.reg.Counter("fleet.retry_queued").Inc()
	f.eng.At(now.Add(f.rcv.Backoff(1)), func() { f.retry(e) })
}

// lose records a terminal VM loss (reason 0 = retry budget, 1 = queue
// overflow, 2 = recovery disabled).
func (f *Fleet) lose(name string, reason int, vcpus int) {
	f.lost++
	f.reg.Counter("fleet.lost").Inc()
	f.cfg.Tracer.Emit(f.eng.Now(), vtrace.KindVMLost, name, int64(reason), int64(vcpus), 0)
}

// unpend removes e from the pending list, preserving order.
func (f *Fleet) unpend(e *microRetry) {
	for i, p := range f.pending {
		if p == e {
			f.pending = append(f.pending[:i], f.pending[i+1:]...)
			return
		}
	}
}

// retry attempts one restart of a crash victim.
func (f *Fleet) retry(e *microRetry) {
	now := f.eng.Now()
	name := fmt.Sprintf("vm%03d-%s-r", e.id, e.typ.Name)
	if e.deadline != 0 && e.deadline <= now {
		// Its service lifetime expired while it waited: nothing left to
		// restart. The downtime it accrued stands; the VM is lost work.
		f.unpend(e)
		f.downVCPUSeconds += now.Sub(e.downSince).Seconds() * float64(e.vcpus)
		f.lose(name, 0, e.vcpus)
		return
	}
	hi := f.chooseHost(e.vcpus)
	if hi < 0 {
		if e.attempt >= f.rcv.MaxRetries {
			f.unpend(e)
			f.downVCPUSeconds += now.Sub(e.downSince).Seconds() * float64(e.vcpus)
			f.lose(name, 0, e.vcpus)
			return
		}
		e.attempt++
		f.eng.At(now.Add(f.rcv.Backoff(e.attempt)), func() { f.retry(e) })
		return
	}
	f.unpend(e)
	f.restart(e, hi, now)
}

// chooseHost runs the placement policy for a vcpus-wide VM honouring
// effective (fault-adjusted) capacity; -1 means nothing fits.
func (f *Fleet) chooseHost(vcpus int) int {
	var hi int
	if f.ix != nil {
		hi = f.ipol.PlaceIndexed(f.ix, vcpus)
	} else {
		hi = f.cfg.Policy.Place(f.view(), vcpus)
	}
	if hi < 0 || hi >= len(f.hosts) || f.hosts[hi].committed+vcpus > f.effCap(f.hosts[hi]) {
		return -1
	}
	return hi
}

// restart re-places a crash victim on host hi as a fresh incarnation: new
// guest, new workload, the "-rN" name recording which restart this is.
// Service VMs keep their original departure deadline — the lifetime clock
// does not reset with the workload.
func (f *Fleet) restart(e *microRetry, hi int, now sim.Time) {
	a := Arrival{ID: e.id, Type: e.typ, At: now}
	name := fmt.Sprintf("vm%03d-%s-r%d", e.id, e.typ.Name, e.attempt)
	vm := f.spawn(a, hi, name)
	vm.deadline = e.deadline
	vm.restarts = e.attempt
	if e.deadline != 0 {
		f.eng.At(e.deadline, func() { f.depart(vm) })
	}
	f.restarts++
	f.reg.Counter("fleet.restarts").Inc()
	ttr := now.Sub(e.downSince).Seconds()
	f.ttrSum += ttr
	f.ttrCount++
	if ttr > f.ttrMax {
		f.ttrMax = ttr
	}
	f.downVCPUSeconds += ttr * float64(e.vcpus)
	f.cfg.Tracer.Emit(now, vtrace.KindVMRestart, name,
		int64(hi), int64(e.attempt), int64(now.Sub(e.downSince)))
}

// evacuate drains a degraded host through live migration until its
// commitment fits the shrunken capacity, newest resident first (coldest
// cache). Each attempt consults the migration-failure law; a failure abandons
// the host (it stays overcommitted — graceful degradation), as does finding
// no destination.
func (f *Fleet) evacuate(hs *hostState) {
	if !f.rcv.Enabled || f.cfg.Faults == nil {
		return
	}
	for hs.committed > f.effCap(hs) {
		var vm *fleetVM
		for i := len(hs.vms) - 1; i >= 0; i-- {
			if !hs.vms[i].migrating {
				vm = hs.vms[i]
				break
			}
		}
		if vm == nil {
			return
		}
		f.migAttempts++
		if f.cfg.Faults.MigrationFails(f.migAttempts) {
			f.evacFailures++
			f.reg.Counter("fleet.evac_failures").Inc()
			return
		}
		dst := -1
		for i, cand := range f.hosts {
			if i == hs.index || cand.committed+vm.typ.VCPUs > f.effCap(cand) {
				continue
			}
			if dst < 0 || cand.stealEMA < f.hosts[dst].stealEMA ||
				(cand.stealEMA == f.hosts[dst].stealEMA && cand.committed < f.hosts[dst].committed) {
				dst = i
			}
		}
		if dst < 0 {
			return // nowhere to go: stay overcommitted, steal rises
		}
		f.moveVM(vm, dst)
		f.evacuations++
		f.reg.Counter("fleet.evacuations").Inc()
	}
}

// accrueUp folds the piecewise-constant committed-vCPU integral up to now
// into the availability ledger. Call before any change to totCommitted.
func (f *Fleet) accrueUp(now sim.Time) {
	if now > f.lastCommChange {
		f.upVCPUSeconds += float64(f.totCommitted) * now.Sub(f.lastCommChange).Seconds()
		f.lastCommChange = now
	}
}
