package fleet

import (
	"math/rand"
	"testing"

	"vsched/internal/sim"
	"vsched/internal/vtrace"
)

// linearInfos builds the snapshot a linear Place sees from raw host state.
func linearInfos(committed []int, caps []int, steal []float64, vms []int) []HostInfo {
	out := make([]HostInfo, len(committed))
	for i := range out {
		out[i] = HostInfo{
			Index:     i,
			Committed: committed[i],
			Capacity:  caps[i],
			VMs:       vms[i],
			StealRate: steal[i],
		}
	}
	return out
}

func TestHostIndexFirstFit(t *testing.T) {
	caps := []int{4, 8, 4}
	ix := NewHostIndex(caps)
	if got := ix.FirstFit(4); got != 0 {
		t.Fatalf("empty index FirstFit(4) = %d, want 0", got)
	}
	if got := ix.FirstFit(8); got != 1 {
		t.Fatalf("FirstFit(8) = %d, want 1 (only host with capacity 8)", got)
	}
	if got := ix.FirstFit(9); got != -1 {
		t.Fatalf("FirstFit(9) = %d, want -1 (nothing fits)", got)
	}
	ix.Update(0, 3, 0) // free 1
	if got := ix.FirstFit(2); got != 1 {
		t.Fatalf("FirstFit(2) after filling host 0 = %d, want 1", got)
	}
	if got := ix.FirstFit(1); got != 0 {
		t.Fatalf("FirstFit(1) = %d, want 0 (still one free slot)", got)
	}
	ix.Update(1, 8, 0)
	ix.Update(2, 4, 0)
	ix.Update(0, 4, 0)
	if got := ix.FirstFit(1); got != -1 {
		t.Fatalf("FirstFit(1) on full fleet = %d, want -1", got)
	}
}

func TestHostIndexBestScoreTieBreak(t *testing.T) {
	// Heterogeneous capacities, equal scores: lowest host ID must win, the
	// same tie-break the linear scan's strict `<` produces.
	caps := []int{8, 16, 8, 16}
	ix := NewHostIndex(caps)
	for i := range caps {
		ix.Update(i, 0, 1.5)
	}
	if got := ix.BestScore(4); got != 0 {
		t.Fatalf("all-tied BestScore = %d, want 0", got)
	}
	// Host 0 can't fit a 12-vCPU VM; hosts 1 and 3 tie — 1 wins.
	if got := ix.BestScore(12); got != 1 {
		t.Fatalf("BestScore(12) = %d, want 1 (lowest fitting tied host)", got)
	}
	// Strictly better score on a later host beats the earlier tie.
	ix.Update(3, 0, 1.0)
	if got := ix.BestScore(12); got != 3 {
		t.Fatalf("BestScore(12) = %d, want 3 (strictly lower score)", got)
	}
	// An equal score arriving later must NOT displace the current best.
	ix.Update(1, 0, 1.0)
	if got := ix.BestScore(12); got != 1 {
		t.Fatalf("BestScore(12) = %d, want 1 (equal scores tie to lower ID)", got)
	}
}

// TestIndexedMatchesLinear drives a HostIndex and the linear Place
// implementations through the same randomized sequence of placements,
// departures and steal-telemetry updates over a heterogeneous fleet, and
// requires bit-identical decisions from every policy at every step. This is
// the contract that lets the fleet swap in the index without perturbing the
// engineswap goldens.
func TestIndexedMatchesLinear(t *testing.T) {
	policies := []IndexedPolicy{FirstFit{}, LeastLoaded{}, StealAware{}}
	for _, pol := range policies {
		pol := pol
		t.Run(pol.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			const hosts = 37 // not a power of two: exercises unused leaves
			caps := make([]int, hosts)
			for i := range caps {
				caps[i] = 8 + 8*rng.Intn(3) // 8, 16 or 24: heterogeneous
			}
			ix := NewHostIndex(caps)
			committed := make([]int, hosts)
			steal := make([]float64, hosts)
			vms := make([]int, hosts)
			type placed struct{ host, vcpus int }
			var live []placed

			reindex := func(i int) {
				ix.Update(i, committed[i], pol.Score(HostInfo{
					Index: i, Committed: committed[i], Capacity: caps[i],
					VMs: vms[i], StealRate: steal[i],
				}))
			}
			for step := 0; step < 4000; step++ {
				switch op := rng.Intn(10); {
				case op < 6: // place
					v := 1 + rng.Intn(12)
					want := pol.Place(linearInfos(committed, caps, steal, vms), v)
					got := pol.PlaceIndexed(ix, v)
					if got != want {
						t.Fatalf("step %d: PlaceIndexed(%d) = %d, linear Place = %d", step, v, got, want)
					}
					if got >= 0 {
						committed[got] += v
						vms[got]++
						live = append(live, placed{got, v})
						reindex(got)
					}
				case op < 8: // depart
					if len(live) == 0 {
						continue
					}
					k := rng.Intn(len(live))
					p := live[k]
					live[k] = live[len(live)-1]
					live = live[:len(live)-1]
					committed[p.host] -= p.vcpus
					vms[p.host]--
					reindex(p.host)
				default: // telemetry tick: steal EMAs move
					i := rng.Intn(hosts)
					steal[i] = rng.Float64() * 0.5
					reindex(i)
				}
			}
		})
	}
}

func TestGenerateArrivalsEdgeCases(t *testing.T) {
	mix := []TypeMix{{Type: VMType{Name: "b", VCPUs: 2, BatchWork: sim.Millisecond}, Weight: 1, MeanLifetime: sim.Second}}

	t.Run("negative window panics", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic on negative window")
			}
		}()
		GenerateArrivals(1, 10, -sim.Second, mix)
	})
	t.Run("negative mean lifetime panics", func(t *testing.T) {
		bad := []TypeMix{{Type: mix[0].Type, Weight: 1, MeanLifetime: -sim.Second}}
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic on negative mean lifetime")
			}
		}()
		GenerateArrivals(1, 10, sim.Second, bad)
	})
	t.Run("zero window collapses arrivals deterministically", func(t *testing.T) {
		as := GenerateArrivals(3, 50, 0, mix)
		if len(as) != 50 {
			t.Fatalf("got %d arrivals, want 50", len(as))
		}
		for i, a := range as {
			if a.At != 0 {
				t.Fatalf("arrival %d at %v, want 0 (zero window)", i, a.At)
			}
			if a.ID != i {
				t.Fatalf("arrival %d has ID %d: IDs must be strictly increasing for the tie-break", i, a.ID)
			}
			if a.Lifetime < 50*sim.Millisecond {
				t.Fatalf("arrival %d lifetime %v below the 50ms floor", i, a.Lifetime)
			}
		}
	})
	t.Run("pinned lifetimes are zero", func(t *testing.T) {
		pinned := []TypeMix{{Type: mix[0].Type, Weight: 1}}
		for _, a := range GenerateArrivals(5, 20, sim.Second, pinned) {
			if a.Lifetime != 0 {
				t.Fatalf("pinned mix produced lifetime %v, want 0", a.Lifetime)
			}
		}
	})
}

// TestSimultaneousArrivalOrder shuffles a trace whose arrivals all share one
// timestamp and checks Run processes them in ascending ID order regardless of
// slice order: the same hosts get the same VMs either way.
func TestSimultaneousArrivalOrder(t *testing.T) {
	mk := func(perm []int) map[string]int {
		byHost := map[string]int{}
		tr := vtrace.NewObserver(func(ev vtrace.Event) {
			if ev.Kind == vtrace.KindVMPlace && ev.A0 >= 0 {
				byHost[ev.Subject] = int(ev.A0)
			}
		})
		cfg := testConfig(1, LeastLoaded{}, false)
		typ := VMType{Name: "b", VCPUs: 2, BatchWork: 500 * sim.Microsecond}
		arrivals := make([]Arrival, len(perm))
		for i, id := range perm {
			// Negative lifetimes exercise the normalise-to-horizon path too.
			arrivals[i] = Arrival{ID: id, Type: typ, At: 0, Lifetime: -sim.Second}
		}
		cfg.Arrivals = arrivals
		cfg.Horizon = 10 * sim.Millisecond
		cfg.Tracer = tr
		New(cfg).Run()
		return byHost
	}
	sorted := mk([]int{0, 1, 2, 3, 4, 5})
	shuffled := mk([]int{4, 1, 5, 0, 3, 2})
	if len(sorted) != 6 {
		t.Fatalf("placed %d VMs, want 6", len(sorted))
	}
	for name, h := range sorted {
		if shuffled[name] != h {
			t.Fatalf("VM %s placed on host %d sorted vs %d shuffled: simultaneous arrivals must sort by ID", name, h, shuffled[name])
		}
	}
}
