package fleet

import "sync"

// RunAll executes independent fleet cells over a worker pool and returns
// results[i] for cfgs[i]. Cells never share mutable state — each Run builds
// a private engine, hosts and registry — so the output is a pure function
// of cfgs: workers only changes wall-clock time, never a byte of any
// Result. workers <= 1 is the serial reference path.
//
// onStart, when non-nil, is called from the worker goroutine with the cell
// index and the freshly built Fleet before it runs — the hook the
// experiment harness uses to register engines for interruption. It must be
// safe for concurrent calls.
func RunAll(cfgs []Config, workers int, onStart func(int, *Fleet)) []*Result {
	results := make([]*Result, len(cfgs))
	if workers <= 1 {
		for i, cfg := range cfgs {
			f := New(cfg)
			if onStart != nil {
				onStart(i, f)
			}
			results[i] = f.Run()
		}
		return results
	}
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				f := New(cfgs[i])
				if onStart != nil {
					onStart(i, f)
				}
				results[i] = f.Run()
			}
		}()
	}
	for i := range cfgs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results
}
