package fleet

import (
	"testing"

	"vsched/internal/faults"
	"vsched/internal/host"
	"vsched/internal/sim"
)

// fastRecovery is a retry policy scaled to millisecond test horizons (the
// defaults are sized for 48-hour fleet runs).
func fastRecovery() faults.RecoveryConfig {
	return faults.RecoveryConfig{
		Enabled:     true,
		MaxRetries:  5,
		BaseBackoff: 50 * sim.Millisecond,
		MaxBackoff:  200 * sim.Millisecond,
	}
}

// TestFleetCrashRecovery: a mid-run host crash kills its residents; without
// recovery they are terminally lost, with recovery they restart elsewhere and
// produce strictly more work. Conservation is enforced by collect (it panics
// on imbalance), so merely finishing the runs asserts the ledger.
func TestFleetCrashRecovery(t *testing.T) {
	sched := &faults.Schedule{Seed: 1, Events: []faults.Event{
		{At: sim.Time(0).Add(600 * sim.Millisecond), Host: 0, Kind: faults.Crash,
			Duration: 1000 * sim.Millisecond},
	}}
	mk := func(rcv faults.RecoveryConfig) *Result {
		cfg := testConfig(7, FirstFit{}, false)
		cfg.Faults = sched
		cfg.Recovery = rcv
		return New(cfg).Run()
	}
	base := mk(faults.RecoveryConfig{})
	if base.Crashes != 1 || base.Killed == 0 {
		t.Fatalf("crashes=%d killed=%d, want 1/>0", base.Crashes, base.Killed)
	}
	if base.Lost != base.Killed || base.Restarts != 0 {
		t.Fatalf("no-recovery lost=%d restarts=%d, want killed=%d lost, 0 restarts",
			base.Lost, base.Restarts, base.Killed)
	}

	res := mk(fastRecovery())
	if res.Killed != base.Killed {
		t.Fatalf("recovery changed the kill count: %d vs %d (pre-crash state must match)",
			res.Killed, base.Killed)
	}
	if res.Restarts == 0 {
		t.Fatal("recovery produced no restarts")
	}
	if res.Ops <= base.Ops {
		t.Fatalf("recovery ops %d not better than no-recovery %d", res.Ops, base.Ops)
	}
	if res.Availability >= 1 || res.Availability <= 0 {
		t.Fatalf("availability %v, want in (0,1) after an outage", res.Availability)
	}
	if res.MTTRMean <= 0 || res.MTTRMax < res.MTTRMean {
		t.Fatalf("bad MTTR stats: mean %v max %v", res.MTTRMean, res.MTTRMax)
	}

	again := mk(fastRecovery())
	if res.Events != again.Events || res.Ops != again.Ops || res.Steal != again.Steal ||
		res.Restarts != again.Restarts || res.Lost != again.Lost {
		t.Fatalf("faulted rerun diverged:\n%+v\nvs\n%+v", res, again)
	}
}

// TestFleetStallFreezes: a stall blocks every resident entity for its
// duration — less work gets done, nobody dies, and the VMs resume after.
func TestFleetStallFreezes(t *testing.T) {
	bt := VMType{Name: "b", VCPUs: 2, BatchWork: sim.Millisecond}
	mk := func(sched *faults.Schedule) *Result {
		return New(Config{
			Seed: 3, Hosts: 1, HostConfig: testHostConfig(), Overcommit: 2.0,
			Policy: FirstFit{},
			Arrivals: []Arrival{
				{ID: 0, Type: bt, At: 0},
				{ID: 1, Type: bt, At: 0},
			},
			Horizon: 2000 * sim.Millisecond,
			Faults:  sched,
		}).Run()
	}
	clean := mk(nil)
	res := mk(&faults.Schedule{Seed: 1, Events: []faults.Event{
		{At: sim.Time(0).Add(500 * sim.Millisecond), Host: 0, Kind: faults.Stall,
			Duration: 500 * sim.Millisecond},
	}})
	if res.Stalls != 1 || res.Killed != 0 || res.Lost != 0 {
		t.Fatalf("stalls=%d killed=%d lost=%d, want 1/0/0", res.Stalls, res.Killed, res.Lost)
	}
	if res.Ops >= clean.Ops {
		t.Fatalf("stalled ops %d not below clean %d", res.Ops, clean.Ops)
	}
	if res.Ops == 0 {
		t.Fatal("stall killed all progress; VMs must resume after the window")
	}
	if res.Departed != 0 || res.Placed != 2 {
		t.Fatalf("departed=%d placed=%d, want 0/2 (pinned VMs survive)", res.Departed, res.Placed)
	}
}

// TestFleetBrownoutEvacuation: a brownout shrinks the host below its
// commitment and recovery live-migrates the newest VM off until it fits.
func TestFleetBrownoutEvacuation(t *testing.T) {
	bt := VMType{Name: "b", VCPUs: 2, BatchWork: sim.Millisecond}
	cfg := Config{
		Seed: 5, Hosts: 2, HostConfig: testHostConfig(), Overcommit: 2.0,
		Policy: FirstFit{},
		Arrivals: []Arrival{
			{ID: 0, Type: bt, At: 0},
			{ID: 1, Type: bt, At: 0},
			{ID: 2, Type: bt, At: 0},
		},
		Horizon:   1500 * sim.Millisecond,
		Migration: MigrationConfig{Downtime: 5 * sim.Millisecond},
		Faults: &faults.Schedule{Seed: 1, Events: []faults.Event{
			{At: sim.Time(0).Add(500 * sim.Millisecond), Host: 0, Kind: faults.Brownout,
				Duration: 500 * sim.Millisecond, Factor: 0.5},
		}},
		Recovery: fastRecovery(),
	}
	f := New(cfg)
	res := f.Run()
	if res.Brownouts != 1 || res.Evacuations != 1 || res.EvacFailures != 0 {
		t.Fatalf("brownouts=%d evacuations=%d failures=%d, want 1/1/0",
			res.Brownouts, res.Evacuations, res.EvacFailures)
	}
	if res.Killed != 0 || res.Lost != 0 {
		t.Fatalf("killed=%d lost=%d, want 0/0 (brownouts don't kill)", res.Killed, res.Lost)
	}
	if res.Migrations < res.Evacuations {
		t.Fatalf("evacuations (%d) must be counted in migrations (%d)",
			res.Evacuations, res.Migrations)
	}
	// The evacuee's entities must really live on host 1's threads.
	moved := 0
	for _, vm := range f.vms {
		if vm.hostIdx != 1 {
			continue
		}
		moved++
		hs := f.hosts[1]
		for i, v := range vm.gvm.VCPUs() {
			if v.Entity().Thread() != hs.h.Thread(vm.threads[i]) {
				t.Fatalf("%s vCPU %d entity on wrong thread after evacuation", vm.name, i)
			}
		}
	}
	if moved != 1 {
		t.Fatalf("%d VMs on the evacuation target, want 1", moved)
	}
}

// TestMigrationCooldownStopsPingPong reproduces the hotspot flip: the steal
// EMA peak moves from host 0 to host 1 between two controller passes, and
// without a cooldown the controller shuttles the same VM straight back.
func TestMigrationCooldownStopsPingPong(t *testing.T) {
	bt := VMType{Name: "b", VCPUs: 2, BatchWork: sim.Millisecond}
	mk := func(cool sim.Duration) *Fleet {
		f := New(Config{
			Seed: 1, Hosts: 2, HostConfig: testHostConfig(), Overcommit: 2.0,
			Policy:  FirstFit{},
			Horizon: 300 * sim.Millisecond,
			Migration: MigrationConfig{
				MinSteal: 0.05, Margin: 0.02,
				Downtime: sim.Millisecond, Cooldown: cool,
			},
		})
		f.eng.At(0, func() {
			f.arrive(Arrival{ID: 0, Type: bt, At: 0})
			f.arrive(Arrival{ID: 1, Type: bt, At: 0})
		})
		flip := func(hot int) func() {
			return func() {
				f.hosts[hot].stealEMA, f.hosts[1-hot].stealEMA = 0.5, 0
				f.migrateOnce()
			}
		}
		f.eng.At(sim.Time(0).Add(100*sim.Millisecond), flip(0))
		f.eng.At(sim.Time(0).Add(200*sim.Millisecond), flip(1))
		f.eng.RunFor(300 * sim.Millisecond)
		return f
	}
	if got := mk(0).migrations; got != 2 {
		t.Fatalf("without cooldown: %d migrations, want 2 (the ping-pong)", got)
	}
	if got := mk(300 * sim.Millisecond).migrations; got != 1 {
		t.Fatalf("with cooldown: %d migrations, want 1 (return trip damped)", got)
	}
}

// TestMigrationWhileExiting: a VM departs inside its stop-and-copy window.
// The pending wake must not resurrect it — entities stay blocked, occupancy
// stays released, and the departure counts exactly once.
func TestMigrationWhileExiting(t *testing.T) {
	bt := VMType{Name: "b", VCPUs: 2, BatchWork: sim.Millisecond}
	f := New(Config{
		Seed: 1, Hosts: 2, HostConfig: testHostConfig(), Overcommit: 2.0,
		Policy:    FirstFit{},
		Horizon:   100 * sim.Millisecond,
		Migration: MigrationConfig{Downtime: 20 * sim.Millisecond},
	})
	f.eng.At(0, func() { f.arrive(Arrival{ID: 0, Type: bt, At: 0}) })
	f.eng.At(sim.Time(0).Add(10*sim.Millisecond), func() { f.moveVM(f.vms[0], 1) })
	f.eng.At(sim.Time(0).Add(15*sim.Millisecond), func() { f.depart(f.vms[0]) })
	f.eng.RunFor(100 * sim.Millisecond)
	vm := f.vms[0]
	if vm.alive || f.departed != 1 || f.migrations != 1 {
		t.Fatalf("alive=%v departed=%d migrations=%d, want false/1/1",
			vm.alive, f.departed, f.migrations)
	}
	for _, hs := range f.hosts {
		if hs.committed != 0 || len(hs.vms) != 0 {
			t.Fatalf("host %d still holds committed=%d vms=%d after exit",
				hs.index, hs.committed, len(hs.vms))
		}
	}
	// The downtime-end wake fired after the depart and must have left the
	// blocked entities alone.
	for i, v := range vm.gvm.VCPUs() {
		if v.Entity().State() != host.Blocked {
			t.Fatalf("vCPU %d woke after its VM exited: state %v", i, v.Entity().State())
		}
	}
}

// TestFleetFaultShardedMatchesSerial: micro cells with the fault plane active
// still shard with results identical to a serial run.
func TestFleetFaultShardedMatchesSerial(t *testing.T) {
	sched := &faults.Schedule{Seed: 9, Events: []faults.Event{
		{At: sim.Time(0).Add(400 * sim.Millisecond), Host: 0, Kind: faults.Crash,
			Duration: 800 * sim.Millisecond},
		{At: sim.Time(0).Add(700 * sim.Millisecond), Host: 1, Kind: faults.Brownout,
			Duration: 600 * sim.Millisecond, Factor: 0.5},
		{At: sim.Time(0).Add(900 * sim.Millisecond), Host: 2, Kind: faults.Stall,
			Duration: 300 * sim.Millisecond},
	}}
	var cfgs []Config
	for _, pol := range []Policy{FirstFit{}, StealAware{}} {
		cfg := testConfig(42, pol, false)
		cfg.Faults = sched
		cfg.Recovery = fastRecovery()
		cfgs = append(cfgs, cfg)
	}
	serial := RunAll(cfgs, 1, nil)
	parallel := RunAll(cfgs, 4, nil)
	for i := range cfgs {
		s, p := serial[i], parallel[i]
		if s.Ops != p.Ops || s.Steal != p.Steal || s.Events != p.Events ||
			s.Killed != p.Killed || s.Restarts != p.Restarts || s.Lost != p.Lost ||
			s.Evacuations != p.Evacuations || s.Availability != p.Availability {
			t.Fatalf("faulted cell %d differs between serial and sharded runs:\n%+v\nvs\n%+v",
				i, s, p)
		}
		if s.Killed == 0 {
			t.Fatalf("cell %d: crash killed nothing; rig too quiet", i)
		}
	}
}
