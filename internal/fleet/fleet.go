// Package fleet is the cloud layer of the simulator: a cluster of hosts
// sharing one deterministic event clock, a VM lifecycle model (trace-driven
// arrivals, lifetimes, departures), pluggable placement policies, and live
// VM migration between hosts.
//
// The paper evaluates vSched one VM at a time against scripted co-tenant
// stressors; here contention is *organic* — colocated VMs steal from each
// other because the placement policy put them on the same threads, and
// vSched's probers observe real neighbour churn (arrivals, departures,
// migrations) instead of a square wave. Nothing in this package uses the
// host package's synthetic co-tenant types, by contract (see the test).
//
// Everything is deterministic: a Config is a pure value (the arrival trace
// is pre-generated from a seed), one Run builds one private sim.Engine, and
// the same Config always produces the same Result. Independent fleet cells
// therefore shard across worker pools with merged results identical to a
// serial run (see RunAll).
package fleet

import (
	"fmt"
	"math"
	"sort"

	"vsched/internal/cachemodel"
	"vsched/internal/core"
	"vsched/internal/faults"
	"vsched/internal/guest"
	"vsched/internal/host"
	"vsched/internal/latprof"
	"vsched/internal/metrics"
	"vsched/internal/sim"
	"vsched/internal/telemetry"
	"vsched/internal/vtrace"
	"vsched/internal/workload"
)

// Config parameterises one fleet simulation cell.
type Config struct {
	// Seed drives the engine (and through it every workload's private
	// stream). The arrival trace is NOT derived from it — it is passed in
	// explicitly so several cells can replay the identical trace.
	Seed int64
	// Hosts is the cluster size. Every host gets an identical HostConfig:
	// live migration re-homes entities by thread index, and the guest's
	// topology relation lookups stay valid only because the mapping from
	// thread ID to (socket, core, slot) is the same everywhere.
	Hosts      int
	HostConfig host.Config
	// Overcommit bounds admission: a host accepts a VM while
	// committed vCPUs + requested <= Overcommit * threads. <=0 means 1.0
	// (no overcommit).
	Overcommit float64
	// Policy decides placement. Required.
	Policy Policy
	// VSched attaches the full vSched system (probers + bvs + ivh + rwc)
	// inside every VM; false is the stock-CFS baseline.
	VSched bool
	// Arrivals is the VM arrival trace, sorted by At (Run sorts defensively).
	Arrivals []Arrival
	// Horizon is how long the cell runs.
	Horizon sim.Duration
	// TelemetryEvery is the per-host steal sampling period feeding the
	// steal-aware policy and the migration controller (default 50ms).
	TelemetryEvery sim.Duration
	// Migration enables the live-migration controller when Every > 0.
	Migration MigrationConfig
	// Tracer, when non-nil, receives fleet events (and is attached to every
	// host for entity-level events).
	Tracer *vtrace.Tracer
	// Attribution attaches a latency-attribution profiler (internal/latprof)
	// to every placed VM and reports per-VM cause breakdowns in
	// Result.Attribution plus fleet.attrib.* gauges. Observation only: the
	// simulation is byte-identical with it on or off.
	Attribution bool
	// Telemetry, when non-nil, attaches a flight recorder (see
	// internal/telemetry) sampling the cell registry, per-host steal and
	// utilization, per-VM-class population, and the simulator itself into
	// compressed bounded-memory time series; Result.Telemetry carries the
	// recorder after Run. Observation only, like Attribution: the simulation
	// is byte-identical with it on or off.
	Telemetry *telemetry.Config
	// Faults, when non-nil, injects the host fault schedule (see
	// internal/faults and faultplane.go): crashes kill resident VMs and take
	// the host out of admission, brownouts shrink its capacity, stalls freeze
	// its entities. Events fire at their exact scheduled instants.
	Faults *faults.Schedule
	// Recovery enables the reaction to faults: crash victims re-place through
	// a bounded retry queue with capped exponential backoff, and VMs on
	// degraded hosts evacuate by live migration. Disabled, crash victims are
	// terminally lost — the graceful-degradation baseline.
	Recovery faults.RecoveryConfig
}

// MigrationConfig tunes the live-migration controller: every Every it looks
// for the host with the highest smoothed steal rate and, if that exceeds
// MinSteal and some fitting host sits at least Margin lower, moves that
// host's cheapest VM there. The VM is blocked for Downtime (stop-and-copy
// brownout) before resuming on the destination.
type MigrationConfig struct {
	Every    sim.Duration
	MinSteal float64
	Margin   float64
	Downtime sim.Duration
	// Cooldown excludes a VM from migrant selection for this long after it
	// moved, damping ping-pong when a hotspot flips between two hosts faster
	// than the steal EMAs settle. Zero disables the guard.
	Cooldown sim.Duration
}

// Result is the fully-aggregated outcome of one cell.
type Result struct {
	Policy     string
	Guest      string // "CFS" or "vSched"
	Arrivals   int
	Placed     int
	Rejected   int
	Departed   int
	Migrations int
	// E2E merges every service VM's end-to-end request latency histogram —
	// the fleet-wide task latency distribution.
	E2E *metrics.Histogram
	// Ops counts completed operations across all VMs (requests + batch
	// iterations) inside the horizon.
	Ops uint64
	// Steal is cumulative vCPU steal time across every VM ever placed.
	Steal sim.Duration
	// Events is how many engine events the cell fired.
	Events uint64
	// Registry holds the fleet-wide instruments (fleet.* counters, the e2e
	// histogram, steal gauge) for harness artifact embedding.
	Registry *metrics.Registry
	// Attribution maps VM name to its latency-attribution profile when
	// Config.Attribution was set; nil otherwise. Cause classification is
	// exact for every VM (it depends only on the VM's own entity and guest
	// events); steal *blame* names are approximate for VMs that live-migrated
	// (see the routing note on hostState.attribVMs).
	Attribution map[string]*latprof.Profile
	// Telemetry is the cell's flight recorder when Config.Telemetry was set;
	// nil otherwise.
	Telemetry *telemetry.Recorder
	// Fault-plane outcome (all zero without Config.Faults). Killed counts VM
	// kills by host crashes, Restarts successful re-placements, Lost terminal
	// losses, Evacuations brownout-driven moves (also counted in Migrations),
	// EvacFailures attempts the migration-failure law aborted, PendingAtEnd
	// victims still awaiting restart at the horizon. Conservation holds
	// exactly: Placed == Departed + Lost + PendingAtEnd + VMs alive at the
	// horizon (collect panics otherwise).
	Crashes, Brownouts, Stalls int
	Killed, Restarts, Lost     int
	Evacuations, EvacFailures  int
	PendingAtEnd               int
	// Availability is committed vCPU-seconds over committed plus crash-outage
	// vCPU-seconds (1.0 when nothing crashed); MTTRMean/MTTRMax summarize
	// restart time-to-recover in seconds.
	Availability      float64
	MTTRMean, MTTRMax float64
}

// hostState is one host plus the fleet's bookkeeping about it. Occupancy is
// tracked by the fleet, not read back from host internals: placement is a
// control-plane decision and must not depend on instantaneous physics.
type hostState struct {
	index     int
	h         *host.Host
	occ       []int // committed vCPUs per thread
	committed int
	vms       []*fleetVM
	stealEMA  float64
	// Fault windows (faultplane.go): the host is out of admission while
	// downUntil > now and shrunk to degradeFactor x capacity while
	// degradedUntil > now. Never set without Config.Faults.
	downUntil     sim.Time
	degradedUntil sim.Time
	degradeFactor float64
	// attribVMs are the VMs *created* on this host, when attribution is on.
	// Entity state-change notifications always fire on the creation host's
	// observer list (host.Entity keeps its birth host even across live
	// migration), so this — unlike vms — is the stable routing key for
	// entity events, and is never mutated by migration or departure. The
	// flip side: a migrated VM's profiler keeps listening here, where thread
	// ids in events can numerically collide with the destination host's, so
	// steal-blame names for migrated VMs are approximate (causes stay exact:
	// they derive from the VM's own entity states, which follow the entity).
	attribVMs []*fleetVM
}

// fleetVM is one placed VM with its lifecycle state.
type fleetVM struct {
	id      int
	name    string
	typ     VMType
	hostIdx int
	threads []int // thread indexes on the current host
	gvm     *guest.VM
	vs      *core.VSched
	inst    workload.Instance
	alive   bool
	// migrating marks the stop-and-copy brownout window so the controller
	// never double-moves a VM in flight.
	migrating bool
	// moved/lastMove feed the migration cooldown: a VM is exempt from
	// migrant selection for Migration.Cooldown after it last moved.
	moved    bool
	lastMove sim.Time
	// deadline is the VM's scheduled departure instant (zero = pinned to the
	// horizon); restarts after a crash keep the original deadline.
	deadline sim.Time
	// restarts is which crash-restart incarnation this is (0 = original).
	restarts int
	// stealSeen is the telemetry baseline: total steal across the VM's
	// vCPUs at the last sample, attributed to whichever host it sat on.
	stealSeen sim.Duration
	// prof is the VM's latency-attribution profiler (Config.Attribution).
	prof *latprof.Profiler
}

// Fleet is a cluster under simulation. Build with New, inspect Engine, then
// Run once.
type Fleet struct {
	cfg   Config
	eng   *sim.Engine
	hosts []*hostState
	vms   []*fleetVM // every VM ever placed, in placement order

	// ix and ipol replace the per-arrival O(hosts) snapshot scan when the
	// policy supports indexed placement; non-indexed policies keep the
	// linear view() path. Decisions are identical either way (pinned by the
	// differential test in index_test.go).
	ix   *HostIndex
	ipol IndexedPolicy

	placed, rejected, departed, migrations int
	reg                                    *metrics.Registry
	rec                                    *telemetry.Recorder

	// Fault plane (faultplane.go). rcv is the resolved recovery policy,
	// pending the bounded restart queue, migAttempts the deterministic
	// counter feeding the migration-failure law.
	rcv         faults.RecoveryConfig
	pending     []*microRetry
	migAttempts uint64

	crashes, brownouts, stalls int
	killed, restarts, lost     int
	evacuations, evacFailures  int

	// Availability ledger: the committed-vCPU integral (up) accrues at every
	// commitment change; the outage side (down) accrues per crash victim at
	// restart, loss or the horizon.
	totCommitted    int
	lastCommChange  sim.Time
	upVCPUSeconds   float64
	downVCPUSeconds float64
	ttrSum, ttrMax  float64
	ttrCount        int
}

// New builds the cluster. The engine is exposed before Run so callers
// (the experiment harness) can track and interrupt it.
func New(cfg Config) *Fleet {
	if cfg.Hosts <= 0 {
		panic("fleet: need at least one host")
	}
	if cfg.Policy == nil {
		panic("fleet: nil placement policy")
	}
	if cfg.Overcommit <= 0 {
		cfg.Overcommit = 1.0
	}
	if cfg.TelemetryEvery <= 0 {
		cfg.TelemetryEvery = 50 * sim.Millisecond
	}
	f := &Fleet{cfg: cfg, eng: sim.NewEngine(cfg.Seed), reg: metrics.NewRegistry()}
	if cfg.Recovery.Enabled {
		f.rcv = cfg.Recovery.WithDefaults()
	}
	for i := 0; i < cfg.Hosts; i++ {
		h := host.New(f.eng, cfg.HostConfig)
		vtrace.AttachHost(cfg.Tracer, h)
		hs := &hostState{
			index: i,
			h:     h,
			occ:   make([]int, h.NumThreads()),
		}
		if cfg.Attribution {
			// Fan the host's entity events out to the profilers of the VMs
			// created here (see the attribVMs routing note). AttachHost only
			// feeds host-kind events into the tap, so fanning to several
			// profilers is safe: each VM's guest events arrive solely through
			// its own tracer tee in arrive().
			tap := vtrace.NewObserver(func(ev vtrace.Event) {
				for _, vm := range hs.attribVMs {
					vm.prof.Observe(ev)
				}
			})
			vtrace.AttachHost(tap, h)
		}
		f.hosts = append(f.hosts, hs)
	}
	if ipol, ok := cfg.Policy.(IndexedPolicy); ok {
		caps := make([]int, len(f.hosts))
		for i := range caps {
			caps[i] = f.capacity()
		}
		f.ix = NewHostIndex(caps)
		f.ipol = ipol
	}
	return f
}

// info renders one host's policy snapshot row. Capacity is the effective
// (fault-adjusted) bound, so policies steer around crashed and degraded hosts
// without knowing about faults.
func (f *Fleet) info(hs *hostState) HostInfo {
	return HostInfo{
		Index:     hs.index,
		Committed: hs.committed,
		Capacity:  f.effCap(hs),
		VMs:       len(hs.vms),
		StealRate: hs.stealEMA,
	}
}

// reindex refreshes one host's leaf in the placement index after its
// commitments, telemetry or fault windows changed. The index tracks free
// space against the configured leaf capacity, so degraded capacity is folded
// in by inflating committed with the lost headroom; a down host scores +Inf
// (never NaN — NaN would poison BestScore pruning). No-op on the linear path.
func (f *Fleet) reindex(hs *hostState) {
	if f.ix == nil {
		return
	}
	eff := f.effCap(hs)
	score := math.Inf(1)
	if eff > 0 {
		score = f.ipol.Score(f.info(hs))
	}
	f.ix.Update(hs.index, hs.committed+(f.capacity()-eff), score)
}

// Engine returns the cell's private engine.
func (f *Fleet) Engine() *sim.Engine { return f.eng }

// Registry returns the fleet-wide metrics registry.
func (f *Fleet) Registry() *metrics.Registry { return f.reg }

// capacity is the committed-vCPU admission bound per host.
func (f *Fleet) capacity() int {
	return int(f.cfg.Overcommit * float64(f.hosts[0].h.NumThreads()))
}

// view renders the per-host snapshot handed to non-indexed placement
// policies, in stable host-ID order.
func (f *Fleet) view() []HostInfo {
	out := make([]HostInfo, len(f.hosts))
	for i, hs := range f.hosts {
		out[i] = f.info(hs)
	}
	return out
}

// pickThreads chooses n distinct threads on hs, least-committed first (ties
// by index), and commits one vCPU to each.
func (hs *hostState) pickThreads(n int) []int {
	idx := make([]int, len(hs.occ))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return hs.occ[idx[a]] < hs.occ[idx[b]] })
	picked := idx[:n]
	out := make([]int, n)
	copy(out, picked)
	sort.Ints(out)
	for _, t := range out {
		hs.occ[t]++
	}
	hs.committed += n
	return out
}

// release frees the threads a VM occupied.
func (hs *hostState) release(threads []int) {
	for _, t := range threads {
		hs.occ[t]--
	}
	hs.committed -= len(threads)
}

// removeVM drops vm from hs.vms keeping order (determinism: the list is
// iterated for telemetry and migration candidate selection).
func (hs *hostState) removeVM(vm *fleetVM) {
	for i, v := range hs.vms {
		if v == vm {
			hs.vms = append(hs.vms[:i], hs.vms[i+1:]...)
			return
		}
	}
}

// Run executes the cell to its horizon and aggregates the Result. Call once.
func (f *Fleet) Run() *Result {
	cfg := f.cfg
	arr := make([]Arrival, len(cfg.Arrivals))
	copy(arr, cfg.Arrivals)
	// Simultaneous arrivals tie-break by ID, not input slice order, so a
	// shuffled copy of a trace replays identically.
	sort.SliceStable(arr, func(i, j int) bool {
		if arr[i].At != arr[j].At {
			return arr[i].At < arr[j].At
		}
		return arr[i].ID < arr[j].ID
	})
	maxV := f.hosts[0].h.NumThreads()
	for i := range arr {
		// One thread per vCPU: stacking happens across VMs (overcommit),
		// never inside one.
		if a := arr[i]; a.Type.VCPUs <= 0 || a.Type.VCPUs > maxV {
			panic(fmt.Sprintf("fleet: VM type %s wants %d vCPUs on %d-thread hosts",
				a.Type.Name, a.Type.VCPUs, maxV))
		}
		if arr[i].Lifetime < 0 {
			arr[i].Lifetime = 0 // negative duration = pinned to the horizon
		}
	}
	for i := range arr {
		a := arr[i]
		f.eng.At(a.At, func() { f.arrive(a) })
	}
	f.eng.After(cfg.TelemetryEvery, f.telemetryTick)
	if cfg.Migration.Every > 0 {
		f.eng.After(cfg.Migration.Every, f.migrationTick)
	}
	f.scheduleFaults()
	if cfg.Telemetry != nil {
		f.rec = f.attachTelemetry(*cfg.Telemetry, arr)
		f.rec.Start()
	}
	f.eng.RunFor(cfg.Horizon)
	return f.collect(arr)
}

// arrive runs one arrival through the placement pipeline.
func (f *Fleet) arrive(a Arrival) {
	cfg := f.cfg
	name := fmt.Sprintf("vm%03d-%s", a.ID, a.Type.Name)
	now := f.eng.Now()
	cfg.Tracer.Emit(now, vtrace.KindVMArrive, name, int64(a.Type.VCPUs), 0, 0)
	f.reg.Counter("fleet.arrivals").Inc()

	hi := f.chooseHost(a.Type.VCPUs)
	if hi < 0 {
		f.rejected++
		f.reg.Counter("fleet.rejected").Inc()
		cfg.Tracer.Emit(now, vtrace.KindVMPlace, name, -1, int64(a.Type.VCPUs), 0)
		return
	}
	vm := f.spawn(a, hi, name)
	f.placed++
	f.reg.Counter("fleet.placed").Inc()
	cfg.Tracer.Emit(now, vtrace.KindVMPlace, name, int64(hi), int64(a.Type.VCPUs), int64(f.hosts[hi].committed))

	if a.Lifetime > 0 {
		vm.deadline = now.Add(a.Lifetime)
		f.eng.At(vm.deadline, func() { f.depart(vm) })
	}
}

// spawn materialises one VM incarnation on host hi: threads, guest, vSched,
// workload, bookkeeping. Shared by first placement (arrive) and crash restart
// (faultplane.go); the caller does its own counting and trace emission.
func (f *Fleet) spawn(a Arrival, hi int, name string) *fleetVM {
	cfg := f.cfg
	hs := f.hosts[hi]
	f.accrueUp(f.eng.Now())
	f.totCommitted += a.Type.VCPUs
	threads := hs.pickThreads(a.Type.VCPUs)
	hts := make([]*host.Thread, len(threads))
	for i, t := range threads {
		hts[i] = hs.h.Thread(t)
	}
	gvm := guest.NewVM(hs.h, name, hts, guest.DefaultParams())
	vm := &fleetVM{
		id: a.ID, name: name, typ: a.Type,
		hostIdx: hi, threads: threads, gvm: gvm, alive: true,
	}
	if cfg.Attribution {
		prof := latprof.New(latprof.Config{VM: name, NominalSpeed: hs.h.Config().BaseSpeed})
		vm.prof = prof
		// Tee the VM's guest events into its profiler while preserving the
		// shared tracer stream (Emit is nil-safe when no tracer is set).
		gvm.SetTracer(vtrace.NewObserver(func(ev vtrace.Event) {
			prof.Observe(ev)
			cfg.Tracer.Emit(ev.At, ev.Kind, ev.Subject, ev.A0, ev.A1, ev.A2)
		}))
		hs.attribVMs = append(hs.attribVMs, vm)
	} else {
		gvm.SetTracer(cfg.Tracer)
	}
	gvm.Start()
	if cfg.VSched {
		p := core.DefaultParams()
		p.NominalSpeed = hs.h.Config().BaseSpeed
		vm.vs = core.New(gvm, core.AllFeatures(), p, cachemodel.Default())
		vm.vs.Start()
	}
	vm.inst = a.Type.instantiate(vm)
	vm.inst.Start()
	hs.vms = append(hs.vms, vm)
	f.reindex(hs)
	f.vms = append(f.vms, vm)
	return vm
}

// depart destroys a VM: its workload stops (batch threads exit at the next
// iteration boundary, servers take no new requests — contention drains
// within milliseconds, like a real teardown), and its slots free
// immediately.
func (f *Fleet) depart(vm *fleetVM) {
	if !vm.alive {
		return
	}
	vm.alive = false
	vm.inst.(stopper).Stop()
	hs := f.hosts[vm.hostIdx]
	f.accrueUp(f.eng.Now())
	f.totCommitted -= vm.typ.VCPUs
	hs.release(vm.threads)
	hs.removeVM(vm)
	f.reindex(hs)
	f.departed++
	f.reg.Counter("fleet.departed").Inc()
	f.cfg.Tracer.Emit(f.eng.Now(), vtrace.KindVMExit, vm.name,
		int64(vm.hostIdx), int64(vm.typ.VCPUs), 0)
}

// stopper is the subset of workload instances the fleet can tear down; both
// Server and Parallel implement it.
type stopper interface{ Stop() }

// vmSteal sums current steal across the VM's vCPU entities.
func (vm *fleetVM) vmSteal() sim.Duration {
	var s sim.Duration
	for _, v := range vm.gvm.VCPUs() {
		s += v.Entity().Steal()
	}
	return s
}

// telemetryTick samples per-host steal and folds it into the EMA the
// steal-aware policy and migration controller consult. Steal is attributed
// to the host a VM currently sits on; a VM's baseline travels with it across
// migrations.
func (f *Fleet) telemetryTick() {
	interval := f.cfg.TelemetryEvery
	alpha := 0.4
	for _, hs := range f.hosts {
		var delta sim.Duration
		for _, vm := range hs.vms {
			cur := vm.vmSteal()
			delta += cur - vm.stealSeen
			vm.stealSeen = cur
		}
		rate := float64(delta) / (float64(interval) * float64(len(hs.occ)))
		hs.stealEMA = alpha*rate + (1-alpha)*hs.stealEMA
		f.reindex(hs)
	}
	f.eng.After(interval, f.telemetryTick)
}

// collect aggregates the Result after the horizon.
func (f *Fleet) collect(arr []Arrival) *Result {
	guestName := "CFS"
	if f.cfg.VSched {
		guestName = "vSched"
	}
	// Close the availability ledger: the committed integral runs to the
	// horizon, and victims still pending accrue their outage tail.
	now := f.eng.Now()
	f.accrueUp(now)
	for _, e := range f.pending {
		f.downVCPUSeconds += now.Sub(e.downSince).Seconds() * float64(e.vcpus)
	}
	// Conservation: every placement chain ends in exactly one of departed,
	// lost, pending or alive-at-horizon.
	aliveEnd := 0
	for _, vm := range f.vms {
		if vm.alive {
			aliveEnd++
		}
	}
	if f.placed != f.departed+f.lost+len(f.pending)+aliveEnd {
		panic(fmt.Sprintf(
			"fleet: VM conservation violated: placed=%d departed=%d lost=%d pending=%d alive=%d",
			f.placed, f.departed, f.lost, len(f.pending), aliveEnd))
	}
	availability := 1.0
	if f.upVCPUSeconds+f.downVCPUSeconds > 0 {
		availability = f.upVCPUSeconds / (f.upVCPUSeconds + f.downVCPUSeconds)
	}
	mttrMean := 0.0
	if f.ttrCount > 0 {
		mttrMean = f.ttrSum / float64(f.ttrCount)
	}
	r := &Result{
		Policy:       f.cfg.Policy.Name(),
		Guest:        guestName,
		Arrivals:     len(arr),
		Placed:       f.placed,
		Rejected:     f.rejected,
		Departed:     f.departed,
		Migrations:   f.migrations,
		E2E:          f.reg.Histogram("fleet.e2e"),
		Events:       f.eng.Fired(),
		Registry:     f.reg,
		Telemetry:    f.rec,
		Crashes:      f.crashes,
		Brownouts:    f.brownouts,
		Stalls:       f.stalls,
		Killed:       f.killed,
		Restarts:     f.restarts,
		Lost:         f.lost,
		Evacuations:  f.evacuations,
		EvacFailures: f.evacFailures,
		PendingAtEnd: len(f.pending),
		Availability: availability,
		MTTRMean:     mttrMean,
		MTTRMax:      f.ttrMax,
	}
	for _, vm := range f.vms {
		r.Ops += vm.inst.Ops()
		r.Steal += vm.vmSteal()
		if srv, ok := vm.inst.(*workload.Server); ok {
			r.E2E.Merge(srv.E2E())
		}
	}
	f.reg.Gauge("fleet.steal_seconds").Set(float64(r.Steal) / 1e9)
	f.reg.Counter("fleet.ops").Add(r.Ops)
	if f.cfg.Attribution {
		r.Attribution = make(map[string]*latprof.Profile, len(f.vms))
		now := f.eng.Now()
		for _, vm := range f.vms {
			p := vm.prof.Finish(now)
			// The conservation invariant holds fleet-wide, not just in the
			// scripted single-VM rigs: every span's components sum to its
			// wall time even across organic contention and live migration.
			if err := p.CheckConservation(); err != nil {
				panic(err)
			}
			r.Attribution[vm.name] = p
			tot := p.Totals()
			pre := "fleet.attrib." + vm.name + "."
			for _, c := range latprof.Causes() {
				f.reg.Gauge(pre + c.Key() + "_ns").Set(float64(tot.NS[c]))
			}
			f.reg.Gauge(pre + "spans").Set(float64(len(p.Spans)))
		}
	}
	return r
}
