package fleet

import (
	"fmt"
	"sort"

	"vsched/internal/sim"
	"vsched/internal/telemetry"
)

// Telemetry sources for a fleet cell. Series names are precomputed at
// attach time so the per-sample emit path hands the recorder stable strings
// and allocates nothing.
//
// Layers sampled:
//
//	fleet.*            the cell registry (arrivals, placements, e2e, ...)
//	fleet.hostNN.*     per-host control-plane state (steal EMA, utilization)
//	fleet.class.*      per-VM-class population and completed ops
//	sim.*              the engine's own event-queue census (SelfSource)
//	self.*             wall-clock throughput (volatile, WallSource)

// hostSeriesNames are one host's precomputed series names.
type hostSeriesNames struct {
	steal, util, vms string
}

// hostSource samples each host's steal EMA, committed-vCPU utilization and
// resident VM count — the same signals the steal-aware policy and the
// migration controller consult, now continuously observable.
type hostSource struct {
	f     *Fleet
	names []hostSeriesNames
}

func newHostSource(f *Fleet) *hostSource {
	s := &hostSource{f: f}
	for i := range f.hosts {
		p := fmt.Sprintf("fleet.host%02d.", i)
		s.names = append(s.names, hostSeriesNames{
			steal: p + "steal_ema",
			util:  p + "util",
			vms:   p + "vms",
		})
	}
	return s
}

// Collect implements telemetry.Source.
func (s *hostSource) Collect(now sim.Time, emit func(string, float64)) {
	cap := float64(s.f.capacity())
	for i, hs := range s.f.hosts {
		n := &s.names[i]
		emit(n.steal, hs.stealEMA)
		emit(n.util, float64(hs.committed)/cap)
		emit(n.vms, float64(len(hs.vms)))
	}
}

// classSource samples per-VM-class population and cumulative completed
// operations. Classes are fixed by the arrival trace, so the series set is
// known up front.
type classSource struct {
	f          *Fleet
	idx        map[string]int
	alive, ops []float64
	aliveNames []string
	opsNames   []string
}

func newClassSource(f *Fleet, arrivals []Arrival) *classSource {
	names := map[string]bool{}
	for _, a := range arrivals {
		names[a.Type.Name] = true
	}
	classes := make([]string, 0, len(names))
	for n := range names {
		classes = append(classes, n)
	}
	sort.Strings(classes)
	s := &classSource{
		f:     f,
		idx:   make(map[string]int, len(classes)),
		alive: make([]float64, len(classes)),
		ops:   make([]float64, len(classes)),
	}
	for i, n := range classes {
		s.idx[n] = i
		s.aliveNames = append(s.aliveNames, "fleet.class."+n+".alive")
		s.opsNames = append(s.opsNames, "fleet.class."+n+".ops")
	}
	return s
}

// Collect implements telemetry.Source.
func (s *classSource) Collect(now sim.Time, emit func(string, float64)) {
	for i := range s.alive {
		s.alive[i], s.ops[i] = 0, 0
	}
	for _, vm := range s.f.vms {
		i := s.idx[vm.typ.Name]
		if vm.alive {
			s.alive[i]++
		}
		s.ops[i] += float64(vm.inst.Ops())
	}
	for i := range s.aliveNames {
		emit(s.aliveNames[i], s.alive[i])
		emit(s.opsNames[i], s.ops[i])
	}
}

// attachTelemetry builds the cell's flight recorder: registry, per-host,
// per-class and simulator self-observability sources, plus the volatile
// wall-clock source. Everything except the wall source reads only simulation
// state, so the deterministic snapshot is byte-identical between serial and
// parallel runs — the fleetobs experiment asserts exactly that.
func (f *Fleet) attachTelemetry(cfg telemetry.Config, arrivals []Arrival) *telemetry.Recorder {
	rec := telemetry.New(f.eng, cfg)
	rec.AddSource("", telemetry.RegistrySource(f.reg))
	rec.AddSource("", newHostSource(f))
	rec.AddSource("", newClassSource(f, arrivals))
	rec.AddSource("", &telemetry.SelfSource{Eng: f.eng, Tracer: f.cfg.Tracer})
	rec.AddVolatileSource("", &telemetry.WallSource{Eng: f.eng})
	return rec
}
