package fleet

import (
	"bytes"
	"math"
	"testing"

	"vsched/internal/cloudgen"
	"vsched/internal/faults"
	"vsched/internal/sim"
	"vsched/internal/telemetry"
)

// macroTestTrace generates a small but non-trivial cloud trace: a few hours,
// a few dozen heterogeneous hosts, a few thousand VM lifetimes.
func macroTestTrace(seed int64) cloudgen.Trace {
	cfg := cloudgen.DefaultConfig()
	cfg.Horizon = 6 * cloudgen.Hour
	cfg.BaseRate = 300
	cfg.Hosts = []cloudgen.HostClass{
		{Name: "std", Count: 16, Cores: 8, SMT: 2, SpeedFactor: 1.0},
		{Name: "big", Count: 8, Cores: 16, SMT: 2, SpeedFactor: 1.15},
		{Name: "small", Count: 8, Cores: 8, SMT: 1, SpeedFactor: 0.9},
	}
	return cloudgen.Generate(seed, cfg)
}

func TestMacroShardedMatchesSerial(t *testing.T) {
	trace := macroTestTrace(42)
	for _, pol := range []Policy{FirstFit{}, LeastLoaded{}, StealAware{}} {
		pol := pol
		t.Run(pol.Name(), func(t *testing.T) {
			serial := RunMacro(MacroConfig{Trace: trace, Policy: pol, Shards: 1})
			sharded := RunMacro(MacroConfig{Trace: trace, Policy: pol, Shards: 7})
			if !bytes.Equal(serial.Snapshot, sharded.Snapshot) {
				t.Fatalf("serial digest %s != sharded digest %s",
					SnapshotDigest(serial.Snapshot), SnapshotDigest(sharded.Snapshot))
			}
			if serial.Placed == 0 || serial.Lifetimes == 0 {
				t.Fatalf("degenerate run: placed=%d lifetimes=%d", serial.Placed, serial.Lifetimes)
			}
		})
	}
}

func TestMacroDeterministic(t *testing.T) {
	trace := macroTestTrace(7)
	a := RunMacro(MacroConfig{Trace: trace, Policy: StealAware{}, Shards: 4})
	b := RunMacro(MacroConfig{Trace: trace, Policy: StealAware{}, Shards: 4})
	if !bytes.Equal(a.Snapshot, b.Snapshot) {
		t.Fatalf("two identical runs diverged: %s vs %s",
			SnapshotDigest(a.Snapshot), SnapshotDigest(b.Snapshot))
	}
}

func TestMacroTelemetryInert(t *testing.T) {
	trace := macroTestTrace(11)
	bare := RunMacro(MacroConfig{Trace: trace, Policy: LeastLoaded{}, Shards: 2})
	observed := RunMacro(MacroConfig{
		Trace: trace, Policy: LeastLoaded{}, Shards: 2,
		Telemetry: &telemetry.Config{Interval: 30 * sim.Second},
	})
	if !bytes.Equal(bare.Snapshot, observed.Snapshot) {
		t.Fatal("attaching telemetry changed the simulation outcome")
	}
	if observed.Telemetry == nil {
		t.Fatal("telemetry recorder not attached")
	}
	snap := observed.Telemetry.Snapshot(false)
	found := false
	for _, s := range snap.Series {
		if s.Name == "fleet.macro.util_mean" {
			found = true
		}
	}
	if !found {
		t.Fatal("fleet.macro.util_mean series missing from telemetry snapshot")
	}
}

func TestMacroAccounting(t *testing.T) {
	trace := macroTestTrace(3)
	res := RunMacro(MacroConfig{Trace: trace, Policy: LeastLoaded{}, Shards: 3})
	if res.Placed+res.Rejected != res.Arrivals {
		t.Fatalf("placed %d + rejected %d != arrivals %d", res.Placed, res.Rejected, res.Arrivals)
	}
	if res.Lifetimes > res.Placed {
		t.Fatalf("lifetimes %d > placed %d", res.Lifetimes, res.Placed)
	}
	if res.DIMean < 0 || res.DIMax < res.DIMean {
		t.Fatalf("bad DI stats: mean %f max %f", res.DIMean, res.DIMax)
	}
	if res.P95Steal < 0 || res.P95Steal > 1 {
		t.Fatalf("p95 steal %f out of range", res.P95Steal)
	}
	if res.Makespan > sim.Time(0).Add(trace.Horizon) {
		t.Fatalf("makespan %v past horizon %v", res.Makespan, trace.Horizon)
	}
	if res.Events == 0 {
		t.Fatal("no events counted")
	}
}

// TestMacroContentionModel pins the analytic model on a hand-built trace:
// one 4-thread host, two 4-vCPU batch VMs with 100s budgets. Demand 8 on 4
// threads gives rho=0.5, so each VM finishes its budget at exactly t=200s
// with a steal fraction of exactly 0.5.
func TestMacroContentionModel(t *testing.T) {
	trace := cloudgen.Trace{
		Seed:    1,
		Horizon: 300 * sim.Second,
		Hosts:   []cloudgen.HostSpec{{Class: "h", Threads: 4, SpeedFactor: 1.0}},
		VMs: []cloudgen.VM{
			{ID: 0, At: 0, VCPUs: 4, Class: cloudgen.Batch, Demand: 1.0, Work: 100 * sim.Second},
			{ID: 1, At: 0, VCPUs: 4, Class: cloudgen.Batch, Demand: 1.0, Work: 100 * sim.Second},
		},
	}
	res := RunMacro(MacroConfig{Trace: trace, Policy: FirstFit{}, Overcommit: 2.0})
	if res.Placed != 2 || res.Rejected != 0 {
		t.Fatalf("placed %d rejected %d, want 2/0", res.Placed, res.Rejected)
	}
	want := sim.Time(0).Add(200 * sim.Second)
	if res.Makespan != want {
		t.Fatalf("makespan %v, want %v", res.Makespan, want)
	}
	if res.P95Steal != 0.5 {
		t.Fatalf("p95 steal %f, want exactly 0.5", res.P95Steal)
	}
	if res.Lifetimes != 2 {
		t.Fatalf("lifetimes %d, want 2", res.Lifetimes)
	}
}

// TestMacroRejection: a VM larger than every host's admission bound must be
// rejected without disturbing anything else.
func TestMacroRejection(t *testing.T) {
	trace := cloudgen.Trace{
		Seed:    1,
		Horizon: 120 * sim.Second,
		Hosts:   []cloudgen.HostSpec{{Class: "h", Threads: 4, SpeedFactor: 1.0}},
		VMs: []cloudgen.VM{
			{ID: 0, At: 0, VCPUs: 64, Class: cloudgen.Service, Demand: 0.3, Lifetime: 60 * sim.Second},
			{ID: 1, At: 0, VCPUs: 2, Class: cloudgen.Service, Demand: 0.3, Lifetime: 60 * sim.Second},
		},
	}
	res := RunMacro(MacroConfig{Trace: trace, Policy: LeastLoaded{}, Overcommit: 2.0})
	if res.Rejected != 1 || res.Placed != 1 {
		t.Fatalf("placed %d rejected %d, want 1/1", res.Placed, res.Rejected)
	}
	if res.Lifetimes != 1 {
		t.Fatalf("lifetimes %d, want 1", res.Lifetimes)
	}
	// An uncontended service VM accrues zero steal.
	if res.P95Steal != 0 {
		t.Fatalf("p95 steal %f, want 0", res.P95Steal)
	}
}

// faultTrace2 is a hand-built two-host trace for fault mechanics: one service
// VM and one batch VM, both FirstFit-placed on host 0.
func faultTrace2(horizon sim.Duration) cloudgen.Trace {
	return cloudgen.Trace{
		Seed:    1,
		Horizon: horizon,
		Hosts: []cloudgen.HostSpec{
			{Class: "h", Threads: 4, SpeedFactor: 1.0},
			{Class: "h", Threads: 4, SpeedFactor: 1.0},
		},
		VMs: []cloudgen.VM{
			{ID: 0, At: 0, VCPUs: 2, Class: cloudgen.Service, Demand: 0.5, Lifetime: 600 * sim.Second},
			{ID: 1, At: 0, VCPUs: 2, Class: cloudgen.Batch, Demand: 1.0, Work: 300 * sim.Second},
		},
	}
}

func crashAt90() *faults.Schedule {
	return &faults.Schedule{Seed: 1, Events: []faults.Event{
		{At: sim.Time(0).Add(90 * sim.Second), Host: 0, Kind: faults.Crash, Duration: 600 * sim.Second},
	}}
}

// TestMacroCrashNoRecovery: without recovery a crash is terminal for every
// resident VM — the graceful-degradation baseline. Lost batch progress is
// accounted exactly and the conservation ledger still balances (result()
// panics if not).
func TestMacroCrashNoRecovery(t *testing.T) {
	res := RunMacro(MacroConfig{
		Trace:  faultTrace2(1200 * sim.Second),
		Policy: FirstFit{},
		Faults: crashAt90(),
	})
	if res.Crashes != 1 || res.Killed != 2 || res.Lost != 2 {
		t.Fatalf("crashes=%d killed=%d lost=%d, want 1/2/2", res.Crashes, res.Killed, res.Lost)
	}
	if res.Lifetimes != 0 || res.Rejected != 0 || res.RunningAtEnd != 0 || res.PendingAtEnd != 0 {
		t.Fatalf("lifetimes=%d rejected=%d running=%d pending=%d, want all 0",
			res.Lifetimes, res.Rejected, res.RunningAtEnd, res.PendingAtEnd)
	}
	// The crash lands on the t=60 boundary; the batch VM ran [0,60) at rho=1,
	// so exactly 60 per-vCPU seconds x 2 vCPUs of progress were destroyed.
	want := 120.0 / 3600
	if math.Abs(res.LostVCPUHours-want) > 1e-12 {
		t.Fatalf("lost vCPU-hours %v, want %v", res.LostVCPUHours, want)
	}
	if res.Restarts != 0 || res.Evacuations != 0 {
		t.Fatalf("restarts=%d evacuations=%d without recovery", res.Restarts, res.Evacuations)
	}
}

// TestMacroCrashRecovery: with recovery both victims restart on the surviving
// host after one backoff interval and complete; recovery strictly beats the
// no-recovery baseline, and the availability/MTTR ledger is exact.
func TestMacroCrashRecovery(t *testing.T) {
	trace := faultTrace2(1200 * sim.Second)
	base := RunMacro(MacroConfig{Trace: trace, Policy: FirstFit{}, Faults: crashAt90()})
	res := RunMacro(MacroConfig{
		Trace:    trace,
		Policy:   FirstFit{},
		Faults:   crashAt90(),
		Recovery: faults.RecoveryConfig{Enabled: true},
	})
	if res.Killed != 2 || res.Restarts != 2 || res.Lost != 0 {
		t.Fatalf("killed=%d restarts=%d lost=%d, want 2/2/0", res.Killed, res.Restarts, res.Lost)
	}
	if res.Lifetimes != 2 {
		t.Fatalf("lifetimes %d, want 2 (both victims recovered)", res.Lifetimes)
	}
	if res.Lifetimes <= base.Lifetimes {
		t.Fatalf("recovery lifetimes %d not better than baseline %d", res.Lifetimes, base.Lifetimes)
	}
	// Kill at the t=60 boundary, restart at t=60+Backoff(1)=120: TTR is
	// exactly one default backoff.
	if res.MTTRMean != 60 || res.MTTRMax != 60 {
		t.Fatalf("MTTR mean=%v max=%v, want exactly 60s", res.MTTRMean, res.MTTRMax)
	}
	if res.Availability >= 1 || res.Availability <= 0 {
		t.Fatalf("availability %v, want in (0,1) after an outage", res.Availability)
	}
	if res.DownVCPUHours != 240.0/3600 {
		t.Fatalf("down vCPU-hours %v, want 240s x 2 VMs worth", res.DownVCPUHours)
	}
}

// TestMacroBrownoutEvacuation: a brownout shrinks effective capacity below the
// host's commitment, and recovery evacuates the newest VM through the policy
// until the host fits again.
func TestMacroBrownoutEvacuation(t *testing.T) {
	trace := cloudgen.Trace{
		Seed:    1,
		Horizon: 900 * sim.Second,
		Hosts: []cloudgen.HostSpec{
			{Class: "h", Threads: 4, SpeedFactor: 1.0},
			{Class: "h", Threads: 4, SpeedFactor: 1.0},
		},
		VMs: []cloudgen.VM{
			{ID: 0, At: 0, VCPUs: 2, Class: cloudgen.Service, Demand: 0.5, Lifetime: 500 * sim.Second},
			{ID: 1, At: 0, VCPUs: 2, Class: cloudgen.Service, Demand: 0.5, Lifetime: 500 * sim.Second},
			{ID: 2, At: 0, VCPUs: 2, Class: cloudgen.Service, Demand: 0.5, Lifetime: 500 * sim.Second},
		},
	}
	sched := &faults.Schedule{Seed: 1, Events: []faults.Event{
		{At: sim.Time(0).Add(70 * sim.Second), Host: 0, Kind: faults.Brownout,
			Duration: 300 * sim.Second, Factor: 0.5},
	}}
	res := RunMacro(MacroConfig{
		Trace: trace, Policy: FirstFit{}, Faults: sched,
		Recovery: faults.RecoveryConfig{Enabled: true},
	})
	if res.Brownouts != 1 || res.Evacuations != 1 || res.EvacFailures != 0 {
		t.Fatalf("brownouts=%d evacuations=%d failures=%d, want 1/1/0",
			res.Brownouts, res.Evacuations, res.EvacFailures)
	}
	if res.Killed != 0 || res.Lost != 0 || res.Lifetimes != 3 {
		t.Fatalf("killed=%d lost=%d lifetimes=%d, want 0/0/3", res.Killed, res.Lost, res.Lifetimes)
	}
}

// TestMacroBrownoutGracefulDegradation: with a single host there is nowhere to
// evacuate to — the VMs stay, the overcommit persists, and the squeeze shows
// up as steal rather than as lost VMs.
func TestMacroBrownoutGracefulDegradation(t *testing.T) {
	trace := cloudgen.Trace{
		Seed:    1,
		Horizon: 900 * sim.Second,
		Hosts:   []cloudgen.HostSpec{{Class: "h", Threads: 4, SpeedFactor: 1.0}},
		VMs: []cloudgen.VM{
			{ID: 0, At: 0, VCPUs: 2, Class: cloudgen.Service, Demand: 1.0, Lifetime: 500 * sim.Second},
			{ID: 1, At: 0, VCPUs: 2, Class: cloudgen.Service, Demand: 1.0, Lifetime: 500 * sim.Second},
			{ID: 2, At: 0, VCPUs: 2, Class: cloudgen.Service, Demand: 1.0, Lifetime: 500 * sim.Second},
		},
	}
	sched := &faults.Schedule{Seed: 1, Events: []faults.Event{
		{At: sim.Time(0).Add(70 * sim.Second), Host: 0, Kind: faults.Brownout,
			Duration: 300 * sim.Second, Factor: 0.5},
	}}
	res := RunMacro(MacroConfig{
		Trace: trace, Policy: FirstFit{}, Faults: sched,
		Recovery: faults.RecoveryConfig{Enabled: true},
	})
	if res.Evacuations != 0 {
		t.Fatalf("evacuations %d with a single host", res.Evacuations)
	}
	if res.Lifetimes != 3 || res.Lost != 0 {
		t.Fatalf("lifetimes=%d lost=%d, want 3/0 (degrade, don't drop)", res.Lifetimes, res.Lost)
	}
	if res.TotalStealHours <= 0 {
		t.Fatal("brownout squeeze produced no steal")
	}
}

// TestMacroStallFreezes: a one-epoch stall contributes pure steal — no
// progress, no kills — and stretches the batch makespan by exactly the stall.
func TestMacroStallFreezes(t *testing.T) {
	trace := cloudgen.Trace{
		Seed:    1,
		Horizon: 600 * sim.Second,
		Hosts:   []cloudgen.HostSpec{{Class: "h", Threads: 4, SpeedFactor: 1.0}},
		VMs: []cloudgen.VM{
			{ID: 0, At: 0, VCPUs: 2, Class: cloudgen.Batch, Demand: 1.0, Work: 120 * sim.Second},
		},
	}
	clean := RunMacro(MacroConfig{Trace: trace, Policy: FirstFit{}})
	sched := &faults.Schedule{Seed: 1, Events: []faults.Event{
		{At: sim.Time(0).Add(60 * sim.Second), Host: 0, Kind: faults.Stall, Duration: 60 * sim.Second},
	}}
	res := RunMacro(MacroConfig{Trace: trace, Policy: FirstFit{}, Faults: sched})
	if res.Stalls != 1 || res.Killed != 0 || res.Lost != 0 {
		t.Fatalf("stalls=%d killed=%d lost=%d, want 1/0/0", res.Stalls, res.Killed, res.Lost)
	}
	if res.Lifetimes != 1 {
		t.Fatalf("lifetimes %d, want 1", res.Lifetimes)
	}
	if got, want := res.Makespan, clean.Makespan.Add(60*sim.Second); got != want {
		t.Fatalf("stalled makespan %v, want clean %v + 60s = %v", got, clean.Makespan, want)
	}
	// Frozen epoch: 2 vCPUs x demand 1.0 x 60s of pure steal, 240 vCPU-s
	// served across the two productive epochs -> steal fraction exactly 1/3.
	if res.P95Steal != 1.0/3.0 {
		t.Fatalf("steal fraction %v, want exactly 1/3", res.P95Steal)
	}
}

// TestMacroEvacFailure: the deterministic migration-failure law aborts
// evacuation attempts; the fault plane degrades gracefully (nothing is lost)
// and the failures are counted.
func TestMacroEvacFailure(t *testing.T) {
	trace := cloudgen.Trace{
		Seed:    1,
		Horizon: 900 * sim.Second,
		Hosts: []cloudgen.HostSpec{
			{Class: "h", Threads: 4, SpeedFactor: 1.0},
			{Class: "h", Threads: 4, SpeedFactor: 1.0},
		},
		VMs: []cloudgen.VM{
			{ID: 0, At: 0, VCPUs: 2, Class: cloudgen.Service, Demand: 0.5, Lifetime: 500 * sim.Second},
			{ID: 1, At: 0, VCPUs: 2, Class: cloudgen.Service, Demand: 0.5, Lifetime: 500 * sim.Second},
			{ID: 2, At: 0, VCPUs: 2, Class: cloudgen.Service, Demand: 0.5, Lifetime: 500 * sim.Second},
		},
	}
	// Find a seed whose first migration attempt fails under p=0.99: the law is
	// a pure function of (seed, attempt), so scan rather than guess.
	var sched *faults.Schedule
	for seed := int64(1); seed < 64; seed++ {
		s := &faults.Schedule{Seed: seed, MigFailProb: 0.99, Events: []faults.Event{
			{At: sim.Time(0).Add(70 * sim.Second), Host: 0, Kind: faults.Brownout,
				Duration: 300 * sim.Second, Factor: 0.5},
		}}
		if s.MigrationFails(1) {
			sched = s
			break
		}
	}
	if sched == nil {
		t.Fatal("no seed in [1,64) fails its first migration at p=0.99")
	}
	res := RunMacro(MacroConfig{
		Trace: trace, Policy: FirstFit{}, Faults: sched,
		Recovery: faults.RecoveryConfig{Enabled: true},
	})
	if res.EvacFailures == 0 {
		t.Fatal("expected at least one evacuation failure")
	}
	if res.Lost != 0 || res.Killed != 0 || res.Lifetimes != 3 {
		t.Fatalf("lost=%d killed=%d lifetimes=%d, want 0/0/3", res.Lost, res.Killed, res.Lifetimes)
	}
}

// TestMacroRejectionRetry: with recovery enabled an admission rejection is not
// terminal — the VM waits in the retry queue and lands once capacity frees up,
// conserving demand instead of dropping it.
func TestMacroRejectionRetry(t *testing.T) {
	trace := cloudgen.Trace{
		Seed:    1,
		Horizon: 600 * sim.Second,
		Hosts:   []cloudgen.HostSpec{{Class: "h", Threads: 4, SpeedFactor: 1.0}},
		VMs: []cloudgen.VM{
			{ID: 0, At: 0, VCPUs: 6, Class: cloudgen.Service, Demand: 0.3, Lifetime: 100 * sim.Second},
			{ID: 1, At: sim.Time(0).Add(10 * sim.Second), VCPUs: 6, Class: cloudgen.Service, Demand: 0.3, Lifetime: 100 * sim.Second},
		},
	}
	base := RunMacro(MacroConfig{Trace: trace, Policy: FirstFit{}})
	if base.Rejected != 1 || base.Lifetimes != 1 {
		t.Fatalf("baseline rejected=%d lifetimes=%d, want 1/1", base.Rejected, base.Lifetimes)
	}
	res := RunMacro(MacroConfig{
		Trace: trace, Policy: FirstFit{},
		Recovery: faults.RecoveryConfig{Enabled: true},
	})
	if res.Rejected != 0 || res.Lifetimes != 2 || res.Placed != 2 {
		t.Fatalf("rejected=%d lifetimes=%d placed=%d, want 0/2/2", res.Rejected, res.Lifetimes, res.Placed)
	}
	if res.Restarts != 0 {
		t.Fatalf("admission retries counted as restarts: %d", res.Restarts)
	}
}

// TestMacroRetryExhaustion: a VM that can never fit burns its bounded retry
// budget and lands as a terminal rejection — visible in the ledger and the
// snapshot, never silently dropped.
func TestMacroRetryExhaustion(t *testing.T) {
	trace := cloudgen.Trace{
		Seed:    1,
		Horizon: 1200 * sim.Second,
		Hosts:   []cloudgen.HostSpec{{Class: "h", Threads: 4, SpeedFactor: 1.0}},
		VMs: []cloudgen.VM{
			{ID: 0, At: 0, VCPUs: 64, Class: cloudgen.Service, Demand: 0.3, Lifetime: 60 * sim.Second},
			{ID: 1, At: 0, VCPUs: 2, Class: cloudgen.Service, Demand: 0.3, Lifetime: 90 * sim.Second},
		},
	}
	res := RunMacro(MacroConfig{
		Trace: trace, Policy: FirstFit{},
		Recovery: faults.RecoveryConfig{Enabled: true, MaxRetries: 2},
	})
	if res.Rejected != 1 || res.PendingAtEnd != 0 {
		t.Fatalf("rejected=%d pending=%d, want 1/0 after retry exhaustion", res.Rejected, res.PendingAtEnd)
	}
	if res.Lifetimes != 1 {
		t.Fatalf("lifetimes %d, want 1", res.Lifetimes)
	}
}

// TestMacroFaultShardedMatchesSerial: the whole fault plane — kills, retries,
// restarts, evacuations, the migration-failure law — must keep serial and
// sharded runs byte-identical under a generated fault storm.
func TestMacroFaultShardedMatchesSerial(t *testing.T) {
	trace := macroTestTrace(42)
	sched := faults.Generate(42, len(trace.Hosts), trace.Horizon, faults.Config{
		CrashMTBF:    20 * 3600 * sim.Second,
		BrownoutMTBF: 10 * 3600 * sim.Second,
		StallMTBF:    5 * 3600 * sim.Second,
		MigFailProb:  0.2,
	})
	if len(sched.Events) == 0 {
		t.Fatal("degenerate fault schedule")
	}
	for _, pol := range []Policy{FirstFit{}, StealAware{}} {
		pol := pol
		t.Run(pol.Name(), func(t *testing.T) {
			mk := func(shards int) *MacroResult {
				return RunMacro(MacroConfig{
					Trace: trace, Policy: pol, Shards: shards, Faults: &sched,
					Recovery: faults.RecoveryConfig{Enabled: true},
				})
			}
			serial, sharded := mk(1), mk(7)
			if !bytes.Equal(serial.Snapshot, sharded.Snapshot) {
				t.Fatalf("fault plane diverged: serial %s != sharded %s",
					SnapshotDigest(serial.Snapshot), SnapshotDigest(sharded.Snapshot))
			}
			if serial.Crashes == 0 || serial.Killed == 0 || serial.Restarts == 0 {
				t.Fatalf("storm too quiet: crashes=%d killed=%d restarts=%d",
					serial.Crashes, serial.Killed, serial.Restarts)
			}
			again := mk(7)
			if !bytes.Equal(sharded.Snapshot, again.Snapshot) {
				t.Fatal("two identical faulted runs diverged")
			}
		})
	}
}
