package fleet

import (
	"bytes"
	"testing"

	"vsched/internal/cloudgen"
	"vsched/internal/sim"
	"vsched/internal/telemetry"
)

// macroTestTrace generates a small but non-trivial cloud trace: a few hours,
// a few dozen heterogeneous hosts, a few thousand VM lifetimes.
func macroTestTrace(seed int64) cloudgen.Trace {
	cfg := cloudgen.DefaultConfig()
	cfg.Horizon = 6 * cloudgen.Hour
	cfg.BaseRate = 300
	cfg.Hosts = []cloudgen.HostClass{
		{Name: "std", Count: 16, Cores: 8, SMT: 2, SpeedFactor: 1.0},
		{Name: "big", Count: 8, Cores: 16, SMT: 2, SpeedFactor: 1.15},
		{Name: "small", Count: 8, Cores: 8, SMT: 1, SpeedFactor: 0.9},
	}
	return cloudgen.Generate(seed, cfg)
}

func TestMacroShardedMatchesSerial(t *testing.T) {
	trace := macroTestTrace(42)
	for _, pol := range []Policy{FirstFit{}, LeastLoaded{}, StealAware{}} {
		pol := pol
		t.Run(pol.Name(), func(t *testing.T) {
			serial := RunMacro(MacroConfig{Trace: trace, Policy: pol, Shards: 1})
			sharded := RunMacro(MacroConfig{Trace: trace, Policy: pol, Shards: 7})
			if !bytes.Equal(serial.Snapshot, sharded.Snapshot) {
				t.Fatalf("serial digest %s != sharded digest %s",
					SnapshotDigest(serial.Snapshot), SnapshotDigest(sharded.Snapshot))
			}
			if serial.Placed == 0 || serial.Lifetimes == 0 {
				t.Fatalf("degenerate run: placed=%d lifetimes=%d", serial.Placed, serial.Lifetimes)
			}
		})
	}
}

func TestMacroDeterministic(t *testing.T) {
	trace := macroTestTrace(7)
	a := RunMacro(MacroConfig{Trace: trace, Policy: StealAware{}, Shards: 4})
	b := RunMacro(MacroConfig{Trace: trace, Policy: StealAware{}, Shards: 4})
	if !bytes.Equal(a.Snapshot, b.Snapshot) {
		t.Fatalf("two identical runs diverged: %s vs %s",
			SnapshotDigest(a.Snapshot), SnapshotDigest(b.Snapshot))
	}
}

func TestMacroTelemetryInert(t *testing.T) {
	trace := macroTestTrace(11)
	bare := RunMacro(MacroConfig{Trace: trace, Policy: LeastLoaded{}, Shards: 2})
	observed := RunMacro(MacroConfig{
		Trace: trace, Policy: LeastLoaded{}, Shards: 2,
		Telemetry: &telemetry.Config{Interval: 30 * sim.Second},
	})
	if !bytes.Equal(bare.Snapshot, observed.Snapshot) {
		t.Fatal("attaching telemetry changed the simulation outcome")
	}
	if observed.Telemetry == nil {
		t.Fatal("telemetry recorder not attached")
	}
	snap := observed.Telemetry.Snapshot(false)
	found := false
	for _, s := range snap.Series {
		if s.Name == "fleet.macro.util_mean" {
			found = true
		}
	}
	if !found {
		t.Fatal("fleet.macro.util_mean series missing from telemetry snapshot")
	}
}

func TestMacroAccounting(t *testing.T) {
	trace := macroTestTrace(3)
	res := RunMacro(MacroConfig{Trace: trace, Policy: LeastLoaded{}, Shards: 3})
	if res.Placed+res.Rejected != res.Arrivals {
		t.Fatalf("placed %d + rejected %d != arrivals %d", res.Placed, res.Rejected, res.Arrivals)
	}
	if res.Lifetimes > res.Placed {
		t.Fatalf("lifetimes %d > placed %d", res.Lifetimes, res.Placed)
	}
	if res.DIMean < 0 || res.DIMax < res.DIMean {
		t.Fatalf("bad DI stats: mean %f max %f", res.DIMean, res.DIMax)
	}
	if res.P95Steal < 0 || res.P95Steal > 1 {
		t.Fatalf("p95 steal %f out of range", res.P95Steal)
	}
	if res.Makespan > sim.Time(0).Add(trace.Horizon) {
		t.Fatalf("makespan %v past horizon %v", res.Makespan, trace.Horizon)
	}
	if res.Events == 0 {
		t.Fatal("no events counted")
	}
}

// TestMacroContentionModel pins the analytic model on a hand-built trace:
// one 4-thread host, two 4-vCPU batch VMs with 100s budgets. Demand 8 on 4
// threads gives rho=0.5, so each VM finishes its budget at exactly t=200s
// with a steal fraction of exactly 0.5.
func TestMacroContentionModel(t *testing.T) {
	trace := cloudgen.Trace{
		Seed:    1,
		Horizon: 300 * sim.Second,
		Hosts:   []cloudgen.HostSpec{{Class: "h", Threads: 4, SpeedFactor: 1.0}},
		VMs: []cloudgen.VM{
			{ID: 0, At: 0, VCPUs: 4, Class: cloudgen.Batch, Demand: 1.0, Work: 100 * sim.Second},
			{ID: 1, At: 0, VCPUs: 4, Class: cloudgen.Batch, Demand: 1.0, Work: 100 * sim.Second},
		},
	}
	res := RunMacro(MacroConfig{Trace: trace, Policy: FirstFit{}, Overcommit: 2.0})
	if res.Placed != 2 || res.Rejected != 0 {
		t.Fatalf("placed %d rejected %d, want 2/0", res.Placed, res.Rejected)
	}
	want := sim.Time(0).Add(200 * sim.Second)
	if res.Makespan != want {
		t.Fatalf("makespan %v, want %v", res.Makespan, want)
	}
	if res.P95Steal != 0.5 {
		t.Fatalf("p95 steal %f, want exactly 0.5", res.P95Steal)
	}
	if res.Lifetimes != 2 {
		t.Fatalf("lifetimes %d, want 2", res.Lifetimes)
	}
}

// TestMacroRejection: a VM larger than every host's admission bound must be
// rejected without disturbing anything else.
func TestMacroRejection(t *testing.T) {
	trace := cloudgen.Trace{
		Seed:    1,
		Horizon: 120 * sim.Second,
		Hosts:   []cloudgen.HostSpec{{Class: "h", Threads: 4, SpeedFactor: 1.0}},
		VMs: []cloudgen.VM{
			{ID: 0, At: 0, VCPUs: 64, Class: cloudgen.Service, Demand: 0.3, Lifetime: 60 * sim.Second},
			{ID: 1, At: 0, VCPUs: 2, Class: cloudgen.Service, Demand: 0.3, Lifetime: 60 * sim.Second},
		},
	}
	res := RunMacro(MacroConfig{Trace: trace, Policy: LeastLoaded{}, Overcommit: 2.0})
	if res.Rejected != 1 || res.Placed != 1 {
		t.Fatalf("placed %d rejected %d, want 1/1", res.Placed, res.Rejected)
	}
	if res.Lifetimes != 1 {
		t.Fatalf("lifetimes %d, want 1", res.Lifetimes)
	}
	// An uncontended service VM accrues zero steal.
	if res.P95Steal != 0 {
		t.Fatalf("p95 steal %f, want 0", res.P95Steal)
	}
}
