package fleet

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"

	"vsched/internal/cloudgen"
	"vsched/internal/faults"
	"vsched/internal/metrics"
	"vsched/internal/progress"
	"vsched/internal/sim"
	"vsched/internal/telemetry"
)

// The macro fleet simulator. The micro fleet (fleet.go) simulates every
// vCPU, thread and scheduler decision — priceless for fidelity, hopeless at
// 1024 hosts x 100k VM lifetimes x 48 hours. Macro keeps the control plane
// exact (the same placement policies, the same HostIndex, the same
// steal-EMA signal) and replaces the data plane with an analytic contention
// model integrated epoch by epoch:
//
//	demand D  = sum over live VMs of vcpus * per-vCPU demand weight
//	rho       = min(1, threads / D)       delivered fraction of demand
//	steal    += demand * (1 - rho) * dt   per VM, the vSched-visible signal
//	progress += rho * speed * dt          per batch vCPU, stretching makespan
//
// Everything is quantized to the epoch: arrivals in [t, t+E) place at t (in
// ascending (At, ID) order), departures due by t leave at t, and rho holds
// for the whole epoch. A batch VM whose budget drains mid-epoch stops
// accruing steal at its analytic completion instant (that instant is the
// makespan contribution) but frees its commitment at the next boundary.
//
// Scale: state is flat value-typed arrays (one macroVM, one macroHost per
// entity — no pointers into the engine), and the epoch integration shards
// across contiguous host ranges on real goroutines inside a single engine
// callback. Each host's VMs live on exactly one shard, so the parallel phase
// writes disjoint state; every cross-host reduction (DI, snapshot, placement)
// runs serially in host order afterwards. Serial and sharded runs are
// byte-identical — the fleetscale experiment panics if not.
type MacroConfig struct {
	Trace cloudgen.Trace
	// Policy places arriving VMs. IndexedPolicy implementations go through
	// the HostIndex (O(log hosts) per placement); plain policies fall back
	// to the linear snapshot scan.
	Policy Policy
	// Overcommit scales threads into the admission bound (default 2.0).
	Overcommit float64
	// Epoch is the integration step (default 60s of virtual time).
	Epoch sim.Duration
	// Shards is the number of worker goroutines for the epoch integration;
	// <= 1 runs serially. Results are identical either way.
	Shards int
	// Horizon overrides Trace.Horizon when > 0.
	Horizon sim.Duration
	// Telemetry, when non-nil, attaches a flight recorder sampling the
	// fleet-wide aggregates (fleet.macro.*) and the cell registry.
	Telemetry *telemetry.Config
	// Observe, when non-nil, is called with the cell's engine before the
	// run starts (the experiments harness uses it to track effort and
	// propagate interrupts).
	Observe func(*sim.Engine)
	// Faults, when non-nil, injects the host fault schedule: crashes kill
	// resident VMs, brownouts shrink effective capacity, stalls freeze
	// progress for an epoch's worth of time. Fault effects quantize to the
	// epoch grid the way arrivals do: an event lands at the boundary of the
	// epoch containing it, and a fault is active for an epoch iff it is
	// active at that epoch's start.
	Faults *faults.Schedule
	// Recovery enables the reaction to faults: crash victims and rejected
	// arrivals enter a bounded pending-retry queue with capped exponential
	// backoff, and VMs on degraded hosts evacuate through the placement
	// policy (the macro tier's migration mechanism). Disabled, crash
	// victims are lost and rejections are terminal — the graceful-
	// degradation baseline.
	Recovery faults.RecoveryConfig
	// Obs, when non-nil, receives structured run progress (run start/done,
	// per-epoch conservation ledgers, fault and recovery events) and mirror
	// snapshots of the cell registry, telemetry tails and engine self-census
	// for live HTTP observation. Publishing is inert by construction: every
	// publish happens at a serial safepoint (epoch boundaries) through the
	// lock-free bus/mirror handoff, writes only fixed-size snapshots, and
	// reads nothing back — results are byte-identical with or without it.
	Obs *progress.Publisher
	// ObsLabel names the run in published events (default: the policy name).
	ObsLabel string
}

// MacroResult is one macro cell's outcome.
type MacroResult struct {
	Policy   string
	Hosts    int
	Arrivals int
	Placed   int
	Rejected int
	// Lifetimes counts completed VM lifetimes (departures) inside the
	// horizon; VMs still resident at the end are not lifetimes.
	Lifetimes int
	// Events counts units of simulation work: placements, departures and
	// per-VM epoch integrations.
	Events uint64
	// DIMean / DIMax summarize the per-epoch degree of imbalance
	// (max-min)/avg of host utilization, the CloudSim load-balance metric.
	DIMean, DIMax float64
	// Makespan is the completion instant of the last batch VM (0 if none
	// completed).
	Makespan sim.Time
	// P95Steal is the 95th-percentile per-VM steal fraction
	// steal/(steal+served) over every VM that demanded CPU.
	P95Steal float64
	// TotalStealHours is fleet-wide accumulated steal in vCPU-hours.
	TotalStealHours float64
	// Fault-plane outcome. Crashes/Brownouts/Stalls count applied host
	// fault events; Killed counts VM kills by crashes (a VM crashing twice
	// counts twice); Restarts successful re-placements; Evacuations VM
	// moves off degraded hosts; EvacFailures aborted evacuation attempts
	// (the migration-failure law); Lost terminal losses (retry budget or
	// queue overflow — or every crash victim when recovery is off);
	// PendingAtEnd VMs still waiting in the retry queue at the horizon;
	// RunningAtEnd VMs alive at the horizon. Conservation holds exactly:
	// Arrivals processed == Lifetimes + Lost + Rejected + RunningAtEnd +
	// PendingAtEnd (RunMacro panics otherwise).
	Crashes, Brownouts, Stalls int
	Killed, Restarts, Lost     int
	Evacuations, EvacFailures  int
	PendingAtEnd, RunningAtEnd int
	// Availability is committed vCPU-seconds over committed plus crash-
	// outage vCPU-seconds (1.0 when nothing ever crashed). MTTRMean/MTTRMax
	// summarize restart time-to-recover in seconds; LostVCPUHours is batch
	// progress destroyed by crashes; DownVCPUHours the capacity-weighted
	// outage time of crash victims.
	Availability      float64
	MTTRMean, MTTRMax float64
	LostVCPUHours     float64
	DownVCPUHours     float64
	// Snapshot is the canonical byte encoding of final simulation state;
	// serial and sharded runs of the same config must produce identical
	// bytes.
	Snapshot []byte
	// Registry exposes the cell's counters; Telemetry the recorder when
	// configured.
	Registry  *metrics.Registry
	Telemetry *telemetry.Recorder
}

// VM lifecycle states for the conservation ledger: every trace VM that
// arrived is in exactly one, and result() panics if the counts don't add up.
const (
	vmUnborn    uint8 = iota // not yet arrived
	vmRunning                // placed and alive
	vmPending                // in the retry queue (crash victim or admission retry)
	vmCompleted              // departed inside the horizon
	vmLost                   // terminally lost (crash + retry budget/queue/no recovery)
	vmRejected               // terminally rejected at admission
)

// macroVM is one VM's compact bookkeeping (no per-vCPU state).
type macroVM struct {
	at       sim.Time
	depart   sim.Time // service deadline; batch analytic completion once known
	work     float64  // batch: remaining per-vCPU seconds of compute
	origWork float64  // batch: full budget, for crash lost-progress accounting
	demand   float64  // per-vCPU demand weight while alive
	steal    float64  // accumulated stolen vCPU-seconds
	served   float64  // accumulated delivered vCPU-seconds
	// downSince marks the kill instant of a crash victim awaiting restart
	// (time-to-recover accounting).
	downSince sim.Time
	host      int32
	restarts  int32
	vcpus     int16
	state     uint8
	batch     bool
	alive     bool
	done      bool // batch budget drained, awaiting boundary departure
}

// macroHost is one host's compact bookkeeping.
type macroHost struct {
	threads   int32
	capacity  int32 // admission bound: overcommit * threads
	committed int32
	speed     float64
	stealEMA  float64
	util      float64 // last epoch's min(1, D/threads)
	vms       []int32 // live VM ids in placement order
	// Fault windows, set serially at epoch boundaries. The host is down
	// (crashed) while downUntil > t, degraded to degradeFactor x capacity
	// while degradedUntil > t, and frozen (rho = 0) while stallUntil > t.
	downUntil     sim.Time
	degradedUntil sim.Time
	stallUntil    sim.Time
	degradeFactor float64
}

// macroAgg is the fleet-wide aggregate block the telemetry source samples.
type macroAgg struct {
	alive, committed    float64
	utilMean, utilMax   float64
	di, stealEMAMean    float64
	hostsDown           float64
	hostsDegraded       float64
	hostsStalled        float64
	pendingRetry        float64
	restarts, lost      float64
	evacuations, killed float64
}

// retryEntry is one VM waiting in the bounded pending-retry queue: a crash
// victim awaiting restart, or a rejected arrival awaiting re-admission.
type retryEntry struct {
	id      int32
	admit   bool     // admission retry (never placed) vs crash restart
	attempt int32    // 1-based attempt number this entry represents
	readyAt sim.Time // boundary at/after which the attempt runs
	// remaining is a crashed service VM's unserved wall-clock lifetime,
	// resumed on restart. Batch VMs restart with their full budget (the
	// destroyed progress is lost work).
	remaining sim.Duration
}

type macroSim struct {
	cfg     MacroConfig
	eng     *sim.Engine
	reg     *metrics.Registry
	rec     *telemetry.Recorder
	hosts   []macroHost
	vms     []macroVM
	ix      *HostIndex
	ipol    IndexedPolicy
	next    int // first trace VM not yet arrived
	horizon sim.Time
	now     sim.Time // current boundary time (effective-capacity clock)

	placed, rejected, departed int
	events                     uint64
	diSum, diMax               float64
	diEpochs                   int
	makespan                   sim.Time
	agg                        macroAgg

	// Fault plane. sched is the injected schedule (nil = no faults), rec
	// the recovery policy (zero = disabled), nextFault the cursor into
	// sched.Events, retryQ the bounded pending queue, migAttempts the
	// deterministic counter feeding the migration-failure law.
	sched       *faults.Schedule
	rcv         faults.RecoveryConfig
	nextFault   int
	retryQ      []retryEntry
	migAttempts uint64

	// Live progress publishing (nil obs = detached). obsLabel and the
	// per-fault-kind detail labels are interned once at setup so the
	// per-event publish path allocates nothing.
	obs        *progress.Publisher
	obsLabel   int32
	faultLabel [3]int32
	epochIdx   int64

	crashes, brownouts, stalls int
	killed, restarts, lost     int
	evacuations, evacFailures  int
	upVCPUSeconds              float64
	downVCPUSeconds            float64
	lostVCPUSeconds            float64
	ttrSum, ttrMax             float64
	ttrCount                   int

	// departQ holds live VM ids ordered by departure time then id; a plain
	// sorted-slice sweep, rebuilt incrementally (batch completions join at
	// the epoch boundary after their budget drains).
	departQ []int32

	// per-shard scratch, reused every epoch
	completions [][]int32
}

// RunMacro executes one macro cell to its horizon and returns the result.
func RunMacro(cfg MacroConfig) *MacroResult {
	if len(cfg.Trace.Hosts) == 0 {
		panic("fleet: macro run needs a host population")
	}
	if cfg.Overcommit <= 0 {
		cfg.Overcommit = 2.0
	}
	if cfg.Epoch <= 0 {
		cfg.Epoch = 60 * sim.Second
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = cfg.Trace.Horizon
	}
	if cfg.Policy == nil {
		cfg.Policy = FirstFit{}
	}
	m := &macroSim{
		cfg:     cfg,
		eng:     sim.NewEngine(cfg.Trace.Seed),
		reg:     metrics.NewRegistry(),
		horizon: sim.Time(0).Add(cfg.Horizon),
		sched:   cfg.Faults,
	}
	if cfg.Recovery.Enabled {
		m.rcv = cfg.Recovery.WithDefaults()
	}
	m.hosts = make([]macroHost, len(cfg.Trace.Hosts))
	caps := make([]int, len(cfg.Trace.Hosts))
	for i, hs := range cfg.Trace.Hosts {
		c := int(cfg.Overcommit * float64(hs.Threads))
		m.hosts[i] = macroHost{
			threads:  int32(hs.Threads),
			capacity: int32(c),
			speed:    hs.SpeedFactor,
		}
		caps[i] = c
	}
	m.vms = make([]macroVM, len(cfg.Trace.VMs))
	if ipol, ok := cfg.Policy.(IndexedPolicy); ok {
		m.ix = NewHostIndex(caps)
		m.ipol = ipol
	}
	m.completions = make([][]int32, cfg.Shards)
	if cfg.Telemetry != nil {
		m.rec = telemetry.New(m.eng, *cfg.Telemetry)
		m.rec.AddSource("", telemetry.RegistrySource(m.reg))
		m.rec.AddSource("", macroSource{m})
		m.rec.Start()
	}
	if cfg.Observe != nil {
		cfg.Observe(m.eng)
	}
	if cfg.Obs != nil {
		m.obs = cfg.Obs
		label := cfg.ObsLabel
		if label == "" {
			label = cfg.Policy.Name()
		}
		m.obsLabel = m.obs.Label(label)
		m.faultLabel[faults.Crash] = m.obs.Label("crash")
		m.faultLabel[faults.Brownout] = m.obs.Label("brownout")
		m.faultLabel[faults.Stall] = m.obs.Label("stall")
		m.obs.Publish(progress.Event{
			Kind:  progress.KindRunStart,
			Label: m.obsLabel,
			Total: int64(len(cfg.Trace.VMs)),
		})
		m.publishMirror()
	}
	m.eng.At(0, m.epoch)
	m.eng.Run(m.horizon)
	m.boundary(m.horizon) // final departures + arrivals bookkeeping at the edge
	return m.result()
}

// epoch advances one integration step: boundary work (departures, arrivals,
// rescoring) then the parallel integration of [now, now+E).
func (m *macroSim) epoch() {
	now := m.eng.Now()
	m.boundary(now)
	// Refresh the recorder's self-census gauges at the boundary so they are
	// scrape- and sample-visible. Deliberately unconditional (not gated on
	// m.obs): telemetry contents must not depend on whether anyone watches.
	m.rec.UpdateCensus(m.reg)
	end := now.Add(m.cfg.Epoch)
	if end > m.horizon {
		end = m.horizon
	}
	if end > now {
		m.integrate(now, end)
		m.publishEpoch(end)
	}
	if end < m.horizon {
		m.eng.At(end, m.epoch)
	}
}

// publishEpoch emits the epoch progress event (cumulative conservation
// ledger + fleet gauges) and refreshes the metric mirror. Serial safepoint:
// runs after the sharded integration has joined.
func (m *macroSim) publishEpoch(end sim.Time) {
	m.epochIdx++
	if m.obs == nil {
		return
	}
	m.obs.Publish(progress.Event{
		Kind:      progress.KindEpoch,
		Label:     m.obsLabel,
		At:        int64(end),
		Epoch:     m.epochIdx,
		Admitted:  int64(m.next),
		Completed: int64(m.departed),
		Lost:      int64(m.lost),
		Rejected:  int64(m.rejected),
		Running:   int64(m.agg.alive),
		Pending:   int64(len(m.retryQ)),
		UtilMean:  m.agg.utilMean,
		DI:        m.agg.di,
	})
	m.publishMirror()
}

// publishMirror swaps in a fresh snapshot of the cell registry, the
// telemetry series tails, and the engine/recorder self-census for /metrics
// scrapers. Reads only simulation state, from the simulation goroutine.
func (m *macroSim) publishMirror() {
	m.obs.PublishMirror(func(add func(progress.Family, string, float64)) {
		m.reg.VisitNumeric(func(name string, v float64) { add(progress.FamMetric, name, v) })
		if m.rec != nil {
			for _, s := range m.rec.Series(false) {
				add(progress.FamTelemetry, s.Name, s.Last().V)
			}
			add(progress.FamSelf, "telemetry.bytes", float64(m.rec.Bytes()))
			add(progress.FamSelf, "telemetry.max_bytes", float64(m.rec.MaxBytes()))
		}
		ws := m.eng.WheelStats()
		add(progress.FamSelf, "sim.fired", float64(m.eng.Fired()))
		add(progress.FamSelf, "sim.pending", float64(ws.Pending))
		add(progress.FamSelf, "sim.wheel.resident", float64(ws.WheelResident))
		add(progress.FamSelf, "sim.wheel.slots", float64(ws.OccupiedSlots))
		add(progress.FamSelf, "sim.wheel.overflow", float64(ws.Overflow))
		add(progress.FamSelf, "sim.wheel.ready", float64(ws.Ready))
	})
}

// boundary performs the serial epoch-start work at time t, in a fixed order
// so serial and sharded runs cannot diverge: departures due by t, fault
// events quantized to this epoch, a full index rescore, pending retries,
// evacuation of degraded hosts, then arrivals with At < t+E in trace order.
func (m *macroSim) boundary(t sim.Time) {
	m.now = t
	// Departures: the queue is sorted by (depart, id); batch VMs whose
	// budget drained last epoch were re-sorted in with their quantized
	// boundary departure time. Killed VMs leave stale entries behind —
	// they are skipped here (dead) or, after a restart re-appended the id,
	// shadowed by the fresh entry (both sort on the same current depart).
	dq := m.departQ
	cut := 0
	for cut < len(dq) {
		vm := &m.vms[dq[cut]]
		if vm.alive && vm.depart > t {
			break
		}
		cut++
	}
	for _, id := range dq[:cut] {
		vm := &m.vms[id]
		if !vm.alive {
			continue
		}
		m.depart(id)
	}
	m.departQ = dq[cut:]

	// Fault events landing in this epoch: crashes kill, brownouts degrade,
	// stalls freeze.
	m.applyFaults(t)

	// Rescore every host before any placement work: committed changed
	// above, stealEMA during the last integration, and effective capacity
	// whenever a fault window opened or expired.
	if m.ix != nil {
		for i := range m.hosts {
			m.reindexHost(i)
		}
	}

	// Pending retries due now: crash restarts and admission re-attempts,
	// oldest (readyAt, id) first.
	dirty := m.retries(t)

	// Evacuate degraded hosts through the placement policy — the macro
	// tier's migration mechanism (recovery-gated).
	m.evacuate(t)

	// Arrivals in [t, t+E), already sorted by (At, ID) in the trace.
	limit := t.Add(m.cfg.Epoch)
	for m.next < len(m.cfg.Trace.VMs) {
		tv := &m.cfg.Trace.VMs[m.next]
		if tv.At >= limit || tv.At >= m.horizon {
			break
		}
		m.place(m.next, t)
		m.next++
		dirty = true
	}
	if dirty {
		sort.SliceStable(m.departQ, func(a, b int) bool {
			va, vb := &m.vms[m.departQ[a]], &m.vms[m.departQ[b]]
			if va.depart != vb.depart {
				return va.depart < vb.depart
			}
			return m.departQ[a] < m.departQ[b]
		})
	}
}

// effCap is host h's effective admission capacity at the current boundary:
// zero while crashed, degradeFactor x capacity while browned out.
func (m *macroSim) effCap(h *macroHost) int32 {
	if h.downUntil > m.now {
		return 0
	}
	if h.degradedUntil > m.now {
		return int32(h.degradeFactor * float64(h.capacity))
	}
	return h.capacity
}

// reindexHost refreshes host i's leaf. The index tracks free = capacity -
// committed against the *configured* leaf capacity, so degraded capacity is
// folded in by inflating committed with the lost headroom; a fully-down host
// scores +Inf (never NaN — NaN would poison BestScore pruning).
func (m *macroSim) reindexHost(i int) {
	if m.ix == nil {
		return
	}
	h := &m.hosts[i]
	eff := m.effCap(h)
	score := math.Inf(1)
	if eff > 0 {
		score = m.ipol.Score(m.macroInfo(i))
	}
	m.ix.Update(i, int(h.committed)+int(h.capacity-eff), score)
}

// applyFaults applies schedule events landing in epoch [t, t+E).
func (m *macroSim) applyFaults(t sim.Time) {
	if m.sched == nil {
		return
	}
	limit := t.Add(m.cfg.Epoch)
	for m.nextFault < len(m.sched.Events) {
		ev := m.sched.Events[m.nextFault]
		if ev.At >= limit || ev.At >= m.horizon {
			break
		}
		m.nextFault++
		if ev.Host < 0 || ev.Host >= len(m.hosts) {
			panic(fmt.Sprintf("fleet: fault event host %d outside fleet of %d", ev.Host, len(m.hosts)))
		}
		h := &m.hosts[ev.Host]
		until := ev.Until()
		m.events++
		if m.obs != nil {
			m.obs.Publish(progress.Event{
				Kind:   progress.KindFault,
				Label:  m.obsLabel,
				Detail: m.faultLabel[ev.Kind],
				At:     int64(ev.At),
				Host:   int64(ev.Host),
			})
		}
		switch ev.Kind {
		case faults.Crash:
			m.crashes++
			m.reg.Counter("fleet.macro.crashes").Inc()
			if until > h.downUntil {
				h.downUntil = until
			}
			for _, id := range h.vms {
				m.kill(id, t)
			}
			h.vms = h.vms[:0]
			h.committed = 0
		case faults.Brownout:
			m.brownouts++
			m.reg.Counter("fleet.macro.brownouts").Inc()
			h.degradedUntil = until
			h.degradeFactor = ev.Factor
		case faults.Stall:
			m.stalls++
			m.reg.Counter("fleet.macro.stalls").Inc()
			h.stallUntil = until
		}
	}
}

// kill marks VM id dead after its host crashed: batch progress since the
// last (re)start is destroyed, and the VM either enters the retry queue
// (recovery) or is terminally lost.
func (m *macroSim) kill(id int32, t sim.Time) {
	vm := &m.vms[id]
	vm.alive = false
	vm.done = false
	vm.downSince = t
	m.killed++
	m.events++
	m.reg.Counter("fleet.macro.killed").Inc()
	if vm.batch {
		m.lostVCPUSeconds += (vm.origWork - vm.work) * float64(vm.vcpus)
	}
	if !m.rcv.Enabled {
		vm.state = vmLost
		m.lost++
		m.reg.Counter("fleet.macro.lost").Inc()
		return
	}
	vm.state = vmPending
	var remaining sim.Duration
	if !vm.batch {
		remaining = vm.depart.Sub(t) // > 0: departures due by t already ran
	}
	m.enqueue(retryEntry{
		id:        id,
		attempt:   1,
		readyAt:   t.Add(m.rcv.Backoff(1)),
		remaining: remaining,
	}, t)
}

// enqueue admits an entry to the bounded retry queue; overflow is
// immediately terminal (bounded restart debt is the point).
func (m *macroSim) enqueue(e retryEntry, t sim.Time) {
	if len(m.retryQ) >= m.rcv.QueueCap {
		m.terminal(e, t)
		return
	}
	m.retryQ = append(m.retryQ, e)
	m.reg.Counter("fleet.macro.retry_queued").Inc()
}

// terminal finalizes a retry entry that ran out of road: crash victims are
// lost, admission victims are rejected. Both land in the snapshot.
func (m *macroSim) terminal(e retryEntry, t sim.Time) {
	vm := &m.vms[e.id]
	if e.admit {
		vm.state = vmRejected
		m.rejected++
		m.reg.Counter("fleet.macro.rejected").Inc()
		return
	}
	vm.state = vmLost
	m.lost++
	m.downVCPUSeconds += t.Sub(vm.downSince).Seconds() * float64(vm.vcpus)
	m.reg.Counter("fleet.macro.lost").Inc()
}

// retries runs every queue entry due at t in (readyAt, id) order. Returns
// whether any VM re-entered the departure queue.
func (m *macroSim) retries(t sim.Time) bool {
	if len(m.retryQ) == 0 {
		return false
	}
	sort.SliceStable(m.retryQ, func(a, b int) bool {
		ea, eb := m.retryQ[a], m.retryQ[b]
		if ea.readyAt != eb.readyAt {
			return ea.readyAt < eb.readyAt
		}
		return ea.id < eb.id
	})
	cut := 0
	for cut < len(m.retryQ) && m.retryQ[cut].readyAt <= t {
		cut++
	}
	if cut == 0 {
		return false
	}
	due := append([]retryEntry(nil), m.retryQ[:cut]...)
	m.retryQ = append(m.retryQ[:0], m.retryQ[cut:]...)
	readmitted := false
	for _, e := range due {
		vm := &m.vms[e.id]
		vcpus := int(vm.vcpus)
		if e.admit {
			vcpus = m.cfg.Trace.VMs[e.id].VCPUs
		}
		hi := m.choose(vcpus)
		m.events++
		if hi < 0 {
			if int(e.attempt) >= m.rcv.MaxRetries {
				m.terminal(e, t)
			} else {
				e.attempt++
				e.readyAt = t.Add(m.rcv.Backoff(int(e.attempt)))
				m.enqueue(e, t)
			}
			continue
		}
		if e.admit {
			m.admit(int(e.id), hi, t)
		} else {
			m.restart(e, hi, t)
		}
		readmitted = true
	}
	return readmitted
}

// restart re-places a crash victim on host hi: service VMs resume their
// remaining wall-clock lifetime, batch VMs restart their full budget.
func (m *macroSim) restart(e retryEntry, hi int, t sim.Time) {
	vm := &m.vms[e.id]
	h := &m.hosts[hi]
	h.committed += int32(vm.vcpus)
	vm.host = int32(hi)
	vm.alive = true
	vm.state = vmRunning
	vm.restarts++
	if vm.batch {
		vm.work = vm.origWork
		vm.done = false
		vm.depart = m.horizon
	} else {
		vm.depart = t.Add(e.remaining)
	}
	h.vms = append(h.vms, e.id)
	m.departQ = append(m.departQ, e.id)
	m.restarts++
	m.events++
	m.reg.Counter("fleet.macro.restarts").Inc()
	ttr := t.Sub(vm.downSince).Seconds()
	m.ttrSum += ttr
	m.ttrCount++
	if ttr > m.ttrMax {
		m.ttrMax = ttr
	}
	m.downVCPUSeconds += ttr * float64(vm.vcpus)
	m.reindexHost(hi)
	if m.obs != nil {
		m.obs.Publish(progress.Event{
			Kind:    progress.KindRecovery,
			Label:   m.obsLabel,
			At:      int64(t),
			Host:    int64(hi),
			Retries: int64(e.attempt),
		})
	}
}

// evacuate drains hosts whose commitment exceeds their degraded capacity,
// newest VM first (coldest state), re-placing through the policy. Each
// attempt consults the migration-failure law; a failed attempt abandons the
// host until the next boundary. A VM with nowhere to go stays — graceful
// degradation: the overcommit persists and shows up as steal.
func (m *macroSim) evacuate(t sim.Time) {
	if !m.rcv.Enabled || m.sched == nil {
		return
	}
	for i := range m.hosts {
		h := &m.hosts[i]
		for h.committed > m.effCap(h) && len(h.vms) > 0 {
			id := h.vms[len(h.vms)-1]
			vm := &m.vms[id]
			m.migAttempts++
			m.events++
			if m.sched.MigrationFails(m.migAttempts) {
				m.evacFailures++
				m.reg.Counter("fleet.macro.evac_failures").Inc()
				break
			}
			hi := m.choose(int(vm.vcpus))
			if hi < 0 || hi == i {
				break // nowhere to go: stay overcommitted, steal rises
			}
			h.vms = h.vms[:len(h.vms)-1]
			h.committed -= int32(vm.vcpus)
			d := &m.hosts[hi]
			d.committed += int32(vm.vcpus)
			d.vms = append(d.vms, id)
			vm.host = int32(hi)
			m.evacuations++
			m.reg.Counter("fleet.macro.evacuations").Inc()
			m.reindexHost(i)
			m.reindexHost(hi)
		}
	}
}

// macroInfo builds the policy snapshot row for host i. Capacity is the
// effective (fault-adjusted) bound, so linear policies steer around degraded
// hosts exactly like the indexed path.
func (m *macroSim) macroInfo(i int) HostInfo {
	h := &m.hosts[i]
	return HostInfo{
		Index:     i,
		Committed: int(h.committed),
		Capacity:  int(m.effCap(h)),
		VMs:       len(h.vms),
		StealRate: h.stealEMA,
	}
}

// choose picks a host for a vcpus-wide VM through the index or the linear
// snapshot scan; -1 means nothing fits.
func (m *macroSim) choose(vcpus int) int {
	if m.ix != nil {
		return m.ipol.PlaceIndexed(m.ix, vcpus)
	}
	snap := make([]HostInfo, len(m.hosts))
	for i := range m.hosts {
		snap[i] = m.macroInfo(i)
	}
	return m.cfg.Policy.Place(snap, vcpus)
}

// place admits trace VM idx at epoch time t. A rejection is terminal only
// without recovery; with recovery the VM queues for re-admission with the
// same backoff law crash victims use, so demand is conserved, not dropped.
func (m *macroSim) place(idx int, t sim.Time) {
	tv := &m.cfg.Trace.VMs[idx]
	hi := m.choose(tv.VCPUs)
	m.events++
	if hi < 0 {
		vm := &m.vms[idx]
		if m.rcv.Enabled {
			vm.state = vmPending
			m.enqueue(retryEntry{
				id:      int32(idx),
				admit:   true,
				attempt: 1,
				readyAt: t.Add(m.rcv.Backoff(1)),
			}, t)
			return
		}
		vm.state = vmRejected
		m.rejected++
		m.reg.Counter("fleet.macro.rejected").Inc()
		return
	}
	m.admit(idx, hi, t)
}

// admit commits trace VM idx to host hi at time t.
func (m *macroSim) admit(idx int, hi int, t sim.Time) {
	tv := &m.cfg.Trace.VMs[idx]
	h := &m.hosts[hi]
	h.committed += int32(tv.VCPUs)
	vm := &m.vms[idx]
	*vm = macroVM{
		at:     t,
		demand: tv.Demand,
		host:   int32(hi),
		vcpus:  int16(tv.VCPUs),
		batch:  tv.Class == cloudgen.Batch,
		alive:  true,
		state:  vmRunning,
	}
	if vm.batch {
		vm.work = tv.Work.Seconds()
		vm.origWork = vm.work
		vm.depart = m.horizon // until the budget drains
	} else {
		vm.depart = t.Add(tv.Lifetime)
	}
	h.vms = append(h.vms, int32(idx))
	m.departQ = append(m.departQ, int32(idx))
	m.placed++
	m.reg.Counter("fleet.macro.placed").Inc()
	m.reindexHost(hi)
}

// depart releases VM id's commitment and removes it from its host.
func (m *macroSim) depart(id int32) {
	vm := &m.vms[id]
	vm.alive = false
	vm.state = vmCompleted
	h := &m.hosts[vm.host]
	h.committed -= int32(vm.vcpus)
	for k, v := range h.vms {
		if v == id {
			h.vms = append(h.vms[:k], h.vms[k+1:]...)
			break
		}
	}
	m.departed++
	m.events++
	m.reg.Counter("fleet.macro.departed").Inc()
}

// integrate advances every host through [t0, t1). The per-host work is
// independent — each VM belongs to one host — so it shards across contiguous
// host ranges. All cross-host reductions happen serially afterwards, in host
// order, so shard count cannot perturb a single float operation.
func (m *macroSim) integrate(t0, t1 sim.Time) {
	shards := m.cfg.Shards
	if shards > len(m.hosts) {
		shards = len(m.hosts)
	}
	per := (len(m.hosts) + shards - 1) / shards
	if shards == 1 {
		m.completions[0] = m.integrateRange(0, len(m.hosts), t0, t1, m.completions[0][:0])
	} else {
		var wg sync.WaitGroup
		for s := 0; s < shards; s++ {
			lo := s * per
			hi := lo + per
			if hi > len(m.hosts) {
				hi = len(m.hosts)
			}
			if lo >= hi {
				m.completions[s] = m.completions[s][:0]
				continue
			}
			wg.Add(1)
			go func(s, lo, hi int) {
				defer wg.Done()
				m.completions[s] = m.integrateRange(lo, hi, t0, t1, m.completions[s][:0])
			}(s, lo, hi)
		}
		wg.Wait()
	}

	// Serial merge, shard order == host order: batch completions re-enter
	// the departure queue with their boundary departure time.
	var events uint64
	for i := range m.hosts {
		events += uint64(len(m.hosts[i].vms)) + 1
	}
	m.events += events
	for s := 0; s < shards; s++ {
		for _, id := range m.completions[s] {
			vm := &m.vms[id]
			// depart holds the analytic completion instant; the makespan is
			// the latest one seen. The actual departure quantizes to the
			// epoch boundary.
			if vm.depart > m.makespan {
				m.makespan = vm.depart
			}
			vm.depart = t1
		}
	}
	if len(m.departQ) > 1 {
		sort.SliceStable(m.departQ, func(a, b int) bool {
			va, vb := &m.vms[m.departQ[a]], &m.vms[m.departQ[b]]
			if va.depart != vb.depart {
				return va.depart < vb.depart
			}
			return m.departQ[a] < m.departQ[b]
		})
	}

	// Degree of imbalance over hosts with any capacity, serial in host order.
	minU, maxU, sumU := math.Inf(1), math.Inf(-1), 0.0
	sumSteal, sumCommitted, alive := 0.0, 0.0, 0.0
	down, degraded, stalled := 0.0, 0.0, 0.0
	for i := range m.hosts {
		h := &m.hosts[i]
		u := h.util
		if u < minU {
			minU = u
		}
		if u > maxU {
			maxU = u
		}
		sumU += u
		sumSteal += h.stealEMA
		sumCommitted += float64(h.committed)
		alive += float64(len(h.vms))
		if h.downUntil > t0 {
			down++
		} else if h.degradedUntil > t0 {
			degraded++
		}
		if h.stallUntil > t0 {
			stalled++
		}
	}
	// Availability ledger: committed vCPU-seconds delivered-or-placed this
	// epoch. The down side accrues per crash victim at restart/loss time.
	m.upVCPUSeconds += sumCommitted * t1.Sub(t0).Seconds()
	n := float64(len(m.hosts))
	di := 0.0
	if sumU > 0 {
		di = (maxU - minU) / (sumU / n)
		m.diSum += di
		m.diEpochs++
		if di > m.diMax {
			m.diMax = di
		}
	}
	m.agg = macroAgg{
		alive:         alive,
		committed:     sumCommitted,
		utilMean:      sumU / n,
		utilMax:       maxU,
		di:            di,
		stealEMAMean:  sumSteal / n,
		hostsDown:     down,
		hostsDegraded: degraded,
		hostsStalled:  stalled,
		pendingRetry:  float64(len(m.retryQ)),
		restarts:      float64(m.restarts),
		lost:          float64(m.lost),
		evacuations:   float64(m.evacuations),
		killed:        float64(m.killed),
	}
	m.reg.Counter("fleet.macro.epochs").Inc()
}

// integrateRange advances hosts [lo, hi) through [t0, t1), appending batch
// VMs whose budget drained to done. Touches only state owned by those hosts.
func (m *macroSim) integrateRange(lo, hi int, t0, t1 sim.Time, done []int32) []int32 {
	dt := t1.Sub(t0).Seconds()
	const alpha = 0.4 // same smoothing the micro fleet's steal EMA uses
	for i := lo; i < hi; i++ {
		h := &m.hosts[i]
		// Effective compute for this epoch: zero while crashed or stalled
		// (stall = all demand steals, nothing progresses), degradeFactor x
		// threads while browned out. Fault windows are set serially at
		// boundaries, so reading them here is shard-safe.
		effT := float64(h.threads)
		if h.downUntil > t0 || h.stallUntil > t0 {
			effT = 0
		} else if h.degradedUntil > t0 {
			effT = h.degradeFactor * float64(h.threads)
		}
		demand := 0.0
		for _, id := range h.vms {
			vm := &m.vms[id]
			demand += float64(vm.vcpus) * vm.demand
		}
		rho := 1.0
		util := 0.0
		if effT <= 0 {
			rho = 0
			if demand > 0 {
				util = 1
			}
		} else {
			if demand > effT {
				rho = effT / demand
			}
			util = demand / effT
			if util > 1 {
				util = 1
			}
		}
		h.util = util
		target := 0.0
		if demand > 0 {
			target = 1 - rho
		}
		h.stealEMA = alpha*target + (1-alpha)*h.stealEMA
		for _, id := range h.vms {
			vm := &m.vms[id]
			span := dt
			if vm.batch && !vm.done {
				rate := rho * h.speed // per-vCPU progress per second
				if need := vm.work / rate; need < span {
					span = need
					vm.work = 0
					vm.done = true
					// Analytic completion instant; integrate() lifts it
					// into the makespan then quantizes the departure.
					vm.depart = t0.Add(sim.Duration(span * float64(sim.Second)))
					done = append(done, id)
				} else {
					vm.work -= rate * span
				}
			} else if vm.done {
				span = 0 // budget drained in a prior epoch; idle until boundary
			}
			req := float64(vm.vcpus) * vm.demand * span
			vm.served += req * rho
			vm.steal += req * (1 - rho)
		}
	}
	return done
}

// result finalizes counters, percentiles and the canonical snapshot, and
// enforces the conservation law: every arrival is in exactly one terminal or
// live state — nothing is lost unaccounted.
func (m *macroSim) result() *MacroResult {
	fracs := make([]float64, 0, m.placed)
	totalSteal := 0.0
	for i := range m.vms {
		vm := &m.vms[i]
		if vm.vcpus == 0 {
			continue // never placed
		}
		totalSteal += vm.steal
		if tot := vm.steal + vm.served; tot > 0 {
			fracs = append(fracs, vm.steal/tot)
		}
	}
	sort.Float64s(fracs)
	p95 := 0.0
	if len(fracs) > 0 {
		idx := (len(fracs) * 95) / 100
		if idx >= len(fracs) {
			idx = len(fracs) - 1
		}
		p95 = fracs[idx]
	}
	diMean := 0.0
	if m.diEpochs > 0 {
		diMean = m.diSum / float64(m.diEpochs)
	}

	// Conservation: arrived == running + pending + completed + lost +
	// rejected, with the per-state tallies matching the incremental
	// counters. Crash victims still pending at the horizon accrue their
	// outage tail here.
	var running, pending, completed, lost, rejected int
	for i := 0; i < m.next; i++ {
		vm := &m.vms[i]
		switch vm.state {
		case vmRunning:
			running++
		case vmPending:
			pending++
			if vm.vcpus > 0 { // crash victim (admission retries never ran)
				m.downVCPUSeconds += m.horizon.Sub(vm.downSince).Seconds() * float64(vm.vcpus)
			}
		case vmCompleted:
			completed++
		case vmLost:
			lost++
		case vmRejected:
			rejected++
		default:
			panic(fmt.Sprintf("fleet: macro VM %d arrived but has no state", i))
		}
	}
	if running+pending+completed+lost+rejected != m.next ||
		completed != m.departed || lost != m.lost || rejected != m.rejected {
		panic(fmt.Sprintf(
			"fleet: macro VM conservation violated: arrived=%d running=%d pending=%d completed=%d (departed=%d) lost=%d (%d) rejected=%d (%d)",
			m.next, running, pending, completed, m.departed, lost, m.lost, rejected, m.rejected))
	}

	if m.obs != nil {
		// Final ledger, after the horizon boundary's departures: the stream's
		// terminal record, which consumers reconcile against the per-epoch
		// events and the conservation law.
		m.obs.Publish(progress.Event{
			Kind:      progress.KindRunDone,
			Label:     m.obsLabel,
			At:        int64(m.horizon),
			Epoch:     m.epochIdx,
			Admitted:  int64(m.next),
			Completed: int64(completed),
			Lost:      int64(lost),
			Rejected:  int64(rejected),
			Running:   int64(running),
			Pending:   int64(pending),
		})
		m.publishMirror()
	}

	availability := 1.0
	if m.upVCPUSeconds+m.downVCPUSeconds > 0 {
		availability = m.upVCPUSeconds / (m.upVCPUSeconds + m.downVCPUSeconds)
	}
	mttrMean := 0.0
	if m.ttrCount > 0 {
		mttrMean = m.ttrSum / float64(m.ttrCount)
	}
	return &MacroResult{
		Policy:          m.cfg.Policy.Name(),
		Hosts:           len(m.hosts),
		Arrivals:        len(m.cfg.Trace.VMs),
		Placed:          m.placed,
		Rejected:        m.rejected,
		Lifetimes:       m.departed,
		Events:          m.events,
		DIMean:          diMean,
		DIMax:           m.diMax,
		Makespan:        m.makespan,
		P95Steal:        p95,
		TotalStealHours: totalSteal / 3600,
		Crashes:         m.crashes,
		Brownouts:       m.brownouts,
		Stalls:          m.stalls,
		Killed:          m.killed,
		Restarts:        m.restarts,
		Lost:            m.lost,
		Evacuations:     m.evacuations,
		EvacFailures:    m.evacFailures,
		PendingAtEnd:    pending,
		RunningAtEnd:    running,
		Availability:    availability,
		MTTRMean:        mttrMean,
		MTTRMax:         m.ttrMax,
		LostVCPUHours:   m.lostVCPUSeconds / 3600,
		DownVCPUHours:   m.downVCPUSeconds / 3600,
		Snapshot:        m.snapshot(),
		Registry:        m.reg,
		Telemetry:       m.rec,
	}
}

// snapshot encodes final state canonically: every host's commitment, steal
// EMA and utilization, every VM's steal/served/work bits, and the scalar
// outcome counters. Two runs that diverge anywhere — one float op, one
// placement, one departure order — produce different bytes.
func (m *macroSim) snapshot() []byte {
	buf := make([]byte, 0, 8*(3*len(m.hosts)+4*len(m.vms)+8))
	u64 := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		buf = append(buf, b[:]...)
	}
	f64 := func(v float64) { u64(math.Float64bits(v)) }
	for i := range m.hosts {
		h := &m.hosts[i]
		u64(uint64(uint32(h.committed)))
		f64(h.stealEMA)
		f64(h.util)
		u64(uint64(h.downUntil))
		u64(uint64(h.degradedUntil))
		u64(uint64(h.stallUntil))
		f64(h.degradeFactor)
	}
	for i := range m.vms {
		vm := &m.vms[i]
		f64(vm.steal)
		f64(vm.served)
		f64(vm.work)
		flags := uint64(vm.host) << 8
		if vm.alive {
			flags |= 1
		}
		if vm.done {
			flags |= 2
		}
		u64(flags)
		u64(uint64(vm.state) | uint64(uint32(vm.restarts))<<8)
	}
	u64(uint64(m.placed))
	u64(uint64(m.rejected))
	u64(uint64(m.departed))
	u64(uint64(m.makespan))
	f64(m.diSum)
	f64(m.diMax)
	u64(uint64(m.diEpochs))
	u64(m.events)
	// Fault plane: terminal rejections above plus the full recovery ledger,
	// so a single diverging kill, restart or evacuation flips the digest.
	u64(uint64(m.crashes))
	u64(uint64(m.brownouts))
	u64(uint64(m.stalls))
	u64(uint64(m.killed))
	u64(uint64(m.restarts))
	u64(uint64(m.lost))
	u64(uint64(m.evacuations))
	u64(uint64(m.evacFailures))
	u64(m.migAttempts)
	u64(uint64(len(m.retryQ)))
	f64(m.upVCPUSeconds)
	f64(m.downVCPUSeconds)
	f64(m.lostVCPUSeconds)
	f64(m.ttrSum)
	f64(m.ttrMax)
	u64(uint64(m.ttrCount))
	return buf
}

// SnapshotDigest returns a short FNV-64a hex digest of a snapshot, for logs
// and reports.
func SnapshotDigest(snap []byte) string {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, b := range snap {
		h ^= uint64(b)
		h *= prime
	}
	return fmt.Sprintf("%016x", h)
}

// macroSource samples the fleet-wide aggregates after each epoch.
type macroSource struct{ m *macroSim }

// Collect implements telemetry.Source. Aggregate-only by design: at 1024
// hosts, per-host series would defeat the recorder's memory bound.
func (s macroSource) Collect(now sim.Time, emit func(string, float64)) {
	a := &s.m.agg
	emit("fleet.macro.vms_alive", a.alive)
	emit("fleet.macro.committed", a.committed)
	emit("fleet.macro.util_mean", a.utilMean)
	emit("fleet.macro.util_max", a.utilMax)
	emit("fleet.macro.di", a.di)
	emit("fleet.macro.steal_ema_mean", a.stealEMAMean)
	emit("fleet.macro.hosts_down", a.hostsDown)
	emit("fleet.macro.hosts_degraded", a.hostsDegraded)
	emit("fleet.macro.hosts_stalled", a.hostsStalled)
	emit("fleet.macro.pending_retry", a.pendingRetry)
	emit("fleet.macro.restarts_total", a.restarts)
	emit("fleet.macro.lost_total", a.lost)
	emit("fleet.macro.evacuations_total", a.evacuations)
	emit("fleet.macro.killed_total", a.killed)
}
