package fleet

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"

	"vsched/internal/cloudgen"
	"vsched/internal/metrics"
	"vsched/internal/sim"
	"vsched/internal/telemetry"
)

// The macro fleet simulator. The micro fleet (fleet.go) simulates every
// vCPU, thread and scheduler decision — priceless for fidelity, hopeless at
// 1024 hosts x 100k VM lifetimes x 48 hours. Macro keeps the control plane
// exact (the same placement policies, the same HostIndex, the same
// steal-EMA signal) and replaces the data plane with an analytic contention
// model integrated epoch by epoch:
//
//	demand D  = sum over live VMs of vcpus * per-vCPU demand weight
//	rho       = min(1, threads / D)       delivered fraction of demand
//	steal    += demand * (1 - rho) * dt   per VM, the vSched-visible signal
//	progress += rho * speed * dt          per batch vCPU, stretching makespan
//
// Everything is quantized to the epoch: arrivals in [t, t+E) place at t (in
// ascending (At, ID) order), departures due by t leave at t, and rho holds
// for the whole epoch. A batch VM whose budget drains mid-epoch stops
// accruing steal at its analytic completion instant (that instant is the
// makespan contribution) but frees its commitment at the next boundary.
//
// Scale: state is flat value-typed arrays (one macroVM, one macroHost per
// entity — no pointers into the engine), and the epoch integration shards
// across contiguous host ranges on real goroutines inside a single engine
// callback. Each host's VMs live on exactly one shard, so the parallel phase
// writes disjoint state; every cross-host reduction (DI, snapshot, placement)
// runs serially in host order afterwards. Serial and sharded runs are
// byte-identical — the fleetscale experiment panics if not.
type MacroConfig struct {
	Trace cloudgen.Trace
	// Policy places arriving VMs. IndexedPolicy implementations go through
	// the HostIndex (O(log hosts) per placement); plain policies fall back
	// to the linear snapshot scan.
	Policy Policy
	// Overcommit scales threads into the admission bound (default 2.0).
	Overcommit float64
	// Epoch is the integration step (default 60s of virtual time).
	Epoch sim.Duration
	// Shards is the number of worker goroutines for the epoch integration;
	// <= 1 runs serially. Results are identical either way.
	Shards int
	// Horizon overrides Trace.Horizon when > 0.
	Horizon sim.Duration
	// Telemetry, when non-nil, attaches a flight recorder sampling the
	// fleet-wide aggregates (fleet.macro.*) and the cell registry.
	Telemetry *telemetry.Config
	// Observe, when non-nil, is called with the cell's engine before the
	// run starts (the experiments harness uses it to track effort and
	// propagate interrupts).
	Observe func(*sim.Engine)
}

// MacroResult is one macro cell's outcome.
type MacroResult struct {
	Policy   string
	Hosts    int
	Arrivals int
	Placed   int
	Rejected int
	// Lifetimes counts completed VM lifetimes (departures) inside the
	// horizon; VMs still resident at the end are not lifetimes.
	Lifetimes int
	// Events counts units of simulation work: placements, departures and
	// per-VM epoch integrations.
	Events uint64
	// DIMean / DIMax summarize the per-epoch degree of imbalance
	// (max-min)/avg of host utilization, the CloudSim load-balance metric.
	DIMean, DIMax float64
	// Makespan is the completion instant of the last batch VM (0 if none
	// completed).
	Makespan sim.Time
	// P95Steal is the 95th-percentile per-VM steal fraction
	// steal/(steal+served) over every VM that demanded CPU.
	P95Steal float64
	// TotalStealHours is fleet-wide accumulated steal in vCPU-hours.
	TotalStealHours float64
	// Snapshot is the canonical byte encoding of final simulation state;
	// serial and sharded runs of the same config must produce identical
	// bytes.
	Snapshot []byte
	// Registry exposes the cell's counters; Telemetry the recorder when
	// configured.
	Registry  *metrics.Registry
	Telemetry *telemetry.Recorder
}

// macroVM is one VM's compact bookkeeping (no per-vCPU state).
type macroVM struct {
	at     sim.Time
	depart sim.Time // service deadline; batch analytic completion once known
	work   float64  // batch: remaining per-vCPU seconds of compute
	demand float64  // per-vCPU demand weight while alive
	steal  float64  // accumulated stolen vCPU-seconds
	served float64  // accumulated delivered vCPU-seconds
	host   int32
	vcpus  int16
	batch  bool
	alive  bool
	done   bool // batch budget drained, awaiting boundary departure
}

// macroHost is one host's compact bookkeeping.
type macroHost struct {
	threads   int32
	capacity  int32 // admission bound: overcommit * threads
	committed int32
	speed     float64
	stealEMA  float64
	util      float64 // last epoch's min(1, D/threads)
	vms       []int32 // live VM ids in placement order
}

// macroAgg is the fleet-wide aggregate block the telemetry source samples.
type macroAgg struct {
	alive, committed  float64
	utilMean, utilMax float64
	di, stealEMAMean  float64
}

type macroSim struct {
	cfg     MacroConfig
	eng     *sim.Engine
	reg     *metrics.Registry
	rec     *telemetry.Recorder
	hosts   []macroHost
	vms     []macroVM
	ix      *HostIndex
	ipol    IndexedPolicy
	next    int // first trace VM not yet arrived
	horizon sim.Time

	placed, rejected, departed int
	events                     uint64
	diSum, diMax               float64
	diEpochs                   int
	makespan                   sim.Time
	agg                        macroAgg

	// departQ holds live VM ids ordered by departure time then id; a plain
	// sorted-slice sweep, rebuilt incrementally (batch completions join at
	// the epoch boundary after their budget drains).
	departQ []int32

	// per-shard scratch, reused every epoch
	completions [][]int32
}

// RunMacro executes one macro cell to its horizon and returns the result.
func RunMacro(cfg MacroConfig) *MacroResult {
	if len(cfg.Trace.Hosts) == 0 {
		panic("fleet: macro run needs a host population")
	}
	if cfg.Overcommit <= 0 {
		cfg.Overcommit = 2.0
	}
	if cfg.Epoch <= 0 {
		cfg.Epoch = 60 * sim.Second
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = cfg.Trace.Horizon
	}
	if cfg.Policy == nil {
		cfg.Policy = FirstFit{}
	}
	m := &macroSim{
		cfg:     cfg,
		eng:     sim.NewEngine(cfg.Trace.Seed),
		reg:     metrics.NewRegistry(),
		horizon: sim.Time(0).Add(cfg.Horizon),
	}
	m.hosts = make([]macroHost, len(cfg.Trace.Hosts))
	caps := make([]int, len(cfg.Trace.Hosts))
	for i, hs := range cfg.Trace.Hosts {
		c := int(cfg.Overcommit * float64(hs.Threads))
		m.hosts[i] = macroHost{
			threads:  int32(hs.Threads),
			capacity: int32(c),
			speed:    hs.SpeedFactor,
		}
		caps[i] = c
	}
	m.vms = make([]macroVM, len(cfg.Trace.VMs))
	if ipol, ok := cfg.Policy.(IndexedPolicy); ok {
		m.ix = NewHostIndex(caps)
		m.ipol = ipol
	}
	m.completions = make([][]int32, cfg.Shards)
	if cfg.Telemetry != nil {
		m.rec = telemetry.New(m.eng, *cfg.Telemetry)
		m.rec.AddSource("", telemetry.RegistrySource(m.reg))
		m.rec.AddSource("", macroSource{m})
		m.rec.Start()
	}
	if cfg.Observe != nil {
		cfg.Observe(m.eng)
	}
	m.eng.At(0, m.epoch)
	m.eng.Run(m.horizon)
	m.boundary(m.horizon) // final departures + arrivals bookkeeping at the edge
	return m.result()
}

// epoch advances one integration step: boundary work (departures, arrivals,
// rescoring) then the parallel integration of [now, now+E).
func (m *macroSim) epoch() {
	now := m.eng.Now()
	m.boundary(now)
	end := now.Add(m.cfg.Epoch)
	if end > m.horizon {
		end = m.horizon
	}
	if end > now {
		m.integrate(now, end)
	}
	if end < m.horizon {
		m.eng.At(end, m.epoch)
	}
}

// boundary performs the serial epoch-start work at time t: departures due by
// t, then arrivals with At < t+E placed in trace order.
func (m *macroSim) boundary(t sim.Time) {
	// Departures: the queue is sorted by (depart, id); batch VMs whose
	// budget drained last epoch were re-sorted in with their quantized
	// boundary departure time.
	dq := m.departQ
	cut := 0
	for cut < len(dq) {
		vm := &m.vms[dq[cut]]
		if vm.alive && vm.depart > t {
			break
		}
		cut++
	}
	for _, id := range dq[:cut] {
		vm := &m.vms[id]
		if !vm.alive {
			continue
		}
		m.depart(id)
	}
	m.departQ = dq[cut:]

	// Rescore every host before placing: committed changed above and
	// stealEMA changed during the last integration.
	if m.ix != nil {
		for i := range m.hosts {
			h := &m.hosts[i]
			m.ix.Update(i, int(h.committed), m.ipol.Score(m.macroInfo(i)))
		}
	}

	// Arrivals in [t, t+E), already sorted by (At, ID) in the trace.
	limit := t.Add(m.cfg.Epoch)
	var dirty bool
	for m.next < len(m.cfg.Trace.VMs) {
		tv := &m.cfg.Trace.VMs[m.next]
		if tv.At >= limit || tv.At >= m.horizon {
			break
		}
		m.place(m.next, t)
		m.next++
		dirty = true
	}
	if dirty {
		sort.SliceStable(m.departQ, func(a, b int) bool {
			va, vb := &m.vms[m.departQ[a]], &m.vms[m.departQ[b]]
			if va.depart != vb.depart {
				return va.depart < vb.depart
			}
			return m.departQ[a] < m.departQ[b]
		})
	}
}

// macroInfo builds the policy snapshot row for host i.
func (m *macroSim) macroInfo(i int) HostInfo {
	h := &m.hosts[i]
	return HostInfo{
		Index:     i,
		Committed: int(h.committed),
		Capacity:  int(h.capacity),
		VMs:       len(h.vms),
		StealRate: h.stealEMA,
	}
}

// place admits trace VM idx at epoch time t (or rejects it).
func (m *macroSim) place(idx int, t sim.Time) {
	tv := &m.cfg.Trace.VMs[idx]
	var hi int
	if m.ix != nil {
		hi = m.ipol.PlaceIndexed(m.ix, tv.VCPUs)
	} else {
		snap := make([]HostInfo, len(m.hosts))
		for i := range m.hosts {
			snap[i] = m.macroInfo(i)
		}
		hi = m.cfg.Policy.Place(snap, tv.VCPUs)
	}
	m.events++
	if hi < 0 {
		m.rejected++
		m.reg.Counter("fleet.macro.rejected").Inc()
		return
	}
	h := &m.hosts[hi]
	h.committed += int32(tv.VCPUs)
	vm := &m.vms[idx]
	*vm = macroVM{
		at:     t,
		demand: tv.Demand,
		host:   int32(hi),
		vcpus:  int16(tv.VCPUs),
		batch:  tv.Class == cloudgen.Batch,
		alive:  true,
	}
	if vm.batch {
		vm.work = tv.Work.Seconds()
		vm.depart = m.horizon // until the budget drains
	} else {
		vm.depart = t.Add(tv.Lifetime)
	}
	h.vms = append(h.vms, int32(idx))
	m.departQ = append(m.departQ, int32(idx))
	m.placed++
	m.reg.Counter("fleet.macro.placed").Inc()
	if m.ix != nil {
		m.ix.Update(hi, int(h.committed), m.ipol.Score(m.macroInfo(hi)))
	}
}

// depart releases VM id's commitment and removes it from its host.
func (m *macroSim) depart(id int32) {
	vm := &m.vms[id]
	vm.alive = false
	h := &m.hosts[vm.host]
	h.committed -= int32(vm.vcpus)
	for k, v := range h.vms {
		if v == id {
			h.vms = append(h.vms[:k], h.vms[k+1:]...)
			break
		}
	}
	m.departed++
	m.events++
	m.reg.Counter("fleet.macro.departed").Inc()
}

// integrate advances every host through [t0, t1). The per-host work is
// independent — each VM belongs to one host — so it shards across contiguous
// host ranges. All cross-host reductions happen serially afterwards, in host
// order, so shard count cannot perturb a single float operation.
func (m *macroSim) integrate(t0, t1 sim.Time) {
	shards := m.cfg.Shards
	if shards > len(m.hosts) {
		shards = len(m.hosts)
	}
	per := (len(m.hosts) + shards - 1) / shards
	if shards == 1 {
		m.completions[0] = m.integrateRange(0, len(m.hosts), t0, t1, m.completions[0][:0])
	} else {
		var wg sync.WaitGroup
		for s := 0; s < shards; s++ {
			lo := s * per
			hi := lo + per
			if hi > len(m.hosts) {
				hi = len(m.hosts)
			}
			if lo >= hi {
				m.completions[s] = m.completions[s][:0]
				continue
			}
			wg.Add(1)
			go func(s, lo, hi int) {
				defer wg.Done()
				m.completions[s] = m.integrateRange(lo, hi, t0, t1, m.completions[s][:0])
			}(s, lo, hi)
		}
		wg.Wait()
	}

	// Serial merge, shard order == host order: batch completions re-enter
	// the departure queue with their boundary departure time.
	var events uint64
	for i := range m.hosts {
		events += uint64(len(m.hosts[i].vms)) + 1
	}
	m.events += events
	for s := 0; s < shards; s++ {
		for _, id := range m.completions[s] {
			vm := &m.vms[id]
			// depart holds the analytic completion instant; the makespan is
			// the latest one seen. The actual departure quantizes to the
			// epoch boundary.
			if vm.depart > m.makespan {
				m.makespan = vm.depart
			}
			vm.depart = t1
		}
	}
	if len(m.departQ) > 1 {
		sort.SliceStable(m.departQ, func(a, b int) bool {
			va, vb := &m.vms[m.departQ[a]], &m.vms[m.departQ[b]]
			if va.depart != vb.depart {
				return va.depart < vb.depart
			}
			return m.departQ[a] < m.departQ[b]
		})
	}

	// Degree of imbalance over hosts with any capacity, serial in host order.
	minU, maxU, sumU := math.Inf(1), math.Inf(-1), 0.0
	sumSteal, sumCommitted, alive := 0.0, 0.0, 0.0
	for i := range m.hosts {
		h := &m.hosts[i]
		u := h.util
		if u < minU {
			minU = u
		}
		if u > maxU {
			maxU = u
		}
		sumU += u
		sumSteal += h.stealEMA
		sumCommitted += float64(h.committed)
		alive += float64(len(h.vms))
	}
	n := float64(len(m.hosts))
	di := 0.0
	if sumU > 0 {
		di = (maxU - minU) / (sumU / n)
		m.diSum += di
		m.diEpochs++
		if di > m.diMax {
			m.diMax = di
		}
	}
	m.agg = macroAgg{
		alive:        alive,
		committed:    sumCommitted,
		utilMean:     sumU / n,
		utilMax:      maxU,
		di:           di,
		stealEMAMean: sumSteal / n,
	}
	m.reg.Counter("fleet.macro.epochs").Inc()
}

// integrateRange advances hosts [lo, hi) through [t0, t1), appending batch
// VMs whose budget drained to done. Touches only state owned by those hosts.
func (m *macroSim) integrateRange(lo, hi int, t0, t1 sim.Time, done []int32) []int32 {
	dt := t1.Sub(t0).Seconds()
	const alpha = 0.4 // same smoothing the micro fleet's steal EMA uses
	for i := lo; i < hi; i++ {
		h := &m.hosts[i]
		demand := 0.0
		for _, id := range h.vms {
			vm := &m.vms[id]
			demand += float64(vm.vcpus) * vm.demand
		}
		rho := 1.0
		if demand > float64(h.threads) {
			rho = float64(h.threads) / demand
		}
		util := demand / float64(h.threads)
		if util > 1 {
			util = 1
		}
		h.util = util
		target := 0.0
		if demand > 0 {
			target = 1 - rho
		}
		h.stealEMA = alpha*target + (1-alpha)*h.stealEMA
		for _, id := range h.vms {
			vm := &m.vms[id]
			span := dt
			if vm.batch && !vm.done {
				rate := rho * h.speed // per-vCPU progress per second
				if need := vm.work / rate; need < span {
					span = need
					vm.work = 0
					vm.done = true
					// Analytic completion instant; integrate() lifts it
					// into the makespan then quantizes the departure.
					vm.depart = t0.Add(sim.Duration(span * float64(sim.Second)))
					done = append(done, id)
				} else {
					vm.work -= rate * span
				}
			} else if vm.done {
				span = 0 // budget drained in a prior epoch; idle until boundary
			}
			req := float64(vm.vcpus) * vm.demand * span
			vm.served += req * rho
			vm.steal += req * (1 - rho)
		}
	}
	return done
}

// result finalizes counters, percentiles and the canonical snapshot.
func (m *macroSim) result() *MacroResult {
	fracs := make([]float64, 0, m.placed)
	totalSteal := 0.0
	for i := range m.vms {
		vm := &m.vms[i]
		if vm.vcpus == 0 {
			continue // never placed
		}
		totalSteal += vm.steal
		if tot := vm.steal + vm.served; tot > 0 {
			fracs = append(fracs, vm.steal/tot)
		}
	}
	sort.Float64s(fracs)
	p95 := 0.0
	if len(fracs) > 0 {
		idx := (len(fracs) * 95) / 100
		if idx >= len(fracs) {
			idx = len(fracs) - 1
		}
		p95 = fracs[idx]
	}
	diMean := 0.0
	if m.diEpochs > 0 {
		diMean = m.diSum / float64(m.diEpochs)
	}
	return &MacroResult{
		Policy:          m.cfg.Policy.Name(),
		Hosts:           len(m.hosts),
		Arrivals:        len(m.cfg.Trace.VMs),
		Placed:          m.placed,
		Rejected:        m.rejected,
		Lifetimes:       m.departed,
		Events:          m.events,
		DIMean:          diMean,
		DIMax:           m.diMax,
		Makespan:        m.makespan,
		P95Steal:        p95,
		TotalStealHours: totalSteal / 3600,
		Snapshot:        m.snapshot(),
		Registry:        m.reg,
		Telemetry:       m.rec,
	}
}

// snapshot encodes final state canonically: every host's commitment, steal
// EMA and utilization, every VM's steal/served/work bits, and the scalar
// outcome counters. Two runs that diverge anywhere — one float op, one
// placement, one departure order — produce different bytes.
func (m *macroSim) snapshot() []byte {
	buf := make([]byte, 0, 8*(3*len(m.hosts)+4*len(m.vms)+8))
	u64 := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		buf = append(buf, b[:]...)
	}
	f64 := func(v float64) { u64(math.Float64bits(v)) }
	for i := range m.hosts {
		h := &m.hosts[i]
		u64(uint64(uint32(h.committed)))
		f64(h.stealEMA)
		f64(h.util)
	}
	for i := range m.vms {
		vm := &m.vms[i]
		f64(vm.steal)
		f64(vm.served)
		f64(vm.work)
		flags := uint64(vm.host) << 8
		if vm.alive {
			flags |= 1
		}
		if vm.done {
			flags |= 2
		}
		u64(flags)
	}
	u64(uint64(m.placed))
	u64(uint64(m.rejected))
	u64(uint64(m.departed))
	u64(uint64(m.makespan))
	f64(m.diSum)
	f64(m.diMax)
	u64(uint64(m.diEpochs))
	u64(m.events)
	return buf
}

// SnapshotDigest returns a short FNV-64a hex digest of a snapshot, for logs
// and reports.
func SnapshotDigest(snap []byte) string {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, b := range snap {
		h ^= uint64(b)
		h *= prime
	}
	return fmt.Sprintf("%016x", h)
}

// macroSource samples the fleet-wide aggregates after each epoch.
type macroSource struct{ m *macroSim }

// Collect implements telemetry.Source. Aggregate-only by design: at 1024
// hosts, per-host series would defeat the recorder's memory bound.
func (s macroSource) Collect(now sim.Time, emit func(string, float64)) {
	a := &s.m.agg
	emit("fleet.macro.vms_alive", a.alive)
	emit("fleet.macro.committed", a.committed)
	emit("fleet.macro.util_mean", a.utilMean)
	emit("fleet.macro.util_max", a.utilMax)
	emit("fleet.macro.di", a.di)
	emit("fleet.macro.steal_ema_mean", a.stealEMAMean)
}
