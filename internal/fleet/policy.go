package fleet

// HostInfo is the per-host snapshot a placement policy sees. Policies are
// control-plane code: they consult fleet bookkeeping (commitments) and
// guest-observable telemetry (steal), never host physics.
type HostInfo struct {
	Index     int
	Committed int     // vCPUs currently committed
	Capacity  int     // admission bound (overcommit * threads)
	VMs       int     // alive VMs placed here
	StealRate float64 // EMA steal fraction per thread, 0..~1
}

// Fits reports whether a VM of the given size can be admitted.
func (h HostInfo) Fits(vcpus int) bool { return h.Committed+vcpus <= h.Capacity }

// Policy decides where an arriving VM goes. Place returns a host index that
// Fits the request, or -1 to reject. Implementations must be deterministic
// pure functions of the snapshot: ranked policies break every tie toward the
// lowest host ID, snapshots arrive in stable host-ID order (never map
// iteration), and heterogeneous Capacity values must not disturb either
// property — the cluster may mix host classes (see internal/cloudgen).
// Policies that also implement IndexedPolicy (see index.go) are placed
// through a HostIndex in O(log hosts) instead of this linear scan.
type Policy interface {
	Name() string
	Place(hosts []HostInfo, vcpus int) int
}

// FirstFit packs: the lowest-indexed host with room wins. The classic
// fragmentation-averse default — and the policy that piles neighbours onto
// the same threads while later hosts idle.
type FirstFit struct{}

func (FirstFit) Name() string { return "first-fit" }

func (FirstFit) Place(hosts []HostInfo, vcpus int) int {
	for _, h := range hosts {
		if h.Fits(vcpus) {
			return h.Index
		}
	}
	return -1
}

// LeastLoaded spreads (worst-fit): the fitting host with the fewest
// committed vCPUs wins, ties to the lower index — explicitly by absolute
// commitments, not utilization, so on a heterogeneous fleet equal-committed
// hosts of different capacities still tie and resolve by host ID. Balances
// *promised* capacity, blind to how much of it is actually being fought
// over.
type LeastLoaded struct{}

func (LeastLoaded) Name() string { return "least-loaded" }

func (LeastLoaded) Place(hosts []HostInfo, vcpus int) int {
	best := -1
	for _, h := range hosts {
		if !h.Fits(vcpus) {
			continue
		}
		if best < 0 || h.Committed < hosts[best].Committed {
			best = h.Index
		}
	}
	return best
}

// StealAware is the fleet-level analogue of vSched's insight: commitments
// lie the same way the vCPU abstraction lies, so consult measured steal.
// Each fitting host is scored stealRate + 0.1*utilization and the lowest
// score wins (ties to the lower index): measured contention dominates, and
// the small utilization term keeps placement spread while the steal signal
// is still warming up — without it, an idle-but-overcommitted host would
// soak up arrivals until the damage shows up in telemetry one EMA late.
// A batch-heavy host repels new tenants even when its commitment count
// looks moderate. Utilization is relative to each host's own Capacity, so
// heterogeneous fleets rank fairly; exact score ties (same steal, same
// utilization) resolve to the lower host ID via the strict comparison.
type StealAware struct{}

func (StealAware) Name() string { return "steal-aware" }

func (StealAware) Place(hosts []HostInfo, vcpus int) int {
	best := -1
	bestScore := 0.0
	for _, h := range hosts {
		if !h.Fits(vcpus) {
			continue
		}
		score := h.StealRate + 0.1*float64(h.Committed)/float64(h.Capacity)
		if best < 0 || score < bestScore {
			best, bestScore = h.Index, score
		}
	}
	return best
}
