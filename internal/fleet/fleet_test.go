package fleet

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vsched/internal/host"
	"vsched/internal/sim"
	"vsched/internal/telemetry"
)

func testHostConfig() host.Config {
	cfg := host.DefaultConfig()
	cfg.Sockets = 1
	cfg.CoresPerSocket = 2
	cfg.ThreadsPerCore = 2
	return cfg
}

func testMix() []TypeMix {
	return []TypeMix{
		{Type: VMType{Name: "svc", VCPUs: 2, Service: true, ServiceMean: 300 * sim.Microsecond},
			Weight: 2, MeanLifetime: 1500 * sim.Millisecond},
		{Type: VMType{Name: "batch", VCPUs: 2, BatchWork: sim.Millisecond},
			Weight: 1, MeanLifetime: 1200 * sim.Millisecond},
	}
}

func testConfig(seed int64, pol Policy, vs bool) Config {
	return Config{
		Seed:       seed,
		Hosts:      4,
		HostConfig: testHostConfig(),
		Overcommit: 2.0,
		Policy:     pol,
		VSched:     vs,
		Arrivals:   GenerateArrivals(seed, 12, 1500*sim.Millisecond, testMix()),
		Horizon:    2500 * sim.Millisecond,
		Migration: MigrationConfig{
			Every:    250 * sim.Millisecond,
			MinSteal: 0.05,
			Margin:   0.02,
			Downtime: 10 * sim.Millisecond,
		},
	}
}

func TestPolicyDecisions(t *testing.T) {
	hosts := []HostInfo{
		{Index: 0, Committed: 6, Capacity: 8, StealRate: 0.30},
		{Index: 1, Committed: 2, Capacity: 8, StealRate: 0.10},
		{Index: 2, Committed: 4, Capacity: 8, StealRate: 0.05},
	}
	if got := (FirstFit{}).Place(hosts, 2); got != 0 {
		t.Fatalf("first-fit chose %d, want 0", got)
	}
	if got := (FirstFit{}).Place(hosts, 4); got != 1 {
		t.Fatalf("first-fit (no room on 0) chose %d, want 1", got)
	}
	if got := (LeastLoaded{}).Place(hosts, 2); got != 1 {
		t.Fatalf("least-loaded chose %d, want 1", got)
	}
	if got := (StealAware{}).Place(hosts, 2); got != 2 {
		t.Fatalf("steal-aware chose %d, want 2", got)
	}
	// Steal ties break toward fewer commitments.
	hosts[1].StealRate = 0.05
	if got := (StealAware{}).Place(hosts, 2); got != 1 {
		t.Fatalf("steal-aware tie-break chose %d, want 1", got)
	}
	full := []HostInfo{{Index: 0, Committed: 8, Capacity: 8}}
	for _, p := range []Policy{FirstFit{}, LeastLoaded{}, StealAware{}} {
		if got := p.Place(full, 1); got != -1 {
			t.Fatalf("%s placed on a full cluster (host %d)", p.Name(), got)
		}
	}
}

func TestLifecycleAndOccupancy(t *testing.T) {
	f := New(testConfig(7, FirstFit{}, false))
	res := f.Run()
	if res.Placed == 0 {
		t.Fatal("nothing placed")
	}
	if res.Placed+res.Rejected != res.Arrivals {
		t.Fatalf("placed %d + rejected %d != arrivals %d", res.Placed, res.Rejected, res.Arrivals)
	}
	if res.Departed == 0 {
		t.Fatal("no VM departed despite finite lifetimes shorter than the horizon")
	}
	if res.Ops == 0 || res.E2E.Count() == 0 {
		t.Fatalf("no work measured: ops=%d e2e=%d", res.Ops, res.E2E.Count())
	}
	// Occupancy must balance: committed == live vCPUs, per host.
	cap := f.capacity()
	for _, hs := range f.hosts {
		live := 0
		for _, vm := range hs.vms {
			if !vm.alive {
				t.Fatalf("dead VM %s still listed on host %d", vm.name, hs.index)
			}
			live += vm.typ.VCPUs
		}
		if hs.committed != live {
			t.Fatalf("host %d committed=%d but live vCPUs=%d", hs.index, hs.committed, live)
		}
		if hs.committed > cap {
			t.Fatalf("host %d overcommitted beyond capacity: %d > %d", hs.index, hs.committed, cap)
		}
		sum := 0
		for _, o := range hs.occ {
			sum += o
		}
		if sum != hs.committed {
			t.Fatalf("host %d thread occupancy sums to %d, committed %d", hs.index, sum, hs.committed)
		}
	}
}

func TestMigrationMovesEntitiesAcrossHosts(t *testing.T) {
	// A packing policy under contention-driven migration must move someone.
	cfg := testConfig(11, FirstFit{}, false)
	f := New(cfg)
	res := f.Run()
	if res.Migrations == 0 {
		t.Fatal("migration controller never fired on a packed first-fit cluster")
	}
	// Every alive VM's vCPU entities must sit on threads of its recorded host.
	for _, vm := range f.vms {
		if !vm.alive {
			continue
		}
		hs := f.hosts[vm.hostIdx]
		for i, v := range vm.gvm.VCPUs() {
			th := v.Entity().Thread()
			if th != hs.h.Thread(vm.threads[i]) {
				t.Fatalf("%s vCPU %d entity on wrong thread after migration", vm.name, i)
			}
		}
	}
}

func TestRerunIsIdentical(t *testing.T) {
	run := func() *Result { return New(testConfig(42, StealAware{}, true)).Run() }
	a, b := run(), run()
	if a.Placed != b.Placed || a.Rejected != b.Rejected || a.Departed != b.Departed ||
		a.Migrations != b.Migrations || a.Ops != b.Ops || a.Steal != b.Steal ||
		a.Events != b.Events {
		t.Fatalf("rerun diverged:\n%+v\nvs\n%+v", a, b)
	}
	if a.E2E.Count() != b.E2E.Count() || a.E2E.P50() != b.E2E.P50() || a.E2E.P95() != b.E2E.P95() {
		t.Fatal("rerun produced a different latency distribution")
	}
}

func TestShardedMatchesSerial(t *testing.T) {
	var cfgs []Config
	for _, pol := range []Policy{FirstFit{}, LeastLoaded{}, StealAware{}} {
		for _, vs := range []bool{false, true} {
			cfgs = append(cfgs, testConfig(42, pol, vs))
		}
	}
	serial := RunAll(cfgs, 1, nil)
	parallel := RunAll(cfgs, 4, nil)
	for i := range cfgs {
		s, p := serial[i], parallel[i]
		if s.Placed != p.Placed || s.Migrations != p.Migrations || s.Ops != p.Ops ||
			s.Steal != p.Steal || s.Events != p.Events ||
			s.E2E.P50() != p.E2E.P50() || s.E2E.P95() != p.E2E.P95() {
			t.Fatalf("cell %d (%s/%s) differs between serial and sharded runs:\n%+v\nvs\n%+v",
				i, s.Policy, s.Guest, s, p)
		}
	}
}

// TestFleetAttribution covers the cloud-layer integration of the latency
// profiler: one profile per placed VM, conservation fleet-wide (organic
// contention, live migration and all), fleet.attrib.* gauges, byte-identical
// reruns, and strict observation inertness versus a profiler-free run.
func TestFleetAttribution(t *testing.T) {
	base := New(testConfig(11, FirstFit{}, false)).Run()
	if base.Attribution != nil {
		t.Fatal("attribution off must leave Result.Attribution nil")
	}
	run := func() (*Fleet, *Result) {
		cfg := testConfig(11, FirstFit{}, false)
		cfg.Attribution = true
		f := New(cfg)
		return f, f.Run()
	}
	f, res := run()

	// Observation is inert: every simulation-derived number matches the
	// profiler-free run bit for bit.
	if res.Placed != base.Placed || res.Ops != base.Ops || res.Steal != base.Steal ||
		res.Events != base.Events || res.Migrations != base.Migrations ||
		res.E2E.Count() != base.E2E.Count() || res.E2E.P95() != base.E2E.P95() {
		t.Fatalf("attribution perturbed the simulation: placed %d/%d ops %d/%d events %d/%d",
			res.Placed, base.Placed, res.Ops, base.Ops, res.Events, base.Events)
	}
	if res.Migrations == 0 {
		t.Fatal("rig must exercise live migration (profiles have to survive it)")
	}
	if len(res.Attribution) != res.Placed {
		t.Fatalf("want one profile per placed VM (%d), got %d", res.Placed, len(res.Attribution))
	}
	flat := f.Registry().Snapshot().Flatten()
	spans := 0
	for name, p := range res.Attribution {
		if err := p.CheckConservation(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		spans += len(p.Spans)
		for _, key := range []string{"steal_wait_ns", "run_ns", "spans"} {
			if _, ok := flat["fleet.attrib."+name+"."+key]; !ok {
				t.Fatalf("registry missing gauge fleet.attrib.%s.%s", name, key)
			}
		}
	}
	if spans == 0 {
		t.Fatal("no spans reconstructed fleet-wide")
	}

	// Rerun determinism, down to the flattened per-VM profiles.
	_, res2 := run()
	if len(res2.Attribution) != len(res.Attribution) {
		t.Fatalf("rerun profile count diverged: %d vs %d", len(res2.Attribution), len(res.Attribution))
	}
	for name, p := range res.Attribution {
		q, ok := res2.Attribution[name]
		if !ok {
			t.Fatalf("rerun lost profile for %s", name)
		}
		fa, fb := p.Flatten(), q.Flatten()
		for k, v := range fa {
			if fb[k] != v {
				t.Fatalf("%s: rerun diverged on %s: %v vs %v", name, k, v, fb[k])
			}
		}
	}
}

// TestNoSyntheticContenders pins the package's contract: fleet contention is
// organic (colocated VMs), never a host.Contender.
func TestNoSyntheticContenders(t *testing.T) {
	files, err := filepath.Glob("*.go")
	if err != nil {
		t.Fatal(err)
	}
	for _, file := range files {
		if strings.HasSuffix(file, "_test.go") {
			continue
		}
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(string(src), "Contender") || strings.Contains(string(src), "NewStressor") {
			t.Fatalf("%s references synthetic contenders; fleet contention must be organic", file)
		}
	}
}

// TestTelemetryObservationInert: attaching the flight recorder must not
// perturb the simulation — every result field except the recorder itself is
// identical with telemetry on and off, and a rerun with telemetry produces a
// byte-identical deterministic snapshot.
func TestTelemetryObservationInert(t *testing.T) {
	withTelem := func() *Result {
		cfg := testConfig(7, StealAware{}, true)
		cfg.Telemetry = &telemetry.Config{Interval: 20 * sim.Millisecond}
		return New(cfg).Run()
	}
	off := New(testConfig(7, StealAware{}, true)).Run()
	on := withTelem()
	if on.Telemetry == nil {
		t.Fatal("telemetry config set but Result.Telemetry is nil")
	}
	if off.Telemetry != nil {
		t.Fatal("telemetry not configured but Result.Telemetry is set")
	}
	// The recorder's sampling ticks are engine events, so Events grows; every
	// simulation outcome must be untouched.
	if on.Placed != off.Placed || on.Rejected != off.Rejected || on.Departed != off.Departed ||
		on.Migrations != off.Migrations || on.Ops != off.Ops || on.Steal != off.Steal {
		t.Fatalf("telemetry perturbed the run:\non  %+v\noff %+v", on, off)
	}
	if on.Events < off.Events {
		t.Fatalf("telemetry run fired fewer events (%d) than baseline (%d)", on.Events, off.Events)
	}
	if on.E2E.Count() != off.E2E.Count() || on.E2E.P95() != off.E2E.P95() {
		t.Fatal("telemetry perturbed the latency distribution")
	}

	snap := func(r *Result) string {
		var b strings.Builder
		if err := r.Telemetry.Snapshot(false).WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if a, b := snap(on), snap(withTelem()); a != b {
		t.Fatalf("telemetry snapshot not reproducible across reruns (%d vs %d bytes)", len(a), len(b))
	}
	if len(on.Telemetry.Series(false)) == 0 || on.Telemetry.Samples() == 0 {
		t.Fatal("recorder attached but captured nothing")
	}
}
