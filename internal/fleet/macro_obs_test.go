package fleet

import (
	"bytes"
	"testing"

	"vsched/internal/faults"
	"vsched/internal/progress"
	"vsched/internal/sim"
	"vsched/internal/telemetry"
)

// TestMacroObsInert is the fleet-tier half of the determinism gate:
// attaching the progress publisher (bus + mirror) must leave the canonical
// snapshot and the telemetry snapshot byte-identical, faults and recovery
// included.
func TestMacroObsInert(t *testing.T) {
	trace := macroTestTrace(19)
	schedv := faults.Generate(19, len(trace.Hosts), trace.Horizon, faults.Config{
		CrashMTBF: 20 * 3600 * sim.Second,
	})
	base := MacroConfig{
		Trace: trace, Policy: StealAware{}, Shards: 4,
		Telemetry: &telemetry.Config{Interval: 30 * sim.Second},
		Faults:    &schedv,
		Recovery:  faults.RecoveryConfig{Enabled: true},
	}
	detached := RunMacro(base)

	attached := base
	attached.Obs = progress.NewPublisher(4096)
	attached.ObsLabel = "macro-obs-test"
	observed := RunMacro(attached)

	if !bytes.Equal(detached.Snapshot, observed.Snapshot) {
		t.Fatalf("attaching obs changed the simulation: %s vs %s",
			SnapshotDigest(detached.Snapshot), SnapshotDigest(observed.Snapshot))
	}
	var dj, oj bytes.Buffer
	if err := detached.Telemetry.Snapshot(false).WriteJSON(&dj); err != nil {
		t.Fatal(err)
	}
	if err := observed.Telemetry.Snapshot(false).WriteJSON(&oj); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dj.Bytes(), oj.Bytes()) {
		t.Fatal("attaching obs changed the telemetry snapshot bytes")
	}
}

// TestMacroObsStream drains the published events and reconciles them
// against the run outcome: every epoch ledger conserves, the fault/recovery
// event counts match the result counters, and run_done matches the final
// ledger exactly.
func TestMacroObsStream(t *testing.T) {
	trace := macroTestTrace(23)
	schedv := faults.Generate(23, len(trace.Hosts), trace.Horizon, faults.Config{
		CrashMTBF: 12 * 3600 * sim.Second,
	})
	pub := progress.NewPublisher(1 << 16)
	res := RunMacro(MacroConfig{
		Trace: trace, Policy: LeastLoaded{}, Shards: 3,
		Faults:   &schedv,
		Recovery: faults.RecoveryConfig{Enabled: true},
		Obs:      pub,
		ObsLabel: "stream-test",
	})

	reader := pub.Bus.NewReader(true)
	buf := make([]progress.Event, 256)
	var epochs, fault, recov int
	var runStart, runDone *progress.Event
	for {
		n := reader.Poll(buf)
		if n == 0 {
			break
		}
		for i := range buf[:n] {
			ev := buf[i]
			switch ev.Kind {
			case progress.KindRunStart:
				runStart = &ev
			case progress.KindEpoch:
				epochs++
				if ev.Admitted != ev.Completed+ev.Lost+ev.Rejected+ev.Running+ev.Pending {
					t.Fatalf("epoch %d ledger does not conserve: %+v", ev.Epoch, ev)
				}
				if got := pub.Bus.LabelName(ev.Label); got != "stream-test" {
					t.Fatalf("epoch label %q", got)
				}
			case progress.KindFault:
				fault++
				if d := pub.Bus.LabelName(ev.Detail); d != "crash" && d != "brownout" && d != "stall" {
					t.Fatalf("fault detail %q", d)
				}
			case progress.KindRecovery:
				recov++
			case progress.KindRunDone:
				runDone = &ev
			}
		}
	}
	if reader.Dropped() != 0 {
		t.Fatalf("dropped %d events with a roomy ring", reader.Dropped())
	}
	if runStart == nil || runStart.Total != int64(res.Arrivals) {
		t.Fatalf("run_start: %+v (arrivals %d)", runStart, res.Arrivals)
	}
	if epochs == 0 {
		t.Fatal("no epoch events")
	}
	if want := res.Crashes + res.Brownouts + res.Stalls; fault != want {
		t.Fatalf("fault events %d != applied faults %d", fault, want)
	}
	if recov != res.Restarts {
		t.Fatalf("recovery events %d != restarts %d", recov, res.Restarts)
	}
	if runDone == nil {
		t.Fatal("no run_done event")
	}
	if int(runDone.Completed) != res.Lifetimes || int(runDone.Lost) != res.Lost ||
		int(runDone.Rejected) != res.Rejected || int(runDone.Running) != res.RunningAtEnd ||
		int(runDone.Pending) != res.PendingAtEnd {
		t.Fatalf("run_done %+v does not match result %+v", runDone, res)
	}
	if runDone.Admitted != runDone.Completed+runDone.Lost+runDone.Rejected+runDone.Running+runDone.Pending {
		t.Fatalf("final ledger does not conserve: %+v", runDone)
	}
	// The mirror carries the final registry state.
	var placed float64 = -1
	for _, sm := range pub.Mirror.Load() {
		if sm.Fam == progress.FamMetric && sm.Name == "fleet.macro.placed" {
			placed = sm.Value
		}
	}
	if placed != float64(res.Placed) {
		t.Fatalf("mirror fleet.macro.placed = %v, want %d", placed, res.Placed)
	}
}
