package fleet

import "vsched/internal/vtrace"

// The live-migration controller. Placement decisions age: a host that was
// quiet when a VM landed can turn into a steal hotspot as neighbours arrive.
// Every Migration.Every the controller compares smoothed per-host steal
// rates and moves one VM per pass from the worst hotspot to the calmest
// fitting host — the same telemetry the steal-aware policy uses at admission
// time, applied continuously.
//
// Mechanics: each vCPU entity is blocked (stop-and-copy brownout), re-homed
// onto a thread of the destination host — legal because every fleet host has
// an identical topology, so thread IDs mean the same thing everywhere — and
// woken after Downtime. The guest never notices beyond a burst of steal
// time and possibly different neighbours, which is exactly what its vSched
// instance is built to re-probe.

// migrationTick runs one controller pass and re-arms itself.
func (f *Fleet) migrationTick() {
	cfg := f.cfg.Migration
	f.migrateOnce()
	f.eng.After(cfg.Every, f.migrationTick)
}

// migrateOnce moves at most one VM from the hottest host to the calmest
// fitting one. Deterministic: hosts scan in index order, candidates in
// placement order.
func (f *Fleet) migrateOnce() {
	cfg := f.cfg.Migration
	src := -1
	for i, hs := range f.hosts {
		if len(hs.vms) == 0 || hs.stealEMA < cfg.MinSteal {
			continue
		}
		if src < 0 || hs.stealEMA > f.hosts[src].stealEMA {
			src = i
		}
	}
	if src < 0 {
		return
	}
	vm := f.pickMigrant(f.hosts[src])
	if vm == nil {
		return
	}
	dst := -1
	for i, hs := range f.hosts {
		if i == src || hs.committed+vm.typ.VCPUs > f.effCap(hs) {
			continue
		}
		if hs.stealEMA > f.hosts[src].stealEMA-cfg.Margin {
			continue
		}
		if dst < 0 || hs.stealEMA < f.hosts[dst].stealEMA ||
			(hs.stealEMA == f.hosts[dst].stealEMA && hs.committed < f.hosts[dst].committed) {
			dst = i
		}
	}
	if dst < 0 {
		return
	}
	f.moveVM(vm, dst)
}

// pickMigrant chooses the cheapest VM to move: fewest vCPUs, ties to the
// most recently placed (its cache state is coldest). VMs inside their
// post-move cooldown are exempt — without this, a hotspot that flips between
// two hosts faster than the steal EMAs settle shuttles the same VM back and
// forth (see TestMigrationCooldownStopsPingPong).
func (f *Fleet) pickMigrant(hs *hostState) *fleetVM {
	cool := f.cfg.Migration.Cooldown
	now := f.eng.Now()
	var best *fleetVM
	for _, vm := range hs.vms {
		if vm.migrating {
			continue
		}
		if cool > 0 && vm.moved && now.Sub(vm.lastMove) < cool {
			continue
		}
		if best == nil || vm.typ.VCPUs < best.typ.VCPUs ||
			(vm.typ.VCPUs == best.typ.VCPUs && vm.id > best.id) {
			best = vm
		}
	}
	return best
}

// moveVM live-migrates vm to the host at index dst.
func (f *Fleet) moveVM(vm *fleetVM, dst int) {
	src := f.hosts[vm.hostIdx]
	d := f.hosts[dst]
	src.release(vm.threads)
	src.removeVM(vm)
	f.reindex(src)
	newThreads := d.pickThreads(vm.typ.VCPUs)
	for i, v := range vm.gvm.VCPUs() {
		ent := v.Entity()
		ent.Block()
		ent.Migrate(d.h.Thread(newThreads[i]))
	}
	from := vm.hostIdx
	vm.hostIdx = dst
	vm.threads = newThreads
	vm.migrating = true
	vm.moved = true
	vm.lastMove = f.eng.Now()
	d.vms = append(d.vms, vm)
	f.reindex(d)
	f.migrations++
	f.reg.Counter("fleet.migrations").Inc()
	f.cfg.Tracer.Emit(f.eng.Now(), vtrace.KindVMMigrate, vm.name,
		int64(from), int64(dst), int64(vm.typ.VCPUs))

	f.eng.After(f.cfg.Migration.Downtime, func() {
		vm.migrating = false
		if !vm.alive {
			return
		}
		for _, v := range vm.gvm.VCPUs() {
			v.Entity().Wake()
		}
	})
}
