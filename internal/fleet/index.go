package fleet

import (
	"fmt"
	"math"
)

// HostIndex replaces the O(hosts) placement scan with a tournament tree: an
// array-backed complete binary tree whose leaves are hosts (in stable host-ID
// order) and whose internal nodes aggregate two things about their subtree —
// the maximum free capacity (can anything down there fit this VM?) and the
// minimum policy score (could anything down there beat the best host found so
// far?).
//
// Queries:
//
//   - FirstFit(v): the lowest-indexed host with free >= v, by descending into
//     the leftmost fitting subtree. Exactly O(log n).
//   - BestScore(v): the fitting host with the strictly smallest score, ties
//     to the lowest index, by left-first branch-and-bound descent: a subtree
//     is visited only if something there fits AND its best score beats the
//     best found so far. Worst case O(n) on adversarial score layouts, but
//     measured on fleet churn it stays near O(log n) because score and free
//     capacity correlate (see DESIGN.md and BENCH_fleet.json).
//
// Updates (occupancy or score changes on one host) rewrite one leaf and its
// root path: O(log n). The index holds per-host capacity, so heterogeneous
// fleets work without the policies knowing.
//
// Determinism: queries read only the tree, tie-break by construction toward
// lower host IDs (left-first descent, strict-inequality pruning), and the
// tree layout is a pure function of the host list — no map iteration
// anywhere. BestScore reproduces the linear scan's "score < best" loop
// bit-for-bit as long as scores are computed by the same expression (the
// differential test in index_test.go pins this).
type HostIndex struct {
	n    int // hosts (leaves in use)
	size int // leaf capacity, power of two
	// free[i] and score[i] are the per-node aggregates; leaves live at
	// [size, size+n). Unused leaves hold free=-1, score=+Inf so they never
	// fit and never win.
	free     []int32
	score    []float64
	capacity []int32 // per host, leaf order
}

// NewHostIndex builds an index over len(caps) hosts with the given per-host
// admission capacities (committed starts at 0, score at 0).
func NewHostIndex(caps []int) *HostIndex {
	n := len(caps)
	if n == 0 {
		panic("fleet: host index needs at least one host")
	}
	size := 1
	for size < n {
		size *= 2
	}
	ix := &HostIndex{
		n:        n,
		size:     size,
		free:     make([]int32, 2*size),
		score:    make([]float64, 2*size),
		capacity: make([]int32, n),
	}
	for i := range ix.free {
		ix.free[i] = -1
		ix.score[i] = math.Inf(1)
	}
	for i, c := range caps {
		if c < 0 {
			panic(fmt.Sprintf("fleet: host %d capacity %d negative", i, c))
		}
		ix.capacity[i] = int32(c)
		ix.free[size+i] = int32(c)
		ix.score[size+i] = 0
	}
	for i := size - 1; i >= 1; i-- {
		ix.pull(i)
	}
	return ix
}

// pull recomputes one internal node from its children.
func (ix *HostIndex) pull(i int) {
	l, r := 2*i, 2*i+1
	f := ix.free[l]
	if ix.free[r] > f {
		f = ix.free[r]
	}
	s := ix.score[l]
	if ix.score[r] < s {
		s = ix.score[r]
	}
	ix.free[i], ix.score[i] = f, s
}

// Len returns the number of hosts indexed.
func (ix *HostIndex) Len() int { return ix.n }

// Capacity returns host i's admission capacity.
func (ix *HostIndex) Capacity(i int) int { return int(ix.capacity[i]) }

// Free returns host i's current free capacity.
func (ix *HostIndex) Free(i int) int { return int(ix.free[ix.size+i]) }

// Update sets host i's committed occupancy and policy score, rewriting the
// leaf's root path.
func (ix *HostIndex) Update(i, committed int, score float64) {
	leaf := ix.size + i
	ix.free[leaf] = ix.capacity[i] - int32(committed)
	ix.score[leaf] = score
	for leaf /= 2; leaf >= 1; leaf /= 2 {
		ix.pull(leaf)
	}
}

// FirstFit returns the lowest-indexed host with free >= v, or -1.
func (ix *HostIndex) FirstFit(v int) int {
	need := int32(v)
	if ix.free[1] < need {
		return -1
	}
	i := 1
	for i < ix.size {
		if ix.free[2*i] >= need {
			i = 2 * i
		} else {
			i = 2*i + 1
		}
	}
	return i - ix.size
}

// BestScore returns the fitting host with the smallest score (ties to the
// lowest host ID), or -1 when nothing fits. Matches the linear policies'
// strict `score < best` comparison exactly.
func (ix *HostIndex) BestScore(v int) int {
	need := int32(v)
	best := math.Inf(1)
	bestIdx := -1
	// Explicit stack, left child pushed last so it pops first: lower host
	// IDs are examined before equal-scoring higher ones.
	var stack [64]int
	sp := 0
	if ix.free[1] >= need {
		stack[sp] = 1
		sp++
	}
	for sp > 0 {
		sp--
		i := stack[sp]
		if ix.free[i] < need || ix.score[i] >= best {
			continue
		}
		if i >= ix.size {
			best, bestIdx = ix.score[i], i-ix.size
			continue
		}
		stack[sp] = 2*i + 1
		stack[sp+1] = 2 * i
		sp += 2
	}
	return bestIdx
}

// IndexedPolicy is a Policy that can place through a HostIndex instead of a
// linear snapshot scan. Score must be a pure function of the snapshot row —
// the fleet recomputes it for a host whenever that host's commitments or
// telemetry change and stores it in the index, so PlaceIndexed over fresh
// scores must agree with Place over a fresh snapshot (pinned by the
// differential test).
type IndexedPolicy interface {
	Policy
	// Score returns the value the index minimises for this host; lower is
	// better. Policies that don't rank (first-fit) return 0.
	Score(h HostInfo) float64
	// PlaceIndexed picks a fitting host from the index, or -1.
	PlaceIndexed(ix *HostIndex, vcpus int) int
}

func (FirstFit) Score(HostInfo) float64 { return 0 }

func (FirstFit) PlaceIndexed(ix *HostIndex, vcpus int) int { return ix.FirstFit(vcpus) }

func (LeastLoaded) Score(h HostInfo) float64 { return float64(h.Committed) }

func (LeastLoaded) PlaceIndexed(ix *HostIndex, vcpus int) int { return ix.BestScore(vcpus) }

func (StealAware) Score(h HostInfo) float64 {
	return h.StealRate + 0.1*float64(h.Committed)/float64(h.Capacity)
}

func (StealAware) PlaceIndexed(ix *HostIndex, vcpus int) int { return ix.BestScore(vcpus) }
