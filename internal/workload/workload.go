// Package workload provides synthetic workload generators with the
// scheduling-relevant structure of the paper's benchmark suite: Tailbench's
// small latency-sensitive request loops, PARSEC's and Splash-2x's barrier-,
// lock- and pipeline-synchronised parallel kernels, an Nginx-like server,
// Pbzip2-style pipelines, and the micro-benchmarks (sysbench, hackbench,
// fio, matmul). Generators drive the guest scheduler exactly where the real
// programs do — task sizes, blocking patterns and synchronisation topology —
// while the numerics are replaced by calibrated compute segments.
package workload

import (
	"vsched/internal/guest"
	"vsched/internal/metrics"
	"vsched/internal/sim"
)

// Env is everything a workload needs to instantiate inside a VM.
type Env struct {
	VM *guest.VM
	// Group receives the workload's normal-policy tasks; BEGroup its
	// best-effort tasks. Either may be nil, meaning the VM root group.
	Group   *guest.CGroup
	BEGroup *guest.CGroup
	// Threads overrides the benchmark's default thread count when > 0.
	Threads int
	// Nominal is the calibration constant converting nominal CPU time into
	// cycles (cycles per nanosecond at nominal frequency).
	Nominal float64
}

func (e Env) groupOpt() []guest.TaskOpt {
	if e.Group != nil {
		return []guest.TaskOpt{guest.WithGroup(e.Group)}
	}
	return nil
}

// cycles converts nominal CPU time into cycles.
func (e Env) cycles(d sim.Duration) float64 {
	n := e.Nominal
	if n <= 0 {
		n = 2.0
	}
	return n * float64(d)
}

// Instance is a running workload.
type Instance interface {
	// Start launches the workload's tasks.
	Start()
	// Name returns the benchmark name.
	Name() string
	// Ops returns completed work units (requests, iterations, events).
	Ops() uint64
	// Done reports whether a fixed-size workload has finished (always false
	// for open-ended ones).
	Done() bool
}

// LatencyInstance is implemented by request/response workloads that measure
// per-request latency.
type LatencyInstance interface {
	Instance
	// E2E, Queue and Service return the end-to-end, queueing and service
	// time histograms (nanosecond samples).
	E2E() *metrics.Histogram
	Queue() *metrics.Histogram
	Service() *metrics.Histogram
}

// Kind classifies benchmarks for the harness.
type Kind int

const (
	// Throughput workloads report ops completed.
	Throughput Kind = iota
	// Latency workloads additionally report tail latency.
	Latency
)

// Spec describes one catalogued benchmark.
type Spec struct {
	Name string
	Kind Kind
	New  func(env Env) Instance
}
