package workload

import (
	"sort"

	"vsched/internal/sim"
)

// The catalog characterises each of the paper's benchmarks by what matters
// to a scheduler: task granularity, synchronisation structure, imbalance and
// blocking behaviour. Parameters are calibrated for plausibility (task sizes
// in the range the real suites exhibit), not bit-exactness — the evaluation
// compares scheduler configurations against each other, under identical
// workloads.

// parallelSpecs: PARSEC (first ten) and Splash-2x kernels. Lock critical
// sections are sized so the lock stays below ~saturation at 32 threads
// (crit*threads < work), as in the real programs' fine-grained locking.
var parallelSpecs = []ParallelSpec{
	{Name: "blackscholes", DefaultThreads: 0, IterWork: 10 * sim.Millisecond, Imbalance: 0.10, Sync: SyncNone},
	{Name: "bodytrack", IterWork: 2 * sim.Millisecond, Imbalance: 0.30, Sync: SyncBarrier, SerialFrac: 0.10},
	{Name: "canneal", IterWork: 1 * sim.Millisecond, Imbalance: 0.20, Sync: SyncLock, CritFrac: 0.015, FootprintMB: 2.5},
	{Name: "facesim", IterWork: 4 * sim.Millisecond, Imbalance: 0.25, Sync: SyncBarrier, SerialFrac: 0.15, FootprintMB: 2},
	{Name: "fluidanimate", IterWork: 800 * sim.Microsecond, Imbalance: 0.15, Sync: SyncLock, CritFrac: 0.01},
	{Name: "freqmine", IterWork: 6 * sim.Millisecond, Imbalance: 0.20, Sync: SyncNone},
	{Name: "streamcluster", IterWork: 800 * sim.Microsecond, Imbalance: 0.15, Sync: SyncSpinBarrier, SerialFrac: 0.10, FootprintMB: 3},
	{Name: "swaptions", IterWork: 8 * sim.Millisecond, Imbalance: 0.05, Sync: SyncNone},
	{Name: "barnes", IterWork: 3 * sim.Millisecond, Imbalance: 0.30, Sync: SyncBarrier, SerialFrac: 0.10},
	{Name: "fft", IterWork: 5 * sim.Millisecond, Imbalance: 0.10, Sync: SyncBarrier, SerialFrac: 0.10},
	{Name: "lu_cb", IterWork: 2 * sim.Millisecond, Imbalance: 0.20, Sync: SyncBarrier, SerialFrac: 0.05},
	{Name: "lu_ncb", IterWork: 2 * sim.Millisecond, Imbalance: 0.35, Sync: SyncBarrier, SerialFrac: 0.05},
	{Name: "ocean_cp", IterWork: 1 * sim.Millisecond, Imbalance: 0.15, Sync: SyncBarrier, SerialFrac: 0.08, FootprintMB: 2},
	{Name: "ocean_ncp", IterWork: 1200 * sim.Microsecond, Imbalance: 0.20, Sync: SyncBarrier, SerialFrac: 0.08},
	{Name: "radiosity", IterWork: 1 * sim.Millisecond, Imbalance: 0.30, Sync: SyncLock, CritFrac: 0.0125},
	{Name: "radix", IterWork: 1500 * sim.Microsecond, Imbalance: 0.10, Sync: SyncBarrier, SerialFrac: 0.08},
	{Name: "raytrace", IterWork: 3 * sim.Millisecond, Imbalance: 0.25, Sync: SyncLock, CritFrac: 0.01},
	{Name: "volrend", IterWork: 1 * sim.Millisecond, Imbalance: 0.30, Sync: SyncSpinBarrier, FootprintMB: 1.5},
	{Name: "water_spatial", IterWork: 2 * sim.Millisecond, Imbalance: 0.15, Sync: SyncLock, CritFrac: 0.01},
}

// pipelineSpecs: pipeline-parallel programs.
var pipelineSpecs = []PipelineSpec{
	{Name: "dedup", ReadIO: 200 * sim.Microsecond, ReadCPU: 100 * sim.Microsecond,
		WorkCPU: 1500 * sim.Microsecond, WriteCPU: 100 * sim.Microsecond, FootprintMB: 2},
	{Name: "ferret", ReadIO: 150 * sim.Microsecond, ReadCPU: 200 * sim.Microsecond,
		WorkCPU: 2 * sim.Millisecond, WriteCPU: 50 * sim.Microsecond, FootprintMB: 1.5},
	{Name: "x264", ReadIO: 100 * sim.Microsecond, ReadCPU: 300 * sim.Microsecond,
		WorkCPU: 1 * sim.Millisecond, WriteCPU: 100 * sim.Microsecond},
	{Name: "pbzip2", ReadIO: 500 * sim.Microsecond, ReadCPU: 100 * sim.Microsecond,
		WorkCPU: 3 * sim.Millisecond, WriteCPU: 150 * sim.Microsecond, WriteIO: 300 * sim.Microsecond},
}

// tailSpecs: Tailbench latency-sensitive request services (mean service
// time per request). Search/speech services have heavy-tailed request
// sizes; OLTP-style ones are tightly distributed.
var tailSpecs = []struct {
	name  string
	svc   sim.Duration
	heavy bool
}{
	{"img-dnn", 1500 * sim.Microsecond, false},
	{"moses", 1 * sim.Millisecond, false},
	{"masstree", 350 * sim.Microsecond, false},
	{"silo", 100 * sim.Microsecond, false},
	{"shore", 600 * sim.Microsecond, false},
	{"specjbb", 800 * sim.Microsecond, false},
	{"sphinx", 4 * sim.Millisecond, true},
	{"xapian", 900 * sim.Microsecond, true},
}

// NewTailbench builds the named Tailbench-like service with a sensible
// open-loop arrival rate (the paper reduces arrival rates so queueing behind
// other requests is minimal and extended runqueue latency dominates).
func NewTailbench(env Env, name string, svc sim.Duration) *Server {
	workers := env.VM.NumVCPUs()
	if env.Threads > 0 {
		workers = env.Threads
	}
	// Aggregate utilisation ~15%: interarrival = svc / (0.15 * workers) —
	// but never faster than a few ms. The paper reduces arrival rates so
	// requests don't queue behind each other and each one exercises a fresh
	// worker wakeup; that floor isolates extended runqueue latency.
	inter := sim.Duration(float64(svc) / (0.15 * float64(workers)))
	if floor := 3 * sim.Millisecond; inter < floor {
		inter = floor
	}
	return NewServer(env, ServerConfig{
		Name:         name,
		Workers:      workers,
		ServiceMean:  svc,
		ServiceJit:   0.3,
		Interarrival: inter,
		LatencyMark:  true,
	})
}

// NewNginx builds the closed-loop web server used by the live-throughput
// experiments (Figs. 16 and 17).
func NewNginx(env Env) *Server {
	workers := env.VM.NumVCPUs()
	if env.Threads > 0 {
		workers = env.Threads
	}
	// Connections slightly above the worker count with a short think time:
	// workers saturate under load but still block between requests, so the
	// server stays wakeup-driven like a real epoll loop.
	return NewServer(env, ServerConfig{
		Name:        "nginx",
		Workers:     workers,
		ServiceMean: 300 * sim.Microsecond,
		ServiceJit:  0.25,
		Connections: 2 * workers,
		Think:       200 * sim.Microsecond,
		FootprintMB: 1.5,
	})
}

// Catalog returns all catalogued benchmark specs.
func Catalog() []Spec {
	var specs []Spec
	for _, ps := range parallelSpecs {
		ps := ps
		specs = append(specs, Spec{Name: ps.Name, Kind: Throughput, New: func(env Env) Instance {
			return NewParallel(env, ps)
		}})
	}
	for _, pl := range pipelineSpecs {
		pl := pl
		specs = append(specs, Spec{Name: pl.Name, Kind: Throughput, New: func(env Env) Instance {
			return NewPipeline(env, pl)
		}})
	}
	for _, ts := range tailSpecs {
		ts := ts
		specs = append(specs, Spec{Name: ts.name, Kind: Latency, New: func(env Env) Instance {
			srv := NewTailbench(env, ts.name, ts.svc)
			srv.heavyTail = ts.heavy
			return srv
		}})
	}
	specs = append(specs,
		Spec{Name: "nginx", Kind: Throughput, New: func(env Env) Instance { return NewNginx(env) }},
		Spec{Name: "sysbench", Kind: Throughput, New: func(env Env) Instance {
			return NewSysbench(env, env.VM.NumVCPUs(), 0)
		}},
		Spec{Name: "hackbench", Kind: Throughput, New: func(env Env) Instance {
			return NewHackbench(env, 4, 4, 200)
		}},
		Spec{Name: "fio", Kind: Throughput, New: func(env Env) Instance {
			return NewFio(env, env.VM.NumVCPUs(), 0, 0)
		}},
		Spec{Name: "matmul", Kind: Throughput, New: func(env Env) Instance {
			return NewMatmul(env, env.VM.NumVCPUs(), 0)
		}},
	)
	return specs
}

// ByName looks up a catalogued benchmark.
func ByName(name string) (Spec, bool) {
	for _, s := range Catalog() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Names returns all catalogued benchmark names, sorted.
func Names() []string {
	var out []string
	for _, s := range Catalog() {
		out = append(out, s.Name)
	}
	sort.Strings(out)
	return out
}

// Fig18ThroughputNames lists the throughput-oriented workloads of the
// overall-evaluation figures, in the paper's order.
func Fig18ThroughputNames() []string {
	return []string{
		"blackscholes", "bodytrack", "canneal", "dedup", "facesim",
		"fluidanimate", "freqmine", "streamcluster", "swaptions", "x264",
		"barnes", "fft", "lu_cb", "lu_ncb", "ocean_cp", "ocean_ncp",
		"radiosity", "radix", "raytrace", "volrend", "water_spatial",
		"pbzip2", "nginx",
	}
}

// Fig18LatencyNames lists the latency-sensitive workloads of the
// overall-evaluation figures, in the paper's order.
func Fig18LatencyNames() []string {
	return []string{
		"img-dnn", "moses", "masstree", "silo", "shore", "specjbb",
		"sphinx", "xapian",
	}
}
