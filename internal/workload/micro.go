package workload

import (
	"fmt"

	"vsched/internal/guest"
	"vsched/internal/sim"
)

// Sysbench is the CPU-bound micro-benchmark: N threads computing fixed-size
// events back to back; throughput is events per second.
type Sysbench struct {
	env       Env
	threads   int
	eventWork sim.Duration
	ops       uint64
	tasks     []*guest.Task
	started   bool
	stopped   bool
}

// NewSysbench builds a sysbench-cpu workload. eventWork defaults to 1ms.
func NewSysbench(env Env, threads int, eventWork sim.Duration) *Sysbench {
	if env.Threads > 0 {
		threads = env.Threads
	}
	if threads <= 0 {
		threads = 1
	}
	if eventWork <= 0 {
		eventWork = 1 * sim.Millisecond
	}
	return &Sysbench{env: env, threads: threads, eventWork: eventWork}
}

// Name implements Instance.
func (s *Sysbench) Name() string { return "sysbench" }

// Ops implements Instance.
func (s *Sysbench) Ops() uint64 { return s.ops }

// Done implements Instance.
func (s *Sysbench) Done() bool { return false }

// Stop ends the threads at the next event boundary.
func (s *Sysbench) Stop() { s.stopped = true }

// Tasks returns the spawned worker tasks (experiments inspect placement).
func (s *Sysbench) Tasks() []*guest.Task { return s.tasks }

var _ Instance = (*Sysbench)(nil)

// Start implements Instance.
func (s *Sysbench) Start() {
	if s.started {
		return
	}
	s.started = true
	for i := 0; i < s.threads; i++ {
		counted := false
		tk := s.env.VM.Spawn(fmt.Sprintf("sysbench/t%d", i), func(now sim.Time) guest.Segment {
			if counted {
				s.ops++
			}
			if s.stopped {
				return guest.Exit()
			}
			counted = true
			return guest.Compute(s.env.cycles(s.eventWork))
		}, s.env.groupOpt()...)
		s.tasks = append(s.tasks, tk)
	}
}

// Hackbench: G groups of S senders and R receivers exchanging M messages
// through semaphores — the scheduler stress test with heavy wakeup traffic.
type Hackbench struct {
	env      Env
	groups   int
	pairSize int
	messages int
	ops      uint64
	alive    int
	started  bool

	FinishedAt sim.Time
}

// NewHackbench builds a hackbench run: groups × (pairSize senders +
// pairSize receivers), messages per sender.
func NewHackbench(env Env, groups, pairSize, messages int) *Hackbench {
	if groups <= 0 {
		groups = 2
	}
	if pairSize <= 0 {
		pairSize = 4
	}
	if messages <= 0 {
		messages = 100
	}
	return &Hackbench{env: env, groups: groups, pairSize: pairSize, messages: messages}
}

// Name implements Instance.
func (h *Hackbench) Name() string { return "hackbench" }

// Ops implements Instance.
func (h *Hackbench) Ops() uint64 { return h.ops }

// Done implements Instance.
func (h *Hackbench) Done() bool { return h.started && h.alive == 0 }

// Start implements Instance.
func (h *Hackbench) Start() {
	if h.started {
		return
	}
	h.started = true
	msgWork := h.env.cycles(20 * sim.Microsecond)
	for g := 0; g < h.groups; g++ {
		// Per-receiver bounded channels, like hackbench's sockets: the small
		// buffer makes both sides block constantly, and the pairwise wake
		// graph is what lets wake affinity consolidate a group in one cache
		// domain.
		data := make([]*guest.Semaphore, h.pairSize)
		space := make([]*guest.Semaphore, h.pairSize)
		for i := range data {
			data[i] = guest.NewSemaphore(0)
			space[i] = guest.NewSemaphore(2)
		}
		onExit := func(now sim.Time) {
			h.alive--
			if h.alive == 0 {
				h.FinishedAt = now
			}
		}
		// Receivers: each drains its own channel.
		for r := 0; r < h.pairSize; r++ {
			r := r
			phase := 0
			got := 0
			need := h.messages * h.pairSize // every sender sends to every receiver
			h.alive++
			tk := h.env.VM.Spawn(fmt.Sprintf("hack/g%d/r%d", g, r), func(now sim.Time) guest.Segment {
				switch phase {
				case 0:
					if got >= need {
						return guest.Exit()
					}
					phase = 1
					return guest.SemWait(data[r])
				case 1:
					phase = 2
					got++
					h.ops++
					return guest.Compute(msgWork)
				default:
					phase = 0
					return guest.SemPost(space[r])
				}
			}, h.env.groupOpt()...)
			tk.OnExit = onExit
		}
		// Senders: round-robin over the group's receivers.
		for sn := 0; sn < h.pairSize; sn++ {
			phase := 0
			sent := 0
			target := sn % h.pairSize
			h.alive++
			tk := h.env.VM.Spawn(fmt.Sprintf("hack/g%d/s%d", g, sn), func(now sim.Time) guest.Segment {
				switch phase {
				case 0:
					if sent >= h.messages*h.pairSize {
						return guest.Exit()
					}
					phase = 1
					return guest.SemWait(space[target])
				case 1:
					phase = 2
					return guest.Compute(msgWork)
				default:
					phase = 0
					sent++
					out := guest.SemPost(data[target])
					target = (target + 1) % h.pairSize
					return out
				}
			}, h.env.groupOpt()...)
			tk.OnExit = onExit
		}
	}
}

// Fio is the I/O-heavy micro-benchmark: threads issue an IO (sleep), then a
// tiny completion-processing burst. Throughput is IOPS.
type Fio struct {
	env     Env
	threads int
	ioLat   sim.Duration
	cpu     sim.Duration
	ops     uint64
	started bool
	stopped bool
}

// NewFio builds a fio-like workload (default 64us IO latency, 5us CPU).
func NewFio(env Env, threads int, ioLat, cpu sim.Duration) *Fio {
	if env.Threads > 0 {
		threads = env.Threads
	}
	if threads <= 0 {
		threads = 1
	}
	if ioLat <= 0 {
		ioLat = 64 * sim.Microsecond
	}
	if cpu <= 0 {
		cpu = 5 * sim.Microsecond
	}
	return &Fio{env: env, threads: threads, ioLat: ioLat, cpu: cpu}
}

// Name implements Instance.
func (f *Fio) Name() string { return "fio" }

// Ops implements Instance.
func (f *Fio) Ops() uint64 { return f.ops }

// Done implements Instance.
func (f *Fio) Done() bool { return false }

// Stop ends the threads.
func (f *Fio) Stop() { f.stopped = true }

// Start implements Instance.
func (f *Fio) Start() {
	if f.started {
		return
	}
	f.started = true
	for i := 0; i < f.threads; i++ {
		phase := 0
		f.env.VM.Spawn(fmt.Sprintf("fio/t%d", i), func(now sim.Time) guest.Segment {
			if f.stopped {
				return guest.Exit()
			}
			switch phase {
			case 0:
				phase = 1
				return guest.Sleep(f.ioLat)
			default:
				phase = 0
				f.ops++
				return guest.Compute(f.env.cycles(f.cpu))
			}
		}, f.env.groupOpt()...)
	}
}

// Matmul is pure dense compute split into chunks across threads (the
// CPU-intensive half of Fig. 12's mixed workloads).
type Matmul struct {
	env       Env
	threads   int
	chunkWork sim.Duration
	ops       uint64
	started   bool
	stopped   bool
}

// NewMatmul builds a matmul-like workload; chunkWork defaults to 5ms per
// block.
func NewMatmul(env Env, threads int, chunkWork sim.Duration) *Matmul {
	if env.Threads > 0 {
		threads = env.Threads
	}
	if threads <= 0 {
		threads = 1
	}
	if chunkWork <= 0 {
		chunkWork = 5 * sim.Millisecond
	}
	return &Matmul{env: env, threads: threads, chunkWork: chunkWork}
}

// Name implements Instance.
func (m *Matmul) Name() string { return "matmul" }

// Ops implements Instance.
func (m *Matmul) Ops() uint64 { return m.ops }

// Done implements Instance.
func (m *Matmul) Done() bool { return false }

// Stop ends the threads.
func (m *Matmul) Stop() { m.stopped = true }

// Start implements Instance.
func (m *Matmul) Start() {
	if m.started {
		return
	}
	m.started = true
	for i := 0; i < m.threads; i++ {
		counted := false
		m.env.VM.Spawn(fmt.Sprintf("matmul/t%d", i), func(now sim.Time) guest.Segment {
			if counted {
				m.ops++
			}
			if m.stopped {
				return guest.Exit()
			}
			counted = true
			return guest.Compute(m.env.cycles(m.chunkWork))
		}, m.env.groupOpt()...)
	}
}
